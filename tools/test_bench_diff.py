#!/usr/bin/env python3
"""Unit tests for the bench_diff.py regression gate.

The key asymmetry under test: a fresh run with no baseline entry is
informational (a new bench was added; --update will pick it up), but a
baseline entry with no fresh run is a hard failure (the gate silently
stopped checking something). Run directly or via ctest:

    python3 tools/test_bench_diff.py
"""
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def report(bench, records):
    return {
        "schema_version": 1,
        "bench": bench,
        "records": [
            {
                "query": q,
                "profile": p,
                "failed": failed,
                "sim": {"total_s": total},
            }
            for (q, p, total, failed) in records
        ],
    }


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            json.dump(doc, f)
        return p

    def run_diff(self, baseline_entries, fresh_reports, tolerance=0.05):
        baseline = self.path(
            "baseline.json", bench_diff.entries_to_baseline(baseline_entries)
        )
        argv = ["bench_diff.py", "--baseline", baseline,
                "--tolerance", str(tolerance)] + fresh_reports
        return bench_diff.main(argv)

    @staticmethod
    def entry(total, failed=False):
        return {"sim_total_s": total, "failed": failed}

    def test_identical_reports_pass(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0)}
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 10.0, False)]))
        self.assertEqual(self.run_diff(base, [fresh]), 0)

    def test_regression_fails(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0)}
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 12.0, False)]))
        self.assertEqual(self.run_diff(base, [fresh]), 1)

    def test_new_run_is_informational(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0)}
        fresh = self.path(
            "fresh.json",
            report("b", [("q1", "ysmart", 10.0, False),
                         ("q2", "ysmart", 99.0, False)]),
        )
        self.assertEqual(self.run_diff(base, [fresh]), 0)

    def test_lost_baseline_run_is_hard_failure(self):
        base = {
            ("b", "q1", "ysmart"): self.entry(10.0),
            ("b", "q2", "ysmart"): self.entry(20.0),
        }
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 10.0, False)]))
        self.assertEqual(self.run_diff(base, [fresh]), 1)

    def test_new_failure_fails(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0)}
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 10.0, True)]))
        self.assertEqual(self.run_diff(base, [fresh]), 1)

    def test_baseline_failure_stays_allowed(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0, failed=True)}
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 10.0, True)]))
        self.assertEqual(self.run_diff(base, [fresh]), 0)

    def update_baseline(self, baseline_entries, fresh_reports, extra):
        baseline = self.path(
            "baseline.json", bench_diff.entries_to_baseline(baseline_entries)
        )
        argv = (["bench_diff.py", "--baseline", baseline, "--update"]
                + extra + fresh_reports)
        rc = bench_diff.main(argv)
        with open(baseline) as f:
            return rc, bench_diff.baseline_to_entries(json.load(f))

    def test_update_only_refreshes_one_run_keeps_others(self):
        base = {
            ("b", "q1", "ysmart"): self.entry(10.0),
            ("b", "q2", "ysmart"): self.entry(20.0),
        }
        # Fresh reports changed both runs, but only q1 is being blessed.
        fresh = self.path(
            "fresh.json",
            report("b", [("q1", "ysmart", 11.0, False),
                         ("q2", "ysmart", 99.0, False)]),
        )
        rc, updated = self.update_baseline(base, [fresh], ["--only", "b/q1"])
        self.assertEqual(rc, 0)
        self.assertEqual(updated[("b", "q1", "ysmart")]["sim_total_s"], 11.0)
        self.assertEqual(updated[("b", "q2", "ysmart")]["sim_total_s"], 20.0)

    def test_update_only_matches_component_prefix(self):
        base = {
            ("b", "q1", "ysmart"): self.entry(10.0),
            ("b", "q1", "hive"): self.entry(30.0),
            ("c", "q1", "ysmart"): self.entry(40.0),
        }
        fresh_b = self.path(
            "fresh_b.json",
            report("b", [("q1", "ysmart", 12.0, False),
                         ("q1", "hive", 33.0, False)]),
        )
        fresh_c = self.path(
            "fresh_c.json", report("c", [("q1", "ysmart", 44.0, False)])
        )
        rc, updated = self.update_baseline(
            base, [fresh_b, fresh_c], ["--only", "b"]
        )
        self.assertEqual(rc, 0)
        self.assertEqual(updated[("b", "q1", "ysmart")]["sim_total_s"], 12.0)
        self.assertEqual(updated[("b", "q1", "hive")]["sim_total_s"], 33.0)
        self.assertEqual(updated[("c", "q1", "ysmart")]["sim_total_s"], 40.0)
        # "b/q" must NOT prefix-match "b/q1": components only.
        rc, updated = self.update_baseline(
            updated, [fresh_b, fresh_c], ["--only", "b/q"]
        )
        self.assertEqual(rc, 2)

    def test_update_only_without_update_is_usage_error(self):
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 1.0, False)]))
        rc = bench_diff.main(
            ["bench_diff.py", "--baseline",
             os.path.join(self.dir.name, "nope.json"),
             "--only", "b/q1", fresh]
        )
        self.assertEqual(rc, 2)

    def test_update_only_with_no_match_is_error(self):
        base = {("b", "q1", "ysmart"): self.entry(10.0)}
        fresh = self.path("fresh.json", report("b", [("q1", "ysmart", 11.0, False)]))
        rc, updated = self.update_baseline(base, [fresh], ["--only", "zzz"])
        self.assertEqual(rc, 2)
        self.assertEqual(updated[("b", "q1", "ysmart")]["sim_total_s"], 10.0)


if __name__ == "__main__":
    unittest.main()
