#!/usr/bin/env python3
"""Validate a bench JSON document against a schema file.

Works for every bench document shape: --json reports (records, schema
bench/bench_schema.json), --analyze analyses (analyses, schema
bench/analyzer_schema.json) and the committed regression baseline
(benches, schema bench/baseline_schema.json). Standard library only (CI
runs it without installing anything). Understands the subset of JSON
Schema the schema files use: type, required, properties,
additionalProperties (schema form), items, enum, minimum.

Usage: tools/validate_bench_json.py SCHEMA REPORT [REPORT...]
"""
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


def validate(value, schema, path, errors):
    t = schema.get("type")
    if t:
        expected = TYPES[t]
        ok = isinstance(value, expected)
        # bool is a subclass of int in Python; JSON distinguishes them.
        if ok and t in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {t}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
        # Schema-form additionalProperties: map-like objects whose keys
        # are data (e.g. the baseline's bench names) validate every
        # non-declared member against the given schema.
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            declared = schema.get("properties", {})
            for key, sub_value in value.items():
                if key not in declared:
                    validate(sub_value, extra, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    status = 0
    for report_path in argv[2:]:
        with open(report_path) as f:
            try:
                report = json.load(f)
            except json.JSONDecodeError as e:
                print(f"{report_path}: invalid JSON: {e}", file=sys.stderr)
                status = 1
                continue
        errors = []
        validate(report, schema, "$", errors)
        # The document's payload container (whichever of the known payload
        # keys the schema requires) must be non-empty: an empty one means
        # the bench silently recorded nothing.
        required = schema.get("required", [])
        payload = next(
            (
                k
                for k in ("analyses", "benches", "clusters", "plans", "records")
                if k in required
            ),
            "records",
        )
        if isinstance(report, dict) and not report.get(payload):
            errors.append(f"$.{payload}: empty — the bench recorded nothing")
        if errors:
            status = 1
            for e in errors:
                print(f"{report_path}: {e}", file=sys.stderr)
        else:
            n = len(report[payload])
            print(f"{report_path}: OK ({n} {payload})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
