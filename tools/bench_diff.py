#!/usr/bin/env python3
"""Compare fresh bench --json reports against the committed baseline.

The regression gate for simulated query times: BENCH_baseline.json pins
each (bench, query, profile) run's `sim.total_s`, and CI fails when a
fresh report exceeds its baseline by more than the tolerance. Simulated
seconds are a pure function of the cost model and the data — fully
deterministic, no host noise — so any drift is a real modeling or engine
change and must be acknowledged by regenerating the baseline in the same
commit:

    ./build/bench/fig10_small_cluster --json BENCH_fig10.json
    ./build/bench/fig09_q21_breakdown --json BENCH_fig09.json
    python3 tools/bench_diff.py --update BENCH_fig10.json BENCH_fig09.json

Standard library only. Exit codes: 0 ok, 1 regression (or a failed/DNF
record that was not failed in the baseline), 2 usage error.

--update --only <run-id> refreshes just the matching baseline entries
(run-id is bench, bench/query or bench/query/profile) and keeps every
other committed entry, so one bench's change doesn't re-bless the rest.

Usage:
    tools/bench_diff.py [--baseline PATH] [--tolerance FRAC]
                        [--write-diff PATH] [--update [--only RUN-ID]...]
                        REPORT [REPORT...]
"""
import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_baseline.json",
)


def load_reports(paths):
    """{(bench, query, profile): {"sim_total_s": float, "failed": bool}}"""
    entries = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        bench = report.get("bench", os.path.basename(path))
        for rec in report.get("records", []):
            key = (bench, rec["query"], rec["profile"])
            if key in entries:
                print(f"warning: duplicate record {key}", file=sys.stderr)
            entries[key] = {
                "sim_total_s": rec["sim"]["total_s"],
                "failed": rec["failed"],
            }
    return entries


def baseline_to_entries(baseline):
    entries = {}
    for bench, recs in baseline.get("benches", {}).items():
        for rec in recs:
            entries[(bench, rec["query"], rec["profile"])] = {
                "sim_total_s": rec["sim_total_s"],
                "failed": rec.get("failed", False),
            }
    return entries


def entries_to_baseline(entries):
    benches = {}
    for (bench, query, profile), e in sorted(entries.items()):
        rec = {"query": query, "profile": profile,
               "sim_total_s": e["sim_total_s"]}
        if e["failed"]:
            rec["failed"] = True
        benches.setdefault(bench, []).append(rec)
    return {"schema_version": 1, "benches": benches}


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed fractional sim-time increase (default 0.05 = 5%%)",
    )
    ap.add_argument(
        "--write-diff", metavar="PATH",
        help="write a machine-readable JSON diff (CI uploads it as an artifact)",
    )
    ap.add_argument(
        "--update", action="store_true",
        help="regenerate the baseline from the given reports instead of comparing",
    )
    ap.add_argument(
        "--only", action="append", metavar="RUN-ID",
        help="with --update: refresh only the runs matching RUN-ID "
             "(bench, bench/query or bench/query/profile; repeatable); "
             "other baseline entries are kept as-is",
    )
    ap.add_argument("reports", nargs="+")
    args = ap.parse_args(argv[1:])

    if args.only and not args.update:
        print("error: --only requires --update", file=sys.stderr)
        return 2

    fresh = load_reports(args.reports)
    if not fresh:
        print("error: reports contain no records", file=sys.stderr)
        return 2

    if args.update:
        if args.only:
            # Surgical refresh: re-bless only the matching runs, keep the
            # rest of the committed baseline untouched.
            def matches(key):
                name = "/".join(key)
                return any(name == o or name.startswith(o + "/")
                           for o in args.only)

            picked = {k: v for k, v in fresh.items() if matches(k)}
            if not picked:
                print(f"error: --only {args.only} matched no run in the "
                      "fresh reports", file=sys.stderr)
                return 2
            try:
                with open(args.baseline) as f:
                    merged = baseline_to_entries(json.load(f))
            except FileNotFoundError:
                print(f"error: --only needs an existing baseline to merge "
                      f"into, and {args.baseline} was not found",
                      file=sys.stderr)
                return 2
            merged.update(picked)
            fresh = merged
            print(f"refreshing {len(picked)} entrie(s) matching "
                  f"{args.only}")
        with open(args.baseline, "w") as f:
            json.dump(entries_to_baseline(fresh), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.baseline} ({len(fresh)} entries)")
        return 0

    try:
        with open(args.baseline) as f:
            base = baseline_to_entries(json.load(f))
    except FileNotFoundError:
        print(
            f"error: baseline {args.baseline} not found — generate it with "
            "--update (see module docstring)",
            file=sys.stderr,
        )
        return 2

    regressions, improvements, new, missing, failures = [], [], [], [], []
    for key in sorted(fresh):
        e = fresh[key]
        b = base.get(key)
        name = "/".join(key)
        if b is None:
            new.append(name)
            continue
        if e["failed"] and not b["failed"]:
            failures.append(name)
            continue
        if b["sim_total_s"] <= 0:
            continue
        ratio = e["sim_total_s"] / b["sim_total_s"]
        row = {
            "run": name,
            "baseline_s": b["sim_total_s"],
            "fresh_s": e["sim_total_s"],
            "ratio": ratio,
        }
        if ratio > 1.0 + args.tolerance:
            regressions.append(row)
        elif ratio < 1.0 - args.tolerance:
            improvements.append(row)
    for key in sorted(base):
        if key not in fresh:
            missing.append("/".join(key))

    if args.write_diff:
        with open(args.write_diff, "w") as f:
            json.dump(
                {
                    "tolerance": args.tolerance,
                    "compared": len(fresh),
                    "regressions": regressions,
                    "improvements": improvements,
                    "new_runs": new,
                    "missing_runs": missing,
                    "new_failures": failures,
                },
                f, indent=2,
            )
            f.write("\n")

    for row in regressions:
        print(
            f"REGRESSION {row['run']}: {row['baseline_s']:.3f}s -> "
            f"{row['fresh_s']:.3f}s ({(row['ratio'] - 1) * 100:+.1f}%)",
            file=sys.stderr,
        )
    for name in failures:
        print(f"NEW FAILURE {name}: run failed (DNF) but baseline succeeded",
              file=sys.stderr)
    for row in improvements:
        print(
            f"improvement {row['run']}: {row['baseline_s']:.3f}s -> "
            f"{row['fresh_s']:.3f}s ({(row['ratio'] - 1) * 100:+.1f}%) — "
            "consider refreshing the baseline"
        )
    for name in new:
        print(f"note: {name} has no baseline entry (new run?)")
    for name in missing:
        # A baseline entry that no fresh report covers means the gate
        # silently stopped checking that run — hard failure, not a note.
        print(
            f"MISSING RUN {name}: present in the baseline but absent from "
            "the fresh reports — the run was removed or renamed; pass its "
            "report too, or regenerate the baseline with --update",
            file=sys.stderr,
        )

    ok = not regressions and not failures and not missing
    print(
        f"bench_diff: {len(fresh)} runs compared, {len(regressions)} "
        f"regression(s), {len(failures)} new failure(s), "
        f"{len(missing)} missing run(s), {len(improvements)} improvement(s) "
        f"(tolerance {args.tolerance * 100:.0f}%)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
