#!/usr/bin/env python3
"""Validate a structured event journal (YSMART_EVENTS output).

Checks every line of each JSONL file:
  - parses as a JSON object with the envelope keys
    seq / level / category / name / sim_s / wall_us / fields
  - level and category come from the engine's enums
  - seq is strictly increasing within the file (the ring may drop old
    events, so seq need not start at 0 or be dense across files)
  - sim_s is a finite, non-negative simulated timestamp
  - fields is an object

Standard library only. Exit codes: 0 ok, 1 validation failure, 2 usage.

Usage:
    tools/validate_events_jsonl.py FILE [FILE...]
"""
import json
import math
import sys

LEVELS = {"debug", "info", "warn", "error"}
CATEGORIES = {
    "translate", "schedule", "map", "shuffle", "reduce", "post-job", "fault",
}
REQUIRED = ("seq", "level", "category", "name", "sim_s", "fields")


def validate_file(path):
    errors = []

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    last_seq = -1
    count = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                err(lineno, f"not valid JSON: {e}")
                continue
            if not isinstance(ev, dict):
                err(lineno, "event is not a JSON object")
                continue
            missing = [k for k in REQUIRED if k not in ev]
            if missing:
                err(lineno, f"missing keys: {', '.join(missing)}")
                continue
            if not isinstance(ev["seq"], int) or ev["seq"] < 0:
                err(lineno, f"seq {ev['seq']!r} is not a non-negative integer")
            elif ev["seq"] <= last_seq:
                err(lineno,
                    f"seq {ev['seq']} does not increase (previous {last_seq})")
            else:
                last_seq = ev["seq"]
            if ev["level"] not in LEVELS:
                err(lineno, f"unknown level {ev['level']!r}")
            if ev["category"] not in CATEGORIES:
                err(lineno, f"unknown category {ev['category']!r}")
            if not isinstance(ev["name"], str) or not ev["name"]:
                err(lineno, "name is not a non-empty string")
            sim = ev["sim_s"]
            if (not isinstance(sim, (int, float)) or isinstance(sim, bool)
                    or not math.isfinite(sim) or sim < 0):
                err(lineno, f"sim_s {sim!r} is not a finite non-negative number")
            if "wall_us" in ev and not isinstance(ev["wall_us"], (int, float)):
                err(lineno, f"wall_us {ev['wall_us']!r} is not a number")
            if not isinstance(ev["fields"], dict):
                err(lineno, "fields is not an object")
    if count == 0:
        errors.append(f"{path}: no events")
    return count, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        try:
            count, errors = validate_file(path)
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            ok = False
            continue
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            ok = False
        else:
            print(f"{path}: {count} events ok")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
