#!/usr/bin/env python3
"""Unit tests for the bench_history.py telemetry time series.

The invariants under test: `append` writes exactly one parseable JSONL
line per invocation (with host_phases compacted when present), and
`report` flags host-axis anomalies as informational while never failing
the build for them — simulated drift is bench_diff's job. Run directly
or via ctest:

    python3 tools/test_bench_history.py
"""
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_history  # noqa: E402


def report_doc(bench, records, sha="abc123def456"):
    recs = []
    for (query, profile, total, wall_ms, failed, host_cpu) in records:
        rec = {
            "query": query,
            "profile": profile,
            "failed": failed,
            "sim": {"total_s": total},
            "wall_ms": wall_ms,
        }
        if host_cpu is not None:
            rec["host_phases"] = {
                "schema_version": 1,
                "process_cpu_ms": host_cpu,
                "phases": [
                    {"job": "J1", "phase": "map", "cpu_ms": host_cpu * 0.5},
                    {"job": "J1", "phase": "reduce", "cpu_ms": host_cpu * 0.25},
                    {"job": "J2", "phase": "map", "cpu_ms": host_cpu * 0.25},
                ],
            }
        recs.append(rec)
    return {"schema_version": 1, "bench": bench, "git_sha": sha,
            "records": recs}


class BenchHistoryTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.history = os.path.join(self.dir.name, "history.jsonl")

    def write_report(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def append(self, reports, ts):
        argv = (["bench_history.py", "append", "--history", self.history,
                 "--ts", ts] + reports)
        with contextlib.redirect_stdout(io.StringIO()):
            return bench_history.main(argv)

    def run_report(self, extra=()):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = bench_history.main(
                ["bench_history.py", "report", "--history", self.history]
                + list(extra)
            )
        return rc, out.getvalue()

    def history_lines(self):
        with open(self.history) as f:
            return [json.loads(line) for line in f if line.strip()]

    def test_append_writes_one_line_covering_all_reports(self):
        r1 = self.write_report(
            "a.json",
            report_doc("fig09", [("q21", "ysmart", 10.0, 55.0, False, 12.0)]),
        )
        r2 = self.write_report(
            "b.json",
            report_doc("fig10", [("qcsa", "hive", 20.0, 80.0, False, None)]),
        )
        self.assertEqual(self.append([r1, r2], "2026-08-09T00:00:00+00:00"), 0)
        lines = self.history_lines()
        self.assertEqual(len(lines), 1)
        entry = lines[0]
        self.assertEqual(entry["git_sha"], "abc123def456")
        self.assertEqual(entry["ts"], "2026-08-09T00:00:00+00:00")
        self.assertEqual(
            set(entry["runs"]), {"fig09/q21/ysmart", "fig10/qcsa/hive"}
        )
        run = entry["runs"]["fig09/q21/ysmart"]
        self.assertEqual(run["sim_total_s"], 10.0)
        self.assertEqual(run["wall_ms"], 55.0)
        # host_phases compacted: process CPU plus per-phase CPU sums
        # (J1/map and J2/map fold into one "map" bucket).
        self.assertEqual(run["host"]["process_cpu_ms"], 12.0)
        self.assertEqual(run["host"]["phase_cpu_ms"]["map"], 9.0)
        self.assertEqual(run["host"]["phase_cpu_ms"]["reduce"], 3.0)
        # The run without host_phases has no host summary at all.
        self.assertNotIn("host", entry["runs"]["fig10/qcsa/hive"])

    def test_append_twice_grows_the_series(self):
        r = self.write_report(
            "a.json",
            report_doc("fig09", [("q21", "ysmart", 10.0, 55.0, False, 12.0)]),
        )
        self.assertEqual(self.append([r], "2026-08-08T00:00:00+00:00"), 0)
        self.assertEqual(self.append([r], "2026-08-09T00:00:00+00:00"), 0)
        self.assertEqual(len(self.history_lines()), 2)

    def test_append_rejects_non_report_json(self):
        bogus = self.write_report("bogus.json", {"not": "a report"})
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = bench_history.main(
                ["bench_history.py", "append", "--history", self.history,
                 "--ts", "t", bogus]
            )
        self.assertEqual(rc, 2)
        self.assertFalse(os.path.exists(self.history))

    def seed_series(self, walls_and_cpus, sim=10.0):
        for i, (wall, cpu) in enumerate(walls_and_cpus):
            r = self.write_report(
                f"r{i}.json",
                report_doc("fig09", [("q21", "ysmart", sim, wall, False, cpu)]),
            )
            self.assertEqual(self.append([r], f"2026-08-0{i + 1}T00:00:00"), 0)

    def test_report_is_quiet_for_stable_series(self):
        self.seed_series([(50.0, 10.0), (52.0, 10.5), (51.0, 10.2)])
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("fig09/q21/ysmart", out)
        self.assertNotIn("anomaly", out)
        self.assertNotIn("sim drift", out)

    def test_report_flags_host_anomaly_but_still_exits_zero(self):
        # Host wall/CPU explode by 3x: informational flag, exit still 0 —
        # the host axis is never gated.
        self.seed_series([(50.0, 10.0), (51.0, 10.0), (150.0, 30.0)])
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("host anomaly (informational)", out)
        self.assertIn("not gated", out)

    def test_report_notes_sim_drift_as_gated_elsewhere(self):
        r1 = self.write_report(
            "a.json",
            report_doc("fig09", [("q21", "ysmart", 10.0, 50.0, False, 10.0)]),
        )
        r2 = self.write_report(
            "b.json",
            report_doc("fig09", [("q21", "ysmart", 13.0, 50.0, False, 10.0)]),
        )
        self.assertEqual(self.append([r1], "2026-08-08T00:00:00"), 0)
        self.assertEqual(self.append([r2], "2026-08-09T00:00:00"), 0)
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("sim drift — gated by bench_diff", out)

    def test_report_on_missing_history_is_ok(self):
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("no history yet", out)

    def test_report_single_entry_has_no_median_basis(self):
        # One entry means no prior runs to take a median over: every
        # ratio renders "n/a" and the report still exits 0.
        self.seed_series([(50.0, 10.0)])
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("n/a vs median", out)
        self.assertNotIn("anomaly", out)

    def test_report_single_zero_sim_failed_entry_is_ok(self):
        # Degenerate first entry (failed run, zero simulated seconds):
        # nothing to divide by, nothing to crash on.
        r = self.write_report(
            "a.json",
            report_doc("fig09", [("q21", "ysmart", 0.0, 0.0, True, None)]),
        )
        self.assertEqual(self.append([r], "2026-08-09T00:00:00"), 0)
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("n/a vs median", out)
        self.assertIn("FAILED", out)

    def test_report_empty_history_file_is_ok(self):
        with open(self.history, "w") as f:
            f.write("\n")
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("no history yet", out)

    def test_report_marks_runs_missing_from_latest_entry_stale(self):
        # fig10 appears in the first entry only; without the stale marker
        # its old numbers would read as current, and a host anomaly in
        # them would be counted as if measured today.
        both = self.write_report(
            "both.json",
            report_doc(
                "fig10",
                [("qcsa", "ysmart", 20.0, 300.0, False, 90.0)],
            ),
        )
        fig09 = self.write_report(
            "fig09.json",
            report_doc("fig09", [("q21", "ysmart", 10.0, 50.0, False, 10.0)]),
        )
        self.assertEqual(self.append([fig09, both], "2026-08-08T00:00:00"), 0)
        self.assertEqual(self.append([fig09], "2026-08-09T00:00:00"), 0)
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        fig10_line = next(
            line for line in out.splitlines() if "fig10/qcsa/ysmart" in line
        )
        self.assertIn("stale: last seen 2026-08-08T00:00:00", fig10_line)
        # The stale run contributes no "current" host anomaly.
        self.assertNotIn("anomaly", out)
        # The still-reported run is not marked stale.
        fig09_line = next(
            line for line in out.splitlines() if "fig09/q21/ysmart" in line
        )
        self.assertNotIn("stale", fig09_line)

    def test_report_flags_failed_run(self):
        r = self.write_report(
            "a.json",
            report_doc("fig09", [("q21", "ysmart", 10.0, 50.0, True, None)]),
        )
        self.assertEqual(self.append([r], "2026-08-09T00:00:00"), 0)
        rc, out = self.run_report()
        self.assertEqual(rc, 0)
        self.assertIn("FAILED", out)


if __name__ == "__main__":
    unittest.main()
