#!/usr/bin/env python3
"""Append bench --json reports to a JSONL time series and report trends.

BENCH_history.jsonl holds one line per CI bench invocation: timestamp,
git sha, and for every (bench, query, profile) run the simulated total,
the host wall-clock, and a compact summary of the host_phases section
(process CPU plus per-phase CPU) when the report carries one. The
committed file gives the repo a queryable record of how both clocks move
over time without digging through CI artifact archives.

Two subcommands:

    tools/bench_history.py append --history BENCH_history.jsonl \
        [--ts ISO8601] BENCH_fig09.json BENCH_fig10.json ...
    tools/bench_history.py report --history BENCH_history.jsonl \
        [--host-threshold 0.30]

`append` writes exactly one JSONL line covering all given reports.
`report` prints, per run, the latest entry against the median of the
preceding entries. The two clocks are treated per the repo's two-clock
discipline (DESIGN.md): simulated drift is called out but NOT judged
here — tools/bench_diff.py gates it against BENCH_baseline.json; host
drift (wall_ms, host CPU) is inherently noisy across runners, so
anomalies beyond --host-threshold are flagged as informational only.
`report` always exits 0 unless the history itself is unreadable.

Standard library only. Exit codes: 0 ok, 2 usage/input error.
"""
import argparse
import datetime
import json
import statistics
import sys


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    if "records" not in report:
        raise ValueError(f"{path}: not a bench --json report (no 'records')")
    return report


def summarize_host(host):
    """Compact host_phases: process CPU and per-phase CPU sums."""
    phases = {}
    for p in host.get("phases", []):
        key = p["phase"]
        phases[key] = round(phases.get(key, 0.0) + p["cpu_ms"], 3)
    return {
        "process_cpu_ms": round(host.get("process_cpu_ms", 0.0), 3),
        "phase_cpu_ms": phases,
    }


def entry_from_reports(paths, ts):
    runs = {}
    sha = "unknown"
    for path in paths:
        report = load_report(path)
        bench = report.get("bench", path)
        if report.get("git_sha", "unknown") != "unknown":
            sha = report["git_sha"]
        for rec in report.get("records", []):
            key = "/".join((bench, rec["query"], rec["profile"]))
            if key in runs:
                print(f"warning: duplicate run {key}", file=sys.stderr)
            run = {
                "sim_total_s": rec["sim"]["total_s"],
                "wall_ms": round(rec.get("wall_ms", 0.0), 3),
                "failed": rec.get("failed", False),
            }
            if "host_phases" in rec:
                run["host"] = summarize_host(rec["host_phases"])
            runs[key] = run
    if not runs:
        raise ValueError("reports contain no records")
    return {"schema_version": 1, "ts": ts, "git_sha": sha, "runs": runs}


def load_history(path):
    entries = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as e:
                    raise ValueError(f"{path}:{lineno}: invalid JSON: {e}")
    except FileNotFoundError:
        pass
    return entries


def cmd_append(args):
    ts = args.ts or datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    try:
        entry = entry_from_reports(args.reports, ts)
    except (ValueError, KeyError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    with open(args.history, "a") as f:
        json.dump(entry, f, sort_keys=True)
        f.write("\n")
    print(
        f"appended {len(entry['runs'])} run(s) at {ts} "
        f"({entry['git_sha']}) to {args.history}"
    )
    return 0


def trend(latest, prior, threshold):
    """(ratio, flag) of latest vs the median of prior; None when no basis."""
    basis = [v for v in prior if v is not None and v > 0]
    if latest is None or latest <= 0 or not basis:
        return None, False
    ratio = latest / statistics.median(basis)
    return ratio, abs(ratio - 1.0) > threshold


def fmt_ratio(ratio):
    return "n/a" if ratio is None else f"{(ratio - 1) * 100:+.1f}%"


def cmd_report(args):
    try:
        entries = load_history(args.history)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if not entries:
        print(f"{args.history}: no history yet")
        return 0

    # Collect the series per run key, oldest first.
    keys = sorted({k for e in entries for k in e.get("runs", {})})
    print(
        f"bench history: {len(entries)} entrie(s), {len(keys)} run(s), "
        f"latest {entries[-1].get('ts', '?')} "
        f"({entries[-1].get('git_sha', '?')})"
    )
    anomalies = 0
    for key in keys:
        present = [e for e in entries if key in e.get("runs", {})]
        series = [e["runs"][key] for e in present]
        latest, prior = series[-1], series[:-1]
        # A key absent from the newest entry means the bench stopped
        # reporting it (renamed, removed, or the CI job failed); without
        # this marker its last recorded values would read as current.
        stale = key not in entries[-1].get("runs", {})

        sim_ratio, sim_moved = trend(
            latest.get("sim_total_s"),
            [r.get("sim_total_s") for r in prior],
            args.sim_threshold,
        )
        wall_ratio, wall_flag = trend(
            latest.get("wall_ms"),
            [r.get("wall_ms") for r in prior],
            args.host_threshold,
        )
        cpu = latest.get("host", {}).get("process_cpu_ms")
        cpu_ratio, cpu_flag = trend(
            cpu,
            [r.get("host", {}).get("process_cpu_ms") for r in prior],
            args.host_threshold,
        )

        line = (
            f"  {key}: sim {latest.get('sim_total_s', 0):.3f}s "
            f"({fmt_ratio(sim_ratio)} vs median), "
            f"wall {fmt_ratio(wall_ratio)}, host cpu {fmt_ratio(cpu_ratio)}"
        )
        notes = []
        if stale:
            notes.append(
                f"stale: last seen {present[-1].get('ts', '?')}"
            )
        if latest.get("failed"):
            notes.append("FAILED")
        if sim_moved:
            # Simulated drift is real (deterministic axis) but judged by
            # the bench_diff gate, not here.
            notes.append("sim drift — gated by bench_diff")
        if (wall_flag or cpu_flag) and not stale:
            # Stale runs have no new measurement to judge.
            anomalies += 1
            notes.append("host anomaly (informational)")
        if notes:
            line += "  [" + "; ".join(notes) + "]"
        print(line)
    if anomalies:
        print(
            f"{anomalies} host anomal(ies) beyond "
            f"{args.host_threshold * 100:.0f}% — informational; host time "
            "is not gated"
        )
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    ap_append = sub.add_parser("append", help="append reports as one entry")
    ap_append.add_argument("--history", required=True)
    ap_append.add_argument(
        "--ts", help="ISO-8601 timestamp override (default: now, UTC)"
    )
    ap_append.add_argument("reports", nargs="+")
    ap_report = sub.add_parser("report", help="print a trend report")
    ap_report.add_argument("--history", required=True)
    ap_report.add_argument(
        "--host-threshold", type=float, default=0.30, dest="host_threshold",
        help="host-axis anomaly threshold (default 0.30 = 30%%)",
    )
    ap_report.add_argument(
        "--sim-threshold", type=float, default=0.001, dest="sim_threshold",
        help="simulated-axis drift note threshold (default 0.001)",
    )
    args = ap.parse_args(argv[1:])
    return cmd_append(args) if args.cmd == "append" else cmd_report(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
