// Google-benchmark microbenchmarks of the translator pipeline itself:
// lexing/parsing, planning, correlation analysis, and full translation
// for each paper query. These measure the *translator's* cost (real
// wall-clock), not simulated cluster time — YSmart must stay cheap at
// query-compile time to be a practical Hive front-end.
#include <benchmark/benchmark.h>

#include "api/database.h"
#include "data/clicks_gen.h"
#include "data/queries.h"
#include "data/tpch_gen.h"
#include "plan/builder.h"
#include "plan/prune.h"
#include "sql/parser.h"
#include "translator/correlation.h"
#include "translator/ysmart_translator.h"

namespace {

using namespace ysmart;

Catalog make_catalog() {
  Catalog c;
  c.register_table("lineitem", tpch_lineitem_schema());
  c.register_table("orders", tpch_orders_schema());
  c.register_table("part", tpch_part_schema());
  c.register_table("customer", tpch_customer_schema());
  c.register_table("supplier", tpch_supplier_schema());
  c.register_table("nation", tpch_nation_schema());
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  c.register_table("clicks", cl);
  return c;
}

const queries::PaperQuery& query_for(int idx) {
  return *queries::all()[static_cast<std::size_t>(idx)];
}

void BM_Parse(benchmark::State& state) {
  const auto& q = query_for(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(parse_select(q.sql));
  state.SetLabel(q.id);
}
BENCHMARK(BM_Parse)->DenseRange(0, 4);

void BM_Plan(benchmark::State& state) {
  const auto& q = query_for(static_cast<int>(state.range(0)));
  Catalog c = make_catalog();
  for (auto _ : state) benchmark::DoNotOptimize(plan_query(q.sql, c));
  state.SetLabel(q.id);
}
BENCHMARK(BM_Plan)->DenseRange(0, 4);

void BM_CorrelationAnalysis(benchmark::State& state) {
  const auto& q = query_for(static_cast<int>(state.range(0)));
  Catalog c = make_catalog();
  auto plan = plan_query(q.sql, c);
  prune_plan(plan);
  for (auto _ : state) {
    CorrelationAnalysis ca(plan);
    benchmark::DoNotOptimize(ca.ops().size());
  }
  state.SetLabel(q.id);
}
BENCHMARK(BM_CorrelationAnalysis)->DenseRange(0, 4);

void BM_TranslateYsmart(benchmark::State& state) {
  const auto& q = query_for(static_cast<int>(state.range(0)));
  Catalog c = make_catalog();
  for (auto _ : state) {
    auto plan = plan_query(q.sql, c);
    benchmark::DoNotOptimize(
        translate_ysmart(plan, TranslatorProfile::ysmart(), "/s"));
  }
  state.SetLabel(q.id);
}
BENCHMARK(BM_TranslateYsmart)->DenseRange(0, 4);

void BM_TranslateBaseline(benchmark::State& state) {
  const auto& q = query_for(static_cast<int>(state.range(0)));
  Catalog c = make_catalog();
  for (auto _ : state) {
    auto plan = plan_query(q.sql, c);
    benchmark::DoNotOptimize(
        translate(plan, TranslatorProfile::hive(), "/s"));
  }
  state.SetLabel(q.id);
}
BENCHMARK(BM_TranslateBaseline)->DenseRange(0, 4);

// ---- runtime microbenchmarks: the simulator's own wall-clock cost ----

void BM_EngineQagg(benchmark::State& state) {
  Database db(ClusterConfig::small_local(1.0));
  ClicksConfig cc;
  cc.users = static_cast<std::int64_t>(state.range(0));
  db.create_table("clicks", generate_clicks(cc));
  const std::string sql = queries::qagg().sql;
  std::uint64_t records = 0;
  for (auto _ : state) {
    auto run = db.run(sql, TranslatorProfile::ysmart());
    records += run.metrics.jobs[0].map.input_records;
    benchmark::DoNotOptimize(run.result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_EngineQagg)->Arg(200)->Arg(1000)->Arg(4000);

void BM_EngineQcsaMergedJob(benchmark::State& state) {
  Database db(ClusterConfig::small_local(1.0));
  ClicksConfig cc;
  cc.users = static_cast<std::int64_t>(state.range(0));
  db.create_table("clicks", generate_clicks(cc));
  const std::string sql = queries::qcsa().sql;
  std::uint64_t records = 0;
  for (auto _ : state) {
    auto run = db.run(sql, TranslatorProfile::ysmart());
    records += run.metrics.jobs[0].map.input_records;
    benchmark::DoNotOptimize(run.result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_EngineQcsaMergedJob)->Arg(100)->Arg(400);

void BM_ReferenceExecutorQcsa(benchmark::State& state) {
  Database db(ClusterConfig::small_local(1.0));
  ClicksConfig cc;
  cc.users = static_cast<std::int64_t>(state.range(0));
  db.create_table("clicks", generate_clicks(cc));
  for (auto _ : state)
    benchmark::DoNotOptimize(db.run_reference(queries::qcsa().sql));
}
BENCHMARK(BM_ReferenceExecutorQcsa)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
