// Fig. 12: six Q17 instances (three YSmart, three Hive) on the Facebook
// production cluster — 747 nodes, 1 TB data, co-running workloads.
//
// Paper's observations: YSmart outperforms Hive with speedups between
// 230% and 310%; Hive's Job3 (the join of two temporary tables) shows an
// unexpectedly long reduce phase; scheduling gaps between jobs grow
// under contention, which hurts the translator that runs more jobs.
#include <cstdio>

#include "common.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace ysmart;
  using namespace ysmart::bench;

  Report report("fig12_facebook_q17", argc, argv);
  print_header(
      "Fig. 12 - six Q17 instances on the 747-node production cluster "
      "(1 TB, co-running workloads)");

  auto tpch = TpchDataset::generate();
  const double scale = scale_for(tpch.bytes, 1024);  // 1 TB

  double min_speedup = 1e18, max_speedup = 0;
  for (int instance = 1; instance <= 3; ++instance) {
    double pair_times[2] = {0, 0};
    for (bool ysmart_sys : {true, false}) {
      // Both systems face the same cluster weather in one instance slot
      // (the paper ran the instance pairs concurrently).
      auto cluster = ClusterConfig::facebook(scale, /*seed=*/instance * 7919u);
      Database db(cluster);
      tpch.load_into(db);
      auto profile = ysmart_sys ? TranslatorProfile::ysmart()
                                : TranslatorProfile::hive();
      // The production-scale anomaly of Section VII-F: Hive's join over
      // temporarily-generated inputs ran a 721 s reduce against a 53 s
      // map. Neutral at small scale, so only these benches enable it.
      profile.temp_input_join_penalty = 6.0;
      auto run = run_and_record(report, db, strf("Q17/instance%d", instance),
                                queries::q17().sql, profile);
      const double t = run.metrics.total_time_s();
      pair_times[ysmart_sys ? 0 : 1] = t;
      std::printf("\n%s %d   total %s\n", profile.name.c_str(), instance,
                  fmt_time(t).c_str());
      for (const auto& j : run.metrics.jobs)
        std::printf("    %-30s sched %6.1fs map %7.1fs reduce %7.1fs\n",
                    j.job_name.c_str(), j.sched_delay_s, j.map_time_s,
                    j.reduce_time_s);
    }
    const double speedup = 100.0 * pair_times[1] / pair_times[0];
    std::printf("  instance %d speedup: %.0f%%\n", instance, speedup);
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
  }
  std::printf(
      "\nspeedup range (hive/ysmart): min %.0f%%  max %.0f%%   "
      "(paper: 230%% .. 310%%)\n",
      min_speedup, max_speedup);
  return 0;
}
