// Fig. 13: Q18 and Q21 on the Facebook production cluster — average of
// three instances per system.
//
// Paper's observations: average speedups of 298% (Q18) and 336% (Q21) —
// *higher* than on the isolated clusters, because multi-minute
// scheduling gaps between consecutive jobs penalize the translator that
// runs more jobs (Hive saw up to 5.4 minutes between two jobs).
#include <cstdio>

#include "common.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace ysmart;
  using namespace ysmart::bench;

  Report report("fig13_facebook_q18q21", argc, argv);
  print_header(
      "Fig. 13 - Q18/Q21 on the 747-node production cluster (1 TB, "
      "average of three instances)");

  auto tpch = TpchDataset::generate();
  const double scale = scale_for(tpch.bytes, 1024);

  std::printf("%-5s %12s %12s %10s %16s\n", "query", "ysmart avg", "hive avg",
              "speedup", "paper speedup");
  struct Entry {
    const queries::PaperQuery* q;
    double paper;
  };
  for (const auto& e : {Entry{&queries::q18(), 298}, Entry{&queries::q21(), 336}}) {
    double sum_ys = 0, sum_hv = 0;
    double max_gap_ys = 0, max_gap_hv = 0;
    for (int instance = 1; instance <= 3; ++instance) {
      for (bool ysmart_sys : {true, false}) {
        auto cluster =
            ClusterConfig::facebook(scale, /*seed=*/instance * 104729u);
        Database db(cluster);
        tpch.load_into(db);
        auto profile = ysmart_sys ? TranslatorProfile::ysmart()
                                  : TranslatorProfile::hive();
        profile.temp_input_join_penalty = 6.0;  // Section VII-F anomaly
        auto run = run_and_record(
            report, db, strf("%s/instance%d", e.q->id.c_str(), instance),
            e.q->sql, profile);
        (ysmart_sys ? sum_ys : sum_hv) += run.metrics.total_time_s();
        for (const auto& j : run.metrics.jobs)
          (ysmart_sys ? max_gap_ys : max_gap_hv) =
              std::max(ysmart_sys ? max_gap_ys : max_gap_hv, j.sched_delay_s);
      }
    }
    std::printf("%-5s %12s %12s %9.0f%% %15.0f%%\n", e.q->id.c_str(),
                fmt_time(sum_ys / 3).c_str(), fmt_time(sum_hv / 3).c_str(),
                100.0 * sum_hv / sum_ys, e.paper);
    std::printf(
        "      max inter-job scheduling gap: ysmart %.1fs, hive %.1fs "
        "(paper: up to 5.4 min for Hive)\n",
        max_gap_ys, max_gap_hv);
  }
  return 0;
}
