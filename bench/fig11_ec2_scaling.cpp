// Fig. 11: Amazon EC2 clusters, 11 and 101 nodes, with and without map
// output compression.
//
// Paper's observations reproduced here:
//   * YSmart beats Hive in every configuration (max speedup 297% for Q21
//     on 101 nodes without compression);
//   * near-linear scaling: times barely change from 11 nodes/10 GB to
//     101 nodes/100 GB (1 GB per worker in both);
//   * compression *hurts* on these weak virtual cores (Q17 YSmart went
//     from 5.93 to 12.02 minutes in the paper);
//   * Q-CSA on the 11-node cluster: 487% over Hive, 840% over Pig.
#include <cstdio>

#include "common.h"
#include "report.h"

namespace {

using namespace ysmart;
using namespace ysmart::bench;

double run_one(Report& report, Database& db, const std::string& query_id,
               const std::string& sql, const TranslatorProfile& p) {
  auto run = run_and_record(report, db, query_id, sql, p);
  return run.metrics.failed() ? -1 : run.metrics.total_time_s();
}

}  // namespace

int main(int argc, char** argv) {
  Report report("fig11_ec2_scaling", argc, argv);
  print_header("Fig. 11(a-c) - TPC-H on EC2: 11 nodes/10 GB vs 101 nodes/100 GB");

  auto tpch = TpchDataset::generate();
  std::printf("%-5s %-10s | %10s %10s | %10s %10s   (c = compression)\n",
              "query", "system", "11n nc", "11n c", "101n nc", "101n c");
  for (const auto* q : {&queries::q17(), &queries::q18(), &queries::q21()}) {
    for (bool ysmart_sys : {true, false}) {
      const auto profile = ysmart_sys ? TranslatorProfile::ysmart()
                                      : TranslatorProfile::hive();
      double t[4];
      int i = 0;
      for (int nodes : {11, 101}) {
        const double gb = nodes == 11 ? 10 : 100;  // 1 GB per worker
        for (bool compress : {false, true}) {
          auto cluster = ClusterConfig::ec2(nodes, scale_for(tpch.bytes, gb));
          cluster.compression.enabled = compress;
          Database db(cluster);
          tpch.load_into(db);
          t[i++] = run_one(report, db,
                           strf("%s/%dn%s", q->id.c_str(), nodes,
                                compress ? "/c" : ""),
                           q->sql, profile);
        }
      }
      auto cell = [](double v) {
        // The paper draws Hive-with-compression Q21@101 as ">1 hour" (DNF).
        return v < 0 ? std::string("DNF(disk)")
                     : (v > 3600 ? ">1h (" + fmt_time(v) + ")" : fmt_time(v));
      };
      std::printf("%-5s %-10s | %10s %10s | %10s %10s\n", q->id.c_str(),
                  profile.name.c_str(), cell(t[0]).c_str(), cell(t[1]).c_str(),
                  cell(t[2]).c_str(), cell(t[3]).c_str());
    }
  }

  print_header("Fig. 11(d) - Q-CSA on the 11-node EC2 cluster (20 GB, no compression)");
  auto clicks = ClicksDataset::generate();
  Database db(ClusterConfig::ec2(11, scale_for(clicks.bytes, 20)));
  clicks.load_into(db);
  double ysmart_t = 0;
  for (const auto& profile : {TranslatorProfile::ysmart(),
                              TranslatorProfile::hive(),
                              TranslatorProfile::pig()}) {
    auto run =
        run_and_record(report, db, "Q-CSA/11n", queries::qcsa().sql, profile);
    std::printf("%-8s %8s  (%d jobs)\n", profile.name.c_str(),
                fmt_time(run.metrics.total_time_s()).c_str(),
                run.metrics.job_count());
    for (const auto& j : run.metrics.jobs)
      std::printf("           %-30s map %7.1fs reduce %7.1fs\n",
                  j.job_name.c_str(), j.map_time_s, j.reduce_time_s);
    if (profile.name == "ysmart") ysmart_t = run.metrics.total_time_s();
    else
      std::printf("ysmart speedup over %s: %.0f%%  (paper: %s)\n",
                  profile.name.c_str(),
                  100.0 * run.metrics.total_time_s() / ysmart_t,
                  profile.name == "hive" ? "487%" : "840%");
  }
  return 0;
}
