// Execution-kernel micro-benchmark: host wall-clock of the map/reduce
// inner loops — filter, project, grouped aggregate — with the columnar
// batch kernels (exec/vector_kernels.h) against the per-row
// std::variant-dispatch path (YSMART_VECTORIZED=off), at three input
// sizes. Both modes run the identical operators from exec/operators.h
// over identical rows, so the difference isolates the execution strategy
// itself.
//
// The data and expressions are shaped like the fig09/fig10 map phases: a
// TPC-H lineitem-style table, a two-conjunct numeric filter, an
// arithmetic projection (price * (1 - discount)) and a grouped
// sum/avg/count. --json records one schema-conforming record per
// (size, mode); wall_ms is the phase total, and the simulated metrics
// come from running an equivalent workload through the engine (identical
// in both modes — the knob never touches the simulation, pinned by
// tests/test_robustness.cpp).
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "mr/engine.h"
#include "plan/builder.h"
#include "report.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace {

using namespace ysmart;
using namespace ysmart::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Schema lineitem_schema() {
  Schema s;
  s.add("l_orderkey", ValueType::Int);
  s.add("l_suppkey", ValueType::Int);
  s.add("l_quantity", ValueType::Double);
  s.add("l_extendedprice", ValueType::Double);
  s.add("l_discount", ValueType::Double);
  s.add("l_tax", ValueType::Double);
  return s;
}

std::vector<Row> make_rows(std::size_t n) {
  Rng rng(20110607 + static_cast<std::uint64_t>(n));
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(Row{
        Value{static_cast<std::int64_t>(i / 4)},
        Value{rng.uniform(0, 99)},
        Value{1.0 + static_cast<double>(rng.uniform(0, 49))},
        Value{901.0 + rng.uniform01() * 104'000.0},
        Value{0.01 * static_cast<double>(rng.uniform(0, 10))},
        Value{0.01 * static_cast<double>(rng.uniform(0, 8))},
    });
  }
  return rows;
}

struct PhaseTimes {
  double filter_ms = 0;
  double project_ms = 0;
  double agg_ms = 0;
  std::size_t check = 0;  // keeps the work observable
  double total_ms() const { return filter_ms + project_ms + agg_ms; }
};

/// Time one pass of the three operator shapes over `rows` under the
/// currently-set execution mode.
PhaseTimes time_phases(const std::vector<Row>& rows, const BoundExpr& filter,
                       const std::vector<BoundExpr>& projections,
                       const PlanNode& agg) {
  PhaseTimes t;
  double t0 = now_ms();
  const auto filtered = filter_project(rows, &filter, {});
  t.filter_ms = now_ms() - t0;

  t0 = now_ms();
  const auto projected = filter_project(rows, &filter, projections);
  t.project_ms = now_ms() - t0;

  t0 = now_ms();
  const auto grouped = aggregate_rows(agg, rows);
  t.agg_ms = now_ms() - t0;

  t.check = filtered.size() + projected.size() + grouped.size();
  return t;
}

/// Run an equivalent filter + grouped-sum job through the engine so the
/// JSON record carries honest simulated metrics (mode-independent).
QueryMetrics engine_metrics(const std::vector<Row>& rows) {
  auto t = std::make_shared<Table>(lineitem_schema());
  for (const Row& r : rows) t->append(r);

  auto cfg = ClusterConfig::small_local(1.0);
  Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
  dfs.write("/in", t);
  Engine engine(dfs, cfg);

  const Schema in = lineitem_schema();
  BoundExpr filter(parse_expression("l_quantity < 24.0 and l_discount >= 0.02"),
                   in);
  BoundExpr revenue(
      parse_expression("l_extendedprice * (1 - l_discount)"), in);

  MRJobSpec spec;
  spec.name = "exec-agg";
  spec.inputs = {{"/in", 0}};
  Schema out;
  out.add("l_suppkey", ValueType::Int);
  out.add("revenue", ValueType::Double);
  spec.outputs = {{"/out", out}};
  struct M final : Mapper {
    const BoundExpr* filter;
    const BoundExpr* revenue;
    void map(const Row& r, int, MapEmitter& e) override {
      if (!is_true(filter->eval(r))) return;
      e.emit(Row{r[1]}, Row{revenue->eval(r)});
    }
  };
  struct R final : Reducer {
    void reduce(const Row& k, std::span<const KeyValue> v,
                ReduceEmitter& e) override {
      double sum = 0;
      for (const auto& kv : v) sum += kv.value[0].numeric();
      e.emit(Row{k[0], Value{sum}});
    }
  };
  spec.make_mapper = [&] {
    auto m = std::make_unique<M>();
    m->filter = &filter;
    m->revenue = &revenue;
    return m;
  };
  spec.make_reducer = [] { return std::make_unique<R>(); };

  QueryMetrics m;
  m.jobs.push_back(engine.run(spec));
  m.wall_time_s = m.total_time_s();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Report report("bench_exec", argc, argv);
  print_header("Exec kernels: columnar batches vs per-row variant dispatch");

  constexpr std::size_t kSizes[] = {50'000, 200'000, 800'000};
  constexpr int kReps = 3;  // best-of to damp scheduler noise

  const Schema schema = lineitem_schema();
  BoundExpr filter(parse_expression("l_quantity < 24.0 and l_discount >= 0.02"),
                   schema);
  const std::vector<BoundExpr> projections = bind_all(
      {parse_expression("l_extendedprice * (1 - l_discount)"),
       parse_expression("l_orderkey + l_suppkey"),
       parse_expression("l_quantity * (1 + l_tax)")},
      schema);
  Catalog catalog;
  catalog.register_table("lineitem", schema);
  const PlanPtr agg_plan = plan_query(
      "SELECT l_suppkey, count(*) AS n, sum(l_extendedprice) AS s, "
      "avg(l_quantity) AS q FROM lineitem GROUP BY l_suppkey",
      catalog);
  const PlanNode* agg = agg_plan.get();
  // plan_query may wrap the Agg in a projection-only SP; unwrap to bench
  // the aggregation operator itself.
  while (agg->kind != PlanKind::Agg) agg = agg->children.at(0).get();

  const bool saved = vectorized_enabled();
  std::printf("%10s %5s %10s %10s %10s %10s\n", "rows", "mode", "filter ms",
              "project ms", "agg ms", "total ms");
  for (const std::size_t n : kSizes) {
    const auto rows = make_rows(n);
    const QueryMetrics sim = engine_metrics(rows);
    PhaseTimes best[2];
    for (const bool vec : {true, false}) {
      set_vectorized_enabled(vec);
      PhaseTimes& t = best[vec ? 0 : 1];
      for (int rep = 0; rep < kReps; ++rep) {
        const PhaseTimes cur = time_phases(rows, filter, projections, *agg);
        if (rep == 0 || cur.total_ms() < t.total_ms()) t = cur;
      }
      std::printf("%10zu %5s %10.2f %10.2f %10.2f %10.2f\n", n,
                  vec ? "vec" : "row", t.filter_ms, t.project_ms, t.agg_ms,
                  t.total_ms());
      report.record("exec-" + std::to_string(n), vec ? "vec" : "row", sim,
                    t.total_ms());
    }
    if (best[0].check != best[1].check)
      std::printf("WARNING: mode outputs disagree (%zu vs %zu)\n",
                  best[0].check, best[1].check);
    std::printf("%10s %5s speedup vec vs row: %.2fx (filter %.2fx, project "
                "%.2fx, agg %.2fx)\n",
                "", "", best[1].total_ms() / best[0].total_ms(),
                best[1].filter_ms / best[0].filter_ms,
                best[1].project_ms / best[0].project_ms,
                best[1].agg_ms / best[0].agg_ms);
  }
  set_vectorized_enabled(saved);
  return 0;
}
