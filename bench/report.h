// Machine-readable bench output: --json, --trace and --analyze <path>.
//
// Every figure bench accepts
//
//   fig10_small_cluster --json BENCH_fig10.json --trace fig10.trace.json \
//                       --analyze fig10.analysis.json
//
// --json writes one JSON document (schema: bench/bench_schema.json,
// validated in CI by tools/validate_bench_json.py) with one record per
// (query, profile) run: job count, simulated per-phase times, byte
// counters, and host wall-clock. --trace additionally attaches an
// observability context to every recorded run and writes the combined
// Chrome trace_event file, loadable in chrome://tracing or Perfetto.
// --analyze also attaches the context, runs the query-doctor analyzer
// (obs/analyzer.h) over each run's task samples, embeds the analysis in
// each --json record under "analyzer", and writes a standalone analyses
// document (schema: bench/analyzer_schema.json) with the rendered text
// reports. --cluster <path> attaches the context too and writes the
// cluster-axis document (schema: bench/cluster_schema.json): one entry
// per run with the full per-node rollup, shuffle traffic matrix and
// slot-occupancy timeline (obs/cluster_view.h); when --trace is also
// given, the per-node tracks appear in the Chrome trace as pid 3.
// --explain <path> attaches the context with the plan view enabled: each
// run records a translate-time prediction, joins it against actuals
// after execution, embeds the compact predicted-vs-actual report in each
// --json record under "plan", and writes the standalone plan document
// (schema: bench/plan_schema.json) with the full reports and the
// session's q-error calibration ring.
// --progress (no value) prints live per-job completion lines on
// stderr while runs execute; it only reads the progress tracker, so the
// --json report's *simulated* values are identical with or without it
// (pinned by the CI regression gate against BENCH_baseline.json).
//
// Host profiling: whenever --json or --folded is requested (and
// YSMART_PROFILE is not "off"), the host profiler is enabled and each
// --json record gains a "host_phases" section — per-phase host CPU,
// per-chunk wall, allocation counts and dispatch counters, with its own
// schema_version (see obs/profiler.h). --folded <path> writes the whole
// bench's folded-stack flamegraph (pipe through flamegraph.pl). Host
// numbers are informational: only simulated values are gated. Without
// flags the benches behave exactly as before: no observer is attached
// and nothing is written.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/env.h"
#include "common/io.h"
#include "common/json.h"
#include "mr/metrics.h"
#include "obs/analyzer.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"

namespace ysmart::bench {

/// Build identifier for the JSON header: CI's GITHUB_SHA when set, else
/// the working tree's HEAD, else "unknown".
inline std::string git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA"); sha && *sha)
    return std::string(sha).substr(0, 12);
  std::string out;
  if (FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p)) out = buf;
    ::pclose(p);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out.empty() ? "unknown" : out;
}

class Report {
 public:
  static constexpr int kSchemaVersion = 1;

  Report(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--trace") == 0) trace_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--analyze") == 0) analyze_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--cluster") == 0) cluster_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--folded") == 0) folded_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--explain") == 0) explain_path_ = argv[i + 1];
    }
    if (!explain_path_.empty()) obs_.plans.set_enabled(true);
    // Host profiling rides along with any output that can carry it,
    // unless YSMART_PROFILE=off (the escape hatch when the report's
    // wall_ms must exclude even the profiler's relaxed-atomic cost).
    host_profiling_ = env_flag("YSMART_PROFILE").value_or(true) &&
                      (!json_path_.empty() || !folded_path_.empty());
    if (host_profiling_) obs_.profiler.set_enabled(true);
    // --progress takes no value, so scan the full argv separately.
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--progress") == 0) progress_ = true;
    if (progress_)
      obs_.progress.set_callback([this](const obs::ProgressSnapshot& s) {
        // Print one line per completed job (and the final query line);
        // task-level updates would flood the terminal. jobs_done and
        // tasks_done only grow within a query, so the output is
        // monotonic by construction.
        if (s.jobs_done == last_jobs_printed_ && s.active) return;
        last_jobs_printed_ = s.active ? s.jobs_done : 0;
        std::fprintf(stderr,
                     "progress: [%s] wave %d  jobs %zu/%zu  tasks %zu/%zu%s\n",
                     s.profile.c_str(), s.current_wave, s.jobs_done,
                     s.total_jobs, s.tasks_done(), s.tasks_total(),
                     s.active ? "" : "  done");
      });
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() { write(); }

  bool tracing() const { return !trace_path_.empty(); }
  bool analyzing() const { return !analyze_path_.empty(); }
  bool clustering() const { return !cluster_path_.empty(); }
  bool explaining() const { return !explain_path_.empty(); }
  bool progress() const { return progress_; }
  bool host_profiling() const { return host_profiling_; }
  /// The observability context runs attach, or null when neither tracing,
  /// analyzing, clustering, explaining, host-profiling nor printing
  /// progress.
  obs::ObsContext* obs() {
    return tracing() || analyzing() || clustering() || explaining() ||
                   progress_ || host_profiling_
               ? &obs_
               : nullptr;
  }

  void record(const std::string& query, const std::string& profile,
              const QueryMetrics& m, double wall_ms) {
    if (json_path_.empty() && analyze_path_.empty() && cluster_path_.empty())
      return;
    Record r;
    r.query = query;
    r.profile = profile;
    r.metrics = m;
    r.wall_ms = wall_ms;
    if (analyzing() && obs_.samples.query_count() > 0) {
      // The run just recorded is the sample store's most recent query.
      const obs::AnalyzerReport a =
          obs::analyze_query(obs_.samples.last_query());
      r.analyzer_json = a.json();
      r.analyzer_text = a.text();
    }
    if (clustering() && obs_.samples.query_count() > 0) {
      const obs::ClusterReport cluster =
          obs::build_cluster_view(obs_.samples.last_query());
      r.cluster_json = cluster.json();
      if (tracing()) {
        // The tracer's sim cursor has already advanced past this run, so
        // the run's simulated epoch is cursor minus its simulated span.
        const double epoch = obs_.tracer.sim_now() - m.wall_time_s;
        for (auto& ev : cluster.chrome_events(epoch))
          trace_extra_events_.push_back(std::move(ev));
      }
    }
    if (explaining() && obs_.plans.report_count() > plan_reports_upto_) {
      // The run just recorded produced the store's most recent report.
      obs::PlanReport rep;
      if (obs_.plans.last_report(&rep)) {
        r.plan_json_full = rep.json(/*full=*/true);
        r.plan_json_compact = rep.json(/*full=*/false);
      }
      plan_reports_upto_ = obs_.plans.report_count();
    }
    if (host_profiling_) {
      // Slice out just the phases (and process CPU) recorded since the
      // previous record, so each record's host_phases covers one run.
      const std::uint64_t proc = obs_.profiler.process_cpu_ns();
      r.host_json = obs_.profiler.json(host_phases_upto_,
                                       proc - host_proc_cpu_upto_);
      host_phases_upto_ = obs_.profiler.phase_count();
      host_proc_cpu_upto_ = proc;
    }
    records_.push_back(std::move(r));
  }

  /// Write the JSON report and trace file now (also runs at destruction;
  /// idempotent). Returns false if a file could not be written.
  bool write() {
    bool ok = true;
    if (!json_path_.empty()) {
      ok &= write_file(json_path_, json());
      json_path_.clear();
    }
    if (!trace_path_.empty()) {
      ok &= write_file(trace_path_,
                       obs_.tracer.chrome_json(obs::TimeAxis::Both,
                                               trace_extra_events_));
      trace_path_.clear();
    }
    if (!analyze_path_.empty()) {
      ok &= write_file(analyze_path_, analyses_json());
      analyze_path_.clear();
    }
    if (!cluster_path_.empty()) {
      ok &= write_file(cluster_path_, clusters_json());
      cluster_path_.clear();
    }
    if (!folded_path_.empty()) {
      ok &= write_file(folded_path_, obs_.profiler.folded_stacks(obs_.tracer));
      folded_path_.clear();
    }
    if (!explain_path_.empty()) {
      ok &= write_file(explain_path_, plans_json());
      explain_path_.clear();
    }
    return ok;
  }

  /// The standalone plan-axis document (bench/plan_schema.json): one
  /// entry per recorded run with the full predicted-vs-actual report,
  /// plus the session-wide q-error calibration ring.
  std::string plans_json() const {
    JsonWriter w;
    w.begin_object();
    w.kv("schema_version", kSchemaVersion);
    w.kv("bench", std::string_view(bench_));
    w.kv("git_sha", std::string_view(git_sha()));
    w.key("plans").begin_array();
    for (const auto& r : records_) {
      if (r.plan_json_full.empty()) continue;
      w.begin_object();
      w.kv("query", std::string_view(r.query));
      w.kv("profile", std::string_view(r.profile));
      w.key("plan").raw(r.plan_json_full);
      w.end_object();
    }
    w.end_array();
    w.key("calibration").raw(calibration_json());
    w.end_object();
    return w.take();
  }

  /// The standalone cluster-axis document (bench/cluster_schema.json):
  /// one entry per recorded run with the full cluster report (per-node
  /// rollup, traffic matrix, slot timeline, doctor diagnosis).
  std::string clusters_json() const {
    JsonWriter w;
    w.begin_object();
    w.kv("schema_version", kSchemaVersion);
    w.kv("bench", std::string_view(bench_));
    w.kv("git_sha", std::string_view(git_sha()));
    w.key("clusters").begin_array();
    for (const auto& r : records_) {
      if (r.cluster_json.empty()) continue;
      w.begin_object();
      w.kv("query", std::string_view(r.query));
      w.kv("profile", std::string_view(r.profile));
      w.key("cluster").raw(r.cluster_json);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
  }

  /// The standalone analyses document (bench/analyzer_schema.json).
  std::string analyses_json() const {
    JsonWriter w;
    w.begin_object();
    w.kv("schema_version", kSchemaVersion);
    w.kv("bench", std::string_view(bench_));
    w.kv("git_sha", std::string_view(git_sha()));
    w.key("analyses").begin_array();
    for (const auto& r : records_) {
      if (r.analyzer_json.empty()) continue;
      w.begin_object();
      w.kv("query", std::string_view(r.query));
      w.kv("profile", std::string_view(r.profile));
      w.key("analyzer").raw(r.analyzer_json);
      w.kv("text", std::string_view(r.analyzer_text));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
  }

  std::string json() const {
    JsonWriter w;
    w.begin_object();
    w.kv("schema_version", kSchemaVersion);
    w.kv("bench", std::string_view(bench_));
    w.kv("git_sha", std::string_view(git_sha()));
    w.key("records").begin_array();
    for (const auto& r : records_) {
      const QueryMetrics& m = r.metrics;
      double sched = 0, map_s = 0, reduce_s = 0;
      std::uint64_t map_input = 0, shuffle_raw = 0, shuffle_wire = 0,
                    dfs_write = 0, remote_read = 0;
      for (const auto& j : m.jobs) {
        sched += j.sched_delay_s;
        map_s += j.map_time_s;
        reduce_s += j.reduce_time_s;
        map_input += j.map.input_bytes;
        shuffle_raw += j.shuffle_bytes_raw;
        shuffle_wire += j.shuffle_bytes_wire;
        dfs_write += j.dfs_write_bytes;
        remote_read += j.remote_read_bytes;
      }
      w.begin_object();
      w.kv("query", std::string_view(r.query));
      w.kv("profile", std::string_view(r.profile));
      w.kv("jobs", static_cast<std::uint64_t>(m.jobs.size()));
      w.kv("failed", m.failed());
      w.key("sim").begin_object();
      w.kv("total_s", m.total_time_s());
      w.kv("wall_s", m.wall_time_s);
      w.kv("sched_s", sched);
      w.kv("map_s", map_s);
      w.kv("reduce_s", reduce_s);
      w.end_object();
      w.key("bytes").begin_object();
      w.kv("map_input", map_input);
      w.kv("shuffle_raw", shuffle_raw);
      w.kv("shuffle_wire", shuffle_wire);
      w.kv("dfs_write", dfs_write);
      w.kv("remote_read", remote_read);
      w.end_object();
      w.kv("wall_ms", r.wall_ms);
      if (!r.analyzer_json.empty()) w.key("analyzer").raw(r.analyzer_json);
      if (!r.plan_json_compact.empty()) w.key("plan").raw(r.plan_json_compact);
      if (!r.host_json.empty()) w.key("host_phases").raw(r.host_json);
      w.key("per_job").begin_array();
      for (const auto& j : m.jobs) {
        w.begin_object();
        w.kv("name", std::string_view(j.job_name));
        w.kv("map_s", j.map_time_s);
        w.kv("reduce_s", j.reduce_time_s);
        w.kv("shuffle_wire", j.shuffle_bytes_wire);
        w.kv("failed", j.failed);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
  }

 private:
  struct Record {
    std::string query;
    std::string profile;
    QueryMetrics metrics;
    double wall_ms = 0;
    std::string analyzer_json;  // empty unless --analyze
    std::string analyzer_text;
    std::string cluster_json;  // empty unless --cluster
    std::string plan_json_full;     // empty unless --explain
    std::string plan_json_compact;  // embedded under the record's "plan"
    std::string host_json;  // empty unless host profiling is on
  };

  std::string calibration_json() const {
    return obs::calibration_json(obs_.plans.calibration());
  }

  static bool write_file(const std::string& path, const std::string& body) {
    return write_text_file(path, body);
  }

  std::string bench_;
  std::string json_path_;
  std::string trace_path_;
  std::string analyze_path_;
  std::string cluster_path_;
  std::string folded_path_;
  std::string explain_path_;
  std::size_t plan_reports_upto_ = 0;
  std::vector<std::string> trace_extra_events_;
  bool progress_ = false;
  bool host_profiling_ = false;
  std::size_t host_phases_upto_ = 0;
  std::uint64_t host_proc_cpu_upto_ = 0;
  std::size_t last_jobs_printed_ = 0;
  std::vector<Record> records_;
  obs::ObsContext obs_;
};

/// Run one (query, profile) pair through `db`, timing the host wall-clock
/// and recording the result in `report`. When tracing, the report's
/// observability context is attached for the duration of the run.
inline QueryRunResult run_and_record(Report& report, Database& db,
                                     const std::string& query_id,
                                     const std::string& sql,
                                     const TranslatorProfile& profile) {
  db.set_observer(report.obs());
  const auto t0 = std::chrono::steady_clock::now();
  QueryRunResult run = db.run(sql, profile);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  db.set_observer(nullptr);
  report.record(query_id, profile.name, run.metrics, wall_ms);
  return run;
}

}  // namespace ysmart::bench
