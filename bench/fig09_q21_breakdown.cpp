// Fig. 9: breakdown of job finishing times for the Q21 "Left Outer
// Join1" sub-tree on the 2-node local cluster with 10 GB TPC-H data.
//
// Four configurations, as in the paper (Section VII-C):
//   1. one-operation-to-one-job (5 jobs)            paper: 1140 s
//   2. input + transit correlation only (3 jobs)    paper:  773 s
//   3. all correlations - YSmart (1 job)            paper:  561 s
//   4. hand-coded program (1 specialized job)       paper:  479 s
// Per-job map/reduce phase times are printed like the figure's bars.
#include <cstdio>

#include "common.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace ysmart;
  using namespace ysmart::bench;

  Report report("fig09_q21_breakdown", argc, argv);
  print_header(
      "Fig. 9 - Q21 sub-tree job finishing times (10 GB TPC-H, 2-node "
      "local cluster)");

  auto tpch = TpchDataset::generate();
  Database db(ClusterConfig::small_local(scale_for(tpch.bytes, 10)));
  tpch.load_into(db);
  const std::string sql = queries::q21_subtree().sql;

  struct Config {
    const char* label;
    double paper_seconds;
    TranslatorProfile profile;
  };
  auto rule1_only = TranslatorProfile::ysmart();
  rule1_only.name = "ic+tc-only";
  rule1_only.use_job_flow_correlation = false;

  const Config configs[] = {
      {"1. one-op-to-one-job", 1140, TranslatorProfile::hive()},
      {"2. IC+TC only", 773, rule1_only},
      {"3. all correlations (YSmart)", 561, TranslatorProfile::ysmart()},
      {"4. hand-coded", 479, TranslatorProfile::hand_coded()},
  };

  double baseline_time = 0;
  for (const auto& cfg : configs) {
    auto run = run_and_record(report, db, "Q21-subtree", sql, cfg.profile);
    if (baseline_time == 0) baseline_time = run.metrics.total_time_s();
    std::printf("\n%s  [%d job(s)]\n", cfg.label, run.metrics.job_count());
    for (const auto& j : run.metrics.jobs)
      std::printf("    %-30s map %7.1fs   reduce %7.1fs\n", j.job_name.c_str(),
                  j.map_time_s, j.reduce_time_s);
    std::printf("    total %7.1fs   (paper: %.0fs)   speedup over config 1: "
                "%.0f%% (paper: %.0f%%)\n",
                run.metrics.total_time_s(), cfg.paper_seconds,
                100.0 * baseline_time / run.metrics.total_time_s(),
                100.0 * 1140 / cfg.paper_seconds);
  }
  return 0;
}
