// Fig. 2(b): the performance gap that motivates the paper.
//
// Compares a Hive-style translation against a hand-optimized MapReduce
// program for the simple aggregation Q-AGG and the complex click-stream
// query Q-CSA on the 2-node local cluster. The paper's observation:
// comparable times for Q-AGG (Hive's hash-aggregate map keeps it at one
// efficient job), but a ~3x gap for Q-CSA (six jobs vs two).
#include <cstdio>

#include "common.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace ysmart;
  using namespace ysmart::bench;

  Report report("fig02_gap", argc, argv);
  print_header(
      "Fig. 2(b) - Hive vs hand-coded MapReduce (20 GB CLICKS, 2-node "
      "local cluster)");

  auto clicks = ClicksDataset::generate();
  Database db(
      ClusterConfig::small_local(scale_for(clicks.bytes, /*modeled_gb=*/20)));
  clicks.load_into(db);

  std::printf("%-8s %18s %18s %8s\n", "query", "hive", "hand-coded",
              "gap");
  for (const auto* q : {&queries::qagg(), &queries::qcsa()}) {
    auto hive =
        run_and_record(report, db, q->id, q->sql, TranslatorProfile::hive());
    auto hand = run_and_record(report, db, q->id, q->sql,
                               TranslatorProfile::hand_coded());
    std::printf("%-8s %10s (%d job) %10s (%d job) %7.2fx\n", q->id.c_str(),
                fmt_time(hive.metrics.total_time_s()).c_str(),
                hive.metrics.job_count(),
                fmt_time(hand.metrics.total_time_s()).c_str(),
                hand.metrics.job_count(),
                hive.metrics.total_time_s() / hand.metrics.total_time_s());
  }
  std::printf(
      "\npaper: Q-AGG comparable; Q-CSA hand-coded ~3x faster (6 Hive jobs "
      "vs a single job for everything but the final aggregation)\n");
  return 0;
}
