// Ablation: CMF tag encoding (Section VI-A) and the PK-selection
// heuristic — design choices the paper calls out, measured.
//
//  1. Tag encoding: the paper stores the IDs of jobs that should NOT see
//     a pair ("exclude list"), betting on highly-overlapped map outputs.
//     We run the merged Q21 sub-tree job both ways and report shuffle
//     bytes and simulated time.
//  2. PK heuristic: Q-CSA's aggregations have multiple candidate PKs;
//     choosing uid keeps the five-op chain in one job. We compare against
//     the non-heuristic full-grouping-key choice (jobs fall apart).
#include <cstdio>

#include "common.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace ysmart;
  using namespace ysmart::bench;

  Report report("ablation_tags", argc, argv);
  print_header("Ablation 1 - CMF tag encoding on the merged Q21 sub-tree job");
  {
    auto tpch = TpchDataset::generate();
    std::printf("%-14s %14s %14s %10s\n", "encoding", "shuffle MB",
                "map out MB", "time");
    for (auto enc : {TagEncoding::ExcludeList, TagEncoding::IncludeList}) {
      Database db(ClusterConfig::small_local(scale_for(tpch.bytes, 10)));
      tpch.load_into(db);
      auto profile = TranslatorProfile::ysmart();
      profile.tag_encoding = enc;
      profile.name = enc == TagEncoding::ExcludeList ? "ysmart-excl"
                                                     : "ysmart-incl";
      auto run = run_and_record(report, db, "Q21-subtree",
                                queries::q21_subtree().sql, profile);
      const double scale = db.cluster().sim_scale;
      std::printf("%-14s %14.1f %14.1f %10s\n",
                  enc == TagEncoding::ExcludeList ? "exclude-list"
                                                  : "include-list",
                  run.metrics.total_shuffle_bytes() * scale / 1048576.0,
                  run.metrics.jobs[0].map.output_bytes * scale / 1048576.0,
                  fmt_time(run.metrics.total_time_s()).c_str());
    }
    std::printf("(exclude-list wins when map outputs overlap heavily, as "
                "Section VI-A argues)\n");
  }

  print_header("Ablation 2 - aggregation PK selection heuristic on Q-CSA");
  {
    auto clicks = ClicksDataset::generate();
    Database db(ClusterConfig::small_local(scale_for(clicks.bytes, 20)));
    clicks.load_into(db);

    auto with_heuristic = run_and_record(report, db, "Q-CSA", queries::qcsa().sql,
                                         TranslatorProfile::ysmart());
    std::printf("with heuristic (uid chosen):      %d jobs  %s\n",
                with_heuristic.metrics.job_count(),
                fmt_time(with_heuristic.metrics.total_time_s()).c_str());

    // Disabling JFC approximates "PK chosen without regard to the parent
    // chain": the aggregations stop collapsing into their child jobs.
    auto no_jfc = TranslatorProfile::ysmart();
    no_jfc.name = "ysmart-nojfc";
    no_jfc.use_job_flow_correlation = false;
    auto without = run_and_record(report, db, "Q-CSA", queries::qcsa().sql,
                                  no_jfc);
    std::printf("without job-flow merging:         %d jobs  %s\n",
                without.metrics.job_count(),
                fmt_time(without.metrics.total_time_s()).c_str());
  }

  print_header(
      "Ablation 3 - cost-based PK selection (the paper's future-work item) "
      "on a skewed click stream");
  {
    // Only 4 distinct users: merging the whole Q-CSA chain into one
    // uid-partitioned job serializes its reduce phase on 4 keys.
    ClicksConfig skewed;
    skewed.users = 4;
    skewed.mean_clicks_per_user = 12000;
    auto data = generate_clicks(skewed);
    Database db(ClusterConfig::small_local(
        scale_for(data->byte_size(), /*modeled_gb=*/20)));
    db.create_table("clicks", data);

    auto heuristic = TranslatorProfile::ysmart();
    auto cost_based = TranslatorProfile::ysmart();
    cost_based.name = "ysmart+stats";
    cost_based.cost_based_pk = true;
    for (const auto& profile : {heuristic, cost_based}) {
      auto run =
          run_and_record(report, db, "Q-CSA-skewed", queries::qcsa().sql, profile);
      std::printf("%-14s %d jobs  %s\n", profile.name.c_str(),
                  run.metrics.job_count(),
                  fmt_time(run.metrics.total_time_s()).c_str());
    }
    std::printf(
        "(the cost-based veto rejects the 4-distinct-value uid key and falls\n"
        " back to more, better-parallelized jobs — and LOSES: the merged job\n"
        " never materializes the per-user quadratic self-join intermediate,\n"
        " which dwarfs the serialization it suffers. A parallelism-only veto\n"
        " is not a cost model; the paper's simple connectivity heuristic is\n"
        " more robust than it looks.)\n");
  }
  return 0;
}
