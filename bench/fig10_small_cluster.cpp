// Fig. 10: YSmart vs Hive vs Pig vs the "ideal parallel PostgreSQL" on
// the 2-node local cluster — 10 GB TPC-H for Q17/Q18/Q21, 20 GB clicks
// for Q-CSA — with per-job execution breakdowns.
//
// Paper's headline numbers: YSmart speedup over Hive of 258% (Q17),
// 190% (Q18), 252% (Q21), 266% (Q-CSA); Pig DNFs Q-CSA (intermediate
// results outgrow the test disk); PostgreSQL wins the DSS queries but
// not the click-stream query.
#include <cstdio>

#include "common.h"
#include "report.h"

namespace {

using namespace ysmart;
using namespace ysmart::bench;

void run_query(Report& report, Database& db, const queries::PaperQuery& q,
               double paper_speedup) {
  std::printf("\n---- %s ----\n", q.id.c_str());
  double hive_time = 0, ysmart_time = 0;
  for (const auto& profile : {TranslatorProfile::ysmart(),
                              TranslatorProfile::hive(),
                              TranslatorProfile::pig()}) {
    auto run = run_and_record(report, db, q.id, q.sql, profile);
    if (run.metrics.failed()) {
      std::printf("%-8s DNF - %s\n", profile.name.c_str(),
                  run.metrics.fail_reason().c_str());
      continue;
    }
    if (profile.name == "hive") hive_time = run.metrics.total_time_s();
    if (profile.name == "ysmart") ysmart_time = run.metrics.total_time_s();
    std::printf("%-8s %8s  (%d jobs)\n", profile.name.c_str(),
                fmt_time(run.metrics.total_time_s()).c_str(),
                run.metrics.job_count());
    for (const auto& j : run.metrics.jobs)
      std::printf("           %-30s map %7.1fs reduce %7.1fs%s\n",
                  j.job_name.c_str(), j.map_time_s, j.reduce_time_s,
                  j.failed ? "  FAILED" : "");
  }
  DbmsCostConfig dbms;  // ideal 4-way parallel DBMS on 1/4 data
  dbms.sim_scale = db.cluster().sim_scale;
  auto pg = db.run_dbms(q.sql, dbms);
  std::printf("%-8s %8s  (in-memory pipelined plan)\n", "pgsql",
              fmt_time(pg.sim_seconds).c_str());
  if (hive_time > 0 && ysmart_time > 0)
    std::printf("ysmart speedup over hive: %.0f%%  (paper: %.0f%%)\n",
                100.0 * hive_time / ysmart_time, paper_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  Report report("fig10_small_cluster", argc, argv);
  print_header(
      "Fig. 10 - small-cluster comparison: YSmart / Hive / Pig / ideal "
      "parallel PostgreSQL");

  {
    auto tpch = TpchDataset::generate();
    Database db(ClusterConfig::small_local(scale_for(tpch.bytes, 10)));
    tpch.load_into(db);
    run_query(report, db, queries::q17(), 258);
    run_query(report, db, queries::q18(), 190);
    run_query(report, db, queries::q21(), 252);
  }
  {
    auto clicks = ClicksDataset::generate();
    auto cluster = ClusterConfig::small_local(scale_for(clicks.bytes, 20));
    // The paper's test machine had a single 500 GB disk also holding the
    // OS, the HDFS data and job staging; the space left for transient
    // intermediates is what Pig's inflated self-join chain overflows.
    cluster.local_disk_capacity_bytes = 320ull << 30;
    Database db(cluster);
    clicks.load_into(db);
    run_query(report, db, queries::qcsa(), 266);
  }
  return 0;
}
