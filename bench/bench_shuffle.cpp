// Shuffle micro-benchmark: host wall-clock of the sort/merge/group path
// with the raw (memcmp over normalized keys) comparator against the
// compare_rows fallback (YSMART_RAW_COMPARATOR=off), at three input
// sizes. Both modes run the identical primitives from mr/shuffle.h, so
// the difference isolates the comparator itself — the RawComparator
// optimization this engine borrows from Hadoop.
//
// The printed table breaks the time into the three phases a reduce-side
// shuffle performs on the host: map-side bucket sort, k-way merge of the
// per-map-task runs, and reduce key-group detection. --json records one
// schema-conforming record per (size, mode); wall_ms is the phase total,
// and the simulated metrics come from running the same workload through
// the engine (identical in both modes — the knob never touches the
// simulation, pinned by tests/test_robustness.cpp).
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "common.h"
#include "common/normkey.h"
#include "common/rng.h"
#include "mr/engine.h"
#include "mr/shuffle.h"
#include "report.h"

namespace {

using namespace ysmart;
using namespace ysmart::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A shuffle-heavy pair stream modeled on a multi-column GROUP BY:
/// composite four-cell keys (two low-cardinality strings with a common
/// prefix, then two ints) with ~16 pairs per key group. Same-group and
/// near-group comparisons must walk several cells through Value::compare
/// on the slow path — the case the single-memcmp raw comparator wins.
std::vector<KeyValue> make_pairs(std::size_t n) {
  Rng rng(20110607 + static_cast<std::uint64_t>(n));
  std::vector<KeyValue> pairs;
  pairs.reserve(n);
  const std::int64_t groups = static_cast<std::int64_t>(n / 16 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t g = rng.uniform(0, groups - 1);
    KeyValue kv;
    kv.key = {Value{"region-" + std::to_string(g % 8)},
              Value{"customer-" + std::to_string(g / 7 % 997)},
              Value{g % 64}, Value{g}};
    kv.value = {Value{static_cast<std::int64_t>(i)}};
    kv.source = static_cast<std::uint8_t>(rng.uniform(0, 1));
    pairs.push_back(std::move(kv));
  }
  return pairs;
}

struct PhaseTimes {
  double sort_ms = 0;
  double merge_ms = 0;
  double group_ms = 0;
  std::size_t groups = 0;
  double total_ms() const { return sort_ms + merge_ms + group_ms; }
};

/// Time the three shuffle phases over `pairs` split into `num_runs`
/// map-task runs, under whichever comparator mode is currently set.
PhaseTimes time_phases(const std::vector<KeyValue>& pairs,
                       std::size_t num_runs) {
  // Distribute round-robin like blocks across map tasks, then finalize
  // each run the way the engine's PartitioningEmitter does.
  std::vector<std::vector<KeyValue>> runs(num_runs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    KeyValue kv = pairs[i];
    kv.norm_key = encode_norm_key(kv.key);
    auto& run = runs[i % num_runs];
    kv.seq = static_cast<std::uint32_t>(run.size());
    run.push_back(std::move(kv));
  }

  PhaseTimes t;
  double t0 = now_ms();
  for (auto& run : runs) sort_map_bucket(run);
  t.sort_ms = now_ms() - t0;

  std::vector<std::vector<KeyValue>*> run_ptrs;
  for (auto& run : runs) run_ptrs.push_back(&run);
  t0 = now_ms();
  std::vector<KeyValue> merged = merge_sorted_runs(run_ptrs);
  t.merge_ms = now_ms() - t0;

  t0 = now_ms();
  std::size_t i = 0;
  while (i < merged.size()) {
    std::size_t j = i + 1;
    while (j < merged.size() && same_shuffle_key(merged[i], merged[j])) ++j;
    ++t.groups;
    i = j;
  }
  t.group_ms = now_ms() - t0;
  return t;
}

/// Run the equivalent count-per-key job through the engine so the JSON
/// record carries honest simulated metrics (mode-independent).
QueryMetrics engine_metrics(std::size_t n) {
  Schema in;
  in.add("region", ValueType::String);
  in.add("customer", ValueType::String);
  in.add("c", ValueType::Int);
  in.add("g", ValueType::Int);
  auto t = std::make_shared<Table>(in);
  for (const KeyValue& kv : make_pairs(n))
    t->append(kv.key);

  auto cfg = ClusterConfig::small_local(1.0);
  Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
  dfs.write("/in", t);
  Engine engine(dfs, cfg);

  MRJobSpec spec;
  spec.name = "shuffle-count";
  spec.inputs = {{"/in", 0}};
  Schema out = in;
  out.add("n", ValueType::Int);
  spec.outputs = {{"/out", out}};
  struct M final : Mapper {
    void map(const Row& r, int, MapEmitter& e) override {
      e.emit(r, Row{Value{1}});
    }
  };
  struct R final : Reducer {
    void reduce(const Row& k, std::span<const KeyValue> v,
                ReduceEmitter& e) override {
      e.emit(Row{k[0], k[1], k[2], k[3],
                 Value{static_cast<std::int64_t>(v.size())}});
    }
  };
  spec.make_mapper = [] { return std::make_unique<M>(); };
  spec.make_reducer = [] { return std::make_unique<R>(); };

  QueryMetrics m;
  m.jobs.push_back(engine.run(spec));
  m.wall_time_s = m.total_time_s();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Report report("bench_shuffle", argc, argv);
  print_header("Shuffle sort/merge/group: raw comparator vs compare_rows");

  constexpr std::size_t kSizes[] = {50'000, 200'000, 800'000};
  constexpr std::size_t kRuns = 16;  // simulated map tasks per size
  constexpr int kReps = 3;           // best-of to damp scheduler noise

  const bool saved = raw_comparator_enabled();
  std::printf("%10s %6s %10s %10s %10s %10s %9s\n", "pairs", "mode",
              "sort ms", "merge ms", "group ms", "total ms", "groups");
  for (const std::size_t n : kSizes) {
    const auto pairs = make_pairs(n);
    const QueryMetrics sim = engine_metrics(n);
    PhaseTimes best[2];
    for (const bool raw : {true, false}) {
      set_raw_comparator_enabled(raw);
      PhaseTimes& t = best[raw ? 0 : 1];
      for (int rep = 0; rep < kReps; ++rep) {
        const PhaseTimes cur = time_phases(pairs, kRuns);
        if (rep == 0 || cur.total_ms() < t.total_ms()) t = cur;
      }
      std::printf("%10zu %6s %10.2f %10.2f %10.2f %10.2f %9zu\n", n,
                  raw ? "raw" : "off", t.sort_ms, t.merge_ms, t.group_ms,
                  t.total_ms(), t.groups);
      report.record("shuffle-" + std::to_string(n), raw ? "raw" : "off", sim,
                    t.total_ms());
    }
    std::printf("%10s %6s speedup raw vs off: %.2fx\n", "", "",
                best[1].total_ms() / best[0].total_ms());
  }
  set_raw_comparator_enabled(saved);
  return 0;
}
