// Unit tests for Schema name resolution — the rules the whole planner
// relies on: exact match, unqualified-suffix match, alias-through match,
// ambiguity detection, qualification.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/schema.h"

namespace ysmart {
namespace {

Schema make() {
  Schema s;
  s.add("a.x", ValueType::Int);
  s.add("a.y", ValueType::Double);
  s.add("b.x", ValueType::Int);
  s.add("z", ValueType::String);
  return s;
}

TEST(Schema, ExactQualifiedMatch) {
  EXPECT_EQ(make().index_of("a.x"), 0u);
  EXPECT_EQ(make().index_of("b.x"), 2u);
}

TEST(Schema, UnqualifiedSuffixMatch) {
  EXPECT_EQ(make().index_of("y"), 1u);
  EXPECT_EQ(make().index_of("z"), 3u);
}

TEST(Schema, UnqualifiedAmbiguousThrows) {
  EXPECT_THROW(make().index_of("x"), PlanError);
}

TEST(Schema, QualifiedMatchesBareStoredName) {
  // "t.z" resolves to the stored unqualified "z" (alias-through).
  EXPECT_EQ(make().index_of("t.z"), 3u);
}

TEST(Schema, QualifiedDoesNotMatchOtherQualifier) {
  // "c.y" must not hit "a.y" — different qualifier.
  EXPECT_FALSE(make().find("c.y").has_value());
}

TEST(Schema, UnknownColumnThrows) {
  EXPECT_THROW(make().index_of("nope"), PlanError);
  EXPECT_FALSE(make().find("nope").has_value());
}

TEST(Schema, CaseInsensitive) {
  EXPECT_EQ(make().index_of("A.X"), 0u);
  EXPECT_EQ(make().index_of("Z"), 3u);
}

TEST(Schema, QualifiedRenamesAll) {
  Schema q = make().qualified("t1");
  EXPECT_EQ(q.at(0).name, "t1.x");
  EXPECT_EQ(q.at(3).name, "t1.z");
  EXPECT_EQ(q.at(1).type, ValueType::Double);
}

TEST(Schema, ConcatPreservesOrder) {
  Schema a;
  a.add("p", ValueType::Int);
  Schema b;
  b.add("q", ValueType::String);
  Schema c = Schema::concat(a, b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.at(0).name, "p");
  EXPECT_EQ(c.at(1).name, "q");
}

TEST(Schema, Unqualify) {
  EXPECT_EQ(unqualify("a.b"), "b");
  EXPECT_EQ(unqualify("plain"), "plain");
  EXPECT_EQ(unqualify("x.y.z"), "z");
}

TEST(Schema, ToStringListsColumns) {
  EXPECT_EQ(make().to_string(), "[a.x:INT, a.y:DOUBLE, b.x:INT, z:STRING]");
}

}  // namespace
}  // namespace ysmart
