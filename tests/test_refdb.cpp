// Unit tests for the reference executor: every operator flavor, outer
// join semantics, NULL handling, DBMS cost estimation.
#include <gtest/gtest.h>

#include "common/error.h"
#include "plan/builder.h"
#include "refdb/refdb.h"

namespace ysmart {
namespace {

class RefDbTest : public ::testing::Test {
 protected:
  RefDbTest() {
    Schema e;
    e.add("id", ValueType::Int);
    e.add("dept", ValueType::Int);
    e.add("salary", ValueType::Int);
    cat_.register_table("emp", e);
    emp_ = std::make_shared<Table>(e);
    emp_->append({Value{1}, Value{10}, Value{100}});
    emp_->append({Value{2}, Value{10}, Value{200}});
    emp_->append({Value{3}, Value{20}, Value{300}});
    emp_->append({Value{4}, Value::null(), Value{400}});

    Schema d;
    d.add("did", ValueType::Int);
    d.add("dname", ValueType::String);
    cat_.register_table("dept", d);
    dept_ = std::make_shared<Table>(d);
    dept_->append({Value{10}, Value{"eng"}});
    dept_->append({Value{30}, Value{"hr"}});
  }

  Table run(const std::string& sql) {
    return execute_plan_ref(plan_query(sql, cat_), source());
  }

  TableSource source() {
    return [this](const std::string& n) -> std::shared_ptr<const Table> {
      if (n == "emp") return emp_;
      if (n == "dept") return dept_;
      return nullptr;
    };
  }

  Catalog cat_;
  std::shared_ptr<Table> emp_, dept_;
};

TEST_F(RefDbTest, ScanFilterProject) {
  Table t = run("SELECT id FROM emp WHERE salary > 150");
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_EQ(t.schema().at(0).name, "id");
}

TEST_F(RefDbTest, InnerJoinSkipsNullKeysAndNonMatches) {
  Table t = run("SELECT id, dname FROM emp, dept WHERE dept = did");
  EXPECT_EQ(t.row_count(), 2u);  // emp 1,2 -> eng; 3 no match; 4 null key
}

TEST_F(RefDbTest, LeftOuterJoinPads) {
  Table t = run("SELECT id, dname FROM emp LEFT OUTER JOIN dept ON dept = did");
  EXPECT_EQ(t.row_count(), 4u);
  int padded = 0;
  for (const auto& r : t.rows())
    if (r[1].is_null()) ++padded;
  EXPECT_EQ(padded, 2);  // emp 3 (no match) and emp 4 (null key)
}

TEST_F(RefDbTest, RightOuterJoinPads) {
  Table t = run("SELECT id, dname FROM emp RIGHT OUTER JOIN dept ON dept = did");
  // eng matches twice; hr unmatched once.
  EXPECT_EQ(t.row_count(), 3u);
}

TEST_F(RefDbTest, FullOuterJoin) {
  Table t = run("SELECT id, dname FROM emp FULL OUTER JOIN dept ON dept = did");
  EXPECT_EQ(t.row_count(), 5u);  // 2 matches + emp{3,4} + dept{hr}
}

TEST_F(RefDbTest, WhereAfterOuterJoinFiltersPaddedRows) {
  Table t = run(
      "SELECT id FROM emp LEFT OUTER JOIN dept ON dept = did "
      "WHERE dname IS NULL");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(RefDbTest, GroupedAggregation) {
  Table t = run("SELECT dept, sum(salary) AS s FROM emp GROUP BY dept");
  EXPECT_EQ(t.row_count(), 3u);  // 10, 20, NULL groups
}

TEST_F(RefDbTest, GlobalAggregation) {
  Table t = run("SELECT count(*) AS n, avg(salary) AS a FROM emp");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.rows()[0][0].as_int(), 4);
  EXPECT_DOUBLE_EQ(t.rows()[0][1].as_double(), 250.0);
}

TEST_F(RefDbTest, OrderByLimit) {
  Table t = run("SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.rows()[0][0].as_int(), 4);
  EXPECT_EQ(t.rows()[1][0].as_int(), 3);
}

TEST_F(RefDbTest, DerivedTable) {
  Table t = run(
      "SELECT d.s FROM (SELECT dept, sum(salary) AS s FROM emp GROUP BY dept) "
      "AS d WHERE d.s > 250");
  EXPECT_EQ(t.row_count(), 3u);  // dept 10 -> 300, dept 20 -> 300, NULL -> 400
}

TEST_F(RefDbTest, MissingDataThrows) {
  Catalog c;
  Schema s;
  s.add("x", ValueType::Int);
  c.register_table("ghost", s);
  TableSource empty_source = [](const std::string&) {
    return std::shared_ptr<const Table>{};
  };
  auto ghost_plan = plan_query("SELECT x FROM ghost", c);
  EXPECT_THROW(execute_plan_ref(ghost_plan, empty_source), ExecError);
}

TEST_F(RefDbTest, DbmsCostScalesWithParallelism) {
  DbmsCostConfig cfg;
  cfg.sim_scale = 100;
  cfg.parallelism = 1;
  auto serial = execute_plan_dbms(
      plan_query("SELECT dept, sum(salary) AS s FROM emp GROUP BY dept", cat_),
      source(), cfg);
  cfg.parallelism = 4;
  auto parallel = execute_plan_dbms(
      plan_query("SELECT dept, sum(salary) AS s FROM emp GROUP BY dept", cat_),
      source(), cfg);
  EXPECT_GT(serial.sim_seconds, 0);
  EXPECT_NEAR(parallel.sim_seconds, serial.sim_seconds / 4, 1e-9);
  EXPECT_TRUE(same_rows_unordered(serial.result, parallel.result));
  EXPECT_GT(serial.bytes_scanned, 0u);
  EXPECT_GT(serial.rows_processed, 0u);
}

}  // namespace
}  // namespace ysmart
