// Unit tests for the public Database facade: table registration, explain,
// run, cluster reconfiguration, error paths.
#include <gtest/gtest.h>

#include "api/database.h"
#include "common/error.h"
#include "data/clicks_gen.h"
#include "data/queries.h"

namespace ysmart {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(ClusterConfig::small_local(1.0)) {
    ClicksConfig c;
    c.users = 100;
    c.mean_clicks_per_user = 15;
    db_.create_table("clicks", generate_clicks(c));
  }
  Database db_;
};

TEST_F(DatabaseTest, CreateTableRegistersCatalogAndDfs) {
  EXPECT_TRUE(db_.catalog().has_table("clicks"));
  EXPECT_TRUE(db_.dfs().exists("/tables/clicks"));
}

TEST_F(DatabaseTest, PlanParsesAndResolves) {
  auto p = db_.plan("SELECT uid, count(*) AS n FROM clicks GROUP BY uid");
  EXPECT_EQ(p->kind, PlanKind::Agg);
}

TEST_F(DatabaseTest, ExplainShowsPlanCorrelationsAndJobs) {
  const std::string text =
      db_.explain(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_NE(text.find("== plan =="), std::string::npos);
  EXPECT_NE(text.find("== correlations =="), std::string::npos);
  EXPECT_NE(text.find("== jobs (ysmart) =="), std::string::npos);
}

TEST_F(DatabaseTest, RunCleansUpScratch) {
  auto before = db_.dfs().list().size();
  db_.run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_EQ(db_.dfs().list().size(), before);  // scratch removed
}

TEST_F(DatabaseTest, RunsAreIsolated) {
  auto r1 = db_.run(queries::qagg().sql, TranslatorProfile::ysmart());
  auto r2 = db_.run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_TRUE(same_rows_unordered(*r1.result, *r2.result));
}

TEST_F(DatabaseTest, ReconfigureClusterKeepsTables) {
  db_.reconfigure_cluster(ClusterConfig::ec2(11, 1.0));
  EXPECT_EQ(db_.cluster().worker_nodes, 11);
  EXPECT_TRUE(db_.dfs().exists("/tables/clicks"));
  auto r = db_.run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_GT(r.result->row_count(), 0u);
}

TEST_F(DatabaseTest, MoreNodesRunFaster) {
  // Enough blocks that the 11-node cluster needs several map waves.
  ClicksConfig c;
  c.users = 3000;
  c.seed = 5;
  db_.create_table("bigclicks", generate_clicks(c));
  const std::string sql =
      "SELECT cid, count(*) AS n FROM bigclicks GROUP BY cid";
  db_.reconfigure_cluster(ClusterConfig::ec2(11, 2000.0));
  auto small = db_.run(sql, TranslatorProfile::ysmart());
  db_.reconfigure_cluster(ClusterConfig::ec2(101, 2000.0));
  auto big = db_.run(sql, TranslatorProfile::ysmart());
  EXPECT_LT(big.metrics.total_time_s(), small.metrics.total_time_s());
}

TEST_F(DatabaseTest, UnknownTableThrowsPlanError) {
  EXPECT_THROW(db_.run("SELECT x FROM ghost", TranslatorProfile::ysmart()),
               PlanError);
}

TEST_F(DatabaseTest, BadSqlThrowsParseError) {
  EXPECT_THROW(db_.plan("SELEKT broken"), ParseError);
}

TEST_F(DatabaseTest, NullTableRejected) {
  EXPECT_THROW(db_.create_table("x", nullptr), InternalError);
}

TEST_F(DatabaseTest, DbmsRunReturnsCostAndResult) {
  DbmsCostConfig cfg;
  cfg.sim_scale = 10;
  auto r = db_.run_dbms(queries::qagg().sql, cfg);
  EXPECT_GT(r.sim_seconds, 0);
  Table expected = db_.run_reference(queries::qagg().sql);
  EXPECT_TRUE(same_rows_unordered(expected, r.result));
}

}  // namespace
}  // namespace ysmart
