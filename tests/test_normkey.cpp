// Property and regression tests for the normalized key encoding
// (common/normkey.h): the byte order of encoded keys must agree with
// compare_rows on every pair, encode/decode must round-trip, and the
// decoders (norm-key and wire-format Value::decode) must reject
// truncated or corrupt buffers loudly instead of reading past the end.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/normkey.h"
#include "common/rng.h"
#include "common/value.h"

namespace ysmart {
namespace {

int sign(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

int sign(std::strong_ordering c) {
  if (c == std::strong_ordering::less) return -1;
  if (c == std::strong_ordering::greater) return 1;
  return 0;
}

std::string encode_one(const Value& v) {
  std::string out;
  append_norm_key(v, out);
  return out;
}

/// Curated Int pool: zero, units, the int64 extremes, and the 2^53
/// neighbourhood where a lossy double cast would collapse neighbours.
const std::vector<std::int64_t>& int_pool() {
  static const std::vector<std::int64_t> pool = [] {
    std::vector<std::int64_t> p = {
        0, 1, -1, 2, -2, 42, -1000,
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::min() + 1,
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::max() - 1,
    };
    const std::int64_t two53 = std::int64_t{1} << 53;
    for (std::int64_t d = -2; d <= 2; ++d) {
      p.push_back(two53 + d);
      p.push_back(-two53 + d);
    }
    return p;
  }();
  return pool;
}

/// Curated Double pool: signed zeros, infinities, subnormals, values
/// adjacent to the 2^53 integer boundary, and tiny negatives (the case
/// that breaks naive floor-plus-fraction encodings).
const std::vector<double>& double_pool() {
  static const std::vector<double> pool = {
      0.0, -0.0, 1.0, -1.0, 0.5, -0.5, 1.5, -1.5,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      -std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      9007199254740992.0,                         // 2^53
      std::nextafter(9007199254740992.0, 1e300),  // 2^53 + 2
      -9007199254740992.0,
      9.223372036854776e18,   // just above 2^63
      -9.223372036854776e18,  // at/below -2^63
      1e-300, -1e-300, 1e300, -1e300, 3.141592653589793,
  };
  return pool;
}

const std::vector<std::string>& string_pool() {
  static const std::vector<std::string> pool = {
      "", std::string(1, '\0'), std::string("a\0b", 3),
      std::string("a\0", 2), "a", "ab", "b", "\xff", "\xff\xff",
      std::string("\0\xff", 2), std::string("\xff\0", 2), "zzz",
  };
  return pool;
}

Value random_value(Rng& rng) {
  switch (rng.uniform(0, 9)) {
    case 0:
      return Value::null();
    case 1:
    case 2:
      return Value{int_pool()[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(int_pool().size()) - 1))]};
    case 3:
      return Value{rng.uniform(std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max())};
    case 4:
    case 5:
      return Value{double_pool()[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(double_pool().size()) - 1))]};
    case 6: {
      // Random finite double from raw bits (covers subnormals and the
      // full exponent range; NaN excluded — compare_rows treats it as
      // incomparable, so the order property does not apply to it).
      double d;
      do {
        d = std::bit_cast<double>(rng.next());
      } while (std::isnan(d));
      return Value{d};
    }
    case 7:
      return Value{string_pool()[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(string_pool().size()) - 1))]};
    default: {
      std::string s = rng.ident(static_cast<std::size_t>(rng.uniform(0, 6)));
      if (rng.uniform(0, 3) == 0 && !s.empty())
        s[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(s.size()) - 1))] =
            rng.uniform(0, 1) ? '\0' : '\xff';
      return Value{std::move(s)};
    }
  }
}

Row random_row(Rng& rng) {
  Row r;
  const auto n = rng.uniform(0, 3);
  for (std::int64_t i = 0; i < n; ++i) r.push_back(random_value(rng));
  return r;
}

// The central property, on ~10^5 seeded-random row pairs: byte order of
// the encodings agrees in sign with compare_rows, byte equality is key
// equality, and equal keys hash identically.
TEST(NormKey, OrderMatchesCompareRowsOnRandomPairs) {
  Rng rng(20260806);
  for (int iter = 0; iter < 100000; ++iter) {
    const Row a = random_row(rng);
    const Row b = random_row(rng);
    const std::string ea = encode_norm_key(a);
    const std::string eb = encode_norm_key(b);
    const int want = sign(compare_rows(a, b));
    const int got = sign(norm_key_compare(ea, eb));
    ASSERT_EQ(got, want) << "iter " << iter << ": " << row_to_string(a)
                         << " vs " << row_to_string(b);
    ASSERT_EQ(ea == eb, want == 0);
    if (want == 0) ASSERT_EQ(norm_key_hash(ea), norm_key_hash(eb));
  }
}

TEST(NormKey, RoundTripsOnRandomRows) {
  Rng rng(987654321);
  for (int iter = 0; iter < 20000; ++iter) {
    const Row r = random_row(rng);
    const std::string e = encode_norm_key(r);
    const Row back = decode_norm_key(e);
    // Int-vs-Double identity is deliberately not preserved (equal values
    // encode identically), so assert order-equality and re-encoding.
    ASSERT_EQ(sign(compare_rows(r, back)), 0)
        << "iter " << iter << ": " << row_to_string(r) << " decoded as "
        << row_to_string(back);
    ASSERT_EQ(encode_norm_key(back), e);
  }
}

TEST(NormKey, Int64BeyondTwo53StaysExact) {
  const std::int64_t two53 = std::int64_t{1} << 53;
  // A lossy cast to double would make both ints "equal" to 2^53.0.
  EXPECT_LT(norm_key_compare(encode_one(Value{two53}),
                             encode_one(Value{two53 + 1})),
            0);
  EXPECT_EQ(norm_key_compare(encode_one(Value{two53}),
                             encode_one(Value{9007199254740992.0})),
            0);
  EXPECT_GT(norm_key_compare(encode_one(Value{two53 + 1}),
                             encode_one(Value{9007199254740992.0})),
            0);
  EXPECT_LT(norm_key_compare(
                encode_one(Value{std::numeric_limits<std::int64_t>::max()}),
                encode_one(Value{9.3e18})),
            0);
  EXPECT_GT(norm_key_compare(
                encode_one(Value{std::numeric_limits<std::int64_t>::min()}),
                encode_one(Value{-9.3e18})),
            0);
}

TEST(NormKey, EqualValuesEncodeIdentically) {
  EXPECT_EQ(encode_one(Value{5}), encode_one(Value{5.0}));
  EXPECT_EQ(encode_one(Value{0}), encode_one(Value{0.0}));
  EXPECT_EQ(encode_one(Value{0.0}), encode_one(Value{-0.0}));
  EXPECT_EQ(encode_one(Value{std::int64_t{1} << 40}),
            encode_one(Value{std::ldexp(1.0, 40)}));
}

TEST(NormKey, StringEdgeCases) {
  // Embedded NUL and 0xFF must not confuse the escaping; prefixes sort
  // first, exactly like std::string::compare.
  const std::vector<std::string> ordered = {
      "", std::string(1, '\0'), std::string("\0\xff", 2), "a",
      std::string("a\0", 2), std::string("a\0b", 3), "ab", "\xff"};
  for (std::size_t i = 0; i < ordered.size(); ++i)
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      const int want = sign(Value{ordered[i]}.compare(Value{ordered[j]}));
      const int got = sign(norm_key_compare(encode_one(Value{ordered[i]}),
                                            encode_one(Value{ordered[j]})));
      ASSERT_EQ(got, want) << "strings " << i << " vs " << j;
    }
}

TEST(NormKey, ShorterRowSortsFirst) {
  const Row a = {Value{1}};
  const Row b = {Value{1}, Value{"x"}};
  EXPECT_LT(norm_key_compare(encode_norm_key(a), encode_norm_key(b)), 0);
  EXPECT_EQ(sign(compare_rows(a, b)), -1);
}

TEST(NormKey, DecodeRejectsCorruptInput) {
  const std::string good = encode_norm_key({Value{1}, Value{"ab"}});
  // Any strict prefix that cuts a cell short must throw, not misparse.
  for (std::size_t n = 1; n < good.size(); ++n) {
    const std::string cut = good.substr(0, n);
    if (cut.size() == 1 || cut == good.substr(0, 12))
      continue;  // a whole number of cells is a valid (shorter) key
    EXPECT_THROW(decode_norm_key(cut), Error) << "prefix of " << n;
  }
  EXPECT_THROW(decode_norm_key("\x99"), Error);        // bad cell tag
  EXPECT_THROW(decode_norm_key("\x20\x7f"), Error);    // bad numeric class
  EXPECT_THROW(decode_norm_key("\x30"), Error);        // unterminated string
  std::string bad_escape("\x30x\0\x02", 4);            // bad escape byte
  EXPECT_THROW(decode_norm_key(bad_escape), Error);
}

// Regression tests for the hardened wire-format decoder: truncated or
// corrupt buffers produce a clear Error instead of reading past the end.
TEST(ValueDecode, RejectsTruncatedAndCorruptBuffers) {
  std::string buf;
  Value{std::int64_t{42}}.encode(buf);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    const std::string cut = buf.substr(0, n);
    std::size_t pos = 0;
    EXPECT_THROW(Value::decode(cut, pos), InternalError) << "int cut " << n;
  }

  buf.clear();
  Value{2.5}.encode(buf);
  std::string cut = buf.substr(0, 5);
  std::size_t pos = 0;
  EXPECT_THROW(Value::decode(cut, pos), InternalError);

  buf.clear();
  Value{"hello"}.encode(buf);
  for (std::size_t n = 1; n < buf.size(); ++n) {
    cut = buf.substr(0, n);
    pos = 0;
    EXPECT_THROW(Value::decode(cut, pos), InternalError) << "string cut " << n;
  }

  // A declared string length far past the end of the buffer.
  std::string lying = "S";
  const std::uint32_t huge = 0xFFFFFFFFu;
  lying.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  lying += "xy";
  pos = 0;
  EXPECT_THROW(Value::decode(lying, pos), InternalError);

  pos = 0;
  EXPECT_THROW(Value::decode("Z", pos), InternalError);  // unknown tag
  pos = 0;
  EXPECT_THROW(Value::decode("", pos), InternalError);   // empty buffer
}

TEST(ValueDecode, ErrorMessagesNameTheOffset) {
  std::size_t pos = 0;
  try {
    Value::decode("I\x01\x02", pos);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace ysmart
