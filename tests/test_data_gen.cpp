// Unit tests for the data generators: schema exactness, determinism,
// referential integrity, the distribution properties the paper's queries
// rely on (heavy orders for Q18, late lineitems for Q21, X->Y sessions
// for Q-CSA).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/clicks_gen.h"
#include "data/tpch_gen.h"

namespace ysmart {
namespace {

TpchConfig small_cfg() {
  TpchConfig c;
  c.orders = 800;
  c.parts = 100;
  c.customers = 80;
  c.suppliers = 20;
  return c;
}

TEST(TpchGen, SchemasMatchTables) {
  auto d = generate_tpch(small_cfg());
  EXPECT_EQ(d.lineitem->schema(), tpch_lineitem_schema());
  EXPECT_EQ(d.orders->schema(), tpch_orders_schema());
  EXPECT_EQ(d.part->schema(), tpch_part_schema());
  EXPECT_EQ(d.customer->schema(), tpch_customer_schema());
  EXPECT_EQ(d.supplier->schema(), tpch_supplier_schema());
  EXPECT_EQ(d.nation->schema(), tpch_nation_schema());
}

TEST(TpchGen, RowCounts) {
  auto d = generate_tpch(small_cfg());
  EXPECT_EQ(d.orders->row_count(), 800u);
  EXPECT_EQ(d.part->row_count(), 100u);
  EXPECT_EQ(d.customer->row_count(), 80u);
  EXPECT_EQ(d.supplier->row_count(), 20u);
  EXPECT_EQ(d.nation->row_count(), 25u);
  EXPECT_GT(d.lineitem->row_count(), d.orders->row_count());
}

TEST(TpchGen, Deterministic) {
  auto a = generate_tpch(small_cfg());
  auto b = generate_tpch(small_cfg());
  EXPECT_TRUE(same_rows_unordered(*a.lineitem, *b.lineitem));
  auto cfg2 = small_cfg();
  cfg2.seed = 999;
  auto c = generate_tpch(cfg2);
  EXPECT_FALSE(same_rows_unordered(*a.lineitem, *c.lineitem));
}

TEST(TpchGen, ReferentialIntegrity) {
  auto d = generate_tpch(small_cfg());
  std::set<std::int64_t> orderkeys, partkeys, suppkeys, custkeys;
  for (const auto& r : d.orders->rows()) {
    orderkeys.insert(r[0].as_int());
    custkeys.insert(r[1].as_int());
  }
  for (const auto& r : d.lineitem->rows()) {
    EXPECT_TRUE(orderkeys.count(r[0].as_int()));
    EXPECT_GE(r[1].as_int(), 1);
    EXPECT_LE(r[1].as_int(), 100);  // partkey in range
    EXPECT_GE(r[2].as_int(), 1);
    EXPECT_LE(r[2].as_int(), 20);  // suppkey in range
  }
  for (auto ck : custkeys) {
    EXPECT_GE(ck, 1);
    EXPECT_LE(ck, 80);
  }
}

TEST(TpchGen, Q21PopulationsExist) {
  auto d = generate_tpch(small_cfg());
  int late = 0, f_orders = 0;
  for (const auto& r : d.lineitem->rows())
    if (r[6].as_int() > r[5].as_int()) ++late;  // receipt > commit
  for (const auto& r : d.orders->rows())
    if (r[2].as_string() == "F") ++f_orders;
  // Both predicates must select a substantial but partial population.
  EXPECT_GT(late, static_cast<int>(d.lineitem->row_count()) / 10);
  EXPECT_LT(late, static_cast<int>(d.lineitem->row_count()) * 9 / 10);
  EXPECT_GT(f_orders, 100);
  EXPECT_LT(f_orders, 700);
}

TEST(TpchGen, Q18HeavyOrdersExist) {
  auto d = generate_tpch(small_cfg());
  std::map<std::int64_t, std::int64_t> qty;
  for (const auto& r : d.lineitem->rows()) qty[r[0].as_int()] += r[3].as_int();
  int heavy = 0;
  for (const auto& [k, v] : qty)
    if (v > 300) ++heavy;
  EXPECT_GT(heavy, 0);                                 // some qualify
  EXPECT_LT(heavy, static_cast<int>(qty.size()) / 2);  // most do not
}

TEST(TpchGen, NationNamesIncludeSaudiArabia) {
  auto d = generate_tpch(small_cfg());
  bool found = false;
  for (const auto& r : d.nation->rows())
    if (r[1].as_string() == "SAUDI ARABIA") found = true;
  EXPECT_TRUE(found);
}

TEST(ClicksGen, SchemaAndDeterminism) {
  ClicksConfig c;
  c.users = 100;
  auto a = generate_clicks(c);
  EXPECT_EQ(a->schema(), clicks_schema());
  auto b = generate_clicks(c);
  EXPECT_TRUE(same_rows_unordered(*a, *b));
}

TEST(ClicksGen, TimestampsStrictlyIncreasingPerUser) {
  ClicksConfig c;
  c.users = 50;
  auto t = generate_clicks(c);
  std::map<std::int64_t, std::int64_t> last_ts;
  for (const auto& r : t->rows()) {
    const auto uid = r[0].as_int();
    const auto ts = r[3].as_int();
    auto it = last_ts.find(uid);
    if (it != last_ts.end()) {
      EXPECT_GT(ts, it->second) << "uid " << uid;
    }
    last_ts[uid] = ts;
  }
  EXPECT_EQ(last_ts.size(), 50u);  // every user clicked at least once
}

TEST(ClicksGen, XySessionsExist) {
  // Q-CSA needs users with a category-1 click followed by a category-2
  // click; verify the generator produces them.
  ClicksConfig c;
  c.users = 200;
  auto t = generate_clicks(c);
  std::map<std::int64_t, bool> seen_x;
  int sessions = 0;
  for (const auto& r : t->rows()) {
    const auto uid = r[0].as_int();
    const auto cid = r[2].as_int();
    if (cid == 1) seen_x[uid] = true;
    if (cid == 2 && seen_x[uid]) ++sessions;
  }
  EXPECT_GT(sessions, 10);
}

TEST(ClicksGen, CategoriesInRange) {
  ClicksConfig c;
  c.users = 50;
  c.categories = 7;
  auto t = generate_clicks(c);
  for (const auto& r : t->rows()) {
    EXPECT_GE(r[2].as_int(), 1);
    EXPECT_LE(r[2].as_int(), 7);
  }
}

}  // namespace
}  // namespace ysmart
