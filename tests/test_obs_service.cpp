// Tests for the continuous-observability service: the structured event
// journal, the cross-query flight recorder, the live progress tracker,
// the Prometheus exposition renderer, the loopback HTTP listener, and
// the hardened write_text_file helper.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/http_listener.h"
#include "common/io.h"
#include "common/strings.h"
#include "mr/metrics.h"
#include "obs/http_endpoints.h"
#include "obs/obs.h"
#include "obs/prom_export.h"
#include "storage/table.h"

namespace ysmart {
namespace {

// ---- a strict mini JSON parser (same shape as tests/test_obs.cpp) ----
class MiniJson {
 public:
  explicit MiniJson(std::string_view s) : s_(s) {}
  bool parse() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

std::shared_ptr<Table> tiny_clicks() {
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  for (int i = 0; i < 400; ++i)
    t->append({Value{i % 7}, Value{i % 13}, Value{i % 5}, Value{i}});
  return t;
}

std::unique_ptr<Database> fresh_db() {
  auto db = std::make_unique<Database>(ClusterConfig::small_local(50));
  db->create_table("clicks", tiny_clicks());
  return db;
}

constexpr const char* kSql =
    "SELECT cid, count(*) AS n FROM clicks GROUP BY cid";

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) lines.push_back(line);
  return lines;
}

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// ---- event log ----

TEST(EventLog, EmitAssignsMonotonicSeqAndRendersJsonl) {
  obs::EventLog log;
  log.emit(obs::EventLevel::Info, obs::EventCategory::Map, "a", 1.0,
           {{"bytes", std::uint64_t{7}}, {"label", "x"}});
  log.emit(obs::EventLevel::Warn, obs::EventCategory::Fault, "b", 2.5,
           {{"attempts", 3}});
  ASSERT_EQ(log.size(), 2u);
  const auto evs = log.events();
  EXPECT_EQ(evs[0].seq, 0u);
  EXPECT_EQ(evs[1].seq, 1u);
  const std::string jsonl = log.jsonl();
  for (const auto& line : split_lines(jsonl)) {
    EXPECT_TRUE(MiniJson(line).parse()) << line;
    EXPECT_NE(line.find("\"wall_us\""), std::string::npos);
  }
  EXPECT_NE(jsonl.find("\"category\":\"fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"level\":\"warn\""), std::string::npos);
}

TEST(EventLog, SimOnlyRenderingOmitsWallClock) {
  obs::EventLog log;
  log.emit(obs::EventLevel::Info, obs::EventCategory::Reduce, "r", 3.0);
  const std::string sim_only = log.jsonl(obs::EventLog::IncludeWall::No);
  EXPECT_EQ(sim_only.find("wall_us"), std::string::npos);
  EXPECT_NE(sim_only.find("\"sim_s\":3"), std::string::npos);
}

TEST(EventLog, RingRetentionDropsOldestAndCounts) {
  obs::EventLog log;
  log.set_capacity(3);
  for (int i = 0; i < 10; ++i)
    log.emit(obs::EventLevel::Info, obs::EventCategory::Schedule,
             "e" + std::to_string(i), i);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_emitted(), 10u);
  EXPECT_EQ(log.dropped(), 7u);
  const auto evs = log.events();
  EXPECT_EQ(evs.front().name, "e7");  // oldest retained
  EXPECT_EQ(evs.back().name, "e9");
  EXPECT_EQ(evs.front().seq, 7u);  // seq survives eviction
}

TEST(EventLog, StreamingSinkWritesEveryEvent) {
  const std::string path = testing::TempDir() + "events_sink.jsonl";
  std::remove(path.c_str());
  obs::EventLog log;
  log.set_capacity(2);  // smaller than the emission count
  ASSERT_TRUE(log.open_sink(path));
  for (int i = 0; i < 5; ++i)
    log.emit(obs::EventLevel::Info, obs::EventCategory::Map,
             "e" + std::to_string(i), i);
  log.close_sink();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(MiniJson(line).parse()) << line;
    ++n;
  }
  // The sink streams everything, including events the ring evicted.
  EXPECT_EQ(n, 5);
  std::remove(path.c_str());
}

TEST(EventLog, SinkOpenFailureReportsAndReturnsFalse) {
  obs::EventLog log;
  EXPECT_FALSE(log.open_sink("/definitely-missing-dir/sub/events.jsonl"));
  EXPECT_FALSE(log.sink_open());
}

// ---- flight recorder ----

obs::QueryHistoryRecord rec(const std::string& sql, bool failed = false) {
  obs::QueryHistoryRecord r;
  r.sql = sql;
  r.profile = "ysmart";
  r.jobs = 2;
  r.waves = 2;
  r.sim_total_s = 10;
  r.sim_wall_s = 8;
  r.failed = failed;
  if (failed) r.fail_reason = "disk full";
  r.digest = failed ? "DNF" : "ok";
  r.analyzer_text = "== query doctor ==\n";
  return r;
}

TEST(QueryHistory, RingRetentionAndIds) {
  obs::QueryHistoryStore store;
  store.set_capacity(2);
  store.add(rec("q1"));
  store.add(rec("q2"));
  store.add(rec("q3"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_recorded(), 3u);
  obs::QueryHistoryRecord out;
  ASSERT_TRUE(store.at(0, &out));
  EXPECT_EQ(out.sql, "q3");
  EXPECT_EQ(out.id, 3u);  // ids keep counting across eviction
  ASSERT_TRUE(store.at(1, &out));
  EXPECT_EQ(out.sql, "q2");
  EXPECT_FALSE(store.at(2, &out));
  const auto recent = store.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].sql, "q3");  // most recent first
}

TEST(QueryHistory, JsonExportParsesAndTableRenders) {
  obs::QueryHistoryStore store;
  store.add(rec("SELECT 1"));
  store.add(rec("SELECT 2", /*failed=*/true));
  const std::string json = store.json();
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"total_recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("disk full"), std::string::npos);
  const std::string table = store.table();
  EXPECT_NE(table.find("SELECT 1"), std::string::npos);
  EXPECT_NE(table.find("DNF"), std::string::npos);
}

// ---- progress tracker ----

TEST(Progress, TracksQueryLifecycleMonotonically) {
  obs::ProgressTracker tracker;
  std::vector<std::size_t> tasks_done_seen;
  tracker.set_callback([&](const obs::ProgressSnapshot& s) {
    tasks_done_seen.push_back(s.tasks_done());
  });
  tracker.begin_query("SELECT 1", "ysmart", 2);
  tracker.begin_wave(0, 1);
  tracker.begin_job("JOIN1", /*map_only=*/false, 3, 2);
  tracker.task_done(false, 1.0);
  tracker.task_done(false, 2.0);
  tracker.task_done(false, 3.0);
  tracker.phase_done(false, 1);
  tracker.task_done(true, 4.0);
  tracker.task_done(true, 4.0);
  tracker.phase_done(true, 0);
  tracker.job_done(false, 10.0);

  obs::ProgressSnapshot s = tracker.snapshot();
  EXPECT_TRUE(s.active);
  EXPECT_EQ(s.jobs_done, 1u);
  EXPECT_EQ(s.total_jobs, 2u);
  EXPECT_EQ(s.tasks_done(), 5u);
  EXPECT_EQ(s.tasks_total(), 5u);
  ASSERT_EQ(s.jobs.size(), 1u);
  EXPECT_EQ(s.jobs[0].map.stragglers, 1);
  EXPECT_DOUBLE_EQ(s.sim_done_s, 14.0);
  EXPECT_GE(s.eta_s, 0);  // one job of two left

  tracker.end_query(false, 12.0);
  s = tracker.snapshot();
  EXPECT_FALSE(s.active);
  EXPECT_EQ(s.queries_finished, 1u);
  EXPECT_DOUBLE_EQ(s.sim_elapsed_s, 12.0);
  // Callbacks observed tasks_done never decreasing within the query.
  for (std::size_t i = 1; i < tasks_done_seen.size(); ++i)
    EXPECT_GE(tasks_done_seen[i], tasks_done_seen[i - 1]);
  EXPECT_FALSE(tasks_done_seen.empty());
}

TEST(Progress, EtaStaysFiniteWithZeroCostTasksAndRendersClean) {
  // Every completed task reported 0 simulated seconds (a legal cost-model
  // outcome for empty inputs). The mean-task estimate divides by the task
  // count, not the seconds, so eta must come out 0 — never NaN/inf.
  obs::ProgressTracker tracker;
  tracker.begin_query("SELECT 1", "ysmart", 2);
  tracker.begin_wave(0, 1);
  tracker.begin_job("J1", /*map_only=*/false, 2, 1);
  tracker.task_done(false, 0.0);
  tracker.task_done(false, 0.0);
  const obs::ProgressSnapshot s = tracker.snapshot();
  ASSERT_TRUE(std::isfinite(s.eta_s)) << s.eta_s;
  EXPECT_DOUBLE_EQ(s.eta_s, 0.0);
  const std::string out = s.render();
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;
}

TEST(Progress, EtaUnknownBeforeAnyTaskCompletes) {
  // A started job with zero completed tasks has no basis for an estimate:
  // eta stays at the "unknown" sentinel (-1) and the render shows neither
  // an eta line nor NaN garbage.
  obs::ProgressTracker tracker;
  tracker.begin_query("SELECT 1", "ysmart", 1);
  tracker.begin_wave(0, 1);
  tracker.begin_job("J1", /*map_only=*/false, 4, 2);
  const obs::ProgressSnapshot s = tracker.snapshot();
  EXPECT_DOUBLE_EQ(s.eta_s, -1.0);
  const std::string out = s.render();
  EXPECT_EQ(out.find("eta"), std::string::npos) << out;
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;
}

TEST(Progress, EtaRejectsNonFiniteSimSecondsInput) {
  // Defensive path: poisoned sim_seconds (inf) must not leak into eta_s
  // or the rendered text — the snapshot keeps eta at "unknown" instead.
  obs::ProgressTracker tracker;
  tracker.begin_query("SELECT 1", "ysmart", 3);
  tracker.begin_wave(0, 1);
  tracker.begin_job("J1", /*map_only=*/false, 3, 1);
  tracker.task_done(false, std::numeric_limits<double>::infinity());
  const obs::ProgressSnapshot s = tracker.snapshot();
  EXPECT_FALSE(std::isfinite(s.eta_s) && s.eta_s >= 0)
      << "eta must not be a finite estimate built from inf input";
  EXPECT_DOUBLE_EQ(s.eta_s, -1.0);
  EXPECT_EQ(s.render().find("eta"), std::string::npos) << s.render();
}

TEST(Progress, RenderMentionsStateAndJobs) {
  obs::ProgressTracker tracker;
  EXPECT_NE(tracker.snapshot().render().find("no query"), std::string::npos);
  tracker.begin_query("SELECT x FROM t", "hive", 1);
  tracker.begin_wave(0, 1);
  tracker.begin_job("AGG1", false, 2, 1);
  tracker.task_done(false, 1.0);
  const std::string out = tracker.snapshot().render();
  EXPECT_NE(out.find("SELECT x FROM t"), std::string::npos);
  EXPECT_NE(out.find("AGG1"), std::string::npos);
  EXPECT_NE(out.find("hive"), std::string::npos);
}

// ---- Prometheus exposition ----

TEST(PromExport, SanitizesMetricNames) {
  EXPECT_EQ(obs::prometheus_name("engine.map.tasks"),
            "ysmart_engine_map_tasks");
  EXPECT_EQ(obs::prometheus_name("pool.queue.peak-depth"),
            "ysmart_pool_queue_peak_depth");
}

TEST(PromExport, RendersTypesHelpAndCumulativeBuckets) {
  obs::MetricsRegistry reg;
  reg.add("engine.jobs.run", 2);
  reg.set("pool.workers.size", 8);
  reg.observe("engine.map.task_sim_seconds", 0.05);
  reg.observe("engine.map.task_sim_seconds", 2.0);
  reg.observe("engine.map.task_sim_seconds", 1e9);  // overflow bucket
  const std::string text = obs::render_prometheus(reg);

  EXPECT_NE(text.find("# HELP ysmart_engine_jobs_run_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ysmart_engine_jobs_run_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ysmart_engine_jobs_run_total 2"), std::string::npos);
  // Gauges keep their name unsuffixed and declare the gauge type.
  EXPECT_NE(text.find("# TYPE ysmart_pool_workers_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ysmart_pool_workers_size 8"), std::string::npos);
  EXPECT_EQ(text.find("ysmart_pool_workers_size_total"), std::string::npos);
  // Histogram: cumulative buckets ending at +Inf, then _sum and _count.
  EXPECT_NE(text.find("# TYPE ysmart_engine_map_task_sim_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("ysmart_engine_map_task_sim_seconds_bucket{le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("ysmart_engine_map_task_sim_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("ysmart_engine_map_task_sim_seconds_sum"),
            std::string::npos);

  // Buckets are cumulative: parse the bucket counts in order and check
  // they never decrease and end equal to _count.
  std::uint64_t prev = 0, last = 0;
  int buckets = 0;
  for (const auto& line : split_lines(text)) {
    const std::string prefix = "ysmart_engine_map_task_sim_seconds_bucket{";
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos);
    last = std::stoull(line.substr(sp + 1));
    EXPECT_GE(last, prev) << line;
    prev = last;
    ++buckets;
  }
  EXPECT_EQ(buckets,
            static_cast<int>(obs::MetricsRegistry::kBucketBounds.size()) + 1);
  EXPECT_EQ(last, 3u);
  // Every metric family declares HELP and TYPE exactly once.
  EXPECT_EQ(count_occurrences(text, "# TYPE ysmart_engine_jobs_run_total"), 1);
}

TEST(PromExport, EscapesLabelValuesPerTextFormat) {
  // Text format 0.0.4: inside a label value, backslash, double-quote and
  // newline must be escaped or the exposition line breaks apart.
  EXPECT_EQ(obs::prom_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prom_escape_label("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(obs::prom_escape_label("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::prom_escape_label(""), "");
}

TEST(PromExport, ClusterGaugesExportAggregatesAndTopNodesOnly) {
  auto db = fresh_db();
  obs::ObsContext ctx;
  db->set_observer(&ctx);
  auto run = db->run(kSql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());
  const std::string text = obs::render_prometheus(ctx);

  EXPECT_NE(text.find("# TYPE ysmart_cluster_worker_nodes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ysmart_cluster_busy_seconds_cv gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ysmart_cluster_shuffle_bytes"), std::string::npos);
  // Per-node series exist but stay bounded: at most the top 8 busiest
  // nodes, each with a quoted node label (cardinality guard for the
  // 747-node Facebook preset).
  const int node_series =
      count_occurrences(text, "ysmart_cluster_node_busy_seconds{node=\"");
  EXPECT_GE(node_series, 1);
  EXPECT_LE(node_series, 8);
  EXPECT_EQ(count_occurrences(text, "# TYPE ysmart_cluster_node_busy_seconds"),
            1);
}

TEST(PromExport, CountersReconcileWithQueryMetrics) {
  auto db = fresh_db();
  obs::ObsContext ctx;
  db->set_observer(&ctx);
  auto run = db->run(kSql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());

  std::uint64_t map_tasks = 0, shuffle_wire = 0, dfs_write = 0;
  for (const auto& j : run.metrics.jobs) {
    map_tasks += j.map.tasks;
    shuffle_wire += j.shuffle_bytes_wire;
    dfs_write += j.dfs_write_bytes;
  }
  const std::string text = obs::render_prometheus(ctx);
  auto expect_line = [&](const std::string& name, std::uint64_t value) {
    const std::string line = strf("%s %llu", name.c_str(),
                                  static_cast<unsigned long long>(value));
    EXPECT_NE(text.find("\n" + line + "\n"), std::string::npos)
        << "missing: " << line;
  };
  expect_line("ysmart_engine_jobs_run_total",
              static_cast<std::uint64_t>(run.metrics.jobs.size()));
  expect_line("ysmart_engine_map_tasks_total", map_tasks);
  expect_line("ysmart_engine_shuffle_bytes_wire_total", shuffle_wire);
  expect_line("ysmart_engine_dfs_write_bytes_total", dfs_write);
  // The ObsContext overload also exports journal/flight-recorder gauges.
  expect_line("ysmart_history_recorded_total", 1);
  expect_line("ysmart_queries_finished_total", 1);
  EXPECT_NE(text.find("ysmart_events_emitted_total"), std::string::npos);
}

// ---- HTTP listener ----

std::string http_get(int port, const std::string& request_head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return {};
  }
  (void)::send(fd, request_head.data(), request_head.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(HttpListener, ServesHandlerOnLoopback) {
  HttpListener listener;
  std::string error;
  ASSERT_TRUE(listener.start(
      0,
      [](const std::string& path) -> HttpResponse {
        if (path == "/metrics")
          return {200, "text/plain; version=0.0.4; charset=utf-8",
                  "ysmart_up 1\n"};
        return {404, "text/plain; charset=utf-8", "nope\n"};
      },
      &error))
      << error;
  ASSERT_GT(listener.port(), 0);

  const std::string ok = http_get(
      listener.port(), "GET /metrics?x=1 HTTP/1.0\r\nHost: l\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos) << ok;
  EXPECT_NE(ok.find("ysmart_up 1"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length:"), std::string::npos);

  const std::string missing =
      http_get(listener.port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  const std::string post =
      http_get(listener.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

  listener.stop();
  EXPECT_FALSE(listener.running());
  // A stopped listener can be started again.
  ASSERT_TRUE(listener.start(
      0, [](const std::string&) { return HttpResponse{200, "t", "x"}; },
      &error))
      << error;
  listener.stop();
}

TEST(HttpListener, UnknownPathGets404WithAccurateContentLength) {
  // The 404 path must be a complete HTTP response: status line, a
  // Content-Length that matches the body byte count exactly, and a
  // non-empty body even when the handler returns one empty (the
  // listener substitutes the status text so clients see something).
  HttpListener listener;
  std::string error;
  ASSERT_TRUE(listener.start(
      0,
      [](const std::string& path) -> HttpResponse {
        if (path == "/metrics")
          return {200, "text/plain; charset=utf-8", "ysmart_up 1\n"};
        if (path == "/empty404") return {404, "text/plain; charset=utf-8", ""};
        return {404, "text/plain; charset=utf-8",
                "try /metrics, /healthz, /history.json or /cluster.json\n"};
      },
      &error))
      << error;

  auto check_404 = [&](const std::string& path) -> std::string {
    const std::string resp =
        http_get(listener.port(), "GET " + path + " HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("HTTP/1.0 404 Not Found"), std::string::npos) << resp;
    const std::size_t cl = resp.find("Content-Length: ");
    const std::size_t body_at = resp.find("\r\n\r\n");
    if (cl == std::string::npos || body_at == std::string::npos) {
      ADD_FAILURE() << "incomplete response: " << resp;
      return {};
    }
    const std::size_t len =
        std::stoull(resp.substr(cl + std::strlen("Content-Length: ")));
    const std::string body = resp.substr(body_at + 4);
    EXPECT_EQ(body.size(), len) << resp;
    EXPECT_FALSE(body.empty()) << "404 body must not be empty";
    return body;
  };
  const std::string hint = check_404("/definitely-not-served");
  EXPECT_NE(hint.find("/metrics"), std::string::npos) << hint;
  // Handler returned an empty 404 body: the listener fills in the
  // status text instead of serving a blank page.
  EXPECT_EQ(check_404("/empty404"), "404 Not Found\n");
  listener.stop();
}

TEST(HttpListener, ServesObsEndpointLibraryIncludingHealthzAndPlan) {
  // The endpoint routing that the shell's \serve uses is a library
  // function (obs/http_endpoints.h), so every surface — including
  // /healthz and the plan axis — is testable through a real listener.
  obs::ObsContext ctx;
  HttpListener listener;
  std::string error;
  ASSERT_TRUE(listener.start(
      0,
      [&ctx](const std::string& path) {
        return obs::serve_obs_endpoint(ctx, path);
      },
      &error))
      << error;

  const std::string health =
      http_get(listener.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  // /plan.json serves the disabled-by-default plan store as valid JSON.
  const std::string plan =
      http_get(listener.port(), "GET /plan.json HTTP/1.0\r\n\r\n");
  EXPECT_NE(plan.find("HTTP/1.0 200"), std::string::npos) << plan;
  EXPECT_NE(plan.find("application/json"), std::string::npos);
  const std::size_t body_at = plan.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(MiniJson(plan.substr(body_at + 4)).parse()) << plan;
  EXPECT_NE(plan.find("\"enabled\":false"), std::string::npos);

  // The 404 hint enumerates every served path, the plan axis included.
  const std::string missing =
      http_get(listener.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  for (const char* p : {"/metrics", "/healthz", "/history.json",
                        "/cluster.json", "/plan.json"})
    EXPECT_NE(missing.find(p), std::string::npos) << "hint missing " << p;
  listener.stop();
}

TEST(HttpListener, RebindsTheSamePortImmediatelyAfterStop) {
  // Serving a request leaves the accepted connection in TIME_WAIT on the
  // listener side; SO_REUSEADDR must let the next start() take the same
  // port right away (shell sessions toggle \serve on a fixed port).
  HttpListener listener;
  std::string error;
  auto handler = [](const std::string&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  };
  ASSERT_TRUE(listener.start(0, handler, &error)) << error;
  const int port = listener.port();
  ASSERT_GT(port, 0);
  const std::string resp = http_get(port, "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  listener.stop();

  HttpListener second;
  ASSERT_TRUE(second.start(port, handler, &error))
      << "rebinding port " << port << " failed: " << error;
  EXPECT_EQ(second.port(), port);
  const std::string again = http_get(port, "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("HTTP/1.0 200"), std::string::npos);
  second.stop();
}

TEST(HttpListener, BindFailureNamesTheAddressAndErrno) {
  HttpListener first;
  std::string error;
  ASSERT_TRUE(first.start(
      0, [](const std::string&) { return HttpResponse{}; }, &error))
      << error;
  // A second listener on the occupied port must fail with a message that
  // names the address and the errno text, not just "bind failed".
  HttpListener second;
  EXPECT_FALSE(second.start(
      first.port(), [](const std::string&) { return HttpResponse{}; },
      &error));
  EXPECT_NE(error.find("127.0.0.1"), std::string::npos) << error;
  EXPECT_NE(error.find(std::to_string(first.port())), std::string::npos)
      << error;
  EXPECT_NE(error.find("bind"), std::string::npos) << error;
  first.stop();
}

// ---- write_text_file hardening ----

TEST(WriteTextFile, RoundTripsAndAppendsNewline) {
  const std::string path = testing::TempDir() + "io_roundtrip.txt";
  ASSERT_TRUE(write_text_file(path, "hello"));
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "hello\n");
  std::remove(path.c_str());
}

TEST(WriteTextFile, UnwritablePathReportsAndReturnsFalse) {
  // The parent directory does not exist, so the open fails even as root.
  testing::internal::CaptureStderr();
  EXPECT_FALSE(
      write_text_file("/definitely-missing-dir/sub/file.txt", "body"));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("/definitely-missing-dir/sub/file.txt"),
            std::string::npos)
      << "stderr must name the target path, got: " << err;
}

}  // namespace
}  // namespace ysmart
