// Pins the documented subset restrictions and semantic choices (README
// "Scope and subset restrictions") so deviations stay intentional.
#include <gtest/gtest.h>

#include "api/database.h"
#include "common/error.h"
#include "plan/builder.h"

namespace ysmart {
namespace {

class SubsetTest : public ::testing::Test {
 protected:
  SubsetTest() : db_(ClusterConfig::small_local(1.0)) {
    Schema f;
    f.add("k", ValueType::Int);
    f.add("a", ValueType::Int);
    auto ft = std::make_shared<Table>(f);
    ft->append({Value{1}, Value{10}});
    ft->append({Value{2}, Value{20}});
    db_.create_table("f", ft);
    Schema d;
    d.add("k", ValueType::Int);
    d.add("c", ValueType::Int);
    auto dt = std::make_shared<Table>(d);
    dt->append({Value{1}, Value{5}});
    db_.create_table("d", dt);
  }
  Database db_;
};

TEST_F(SubsetTest, ThetaJoinRejected) {
  EXPECT_THROW(db_.plan("SELECT a FROM f, d WHERE f.k < d.k"), PlanError);
}

TEST_F(SubsetTest, CrossJoinRejected) {
  EXPECT_THROW(db_.plan("SELECT a FROM f, d"), PlanError);
}

TEST_F(SubsetTest, DistinctOnlyInsideCount) {
  EXPECT_THROW(db_.run("SELECT sum(distinct a) FROM f",
                       TranslatorProfile::ysmart()),
               ExecError);
}

TEST_F(SubsetTest, GroupByComputedExpressionRejected) {
  EXPECT_THROW(db_.plan("SELECT k + 1, count(*) FROM f GROUP BY k + 1"),
               PlanError);
}

TEST_F(SubsetTest, HavingWithRawAggregateRejected) {
  EXPECT_THROW(db_.plan("SELECT k FROM f GROUP BY k HAVING sum(a) > 1"),
               PlanError);
}

// Documented semantic choice: with an outer join present, every WHERE
// conjunct (and single-side ON residual) evaluates after the join, i.e.
// padded rows are visible to it.
TEST_F(SubsetTest, OuterJoinWherePostJoinSemantics) {
  // f has k=1 (matching d) and k=2 (padded). WHERE c IS NULL keeps only
  // the padded row — proving the filter ran after padding.
  Table t = db_.run_reference(
      "SELECT f.k AS fk FROM f LEFT OUTER JOIN d ON f.k = d.k WHERE d.c IS NULL");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.rows()[0][0].as_int(), 2);
  auto run = db_.run(
      "SELECT f.k AS fk FROM f LEFT OUTER JOIN d ON f.k = d.k WHERE d.c IS NULL",
      TranslatorProfile::ysmart());
  EXPECT_TRUE(same_rows_unordered(t, *run.result));
}

// Documented: ORDER BY keys must appear in the select list.
TEST_F(SubsetTest, OrderByMustUseOutputColumns) {
  EXPECT_THROW(
      db_.run("SELECT k FROM f ORDER BY a", TranslatorProfile::ysmart()),
      PlanError);
}

// Scalar (non-aggregate) function calls are not part of the subset.
TEST_F(SubsetTest, ScalarFunctionsRejected) {
  EXPECT_THROW(db_.run("SELECT abs(a) FROM f", TranslatorProfile::ysmart()),
               Error);
}

// Derived tables require an alias (standard SQL, enforced).
TEST_F(SubsetTest, DerivedTableAliasRequired) {
  EXPECT_THROW(db_.plan("SELECT x FROM (SELECT a AS x FROM f)"), ParseError);
}

}  // namespace
}  // namespace ysmart
