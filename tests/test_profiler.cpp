// Tests for the host-axis hotspot profiler: thread-local prof:: counter
// gating, allocation accounting, phase aggregation through TaskClock,
// the reconciliation contract between worker CPU / busy-wall / phase
// wall / tracer spans, and the folded-stack + JSON + table exports.
// This binary also runs under TSan in CI as the profiler-on query.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/prof_counters.h"
#include "common/thread_pool.h"
#include "mr/engine.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "storage/table.h"

namespace ysmart {
namespace {

// Clock-noise tolerance for the reconciliation contract: CPU clocks tick
// at ~1-4 ms granularity on some kernels and every comparison below sums
// several independently-sampled intervals, so allow a fixed slack plus a
// 25% proportional band (documented in obs/profiler.h).
constexpr std::uint64_t kClockSlackNs = 20'000'000;  // 20 ms
constexpr double kTolerance = 1.25;

std::uint64_t padded(std::uint64_t ns) {
  return static_cast<std::uint64_t>(static_cast<double>(ns) * kTolerance) +
         kClockSlackNs;
}

MRJobSpec counting_spec() {
  MRJobSpec spec;
  spec.name = "count";
  spec.inputs = {{"/in", 0}};
  Schema out;
  out.add("k", ValueType::Int);
  out.add("n", ValueType::Int);
  spec.outputs = {{"/out", out}};
  struct M final : Mapper {
    void map(const Row& r, int, MapEmitter& e) override {
      e.emit(Row{r[0]}, Row{Value{1}});
    }
  };
  struct R final : Reducer {
    void reduce(const Row& k, std::span<const KeyValue> v,
                ReduceEmitter& e) override {
      e.emit(Row{k[0], Value{static_cast<std::int64_t>(v.size())}});
    }
  };
  spec.make_mapper = [] { return std::make_unique<M>(); };
  spec.make_reducer = [] { return std::make_unique<R>(); };
  return spec;
}

std::shared_ptr<Table> key_rows(int n, int distinct) {
  Schema s;
  s.add("k", ValueType::Int);
  auto t = std::make_shared<Table>(s);
  for (int i = 0; i < n; ++i) t->append({Value{i % distinct}});
  return t;
}

// ---- thread-local counter gating ----

TEST(ProfCounters, DisabledCountsNothing) {
  ASSERT_FALSE(prof::enabled());
  const prof::ThreadCounters before = prof::thread_snapshot();
  prof::count(prof::kCellCompares);
  prof::count(prof::kRowsEvaluated, 100);
  std::vector<int>* v = new std::vector<int>(1000);
  delete v;
  const prof::ThreadCounters after = prof::thread_snapshot();
  EXPECT_EQ(after.dispatch[prof::kCellCompares],
            before.dispatch[prof::kCellCompares]);
  EXPECT_EQ(after.dispatch[prof::kRowsEvaluated],
            before.dispatch[prof::kRowsEvaluated]);
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.frees, before.frees);
}

TEST(ProfCounters, EnabledCountsExactDispatchDeltas) {
  prof::acquire_enabled();
  const prof::ThreadCounters before = prof::thread_snapshot();
  for (int i = 0; i < 7; ++i) prof::count(prof::kCellCompares);
  prof::count(prof::kOperatorRows, 41);
  const prof::ThreadCounters after = prof::thread_snapshot();
  prof::release_enabled();
  EXPECT_EQ(after.dispatch[prof::kCellCompares] -
                before.dispatch[prof::kCellCompares],
            7u);
  EXPECT_EQ(after.dispatch[prof::kOperatorRows] -
                before.dispatch[prof::kOperatorRows],
            41u);
  // Once released, counting stops again.
  ASSERT_FALSE(prof::enabled());
  prof::count(prof::kCellCompares);
  EXPECT_EQ(prof::thread_snapshot().dispatch[prof::kCellCompares],
            after.dispatch[prof::kCellCompares]);
}

TEST(ProfCounters, EnableIsRefcountedAcrossOverlappingHolders) {
  prof::acquire_enabled();
  prof::acquire_enabled();
  prof::release_enabled();
  EXPECT_TRUE(prof::enabled());  // one holder still out
  prof::release_enabled();
  EXPECT_FALSE(prof::enabled());
}

TEST(ProfCounters, AllocationAccountingTracksNewAndDelete) {
  prof::acquire_enabled();
  const prof::ThreadCounters before = prof::thread_snapshot();
  constexpr std::size_t kBytes = 1 << 16;
  char* p = new char[kBytes];
  std::memset(p, 0, kBytes);  // keep the allocation observable
  const prof::ThreadCounters mid = prof::thread_snapshot();
  delete[] p;
  const prof::ThreadCounters after = prof::thread_snapshot();
  prof::release_enabled();
  EXPECT_GE(mid.allocs - before.allocs, 1u);
  EXPECT_GE(mid.alloc_bytes - before.alloc_bytes, kBytes);
  EXPECT_GE(after.frees - mid.frees, 1u);
}

TEST(ProfCounters, CounterNamesAreStableSnakeCase) {
  for (int c = 0; c < prof::kNumCounters; ++c) {
    const char* name = prof::counter_name(c);
    ASSERT_NE(name, nullptr);
    for (const char* q = name; *q; ++q)
      EXPECT_TRUE((*q >= 'a' && *q <= 'z') || *q == '_') << name;
  }
  EXPECT_STREQ(prof::counter_name(prof::kCellCompares), "cell_compares");
  EXPECT_STREQ(prof::counter_name(prof::kRawKeyCompares), "raw_key_compares");
}

// ---- HostProfiler phase lifecycle ----

TEST(HostProfiler, DisabledPhaseBeginReturnsNullAndTaskClockIsInert) {
  obs::HostProfiler prof;
  EXPECT_FALSE(prof.enabled());
  EXPECT_EQ(prof.phase_begin(1, "j", "map"), nullptr);
  {
    obs::TaskClock tc(nullptr);  // must be a no-op, not a crash
  }
  {
    obs::PhaseClock pc(nullptr, 1, "j", "map");
    EXPECT_EQ(pc.agg(), nullptr);
    obs::TaskClock tc(pc.agg());
  }
  EXPECT_EQ(prof.phase_count(), 0u);
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(HostProfiler, AggregatesExactDispatchCountsAcrossPoolChunks) {
  obs::HostProfiler prof;
  prof.set_enabled(true);
  ThreadPool pool(4);
  constexpr std::size_t kRows = 10'000;
  {
    obs::PhaseClock pc(&prof, -1, "job", "map");
    ASSERT_NE(pc.agg(), nullptr);
    pool.parallel_for(kRows, 128, [&](std::size_t b, std::size_t e) {
      obs::TaskClock tc(pc.agg());
      for (std::size_t i = b; i < e; ++i) {
        prof::count(prof::kRowsEvaluated);
        // Touch the allocator so alloc accounting has work to see.
        std::string s(64, 'x');
        s[i % 64] = 'y';
        if (s[0] == 'q') prof::count(prof::kCellCompares);
      }
    });
  }
  ASSERT_EQ(prof.phase_count(), 1u);
  const std::vector<obs::HostPhase> phases = prof.snapshot();
  ASSERT_EQ(phases.size(), 1u);
  const obs::HostPhase& p = phases[0];
  EXPECT_EQ(p.job, "job");
  EXPECT_EQ(p.phase, "map");
  // Dispatch counters aggregate exactly: every chunk reported its delta.
  EXPECT_EQ(p.dispatch[prof::kRowsEvaluated], kRows);
  EXPECT_GT(p.chunks, 0u);
  EXPECT_GT(p.busy_wall_ns, 0u);
  EXPECT_GT(p.phase_wall_ns, 0u);
  EXPECT_GT(p.allocs, 0u);
  // Reconciliation: CPU cannot exceed busy wall; busy wall cannot exceed
  // phase wall x (workers + caller), both within clock tolerance.
  EXPECT_LE(p.cpu_ns, padded(p.busy_wall_ns));
  EXPECT_LE(p.busy_wall_ns, padded(p.phase_wall_ns * (pool.size() + 1)));
}

TEST(HostProfiler, SnapshotSlicingByPhaseCountMark) {
  obs::HostProfiler prof;
  prof.set_enabled(true);
  {
    obs::PhaseClock pc(&prof, -1, "first", "map");
    obs::TaskClock tc(pc.agg());
  }
  const std::size_t mark = prof.phase_count();
  EXPECT_EQ(mark, 1u);
  {
    obs::PhaseClock pc(&prof, -1, "second", "reduce");
    obs::TaskClock tc(pc.agg());
  }
  const auto all = prof.snapshot();
  const auto tail = prof.snapshot(mark);
  ASSERT_EQ(all.size(), 2u);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].job, "second");
  const std::string js = prof.json(mark);
  EXPECT_EQ(js.find("first"), std::string::npos);
  EXPECT_NE(js.find("second"), std::string::npos);
}

TEST(HostProfiler, ClearDropsPhasesButKeepsEnabledState) {
  obs::HostProfiler prof;
  prof.set_enabled(true);
  {
    obs::PhaseClock pc(&prof, -1, "j", "map");
  }
  ASSERT_EQ(prof.phase_count(), 1u);
  prof.clear();
  EXPECT_EQ(prof.phase_count(), 0u);
  EXPECT_TRUE(prof.enabled());
  EXPECT_EQ(prof.process_cpu_ns(), 0u);
}

// ---- full engine run: phases, reconciliation, exports ----

class ProfiledEngineRun : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_.profiler.set_enabled(true);
    auto cfg = ClusterConfig::ec2(8, 1.0);
    Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
    dfs.write("/in", key_rows(3000, 97));
    ThreadPool pool(8);
    Engine engine(dfs, cfg, &pool);
    engine.set_obs(&obs_);
    metrics_ = engine.run(counting_spec());
    phases_ = obs_.profiler.snapshot();
  }

  const obs::HostPhase* find(const std::string& phase) const {
    for (const auto& p : phases_)
      if (p.phase == phase) return &p;
    return nullptr;
  }

  obs::ObsContext obs_;
  JobMetrics metrics_;
  std::vector<obs::HostPhase> phases_;
};

TEST_F(ProfiledEngineRun, RecordsEveryEnginePhase) {
  ASSERT_FALSE(metrics_.failed);
  for (const char* phase : {"map", "shuffle-sort", "reduce", "post-job"}) {
    const obs::HostPhase* p = find(phase);
    ASSERT_NE(p, nullptr) << "missing phase " << phase;
    EXPECT_EQ(p->job, "count");
    EXPECT_GT(p->chunks, 0u) << phase;
    EXPECT_GT(p->phase_wall_ns, 0u) << phase;
  }
  // The hot loops actually dispatched through the counted paths: cells
  // are encoded while mapping, and keys are compared when the map side
  // sorts its buckets and the reduce side groups runs (with one map task
  // the shuffle-sort merge degenerates to a move, so the compares land
  // in the map and reduce phases).
  const obs::HostPhase* map = find("map");
  EXPECT_GT(map->dispatch[prof::kCellsEncoded], 0u);
  const obs::HostPhase* reduce = find("reduce");
  EXPECT_GT(map->dispatch[prof::kRawKeyCompares] +
                map->dispatch[prof::kCellCompares] +
                reduce->dispatch[prof::kRawKeyCompares] +
                reduce->dispatch[prof::kCellCompares],
            0u);
}

TEST_F(ProfiledEngineRun, PhasesSatisfyTheReconciliationContract) {
  ASSERT_FALSE(phases_.empty());
  for (const auto& p : phases_) {
    // Summed worker CPU <= summed busy wall: a thread cannot burn more
    // CPU than the wall time it was running.
    EXPECT_LE(p.cpu_ns, padded(p.busy_wall_ns)) << p.job << "/" << p.phase;
    // Summed busy wall <= phase wall x (pool + caller): at most
    // pool+1 threads can be inside the phase at once.
    EXPECT_LE(p.busy_wall_ns, padded(p.phase_wall_ns * 9))
        << p.job << "/" << p.phase;
  }
  // Phase walls reconcile with the tracer's wall-axis spans: the
  // PhaseClock brackets the same region the span covers, so the span
  // can only be (tolerably) wider.
  const std::vector<obs::Span> spans = obs_.tracer.spans();
  int matched = 0;
  for (const auto& p : phases_) {
    if (p.span_id < 0) continue;
    for (const auto& s : spans) {
      if (s.id != p.span_id) continue;
      ++matched;
      const auto span_wall_ns =
          static_cast<std::uint64_t>(s.wall_dur_us * 1000.0);
      EXPECT_LE(p.phase_wall_ns, padded(span_wall_ns))
          << p.job << "/" << p.phase;
    }
  }
  EXPECT_GT(matched, 0);
}

TEST_F(ProfiledEngineRun, FoldedStacksExportIsWellFormed) {
  const std::string folded = obs_.profiler.folded_stacks(obs_.tracer);
  ASSERT_FALSE(folded.empty());
  std::istringstream iss(folded);
  std::string line;
  int lines = 0;
  bool saw_map = false;
  while (std::getline(iss, line)) {
    ++lines;
    // "frame;frame;... <weight>" — last space separates a positive int.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    const std::string weight = line.substr(sp + 1);
    ASSERT_FALSE(weight.empty()) << line;
    for (char c : weight) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_GT(std::stoull(weight), 0u) << line;
    if (line.find("map") != std::string::npos) saw_map = true;
  }
  EXPECT_GE(lines, 4);  // map, shuffle-sort, reduce, post-job at least
  EXPECT_TRUE(saw_map);
  // Span ancestry made it into the paths (job span is a frame).
  EXPECT_NE(folded.find(';'), std::string::npos);
}

TEST_F(ProfiledEngineRun, HotspotsTableRanksAndTotalsDispatch) {
  const std::string table = obs_.profiler.hotspots_table();
  EXPECT_NE(table.find("host hotspots"), std::string::npos);
  EXPECT_NE(table.find("count/map"), std::string::npos);
  EXPECT_NE(table.find("dispatch totals:"), std::string::npos);
  EXPECT_NE(table.find("cell_compares"), std::string::npos);
}

TEST_F(ProfiledEngineRun, JsonCarriesSchemaVersionAndCounters) {
  const std::string js = obs_.profiler.json();
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(js.find("\"process_cpu_ms\""), std::string::npos);
  EXPECT_NE(js.find("\"phases\":["), std::string::npos);
  EXPECT_NE(js.find("\"busy_wall_ms\""), std::string::npos);
  for (int c = 0; c < prof::kNumCounters; ++c)
    EXPECT_NE(js.find(std::string{"\""} + prof::counter_name(c) + "\""),
              std::string::npos)
        << prof::counter_name(c);
}

// ---- query-level process CPU bracket through the Database API ----

TEST(HostProfilerQuery, ProcessCpuCoversTheSummedPhaseCpu) {
  Database db(ClusterConfig::small_local(50));
  db.create_table("t", key_rows(5000, 31));
  obs::ObsContext obs;
  obs.profiler.set_enabled(true);
  db.set_observer(&obs);
  const auto run =
      db.run("SELECT k, count(*) AS n FROM t GROUP BY k ORDER BY k",
             TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());

  const std::uint64_t proc = obs.profiler.process_cpu_ns();
  EXPECT_GT(proc, 0u);
  std::uint64_t phase_cpu = 0;
  bool saw_translate = false;
  for (const auto& p : obs.profiler.snapshot()) {
    phase_cpu += p.cpu_ns;
    if (p.phase == "translate") saw_translate = true;
  }
  EXPECT_TRUE(saw_translate);
  // Phase CPU is a subset of the query's whole-process CPU (the bracket
  // also covers planning, DFS writes, result collection, ...).
  EXPECT_LE(phase_cpu, padded(proc));
}

}  // namespace
}  // namespace ysmart
