// Unit tests for the row-vector operators: filter/project, group join
// (inner + all outer flavors, residuals, padding), hash join, grouped
// aggregation, sorting.
#include <gtest/gtest.h>

#include "exec/operators.h"
#include "plan/builder.h"
#include "sql/parser.h"

namespace ysmart {
namespace {

Schema xy() {
  Schema s;
  s.add("x", ValueType::Int);
  s.add("y", ValueType::Int);
  return s;
}

TEST(FilterProject, FilterOnly) {
  BoundExpr f(parse_expression("x > 1"), xy());
  auto out = filter_project({{Value{1}, Value{10}}, {Value{2}, Value{20}}},
                            &f, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].as_int(), 2);
}

TEST(FilterProject, ProjectOnly) {
  auto projections = bind_all({parse_expression("y + 1")}, xy());
  auto out = filter_project({{Value{1}, Value{10}}}, nullptr, projections);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0][0].as_int(), 11);
}

TEST(FilterProject, NullFilterDropsRow) {
  BoundExpr f(parse_expression("x > y"), xy());
  auto out = filter_project({{Value::null(), Value{1}}}, &f, {});
  EXPECT_TRUE(out.empty());  // NULL comparison is not true
}

struct JoinFixture {
  // left rows: (k, a); right rows: (k, b)
  GroupJoinSpec spec;
  JoinFixture() {
    spec.left_width = 2;
    spec.right_width = 2;
    spec.left_key_idx = {0};
    spec.right_key_idx = {0};
  }
};

TEST(GroupJoin, InnerCrossMatches) {
  JoinFixture f;
  auto out = join_group(f.spec, {{Value{1}, Value{10}}, {Value{1}, Value{11}}},
                        {{Value{1}, Value{20}}, {Value{1}, Value{21}}});
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].size(), 4u);
}

TEST(GroupJoin, InnerNoMatchEmitsNothing) {
  JoinFixture f;
  auto out = join_group(f.spec, {{Value{1}, Value{10}}}, {});
  EXPECT_TRUE(out.empty());
}

TEST(GroupJoin, LeftOuterPadsUnmatched) {
  JoinFixture f;
  f.spec.type = JoinType::Left;
  auto out = join_group(f.spec, {{Value{1}, Value{10}}}, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0][2].is_null());
  EXPECT_TRUE(out[0][3].is_null());
}

TEST(GroupJoin, RightOuterPadsUnmatched) {
  JoinFixture f;
  f.spec.type = JoinType::Right;
  auto out = join_group(f.spec, {}, {{Value{2}, Value{20}}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0][0].is_null());
  EXPECT_EQ(out[0][2].as_int(), 2);
}

TEST(GroupJoin, FullOuterPadsBothSides) {
  JoinFixture f;
  f.spec.type = JoinType::Full;
  auto out = join_group(f.spec, {{Value{1}, Value{10}}}, {{Value{2}, Value{20}}});
  EXPECT_EQ(out.size(), 2u);  // both unmatched, both padded
}

TEST(GroupJoin, NullKeysNeverMatch) {
  JoinFixture f;
  auto out = join_group(f.spec, {{Value::null(), Value{10}}},
                        {{Value::null(), Value{20}}});
  EXPECT_TRUE(out.empty());
}

TEST(GroupJoin, ResidualAppliesAfterPadding) {
  // WHERE-style residual "right key IS NULL" keeps only padded rows.
  JoinFixture f;
  f.spec.type = JoinType::Left;
  Schema combined;
  combined.add("lk", ValueType::Int);
  combined.add("a", ValueType::Int);
  combined.add("rk", ValueType::Int);
  combined.add("b", ValueType::Int);
  BoundExpr residual(parse_expression("rk IS NULL"), combined);
  f.spec.residual = &residual;
  auto out = join_group(f.spec,
                        {{Value{1}, Value{10}}, {Value{2}, Value{11}}},
                        {{Value{1}, Value{20}}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].as_int(), 2);
}

TEST(GroupJoin, ProjectionsShapeOutput) {
  JoinFixture f;
  Schema combined;
  combined.add("lk", ValueType::Int);
  combined.add("a", ValueType::Int);
  combined.add("rk", ValueType::Int);
  combined.add("b", ValueType::Int);
  auto projections = bind_all({parse_expression("a + b")}, combined);
  f.spec.projections = &projections;
  auto out = join_group(f.spec, {{Value{1}, Value{10}}}, {{Value{1}, Value{20}}});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0][0].as_int(), 30);
}

// hash_join must agree with join_group bucketing on a plan-built join.
TEST(HashJoin, MatchesExpectedRows) {
  Catalog c;
  c.register_table("l", xy());
  Schema rz;
  rz.add("x", ValueType::Int);
  rz.add("z", ValueType::Int);
  c.register_table("r", rz);
  auto p = plan_query("SELECT y, z FROM l, r WHERE l.x = r.x", c);
  std::vector<Row> left{{Value{1}, Value{10}}, {Value{2}, Value{20}},
                        {Value::null(), Value{30}}};
  std::vector<Row> right{{Value{1}, Value{100}}, {Value{1}, Value{101}},
                         {Value{3}, Value{300}}};
  auto out = hash_join(*p, left, right);
  ASSERT_EQ(out.size(), 2u);  // key 1 matches twice; null and 2/3 don't
}

TEST(AggregateRows, GroupsAndProjects) {
  Catalog c;
  c.register_table("t", xy());
  auto p = plan_query("SELECT x, sum(y) + 1 AS s FROM t GROUP BY x", c);
  auto out = aggregate_rows(
      *p, {{Value{1}, Value{10}}, {Value{1}, Value{5}}, {Value{2}, Value{7}}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].as_int(), 1);
  EXPECT_EQ(out[0][1].as_int(), 16);
  EXPECT_EQ(out[1][1].as_int(), 8);
}

TEST(AggregateRows, GlobalAggOnEmptyInputYieldsOneRow) {
  Catalog c;
  c.register_table("t", xy());
  auto p = plan_query("SELECT count(*) AS n, sum(y) AS s FROM t", c);
  auto out = aggregate_rows(*p, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].as_int(), 0);
  EXPECT_TRUE(out[0][1].is_null());
}

TEST(AggregateRows, GroupedAggOnEmptyInputYieldsNothing) {
  Catalog c;
  c.register_table("t", xy());
  auto p = plan_query("SELECT x, count(*) FROM t GROUP BY x", c);
  EXPECT_TRUE(aggregate_rows(*p, {}).empty());
}

TEST(SortRows, DescAndLimit) {
  Catalog c;
  c.register_table("t", xy());
  auto p = plan_query("SELECT x, y FROM t ORDER BY y DESC LIMIT 2", c);
  auto out = sort_rows(*p, {{Value{1}, Value{5}},
                            {Value{2}, Value{9}},
                            {Value{3}, Value{7}}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][1].as_int(), 9);
  EXPECT_EQ(out[1][1].as_int(), 7);
}

TEST(SortRows, StableOnTies) {
  Catalog c;
  c.register_table("t", xy());
  auto p = plan_query("SELECT x, y FROM t ORDER BY x", c);
  auto out = sort_rows(*p, {{Value{1}, Value{1}},
                            {Value{1}, Value{2}},
                            {Value{0}, Value{3}}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1][1].as_int(), 1);  // original order kept within ties
  EXPECT_EQ(out[2][1].as_int(), 2);
}

}  // namespace
}  // namespace ysmart
