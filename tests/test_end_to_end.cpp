// End-to-end differential tests: every paper query, executed through the
// full stack (SQL -> plan -> translator -> CMF -> simulated MapReduce),
// must produce exactly the rows the single-node reference engine
// produces — for every translator profile — and the job counts must
// match the paper's (Section VII-A / VII-D).
#include <gtest/gtest.h>

#include "api/database.h"
#include "data/clicks_gen.h"
#include "data/queries.h"
#include "data/tpch_gen.h"

namespace ysmart {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static Database* db_;

  static void SetUpTestSuite() {
    db_ = new Database(ClusterConfig::small_local(/*sim_scale=*/50));
    TpchConfig tc;
    tc.orders = 1200;
    tc.parts = 300;
    tc.customers = 250;
    tc.suppliers = 40;
    auto tpch = generate_tpch(tc);
    db_->create_table("lineitem", tpch.lineitem);
    db_->create_table("orders", tpch.orders);
    db_->create_table("part", tpch.part);
    db_->create_table("customer", tpch.customer);
    db_->create_table("supplier", tpch.supplier);
    db_->create_table("nation", tpch.nation);
    ClicksConfig cc;
    cc.users = 300;
    cc.mean_clicks_per_user = 25;
    db_->create_table("clicks", generate_clicks(cc));
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  void check_query(const queries::PaperQuery& q) {
    SCOPED_TRACE(q.id);
    Table expected = db_->run_reference(q.sql);

    for (const auto& profile :
         {TranslatorProfile::ysmart(), TranslatorProfile::hive(),
          TranslatorProfile::pig(), TranslatorProfile::hand_coded()}) {
      SCOPED_TRACE(profile.name);
      auto run = db_->run(q.sql, profile);
      ASSERT_TRUE(run.result != nullptr);
      EXPECT_TRUE(same_rows_unordered(expected, *run.result))
          << "expected " << expected.row_count() << " rows, got "
          << run.result->row_count() << "\nexpected:\n"
          << expected.to_string(10) << "\ngot:\n"
          << run.result->to_string(10);
      const int expect_jobs =
          profile.correlation_aware ? q.ysmart_jobs : q.one_op_jobs;
      EXPECT_EQ(run.metrics.job_count(), expect_jobs);
      EXPECT_GT(run.metrics.total_time_s(), 0);
    }
  }
};

Database* EndToEndTest::db_ = nullptr;

TEST_F(EndToEndTest, QAgg) { check_query(queries::qagg()); }
TEST_F(EndToEndTest, Q17) { check_query(queries::q17()); }
TEST_F(EndToEndTest, Q18) { check_query(queries::q18()); }
TEST_F(EndToEndTest, Q21) { check_query(queries::q21()); }
TEST_F(EndToEndTest, QCsa) { check_query(queries::qcsa()); }
TEST_F(EndToEndTest, Q21Subtree) { check_query(queries::q21_subtree()); }

// The Fig. 9 ablation stages: Rule 1 only -> 3 jobs; Rules 2-4 only ->
// the JFC chain without shared scans; everything -> 1 job.
TEST_F(EndToEndTest, Q21SubtreeAblationStages) {
  Table expected = db_->run_reference(queries::q21_subtree().sql);

  auto rule1_only = TranslatorProfile::ysmart();
  rule1_only.name = "ysmart-rule1";
  rule1_only.use_job_flow_correlation = false;
  auto r1 = db_->run(queries::q21_subtree().sql, rule1_only);
  EXPECT_EQ(r1.metrics.job_count(), 3);
  EXPECT_TRUE(same_rows_unordered(expected, *r1.result));

  auto jfc_only = TranslatorProfile::ysmart();
  jfc_only.name = "ysmart-jfc";
  jfc_only.use_input_transit_correlation = false;
  auto r2 = db_->run(queries::q21_subtree().sql, jfc_only);
  EXPECT_TRUE(same_rows_unordered(expected, *r2.result));
  EXPECT_LE(r2.metrics.job_count(), 5);
}

// The ordered queries must also respect ORDER BY on the sort keys (row
// multisets are checked above; here we verify the key ordering).
TEST_F(EndToEndTest, Q18OrderedBySortKeys) {
  auto run = db_->run(queries::q18().sql, TranslatorProfile::ysmart());
  const auto& rows = run.result->rows();
  const auto price = run.result->schema().index_of("o_totalprice");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i][price].numeric(), rows[i - 1][price].numeric())
        << "row " << i << " breaks DESC order";
  }
}

// YSmart on the merged queries must scan lineitem fewer times: its total
// map input bytes must be well below the one-op-per-job translation's.
TEST_F(EndToEndTest, YsmartReadsLessThanHive) {
  for (const auto* q : {&queries::q17(), &queries::q21(), &queries::qcsa()}) {
    SCOPED_TRACE(q->id);
    auto ys = db_->run(q->sql, TranslatorProfile::ysmart());
    auto hv = db_->run(q->sql, TranslatorProfile::hive());
    EXPECT_LT(ys.metrics.total_map_input_bytes(),
              hv.metrics.total_map_input_bytes());
    EXPECT_LT(ys.metrics.total_time_s(), hv.metrics.total_time_s());
  }
}

}  // namespace
}  // namespace ysmart
