// Unit tests for Value / Row: typing, ordering, hashing, encoding.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/value.h"

namespace ysmart {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::Null);
  EXPECT_EQ(v.to_string(), "NULL");
}

TEST(Value, IntAccessors) {
  Value v{42};
  EXPECT_EQ(v.type(), ValueType::Int);
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.numeric(), 42.0);
  EXPECT_THROW(v.as_string(), ExecError);
  EXPECT_THROW(v.as_double(), ExecError);
}

TEST(Value, DoubleAccessors) {
  Value v{2.5};
  EXPECT_EQ(v.type(), ValueType::Double);
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  EXPECT_THROW(v.as_int(), ExecError);
}

TEST(Value, StringAccessors) {
  Value v{"hello"};
  EXPECT_EQ(v.type(), ValueType::String);
  EXPECT_EQ(v.as_string(), "hello");
  EXPECT_THROW(v.numeric(), ExecError);
}

TEST(Value, NullThrowsOnNumeric) {
  EXPECT_THROW(Value::null().numeric(), ExecError);
}

TEST(Value, CrossNumericComparison) {
  EXPECT_EQ(Value{1}.compare(Value{1.0}), std::strong_ordering::equal);
  EXPECT_TRUE(Value{1}.compare(Value{1.5}) < 0);
  EXPECT_TRUE(Value{2}.compare(Value{1.5}) > 0);
}

TEST(Value, NullSortsFirst) {
  EXPECT_TRUE(Value::null().compare(Value{-100}) < 0);
  EXPECT_TRUE(Value::null().compare(Value{"a"}) < 0);
  EXPECT_EQ(Value::null().compare(Value::null()), std::strong_ordering::equal);
}

TEST(Value, NumericSortsBeforeString) {
  EXPECT_TRUE(Value{999999}.compare(Value{""}) < 0);
}

TEST(Value, StringOrdering) {
  EXPECT_TRUE(Value{"abc"}.compare(Value{"abd"}) < 0);
  EXPECT_EQ(Value{"x"}.compare(Value{"x"}), std::strong_ordering::equal);
}

TEST(Value, HashConsistentWithEquality) {
  // Ints and equal doubles must hash identically (they compare equal).
  EXPECT_EQ(Value{7}.hash(), Value{7.0}.hash());
  EXPECT_EQ(Value{"s"}.hash(), Value{"s"}.hash());
}

TEST(Value, EncodeDecodeRoundTrip) {
  for (const Value& v :
       {Value::null(), Value{-5}, Value{3.25}, Value{"text with spaces"},
        Value{""}, Value{std::int64_t{1} << 60}}) {
    std::string buf;
    v.encode(buf);
    std::size_t pos = 0;
    Value back = Value::decode(buf, pos);
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(v.compare(back), std::strong_ordering::equal);
    EXPECT_EQ(v.type(), back.type());
  }
}

TEST(Value, DecodeRejectsTruncated) {
  std::string buf;
  Value{12345}.encode(buf);
  buf.resize(buf.size() - 1);
  std::size_t pos = 0;
  EXPECT_THROW(Value::decode(buf, pos), InternalError);
}

TEST(Value, ByteSizes) {
  EXPECT_EQ(Value::null().byte_size(), 1u);
  EXPECT_EQ(Value{1}.byte_size(), 8u);
  EXPECT_EQ(Value{1.0}.byte_size(), 8u);
  EXPECT_EQ(Value{"abcd"}.byte_size(), 6u);  // 2 framing + 4 payload
}

TEST(Row, ByteSizeSumsCellsPlusFraming) {
  Row r{Value{1}, Value{"ab"}};
  EXPECT_EQ(row_byte_size(r), 4u + 8u + 4u);
}

TEST(Row, CompareLexicographic) {
  EXPECT_TRUE(compare_rows({Value{1}, Value{2}}, {Value{1}, Value{3}}) < 0);
  EXPECT_EQ(compare_rows({Value{1}}, {Value{1}}), std::strong_ordering::equal);
  EXPECT_TRUE(compare_rows({Value{1}}, {Value{1}, Value{0}}) < 0);  // prefix first
}

TEST(Row, HashDiffersOnOrder) {
  RowHash h;
  EXPECT_NE(h({Value{1}, Value{2}}), h({Value{2}, Value{1}}));
}

TEST(Row, ToString) {
  EXPECT_EQ(row_to_string({Value{1}, Value{"x"}, Value::null()}),
            "(1, x, NULL)");
}

}  // namespace
}  // namespace ysmart
