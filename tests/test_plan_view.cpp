// Unit tests for the plan axis (obs/plan_view.h): the q-error
// convention, the translate-time predictor and its CostModel
// reconciliation contract, the predicted-vs-actual join, and the
// PlanViewStore's bounding and determinism guarantees.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "mr/cost_model.h"
#include "mr/metrics.h"
#include "obs/obs.h"
#include "obs/plan_view.h"

namespace ysmart {
namespace {

// ---- a strict mini JSON parser (same shape as tests/test_obs.cpp) ----
class MiniJson {
 public:
  explicit MiniJson(std::string_view s) : s_(s) {}
  bool parse() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- q-error convention ----

TEST(QError, SymmetricRatioAboveOne) {
  EXPECT_DOUBLE_EQ(obs::q_error(2, 8), 4.0);
  EXPECT_DOUBLE_EQ(obs::q_error(8, 2), 4.0);
  EXPECT_DOUBLE_EQ(obs::q_error(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(obs::q_error(0.5, 2), 4.0);
}

TEST(QError, BothNonPositiveIsExactlyOne) {
  EXPECT_DOUBLE_EQ(obs::q_error(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::q_error(-3, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::q_error(-1, -7), 1.0);
}

TEST(QError, OneSidedZeroStaysFiniteAndMonotone) {
  // A missed-entirely prediction must rank worse the bigger the miss,
  // without going infinite (the naive ratio would).
  EXPECT_DOUBLE_EQ(obs::q_error(0, 5), 6.0);
  EXPECT_DOUBLE_EQ(obs::q_error(5, 0), 6.0);  // symmetric
  EXPECT_GT(obs::q_error(0, 100), obs::q_error(0, 5));
  EXPECT_TRUE(std::isfinite(obs::q_error(0, 1e18)));
}

// ---- predictor: determinism and the CostModel replay contract ----

std::shared_ptr<Table> tiny_clicks() {
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  for (int i = 0; i < 400; ++i)
    t->append({Value{i % 7}, Value{i % 13}, Value{i % 5}, Value{i}});
  return t;
}

std::shared_ptr<Table> tiny_users() {
  Schema us;
  us.add("id", ValueType::Int);
  us.add("region", ValueType::Int);
  auto t = std::make_shared<Table>(us);
  for (int i = 0; i < 7; ++i) t->append({Value{i}, Value{i % 3}});
  return t;
}

std::unique_ptr<Database> fresh_db() {
  auto db = std::make_unique<Database>(ClusterConfig::small_local(50));
  db->create_table("clicks", tiny_clicks());
  db->create_table("users", tiny_users());
  return db;
}

// A join + aggregation: translates to a multi-job plan under the
// one-op-one-job baseline and exercises both phases everywhere.
constexpr const char* kJoinAggSql =
    "SELECT u.region, count(*) AS n FROM clicks c, users u "
    "WHERE c.uid = u.id GROUP BY u.region";

TEST(PredictQuery, PureAndDeterministic) {
  auto db = fresh_db();
  const auto profile = TranslatorProfile::ysmart();
  TranslatedQuery q = db->translate_query(kJoinAggSql, profile);
  const obs::QueryPrediction a = obs::predict_query(
      q, profile, db->stats(), db->dfs(), db->cluster(), kJoinAggSql);
  const obs::QueryPrediction b = obs::predict_query(
      q, profile, db->stats(), db->dfs(), db->cluster(), kJoinAggSql);
  EXPECT_EQ(a.json(), b.json());
  ASSERT_FALSE(a.jobs.empty());
  EXPECT_GT(a.jobs.front().input_rows, 0u);
  EXPECT_GT(a.wall_time_s, 0.0);
  EXPECT_TRUE(MiniJson(a.json()).parse()) << a.json();
}

TEST(PredictQuery, PhaseSecondsEqualStandaloneCostModelReplay) {
  // The reconciliation contract from the plan_view.h header: the stored
  // per-phase seconds are EXACTLY a CostModel replay of the retained
  // work groups — EXPECT_EQ, not near.
  auto db = fresh_db();
  const auto profile = TranslatorProfile::ysmart();
  TranslatedQuery q = db->translate_query(kJoinAggSql, profile);
  const obs::QueryPrediction pred = obs::predict_query(
      q, profile, db->stats(), db->dfs(), db->cluster(), kJoinAggSql);
  const CostModel cost(db->cluster());
  ASSERT_FALSE(pred.jobs.empty());
  double total = 0;
  for (const auto& jp : pred.jobs) {
    std::vector<double> map_times;
    std::uint64_t map_tasks = 0;
    for (const auto& g : jp.map_work) {
      const double t = cost.map_task_seconds(g.work, jp.map_cpu_multiplier);
      for (std::uint64_t i = 0; i < g.count; ++i) map_times.push_back(t);
      map_tasks += g.count;
    }
    EXPECT_EQ(map_tasks, jp.map_tasks) << jp.name;
    const double map_s =
        map_times.empty() ? 0.0 : CostModel::makespan(map_times, jp.map_slots);
    EXPECT_EQ(map_s, jp.map_time_s) << jp.name;

    std::vector<double> red_times;
    for (const auto& g : jp.reduce_work) {
      const double t =
          cost.reduce_task_seconds(g.work, jp.reduce_cpu_multiplier);
      for (std::uint64_t i = 0; i < g.count; ++i) red_times.push_back(t);
    }
    const double red_s =
        red_times.empty() ? 0.0
                          : CostModel::makespan(red_times, jp.reduce_slots);
    EXPECT_EQ(red_s, jp.reduce_time_s) << jp.name;
    if (jp.map_only) {
      EXPECT_TRUE(jp.reduce_work.empty()) << jp.name;
      EXPECT_EQ(jp.reduce_time_s, 0.0) << jp.name;
    }
    EXPECT_EQ(jp.total_time_s(),
              jp.sched_delay_s + jp.map_time_s + jp.reduce_time_s);
    total += jp.total_time_s();
  }
  EXPECT_EQ(pred.total_time_s(), total);
}

TEST(PredictQuery, EndToEndJoinMatchesExecutedJobNames) {
  auto db = fresh_db();
  obs::ObsContext ctx;
  ctx.plans.set_enabled(true);
  db->set_observer(&ctx);
  auto run = db->run(kJoinAggSql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());
  // The prediction was consumed by the join at end of run().
  EXPECT_EQ(ctx.plans.pending_count(), 0u);
  ASSERT_EQ(ctx.plans.report_count(), 1u);
  obs::PlanReport rep;
  ASSERT_TRUE(ctx.plans.last_report(&rep));
  EXPECT_TRUE(rep.executed);
  EXPECT_EQ(rep.actual_jobs, run.metrics.job_count());
  ASSERT_EQ(rep.jobs.size(), run.metrics.jobs.size());
  for (std::size_t i = 0; i < rep.jobs.size(); ++i)
    EXPECT_EQ(rep.jobs[i].name, run.metrics.jobs[i].job_name);
  // The actual side of the join reproduces the engine's measurements:
  // input rows act == the engine's measured map input records, exactly.
  for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
    ASSERT_FALSE(rep.jobs[i].rows.empty());
    EXPECT_EQ(rep.jobs[i].rows[0].metric, "input_rows");
    EXPECT_EQ(rep.jobs[i].rows[0].act,
              static_cast<double>(run.metrics.jobs[i].map.input_records));
  }
  // Base-table inputs are fully known at translate time: the first job's
  // input rows must be dead-on (q == 1 for that row).
  EXPECT_EQ(rep.jobs[0].rows[0].q, 1.0);
  // Text + JSON render without falling over, and the JSON parses.
  EXPECT_NE(rep.text().find("== plan view"), std::string::npos);
  EXPECT_TRUE(MiniJson(rep.json(/*full=*/true)).parse());
  EXPECT_TRUE(MiniJson(rep.json(/*full=*/false)).parse());
  // The compact form drops the heavyweight work groups.
  EXPECT_EQ(rep.json(false).find("\"map_work\""), std::string::npos);
  EXPECT_NE(rep.json(true).find("\"map_work\""), std::string::npos);
}

// ---- join against actuals: edge cases ----

obs::QueryPrediction synthetic_prediction(const std::string& job_name,
                                          bool map_only = false) {
  obs::QueryPrediction p;
  p.profile = "ysmart";
  p.sql = "SELECT 1";
  obs::JobPrediction j;
  j.name = job_name;
  j.map_only = map_only;
  j.input_rows = 10;
  j.input_bytes = 100;
  j.map_output_records = 10;
  j.map_output_bytes_raw = 100;
  j.map_output_bytes_wire = 80;
  if (!map_only) {
    j.reduce_records = 10;
    j.reduce_groups = 5;
    j.target_reduce_tasks = 2;
  }
  j.map_time_s = 1.0;
  j.reduce_time_s = map_only ? 0.0 : 2.0;
  p.jobs.push_back(std::move(j));
  p.waves = 1;
  p.wall_time_s = p.total_time_s();
  return p;
}

QueryMetrics synthetic_metrics(const std::string& job_name) {
  QueryMetrics m;
  JobMetrics j;
  j.job_name = job_name;
  j.map.input_records = 10;
  j.map.input_bytes = 100;
  j.map.output_records = 20;  // predictor said 10: q == 2
  j.shuffle_bytes_wire = 80;
  j.map_time_s = 1.0;
  j.reduce_time_s = 4.0;  // predictor said 2: q == 2
  m.jobs.push_back(std::move(j));
  m.wall_time_s = 5.0;
  return m;
}

TEST(JoinPlanActuals, EmptyMetricsYieldsPredictionOnlyReport) {
  const auto pred = synthetic_prediction("AGG1");
  const obs::PlanReport rep =
      obs::join_plan_actuals(pred, obs::QueryTaskSamples{}, QueryMetrics{});
  EXPECT_FALSE(rep.executed);
  EXPECT_EQ(rep.actual_jobs, 0);
  ASSERT_EQ(rep.jobs.size(), 1u);
  // Every actual is 0; q follows the one-sided convention (est + 1).
  const auto& rows = rep.jobs[0].rows;
  ASSERT_EQ(rows.size(), obs::kPlanMetrics.size());
  EXPECT_EQ(rows[0].metric, "input_rows");
  EXPECT_DOUBLE_EQ(rows[0].q, 11.0);  // est 10, act 0
  EXPECT_NE(rep.text().find("not executed"), std::string::npos);
}

TEST(JoinPlanActuals, MapOnlyJobZeroesReduceSideRows) {
  // For a map-only job the predictor reports no shuffle and no groups;
  // the join must compare 0 vs 0 (q == 1), not est vs missing.
  auto pred = synthetic_prediction("SCAN1", /*map_only=*/true);
  QueryMetrics m;
  JobMetrics j;
  j.job_name = "SCAN1";
  j.map.input_records = 10;
  j.map.input_bytes = 100;
  j.map.output_records = 10;
  j.map_time_s = 1.0;
  m.jobs.push_back(std::move(j));
  const obs::PlanReport rep =
      obs::join_plan_actuals(pred, obs::QueryTaskSamples{}, m);
  ASSERT_EQ(rep.jobs.size(), 1u);
  for (const auto& row : rep.jobs[0].rows)
    if (row.metric == "shuffle_wire_bytes" || row.metric == "reduce_groups") {
      EXPECT_DOUBLE_EQ(row.q, 1.0) << row.metric;
    }
  // ...and the text report hides those meaningless rows entirely.
  EXPECT_EQ(rep.text().find("reduce_groups"), std::string::npos);
}

TEST(JoinPlanActuals, QueryRowsSumJobsAndRankedSortsByQ) {
  const auto pred = synthetic_prediction("AGG1");
  const auto m = synthetic_metrics("AGG1");
  const obs::PlanReport rep =
      obs::join_plan_actuals(pred, obs::QueryTaskSamples{}, m);
  EXPECT_TRUE(rep.executed);
  ASSERT_EQ(rep.query.size(), obs::kPlanMetrics.size());
  // Query-level rows are the per-job sums (single job: equal).
  for (std::size_t i = 0; i < rep.query.size(); ++i) {
    EXPECT_EQ(rep.query[i].est, rep.jobs[0].rows[i].est);
    EXPECT_EQ(rep.query[i].act, rep.jobs[0].rows[i].act);
  }
  // Ranked misses come out q-descending, ties broken job then metric asc.
  ASSERT_FALSE(rep.ranked.empty());
  for (std::size_t i = 1; i < rep.ranked.size(); ++i) {
    const auto& a = rep.ranked[i - 1];
    const auto& b = rep.ranked[i];
    EXPECT_TRUE(a.q > b.q || (a.q == b.q && (a.job < b.job ||
                (a.job == b.job && a.metric <= b.metric))));
  }
  EXPECT_DOUBLE_EQ(rep.ranked[0].q, rep.max_q);
  // reduce_groups missed entirely (est 5, no samples): one-sided q == 6.
  double groups_q = 0;
  for (const auto& row : rep.jobs[0].rows)
    if (row.metric == "reduce_groups") groups_q = row.q;
  EXPECT_DOUBLE_EQ(groups_q, 6.0);
}

// ---- what-if rendering ----

TEST(RenderWhatif, ShowsBothStrategiesAndVerdict) {
  auto merged = obs::join_plan_actuals(synthetic_prediction("AGG1"),
                                       obs::QueryTaskSamples{},
                                       synthetic_metrics("AGG1"));
  auto base_pred = synthetic_prediction("J1");
  base_pred.profile = "hive";
  base_pred.jobs[0].map_time_s = 4.0;  // predicted 2x slower overall
  base_pred.jobs[0].reduce_time_s = 2.0;
  base_pred.wall_time_s = base_pred.total_time_s();
  auto baseline = obs::join_plan_actuals(base_pred, obs::QueryTaskSamples{},
                                         QueryMetrics{});
  const std::string s = obs::render_whatif(merged, baseline);
  EXPECT_NE(s.find("what-if: ysmart vs hive"), std::string::npos) << s;
  EXPECT_NE(s.find("jobs (pred)"), std::string::npos);
  // Only the merged side executed: the baseline actual column shows "-".
  EXPECT_NE(s.find("-"), std::string::npos);
  // Predicted verdict names the faster strategy with the ratio.
  EXPECT_NE(s.find("faster"), std::string::npos) << s;
  EXPECT_NE(s.find("2.00x"), std::string::npos) << s;
}

// ---- calibration quantiles ----

TEST(Calibration, LowerMedianP95AndMaxColumns) {
  obs::CalibrationSnapshot snap;
  for (int i = 1; i <= 5; ++i) {
    obs::CalibrationSample s;
    s.id = static_cast<std::uint64_t>(i);
    s.q.assign(obs::kPlanMetrics.size(), static_cast<double>(i));
    snap.samples.push_back(std::move(s));
  }
  // Sorted column {1..5}: lower median index (4*50)/100 = 2 -> 3,
  // p95 index (4*95)/100 = 3 -> 4, max -> 5.
  EXPECT_DOUBLE_EQ(snap.p50(0), 3.0);
  EXPECT_DOUBLE_EQ(snap.p95(0), 4.0);
  EXPECT_DOUBLE_EQ(snap.max(0), 5.0);
  // Out-of-range metric column and the empty snapshot both read 0.
  EXPECT_DOUBLE_EQ(snap.p50(obs::kPlanMetrics.size() + 3), 0.0);
  obs::CalibrationSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.p95(0), 0.0);
  const std::string json = obs::calibration_json(snap);
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

// ---- the store: matching, bounding, determinism ----

TEST(PlanViewStore, AttachRequiresMatchingJobNames) {
  obs::PlanViewStore store;
  store.record_prediction(synthetic_prediction("AGG1"));
  EXPECT_FALSE(store.attach_actuals(obs::QueryTaskSamples{},
                                    synthetic_metrics("OTHER")));
  EXPECT_EQ(store.report_count(), 0u);
  EXPECT_EQ(store.pending_count(), 1u);  // prediction stays pending
  EXPECT_TRUE(store.attach_actuals(obs::QueryTaskSamples{},
                                   synthetic_metrics("AGG1")));
  EXPECT_EQ(store.report_count(), 1u);
  EXPECT_EQ(store.pending_count(), 0u);  // consumed by the join
}

TEST(PlanViewStore, PendingAndReportBuffersStayBounded) {
  obs::PlanViewStore store;
  for (int i = 0; i < 12; ++i)
    store.record_prediction(synthetic_prediction("J" + std::to_string(i)));
  EXPECT_EQ(store.pending_count(), obs::PlanViewStore::kMaxPending);
  obs::QueryPrediction last;
  ASSERT_TRUE(store.last_prediction(&last));
  EXPECT_EQ(last.jobs[0].name, "J11");  // newest retained

  for (int i = 0; i < 12; ++i) {
    store.record_prediction(synthetic_prediction("A" + std::to_string(i)));
    ASSERT_TRUE(store.attach_actuals(
        obs::QueryTaskSamples{}, synthetic_metrics("A" + std::to_string(i))));
  }
  EXPECT_EQ(store.report_count(), obs::PlanViewStore::kMaxReports);
  obs::PlanReport rep;
  ASSERT_TRUE(store.last_report(&rep));
  EXPECT_EQ(rep.jobs[0].name, "A11");
}

TEST(PlanViewStore, CalibrationRingEvictsOldestButIdsKeepCounting) {
  obs::PlanViewStore store;
  const std::size_t cap = obs::PlanViewStore::kDefaultCapacity;
  const int n = static_cast<int>(cap) + 8;
  for (int i = 0; i < n; ++i) {
    store.record_prediction(synthetic_prediction("Q"));
    ASSERT_TRUE(
        store.attach_actuals(obs::QueryTaskSamples{}, synthetic_metrics("Q")));
  }
  const obs::CalibrationSnapshot snap = store.calibration();
  EXPECT_EQ(snap.samples.size(), cap);
  EXPECT_EQ(snap.total_recorded, static_cast<std::uint64_t>(n));
  EXPECT_EQ(snap.samples.front().id, 9u);  // oldest 8 evicted
  EXPECT_EQ(snap.samples.back().id, static_cast<std::uint64_t>(n));
  ASSERT_EQ(snap.samples.back().q.size(), obs::kPlanMetrics.size());
}

TEST(PlanViewStore, ClearKeepsEnabledAndJsonIsDeterministic) {
  auto feed = [](obs::PlanViewStore& s) {
    s.set_enabled(true);
    s.record_prediction(synthetic_prediction("AGG1"));
    s.attach_actuals(obs::QueryTaskSamples{}, synthetic_metrics("AGG1"));
    s.record_prediction(synthetic_prediction("PENDING"));
  };
  obs::PlanViewStore a, b;
  feed(a);
  feed(b);
  // Identical histories render byte-identical /plan.json documents.
  EXPECT_EQ(a.json(), b.json());
  EXPECT_TRUE(MiniJson(a.json()).parse()) << a.json();
  EXPECT_NE(a.json().find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(a.json().find("\"reports\":1"), std::string::npos);

  a.clear();
  EXPECT_TRUE(a.enabled());  // clear drops data, keeps the switch
  EXPECT_EQ(a.pending_count(), 0u);
  EXPECT_EQ(a.report_count(), 0u);
  EXPECT_EQ(a.calibration().total_recorded, 0u);
  EXPECT_NE(a.json().find("\"last\":null"), std::string::npos);
}

}  // namespace
}  // namespace ysmart
