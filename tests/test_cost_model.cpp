// Unit tests for the cost model, cluster presets, tag encodings, and
// metrics aggregation.
#include <gtest/gtest.h>

#include "cmf/tags.h"
#include "mr/cost_model.h"
#include "mr/metrics.h"

namespace ysmart {
namespace {

TEST(Makespan, SingleSlotSums) {
  EXPECT_DOUBLE_EQ(CostModel::makespan({1, 2, 3}, 1), 6.0);
}

TEST(Makespan, PerfectSplit) {
  EXPECT_DOUBLE_EQ(CostModel::makespan({2, 2, 2, 2}, 2), 4.0);
}

TEST(Makespan, DominatedByLongestTask) {
  EXPECT_DOUBLE_EQ(CostModel::makespan({10, 1, 1, 1}, 4), 10.0);
}

TEST(Makespan, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(CostModel::makespan({}, 4), 0.0);
}

TEST(Makespan, MoreSlotsNeverSlower) {
  std::vector<double> tasks{3, 1, 4, 1, 5, 9, 2, 6};
  double prev = CostModel::makespan(tasks, 1);
  for (int slots = 2; slots <= 8; ++slots) {
    const double m = CostModel::makespan(tasks, slots);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(CostModel, MapTaskScalesWithBytes) {
  auto cfg = ClusterConfig::small_local(1.0);
  CostModel cm(cfg);
  MapTaskWork small{1 << 20, 1000, 1000, 1 << 18, 1 << 18, true};
  MapTaskWork big{64 << 20, 64000, 64000, 16 << 20, 16 << 20, true};
  EXPECT_GT(cm.map_task_seconds(big, 1.0), cm.map_task_seconds(small, 1.0));
}

TEST(CostModel, RemoteReadSlowerThanLocal) {
  auto cfg = ClusterConfig::ec2(11, 1.0);
  CostModel cm(cfg);
  MapTaskWork local{64 << 20, 64000, 64000, 1 << 20, 1 << 20, true};
  MapTaskWork remote = local;
  remote.local_read = false;
  EXPECT_GT(cm.map_task_seconds(remote, 1.0), cm.map_task_seconds(local, 1.0));
}

TEST(CostModel, SimScaleMultipliesTime) {
  auto cfg1 = ClusterConfig::small_local(1.0);
  auto cfg100 = ClusterConfig::small_local(100.0);
  MapTaskWork w{1 << 20, 1000, 1000, 1 << 18, 1 << 18, true};
  // The variable part of the cost (everything beyond task startup) must
  // scale exactly linearly with sim_scale.
  const double t1 = CostModel(cfg1).map_task_seconds(w, 1.0) - cfg1.task_startup_s;
  const double t100 =
      CostModel(cfg100).map_task_seconds(w, 1.0) - cfg100.task_startup_s;
  EXPECT_NEAR(t100, t1 * 100, t1);
}

TEST(CostModel, CompressionAddsCpuButCutsWire) {
  auto cfg = ClusterConfig::ec2(11, 1.0);
  cfg.compression.enabled = true;
  CostModel cm(cfg);
  ReduceTaskWork w;
  w.shuffle_bytes_raw = 100 << 20;
  w.shuffle_bytes_wire = 35 << 20;
  w.input_records = 100000;
  w.output_bytes = 1 << 20;
  const double with_comp = cm.reduce_task_seconds(w, 1.0);

  auto cfg_nc = ClusterConfig::ec2(11, 1.0);
  ReduceTaskWork w_nc = w;
  w_nc.shuffle_bytes_wire = w.shuffle_bytes_raw;
  const double without = CostModel(cfg_nc).reduce_task_seconds(w_nc, 1.0);
  // On EC2's weak cores the codec CPU exceeds the network savings — the
  // paper's Fig. 11 observation.
  EXPECT_GT(with_comp, without);
}

TEST(CostModel, ReplicationAddsWriteCost) {
  auto cfg3 = ClusterConfig::ec2(11, 1.0);
  auto cfg1 = cfg3;
  cfg1.replication = 1;
  ReduceTaskWork w;
  w.output_bytes = 100 << 20;
  EXPECT_GT(CostModel(cfg3).reduce_task_seconds(w, 1.0),
            CostModel(cfg1).reduce_task_seconds(w, 1.0));
}

TEST(ClusterPresets, ShapesMatchPaper) {
  auto local = ClusterConfig::small_local(1.0);
  EXPECT_EQ(local.total_map_slots(), 4);  // one TaskTracker, 4 slots
  EXPECT_EQ(local.replication, 1);

  auto ec2 = ClusterConfig::ec2(101, 1.0);
  EXPECT_EQ(ec2.worker_nodes, 101);
  EXPECT_EQ(ec2.total_map_slots(), 101);  // 1 virtual core each

  auto fb = ClusterConfig::facebook(1.0, 1);
  EXPECT_EQ(fb.worker_nodes, 747);
  EXPECT_TRUE(fb.contention.enabled);
}

TEST(ClusterPresets, ScaledBlockBytes) {
  auto c = ClusterConfig::small_local(64.0);
  EXPECT_EQ(c.scaled_block_bytes(), (64ull << 20) / 64);
}

TEST(TagEncoding, ExcludeListCheaperWhenOverlapHigh) {
  // 5 merged jobs, pair visible to all -> exclude list names nobody.
  EXPECT_LT(tag_overhead_bytes(5, 0, TagEncoding::ExcludeList),
            tag_overhead_bytes(5, 0, TagEncoding::IncludeList));
  // Pair visible to one job only -> include list is cheaper.
  EXPECT_GT(tag_overhead_bytes(5, 4, TagEncoding::ExcludeList),
            tag_overhead_bytes(5, 4, TagEncoding::IncludeList));
}

TEST(TagEncoding, SingleJobPaysNothing) {
  EXPECT_EQ(tag_overhead_bytes(1, 0, TagEncoding::ExcludeList), 0u);
}

TEST(KeyValue, ByteSizeIncludesTags) {
  KeyValue kv{{Value{1}}, {Value{2}}, 0, 0};
  const auto plain = kv_byte_size(kv, 1, TagEncoding::ExcludeList);
  const auto merged = kv_byte_size(kv, 4, TagEncoding::ExcludeList);
  EXPECT_GT(merged, plain);
  kv.exclude = 0b0110;
  EXPECT_GT(kv_byte_size(kv, 4, TagEncoding::ExcludeList), merged);
}

TEST(KeyValue, VisibleTo) {
  KeyValue kv;
  kv.exclude = 0b0101;
  EXPECT_FALSE(kv.visible_to(0));
  EXPECT_TRUE(kv.visible_to(1));
  EXPECT_FALSE(kv.visible_to(2));
  EXPECT_TRUE(kv.visible_to(3));
}

TEST(KeyValue, SortOrder) {
  KeyValue a{{Value{1}}, {}, 1, 0};
  KeyValue b{{Value{1}}, {}, 0, 0};
  KeyValue c{{Value{2}}, {}, 0, 0};
  EXPECT_TRUE(kv_less(b, a));  // same key, lower source first
  EXPECT_TRUE(kv_less(a, c));
}

TEST(Metrics, BreakdownAndTotals) {
  QueryMetrics qm;
  JobMetrics j1;
  j1.job_name = "j1";
  j1.map_time_s = 5;
  j1.reduce_time_s = 3;
  JobMetrics j2;
  j2.job_name = "j2";
  j2.sched_delay_s = 2;
  j2.map_time_s = 1;
  qm.jobs = {j1, j2};
  EXPECT_DOUBLE_EQ(qm.total_time_s(), 11.0);
  EXPECT_EQ(qm.job_count(), 2);
  EXPECT_FALSE(qm.failed());
  EXPECT_NE(qm.breakdown().find("j1"), std::string::npos);

  qm.jobs[1].failed = true;
  qm.jobs[1].fail_reason = "disk";
  EXPECT_TRUE(qm.failed());
  EXPECT_NE(qm.fail_reason().find("disk"), std::string::npos);
}

}  // namespace
}  // namespace ysmart
