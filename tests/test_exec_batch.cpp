// Property tests for the vectorized batch layer (exec/batch.h,
// exec/vector_kernels.h):
//   - Row -> ColumnBatch -> Row round-trips are lossless for every nasty
//     cell shape: NULLs, NaN (bit pattern preserved), +/-0.0, int64
//     values beyond 2^53, embedded-NUL and empty strings, Mixed columns.
//   - Every kernel's per-element output is bit-identical to the scalar
//     BoundExpr::eval reference on the same random data.
//   - The reconciled dispatch counters (kRowsEvaluated, kAggUpdates)
//     advance by exactly the same totals through the batched operators as
//     through the row path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/prof_counters.h"
#include "common/rng.h"
#include "exec/aggregates.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "exec/vector_kernels.h"
#include "plan/builder.h"
#include "sql/parser.h"

namespace ysmart {
namespace {

/// Scoped YSMART_VECTORIZED override that restores the previous setting.
class ScopedVectorized {
 public:
  explicit ScopedVectorized(bool on) : prev_(vectorized_enabled()) {
    set_vectorized_enabled(on);
  }
  ~ScopedVectorized() { set_vectorized_enabled(prev_); }

 private:
  bool prev_;
};

bool bit_identical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::Null:
      return true;
    case ValueType::Int:
      return a.as_int() == b.as_int();
    case ValueType::Double: {
      const double x = a.as_double(), y = b.as_double();
      return std::memcmp(&x, &y, sizeof(x)) == 0;  // NaN- and -0.0-exact
    }
    case ValueType::String:
      return a.as_string() == b.as_string();
  }
  return false;
}

bool rows_bit_identical(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bit_identical(a[i], b[i])) return false;
  return true;
}

// Nasty cell generators. Null probability is high enough that null masks
// and AllNull columns both occur at the test's batch sizes.
Value random_int_cell(Rng& rng) {
  switch (rng.uniform(0, 5)) {
    case 0: return Value::null();
    case 1: return Value{(std::int64_t{1} << 53) + rng.uniform(0, 3)};
    case 2: return Value{std::numeric_limits<std::int64_t>::min()};
    case 3: return Value{std::numeric_limits<std::int64_t>::max()};
    default: return Value{rng.uniform(-100, 100)};
  }
}

Value random_double_cell(Rng& rng) {
  switch (rng.uniform(0, 6)) {
    case 0: return Value::null();
    case 1: return Value{std::numeric_limits<double>::quiet_NaN()};
    case 2: return Value{0.0};
    case 3: return Value{-0.0};
    case 4: return Value{9007199254740993.0};  // near 2^53
    default: return Value{rng.uniform01() * 200 - 100};
  }
}

Value random_string_cell(Rng& rng) {
  switch (rng.uniform(0, 4)) {
    case 0: return Value::null();
    case 1: return Value{std::string()};
    case 2: return Value{std::string("nu\0l", 4)};  // embedded NUL
    default: return Value{rng.ident(3)};
  }
}

Value random_any_cell(Rng& rng) {
  switch (rng.uniform(0, 2)) {
    case 0: return random_int_cell(rng);
    case 1: return random_double_cell(rng);
    default: return random_string_cell(rng);
  }
}

/// Schema: a INT, d INT, b DOUBLE, c STRING, m <mixed>. Columns a/d/b/c
/// are type-pure (plus NULLs) so they pivot to typed vectors; m mixes
/// types so it pivots to Mixed and exercises the fallback.
Schema test_schema() {
  Schema s;
  s.add("a", ValueType::Int);
  s.add("d", ValueType::Int);
  s.add("b", ValueType::Double);
  s.add("c", ValueType::String);
  s.add("m", ValueType::String);
  return s;
}

std::vector<Row> random_rows(Rng& rng, std::size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    rows.push_back(Row{random_int_cell(rng), random_int_cell(rng),
                       random_double_cell(rng), random_string_cell(rng),
                       random_any_cell(rng)});
  return rows;
}

TEST(ColumnBatchRoundTrip, LosslessOnNastyValues) {
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    const auto rows = random_rows(rng, 1 + iter * 7);
    ColumnBatch batch{std::span<const Row>(rows)};
    ASSERT_EQ(batch.rows(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(rows_bit_identical(batch.materialize_row(i), rows[i]))
          << "row " << i << " iter " << iter;
      EXPECT_TRUE(rows_bit_identical(batch.source_row(i), rows[i]));
    }
  }
}

TEST(ColumnBatchRoundTrip, SelectionComposesAndStaysLossless) {
  Rng rng(7);
  const auto rows = random_rows(rng, 60);
  ColumnBatch batch{std::span<const Row>(rows)};
  std::vector<std::uint32_t> odd;
  for (std::uint32_t i = 1; i < rows.size(); i += 2) odd.push_back(i);
  ColumnBatch sel1 = batch.select(odd);
  ASSERT_EQ(sel1.rows(), odd.size());
  for (std::size_t i = 0; i < odd.size(); ++i)
    EXPECT_TRUE(rows_bit_identical(sel1.materialize_row(i), rows[odd[i]]));
  // Select from the selection: every third of the odd rows.
  std::vector<std::uint32_t> third;
  for (std::uint32_t i = 0; i < odd.size(); i += 3) third.push_back(i);
  ColumnBatch sel2 = sel1.select(third);
  ASSERT_EQ(sel2.rows(), third.size());
  for (std::size_t i = 0; i < third.size(); ++i)
    EXPECT_TRUE(
        rows_bit_identical(sel2.materialize_row(i), rows[odd[third[i]]]));
}

TEST(ColumnBatchRoundTrip, IrregularBatchIsFlagged) {
  std::vector<Row> rows{{Value{1}, Value{2}}, {Value{1}}};
  ColumnBatch batch{std::span<const Row>(rows)};
  EXPECT_FALSE(batch.regular());
}

// Expressions covering every kernel: arithmetic (int/int, int/double,
// division incl. by zero), unary minus/not, IS [NOT] NULL, all six
// comparison ops across int/double/string/cross-rank operand pairs, and
// Kleene AND/OR over NULLs.
const char* const kVectorizable[] = {
    "a + 2 * d",
    "a - d",
    "a * b",
    "b + b",
    "b / a",
    "a / 0",
    "a / b",
    "-a",
    "-b",
    "not (a < d)",
    "a is null",
    "b is not null",
    "a = d",
    "a <> d",
    "a < b",
    "a <= b",
    "b > d",
    "b >= b",
    "c = 'hi'",
    "c < 'mm'",
    "c <> ''",
    "a = c",
    "c >= b",
    "a < 'zz'",
    "a < b and b <= d or not (c = '')",
    "a is null and b is null",
    "(a < 0 or b < 0) and d >= 0",
};

TEST(VectorKernels, BitIdenticalToScalarEval) {
  const Schema schema = test_schema();
  Rng rng(123);
  for (const char* text : kVectorizable) {
    BoundExpr bound(parse_expression(text), schema);
    for (int iter = 0; iter < 8; ++iter) {
      const auto rows = random_rows(rng, 50);
      ColumnBatch batch{std::span<const Row>(rows)};
      BatchVector out;
      ASSERT_TRUE(eval_expr_batch(bound, batch, out)) << text;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Value expect = bound.eval(rows[i]);
        EXPECT_TRUE(bit_identical(out.value_at(i), expect))
            << text << " row " << i << ": batch="
            << out.value_at(i).to_string() << " scalar=" << expect.to_string();
        EXPECT_EQ(out.is_null(i), expect.is_null()) << text << " row " << i;
        EXPECT_EQ(out.truthy(i), is_true(expect)) << text << " row " << i;
      }
    }
  }
}

TEST(VectorKernels, MixedColumnFallsBack) {
  const Schema schema = test_schema();
  Rng rng(5);
  // Keep drawing until column m actually mixes types (near-certain).
  for (int iter = 0; iter < 8; ++iter) {
    const auto rows = random_rows(rng, 64);
    ColumnBatch batch{std::span<const Row>(rows)};
    if (batch.column(4).type() != ColType::Mixed) continue;
    BoundExpr bound(parse_expression("m is null"), schema);
    BatchVector out;
    EXPECT_FALSE(eval_expr_batch(bound, batch, out));
    return;
  }
  FAIL() << "random data never produced a Mixed column";
}

TEST(VectorKernels, CollectPassingMatchesTruthy) {
  const Schema schema = test_schema();
  Rng rng(99);
  BoundExpr bound(parse_expression("a < b or c <> ''"), schema);
  const auto rows = random_rows(rng, 200);
  ColumnBatch batch{std::span<const Row>(rows)};
  BatchVector out;
  ASSERT_TRUE(eval_expr_batch(bound, batch, out));
  std::vector<std::uint32_t> sel;
  collect_passing(out, rows.size(), sel);
  std::vector<std::uint32_t> expect;
  for (std::size_t i = 0; i < rows.size(); ++i)
    if (is_true(bound.eval(rows[i])))
      expect.push_back(static_cast<std::uint32_t>(i));
  EXPECT_EQ(sel, expect);
}

// ----------------- operator-level differential checks -----------------

std::uint64_t counter_delta(const prof::ThreadCounters& before,
                            const prof::ThreadCounters& after, int c) {
  return after.dispatch[c] - before.dispatch[c];
}

TEST(BatchedOperators, FilterProjectMatchesRowPathAndCounters) {
  const Schema schema = test_schema();
  Rng rng(2024);
  const auto rows = random_rows(rng, ColumnBatch::kBatchRows * 2 + 177);
  BoundExpr filter(parse_expression("a < b and c <> ''"), schema);
  auto projections = bind_all(
      {parse_expression("a + d"), parse_expression("b * 2"),
       parse_expression("m"), parse_expression("c")},
      schema);

  prof::acquire_enabled();
  const auto s0 = prof::thread_snapshot();
  std::vector<Row> vec_out;
  {
    ScopedVectorized on(true);
    vec_out = filter_project(rows, &filter, projections);
  }
  const auto s1 = prof::thread_snapshot();
  std::vector<Row> row_out;
  {
    ScopedVectorized off(false);
    row_out = filter_project(rows, &filter, projections);
  }
  const auto s2 = prof::thread_snapshot();
  prof::release_enabled();

  ASSERT_EQ(vec_out.size(), row_out.size());
  for (std::size_t i = 0; i < vec_out.size(); ++i)
    EXPECT_TRUE(rows_bit_identical(vec_out[i], row_out[i])) << "row " << i;
  // Reconciled counters must advance identically in both modes.
  for (int c : {prof::kRowsEvaluated, prof::kAggUpdates, prof::kOperatorRows,
                prof::kCellsEncoded, prof::kCellsDecoded})
    EXPECT_EQ(counter_delta(s0, s1, c), counter_delta(s1, s2, c))
        << prof::counter_name(c);
}

TEST(BatchedOperators, AggregateRowsMatchesRowPathAndCounters) {
  Catalog cat;
  cat.register_table("t", test_schema());
  auto plan = plan_query(
      "SELECT a, count(*) AS n, sum(b) AS s, avg(d) AS v, min(b) AS lo, "
      "max(m) AS hi, count(distinct c) AS u FROM t GROUP BY a",
      cat);
  Rng rng(31337);
  const auto rows = random_rows(rng, ColumnBatch::kBatchRows + 321);

  prof::acquire_enabled();
  const auto s0 = prof::thread_snapshot();
  std::vector<Row> vec_out;
  {
    ScopedVectorized on(true);
    vec_out = aggregate_rows(*plan, rows);
  }
  const auto s1 = prof::thread_snapshot();
  std::vector<Row> row_out;
  {
    ScopedVectorized off(false);
    row_out = aggregate_rows(*plan, rows);
  }
  const auto s2 = prof::thread_snapshot();
  prof::release_enabled();

  ASSERT_EQ(vec_out.size(), row_out.size());
  for (std::size_t i = 0; i < vec_out.size(); ++i)
    EXPECT_TRUE(rows_bit_identical(vec_out[i], row_out[i])) << "row " << i;
  for (int c : {prof::kRowsEvaluated, prof::kAggUpdates, prof::kOperatorRows,
                prof::kCellsEncoded, prof::kCellsDecoded})
    EXPECT_EQ(counter_delta(s0, s1, c), counter_delta(s1, s2, c))
        << prof::counter_name(c);
}

// Typed aggregate adds must be state-identical to add(Value): feed the
// same stream through AggState twice, once as Values and once through
// add_to_agg's typed dispatch, for every aggregate function.
TEST(TypedAggAdds, MatchGenericAddForEveryFunction) {
  Rng rng(777);
  std::vector<Row> data;
  for (int i = 0; i < 500; ++i)
    data.push_back(
        Row{rng.uniform(0, 1) ? random_int_cell(rng) : random_double_cell(rng)});
  ColumnBatch batch{std::span<const Row>(data)};

  for (const char* func : {"count", "sum", "avg", "min", "max"}) {
    AggCall call;
    call.func = func;
    AggState typed(call), generic(call);
    const ColumnVector& col = batch.column(0);
    ASSERT_EQ(col.type(), ColType::Mixed);  // ints + doubles mix
    for (std::size_t i = 0; i < data.size(); ++i) {
      const Value& v = data[i][0];
      generic.add(v);
      switch (v.type()) {
        case ValueType::Null: typed.add_null(); break;
        case ValueType::Int: typed.add_int(v.as_int()); break;
        case ValueType::Double: typed.add_double(v.as_double()); break;
        case ValueType::String: typed.add(v); break;
      }
    }
    EXPECT_TRUE(bit_identical(typed.result(), generic.result()))
        << func << ": typed=" << typed.result().to_string()
        << " generic=" << generic.result().to_string();
  }
}

}  // namespace
}  // namespace ysmart
