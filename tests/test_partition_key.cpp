// Unit tests for partition keys: alias classes, matching, aggregation
// candidates, the PK-selection heuristic (via CorrelationAnalysis).
#include <gtest/gtest.h>

#include "plan/builder.h"
#include "plan/partition_key.h"
#include "translator/correlation.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  Schema clicks;
  clicks.add("uid", ValueType::Int);
  clicks.add("cid", ValueType::Int);
  clicks.add("ts", ValueType::Int);
  c.register_table("clicks", clicks);
  Schema li;
  li.add("l_partkey", ValueType::Int);
  li.add("l_quantity", ValueType::Int);
  c.register_table("lineitem", li);
  Schema pa;
  pa.add("p_partkey", ValueType::Int);
  pa.add("p_size", ValueType::Int);
  c.register_table("part", pa);
  return c;
}

TEST(PartitionKey, JoinKeyUnionsAliasClasses) {
  auto p = plan_query(
      "SELECT l_quantity FROM lineitem, part WHERE p_partkey = l_partkey",
      cat());
  auto pk = join_partition_key(*p);
  ASSERT_EQ(pk.parts.size(), 1u);
  EXPECT_TRUE(pk.parts[0].count(ColumnId{"lineitem", "l_partkey"}));
  EXPECT_TRUE(pk.parts[0].count(ColumnId{"part", "p_partkey"}));
}

TEST(PartitionKey, MatchesThroughAliasClass) {
  auto join = plan_query(
      "SELECT l_quantity FROM lineitem, part WHERE p_partkey = l_partkey",
      cat());
  auto agg = plan_query(
      "SELECT l_partkey, avg(l_quantity) FROM lineitem GROUP BY l_partkey",
      cat());
  auto jpk = join_partition_key(*join);
  auto apk = agg_full_partition_key(*agg);
  EXPECT_TRUE(jpk.matches(apk));
  EXPECT_TRUE(apk.matches(jpk));
}

TEST(PartitionKey, DifferentColumnsDoNotMatch) {
  auto agg1 = plan_query(
      "SELECT l_partkey, avg(l_quantity) FROM lineitem GROUP BY l_partkey",
      cat());
  auto agg2 = plan_query(
      "SELECT l_quantity, count(*) FROM lineitem GROUP BY l_quantity", cat());
  EXPECT_FALSE(agg_full_partition_key(*agg1).matches(
      agg_full_partition_key(*agg2)));
}

TEST(PartitionKey, ArityMismatchNeverMatches) {
  auto agg2col = plan_query(
      "SELECT uid, ts, count(*) FROM clicks GROUP BY uid, ts", cat());
  auto agg1col = plan_query(
      "SELECT uid, count(*) FROM clicks GROUP BY uid", cat());
  EXPECT_FALSE(agg_full_partition_key(*agg2col)
                   .matches(agg_full_partition_key(*agg1col)));
}

TEST(PartitionKey, EmptyNeverMatches) {
  PartitionKey a, b;
  EXPECT_FALSE(a.matches(b));
}

TEST(PartitionKey, CompositeMatchIsPermutationInvariant) {
  auto a = plan_query(
      "SELECT uid, ts, count(*) FROM clicks GROUP BY uid, ts", cat());
  auto b = plan_query(
      "SELECT ts, uid, count(*) FROM clicks GROUP BY ts, uid", cat());
  EXPECT_TRUE(agg_full_partition_key(*a).matches(agg_full_partition_key(*b)));
}

TEST(PartitionKey, AggCandidatesEnumerateSubsets) {
  auto agg = plan_query(
      "SELECT uid, ts, count(*) FROM clicks GROUP BY uid, ts", cat());
  auto cands = agg_partition_key_candidates(*agg);
  EXPECT_EQ(cands.size(), 3u);  // {uid}, {ts}, {uid,ts}
}

TEST(PartitionKey, ToStringShowsAliasClasses) {
  auto p = plan_query(
      "SELECT l_quantity FROM lineitem, part WHERE p_partkey = l_partkey",
      cat());
  const std::string s = join_partition_key(*p).to_string();
  EXPECT_NE(s.find("lineitem.l_partkey"), std::string::npos);
  EXPECT_NE(s.find("part.p_partkey"), std::string::npos);
}

// The Q-CSA heuristic case: AGG over (uid, ts1) under a uid-keyed join
// must choose (uid) so the whole chain shares one job (Section VII-A.2).
TEST(PkHeuristic, QcsaAggChoosesUid) {
  auto p = plan_query(
      "SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2 "
      "FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid AND c1.ts < c2.ts AND c1.cid = 1 AND c2.cid = 2 "
      "GROUP BY c1.uid, ts1",
      cat());
  CorrelationAnalysis ca(p);
  ASSERT_EQ(ca.ops().size(), 2u);  // JOIN1, AGG1
  const auto& agg_pk = ca.ops()[1].pk;
  ASSERT_EQ(agg_pk.columns.size(), 1u);
  EXPECT_EQ(unqualify(agg_pk.columns[0]), "uid");
}

// With no correlation to exploit, the full grouping key is used.
TEST(PkHeuristic, StandaloneAggUsesFullKey) {
  auto p = plan_query(
      "SELECT uid, ts, count(*) FROM clicks GROUP BY uid, ts", cat());
  CorrelationAnalysis ca(p);
  ASSERT_EQ(ca.ops().size(), 1u);
  EXPECT_EQ(ca.ops()[0].pk.columns.size(), 2u);
}

}  // namespace
}  // namespace ysmart
