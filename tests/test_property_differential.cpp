// Property-based differential testing: random data sets (including NULLs
// and skewed keys) are pushed through a family of query shapes; the
// simulated MapReduce execution under every translator profile must
// produce exactly the reference engine's rows.
//
// Parameterized over (data seed x query template) via TEST_P.
#include <gtest/gtest.h>

#include "api/database.h"
#include "common/rng.h"

namespace ysmart {
namespace {

std::shared_ptr<Table> random_fact(std::uint64_t seed, int rows) {
  Schema s;
  s.add("k", ValueType::Int);
  s.add("a", ValueType::Int);
  s.add("b", ValueType::Int);
  auto t = std::make_shared<Table>(s);
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    // Skewed keys, occasional NULLs in every column.
    Row r;
    r.push_back(rng.uniform01() < 0.05 ? Value::null()
                                       : Value{rng.zipf(20, 1.0)});
    r.push_back(rng.uniform01() < 0.05 ? Value::null()
                                       : Value{rng.uniform(-50, 50)});
    r.push_back(rng.uniform01() < 0.05 ? Value::null()
                                       : Value{rng.uniform(0, 9)});
    t->append(std::move(r));
  }
  return t;
}

std::shared_ptr<Table> random_dim(std::uint64_t seed, int rows) {
  Schema s;
  s.add("k", ValueType::Int);
  s.add("c", ValueType::Int);
  s.add("name", ValueType::String);
  auto t = std::make_shared<Table>(s);
  Rng rng(seed * 31 + 7);
  for (int i = 0; i < rows; ++i) {
    t->append({rng.uniform01() < 0.05 ? Value::null()
                                      : Value{rng.uniform(1, 25)},
               Value{rng.uniform(0, 5)},
               rng.uniform01() < 0.08
                   ? Value::null()
                   : Value{"cat" + std::to_string(rng.zipf(6, 0.7))}});
  }
  return t;
}

const char* kTemplates[] = {
    // plain select-project
    "SELECT a, b FROM f WHERE a > 0",
    // grouped aggregation, all functions
    "SELECT b, count(*) AS n, sum(a) AS s, avg(a) AS v, min(a) AS mn, "
    "max(a) AS mx FROM f GROUP BY b",
    // global aggregation
    "SELECT count(*) AS n, sum(a) AS s FROM f",
    // count distinct
    "SELECT b, count(distinct k) AS d FROM f GROUP BY b",
    // inner join
    "SELECT a, c FROM f, d WHERE f.k = d.k",
    // inner join + filters + residual
    "SELECT a, c FROM f, d WHERE f.k = d.k AND a > -10 AND c < b",
    // left outer join with IS NULL residual
    "SELECT a FROM f LEFT OUTER JOIN d ON f.k = d.k WHERE d.c IS NULL",
    // join then aggregation on the join key (JFC shape)
    "SELECT f.k, count(*) AS n FROM f, d WHERE f.k = d.k GROUP BY f.k",
    // aggregation over derived join, plus order/limit
    "SELECT b, sum(a) AS s FROM f, d WHERE f.k = d.k GROUP BY b "
    "ORDER BY s DESC, b LIMIT 5",
    // self join (shared scan path)
    "SELECT f1.a, f2.b FROM f AS f1, f AS f2 "
    "WHERE f1.k = f2.k AND f1.b = 1 AND f2.b = 2",
    // aggregation-over-aggregation (JFC chain)
    "SELECT m, count(*) AS n FROM "
    "(SELECT k, max(a) AS m FROM f GROUP BY k) AS g GROUP BY m",
    // derived join of two aggregations over the same table (Rule 1 + 3)
    "SELECT x.k, x.s, y.d FROM "
    "(SELECT k, sum(a) AS s FROM f GROUP BY k) AS x, "
    "(SELECT k, count(distinct b) AS d FROM f GROUP BY k) AS y "
    "WHERE x.k = y.k",
    // right outer join
    "SELECT a, c FROM f RIGHT OUTER JOIN d ON f.k = d.k",
    // full outer join with residual
    "SELECT a, c FROM f FULL OUTER JOIN d ON f.k = d.k WHERE a IS NULL OR c > 1",
    // global sort (single-reducer SORT job) with expressions
    "SELECT k, a FROM f WHERE b = 3 ORDER BY a DESC, k LIMIT 17",
    // three-way join
    "SELECT f1.a, d.c, f2.b FROM f AS f1, d, f AS f2 "
    "WHERE f1.k = d.k AND d.k = f2.k AND f1.b = 0 AND f2.b = 1",
    // arithmetic in projections and aggregates
    "SELECT b, sum(a + 1) AS s, avg(a * 2) AS v, count(*) - 1 AS n "
    "FROM f GROUP BY b",
    // aggregation directly over an outer join (padded rows feed the agg)
    "SELECT c, count(*) AS n FROM f LEFT OUTER JOIN d ON f.k = d.k GROUP BY c",
    // the paper's Fig. 7 shape: a JOIN with job-flow correlation to one
    // preceding job while the other preceding job must be ordered first
    // (Rule 4 with child exchange)
    "SELECT j.k, j.s, a2.c2 FROM "
    "(SELECT f.k AS k, sum(a) AS s FROM f, d WHERE f.k = d.k GROUP BY f.k) "
    "AS j, "
    "(SELECT b AS bk, count(*) AS c2 FROM f GROUP BY b) AS a2 "
    "WHERE j.k = a2.bk",
    // HAVING over a grouped aggregation (plain and combinable paths)
    "SELECT b, sum(a) AS s FROM f GROUP BY b HAVING s > 0",
    "SELECT b, count(distinct k) AS n FROM f GROUP BY b HAVING n > 2",
    // HAVING over a join-fed aggregation inside a derived table
    "SELECT g.k FROM (SELECT f.k, count(*) AS n FROM f, d WHERE f.k = d.k "
    "GROUP BY f.k HAVING n > 3) AS g",
    // string grouping keys (NULL group included)
    "SELECT name, count(*) AS n, min(c) AS mn FROM d GROUP BY name",
    // string predicates and projection through a join
    "SELECT a, name FROM f, d WHERE f.k = d.k AND name <> 'cat2'",
    // string sort keys, both directions
    "SELECT name, c FROM d WHERE name IS NOT NULL ORDER BY name, c LIMIT 9",
    "SELECT name, c FROM d ORDER BY name DESC, c LIMIT 9",
    // string aggregates (min/max over strings, count distinct strings)
    "SELECT c, max(name) AS mx, count(distinct name) AS dn FROM d GROUP BY c",
    // SELECT * through a filter and through a join
    "SELECT * FROM d WHERE c > 1",
    "SELECT * FROM f, d WHERE f.k = d.k AND a > 0",
};

using Param = std::tuple<int, std::uint64_t>;  // (template idx, data seed)

class DifferentialTest : public ::testing::TestWithParam<Param> {};

TEST_P(DifferentialTest, MapReduceMatchesReference) {
  const auto [tmpl_idx, seed] = GetParam();
  const std::string sql = kTemplates[tmpl_idx];

  Database db(ClusterConfig::small_local(1.0));
  db.create_table("f", random_fact(seed, 400));
  db.create_table("d", random_dim(seed, 60));

  Table expected = db.run_reference(sql);
  for (const auto& profile :
       {TranslatorProfile::ysmart(), TranslatorProfile::hive(),
        TranslatorProfile::pig(), TranslatorProfile::mrshare()}) {
    SCOPED_TRACE(profile.name);
    auto run = db.run(sql, profile);
    EXPECT_TRUE(same_rows_unordered(expected, *run.result))
        << sql << "\nexpected " << expected.row_count() << " rows, got "
        << run.result->row_count() << "\nexpected:\n"
        << expected.to_string(8) << "got:\n"
        << run.result->to_string(8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesAndSeeds, DifferentialTest,
    ::testing::Combine(::testing::Range(0, 29),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "tmpl" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Larger single-seed sweep over row counts, including the empty table.
class SizeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SizeSweepTest, JoinAggPipelineMatchesReference) {
  const int rows = GetParam();
  Database db(ClusterConfig::small_local(1.0));
  db.create_table("f", random_fact(99, rows));
  db.create_table("d", random_dim(99, rows / 4 + 1));
  const std::string sql =
      "SELECT f.k, count(*) AS n, sum(a) AS s FROM f, d WHERE f.k = d.k "
      "GROUP BY f.k";
  Table expected = db.run_reference(sql);
  auto run = db.run(sql, TranslatorProfile::ysmart());
  EXPECT_TRUE(same_rows_unordered(expected, *run.result));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweepTest,
                         ::testing::Values(0, 1, 2, 7, 64, 500, 2000));

// Orthogonal runtime features must never change results: compression,
// task-failure injection, cost-based PK selection, include-list tags.
class FeatureMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FeatureMatrixTest, FeatureCombinationsPreserveResults) {
  const int features = GetParam();
  auto cluster = ClusterConfig::small_local(1.0);
  if (features & 1) cluster.compression.enabled = true;
  if (features & 2) {
    cluster.task_failure_rate = 0.25;
    cluster.contention.seed = 1234;
  }
  Database db(cluster);
  db.create_table("f", random_fact(5, 300));
  db.create_table("d", random_dim(5, 50));
  auto profile = TranslatorProfile::ysmart();
  if (features & 4) profile.cost_based_pk = true;
  if (features & 8) profile.tag_encoding = TagEncoding::IncludeList;

  const std::string sql =
      "SELECT f.k, count(*) AS n, sum(a) AS s FROM f, d WHERE f.k = d.k "
      "GROUP BY f.k HAVING n > 1";
  Table expected = db.run_reference(sql);
  auto run = db.run(sql, profile);
  EXPECT_TRUE(same_rows_unordered(expected, *run.result));
  EXPECT_FALSE(run.metrics.failed());
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FeatureMatrixTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace ysmart
