// Unit tests for the simulated distributed file system: blocking,
// placement, replication, byte accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "storage/dfs.h"

namespace ysmart {
namespace {

Schema one_col() {
  Schema s;
  s.add("v", ValueType::String);
  return s;
}

std::shared_ptr<Table> rows_of_bytes(int rows, int str_len) {
  auto t = std::make_shared<Table>(one_col());
  for (int i = 0; i < rows; ++i)
    t->append({Value{std::string(static_cast<std::size_t>(str_len), 'x')}});
  return t;
}

TEST(Dfs, SplitsIntoBlocks) {
  Dfs dfs(4, /*block_bytes=*/100, /*replication=*/1);
  // Each row is 4 framing + 2 + 20 = 26 bytes -> 4 rows per 100-byte block.
  const auto& f = dfs.write("/t", rows_of_bytes(10, 20));
  EXPECT_GE(f.blocks.size(), 2u);
  std::size_t rows = 0;
  std::uint64_t bytes = 0;
  for (const auto& b : f.blocks) {
    rows += b.row_count;
    bytes += b.bytes;
  }
  EXPECT_EQ(rows, 10u);
  EXPECT_EQ(bytes, f.total_bytes);
  EXPECT_EQ(bytes, f.table->byte_size());
}

TEST(Dfs, BlockRowRangesAreContiguous) {
  Dfs dfs(4, 100, 1);
  const auto& f = dfs.write("/t", rows_of_bytes(17, 20));
  std::size_t next = 0;
  for (const auto& b : f.blocks) {
    EXPECT_EQ(b.first_row, next);
    next += b.row_count;
  }
  EXPECT_EQ(next, 17u);
}

TEST(Dfs, ReplicationPlacesOnDistinctNodes) {
  Dfs dfs(5, 100, 3);
  const auto& f = dfs.write("/t", rows_of_bytes(10, 20));
  for (const auto& b : f.blocks) {
    ASSERT_EQ(b.replica_nodes.size(), 3u);
    EXPECT_NE(b.replica_nodes[0], b.replica_nodes[1]);
    EXPECT_NE(b.replica_nodes[1], b.replica_nodes[2]);
  }
}

TEST(Dfs, ReplicationClampedToNodeCount) {
  Dfs dfs(2, 100, 3);
  EXPECT_EQ(dfs.replication(), 2);
}

TEST(Dfs, EmptyTableStillHasOneBlock) {
  Dfs dfs(2, 100, 1);
  const auto& f = dfs.write("/empty", std::make_shared<Table>(one_col()));
  EXPECT_EQ(f.blocks.size(), 1u);
  EXPECT_EQ(f.blocks[0].row_count, 0u);
}

TEST(Dfs, ExistsRemoveList) {
  Dfs dfs(2, 100, 1);
  dfs.write("/a", rows_of_bytes(1, 5));
  dfs.write("/b", rows_of_bytes(1, 5));
  EXPECT_TRUE(dfs.exists("/a"));
  EXPECT_EQ(dfs.list().size(), 2u);
  dfs.remove("/a");
  EXPECT_FALSE(dfs.exists("/a"));
  EXPECT_THROW(dfs.file("/a"), ExecError);
}

TEST(Dfs, OverwriteReplaces) {
  Dfs dfs(2, 100, 1);
  dfs.write("/a", rows_of_bytes(1, 5));
  dfs.write("/a", rows_of_bytes(9, 5));
  EXPECT_EQ(dfs.file("/a").table->row_count(), 9u);
}

TEST(Dfs, StoredBytesCountsReplicas) {
  Dfs dfs(4, 100, 2);
  dfs.write("/a", rows_of_bytes(4, 20));
  EXPECT_EQ(dfs.stored_bytes(), dfs.file("/a").total_bytes * 2);
}

TEST(Dfs, PlacementPropertyDistinctReplicasAndBalancedLoad) {
  // Property sweep over (nodes, replication, file size): every block's
  // replica set is distinct, and the round-robin cursor keeps per-node
  // block counts balanced — max and min primary counts differ by at most
  // one, and with replicas included the per-node copy counts differ by
  // at most the effective replication (each node's copies are a window
  // of `repl` consecutive cursor-residue counts, which themselves differ
  // by at most one).
  for (int nodes : {1, 2, 3, 5, 11, 747}) {
    for (int repl : {1, 2, 3, 9}) {
      Dfs dfs(nodes, 64, repl);
      const int files = 3;
      std::size_t total_blocks = 0;
      std::vector<std::size_t> copies(static_cast<std::size_t>(nodes), 0);
      std::vector<std::size_t> primaries(static_cast<std::size_t>(nodes), 0);
      for (int f = 0; f < files; ++f) {
        const auto& df = dfs.write("/f" + std::to_string(f),
                                   rows_of_bytes(20 + 7 * f, 16));
        for (const auto& b : df.blocks) {
          const int eff_repl = std::min(repl, nodes);
          ASSERT_EQ(b.replica_nodes.size(),
                    static_cast<std::size_t>(eff_repl));
          std::vector<int> sorted = b.replica_nodes;
          std::sort(sorted.begin(), sorted.end());
          EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end())
              << "duplicate replica node (nodes=" << nodes
              << " repl=" << repl << ")";
          for (int n : b.replica_nodes) {
            ASSERT_GE(n, 0);
            ASSERT_LT(n, nodes);
            ++copies[static_cast<std::size_t>(n)];
          }
          ++primaries[static_cast<std::size_t>(b.replica_nodes[0])];
          ++total_blocks;
        }
      }
      const auto [pmin, pmax] =
          std::minmax_element(primaries.begin(), primaries.end());
      EXPECT_LE(*pmax - *pmin, 1u)
          << "primary placement skew (nodes=" << nodes << " repl=" << repl
          << ")";
      const std::size_t eff_repl =
          static_cast<std::size_t>(std::min(repl, nodes));
      const auto [cmin, cmax] =
          std::minmax_element(copies.begin(), copies.end());
      EXPECT_LE(*cmax - *cmin, eff_repl)
          << "copy placement skew (nodes=" << nodes << " repl=" << repl
          << " blocks=" << total_blocks << ")";
    }
  }
}

TEST(Dfs, InvalidConfigThrows) {
  EXPECT_THROW(Dfs(0, 100, 1), InternalError);
  EXPECT_THROW(Dfs(1, 0, 1), InternalError);
  EXPECT_THROW(Dfs(1, 100, 0), InternalError);
}

}  // namespace
}  // namespace ysmart
