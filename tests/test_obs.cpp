// Tests for the observability subsystem (src/obs) and its supporting
// pieces: the JSON writer, env parsing, span tracer, metrics registry,
// and — the load-bearing guarantees — that observation never perturbs
// simulated results and that the simulated-axis trace is deterministic.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/database.h"
#include "common/env.h"
#include "common/json.h"
#include "data/queries.h"
#include "obs/obs.h"
#include "storage/table.h"

namespace ysmart {
namespace {

// ---- a strict mini JSON parser: validates syntax, keeps nothing ----
// Used to prove the emitted traces/snapshots are real JSON without
// depending on an external parser.
class MiniJson {
 public:
  explicit MiniJson(std::string_view s) : s_(s) {}
  bool parse() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char c = s_[pos_];
        if (c == 'u') {
          for (int i = 0; i < 4; ++i)
            if (++pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
        } else if (!strchr("\"\\/bfnrt", c)) {
          return false;
        }
      }
      ++pos_;
    }
    return peek('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek('-')) {}
    while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (peek('.'))
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- fixture data: a tiny clicks table, enough for Q-CSA's job DAG ----

std::shared_ptr<Table> tiny_clicks() {
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  for (int i = 0; i < 400; ++i)
    t->append({Value{i % 7}, Value{i % 13}, Value{i % 5}, Value{i}});
  return t;
}

std::unique_ptr<Database> fresh_db() {
  auto db = std::make_unique<Database>(ClusterConfig::small_local(50));
  db->create_table("clicks", tiny_clicks());
  return db;
}

// ---- JsonWriter ----

TEST(JsonWriter, NestingAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", 1);
  w.key("b").begin_array().value(true).value("x").value(2.5).end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[true,"x",2.5],"c":{}})");
  EXPECT_TRUE(MiniJson(w.str()).parse());
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te\x01"), "a\\\"b\\\\c\\nd\\te\\u0001");
  JsonWriter w;
  w.begin_object().kv("k\n", "v\"").end_object();
  EXPECT_TRUE(MiniJson(w.str()).parse());
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter w;
  w.begin_array().value(1.0 / 3.0).value(1e-300).value(0.0).end_array();
  EXPECT_TRUE(MiniJson(w.str()).parse());
  EXPECT_NE(w.str().find("0.33333333333333331"), std::string::npos);
}

// ---- env parsing ----

TEST(EnvParsing, PositiveIntAcceptsAndRejects) {
  EXPECT_EQ(parse_positive_int("8"), 8);
  EXPECT_EQ(parse_positive_int("  16 "), 16);
  EXPECT_EQ(parse_positive_int("0"), std::nullopt);
  EXPECT_EQ(parse_positive_int("-3"), std::nullopt);
  EXPECT_EQ(parse_positive_int("four"), std::nullopt);
  EXPECT_EQ(parse_positive_int("8x"), std::nullopt);
  EXPECT_EQ(parse_positive_int(""), std::nullopt);
  EXPECT_EQ(parse_positive_int("99999999999999999999"), std::nullopt);
}

TEST(EnvParsing, EnvPositiveIntFallsBackOnGarbage) {
  ::setenv("YSMART_TEST_ENV", "garbage", 1);
  EXPECT_EQ(env_positive_int("YSMART_TEST_ENV"), std::nullopt);
  ::setenv("YSMART_TEST_ENV", "12", 1);
  EXPECT_EQ(env_positive_int("YSMART_TEST_ENV"), 12);
  ::unsetenv("YSMART_TEST_ENV");
  EXPECT_EQ(env_positive_int("YSMART_TEST_ENV"), std::nullopt);
}

TEST(EnvParsing, EnvNonempty) {
  ::setenv("YSMART_TEST_ENV", "/tmp/x.json", 1);
  EXPECT_EQ(env_nonempty("YSMART_TEST_ENV"), "/tmp/x.json");
  ::setenv("YSMART_TEST_ENV", "", 1);
  EXPECT_EQ(env_nonempty("YSMART_TEST_ENV"), std::nullopt);
  ::unsetenv("YSMART_TEST_ENV");
  EXPECT_EQ(env_nonempty("YSMART_TEST_ENV"), std::nullopt);
}

// ---- tracer structure ----

TEST(Tracer, SpansNestLifoAndParentCorrectly) {
  obs::Tracer t;
  const int a = t.begin("a", "query");
  const int b = t.begin("b", "phase");
  t.end(b);
  const int c = t.begin("c", "phase");
  t.end(c);
  t.end(a);
  ASSERT_TRUE(t.well_formed());
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, a);
  EXPECT_EQ(spans[2].parent, a);
  for (const auto& s : spans) EXPECT_FALSE(s.open());
}

TEST(Tracer, OutOfOrderEndMarksMalformedButStillCloses) {
  obs::Tracer t;
  const int a = t.begin("a", "query");
  const int b = t.begin("b", "phase");
  t.end(a);  // closes b too (LIFO violation)
  EXPECT_FALSE(t.well_formed());
  for (const auto& s : t.spans()) EXPECT_FALSE(s.open());
  EXPECT_TRUE(MiniJson(t.chrome_json()).parse());
  (void)b;
}

TEST(Tracer, SimIntervalSettableAfterEnd) {
  obs::Tracer t;
  const int a = t.begin("a", "job");
  t.end(a);
  t.set_sim(a, 10.0, 5.0);
  const auto spans = t.spans();
  EXPECT_TRUE(spans[0].has_sim());
  EXPECT_DOUBLE_EQ(spans[0].sim_start_s, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_dur_s, 5.0);
}

// ---- the query lifecycle, traced ----

TEST(QueryTrace, HierarchyCoversTheWholeLifecycle) {
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  auto run = db->run(queries::qcsa().sql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());
  ASSERT_TRUE(obs.tracer.well_formed());

  const std::string tree = obs.tracer.analyze_tree();
  for (const char* name :
       {"query:ysmart", "translate:ysmart", "parse+plan", "correlation-detect",
        "merge", "lower", "wave:0", "job:", "map", "shuffle-sort", "reduce",
        "post-job"})
    EXPECT_NE(tree.find(name), std::string::npos) << "missing span: " << name;

  // One wave span and one job span per executed job (serial submission).
  int waves = 0, jobs = 0;
  for (const auto& s : obs.tracer.spans()) {
    waves += s.category == "wave";
    jobs += s.category == "job";
  }
  EXPECT_EQ(jobs, run.metrics.job_count());
  EXPECT_EQ(waves, run.metrics.job_count());
}

TEST(QueryTrace, ChromeExportParsesBothAxes) {
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  db->run(queries::qcsa().sql, TranslatorProfile::hive());
  for (auto axis : {obs::TimeAxis::Simulated, obs::TimeAxis::Wall,
                    obs::TimeAxis::Both}) {
    const std::string json = obs.tracer.chrome_json(axis);
    EXPECT_TRUE(MiniJson(json).parse()) << "axis JSON does not parse";
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  }
  // The two axes appear as two named pseudo-processes.
  const std::string both = obs.tracer.chrome_json(obs::TimeAxis::Both);
  EXPECT_NE(both.find("simulated cluster"), std::string::npos);
  EXPECT_NE(both.find("host wall-clock"), std::string::npos);
}

TEST(QueryTrace, SimulatedAxisIsDeterministic) {
  std::string exports[2];
  for (int i = 0; i < 2; ++i) {
    auto db = fresh_db();
    obs::ObsContext obs;
    db->set_observer(&obs);
    db->run(queries::qcsa().sql, TranslatorProfile::ysmart());
    exports[i] = obs.tracer.chrome_json(obs::TimeAxis::Simulated);
  }
  EXPECT_EQ(exports[0], exports[1])
      << "simulated-axis trace must be byte-identical across runs";
}

TEST(QueryTrace, ObservationDoesNotPerturbSimulatedMetrics) {
  auto plain_db = fresh_db();
  auto traced_db = fresh_db();
  obs::ObsContext obs;
  traced_db->set_observer(&obs);

  auto plain = plain_db->run(queries::qcsa().sql, TranslatorProfile::hive());
  auto traced = traced_db->run(queries::qcsa().sql, TranslatorProfile::hive());

  ASSERT_EQ(plain.metrics.job_count(), traced.metrics.job_count());
  for (int i = 0; i < plain.metrics.job_count(); ++i) {
    const auto& a = plain.metrics.jobs[static_cast<std::size_t>(i)];
    const auto& b = traced.metrics.jobs[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(a.map_time_s, b.map_time_s);
    EXPECT_DOUBLE_EQ(a.reduce_time_s, b.reduce_time_s);
    EXPECT_DOUBLE_EQ(a.sched_delay_s, b.sched_delay_s);
    EXPECT_EQ(a.shuffle_bytes_wire, b.shuffle_bytes_wire);
    EXPECT_EQ(a.dfs_write_bytes, b.dfs_write_bytes);
  }
  EXPECT_EQ(plain.result->row_count(), traced.result->row_count());
}

// ---- metrics registry ----

TEST(Metrics, CountersReconcileWithQueryMetrics) {
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  auto run = db->run(queries::qcsa().sql, TranslatorProfile::hive());
  ASSERT_FALSE(run.metrics.failed());

  const auto& m = run.metrics;
  const auto& reg = obs.metrics;
  EXPECT_EQ(reg.counter("engine.jobs.run"),
            static_cast<std::uint64_t>(m.job_count()));
  EXPECT_EQ(reg.counter("engine.shuffle.bytes_wire"), m.total_shuffle_bytes());
  EXPECT_EQ(reg.counter("engine.map.input_bytes"), m.total_map_input_bytes());
  EXPECT_EQ(reg.counter("engine.dfs.write_bytes"), m.total_dfs_write_bytes());
  std::uint64_t map_tasks = 0;
  for (const auto& j : m.jobs) map_tasks += j.map.tasks;
  EXPECT_EQ(reg.counter("engine.map.tasks"), map_tasks);
  EXPECT_EQ(reg.counter("engine.jobs.failed"), 0u);

  // Histograms saw one observation per task.
  EXPECT_EQ(reg.histogram("engine.map.task_sim_seconds").count, map_tasks);

  const std::string snapshot = reg.json();
  EXPECT_TRUE(MiniJson(snapshot).parse());
  EXPECT_NE(snapshot.find("engine.shuffle.bytes_wire"), std::string::npos);
  EXPECT_NE(reg.summary_line().find("jobs="), std::string::npos);
}

TEST(Metrics, FailedQueryLeavesReasonNote) {
  auto cfg = ClusterConfig::small_local(50);
  cfg.local_disk_capacity_bytes = 1 << 20;  // everything overflows
  Database db(cfg);
  db.create_table("clicks", tiny_clicks());
  obs::ObsContext obs;
  db.set_observer(&obs);
  auto run = db.run(queries::qcsa().sql, TranslatorProfile::hive());
  ASSERT_TRUE(run.metrics.failed());
  EXPECT_GE(obs.metrics.counter("engine.jobs.failed"), 1u);
  EXPECT_NE(obs.metrics.note_of("engine.last_fail_reason").find("disk"),
            std::string::npos);
}

TEST(Metrics, HistogramMinTracksFirstAndSmallestObservation) {
  // Regression guard: the first observation must establish min (and max)
  // even though an empty Histogram initializes both to 0 — a naive
  // `min = std::min(min, v)` would keep min pinned at 0 forever.
  obs::MetricsRegistry reg;
  reg.observe("h", 5.0);
  auto h = reg.histogram("h");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.min, 5.0);
  EXPECT_DOUBLE_EQ(h.max, 5.0);
  reg.observe("h", 2.0);
  reg.observe("h", 7.0);
  h = reg.histogram("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.min, 2.0);
  EXPECT_DOUBLE_EQ(h.max, 7.0);
  EXPECT_DOUBLE_EQ(h.sum, 14.0);
}

TEST(Metrics, RegistrySnapshotIsDeterministicallyOrdered) {
  obs::MetricsRegistry reg;
  reg.add("z.last", 1);
  reg.add("a.first", 2);
  reg.note("m.note", "text");
  const std::string json = reg.json();
  EXPECT_TRUE(MiniJson(json).parse());
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
}

// ---- task samples reconcile with the registry ----

TEST(TaskSamples, SamplesReconcileWithRegistryHistograms) {
  // The task-time histograms are fed from the retained samples, so the
  // registry's count/sum must reconcile exactly (same values, same
  // accumulation order) with what the sample store holds.
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  auto run = db->run(queries::qcsa().sql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());

  ASSERT_EQ(obs.samples.query_count(), 1u);
  const obs::QueryTaskSamples q = obs.samples.last_query();
  ASSERT_EQ(q.jobs.size(), static_cast<std::size_t>(run.metrics.job_count()));

  std::uint64_t map_count = 0, reduce_count = 0;
  double map_sum = 0, reduce_sum = 0;
  for (const auto& j : q.jobs) {
    for (const auto& s : j.map_tasks) {
      ++map_count;
      map_sum += s.sim_seconds;
    }
    if (j.map_only) {
      EXPECT_TRUE(j.reduce_tasks.empty());
      continue;
    }
    ASSERT_FALSE(j.reduce_tasks.empty());
    // One histogram observation per modeled task, expanded from the
    // simulated partitions exactly like the engine's makespan input.
    for (std::uint64_t i = 0; i < j.target_reduce_tasks; ++i) {
      ++reduce_count;
      reduce_sum += j.reduce_tasks[i % j.reduce_tasks.size()].sim_seconds;
    }
  }
  const auto map_h = obs.metrics.histogram("engine.map.task_sim_seconds");
  EXPECT_EQ(map_h.count, map_count);
  EXPECT_DOUBLE_EQ(map_h.sum, map_sum);
  const auto red_h = obs.metrics.histogram("engine.reduce.task_sim_seconds");
  EXPECT_EQ(red_h.count, reduce_count);
  EXPECT_DOUBLE_EQ(red_h.sum, reduce_sum);

  // Per-sample measurements also reconcile with the job totals.
  for (std::size_t ji = 0; ji < q.jobs.size(); ++ji) {
    const auto& js = q.jobs[ji];
    const auto& jm = run.metrics.jobs[ji];
    EXPECT_EQ(js.job_name, jm.job_name);
    EXPECT_DOUBLE_EQ(js.map_time_s, jm.map_time_s);
    EXPECT_DOUBLE_EQ(js.reduce_time_s, jm.reduce_time_s);
    EXPECT_EQ(js.target_reduce_tasks, jm.reduce.tasks);
    std::uint64_t in_rec = 0, in_bytes = 0, shuffle_raw = 0;
    for (const auto& s : js.map_tasks) {
      in_rec += s.input_records;
      in_bytes += s.input_bytes;
    }
    for (const auto& s : js.reduce_tasks) shuffle_raw += s.shuffle_bytes_raw;
    EXPECT_EQ(in_rec, jm.map.input_records);
    EXPECT_EQ(in_bytes, jm.map.input_bytes);
    EXPECT_EQ(shuffle_raw, jm.shuffle_bytes_raw);
  }
}

// ---- null observer costs nothing and crashes nothing ----

TEST(NullObserver, ScopedSpanIsSafeOnNull) {
  obs::ScopedSpan s(nullptr, "x", "phase");
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.id(), -1);
  s.sim(1, 2);
  s.arg("k", std::uint64_t{1});
  s.arg("k", 1.5);
  s.arg("k", std::string_view("v"));
}

TEST(NullObserver, DetachReallyDetaches) {
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  db->run(queries::qagg().sql, TranslatorProfile::ysmart());
  const std::size_t count = obs.tracer.span_count();
  EXPECT_GT(count, 0u);
  db->set_observer(nullptr);
  db->run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_EQ(obs.tracer.span_count(), count);
}

TEST(NullObserver, ObserverSurvivesReconfigureCluster) {
  auto db = fresh_db();
  obs::ObsContext obs;
  db->set_observer(&obs);
  db->reconfigure_cluster(ClusterConfig::small_local(25));
  db->create_table("clicks", tiny_clicks());
  db->run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_GT(obs.tracer.span_count(), 0u);
  EXPECT_GT(obs.metrics.counter("engine.jobs.run"), 0u);
}

}  // namespace
}  // namespace ysmart
