// Robustness properties: the parser never crashes on malformed input,
// Value ordering is a valid total order, makespan is monotone, the
// engine's reduce-task accounting scales to large clusters, job failures
// abort the DAG instead of feeding downstream jobs, total task failure
// terminates, engine results are pool-size invariant, and explain output
// is stable.
#include <gtest/gtest.h>

#include "api/database.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/clicks_gen.h"
#include "data/queries.h"
#include "data/tpch_gen.h"
#include "exec/batch.h"
#include "mr/engine.h"
#include "mr/shuffle.h"
#include "obs/analyzer.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"
#include "sql/parser.h"

namespace ysmart {
namespace {

// ---- parser fuzz-lite: garbage must throw ParseError, never crash ----

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, MalformedInputThrowsCleanly) {
  Rng rng(GetParam());
  static const char* fragments[] = {
      "select", "from",  "where", "group",  "by",    "order", "join", "on",
      "(",      ")",     ",",     "*",      "=",     "<",     ">=",   "and",
      "or",     "not",   "null",  "is",     "count", "sum",   "t",    "a.b",
      "'str'",  "1.5",   "42",    "as",     "x",     "limit", "<>",   "-",
      "+",      "/",     "having", "distinct"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string sql;
    const int n = static_cast<int>(rng.uniform(1, 18));
    for (int i = 0; i < n; ++i) {
      sql += fragments[rng.uniform(0, std::int64_t(std::size(fragments)) - 1)];
      sql += " ";
    }
    try {
      parse_select(sql);  // parsing may legitimately succeed
    } catch (const ParseError&) {
      // expected for most random strings
    } catch (const std::exception& e) {
      FAIL() << "non-ParseError exception for: " << sql << " -> " << e.what();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---- Value::compare is a total order ----

TEST(ValueOrdering, TransitiveAntisymmetricOverRandomValues) {
  Rng rng(5);
  std::vector<Value> vals;
  for (int i = 0; i < 60; ++i) {
    switch (rng.uniform(0, 3)) {
      case 0: vals.push_back(Value::null()); break;
      case 1: vals.push_back(Value{rng.uniform(-5, 5)}); break;
      case 2: vals.push_back(Value{rng.uniform(-5, 5) / 2.0}); break;
      default: vals.push_back(Value{rng.ident(2)}); break;
    }
  }
  for (const auto& a : vals) {
    EXPECT_EQ(a.compare(a), std::strong_ordering::equal);
    for (const auto& b : vals) {
      const auto ab = a.compare(b);
      const auto ba = b.compare(a);
      EXPECT_TRUE((ab < 0 && ba > 0) || (ab > 0 && ba < 0) ||
                  (ab == 0 && ba == 0));
      if (ab == 0) {
        EXPECT_EQ(a.hash(), b.hash());
      }
      for (const auto& c : vals) {
        if (ab <= 0 && b.compare(c) <= 0) {
          EXPECT_TRUE(a.compare(c) <= 0);
        }
      }
    }
  }
}

// ---- makespan properties over random task sets ----

class MakespanPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MakespanPropertyTest, BoundsAndMonotonicity) {
  Rng rng(GetParam());
  std::vector<double> tasks;
  double total = 0, longest = 0;
  const int n = static_cast<int>(rng.uniform(1, 40));
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform01() * 10 + 0.01;
    tasks.push_back(t);
    total += t;
    longest = std::max(longest, t);
  }
  double prev = 1e300;
  for (int slots : {1, 2, 3, 5, 8, 100}) {
    const double m = CostModel::makespan(tasks, slots);
    EXPECT_GE(m + 1e-9, longest);            // never beats the longest task
    EXPECT_GE(m + 1e-9, total / slots);      // never beats perfect balance
    EXPECT_LE(m, total + 1e-9);              // never worse than serial
    EXPECT_LE(m, prev + 1e-9);               // more slots never hurts
    prev = m;
  }
  EXPECT_DOUBLE_EQ(CostModel::makespan(tasks, 1), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MakespanPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---- reduce accounting on clusters larger than the simulation cap ----

TEST(ReduceScaling, TargetTasksReportedAndTimeScales) {
  Schema s;
  s.add("k", ValueType::Int);
  auto t = std::make_shared<Table>(s);
  for (int i = 0; i < 2000; ++i) t->append({Value{i}});

  auto run_on = [&](int nodes) {
    auto cfg = ClusterConfig::ec2(nodes, 1.0);
    Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
    dfs.write("/in", t);
    Engine engine(dfs, cfg);
    MRJobSpec spec;
    spec.name = "ident";
    spec.inputs = {{"/in", 0}};
    Schema out;
    out.add("k", ValueType::Int);
    out.add("n", ValueType::Int);
    spec.outputs = {{"/out", out}};
    struct M final : Mapper {
      void map(const Row& r, int, MapEmitter& e) override {
        e.emit(Row{r[0]}, Row{Value{1}});
      }
    };
    struct R final : Reducer {
      void reduce(const Row& k, std::span<const KeyValue> v,
                  ReduceEmitter& e) override {
        e.emit(Row{k[0], Value{static_cast<std::int64_t>(v.size())}});
      }
    };
    spec.make_mapper = [] { return std::make_unique<M>(); };
    spec.make_reducer = [] { return std::make_unique<R>(); };
    return engine.run(spec);
  };

  auto small = run_on(8);
  auto big = run_on(200);
  // The reported reduce task count is the cluster's real count, not the
  // simulator's internal cap.
  EXPECT_EQ(small.reduce.tasks, 8u);
  EXPECT_EQ(big.reduce.tasks, 200u);
  EXPECT_GT(big.reduce.tasks, Engine::kMaxSimReducers);
  // Identical data, wildly different cluster: identical results.
  EXPECT_EQ(small.reduce.output_records, big.reduce.output_records);
}

// ---- failure propagation, retry caps, pool-size invariance ----

// Shared word-count-style fixture bits for engine-level tests.
Schema key_schema() {
  Schema s;
  s.add("k", ValueType::Int);
  return s;
}

MRJobSpec counting_spec() {
  MRJobSpec spec;
  spec.name = "count";
  spec.inputs = {{"/in", 0}};
  Schema out;
  out.add("k", ValueType::Int);
  out.add("n", ValueType::Int);
  spec.outputs = {{"/out", out}};
  struct M final : Mapper {
    void map(const Row& r, int, MapEmitter& e) override {
      e.emit(Row{r[0]}, Row{Value{1}});
    }
  };
  struct R final : Reducer {
    void reduce(const Row& k, std::span<const KeyValue> v,
                ReduceEmitter& e) override {
      e.emit(Row{k[0], Value{static_cast<std::int64_t>(v.size())}});
    }
  };
  spec.make_mapper = [] { return std::make_unique<M>(); };
  spec.make_reducer = [] { return std::make_unique<R>(); };
  return spec;
}

std::shared_ptr<Table> key_rows(int n, int distinct) {
  auto t = std::make_shared<Table>(key_schema());
  for (int i = 0; i < n; ++i) t->append({Value{i % distinct}});
  return t;
}

TEST(FailurePropagation, DownstreamJobsDoNotRunAfterCapacityFailure) {
  ClicksConfig c;
  c.users = 100;
  c.mean_clicks_per_user = 10;
  auto clicks = generate_clicks(c);

  Database healthy(ClusterConfig::small_local(50));
  healthy.create_table("clicks", clicks);
  const auto ok = healthy.run(queries::qcsa().sql, TranslatorProfile::hive());
  ASSERT_FALSE(ok.metrics.failed());
  ASSERT_GT(ok.metrics.job_count(), 1);

  auto cfg = ClusterConfig::small_local(50);
  cfg.local_disk_capacity_bytes = 1 << 20;  // 1 MB: the first job overflows
  Database db(cfg);
  db.create_table("clicks", clicks);
  const auto dnf = db.run(queries::qcsa().sql, TranslatorProfile::hive());
  EXPECT_TRUE(dnf.metrics.failed());
  // No downstream job ran after the failure, and no result is handed out.
  EXPECT_LT(dnf.metrics.job_count(), ok.metrics.job_count());
  EXPECT_TRUE(dnf.metrics.jobs.back().failed);
  EXPECT_EQ(dnf.result, nullptr);
}

TEST(FailureInjection, TotalFailureRateTerminatesWithFailedJob) {
  Dfs dfs(2, 64, 1);
  dfs.write("/in", key_rows(50, 7));
  auto cfg = ClusterConfig::small_local(1.0);
  cfg.task_failure_rate = 1.0;  // every attempt fails; must not hang
  Engine engine(dfs, cfg);
  const auto m = engine.run(counting_spec());
  EXPECT_TRUE(m.failed);
  EXPECT_NE(m.fail_reason.find("attempts"), std::string::npos);
  // The schedule charges exactly the retry cap per task, no more.
  EXPECT_GT(m.map_time_s, 0);
}

TEST(PoolInvariance, ResultsAndSimulatedSecondsIdenticalAcrossPoolSizes) {
  auto data = key_rows(3000, 97);
  auto cfg = ClusterConfig::ec2(8, 1.0);
  cfg.task_failure_rate = 0.2;  // exercise the retry RNG stream too
  cfg.contention.enabled = true;

  JobMetrics m1, mn, m1o, mno, m1p, mnp;
  std::shared_ptr<const Table> t1, tn, t1o, tno, t1p, tnp;
  auto run_with = [&](ThreadPool& pool, JobMetrics& m,
                      std::shared_ptr<const Table>& t,
                      obs::ObsContext* obs = nullptr) {
    Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
    dfs.write("/in", data);
    Engine engine(dfs, cfg, &pool);
    engine.set_obs(obs);
    m = engine.run(counting_spec());
    t = dfs.file("/out").table;
  };

  ThreadPool serial(1), wide(8);
  obs::ObsContext o1, on, op1, opn;
  // Two more contexts with the host profiler on: host-axis accounting
  // (CPU clocks, allocation counters, dispatch counters) must be just as
  // non-perturbing as tracing.
  op1.profiler.set_enabled(true);
  opn.profiler.set_enabled(true);
  run_with(serial, m1, t1);
  run_with(wide, mn, tn);
  run_with(serial, m1o, t1o, &o1);
  run_with(wide, mno, tno, &on);
  run_with(serial, m1p, t1p, &op1);
  run_with(wide, mnp, tnp, &opn);

  // Bit-identical simulated times and measured quantities — across pool
  // sizes, with tracing enabled vs disabled, and with the host profiler
  // enabled on top.
  for (const JobMetrics* other : {&mn, &m1o, &mno, &m1p, &mnp}) {
    EXPECT_DOUBLE_EQ(m1.map_time_s, other->map_time_s);
    EXPECT_DOUBLE_EQ(m1.reduce_time_s, other->reduce_time_s);
    EXPECT_DOUBLE_EQ(m1.sched_delay_s, other->sched_delay_s);
    EXPECT_EQ(m1.shuffle_bytes_raw, other->shuffle_bytes_raw);
    EXPECT_EQ(m1.shuffle_bytes_wire, other->shuffle_bytes_wire);
    EXPECT_EQ(m1.dfs_write_bytes, other->dfs_write_bytes);
    EXPECT_EQ(m1.reduce.output_records, other->reduce.output_records);
  }
  // Identical rows in identical order (not just as a multiset).
  for (const auto* t : {&tn, &t1o, &tno, &t1p, &tnp}) {
    ASSERT_EQ(t1->row_count(), (*t)->row_count());
    for (std::size_t i = 0; i < t1->rows().size(); ++i)
      EXPECT_EQ(compare_rows(t1->rows()[i], (*t)->rows()[i]),
                std::strong_ordering::equal);
  }
  // The simulated-axis trace is itself pool-size invariant, byte for
  // byte; only the wall axis may differ.
  EXPECT_TRUE(o1.tracer.well_formed());
  EXPECT_TRUE(on.tracer.well_formed());
  EXPECT_EQ(o1.tracer.chrome_json(obs::TimeAxis::Simulated),
            on.tracer.chrome_json(obs::TimeAxis::Simulated));
  // Profiler-on runs produce the same sim-axis trace as profiler-off
  // runs, at both pool sizes — the profiler only ever touches the host
  // axis.
  EXPECT_EQ(o1.tracer.chrome_json(obs::TimeAxis::Simulated),
            op1.tracer.chrome_json(obs::TimeAxis::Simulated));
  EXPECT_EQ(o1.tracer.chrome_json(obs::TimeAxis::Simulated),
            opn.tracer.chrome_json(obs::TimeAxis::Simulated));
  // And it did actually record host phases while staying non-perturbing.
  EXPECT_GT(op1.profiler.phase_count(), 0u);
  EXPECT_GT(opn.profiler.phase_count(), 0u);

  // Task samples — recorded on the orchestrating thread in fixed task/
  // partition order — are pool-size invariant too: every per-task
  // measurement matches, and the analyzer (which consumes only samples)
  // emits byte-identical JSON at pool size 1 and 8. Together with the
  // metrics loop above this proves sampling is non-perturbing: the same
  // simulated seconds with observation off (m1, mn) and on (m1o, mno).
  ASSERT_EQ(o1.samples.query_count(), 1u);
  ASSERT_EQ(on.samples.query_count(), 1u);
  const obs::QueryTaskSamples s1 = o1.samples.last_query();
  const obs::QueryTaskSamples sn = on.samples.last_query();
  ASSERT_EQ(s1.jobs.size(), 1u);
  ASSERT_EQ(sn.jobs.size(), 1u);
  ASSERT_EQ(s1.jobs[0].map_tasks.size(), sn.jobs[0].map_tasks.size());
  ASSERT_EQ(s1.jobs[0].reduce_tasks.size(), sn.jobs[0].reduce_tasks.size());
  auto same_sample = [](const obs::TaskSample& a, const obs::TaskSample& b) {
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.input_records, b.input_records);
    EXPECT_EQ(a.input_bytes, b.input_bytes);
    EXPECT_EQ(a.output_records, b.output_records);
    EXPECT_EQ(a.shuffle_bytes_raw, b.shuffle_bytes_raw);
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.key_groups, b.key_groups);
    EXPECT_EQ(a.tag_records, b.tag_records);
  };
  for (std::size_t i = 0; i < s1.jobs[0].map_tasks.size(); ++i)
    same_sample(s1.jobs[0].map_tasks[i], sn.jobs[0].map_tasks[i]);
  for (std::size_t i = 0; i < s1.jobs[0].reduce_tasks.size(); ++i)
    same_sample(s1.jobs[0].reduce_tasks[i], sn.jobs[0].reduce_tasks[i]);
  EXPECT_EQ(obs::analyze_query(s1).json(), obs::analyze_query(sn).json());
  // The analyzer consumes only sim-axis samples, so profiler-on runs
  // yield byte-identical analyses too.
  ASSERT_EQ(op1.samples.query_count(), 1u);
  ASSERT_EQ(opn.samples.query_count(), 1u);
  EXPECT_EQ(obs::analyze_query(s1).json(),
            obs::analyze_query(op1.samples.last_query()).json());
  EXPECT_EQ(obs::analyze_query(s1).json(),
            obs::analyze_query(opn.samples.last_query()).json());
  // The cluster view — per-node rollups, shuffle traffic matrix, slot
  // timeline — is a pure function of the same samples, so its full JSON
  // is byte-identical across pool sizes and with the profiler on too.
  const std::string cv1 = obs::build_cluster_view(s1).json();
  EXPECT_EQ(cv1, obs::build_cluster_view(sn).json());
  EXPECT_EQ(cv1, obs::build_cluster_view(op1.samples.last_query()).json());
  EXPECT_EQ(cv1, obs::build_cluster_view(opn.samples.last_query()).json());
  // Node samples follow the documented assignment at every pool size.
  for (std::size_t i = 0; i < s1.jobs[0].map_tasks.size(); ++i)
    EXPECT_EQ(s1.jobs[0].map_tasks[i].node, sn.jobs[0].map_tasks[i].node);

  // The plan view is a pure join of (prediction, samples, metrics). Fed
  // the pool-1 and pool-8 runs of the same job, the full report JSON —
  // estimated-vs-actual rows, q-errors, ranked misses — comes out byte-
  // identical: the plan axis cannot see host parallelism.
  obs::QueryPrediction pv_pred;
  pv_pred.profile = "engine";
  obs::JobPrediction pv_job;
  pv_job.name = "count";
  pv_job.input_rows = 3000;
  pv_job.reduce_records = 3000;
  pv_job.reduce_groups = 97;
  pv_pred.jobs.push_back(pv_job);
  auto as_query = [](const JobMetrics& j) {
    QueryMetrics q;
    q.jobs.push_back(j);
    q.wall_time_s = j.total_time_s();
    return q;
  };
  EXPECT_EQ(obs::join_plan_actuals(pv_pred, s1, as_query(m1o)).json(),
            obs::join_plan_actuals(pv_pred, sn, as_query(mno)).json());

  // The event journal's sim-axis rendering is byte-identical across pool
  // sizes: sequence numbers, ordering, timestamps and fields all come
  // from the orchestrating thread's deterministic schedule. (Retries are
  // active at task_failure_rate 0.2, so fault events are exercised too.)
  EXPECT_GT(o1.events.total_emitted(), 0u);
  EXPECT_EQ(o1.events.jsonl(obs::EventLog::IncludeWall::No),
            on.events.jsonl(obs::EventLog::IncludeWall::No));
  EXPECT_EQ(o1.events.jsonl(obs::EventLog::IncludeWall::No),
            op1.events.jsonl(obs::EventLog::IncludeWall::No));
  EXPECT_EQ(o1.events.jsonl(obs::EventLog::IncludeWall::No),
            opn.events.jsonl(obs::EventLog::IncludeWall::No));

  // Progress counters settle to the same completed state at both sizes.
  const obs::ProgressSnapshot p1 = o1.progress.snapshot();
  const obs::ProgressSnapshot pn = on.progress.snapshot();
  EXPECT_EQ(p1.tasks_done(), pn.tasks_done());
  EXPECT_EQ(p1.tasks_total(), pn.tasks_total());
  EXPECT_EQ(p1.jobs_done, pn.jobs_done);
  EXPECT_DOUBLE_EQ(p1.sim_done_s, pn.sim_done_s);
}

TEST(PoolInvariance, FullObservabilityDoesNotPerturbQueryRuns) {
  // Database-level counterpart of the engine test above: a full DAG run
  // with every surface active (journal, progress with a live callback,
  // flight recorder) produces the same simulated metrics and analyzer
  // output as a bare run, and its sim-axis journal is pool-independent.
  ClicksConfig c;
  c.users = 120;
  auto clicks = generate_clicks(c);

  auto run_query = [&](obs::ObsContext* obs) {
    Database db(ClusterConfig::small_local(50));
    db.create_table("clicks", clicks);
    if (obs) db.set_observer(obs);
    return db.run(queries::qcsa().sql, TranslatorProfile::hive());
  };

  const auto plain = run_query(nullptr);
  obs::ObsContext full;
  std::size_t callbacks = 0;
  full.progress.set_callback(
      [&](const obs::ProgressSnapshot&) { ++callbacks; });
  full.plans.set_enabled(true);  // plan view active: must perturb nothing
  const auto observed = run_query(&full);

  ASSERT_FALSE(plain.metrics.failed());
  EXPECT_DOUBLE_EQ(plain.metrics.total_time_s(), observed.metrics.total_time_s());
  EXPECT_DOUBLE_EQ(plain.metrics.wall_time_s, observed.metrics.wall_time_s);
  ASSERT_EQ(plain.metrics.jobs.size(), observed.metrics.jobs.size());
  for (std::size_t i = 0; i < plain.metrics.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.metrics.jobs[i].map_time_s,
                     observed.metrics.jobs[i].map_time_s);
    EXPECT_EQ(plain.metrics.jobs[i].shuffle_bytes_wire,
              observed.metrics.jobs[i].shuffle_bytes_wire);
  }
  EXPECT_GT(callbacks, 0u);

  // The flight recorder captured the run with the values just compared.
  ASSERT_EQ(full.history.size(), 1u);
  obs::QueryHistoryRecord rec;
  ASSERT_TRUE(full.history.at(0, &rec));
  EXPECT_EQ(rec.sql, queries::qcsa().sql);
  EXPECT_EQ(rec.profile, "hive");
  EXPECT_EQ(rec.jobs, static_cast<int>(plain.metrics.jobs.size()));
  EXPECT_DOUBLE_EQ(rec.sim_wall_s, plain.metrics.wall_time_s);
  EXPECT_FALSE(rec.failed);
  EXPECT_FALSE(rec.analyzer_text.empty());

  // And a second fully-observed run is deterministic on the sim axis:
  // identical journal (modulo wall clock) and identical analyzer digest.
  obs::ObsContext again;
  again.plans.set_enabled(true);
  run_query(&again);
  EXPECT_EQ(full.events.jsonl(obs::EventLog::IncludeWall::No),
            again.events.jsonl(obs::EventLog::IncludeWall::No));
  obs::QueryHistoryRecord rec2;
  ASSERT_TRUE(again.history.at(0, &rec2));
  EXPECT_EQ(rec.digest, rec2.digest);
  EXPECT_EQ(rec.analyzer_text, rec2.analyzer_text);
  // The cluster view built over a full DAG run is deterministic too —
  // and building it is a pure read of the samples, so the metrics
  // equality with the bare run above already proves it perturbs nothing.
  EXPECT_EQ(obs::build_cluster_view(full.samples.last_query()).json(),
            obs::build_cluster_view(again.samples.last_query()).json());
  // The plan view recorded and joined exactly one prediction per run —
  // while the metrics equality with the bare run above already proved it
  // perturbed nothing — and its full report JSON is deterministic.
  ASSERT_EQ(full.plans.report_count(), 1u);
  ASSERT_EQ(again.plans.report_count(), 1u);
  EXPECT_EQ(full.plans.pending_count(), 0u);
  obs::PlanReport plan1, plan2;
  ASSERT_TRUE(full.plans.last_report(&plan1));
  ASSERT_TRUE(again.plans.last_report(&plan2));
  EXPECT_TRUE(plan1.executed);
  EXPECT_DOUBLE_EQ(plan1.actual_wall_s, plain.metrics.wall_time_s);
  EXPECT_EQ(plan1.json(/*full=*/true), plan2.json(/*full=*/true));

  // Turning the host profiler on changes nothing on the simulated axis:
  // same metrics, same journal, same digest — it only adds host phases.
  obs::ObsContext profiled;
  profiled.profiler.set_enabled(true);
  const auto prof_run = run_query(&profiled);
  EXPECT_DOUBLE_EQ(plain.metrics.total_time_s(),
                   prof_run.metrics.total_time_s());
  EXPECT_DOUBLE_EQ(plain.metrics.wall_time_s, prof_run.metrics.wall_time_s);
  EXPECT_EQ(full.events.jsonl(obs::EventLog::IncludeWall::No),
            profiled.events.jsonl(obs::EventLog::IncludeWall::No));
  obs::QueryHistoryRecord rec3;
  ASSERT_TRUE(profiled.history.at(0, &rec3));
  EXPECT_EQ(rec.digest, rec3.digest);
  EXPECT_EQ(rec.analyzer_text, rec3.analyzer_text);
  EXPECT_GT(profiled.profiler.phase_count(), 0u);
  EXPECT_GT(profiled.profiler.process_cpu_ns(), 0u);
}

// ---- raw comparator escape hatch: a pure host-side optimization ----

TEST(RawComparatorModes, SimulationIsBitIdenticalWithFastPathOnAndOff) {
  // The Fig. 9 workload (Q21 "Left Outer Join1" sub-tree, a merged CMF
  // job under the YSmart profile) run twice: once on the memcmp raw
  // comparator, once on the compare_rows fallback. The knob may only
  // change host wall-clock — everything simulated must match byte for
  // byte: metrics, results, analyzer JSON, and the sim-axis journal.
  TpchConfig small;
  small.orders = 1500;
  small.parts = 200;
  small.customers = 150;
  small.suppliers = 20;
  const TpchData tpch = generate_tpch(small);

  struct Outcome {
    QueryRunResult run;
    std::string journal;
    std::string analyzer;
    std::string digest;
  };
  const bool saved = raw_comparator_enabled();
  auto run_mode = [&](bool raw) {
    set_raw_comparator_enabled(raw);
    Database db(ClusterConfig::small_local(1.0));
    db.create_table("lineitem", tpch.lineitem);
    db.create_table("orders", tpch.orders);
    db.create_table("supplier", tpch.supplier);
    db.create_table("nation", tpch.nation);
    obs::ObsContext obs;
    db.set_observer(&obs);
    Outcome o{db.run(queries::q21_subtree().sql, TranslatorProfile::ysmart()),
              obs.events.jsonl(obs::EventLog::IncludeWall::No), "", ""};
    obs::QueryHistoryRecord rec;
    if (obs.history.at(0, &rec)) {
      o.analyzer = rec.analyzer_text;
      o.digest = rec.digest;
    }
    return o;
  };
  const Outcome on = run_mode(true);
  const Outcome off = run_mode(false);
  set_raw_comparator_enabled(saved);

  ASSERT_FALSE(on.run.metrics.failed());
  ASSERT_FALSE(off.run.metrics.failed());
  // Exact equality on the simulated doubles, not just approximate.
  EXPECT_EQ(on.run.metrics.total_time_s(), off.run.metrics.total_time_s());
  EXPECT_EQ(on.run.metrics.wall_time_s, off.run.metrics.wall_time_s);
  ASSERT_EQ(on.run.metrics.jobs.size(), off.run.metrics.jobs.size());
  for (std::size_t i = 0; i < on.run.metrics.jobs.size(); ++i) {
    const auto& a = on.run.metrics.jobs[i];
    const auto& b = off.run.metrics.jobs[i];
    EXPECT_EQ(a.map_time_s, b.map_time_s) << "job " << i;
    EXPECT_EQ(a.reduce_time_s, b.reduce_time_s) << "job " << i;
    EXPECT_EQ(a.shuffle_bytes_raw, b.shuffle_bytes_raw) << "job " << i;
    EXPECT_EQ(a.shuffle_bytes_wire, b.shuffle_bytes_wire) << "job " << i;
    EXPECT_EQ(a.dfs_write_bytes, b.dfs_write_bytes) << "job " << i;
    EXPECT_EQ(a.reduce.output_records, b.reduce.output_records) << "job " << i;
  }
  // Identical result rows in identical order.
  ASSERT_NE(on.run.result, nullptr);
  ASSERT_NE(off.run.result, nullptr);
  ASSERT_EQ(on.run.result->row_count(), off.run.result->row_count());
  for (std::size_t i = 0; i < on.run.result->rows().size(); ++i)
    EXPECT_EQ(compare_rows(on.run.result->rows()[i], off.run.result->rows()[i]),
              std::strong_ordering::equal);
  // Analyzer JSON and the sim-axis event journal, byte for byte.
  EXPECT_FALSE(on.analyzer.empty());
  EXPECT_EQ(on.analyzer, off.analyzer);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.journal, off.journal);
}

// ---- vectorized execution: a pure host-side optimization ----

TEST(VectorizedModes, SimulationIsBitIdenticalOnOffAcrossPoolSizes) {
  // The Fig. 9 workload (Q21 "Left Outer Join1" sub-tree, a merged CMF
  // job under the YSmart profile) run four ways: columnar batch kernels
  // on/off (YSMART_VECTORIZED) crossed with host pool sizes 1 and 8.
  // Vectorization may only change host wall-clock — everything simulated
  // must match byte for byte across all four runs: metrics, results,
  // analyzer JSON, and the sim-axis journal (the PR 5 invariant).
  TpchConfig small;
  small.orders = 1500;
  small.parts = 200;
  small.customers = 150;
  small.suppliers = 20;
  const TpchData tpch = generate_tpch(small);

  struct Outcome {
    QueryRunResult run;
    std::string journal;
    std::string analyzer;
    std::string digest;
  };
  const bool saved = vectorized_enabled();
  auto run_mode = [&](bool vectorized, int pool_size) {
    set_vectorized_enabled(vectorized);
    ThreadPool pool(pool_size);
    Database db(ClusterConfig::small_local(1.0), &pool);
    db.create_table("lineitem", tpch.lineitem);
    db.create_table("orders", tpch.orders);
    db.create_table("supplier", tpch.supplier);
    db.create_table("nation", tpch.nation);
    obs::ObsContext obs;
    db.set_observer(&obs);
    Outcome o{db.run(queries::q21_subtree().sql, TranslatorProfile::ysmart()),
              obs.events.jsonl(obs::EventLog::IncludeWall::No), "", ""};
    obs::QueryHistoryRecord rec;
    if (obs.history.at(0, &rec)) {
      o.analyzer = rec.analyzer_text;
      o.digest = rec.digest;
    }
    return o;
  };
  const Outcome base = run_mode(true, 1);
  set_vectorized_enabled(saved);
  ASSERT_FALSE(base.run.metrics.failed());
  EXPECT_FALSE(base.analyzer.empty());

  struct ModeCase {
    bool vectorized;
    int pool;
  };
  for (const ModeCase mc :
       {ModeCase{true, 8}, ModeCase{false, 1}, ModeCase{false, 8}}) {
    SCOPED_TRACE(std::string("vectorized=") + (mc.vectorized ? "on" : "off") +
                 " pool=" + std::to_string(mc.pool));
    const Outcome o = run_mode(mc.vectorized, mc.pool);
    set_vectorized_enabled(saved);
    ASSERT_FALSE(o.run.metrics.failed());
    // Exact equality on the simulated doubles, not just approximate.
    EXPECT_EQ(base.run.metrics.total_time_s(), o.run.metrics.total_time_s());
    EXPECT_EQ(base.run.metrics.wall_time_s, o.run.metrics.wall_time_s);
    ASSERT_EQ(base.run.metrics.jobs.size(), o.run.metrics.jobs.size());
    for (std::size_t i = 0; i < base.run.metrics.jobs.size(); ++i) {
      const auto& a = base.run.metrics.jobs[i];
      const auto& b = o.run.metrics.jobs[i];
      EXPECT_EQ(a.map_time_s, b.map_time_s) << "job " << i;
      EXPECT_EQ(a.reduce_time_s, b.reduce_time_s) << "job " << i;
      EXPECT_EQ(a.shuffle_bytes_raw, b.shuffle_bytes_raw) << "job " << i;
      EXPECT_EQ(a.shuffle_bytes_wire, b.shuffle_bytes_wire) << "job " << i;
      EXPECT_EQ(a.dfs_write_bytes, b.dfs_write_bytes) << "job " << i;
      EXPECT_EQ(a.reduce.output_records, b.reduce.output_records)
          << "job " << i;
    }
    // Identical result rows in identical order.
    ASSERT_NE(base.run.result, nullptr);
    ASSERT_NE(o.run.result, nullptr);
    ASSERT_EQ(base.run.result->row_count(), o.run.result->row_count());
    for (std::size_t i = 0; i < base.run.result->rows().size(); ++i)
      EXPECT_EQ(compare_rows(base.run.result->rows()[i],
                             o.run.result->rows()[i]),
                std::strong_ordering::equal);
    // Analyzer JSON and the sim-axis event journal, byte for byte.
    EXPECT_EQ(base.analyzer, o.analyzer);
    EXPECT_EQ(base.digest, o.digest);
    EXPECT_EQ(base.journal, o.journal);
  }
}

// ---- the what-if comparator on the Fig. 9 workload ----

TEST(PlanView, WhatIfQ21ShowsBothStrategiesWithoutPerturbingSim) {
  // Q21's "Left Outer Join1" sub-tree — the fig09 workload — translated
  // and executed under both strategies (YSmart merge vs one-op-one-job)
  // with the plan view on. The merged run's actual simulated seconds
  // must equal a bare run byte-for-byte (enabling \whatif cannot move
  // the fig09 baseline), and the rendered comparison names both.
  TpchConfig small;
  small.orders = 1500;
  small.parts = 200;
  small.customers = 150;
  small.suppliers = 20;
  const TpchData tpch = generate_tpch(small);
  auto make_db = [&] {
    auto db = std::make_unique<Database>(ClusterConfig::small_local(1.0));
    db->create_table("lineitem", tpch.lineitem);
    db->create_table("orders", tpch.orders);
    db->create_table("supplier", tpch.supplier);
    db->create_table("nation", tpch.nation);
    return db;
  };
  const std::string sql = queries::q21_subtree().sql;
  const auto bare = make_db()->run(sql, TranslatorProfile::ysmart());
  ASSERT_FALSE(bare.metrics.failed());

  auto run_plan = [&](const TranslatorProfile& prof, obs::PlanReport* rep) {
    auto db = make_db();
    obs::ObsContext ctx;
    ctx.plans.set_enabled(true);
    db->set_observer(&ctx);
    auto run = db->run(sql, prof);
    EXPECT_FALSE(run.metrics.failed());
    EXPECT_TRUE(ctx.plans.last_report(rep));
    return run;
  };
  obs::PlanReport merged, baseline;
  const auto mrun = run_plan(TranslatorProfile::ysmart(), &merged);
  run_plan(TranslatorProfile::hive(), &baseline);

  EXPECT_EQ(mrun.metrics.wall_time_s, bare.metrics.wall_time_s);
  EXPECT_EQ(mrun.metrics.total_time_s(), bare.metrics.total_time_s());
  EXPECT_DOUBLE_EQ(merged.actual_wall_s, bare.metrics.wall_time_s);

  ASSERT_TRUE(merged.executed);
  ASSERT_TRUE(baseline.executed);
  // The merge is real: fewer executed jobs than the per-operator plan.
  EXPECT_LT(merged.actual_jobs, baseline.actual_jobs);

  const std::string s = obs::render_whatif(merged, baseline);
  EXPECT_NE(s.find("what-if: ysmart vs hive"), std::string::npos) << s;
  EXPECT_NE(s.find("jobs (pred)"), std::string::npos);
  EXPECT_NE(s.find("jobs (act)"), std::string::npos);
  // Both sides executed, so the actual verdict line is present.
  EXPECT_NE(s.find("actual:"), std::string::npos) << s;
}

// ---- explain output is deterministic ----

TEST(ExplainStability, SameTextEveryTime) {
  Database db(ClusterConfig::small_local(1.0));
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  t->append({Value{1}, Value{2}, Value{1}, Value{3}});
  db.create_table("clicks", t);
  auto a = db.explain(queries::qcsa().sql, TranslatorProfile::ysmart());
  auto b = db.explain(queries::qcsa().sql, TranslatorProfile::ysmart());
  // The scratch run counter differs; normalize it away.
  auto scrub = [](std::string s) {
    for (std::size_t p; (p = s.find("/explain")) != std::string::npos;)
      s.erase(p, s.find('/', p + 1) == std::string::npos
                     ? s.size() - p
                     : s.find_first_of(" \n", p) - p);
    return s;
  };
  EXPECT_EQ(scrub(a), scrub(b));
}

}  // namespace
}  // namespace ysmart
