// Unit tests for the Common MapReduce Framework against hand-built
// TranslatedJobs: tag visibility, value dispatch, post-job computations,
// multi-output behaviour, the CombineAgg fast path, and the checks that
// guard malformed job descriptions.
#include <gtest/gtest.h>

#include "cmf/common_job.h"
#include "common/error.h"
#include "mr/engine.h"
#include "plan/builder.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace ysmart {
namespace {

Schema kv_schema() {
  Schema s;
  s.add("k", ValueType::Int);
  s.add("v", ValueType::Int);
  return s;
}

class CmfTest : public ::testing::Test {
 protected:
  CmfTest() : dfs_(2, 256, 1), engine_(dfs_, ClusterConfig::small_local(1.0)) {
    catalog_.register_table("t", kv_schema());
    auto t = std::make_shared<Table>(kv_schema());
    for (int i = 0; i < 30; ++i) t->append({Value{i % 5}, Value{i}});
    dfs_.write("/tables/t", t);
  }

  Dfs dfs_;
  Engine engine_;
  Catalog catalog_;
  TranslatorProfile profile_ = TranslatorProfile::ysmart();
};

// Two merged aggregations over the same scan with different filters: the
// exclude tags must route each record to the right consumers.
TEST_F(CmfTest, SharedEmissionWithPerConsumerFilters) {
  // AGG over v<10 and AGG over v>=20, both grouped by k, merged job.
  auto agg_lo = plan_query(
      "SELECT k, count(*) AS n FROM t WHERE v < 10 GROUP BY k", catalog_);
  auto agg_hi = plan_query(
      "SELECT k, count(*) AS n FROM t WHERE v >= 20 GROUP BY k", catalog_);

  TranslatedJob job;
  job.name = "merged";
  job.kind = TranslatedJob::Kind::MapReduce;
  job.input_files.push_back(InputFile{"/tables/t", Schema{}});
  Emission e;
  e.input_file = 0;
  e.source_tag = 0;
  e.key_exprs = {Expr::make_column("k")};
  e.value_exprs = {Expr::make_column("k"), Expr::make_column("v")};
  e.consumers.push_back(Emission::Consumer{0, parse_expression("v < 10")});
  e.consumers.push_back(Emission::Consumer{1, parse_expression("v >= 20")});
  job.emissions.push_back(e);

  Stage s0;
  s0.op = agg_lo.get();
  s0.inputs = {Stage::In{true, 0}};
  s0.output_index = 0;
  Stage s1;
  s1.op = agg_hi.get();
  s1.inputs = {Stage::In{true, 1}};
  s1.output_index = 1;
  job.stages = {s0, s1};
  job.outputs = {JobOutput{"/out/lo", agg_lo->output_schema},
                 JobOutput{"/out/hi", agg_hi->output_schema}};

  auto spec = build_common_job(job, profile_, dfs_);
  auto m = engine_.run(spec);
  ASSERT_FALSE(m.failed);

  // v in 0..29; k = v%5. v<10: 10 rows, 2 per key; v>=20: 10 rows, 2/key.
  auto lo = dfs_.file("/out/lo").table;
  auto hi = dfs_.file("/out/hi").table;
  ASSERT_EQ(lo->row_count(), 5u);
  ASSERT_EQ(hi->row_count(), 5u);
  for (const auto& r : lo->rows()) EXPECT_EQ(r[1].as_int(), 2);
  for (const auto& r : hi->rows()) EXPECT_EQ(r[1].as_int(), 2);
  // Records passing neither filter (10..19) were never emitted: each of
  // the 30 input records emits at most one pair.
  EXPECT_EQ(m.map.output_records, 20u);
}

TEST_F(CmfTest, PostJobComputationConsumesMergedResults) {
  // One aggregation stage whose output feeds an SP stage (the "post-job
  // computation") inside the same reduce invocation; only the SP result
  // is written.
  auto agg = plan_query("SELECT k, sum(v) AS s FROM t GROUP BY k", catalog_);
  PlanPtr sp = std::make_shared<PlanNode>();
  sp->kind = PlanKind::SP;
  sp->children = {agg};
  sp->filter = parse_expression("s > 80");
  sp->output_schema = agg->output_schema;

  TranslatedJob job;
  job.name = "agg+post";
  job.input_files.push_back(InputFile{"/tables/t", Schema{}});
  Emission e;
  e.input_file = 0;
  e.source_tag = 0;
  e.key_exprs = {Expr::make_column("k")};
  e.value_exprs = {Expr::make_column("k"), Expr::make_column("v")};
  e.consumers.push_back(Emission::Consumer{0, nullptr});
  job.emissions.push_back(e);
  Stage s0;
  s0.op = agg.get();
  s0.inputs = {Stage::In{true, 0}};
  Stage s1;
  s1.op = sp.get();
  s1.inputs = {Stage::In{false, 0}};
  s1.output_index = 0;
  job.stages = {s0, s1};
  job.outputs = {JobOutput{"/out/post", sp->output_schema}};

  engine_.run(build_common_job(job, profile_, dfs_));
  // sums per key: k gets v in {k, k+5, ..., k+25}: 6 values, sum = 6k+75.
  // s > 80 keeps k >= 1.
  EXPECT_EQ(dfs_.file("/out/post").table->row_count(), 4u);
}

TEST_F(CmfTest, CombineAggMatchesPlainAgg) {
  auto agg = plan_query("SELECT k, sum(v) AS s, count(*) AS n FROM t GROUP BY k",
                        catalog_);

  TranslatedJob combine;
  combine.name = "combine";
  combine.kind = TranslatedJob::Kind::CombineAgg;
  combine.combine_agg_node = agg.get();
  combine.input_files.push_back(InputFile{"/tables/t", Schema{}});
  Stage st;
  st.op = agg.get();
  st.inputs = {Stage::In{true, 0}};
  st.output_index = 0;
  combine.stages = {st};
  combine.outputs = {JobOutput{"/out/combined", agg->output_schema}};
  auto mc = engine_.run(build_common_job(combine, profile_, dfs_));

  TranslatedJob plain = combine;
  plain.name = "plain";
  plain.kind = TranslatedJob::Kind::MapReduce;
  Emission e;
  e.input_file = 0;
  e.source_tag = 0;
  e.key_exprs = {Expr::make_column("k")};
  e.value_exprs = {Expr::make_column("k"), Expr::make_column("v")};
  e.consumers.push_back(Emission::Consumer{0, nullptr});
  plain.emissions.push_back(e);
  plain.outputs = {JobOutput{"/out/plain", agg->output_schema}};
  auto mp = engine_.run(build_common_job(plain, profile_, dfs_));

  EXPECT_TRUE(same_rows_unordered(*dfs_.file("/out/combined").table,
                                  *dfs_.file("/out/plain").table));
  // The combiner must shrink the map output: 5 partial pairs vs 30 raws.
  EXPECT_LT(mc.map.output_records, mp.map.output_records);
}

TEST_F(CmfTest, MissingInputFileThrows) {
  TranslatedJob job;
  job.name = "bad";
  job.input_files.push_back(InputFile{"/tables/nope", Schema{}});
  job.outputs = {JobOutput{"/out/x", kv_schema()}};
  EXPECT_THROW(build_common_job(job, profile_, dfs_), ExecError);
}

TEST_F(CmfTest, NonDenseSourceTagsRejected) {
  auto agg = plan_query("SELECT k, count(*) AS n FROM t GROUP BY k", catalog_);
  TranslatedJob job;
  job.name = "badtags";
  job.input_files.push_back(InputFile{"/tables/t", Schema{}});
  Emission e;
  e.input_file = 0;
  e.source_tag = 3;  // must equal its position (0)
  e.key_exprs = {Expr::make_column("k")};
  e.value_exprs = {Expr::make_column("k"), Expr::make_column("v")};
  e.consumers.push_back(Emission::Consumer{0, nullptr});
  job.emissions.push_back(e);
  Stage st;
  st.op = agg.get();
  st.inputs = {Stage::In{true, 0}};
  st.output_index = 0;
  job.stages = {st};
  job.outputs = {JobOutput{"/out/x", agg->output_schema}};
  EXPECT_THROW(build_common_job(job, profile_, dfs_), InternalError);
}

}  // namespace
}  // namespace ysmart
