// ThreadPool unit tests: tasks all run, parallel_for covers every index
// exactly once for any pool size / grain, exceptions propagate, and the
// caller participates so a saturated pool cannot deadlock it.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace ysmart {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

class ParallelForTest
    : public ::testing::TestWithParam<std::pair<unsigned, std::size_t>> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const auto [threads, grain] = GetParam();
  ThreadPool pool(threads);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, grain, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, kN);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelForTest,
    ::testing::Values(std::pair<unsigned, std::size_t>{1, 1},
                      std::pair<unsigned, std::size_t>{1, 0},
                      std::pair<unsigned, std::size_t>{4, 1},
                      std::pair<unsigned, std::size_t>{4, 7},
                      std::pair<unsigned, std::size_t>{4, 0},
                      std::pair<unsigned, std::size_t>{8, 2000}));

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 57) throw std::runtime_error("bad chunk");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, CallerParticipatesSoSaturatedPoolFinishes) {
  // Fill the single worker with a long queue, then parallel_for from the
  // caller: the caller must claim chunks itself rather than wait forever.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(pool.submit([&done] { ++done; }));
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(32, 1, [&](std::size_t begin, std::size_t end) {
    covered += end - begin;
  });
  EXPECT_EQ(covered.load(), 32u);
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

}  // namespace
}  // namespace ysmart
