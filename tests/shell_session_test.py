#!/usr/bin/env python3
"""End-to-end scripted session of ysmart_shell with recorders active.

Drives the interactive shell through stdin with YSMART_TRACE,
YSMART_METRICS and YSMART_EVENTS set, runs two queries plus the
flight-recorder/progress/exposition commands, and asserts that

  - the shell exits cleanly and prints history/top/last output,
  - the trace file is valid JSON with spans for both queries,
  - the metrics file is valid JSON with engine counters covering them,
  - the events file is valid JSONL with strictly increasing seq and
    events from both queries,
  - \\serve <file> renders a Prometheus exposition.

Standard library only; invoked by ctest as
    python3 tests/shell_session_test.py <path-to-ysmart_shell>
"""
import json
import os
import subprocess
import sys
import tempfile

QUERY1 = "SELECT count(*) AS n FROM lineitem"
QUERY2 = "SELECT cid, count(*) AS n FROM clicks GROUP BY cid"


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: shell_session_test.py <ysmart_shell binary>")
    shell = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "session.trace.json")
        metrics = os.path.join(tmp, "session.metrics.json")
        events = os.path.join(tmp, "session.events.jsonl")
        prom = os.path.join(tmp, "session.prom")

        script = "\n".join([
            "\\profile on",
            QUERY1,
            QUERY2,
            "\\history",
            "\\top",
            "\\last 1",
            f"\\serve {prom}",
            "\\quit",
        ]) + "\n"

        env = dict(os.environ,
                   YSMART_TRACE=trace,
                   YSMART_METRICS=metrics,
                   YSMART_EVENTS=events)
        proc = subprocess.run(
            [shell], input=script, env=env, text=True,
            capture_output=True, timeout=90,
        )
        if proc.returncode != 0:
            fail(f"shell exited {proc.returncode}\nstderr:\n{proc.stderr}")
        out = proc.stdout

        for needle, why in [
            ("history:", "\\history output"),
            ("query doctor", "\\last analyzer report"),
            ("state: done", "\\top progress state"),
            (f"wrote {prom}", "\\serve file confirmation"),
        ]:
            if needle not in out:
                fail(f"missing {why} ({needle!r}) in shell output:\n{out}")

        # Trace: valid JSON, spans for two queries.
        with open(trace) as f:
            tr = json.load(f)
        tr_text = json.dumps(tr)
        if tr_text.count("query:ysmart") < 2:
            fail("trace does not contain spans for 2 queries")

        # Metrics: valid JSON with engine counters covering >= 2 jobs.
        with open(metrics) as f:
            m = json.load(f)
        jobs_run = m.get("counters", {}).get("engine.jobs.run", 0)
        if jobs_run < 2:
            fail(f"metrics engine.jobs.run = {jobs_run}, expected >= 2")

        # Events: valid JSONL, strictly increasing seq, both queries seen.
        last_seq = -1
        query_starts = 0
        with open(events) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                ev = json.loads(line)
                for key in ("seq", "level", "category", "name", "sim_s",
                            "fields"):
                    if key not in ev:
                        fail(f"events line {lineno} missing {key!r}: {line}")
                if ev["seq"] <= last_seq:
                    fail(f"events line {lineno}: seq {ev['seq']} "
                         f"not increasing (prev {last_seq})")
                last_seq = ev["seq"]
                if ev["name"] == "query-start":
                    query_starts += 1
        if query_starts < 2:
            fail(f"events contain {query_starts} query-start events, "
                 "expected >= 2")

        # Exposition file rendered by \serve <file>.
        with open(prom) as f:
            prom_text = f.read()
        for needle in ("# TYPE ysmart_engine_jobs_run_total counter",
                       "ysmart_queries_finished_total 2"):
            if needle not in prom_text:
                fail(f"exposition missing {needle!r}")

    print("shell session e2e ok")


if __name__ == "__main__":
    main()
