// End-to-end runs on every cluster preset (small local / EC2 11 / EC2
// 101 / Facebook production): results must stay correct regardless of
// cluster shape, contention, compression, and translator; and structural
// expectations per preset must hold (failure injection included).
#include <gtest/gtest.h>

#include "api/database.h"
#include "data/clicks_gen.h"
#include "data/queries.h"

namespace ysmart {
namespace {

std::shared_ptr<Table> small_clicks() {
  ClicksConfig c;
  c.users = 150;
  c.mean_clicks_per_user = 12;
  return generate_clicks(c);
}

class PresetTest : public ::testing::TestWithParam<int> {
 protected:
  static ClusterConfig preset(int which) {
    switch (which) {
      case 0: return ClusterConfig::small_local(50);
      case 1: return ClusterConfig::ec2(11, 50);
      case 2: return ClusterConfig::ec2(101, 50);
      default: return ClusterConfig::facebook(50, 7);
    }
  }
};

TEST_P(PresetTest, QcsaCorrectEverywhere) {
  Database db(preset(GetParam()));
  db.create_table("clicks", small_clicks());
  Table expected = db.run_reference(queries::qcsa().sql);
  for (const auto& profile :
       {TranslatorProfile::ysmart(), TranslatorProfile::hive()}) {
    auto run = db.run(queries::qcsa().sql, profile);
    EXPECT_TRUE(same_rows_unordered(expected, *run.result)) << profile.name;
    EXPECT_GT(run.metrics.total_time_s(), 0);
  }
}

TEST_P(PresetTest, CompressionDoesNotChangeResults) {
  auto cfg = preset(GetParam());
  cfg.compression.enabled = true;
  Database db(cfg);
  db.create_table("clicks", small_clicks());
  Table expected = db.run_reference(queries::qagg().sql);
  auto run = db.run(queries::qagg().sql, TranslatorProfile::ysmart());
  EXPECT_TRUE(same_rows_unordered(expected, *run.result));
  EXPECT_LT(run.metrics.total_shuffle_bytes(),
            run.metrics.jobs[0].shuffle_bytes_raw + 1);
}

std::string preset_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"SmallLocal", "Ec2_11", "Ec2_101", "Facebook"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest, ::testing::Range(0, 4),
                         preset_name);

TEST(ContentionE2E, DelaysGrowWithJobCount) {
  auto cfg = ClusterConfig::facebook(50, 11);
  Database db(cfg);
  db.create_table("clicks", small_clicks());
  auto ys = db.run(queries::qcsa().sql, TranslatorProfile::ysmart());
  db.reconfigure_cluster(cfg);  // reset the contention RNG stream
  auto hv = db.run(queries::qcsa().sql, TranslatorProfile::hive());
  double ys_delay = 0, hv_delay = 0;
  for (const auto& j : ys.metrics.jobs) ys_delay += j.sched_delay_s;
  for (const auto& j : hv.metrics.jobs) hv_delay += j.sched_delay_s;
  // Six jobs draw more scheduling delay than two under identical weather.
  EXPECT_GT(hv_delay, ys_delay);
}

TEST(FailureInjectionE2E, DnfPropagatesToQueryMetrics) {
  auto cfg = ClusterConfig::small_local(50);
  cfg.local_disk_capacity_bytes = 1 << 20;  // 1 MB: everything overflows
  Database db(cfg);
  db.create_table("clicks", small_clicks());
  auto run = db.run(queries::qcsa().sql, TranslatorProfile::pig());
  EXPECT_TRUE(run.metrics.failed());
  EXPECT_FALSE(run.metrics.fail_reason().empty());
}

TEST(ConcurrentSubmissionE2E, OverlapsIndependentJobs) {
  Database db(ClusterConfig::small_local(50));
  db.create_table("clicks", small_clicks());
  // Q-CSA under the baseline has independent early jobs (JOIN1 and the
  // aggregations on different branches are not — but Q17-style shapes
  // are). Use the Fig. 7-ish shape: two independent aggregations feeding
  // a join.
  const std::string sql =
      "SELECT x.uid, x.n, y.m FROM "
      "(SELECT uid, count(*) AS n FROM clicks GROUP BY uid) AS x, "
      "(SELECT uid AS uid2, max(ts) AS m FROM clicks GROUP BY uid) AS y "
      "WHERE x.uid = y.uid2";
  auto serial_profile = TranslatorProfile::hive();
  auto concurrent_profile = TranslatorProfile::hive();
  concurrent_profile.concurrent_job_submission = true;

  auto serial = db.run(sql, serial_profile);
  auto conc = db.run(sql, concurrent_profile);
  EXPECT_TRUE(same_rows_unordered(*serial.result, *conc.result));
  // Serial wall time equals the job-time sum; concurrent is strictly
  // smaller because the two aggregations overlap.
  EXPECT_DOUBLE_EQ(serial.metrics.wall_time_s, serial.metrics.total_time_s());
  EXPECT_LT(conc.metrics.wall_time_s, conc.metrics.total_time_s());
}

TEST(MrshareE2E, SharedScansWithoutJobFlowMerging) {
  Database db(ClusterConfig::small_local(50));
  db.create_table("clicks", small_clicks());
  Table expected = db.run_reference(queries::qcsa().sql);
  auto ms = db.run(queries::qcsa().sql, TranslatorProfile::mrshare());
  EXPECT_TRUE(same_rows_unordered(expected, *ms.result));
  // MRShare cannot reach YSmart's two jobs (no data-dependent batching)
  // but shares scans where jobs are independent.
  auto ys = db.run(queries::qcsa().sql, TranslatorProfile::ysmart());
  EXPECT_GT(ms.metrics.job_count(), ys.metrics.job_count());
  EXPECT_LE(ms.metrics.job_count(), queries::qcsa().one_op_jobs);
}

}  // namespace
}  // namespace ysmart
