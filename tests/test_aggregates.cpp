// Unit tests for AggState: SQL semantics, merging, partial (combiner)
// round trips, distinct handling.
#include <gtest/gtest.h>

#include "common/error.h"
#include "exec/aggregates.h"

namespace ysmart {
namespace {

AggCall call(const std::string& func, bool distinct = false, bool star = false) {
  AggCall c;
  c.func = func;
  c.distinct = distinct;
  c.star = star;
  if (!star) c.arg = Expr::make_column("x");
  return c;
}

TEST(AggState, CountSkipsNulls) {
  AggState s(call("count"));
  s.add(Value{1});
  s.add(Value::null());
  s.add(Value{2});
  EXPECT_EQ(s.result().as_int(), 2);
}

TEST(AggState, CountStarCountsNulls) {
  AggState s(call("count", false, true));
  s.add(Value{1});
  s.add(Value::null());
  EXPECT_EQ(s.result().as_int(), 2);
}

TEST(AggState, CountDistinct) {
  AggState s(call("count", /*distinct=*/true));
  for (int v : {1, 2, 2, 3, 1}) s.add(Value{v});
  s.add(Value::null());  // NULL does not count
  EXPECT_EQ(s.result().as_int(), 3);
}

TEST(AggState, SumIntStaysInt) {
  AggState s(call("sum"));
  s.add(Value{2});
  s.add(Value{3});
  EXPECT_EQ(s.result().type(), ValueType::Int);
  EXPECT_EQ(s.result().as_int(), 5);
}

TEST(AggState, SumMixedBecomesDouble) {
  AggState s(call("sum"));
  s.add(Value{2});
  s.add(Value{0.5});
  EXPECT_EQ(s.result().type(), ValueType::Double);
  EXPECT_DOUBLE_EQ(s.result().as_double(), 2.5);
}

TEST(AggState, EmptyGroupSemantics) {
  EXPECT_EQ(AggState(call("count")).result().as_int(), 0);
  EXPECT_TRUE(AggState(call("sum")).result().is_null());
  EXPECT_TRUE(AggState(call("avg")).result().is_null());
  EXPECT_TRUE(AggState(call("min")).result().is_null());
  EXPECT_TRUE(AggState(call("max")).result().is_null());
}

TEST(AggState, Avg) {
  AggState s(call("avg"));
  s.add(Value{1});
  s.add(Value{2});
  s.add(Value::null());
  EXPECT_DOUBLE_EQ(s.result().as_double(), 1.5);
}

TEST(AggState, MinMax) {
  AggState mn(call("min")), mx(call("max"));
  for (int v : {5, -2, 9}) {
    mn.add(Value{v});
    mx.add(Value{v});
  }
  EXPECT_EQ(mn.result().as_int(), -2);
  EXPECT_EQ(mx.result().as_int(), 9);
}

TEST(AggState, MinMaxStrings) {
  AggState mn(call("min"));
  mn.add(Value{"beta"});
  mn.add(Value{"alpha"});
  EXPECT_EQ(mn.result().as_string(), "alpha");
}

TEST(AggState, MergeEqualsSingleStream) {
  AggState a(call("avg")), b(call("avg")), whole(call("avg"));
  for (int v : {1, 2, 3}) {
    a.add(Value{v});
    whole.add(Value{v});
  }
  for (int v : {10, 20}) {
    b.add(Value{v});
    whole.add(Value{v});
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.result().as_double(), whole.result().as_double());
}

TEST(AggState, MergeDistinctUnions) {
  AggState a(call("count", true)), b(call("count", true));
  a.add(Value{1});
  a.add(Value{2});
  b.add(Value{2});
  b.add(Value{3});
  a.merge(b);
  EXPECT_EQ(a.result().as_int(), 3);
}

TEST(AggState, PartialRoundTrip) {
  for (const char* func : {"count", "sum", "avg", "min", "max"}) {
    SCOPED_TRACE(func);
    AggState src(call(func));
    for (int v : {4, 7, 7, -1}) src.add(Value{v});
    Row wire;
    src.to_partial(wire);
    EXPECT_EQ(static_cast<int>(wire.size()), src.partial_arity());
    AggState dst(call(func));
    dst.add_partial(std::span<const Value>(wire.data(), wire.size()));
    EXPECT_EQ(dst.result().compare(src.result()), std::strong_ordering::equal);
  }
}

TEST(AggState, PartialOfEmptyState) {
  AggState src(call("min"));
  Row wire;
  src.to_partial(wire);  // NULL min
  AggState dst(call("min"));
  dst.add_partial(std::span<const Value>(wire.data(), wire.size()));
  EXPECT_TRUE(dst.result().is_null());
}

TEST(AggState, DistinctHasNoFixedPartial) {
  AggState s(call("count", true));
  EXPECT_EQ(s.partial_arity(), AggState::kVariableArity);
  Row wire;
  EXPECT_THROW(s.to_partial(wire), InternalError);
}

TEST(AggState, DistinctNonCountThrows) {
  AggState s(call("sum", true));
  s.add(Value{1});
  EXPECT_THROW(s.result(), ExecError);
}

TEST(Combinable, DetectsDistinct) {
  PlanNode agg;
  agg.kind = PlanKind::Agg;
  agg.aggs.push_back(call("sum"));
  EXPECT_TRUE(combinable(agg));
  agg.aggs.push_back(call("count", true));
  EXPECT_FALSE(combinable(agg));
}

}  // namespace
}  // namespace ysmart
