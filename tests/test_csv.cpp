// Unit tests for CSV import/export: parsing, quoting, NULLs, schema
// inference, round trips, error paths, and loading into a Database.
#include <gtest/gtest.h>

#include <sstream>

#include "api/database.h"
#include "common/error.h"
#include "storage/csv.h"

namespace ysmart {
namespace {

Schema kvs() {
  Schema s;
  s.add("k", ValueType::Int);
  s.add("v", ValueType::Double);
  s.add("name", ValueType::String);
  return s;
}

TEST(Csv, BasicParse) {
  std::istringstream in("k,v,name\n1,2.5,alice\n2,3.0,bob\n");
  auto t = read_csv(in, kvs());
  ASSERT_EQ(t->row_count(), 2u);
  EXPECT_EQ(t->rows()[0][0].as_int(), 1);
  EXPECT_DOUBLE_EQ(t->rows()[0][1].as_double(), 2.5);
  EXPECT_EQ(t->rows()[1][2].as_string(), "bob");
}

TEST(Csv, NoHeader) {
  std::istringstream in("1,2.5,alice\n");
  CsvOptions o;
  o.header = false;
  EXPECT_EQ(read_csv(in, kvs(), o)->row_count(), 1u);
}

TEST(Csv, EmptyFieldsAreNull) {
  std::istringstream in("k,v,name\n1,,\n");
  auto t = read_csv(in, kvs());
  ASSERT_EQ(t->row_count(), 1u);
  EXPECT_TRUE(t->rows()[0][1].is_null());
  EXPECT_TRUE(t->rows()[0][2].is_null());
}

TEST(Csv, QuotedEmptyStringIsNotNull) {
  std::istringstream in("k,v,name\n1,2.0,\"\"\n");
  auto t = read_csv(in, kvs());
  EXPECT_EQ(t->rows()[0][2].as_string(), "");
}

TEST(Csv, QuotingAndEscapes) {
  std::istringstream in("k,v,name\n1,2.0,\"has, comma\"\n2,3.0,\"say \"\"hi\"\"\"\n");
  auto t = read_csv(in, kvs());
  EXPECT_EQ(t->rows()[0][2].as_string(), "has, comma");
  EXPECT_EQ(t->rows()[1][2].as_string(), "say \"hi\"");
}

TEST(Csv, EmbeddedNewlineInQuotes) {
  std::istringstream in("k,v,name\n1,2.0,\"two\nlines\"\n");
  auto t = read_csv(in, kvs());
  EXPECT_EQ(t->rows()[0][2].as_string(), "two\nlines");
}

TEST(Csv, BlankLinesSkipped) {
  std::istringstream in("k,v,name\n1,2.0,a\n\n2,3.0,b\n");
  EXPECT_EQ(read_csv(in, kvs())->row_count(), 2u);
}

TEST(Csv, BadArityThrows) {
  std::istringstream in("k,v,name\n1,2.0\n");
  EXPECT_THROW(read_csv(in, kvs()), ExecError);
}

TEST(Csv, BadIntThrows) {
  std::istringstream in("k,v,name\nxx,2.0,a\n");
  EXPECT_THROW(read_csv(in, kvs()), ExecError);
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("k,v,name\n1,2.0,\"oops\n");
  EXPECT_THROW(read_csv(in, kvs()), ExecError);
}

TEST(Csv, InferTypes) {
  std::istringstream in("a,b,c,d\n1,1.5,x,\n2,2,y,\n,3.5,7,\n");
  auto t = read_csv_infer(in);
  const Schema& s = t->schema();
  EXPECT_EQ(s.at(0).type, ValueType::Int);     // 1, 2, NULL
  EXPECT_EQ(s.at(1).type, ValueType::Double);  // 1.5, 2, 3.5
  EXPECT_EQ(s.at(2).type, ValueType::String);  // x, y, 7
  EXPECT_EQ(s.at(3).type, ValueType::String);  // all NULL -> string
  EXPECT_EQ(s.at(0).name, "a");
}

TEST(Csv, InferWithoutHeaderSynthesizesNames) {
  std::istringstream in("1,2\n3,4\n");
  CsvOptions o;
  o.header = false;
  auto t = read_csv_infer(in, o);
  EXPECT_EQ(t->schema().at(0).name, "col0");
  EXPECT_EQ(t->schema().at(1).name, "col1");
}

TEST(Csv, RoundTrip) {
  Table t(kvs());
  t.append({Value{1}, Value{2.5}, Value{"plain"}});
  t.append({Value{-7}, Value::null(), Value{"with, comma"}});
  t.append({Value{0}, Value{1.0}, Value{"quote\"inside"}});
  t.append({Value{9}, Value{3.0}, Value{""}});
  std::ostringstream out;
  write_csv(t, out);
  std::istringstream in(out.str());
  auto back = read_csv(in, kvs());
  EXPECT_TRUE(same_rows_unordered(t, *back));
}

TEST(Csv, CustomSeparator) {
  std::istringstream in("k|v|name\n1|2.0|a\n");
  CsvOptions o;
  o.separator = '|';
  EXPECT_EQ(read_csv(in, kvs(), o)->row_count(), 1u);
}

TEST(Csv, LoadedTableIsQueryable) {
  std::istringstream in("k,v,name\n1,10.0,a\n1,20.0,b\n2,5.0,c\n");
  Database db(ClusterConfig::small_local(1.0));
  db.create_table("t", read_csv(in, kvs()));
  auto run = db.run("SELECT k, sum(v) AS s FROM t GROUP BY k",
                    TranslatorProfile::ysmart());
  ASSERT_EQ(run.result->row_count(), 2u);
  EXPECT_TRUE(same_rows_unordered(
      db.run_reference("SELECT k, sum(v) AS s FROM t GROUP BY k"),
      *run.result));
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/no/such/file.csv", kvs()), ExecError);
}

}  // namespace
}  // namespace ysmart
