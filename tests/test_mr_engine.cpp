// Unit tests for the MapReduce engine itself: word-count style jobs,
// multi-input tagging, map-only jobs, multi-output jobs, metrics,
// contention, compression accounting, determinism.
#include <gtest/gtest.h>

#include "mr/engine.h"

namespace ysmart {
namespace {

Schema word_schema() {
  Schema s;
  s.add("word", ValueType::String);
  return s;
}

Schema count_schema() {
  Schema s;
  s.add("word", ValueType::String);
  s.add("n", ValueType::Int);
  return s;
}

class WordMapper final : public Mapper {
 public:
  void map(const Row& record, int /*tag*/, MapEmitter& out) override {
    out.emit(Row{record[0]}, Row{Value{1}});
  }
};

class CountReducer final : public Reducer {
 public:
  void reduce(const Row& key, std::span<const KeyValue> values,
              ReduceEmitter& out) override {
    out.emit(Row{key[0], Value{static_cast<std::int64_t>(values.size())}});
  }
};

std::shared_ptr<Table> words(std::initializer_list<const char*> ws) {
  auto t = std::make_shared<Table>(word_schema());
  for (const char* w : ws) t->append({Value{w}});
  return t;
}

MRJobSpec word_count_spec() {
  MRJobSpec spec;
  spec.name = "wordcount";
  spec.inputs = {{"/in", 0}};
  spec.outputs = {{"/out", count_schema()}};
  spec.make_mapper = [] { return std::make_unique<WordMapper>(); };
  spec.make_reducer = [] { return std::make_unique<CountReducer>(); };
  return spec;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : dfs_(2, 64, 1), engine_(dfs_, ClusterConfig::small_local(1.0)) {}
  Dfs dfs_;
  Engine engine_;
};

TEST_F(EngineTest, WordCount) {
  dfs_.write("/in", words({"a", "b", "a", "c", "a", "b"}));
  auto m = engine_.run(word_count_spec());
  EXPECT_FALSE(m.failed);
  auto out = dfs_.file("/out").table;
  ASSERT_EQ(out->row_count(), 3u);
  std::map<std::string, std::int64_t> counts;
  for (const auto& r : out->rows()) counts[r[0].as_string()] = r[1].as_int();
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST_F(EngineTest, MetricsCountRecordsAndBytes) {
  dfs_.write("/in", words({"a", "b", "a"}));
  auto m = engine_.run(word_count_spec());
  EXPECT_EQ(m.map.input_records, 3u);
  EXPECT_EQ(m.map.output_records, 3u);
  EXPECT_GT(m.map.input_bytes, 0u);
  EXPECT_EQ(m.reduce.input_records, 3u);
  EXPECT_EQ(m.reduce.output_records, 2u);
  EXPECT_EQ(m.shuffle_bytes_raw, m.map.output_bytes);
  EXPECT_GT(m.map_time_s, 0);
  EXPECT_GT(m.reduce_time_s, 0);
  EXPECT_EQ(m.sched_delay_s, 0);  // no contention on the local preset
}

TEST_F(EngineTest, MultipleMapTasksFromBlocks) {
  auto t = std::make_shared<Table>(word_schema());
  for (int i = 0; i < 100; ++i) t->append({Value{"w" + std::to_string(i % 7)}});
  dfs_.write("/in", t);  // 64-byte blocks -> many tasks
  auto m = engine_.run(word_count_spec());
  EXPECT_GT(m.map.tasks, 10u);
  EXPECT_EQ(dfs_.file("/out").table->row_count(), 7u);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto t = std::make_shared<Table>(word_schema());
  for (int i = 0; i < 500; ++i) t->append({Value{"w" + std::to_string(i % 31)}});
  dfs_.write("/in", t);
  auto m1 = engine_.run(word_count_spec());
  auto rows1 = dfs_.file("/out").table->rows();
  auto m2 = engine_.run(word_count_spec());
  auto rows2 = dfs_.file("/out").table->rows();
  ASSERT_EQ(rows1.size(), rows2.size());
  for (std::size_t i = 0; i < rows1.size(); ++i)
    EXPECT_EQ(compare_rows(rows1[i], rows2[i]), std::strong_ordering::equal);
  EXPECT_DOUBLE_EQ(m1.map_time_s, m2.map_time_s);
  EXPECT_DOUBLE_EQ(m1.reduce_time_s, m2.reduce_time_s);
}

// Input tags distinguish sources in multi-input jobs.
class TagMapper final : public Mapper {
 public:
  void map(const Row& record, int tag, MapEmitter& out) override {
    out.emit(Row{record[0]}, Row{Value{tag}},
             static_cast<std::uint8_t>(tag));
  }
};

class TagReducer final : public Reducer {
 public:
  void reduce(const Row& key, std::span<const KeyValue> values,
              ReduceEmitter& out) override {
    std::int64_t left = 0, right = 0;
    for (const auto& kv : values) (kv.source == 0 ? left : right)++;
    out.emit(Row{key[0], Value{left}, Value{right}});
  }
};

TEST_F(EngineTest, MultiInputTagging) {
  dfs_.write("/l", words({"a", "b"}));
  dfs_.write("/r", words({"b", "b"}));
  Schema out_schema;
  out_schema.add("word", ValueType::String);
  out_schema.add("l", ValueType::Int);
  out_schema.add("r", ValueType::Int);
  MRJobSpec spec;
  spec.name = "tagged";
  spec.inputs = {{"/l", 0}, {"/r", 1}};
  spec.outputs = {{"/out", out_schema}};
  spec.make_mapper = [] { return std::make_unique<TagMapper>(); };
  spec.make_reducer = [] { return std::make_unique<TagReducer>(); };
  engine_.run(spec);
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> res;
  for (const auto& r : dfs_.file("/out").table->rows())
    res[r[0].as_string()] = {r[1].as_int(), r[2].as_int()};
  EXPECT_EQ(res["a"], (std::pair<std::int64_t, std::int64_t>{1, 0}));
  EXPECT_EQ(res["b"], (std::pair<std::int64_t, std::int64_t>{1, 2}));
}

// Map-only job: values go straight to the output.
class PassMapper final : public Mapper {
 public:
  void map(const Row& record, int /*tag*/, MapEmitter& out) override {
    if (record[0].as_string() != "drop") out.emit(Row{}, Row{record[0]});
  }
};

TEST_F(EngineTest, MapOnlyJob) {
  dfs_.write("/in", words({"keep", "drop", "keep2"}));
  MRJobSpec spec;
  spec.name = "maponly";
  spec.inputs = {{"/in", 0}};
  spec.outputs = {{"/out", word_schema()}};
  spec.make_mapper = [] { return std::make_unique<PassMapper>(); };
  auto m = engine_.run(spec);
  EXPECT_EQ(dfs_.file("/out").table->row_count(), 2u);
  // Map-only metrics convention (metrics.h): the final output is the map
  // phase's output; every reduce field stays zero.
  EXPECT_GT(m.map.tasks, 0u);
  EXPECT_EQ(m.map.output_records, 2u);
  EXPECT_EQ(m.reduce.tasks, 0u);
  EXPECT_EQ(m.reduce.output_records, 0u);
  EXPECT_EQ(m.reduce.output_bytes, 0u);
  EXPECT_EQ(m.reduce_time_s, 0.0);
  EXPECT_GT(m.dfs_write_bytes, 0u);
}

// Multi-output reducers write each tagged result to its own file.
class SplitReducer final : public Reducer {
 public:
  void reduce(const Row& key, std::span<const KeyValue> values,
              ReduceEmitter& out) override {
    const std::int64_t n = static_cast<std::int64_t>(values.size());
    out.emit_to(n > 1 ? 1 : 0, Row{key[0], Value{n}});
  }
};

TEST_F(EngineTest, MultipleOutputs) {
  dfs_.write("/in", words({"a", "b", "a"}));
  MRJobSpec spec;
  spec.name = "split";
  spec.inputs = {{"/in", 0}};
  spec.outputs = {{"/unique", count_schema()}, {"/dups", count_schema()}};
  spec.make_mapper = [] { return std::make_unique<WordMapper>(); };
  spec.make_reducer = [] { return std::make_unique<SplitReducer>(); };
  engine_.run(spec);
  EXPECT_EQ(dfs_.file("/unique").table->row_count(), 1u);
  EXPECT_EQ(dfs_.file("/dups").table->row_count(), 1u);
}

TEST_F(EngineTest, CompressionShrinksWireBytes) {
  auto t = std::make_shared<Table>(word_schema());
  for (int i = 0; i < 200; ++i) t->append({Value{"w" + std::to_string(i % 5)}});
  dfs_.write("/in", t);
  auto plain = engine_.run(word_count_spec());

  auto cfg = ClusterConfig::small_local(1.0);
  cfg.compression.enabled = true;
  Engine compressed_engine(dfs_, cfg);
  auto comp = compressed_engine.run(word_count_spec());
  EXPECT_LT(comp.shuffle_bytes_wire, plain.shuffle_bytes_wire);
  EXPECT_EQ(comp.shuffle_bytes_raw, plain.shuffle_bytes_raw);
}

TEST_F(EngineTest, ContentionAddsSchedulingDelay) {
  dfs_.write("/in", words({"a", "b"}));
  auto cfg = ClusterConfig::small_local(1.0);
  cfg.contention.enabled = true;
  cfg.contention.mean_sched_delay_s = 120;
  Engine busy(dfs_, cfg);
  auto m = busy.run(word_count_spec());
  EXPECT_GT(m.sched_delay_s, 0);
}

TEST_F(EngineTest, DiskCapacityOverflowFailsJob) {
  auto t = std::make_shared<Table>(word_schema());
  for (int i = 0; i < 100; ++i) t->append({Value{"wwwwwwwwww"}});
  dfs_.write("/in", t);
  auto cfg = ClusterConfig::small_local(1.0);
  cfg.local_disk_capacity_bytes = 10;  // absurdly small
  Engine tiny(dfs_, cfg);
  auto m = tiny.run(word_count_spec());
  EXPECT_TRUE(m.failed);
  EXPECT_NE(m.fail_reason.find("capacity"), std::string::npos);
}

TEST_F(EngineTest, TaskFailuresAddTimeNotErrors) {
  auto t = std::make_shared<Table>(word_schema());
  for (int i = 0; i < 300; ++i) t->append({Value{"w" + std::to_string(i % 9)}});
  dfs_.write("/in", t);
  auto baseline = engine_.run(word_count_spec());
  auto out_healthy = dfs_.file("/out").table;

  auto cfg = ClusterConfig::small_local(1.0);
  cfg.task_failure_rate = 0.3;
  cfg.contention.seed = 99;
  Engine flaky(dfs_, cfg);
  auto m = flaky.run(word_count_spec());
  EXPECT_FALSE(m.failed);
  // Re-executed attempts cost time but recompute identical results.
  EXPECT_GT(m.map_time_s + m.reduce_time_s,
            baseline.map_time_s + baseline.reduce_time_s);
  EXPECT_TRUE(same_rows_unordered(*out_healthy, *dfs_.file("/out").table));
}

TEST_F(EngineTest, EmptyInputProducesEmptyOutput) {
  dfs_.write("/in", std::make_shared<Table>(word_schema()));
  auto m = engine_.run(word_count_spec());
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(dfs_.file("/out").table->row_count(), 0u);
}

}  // namespace
}  // namespace ysmart
