// Tests for the query doctor (src/obs/analyzer.h) and its inputs: the
// Space-Saving heavy-hitter sketch, the task sample store, skew and
// hot-key detection on an engine-level job, and — the load-bearing
// guarantee — that the analyzer's critical path reproduces the DAG
// executor's wall_time_s bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/database.h"
#include "common/json.h"
#include "data/queries.h"
#include "data/tpch_gen.h"
#include "mr/engine.h"
#include "obs/analyzer.h"
#include "obs/heavy_hitters.h"
#include "obs/obs.h"
#include "storage/dfs.h"

namespace ysmart {
namespace {

// ---- Space-Saving sketch ----

TEST(SpaceSaving, ExactWhileUnderCapacity) {
  obs::SpaceSaving s(8);
  s.offer("a", 5);
  s.offer("b", 3);
  s.offer("a", 2);
  s.offer("c");
  EXPECT_EQ(s.total_weight(), 11u);
  const auto top = s.top(8);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 7u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(top[2].count, 1u);
}

TEST(SpaceSaving, EvictionKeepsOverestimateGuarantee) {
  // Capacity 2; a genuinely heavy key must survive eviction pressure and
  // every reported count must bracket the true weight:
  //   count - error <= true weight <= count.
  obs::SpaceSaving s(2);
  for (int i = 0; i < 100; ++i) s.offer("heavy");
  for (int i = 0; i < 30; ++i) s.offer("noise" + std::to_string(i));
  EXPECT_EQ(s.total_weight(), 130u);
  const auto top = s.top(2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, "heavy");
  EXPECT_GE(top[0].count, 100u);
  EXPECT_LE(top[0].count - top[0].error, 100u);
}

TEST(SpaceSaving, MergeAccumulatesTotalsAndKeepsHeavyKeys) {
  obs::SpaceSaving a(4), b(4);
  a.offer("x", 50);
  a.offer("y", 10);
  b.offer("x", 25);
  b.offer("z", 40);
  a.merge(b);
  EXPECT_EQ(a.total_weight(), 125u);
  const auto top = a.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "x");
  EXPECT_EQ(top[0].count, 75u);
}

TEST(SpaceSaving, TopBreaksCountTiesByAscendingKey) {
  obs::SpaceSaving s(8);
  s.offer("delta", 2);
  s.offer("alpha", 2);
  s.offer("carol", 2);
  const auto top = s.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "alpha");
  EXPECT_EQ(top[1].key, "carol");
  EXPECT_EQ(top[2].key, "delta");
}

// ---- task sample store ----

TEST(TaskSampleStore, ImplicitGroupAndWaveStamping) {
  obs::TaskSampleStore store;
  obs::JobTaskSamples j1;
  j1.job_name = "standalone";
  store.record_job(std::move(j1));  // no begin_query: implicit group
  EXPECT_EQ(store.query_count(), 1u);
  EXPECT_EQ(store.last_query().jobs.at(0).wave, -1);

  store.begin_query();
  store.set_current_wave(0);
  obs::JobTaskSamples j2;
  j2.job_name = "wave0";
  store.record_job(std::move(j2));
  store.set_current_wave(1);
  obs::JobTaskSamples j3;
  j3.job_name = "wave1";
  store.record_job(std::move(j3));
  store.set_wall_time(12.5);
  EXPECT_EQ(store.query_count(), 2u);
  const auto q = store.last_query();
  ASSERT_EQ(q.jobs.size(), 2u);
  EXPECT_EQ(q.jobs[0].wave, 0);
  EXPECT_EQ(q.jobs[1].wave, 1);
  EXPECT_DOUBLE_EQ(q.wall_time_s, 12.5);
  EXPECT_EQ(store.total_jobs(), 3u);
}

// ---- engine-level skew: one hot key dominates a reduce partition ----

TEST(AnalyzerSkew, HotKeyIsTopHeavyHitterAndDiagnosed) {
  // ~31% of all records share one key; the rest spread over 97 keys.
  Schema ks;
  ks.add("k", ValueType::Int);
  auto data = std::make_shared<Table>(ks);
  for (int i = 0; i < 2000; ++i) data->append({Value{i % 97}});
  for (int i = 0; i < 900; ++i) data->append({Value{424242}});

  auto cfg = ClusterConfig::ec2(8, 1.0);
  Dfs dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
  dfs.write("/in", data);
  Engine engine(dfs, cfg);
  obs::ObsContext obs;
  engine.set_obs(&obs);

  MRJobSpec spec;
  spec.name = "skewed-count";
  spec.inputs = {{"/in", 0}};
  Schema out;
  out.add("k", ValueType::Int);
  out.add("n", ValueType::Int);
  spec.outputs = {{"/out", out}};
  spec.key_column_names = {"k"};
  struct M final : Mapper {
    void map(const Row& r, int, MapEmitter& e) override {
      e.emit(Row{r[0]}, Row{Value{1}});
    }
  };
  struct R final : Reducer {
    void reduce(const Row& k, std::span<const KeyValue> v,
                ReduceEmitter& e) override {
      e.emit(Row{k[0], Value{static_cast<std::int64_t>(v.size())}});
    }
  };
  spec.make_mapper = [] { return std::make_unique<M>(); };
  spec.make_reducer = [] { return std::make_unique<R>(); };
  const JobMetrics m = engine.run(spec);
  ASSERT_FALSE(m.failed);

  ASSERT_EQ(obs.samples.query_count(), 1u);
  const obs::QueryTaskSamples q = obs.samples.last_query();
  ASSERT_EQ(q.jobs.size(), 1u);
  const obs::JobTaskSamples& js = q.jobs[0];
  EXPECT_EQ(js.wave, -1);  // standalone engine run: no DAG executor

  // The hot key tops the merged sketch, with the overestimate bracket
  // around its true weight of 900 records.
  const auto top = js.hot_keys.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "(424242)");
  EXPECT_GE(top[0].count, 900u);
  EXPECT_LE(top[0].count - top[0].error, 900u);
  EXPECT_EQ(js.hot_keys.total_weight(), 2900u);

  // Key groups across partitions cover every distinct key exactly once.
  std::uint64_t groups = 0, records = 0;
  for (const auto& t : js.reduce_tasks) {
    groups += t.key_groups;
    records += t.input_records;
  }
  EXPECT_EQ(groups, 98u);
  EXPECT_EQ(records, 2900u);

  const obs::AnalyzerReport rep = analyze_query(q);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_TRUE(rep.jobs[0].on_critical_path);
  EXPECT_EQ(rep.critical_path_s, rep.serial_total_s);
  ASSERT_FALSE(rep.jobs[0].hot_keys.empty());
  EXPECT_EQ(rep.jobs[0].hot_keys[0].key, "(424242)");
  bool diagnosed = false;
  for (const auto& d : rep.diagnosis)
    diagnosed |= d.find("hot key 'k=(424242)'") != std::string::npos;
  EXPECT_TRUE(diagnosed) << rep.text();
  EXPECT_NE(rep.text().find("hot keys:"), std::string::npos);
}

// ---- critical path vs the DAG executor ----

std::shared_ptr<Table> small_clicks() {
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  for (int i = 0; i < 500; ++i)
    t->append({Value{i % 11}, Value{i % 17}, Value{i % 5}, Value{i}});
  return t;
}

TEST(AnalyzerCriticalPath, SerialSubmissionEqualsWallTimeExactly) {
  Database db(ClusterConfig::small_local(50));
  db.create_table("clicks", small_clicks());
  obs::ObsContext obs;
  db.set_observer(&obs);
  // Hive profile: one-op-per-job, the longest serial DAG available.
  const auto run = db.run(queries::qcsa().sql, TranslatorProfile::hive());
  ASSERT_FALSE(run.metrics.failed());
  ASSERT_GT(run.metrics.job_count(), 1);

  const obs::QueryTaskSamples q = obs.samples.last_query();
  EXPECT_EQ(q.wall_time_s, run.metrics.wall_time_s);
  const obs::AnalyzerReport rep = analyze_query(q);
  ASSERT_EQ(rep.jobs.size(), static_cast<std::size_t>(run.metrics.job_count()));
  // Bit-exact double equality, not approximate: the analyzer replays the
  // executor's wall-time fold operation for operation.
  EXPECT_EQ(rep.critical_path_s, run.metrics.wall_time_s);
  // Serial submission: one job per wave, so the critical path is the
  // serial sum and every job is critical with zero slack.
  EXPECT_EQ(rep.critical_path_s, rep.serial_total_s);
  EXPECT_EQ(rep.waves.size(), rep.jobs.size());
  for (const auto& j : rep.jobs) {
    EXPECT_TRUE(j.on_critical_path);
    EXPECT_DOUBLE_EQ(j.slack_s, 0.0);
  }
}

TEST(AnalyzerCriticalPath, ConcurrentSubmissionMatchesWallAndBoundsSum) {
  // Q17's one-op plan has two independent base-table branches (AGG over
  // lineitem, lineitem-x-part JOIN), so concurrent submission genuinely
  // overlaps jobs — unlike qcsa's strictly linear hive chain.
  Database db(ClusterConfig::small_local(50));
  TpchConfig tc;
  tc.orders = 200;
  tc.parts = 60;
  tc.customers = 40;
  tc.suppliers = 10;
  auto tpch = generate_tpch(tc);
  db.create_table("lineitem", tpch.lineitem);
  db.create_table("part", tpch.part);
  obs::ObsContext obs;
  db.set_observer(&obs);
  TranslatorProfile profile = TranslatorProfile::hive();
  profile.concurrent_job_submission = true;
  const auto run = db.run(queries::q17().sql, profile);
  ASSERT_FALSE(run.metrics.failed());

  const obs::AnalyzerReport rep = analyze_query(obs.samples.last_query());
  EXPECT_EQ(rep.critical_path_s, run.metrics.wall_time_s);
  EXPECT_LE(rep.critical_path_s, rep.serial_total_s);
  // Overlapping waves: fewer waves than jobs, and every wave has exactly
  // one critical job with zero slack.
  EXPECT_LT(rep.waves.size(), rep.jobs.size());
  for (const auto& w : rep.waves) {
    ASSERT_GE(w.critical_job, 0);
    const auto& cj = rep.jobs[static_cast<std::size_t>(w.critical_job)];
    EXPECT_TRUE(cj.on_critical_path);
    EXPECT_DOUBLE_EQ(cj.slack_s, 0.0);
    EXPECT_DOUBLE_EQ(cj.total_s, w.elapsed_s);
  }
}

// ---- the acceptance scenario: TPC-H Q21 under the full translator ----

TEST(AnalyzerQ21, CriticalPathPartitionsTagsAndReportMarkers) {
  Database db(ClusterConfig::small_local(50));
  TpchConfig tc;
  tc.orders = 800;
  tc.parts = 200;
  tc.customers = 150;
  tc.suppliers = 30;
  auto tpch = generate_tpch(tc);
  db.create_table("lineitem", tpch.lineitem);
  db.create_table("orders", tpch.orders);
  db.create_table("supplier", tpch.supplier);
  db.create_table("nation", tpch.nation);
  obs::ObsContext obs;
  db.set_observer(&obs);
  const auto run = db.run(queries::q21().sql, TranslatorProfile::ysmart());
  ASSERT_FALSE(run.metrics.failed());

  const obs::QueryTaskSamples q = obs.samples.last_query();
  const obs::AnalyzerReport rep = analyze_query(q);

  // Serial submission: the critical-path total equals wall_time_s exactly.
  EXPECT_EQ(rep.critical_path_s, run.metrics.wall_time_s);

  // The heaviest reduce partitions are named, with per-tag record counts
  // on the CMF common job that merges several source relations.
  bool found_partitions = false, found_multi_tag = false, found_keys = false;
  for (const auto& j : rep.jobs) {
    if (j.map_only) continue;
    if (!j.top_partitions.empty()) found_partitions = true;
    for (const auto& hp : j.top_partitions) {
      EXPECT_GT(hp.records, 0u);
      EXPECT_GT(hp.key_groups, 0u);
      if (hp.tag_records.size() > 1) found_multi_tag = true;
    }
    if (!j.key_columns.empty()) found_keys = true;
  }
  EXPECT_TRUE(found_partitions);
  EXPECT_TRUE(found_multi_tag)
      << "no reduce partition saw records from more than one source tag";
  EXPECT_TRUE(found_keys);

  // The rendered report carries every section the shell prints.
  const std::string text = rep.text();
  for (const char* marker :
       {"== query doctor ==", "critical path:", "wave 0:",
        "heaviest reduce partitions", "tags [", "diagnosis:"})
    EXPECT_NE(text.find(marker), std::string::npos)
        << "missing marker: " << marker << "\n" << text;

  // The JSON form parses and is deterministic across re-analysis.
  JsonWriter w;
  rep.to_json(w);
  EXPECT_EQ(w.str(), analyze_query(q).json());
  EXPECT_NE(w.str().find("\"critical_path_s\""), std::string::npos);
}

}  // namespace
}  // namespace ysmart
