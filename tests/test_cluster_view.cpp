// Tests for the cluster axis (src/obs/cluster_view.h): node-identity
// conventions, the exact traffic-matrix row/column invariant, the LPT
// timeline replay reproducing the engine's phase makespans bit-for-bit,
// sparsification at paper-scale node counts, the cluster doctor, and
// deterministic JSON rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "data/queries.h"
#include "mr/cluster.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"
#include "storage/table.h"

namespace ysmart {
namespace {

std::shared_ptr<Table> wide_clicks(int rows) {
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  auto t = std::make_shared<Table>(cl);
  for (int i = 0; i < rows; ++i)
    t->append({Value{i % 97}, Value{i % 31}, Value{i % 23}, Value{i}});
  return t;
}

constexpr const char* kGroupBySql =
    "SELECT cid, count(*) AS n FROM clicks GROUP BY cid";

/// Run one query on an 11-node EC2 cluster with samples retained, and
/// hand back both the engine's metrics and the sample snapshot.
struct RunOutput {
  QueryRunResult run;
  obs::QueryTaskSamples samples;
};

RunOutput run_sampled(const std::string& sql, int nodes = 11) {
  Database db(ClusterConfig::ec2(nodes, 50));
  db.create_table("clicks", wide_clicks(3000));
  obs::ObsContext ctx;
  db.set_observer(&ctx);
  RunOutput out;
  out.run = db.run(sql, TranslatorProfile::ysmart());
  out.samples = ctx.samples.last_query();
  return out;
}

TEST(ClusterView, NodeConventionsMatchTheDocumentedAssignment) {
  const RunOutput out = run_sampled(kGroupBySql);
  ASSERT_FALSE(out.run.metrics.failed());
  ASSERT_FALSE(out.samples.jobs.empty());
  for (const auto& js : out.samples.jobs) {
    EXPECT_EQ(js.worker_nodes, 11);
    for (std::size_t i = 0; i < js.map_tasks.size(); ++i)
      EXPECT_EQ(js.map_tasks[i].node,
                static_cast<int>(i) % js.worker_nodes)
          << "map task " << i;
    for (const auto& t : js.reduce_tasks)
      EXPECT_EQ(t.node, t.index % js.worker_nodes)
          << "reduce partition " << t.index;
  }
}

TEST(ClusterView, TrafficMatrixRowAndColumnSumsAreExact) {
  const RunOutput out = run_sampled(kGroupBySql);
  ASSERT_FALSE(out.run.metrics.failed());
  const obs::ClusterReport rep = obs::build_cluster_view(out.samples);
  ASSERT_EQ(rep.worker_nodes, 11);
  ASSERT_FALSE(rep.traffic.sparse);

  // Row sums: exactly what each map node emitted (pre-expansion wire
  // bytes), summed in uint64 so equality is to the byte.
  std::vector<std::uint64_t> want_rows(11, 0), want_cols(11, 0);
  std::uint64_t want_total = 0, reduce_side_total = 0;
  for (const auto& js : out.samples.jobs) {
    for (const auto& t : js.map_tasks)
      for (std::size_t p = 0; p < t.partition_bytes.size(); ++p) {
        want_rows[static_cast<std::size_t>(t.node)] += t.partition_bytes[p];
        want_cols[p % 11] += t.partition_bytes[p];
        want_total += t.partition_bytes[p];
      }
    for (const auto& t : js.reduce_tasks)
      reduce_side_total += t.shuffle_bytes_prescale;
  }
  ASSERT_GT(want_total, 0u) << "group-by must shuffle something";
  // The two independently recorded sides agree exactly: the map side's
  // per-partition emission equals the reduce side's per-partition
  // receipt.
  EXPECT_EQ(want_total, reduce_side_total);
  EXPECT_EQ(rep.traffic.total_bytes, want_total);
  EXPECT_EQ(rep.traffic.row_bytes, want_rows);
  EXPECT_EQ(rep.traffic.col_bytes, want_cols);

  // Each reduce partition's column contribution reconciles per node.
  std::vector<std::uint64_t> col_from_reduce(11, 0);
  for (const auto& js : out.samples.jobs)
    for (const auto& t : js.reduce_tasks)
      col_from_reduce[static_cast<std::size_t>(t.node)] +=
          t.shuffle_bytes_prescale;
  EXPECT_EQ(col_from_reduce, rep.traffic.col_bytes);

  // The dense grid is consistent with its own marginals.
  ASSERT_EQ(rep.traffic.dense.size(), 11u);
  for (int i = 0; i < 11; ++i) {
    std::uint64_t row = 0, col = 0;
    for (int j = 0; j < 11; ++j) {
      row += rep.traffic.dense[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(j)];
      col += rep.traffic.dense[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(row, rep.traffic.row_bytes[static_cast<std::size_t>(i)]);
    EXPECT_EQ(col, rep.traffic.col_bytes[static_cast<std::size_t>(i)]);
  }
  // And the per-node rollup mirrors the marginals.
  for (const auto& n : rep.nodes) {
    EXPECT_EQ(n.shuffle_bytes_out,
              rep.traffic.row_bytes[static_cast<std::size_t>(n.node)]);
    EXPECT_EQ(n.shuffle_bytes_in,
              rep.traffic.col_bytes[static_cast<std::size_t>(n.node)]);
  }
}

TEST(ClusterView, TimelineReplayReproducesPhaseMakespansExactly) {
  const RunOutput out = run_sampled(kGroupBySql);
  ASSERT_FALSE(out.run.metrics.failed());
  const obs::ClusterReport rep = obs::build_cluster_view(out.samples);

  // The wave fold equals the executor's modeled end-to-end time
  // bit-for-bit (same fold as the analyzer's critical path).
  EXPECT_EQ(rep.makespan_s, out.run.metrics.wall_time_s);

  ASSERT_EQ(rep.jobs.size(), out.samples.jobs.size());
  int map_events = 0;
  for (std::size_t ji = 0; ji < out.samples.jobs.size(); ++ji) {
    const obs::JobTaskSamples& js = out.samples.jobs[ji];
    const double map_start = rep.jobs[ji].start_s + js.sched_delay_s;
    for (const auto& ev : rep.timeline) {
      if (ev.job != static_cast<int>(ji)) continue;
      // Lanes stay within the cluster and events within the job's span.
      EXPECT_GE(ev.node, 0);
      EXPECT_LT(ev.node, rep.worker_nodes);
      EXPECT_GE(ev.slot, 0);
      if (!ev.reduce) {
        EXPECT_GE(ev.start_s, map_start);
        ++map_events;
      }
    }
    // The replay runs the same LPT fold over the same values as
    // CostModel::makespan, relative to the phase start — so the phase
    // makespan matches bit-for-bit, not approximately.
    EXPECT_EQ(rep.jobs[ji].map_replay_s, js.map_time_s) << js.job_name;
    if (!js.map_only && !js.reduce_tasks.empty() &&
        js.target_reduce_tasks == js.reduce_tasks.size()) {
      // Unexpanded reduce phases replay exactly too; expansion-scaled
      // phases replay only the simulated partitions (documented).
      EXPECT_EQ(rep.jobs[ji].reduce_replay_s, js.reduce_time_s)
          << js.job_name;
    }
  }
  // Every map task got a timeline event.
  std::size_t total_map_tasks = 0;
  for (const auto& js : out.samples.jobs) total_map_tasks += js.map_tasks.size();
  EXPECT_EQ(static_cast<std::size_t>(map_events), total_map_tasks);
}

TEST(ClusterView, JsonIsDeterministicAcrossIdenticalRuns) {
  const RunOutput a = run_sampled(kGroupBySql);
  const RunOutput b = run_sampled(kGroupBySql);
  const std::string ja = obs::build_cluster_view(a.samples).json();
  const std::string jb = obs::build_cluster_view(b.samples).json();
  EXPECT_EQ(ja, jb);
  // Compact form (the analyzer embedding) is deterministic too, and
  // strictly smaller than the full document.
  const std::string ca =
      obs::build_cluster_view(a.samples).json(/*full=*/false);
  EXPECT_EQ(ca, obs::build_cluster_view(b.samples).json(/*full=*/false));
  EXPECT_LT(ca.size(), ja.size());
  EXPECT_EQ(ca.find("\"timeline\""), std::string::npos);
  EXPECT_EQ(ca.find("\"traffic\""), std::string::npos);
}

TEST(ClusterView, ChromeEventsCarryPid3AndTheSimOffset) {
  const RunOutput out = run_sampled(kGroupBySql);
  const obs::ClusterReport rep = obs::build_cluster_view(out.samples);
  ASSERT_FALSE(rep.timeline.empty());
  const auto base = rep.chrome_events(0.0);
  const auto shifted = rep.chrome_events(100.0);
  ASSERT_EQ(base.size(), shifted.size());
  int complete_events = 0;
  for (const auto& ev : base) {
    EXPECT_NE(ev.find("\"pid\":3"), std::string::npos) << ev;
    if (ev.find("\"ph\":\"X\"") != std::string::npos) ++complete_events;
  }
  EXPECT_EQ(complete_events, static_cast<int>(rep.timeline.size()));
  EXPECT_NE(base[0].find("cluster nodes"), std::string::npos);
  // The offset shifts complete-event timestamps (100 s = 1e8 us) and
  // changes nothing else: metadata events stay byte-identical.
  EXPECT_EQ(base[0], shifted[0]);
  bool saw_shift = false;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i] != shifted[i]) saw_shift = true;
  EXPECT_TRUE(saw_shift);
}

// ---- synthetic paper-scale cluster: sparsification and the doctor ----

obs::QueryTaskSamples synthetic_query(int nodes, int map_tasks,
                                      int partitions) {
  obs::QueryTaskSamples q;
  obs::JobTaskSamples js;
  js.job_name = "JOB1";
  js.wave = 0;
  js.worker_nodes = nodes;
  js.map_slots = nodes;
  js.reduce_slots = nodes;
  js.map_time_s = 10;
  js.reduce_time_s = 5;
  js.target_reduce_tasks = static_cast<std::uint64_t>(partitions);
  std::vector<std::uint64_t> col(static_cast<std::size_t>(partitions), 0);
  for (int i = 0; i < map_tasks; ++i) {
    obs::TaskSample t;
    t.index = i;
    t.node = i % nodes;
    t.sim_seconds = 1.0 + 0.001 * i;
    t.local_read = i % 3 != 0;
    t.input_bytes = 1000;
    for (int p = 0; p < partitions; ++p) {
      const std::uint64_t b = static_cast<std::uint64_t>((i + p) % 7) * 100;
      t.partition_bytes.push_back(b);
      col[static_cast<std::size_t>(p)] += b;
    }
    js.map_tasks.push_back(std::move(t));
  }
  for (int p = 0; p < partitions; ++p) {
    obs::TaskSample t;
    t.index = p;
    t.node = p % nodes;
    t.sim_seconds = 0.5;
    t.shuffle_bytes_prescale = col[static_cast<std::size_t>(p)];
    js.reduce_tasks.push_back(std::move(t));
  }
  q.jobs.push_back(std::move(js));
  q.wall_time_s = 15;
  return q;
}

TEST(ClusterView, PaperScaleClusterSparsifiesAndStaysSmall) {
  // 747 nodes (the Facebook preset): the dense grid would be 747x747
  // cells per record; the view must switch to top-k sparse while keeping
  // the exact row/column marginals.
  const obs::QueryTaskSamples q = synthetic_query(747, 400, 32);
  const obs::ClusterReport rep = obs::build_cluster_view(q);
  EXPECT_EQ(rep.worker_nodes, 747);
  EXPECT_TRUE(rep.traffic.sparse);
  EXPECT_TRUE(rep.traffic.dense.empty());
  EXPECT_LE(rep.traffic.top_cells.size(), 64u);
  ASSERT_EQ(rep.traffic.row_bytes.size(), 747u);
  ASSERT_EQ(rep.traffic.col_bytes.size(), 747u);
  std::uint64_t rows = 0, cols = 0;
  for (std::uint64_t b : rep.traffic.row_bytes) rows += b;
  for (std::uint64_t b : rep.traffic.col_bytes) cols += b;
  EXPECT_EQ(rows, rep.traffic.total_bytes);
  EXPECT_EQ(cols, rep.traffic.total_bytes);
  // Top cells are sorted by bytes descending, deterministically.
  for (std::size_t i = 1; i < rep.traffic.top_cells.size(); ++i)
    EXPECT_GE(rep.traffic.top_cells[i - 1].bytes,
              rep.traffic.top_cells[i].bytes);
  // The full JSON stays bounded: 256-node cap with the truncation flag
  // set, no 747x747 grid.
  const std::string json = rep.json();
  EXPECT_NE(json.find("\"nodes_truncated\":true"), std::string::npos);
  EXPECT_LT(json.size(), 200u * 1024u) << "report size must stay bounded";
}

TEST(ClusterView, DoctorFlagsUnderfilledWavesAndStragglers) {
  // 8 nodes, 8 map slots, but only 3 map tasks: underfilled. One task is
  // 10x the others: its node is a straggler.
  obs::QueryTaskSamples q = synthetic_query(8, 3, 4);
  q.jobs[0].map_tasks[1].sim_seconds = 50.0;
  const obs::ClusterReport rep = obs::build_cluster_view(q);
  EXPECT_TRUE(rep.jobs[0].map_underfilled);
  EXPECT_TRUE(rep.jobs[0].reduce_underfilled);  // 4 partitions < 8 slots
  EXPECT_EQ(rep.underfilled_phases, 2);
  const std::string text = rep.text();
  EXPECT_NE(text.find("== cluster doctor =="), std::string::npos);
  EXPECT_NE(text.find("underfilled"), std::string::npos);
  bool straggler = false, imbalance = false;
  for (const auto& d : rep.diagnosis) {
    if (d.find("straggler") != std::string::npos) straggler = true;
    if (d.find("imbalance") != std::string::npos) imbalance = true;
  }
  EXPECT_TRUE(straggler || imbalance)
      << "a 10x node must be diagnosed: " << text;
}

TEST(ClusterView, EmptySamplesProduceAnEmptyReport) {
  const obs::ClusterReport rep = obs::build_cluster_view({});
  EXPECT_EQ(rep.worker_nodes, 0);
  EXPECT_TRUE(rep.timeline.empty());
  EXPECT_NE(rep.text().find("no samples"), std::string::npos);
}

}  // namespace
}  // namespace ysmart
