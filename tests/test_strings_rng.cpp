// Unit tests for the string helpers and the deterministic PRNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace ysmart {
namespace {

TEST(Strings, ToLowerUpper) {
  EXPECT_EQ(to_lower("AbC_1"), "abc_1");
  EXPECT_EQ(to_upper("AbC_1"), "ABC_1");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(join({}, "+"), "");
  EXPECT_EQ(join({"only"}, "+"), "only");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("/tables/x", "/tables/"));
  EXPECT_FALSE(starts_with("/t", "/tables/"));
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strf("%.2f", 1.5), "1.50");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  EXPECT_EQ(r.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsInverted) {
  Rng r(7);
  EXPECT_THROW(r.uniform(2, 1), InternalError);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);  // law of large numbers, loose
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 1.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(13);
  EXPECT_THROW(r.exponential(0), InternalError);
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng r(17);
  int ones = 0, tens = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.zipf(10, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
    if (v == 1) ++ones;
    if (v == 10) ++tens;
  }
  EXPECT_GT(ones, tens * 3);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng r(19);
  int low = 0;
  for (int i = 0; i < 4000; ++i)
    if (r.zipf(4, 0) <= 2) ++low;
  EXPECT_NEAR(low / 4000.0, 0.5, 0.06);
}

TEST(Rng, IdentLengthAndAlphabet) {
  Rng r(23);
  const auto s = r.ident(12);
  EXPECT_EQ(s.size(), 12u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace ysmart
