// Unit tests for BoundExpr: SQL NULL propagation, three-valued logic,
// arithmetic typing, comparisons, binding errors.
#include <gtest/gtest.h>

#include "common/error.h"
#include "exec/expr_eval.h"
#include "sql/parser.h"

namespace ysmart {
namespace {

Schema abc() {
  Schema s;
  s.add("a", ValueType::Int);
  s.add("b", ValueType::Double);
  s.add("c", ValueType::String);
  return s;
}

Value ev(const std::string& expr, const Row& row = {Value{3}, Value{1.5},
                                                    Value{"hi"}}) {
  return BoundExpr(parse_expression(expr), abc()).eval(row);
}

TEST(ExprEval, Arithmetic) {
  EXPECT_EQ(ev("a + 2").as_int(), 5);
  EXPECT_EQ(ev("a - 5").as_int(), -2);
  EXPECT_EQ(ev("a * a").as_int(), 9);
  EXPECT_DOUBLE_EQ(ev("a + b").as_double(), 4.5);
  EXPECT_DOUBLE_EQ(ev("a / 2").as_double(), 1.5);  // '/' is always double
}

TEST(ExprEval, DivisionByZeroIsNull) { EXPECT_TRUE(ev("a / 0").is_null()); }

TEST(ExprEval, UnaryMinus) {
  EXPECT_EQ(ev("-a").as_int(), -3);
  EXPECT_DOUBLE_EQ(ev("-b").as_double(), -1.5);
}

TEST(ExprEval, Comparisons) {
  EXPECT_EQ(ev("a = 3").as_int(), 1);
  EXPECT_EQ(ev("a <> 3").as_int(), 0);
  EXPECT_EQ(ev("a < 4").as_int(), 1);
  EXPECT_EQ(ev("a <= 3").as_int(), 1);
  EXPECT_EQ(ev("a > 3").as_int(), 0);
  EXPECT_EQ(ev("a >= 4").as_int(), 0);
  EXPECT_EQ(ev("c = 'hi'").as_int(), 1);
  EXPECT_EQ(ev("c < 'hj'").as_int(), 1);
}

TEST(ExprEval, IntDoubleCrossComparison) {
  EXPECT_EQ(ev("a > b").as_int(), 1);  // 3 > 1.5
}

TEST(ExprEval, NullPropagation) {
  const Row null_row{Value::null(), Value::null(), Value::null()};
  EXPECT_TRUE(ev("a + 1", null_row).is_null());
  EXPECT_TRUE(ev("a = a", null_row).is_null());  // NULL = NULL is NULL
  EXPECT_TRUE(ev("-a", null_row).is_null());
}

TEST(ExprEval, IsNull) {
  const Row null_row{Value::null(), Value{1.0}, Value{"x"}};
  EXPECT_EQ(ev("a IS NULL", null_row).as_int(), 1);
  EXPECT_EQ(ev("b IS NULL", null_row).as_int(), 0);
  EXPECT_EQ(ev("a IS NOT NULL", null_row).as_int(), 0);
}

TEST(ExprEval, ThreeValuedAnd) {
  const Row null_row{Value::null(), Value{1.0}, Value{"x"}};
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
  EXPECT_EQ(ev("(a = 1) AND (b = 0)", null_row).as_int(), 0);
  EXPECT_TRUE(ev("(a = 1) AND (b = 1)", null_row).is_null());
}

TEST(ExprEval, ThreeValuedOr) {
  const Row null_row{Value::null(), Value{1.0}, Value{"x"}};
  // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
  EXPECT_EQ(ev("(a = 1) OR (b = 1)", null_row).as_int(), 1);
  EXPECT_TRUE(ev("(a = 1) OR (b = 0)", null_row).is_null());
}

TEST(ExprEval, NotOfNullIsNull) {
  const Row null_row{Value::null(), Value{1.0}, Value{"x"}};
  EXPECT_TRUE(ev("NOT (a = 1)", null_row).is_null());
}

TEST(ExprEval, IsTrueSemantics) {
  EXPECT_FALSE(is_true(Value::null()));
  EXPECT_FALSE(is_true(Value{0}));
  EXPECT_TRUE(is_true(Value{2}));
  EXPECT_FALSE(is_true(Value{0.0}));
  EXPECT_TRUE(is_true(Value{"x"}));
  EXPECT_FALSE(is_true(Value{""}));
}

TEST(ExprEval, UnknownColumnThrowsAtBind) {
  EXPECT_THROW(BoundExpr(parse_expression("nope + 1"), abc()), PlanError);
}

TEST(ExprEval, AggregateCallThrowsAtBind) {
  EXPECT_THROW(BoundExpr(parse_expression("sum(a)"), abc()), PlanError);
}

TEST(ExprEval, LiteralOnly) {
  EXPECT_EQ(ev("41 + 1").as_int(), 42);
  EXPECT_EQ(ev("'abc'").as_string(), "abc");
}

}  // namespace
}  // namespace ysmart
