// Unit tests for the AST -> logical plan builder: scan filters pushdown,
// equi-key extraction, residuals, derived tables, aggregation rewriting,
// lineage propagation, labels.
#include <gtest/gtest.h>

#include "common/error.h"
#include "data/queries.h"
#include "plan/builder.h"
#include "plan/printer.h"

namespace ysmart {
namespace {

Catalog two_tables() {
  Catalog c;
  Schema r;
  r.add("a", ValueType::Int);
  r.add("b", ValueType::Int);
  c.register_table("r", r);
  Schema s;
  s.add("a", ValueType::Int);
  s.add("c", ValueType::Int);
  c.register_table("s", s);
  Schema clicks;
  clicks.add("uid", ValueType::Int);
  clicks.add("cid", ValueType::Int);
  clicks.add("ts", ValueType::Int);
  c.register_table("clicks", clicks);
  return c;
}

TEST(PlanBuilder, SimpleScanWithFilterAndProjection) {
  auto p = plan_query("SELECT a FROM r WHERE b > 2", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Scan);
  EXPECT_EQ(p->table, "r");
  ASSERT_TRUE(p->filter != nullptr);
  ASSERT_EQ(p->output_schema.size(), 1u);
  EXPECT_EQ(p->output_schema.at(0).name, "a");
}

TEST(PlanBuilder, CommaJoinExtractsEquiKey) {
  auto p = plan_query("SELECT r.b FROM r, s WHERE r.a = s.a AND r.b < s.c",
                      two_tables());
  ASSERT_EQ(p->kind, PlanKind::Join);
  ASSERT_EQ(p->left_keys.size(), 1u);
  EXPECT_EQ(p->left_keys[0], "r.a");
  EXPECT_EQ(p->right_keys[0], "s.a");
  ASSERT_TRUE(p->filter != nullptr);  // r.b < s.c is residual
}

TEST(PlanBuilder, ReversedEquiKeyOrientation) {
  auto p = plan_query("SELECT r.b FROM r, s WHERE s.a = r.a", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Join);
  EXPECT_EQ(p->left_keys[0], "r.a");
  EXPECT_EQ(p->right_keys[0], "s.a");
}

TEST(PlanBuilder, NoEquiKeyThrows) {
  EXPECT_THROW(plan_query("SELECT r.b FROM r, s WHERE r.a < s.a", two_tables()),
               PlanError);
}

TEST(PlanBuilder, SingleTableFilterPushedToScan) {
  auto p = plan_query("SELECT r.b FROM r, s WHERE r.a = s.a AND r.b = 7",
                      two_tables());
  ASSERT_EQ(p->kind, PlanKind::Join);
  const auto& scan_r = p->children[0];
  ASSERT_EQ(scan_r->kind, PlanKind::Scan);
  ASSERT_TRUE(scan_r->filter != nullptr);
  EXPECT_EQ(scan_r->filter->to_string(), "(r.b = 7)");
}

TEST(PlanBuilder, OuterJoinDisablesPushdown) {
  auto p = plan_query(
      "SELECT r.b FROM r LEFT OUTER JOIN s ON r.a = s.a WHERE r.b = 7",
      two_tables());
  ASSERT_EQ(p->kind, PlanKind::Join);
  EXPECT_EQ(p->join_type, JoinType::Left);
  EXPECT_TRUE(p->children[0]->filter == nullptr);
  ASSERT_TRUE(p->filter != nullptr);  // WHERE stays residual (post-join)
}

TEST(PlanBuilder, SelfJoinDistinctAliases) {
  auto p = plan_query(
      "SELECT c1.uid FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2",
      two_tables());
  ASSERT_EQ(p->kind, PlanKind::Join);
  EXPECT_EQ(p->children[0]->alias, "c1");
  EXPECT_EQ(p->children[1]->alias, "c2");
  EXPECT_EQ(p->children[0]->filter->to_string(), "(c1.cid = 1)");
  EXPECT_EQ(p->children[1]->filter->to_string(), "(c2.cid = 2)");
}

TEST(PlanBuilder, JoinKeyLineageMergesAliasClasses) {
  auto p = plan_query("SELECT r.a, r.b FROM r, s WHERE r.a = s.a", two_tables());
  const Lineage& lin = p->lineage_of("a");
  EXPECT_TRUE(lin.count(ColumnId{"r", "a"}));
  EXPECT_TRUE(lin.count(ColumnId{"s", "a"}));
}

TEST(PlanBuilder, AggregationRewriting) {
  auto p = plan_query("SELECT b, count(*) - 2 AS n, sum(a) s FROM r GROUP BY b",
                      two_tables());
  ASSERT_EQ(p->kind, PlanKind::Agg);
  ASSERT_EQ(p->group_cols.size(), 1u);
  EXPECT_EQ(p->group_cols[0], "r.b");
  ASSERT_EQ(p->aggs.size(), 2u);
  EXPECT_EQ(p->aggs[0].func, "count");
  EXPECT_TRUE(p->aggs[0].star);
  EXPECT_EQ(p->aggs[1].func, "sum");
  EXPECT_EQ(p->output_schema.at(0).name, "b");
  EXPECT_EQ(p->output_schema.at(1).name, "n");
  EXPECT_EQ(p->output_schema.at(2).name, "s");
}

TEST(PlanBuilder, GroupBySelectAlias) {
  auto p = plan_query(
      "SELECT a AS k, max(b) AS m FROM r GROUP BY k", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Agg);
  EXPECT_EQ(p->group_cols[0], "r.a");
}

TEST(PlanBuilder, HavingBecomesAggPostFilter) {
  auto p = plan_query(
      "SELECT b, sum(a) AS s FROM r GROUP BY b HAVING s > 10", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Agg);
  ASSERT_TRUE(p->filter != nullptr);
  EXPECT_EQ(p->filter->to_string(), "(s > 10)");
}

TEST(PlanBuilder, HavingWithRawAggregateThrows) {
  EXPECT_THROW(plan_query("SELECT b FROM r GROUP BY b HAVING sum(a) > 10",
                          two_tables()),
               PlanError);
}

TEST(PlanBuilder, GlobalAggregationHasNoGroupCols) {
  auto p = plan_query("SELECT avg(a) FROM r", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Agg);
  EXPECT_TRUE(p->group_cols.empty());
}

TEST(PlanBuilder, GroupByComputedExpressionThrows) {
  EXPECT_THROW(plan_query("SELECT a + 1, count(*) FROM r GROUP BY a + 1",
                          two_tables()),
               PlanError);
}

TEST(PlanBuilder, NestedAggregateThrows) {
  EXPECT_THROW(plan_query("SELECT sum(max(a)) FROM r", two_tables()),
               PlanError);
}

TEST(PlanBuilder, OrderByMakesSortNode) {
  auto p = plan_query("SELECT a FROM r ORDER BY a DESC LIMIT 5", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Sort);
  ASSERT_EQ(p->sort_keys.size(), 1u);
  EXPECT_TRUE(p->sort_keys[0].desc);
  EXPECT_EQ(*p->limit, 5);
}

TEST(PlanBuilder, DerivedTableRequalified) {
  auto p = plan_query(
      "SELECT d.k FROM (SELECT a AS k, sum(b) AS s FROM r GROUP BY a) AS d "
      "WHERE d.s > 1",
      two_tables());
  // Filter over a derived table wraps in SP.
  ASSERT_EQ(p->kind, PlanKind::SP);
  EXPECT_EQ(p->children[0]->kind, PlanKind::Agg);
  EXPECT_EQ(p->output_schema.at(0).name, "k");
}

TEST(PlanBuilder, SelectStarExpandsAllColumns) {
  auto p = plan_query("SELECT * FROM r WHERE a > 1", two_tables());
  ASSERT_EQ(p->kind, PlanKind::Scan);
  ASSERT_EQ(p->output_schema.size(), 2u);
  EXPECT_EQ(p->output_schema.at(0).name, "r.a");
  EXPECT_EQ(p->output_schema.at(1).name, "r.b");
}

TEST(PlanBuilder, SelectStarOverJoinKeepsQualifiedNames) {
  auto p = plan_query("SELECT * FROM r, s WHERE r.a = s.a", two_tables());
  ASSERT_EQ(p->output_schema.size(), 4u);  // r.a, r.b, s.a, s.c
  EXPECT_TRUE(p->output_schema.find("r.a").has_value());
  EXPECT_TRUE(p->output_schema.find("s.c").has_value());
}

TEST(PlanBuilder, StarMixedWithExpressions) {
  auto p = plan_query("SELECT *, a + b AS ab FROM r", two_tables());
  ASSERT_EQ(p->output_schema.size(), 3u);
  EXPECT_EQ(p->output_schema.at(2).name, "ab");
}

TEST(PlanBuilder, UnknownTableThrows) {
  EXPECT_THROW(plan_query("SELECT x FROM missing", two_tables()), PlanError);
}

TEST(PlanBuilder, UnknownColumnThrows) {
  EXPECT_THROW(plan_query("SELECT nope FROM r", two_tables()), PlanError);
}

TEST(PlanBuilder, LabelsAssignedInPostOrder) {
  Catalog c = two_tables();
  auto p = plan_query(
      "SELECT r.b, count(*) AS n FROM r, s WHERE r.a = s.a GROUP BY r.b "
      "ORDER BY n",
      c);
  ASSERT_EQ(p->kind, PlanKind::Sort);
  EXPECT_EQ(p->label, "SORT1");
  EXPECT_EQ(p->children[0]->label, "AGG1");
  EXPECT_EQ(p->children[0]->children[0]->label, "JOIN1");
}

// The full paper queries must all plan without errors and print.
TEST(PlanBuilder, PaperQueriesPlan) {
  Catalog c;
  Schema li;
  for (const char* col : {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity"})
    li.add(col, ValueType::Int);
  li.add("l_extendedprice", ValueType::Double);
  li.add("l_commitdate", ValueType::Int);
  li.add("l_receiptdate", ValueType::Int);
  c.register_table("lineitem", li);
  Schema o;
  o.add("o_orderkey", ValueType::Int);
  o.add("o_custkey", ValueType::Int);
  o.add("o_orderstatus", ValueType::String);
  o.add("o_totalprice", ValueType::Double);
  o.add("o_orderdate", ValueType::Int);
  c.register_table("orders", o);
  Schema pa;
  pa.add("p_partkey", ValueType::Int);
  pa.add("p_name", ValueType::String);
  c.register_table("part", pa);
  Schema cu;
  cu.add("c_custkey", ValueType::Int);
  cu.add("c_name", ValueType::String);
  c.register_table("customer", cu);
  Schema su;
  su.add("s_suppkey", ValueType::Int);
  su.add("s_name", ValueType::String);
  su.add("s_nationkey", ValueType::Int);
  c.register_table("supplier", su);
  Schema na;
  na.add("n_nationkey", ValueType::Int);
  na.add("n_name", ValueType::String);
  c.register_table("nation", na);
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  c.register_table("clicks", cl);

  for (const auto* q : queries::all()) {
    SCOPED_TRACE(q->id);
    PlanPtr p;
    ASSERT_NO_THROW(p = plan_query(q->sql, c));
    EXPECT_FALSE(print_plan(p).empty());
  }
  EXPECT_NO_THROW(plan_query(queries::q21_subtree().sql, c));
}

}  // namespace
}  // namespace ysmart
