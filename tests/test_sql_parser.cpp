// Unit tests for the SQL lexer and parser: tokenization, precedence,
// FROM-clause forms (aliases, derived tables, explicit joins), clause
// parsing, and error reporting.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace ysmart {
namespace {

// ------------------------------- lexer -------------------------------

TEST(Lexer, BasicTokens) {
  auto t = lex("SELECT a, 1 FROM t");
  ASSERT_EQ(t.size(), 7u);  // select a , 1 from t END
  EXPECT_TRUE(t[0].is_ident("select"));
  EXPECT_EQ(t[1].text, "a");
  EXPECT_TRUE(t[2].is_symbol(","));
  EXPECT_EQ(t[3].type, TokenType::Number);
  EXPECT_EQ(t[6].type, TokenType::End);
}

TEST(Lexer, KeywordsLowercased) {
  auto t = lex("SeLeCt");
  EXPECT_EQ(t[0].text, "select");
}

TEST(Lexer, TwoCharOperators) {
  auto t = lex("a <= b >= c <> d != e");
  EXPECT_TRUE(t[1].is_symbol("<="));
  EXPECT_TRUE(t[3].is_symbol(">="));
  EXPECT_TRUE(t[5].is_symbol("<>"));
  EXPECT_TRUE(t[7].is_symbol("<>"));  // != normalizes to <>
}

TEST(Lexer, Decimals) {
  auto t = lex("0.2 7.0 .5");
  EXPECT_EQ(t[0].text, "0.2");
  EXPECT_EQ(t[1].text, "7.0");
  EXPECT_EQ(t[2].text, ".5");
}

TEST(Lexer, StringLiterals) {
  auto t = lex("'SAUDI ARABIA'");
  EXPECT_EQ(t[0].type, TokenType::String);
  EXPECT_EQ(t[0].text, "SAUDI ARABIA");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("'abc"), ParseError);
}

TEST(Lexer, LineComments) {
  auto t = lex("a -- comment to end\n b");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, UnexpectedCharThrows) { EXPECT_THROW(lex("a @ b"), ParseError); }

// ------------------------------ parser -------------------------------

TEST(Parser, SimpleSelect) {
  auto s = parse_select("SELECT a, b AS bb FROM t");
  ASSERT_EQ(s->items.size(), 2u);
  EXPECT_EQ(s->items[0].expr->column, "a");
  EXPECT_EQ(s->items[1].alias, "bb");
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0].table, "t");
  EXPECT_EQ(s->from[0].alias, "t");
}

TEST(Parser, ImplicitAliasWithoutAs) {
  auto s = parse_select("SELECT x FROM clicks c1");
  EXPECT_EQ(s->from[0].alias, "c1");
}

TEST(Parser, SelectItemImplicitAlias) {
  auto s = parse_select("SELECT a aa FROM t");
  EXPECT_EQ(s->items[0].alias, "aa");
}

TEST(Parser, TrailingSemicolonOk) {
  EXPECT_NO_THROW(parse_select("SELECT a FROM t;"));
}

TEST(Parser, TrailingGarbageThrows) {
  EXPECT_THROW(parse_select("SELECT a FROM t xyz zzz"), ParseError);
}

TEST(Parser, Precedence) {
  auto e = parse_expression("1 + 2 * 3 < 4 AND NOT x = 5 OR y");
  // ((((1+(2*3))<4) and (not (x=5))) or y)
  EXPECT_EQ(e->to_string(),
            "((((1 + (2 * 3)) < 4) and (not (x = 5))) or y)");
}

TEST(Parser, UnaryMinus) {
  auto e = parse_expression("-a * 2");
  EXPECT_EQ(e->to_string(), "((- a) * 2)");
}

TEST(Parser, Parentheses) {
  auto e = parse_expression("(1 + 2) * 3");
  EXPECT_EQ(e->to_string(), "((1 + 2) * 3)");
}

TEST(Parser, IsNullForms) {
  EXPECT_EQ(parse_expression("x IS NULL")->to_string(), "(x is null)");
  EXPECT_EQ(parse_expression("x IS NOT NULL")->to_string(), "(x is not null)");
}

TEST(Parser, QualifiedColumns) {
  auto e = parse_expression("c1.uid");
  EXPECT_EQ(e->kind, ExprKind::ColumnRef);
  EXPECT_EQ(e->column, "c1.uid");
}

TEST(Parser, FunctionCalls) {
  auto e = parse_expression("count(*)");
  EXPECT_TRUE(e->star);
  e = parse_expression("count(distinct l_suppkey)");
  EXPECT_TRUE(e->distinct);
  EXPECT_EQ(e->args.size(), 1u);
  e = parse_expression("avg(l_quantity)");
  EXPECT_EQ(e->op, "avg");
}

TEST(Parser, AggregateDetection) {
  EXPECT_TRUE(contains_aggregate(*parse_expression("1 + sum(x)")));
  EXPECT_FALSE(contains_aggregate(*parse_expression("1 + x")));
}

TEST(Parser, WhereGroupOrderLimit) {
  auto s = parse_select(
      "SELECT a, count(*) c FROM t WHERE a > 1 GROUP BY a "
      "ORDER BY c DESC, a LIMIT 10");
  EXPECT_TRUE(s->where != nullptr);
  ASSERT_EQ(s->group_by.size(), 1u);
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_TRUE(s->order_by[0].desc);
  EXPECT_FALSE(s->order_by[1].desc);
  EXPECT_EQ(*s->limit, 10);
}

TEST(Parser, Having) {
  auto s = parse_select(
      "SELECT a, sum(b) AS sb FROM t GROUP BY a HAVING sb > 10 ORDER BY sb");
  ASSERT_TRUE(s->having != nullptr);
  EXPECT_EQ(s->having->to_string(), "(sb > 10)");
  ASSERT_EQ(s->order_by.size(), 1u);
}

TEST(Parser, CommaJoinList) {
  auto s = parse_select("SELECT x FROM a, b AS bb, c");
  ASSERT_EQ(s->from.size(), 3u);
  EXPECT_EQ(s->from[1].alias, "bb");
  EXPECT_EQ(s->from[2].join, JoinType::None);
}

TEST(Parser, ExplicitJoins) {
  auto s = parse_select(
      "SELECT x FROM a JOIN b ON a.k = b.k "
      "LEFT OUTER JOIN c ON b.k = c.k "
      "RIGHT JOIN d ON c.k = d.k "
      "FULL OUTER JOIN e ON d.k = e.k");
  ASSERT_EQ(s->from.size(), 5u);
  EXPECT_EQ(s->from[1].join, JoinType::Inner);
  EXPECT_EQ(s->from[2].join, JoinType::Left);
  EXPECT_EQ(s->from[3].join, JoinType::Right);
  EXPECT_EQ(s->from[4].join, JoinType::Full);
  EXPECT_TRUE(s->from[4].join_cond != nullptr);
}

TEST(Parser, InnerJoinKeyword) {
  auto s = parse_select("SELECT x FROM a INNER JOIN b ON a.k = b.k");
  EXPECT_EQ(s->from[1].join, JoinType::Inner);
}

TEST(Parser, DerivedTableRequiresAlias) {
  auto s = parse_select("SELECT x FROM (SELECT y FROM t) AS d");
  EXPECT_TRUE(s->from[0].is_subquery());
  EXPECT_EQ(s->from[0].alias, "d");
}

TEST(Parser, NestedDerivedTables) {
  auto s = parse_select(
      "SELECT a FROM (SELECT b FROM (SELECT c FROM t) AS i) AS o");
  ASSERT_TRUE(s->from[0].is_subquery());
  EXPECT_TRUE(s->from[0].subquery->from[0].is_subquery());
}

TEST(Parser, JoinWithoutOnThrows) {
  EXPECT_THROW(parse_select("SELECT x FROM a JOIN b"), ParseError);
}

TEST(Parser, MissingFromThrows) {
  EXPECT_THROW(parse_select("SELECT x"), ParseError);
}

TEST(Parser, RoundTripToString) {
  const char* sql =
      "SELECT a, sum(b) AS s FROM t WHERE a > 1 GROUP BY a ORDER BY s DESC";
  auto s1 = parse_select(sql);
  auto s2 = parse_select(s1->to_string());
  EXPECT_EQ(s1->to_string(), s2->to_string());
}

}  // namespace
}  // namespace ysmart
