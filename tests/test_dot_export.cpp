// Unit tests for the Graphviz exports (plan trees and job DAGs).
#include <gtest/gtest.h>

#include <algorithm>

#include "data/queries.h"
#include "mr/metrics.h"
#include "data/tpch_gen.h"
#include "plan/builder.h"
#include "plan/printer.h"
#include "translator/ysmart_translator.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  c.register_table("lineitem", tpch_lineitem_schema());
  c.register_table("orders", tpch_orders_schema());
  c.register_table("part", tpch_part_schema());
  c.register_table("customer", tpch_customer_schema());
  c.register_table("supplier", tpch_supplier_schema());
  c.register_table("nation", tpch_nation_schema());
  return c;
}

TEST(DotExport, PlanHasNodesAndEdges) {
  auto p = plan_query(queries::q17().sql, cat());
  const std::string dot = plan_to_dot(p);
  EXPECT_EQ(dot.substr(0, 13), "digraph plan ");
  EXPECT_NE(dot.find("JOIN2"), std::string::npos);
  EXPECT_NE(dot.find("SCAN(lineitem"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("PK="), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, JobDagShowsClustersAndIntermediates) {
  auto plan = plan_query(queries::q17().sql, cat());
  auto q = translate_ysmart(plan, TranslatorProfile::ysmart(), "/s");
  const std::string dot = q.to_dot();
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("/tables/lineitem"), std::string::npos);
  EXPECT_NE(dot.find("/tables/part"), std::string::npos);
  // The merged job's output feeds the final aggregation job.
  EXPECT_NE(dot.find("JOIN2"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, MetricsAnnotateJobNodesByName) {
  auto plan = plan_query(queries::q17().sql, cat());
  auto q = translate_ysmart(plan, TranslatorProfile::ysmart(), "/s");
  ASSERT_GE(q.jobs.size(), 2u);

  QueryMetrics m;
  JobMetrics j0;
  j0.job_name = q.jobs[0].name;
  j0.map_time_s = 12.25;
  j0.reduce_time_s = 7.5;
  j0.shuffle_bytes_wire = 3 * 1024 * 1024;
  m.jobs.push_back(j0);

  const std::string dot = q.to_dot(&m);
  EXPECT_NE(dot.find("map 12.2s  reduce 7.5s"), std::string::npos);
  EXPECT_NE(dot.find("shuffle 3.0 MB"), std::string::npos);
  // Only the matched job is annotated; the second job has no metrics row.
  EXPECT_EQ(dot.find("map 0.0s"), std::string::npos);
  // No metrics: identical to the unannotated export.
  EXPECT_EQ(q.to_dot(), q.to_dot(nullptr));
  EXPECT_EQ(q.to_dot().find("map 12.2s"), std::string::npos);
}

TEST(DotExport, FailedJobAnnotationAndRepeatedNames) {
  auto plan = plan_query(queries::q17().sql, cat());
  auto q = translate_ysmart(plan, TranslatorProfile::ysmart(), "/s");
  // Two rows with the same name: first-unused-row matching gives the one
  // job of that name row 0; row 1 stays unused (mismatched rows are
  // skipped, as after a partial DNF run).
  QueryMetrics m;
  for (int i = 0; i < 2; ++i) {
    JobMetrics j;
    j.job_name = q.jobs[0].name;
    j.map_time_s = static_cast<double>(i + 1);
    j.failed = i == 0;
    m.jobs.push_back(j);
  }
  const std::string dot = q.to_dot(&m);
  EXPECT_NE(dot.find("map 1.0s"), std::string::npos);
  EXPECT_EQ(dot.find("map 2.0s"), std::string::npos);
  EXPECT_NE(dot.find("FAILED"), std::string::npos);
}

TEST(DotExport, FilterLiteralsSurviveInLabels) {
  Catalog c = cat();
  auto p = plan_query(
      "SELECT o_orderkey FROM orders WHERE o_orderstatus = 'F'", c);
  const std::string dot = plan_to_dot(p);
  EXPECT_NE(dot.find("'F'"), std::string::npos);
  // Every DOT double quote comes in balanced pairs (none injected raw).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace ysmart
