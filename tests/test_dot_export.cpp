// Unit tests for the Graphviz exports (plan trees and job DAGs).
#include <gtest/gtest.h>

#include <algorithm>

#include "data/queries.h"
#include "data/tpch_gen.h"
#include "plan/builder.h"
#include "plan/printer.h"
#include "translator/ysmart_translator.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  c.register_table("lineitem", tpch_lineitem_schema());
  c.register_table("orders", tpch_orders_schema());
  c.register_table("part", tpch_part_schema());
  c.register_table("customer", tpch_customer_schema());
  c.register_table("supplier", tpch_supplier_schema());
  c.register_table("nation", tpch_nation_schema());
  return c;
}

TEST(DotExport, PlanHasNodesAndEdges) {
  auto p = plan_query(queries::q17().sql, cat());
  const std::string dot = plan_to_dot(p);
  EXPECT_EQ(dot.substr(0, 13), "digraph plan ");
  EXPECT_NE(dot.find("JOIN2"), std::string::npos);
  EXPECT_NE(dot.find("SCAN(lineitem"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("PK="), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, JobDagShowsClustersAndIntermediates) {
  auto plan = plan_query(queries::q17().sql, cat());
  auto q = translate_ysmart(plan, TranslatorProfile::ysmart(), "/s");
  const std::string dot = q.to_dot();
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("/tables/lineitem"), std::string::npos);
  EXPECT_NE(dot.find("/tables/part"), std::string::npos);
  // The merged job's output feeds the final aggregation job.
  EXPECT_NE(dot.find("JOIN2"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, FilterLiteralsSurviveInLabels) {
  Catalog c = cat();
  auto p = plan_query(
      "SELECT o_orderkey FROM orders WHERE o_orderstatus = 'F'", c);
  const std::string dot = plan_to_dot(p);
  EXPECT_NE(dot.find("'F'"), std::string::npos);
  // Every DOT double quote comes in balanced pairs (none injected raw).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace ysmart
