// Unit tests for the statistics module and the cost-based PK selection
// extension (the future-work item of Section IV-A).
#include <gtest/gtest.h>

#include "api/database.h"
#include "common/rng.h"
#include "plan/builder.h"
#include "stats/stats.h"
#include "translator/correlation.h"

namespace ysmart {
namespace {

Schema clicks_like() {
  Schema s;
  s.add("uid", ValueType::Int);
  s.add("cid", ValueType::Int);
  s.add("ts", ValueType::Int);
  return s;
}

std::shared_ptr<Table> clicks_with_users(int users, int rows) {
  auto t = std::make_shared<Table>(clicks_like());
  Rng rng(3);
  for (int i = 0; i < rows; ++i)
    t->append({Value{rng.uniform(1, users)}, Value{rng.uniform(1, 3)},
               Value{i}});
  return t;
}

TEST(Stats, EstimateCountsDistincts) {
  auto t = clicks_with_users(10, 500);
  TableStats s = StatsCatalog::estimate(*t);
  EXPECT_EQ(s.rows, 500u);
  EXPECT_EQ(s.column_ndv["uid"], 10u);
  EXPECT_EQ(s.column_ndv["cid"], 3u);
  EXPECT_EQ(s.column_ndv["ts"], 500u);
}

TEST(Stats, NullsDoNotCountAsValues) {
  Schema s;
  s.add("x", ValueType::Int);
  Table t(s);
  t.append({Value{1}});
  t.append({Value::null()});
  t.append({Value{1}});
  EXPECT_EQ(StatsCatalog::estimate(t).column_ndv["x"], 1u);
}

TEST(Stats, CatalogLookup) {
  StatsCatalog cat;
  TableStats s;
  s.column_ndv["uid"] = 42;
  cat.put("Clicks", std::move(s));
  EXPECT_TRUE(cat.has("clicks"));
  EXPECT_EQ(*cat.ndv(ColumnId{"clicks", "uid"}), 42u);
  EXPECT_FALSE(cat.ndv(ColumnId{"clicks", "nope"}).has_value());
  EXPECT_FALSE(cat.ndv(ColumnId{"ghost", "uid"}).has_value());
}

TEST(Stats, EstimateGroupsUsesAliasClassMinimum) {
  StatsCatalog cat;
  TableStats a;
  a.column_ndv["k"] = 1000;
  cat.put("big", std::move(a));
  TableStats b;
  b.column_ndv["k"] = 10;
  cat.put("small", std::move(b));
  PartitionKey pk;
  pk.parts.push_back(Lineage{ColumnId{"big", "k"}, ColumnId{"small", "k"}});
  pk.columns.push_back("k");
  EXPECT_EQ(cat.estimate_groups(pk), 10u);
}

TEST(Stats, EstimateGroupsMultipliesParts) {
  StatsCatalog cat;
  TableStats a;
  a.column_ndv["x"] = 7;
  a.column_ndv["y"] = 3;
  cat.put("t", std::move(a));
  PartitionKey pk;
  pk.parts.push_back(Lineage{ColumnId{"t", "x"}});
  pk.parts.push_back(Lineage{ColumnId{"t", "y"}});
  pk.columns = {"x", "y"};
  EXPECT_EQ(cat.estimate_groups(pk), 21u);
}

TEST(Stats, UnknownColumnIsUnbounded) {
  StatsCatalog cat;
  PartitionKey pk;
  pk.parts.push_back(Lineage{ColumnId{"t", "x"}});
  pk.columns = {"x"};
  EXPECT_EQ(cat.estimate_groups(pk),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Stats, SampledFlagTracksScanTruncation) {
  auto t = clicks_with_users(10, 500);
  // Full scan: exact NDVs, not sampled.
  EXPECT_FALSE(StatsCatalog::estimate(*t).sampled);
  // Capped scan: flagged, and the saturating column (every sampled ts is
  // distinct) extrapolates linearly back to the full row count.
  TableStats s = StatsCatalog::estimate(*t, 100);
  EXPECT_TRUE(s.sampled);
  EXPECT_EQ(s.column_ndv["ts"], 500u);
  // Low-cardinality columns stay exact even under the cap.
  EXPECT_EQ(s.column_ndv["cid"], 3u);
}

TEST(Stats, EstimateGroupsSaturatesInsteadOfOverflowing) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  StatsCatalog cat;
  TableStats a;
  a.column_ndv["x"] = kMax / 2;
  a.column_ndv["y"] = 3;
  cat.put("t", std::move(a));
  PartitionKey pk;
  pk.parts.push_back(Lineage{ColumnId{"t", "x"}});
  pk.parts.push_back(Lineage{ColumnId{"t", "y"}});
  pk.columns = {"x", "y"};
  // (kMax/2) * 3 would wrap; the estimate must clamp to unbounded.
  EXPECT_EQ(cat.estimate_groups(pk), kMax);
}

TEST(Stats, EstimateGroupsZeroNdvCountsAsOne) {
  StatsCatalog cat;
  TableStats a;
  a.column_ndv["x"] = 0;  // empty table: no distinct values observed
  a.column_ndv["y"] = 5;
  cat.put("t", std::move(a));
  PartitionKey pk;
  pk.parts.push_back(Lineage{ColumnId{"t", "x"}});
  pk.parts.push_back(Lineage{ColumnId{"t", "y"}});
  pk.columns = {"x", "y"};
  EXPECT_EQ(cat.estimate_groups(pk), 5u);
}

// The extension at work: on a click stream with only 3 users, merging the
// aggregation into the uid-keyed join would bottleneck the reduce phase
// on 3 keys; cost-based selection falls back to the full grouping key
// (more jobs, better parallelism). With many users it keeps the merge.
class CostBasedPkTest : public ::testing::Test {
 protected:
  static constexpr const char* kSql =
      "SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2 "
      "FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid AND c1.ts < c2.ts GROUP BY c1.uid, ts1";

  int jobs_with(int users, bool cost_based) {
    Database db(ClusterConfig::small_local(1.0));
    db.create_table("clicks", clicks_with_users(users, 600));
    auto profile = TranslatorProfile::ysmart();
    profile.cost_based_pk = cost_based;
    auto run = db.run(kSql, profile);
    // Correctness must hold either way.
    EXPECT_TRUE(same_rows_unordered(db.run_reference(kSql), *run.result));
    return run.metrics.job_count();
  }
};

TEST_F(CostBasedPkTest, LowCardinalityKeyVetoed) {
  EXPECT_EQ(jobs_with(3, /*cost_based=*/false), 1);  // heuristic merges
  EXPECT_EQ(jobs_with(3, /*cost_based=*/true), 2);   // veto: agg separate
}

TEST_F(CostBasedPkTest, HighCardinalityKeyKept) {
  EXPECT_EQ(jobs_with(500, /*cost_based=*/true), 1);
}

}  // namespace
}  // namespace ysmart
