// Unit tests for job generation: the paper's exact job structures for
// every query, shared-scan coalescing, merging rules, profiles.
#include <gtest/gtest.h>

#include "data/queries.h"
#include "data/tpch_gen.h"
#include "plan/builder.h"
#include "translator/baseline.h"
#include "translator/ysmart_translator.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  c.register_table("lineitem", tpch_lineitem_schema());
  c.register_table("orders", tpch_orders_schema());
  c.register_table("part", tpch_part_schema());
  c.register_table("customer", tpch_customer_schema());
  c.register_table("supplier", tpch_supplier_schema());
  c.register_table("nation", tpch_nation_schema());
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  c.register_table("clicks", cl);
  return c;
}

TranslatedQuery ys(const std::string& sql) {
  return translate_ysmart(plan_query(sql, cat()), TranslatorProfile::ysmart(),
                          "/s");
}

TranslatedQuery hv(const std::string& sql) {
  return translate_baseline(plan_query(sql, cat()), TranslatorProfile::hive(),
                            "/s");
}

TEST(Translator, JobCountsMatchPaperForAllQueries) {
  for (const auto* q : queries::all()) {
    SCOPED_TRACE(q->id);
    EXPECT_EQ(static_cast<int>(ys(q->sql).jobs.size()), q->ysmart_jobs);
    EXPECT_EQ(static_cast<int>(hv(q->sql).jobs.size()), q->one_op_jobs);
  }
  EXPECT_EQ(ys(queries::q21_subtree().sql).jobs.size(), 1u);
  EXPECT_EQ(hv(queries::q21_subtree().sql).jobs.size(), 5u);
}

// Fig. 6: the merged Q17 job reads lineitem and part, evaluates AGG1 and
// JOIN1 as merged reducers and JOIN2 as the post-job computation, and
// shares one lineitem scan between AGG1 and JOIN1.
TEST(Translator, Q17MergedJobStructure) {
  auto q = ys(queries::q17().sql);
  ASSERT_EQ(q.jobs.size(), 2u);
  const TranslatedJob& merged = q.jobs[0];
  ASSERT_EQ(merged.input_files.size(), 2u);  // lineitem + part, each ONCE
  std::set<std::string> paths;
  for (const auto& f : merged.input_files) paths.insert(f.path);
  EXPECT_TRUE(paths.count("/tables/lineitem"));
  EXPECT_TRUE(paths.count("/tables/part"));

  // The lineitem emission is shared by two consumers (AGG1 + JOIN1).
  int lineitem_consumers = 0;
  for (const auto& e : merged.emissions) {
    if (merged.input_files[static_cast<std::size_t>(e.input_file)].path ==
        "/tables/lineitem")
      lineitem_consumers += static_cast<int>(e.consumers.size());
  }
  EXPECT_EQ(lineitem_consumers, 2);
  EXPECT_EQ(merged.stages.size(), 3u);  // AGG1, JOIN1, JOIN2
  // Only JOIN2's result leaves the job.
  int outputs = 0;
  for (const auto& st : merged.stages)
    if (st.output_index >= 0) ++outputs;
  EXPECT_EQ(outputs, 1);
}

// The Q-CSA merged job must read clicks exactly once (one input file)
// with three consumers on one coalesced emission: c1 (cid=X), c2 (cid=Y)
// and the outer join's c — "a single table scan of CLICKS can support
// all the three instances" (Section I).
TEST(Translator, QcsaSharedClicksScan) {
  auto q = ys(queries::qcsa().sql);
  ASSERT_EQ(q.jobs.size(), 2u);
  const TranslatedJob& merged = q.jobs[0];
  ASSERT_EQ(merged.input_files.size(), 1u);
  EXPECT_EQ(merged.input_files[0].path, "/tables/clicks");
  ASSERT_EQ(merged.emissions.size(), 1u);
  EXPECT_EQ(merged.emissions[0].consumers.size(), 3u);
  EXPECT_EQ(merged.stages.size(), 5u);  // JOIN1, AGG1, AGG2, JOIN2, AGG3
}

// Rule-1-only translation of the Q21 sub-tree: one common job executing
// JOIN1+AGG1+AGG2 with three outputs, then JOIN2, then the outer join —
// exactly Fig. 9's middle configuration.
TEST(Translator, Q21SubtreeRule1Only) {
  auto profile = TranslatorProfile::ysmart();
  profile.use_job_flow_correlation = false;
  auto q = translate_ysmart(plan_query(queries::q21_subtree().sql, cat()),
                            profile, "/s");
  ASSERT_EQ(q.jobs.size(), 3u);
  EXPECT_EQ(q.jobs[0].outputs.size(), 3u);  // JOIN1, AGG1, AGG2 results
  EXPECT_EQ(q.jobs[1].outputs.size(), 1u);
  EXPECT_EQ(q.jobs[2].outputs.size(), 1u);
}

TEST(Translator, BaselineSingleOpPerJob) {
  auto q = hv(queries::q17().sql);
  for (const auto& job : q.jobs) {
    if (job.kind == TranslatedJob::Kind::CombineAgg) continue;
    EXPECT_EQ(job.stages.size(), 1u) << job.name;
  }
}

TEST(Translator, HiveAggUsesCombiner) {
  auto q = hv(queries::qagg().sql);
  ASSERT_EQ(q.jobs.size(), 1u);
  EXPECT_EQ(q.jobs[0].kind, TranslatedJob::Kind::CombineAgg);
}

TEST(Translator, PigAggDoesNotCombine) {
  auto q = translate_baseline(plan_query(queries::qagg().sql, cat()),
                              TranslatorProfile::pig(), "/s");
  ASSERT_EQ(q.jobs.size(), 1u);
  EXPECT_EQ(q.jobs[0].kind, TranslatedJob::Kind::MapReduce);
}

TEST(Translator, DistinctAggNeverCombines) {
  auto q = hv("SELECT l_orderkey, count(distinct l_suppkey) AS c "
              "FROM lineitem GROUP BY l_orderkey");
  ASSERT_EQ(q.jobs.size(), 1u);
  EXPECT_EQ(q.jobs[0].kind, TranslatedJob::Kind::MapReduce);
}

TEST(Translator, SortJobsForceSingleReducer) {
  auto q = ys("SELECT l_orderkey, l_quantity FROM lineitem "
              "ORDER BY l_quantity DESC");
  ASSERT_FALSE(q.jobs.empty());
  EXPECT_EQ(q.jobs.back().num_reduce_tasks, 1);
}

TEST(Translator, ResultPathIsLastJobsFirstOutput) {
  auto q = ys(queries::q17().sql);
  EXPECT_EQ(q.result_path(), q.jobs.back().outputs[0].path);
}

TEST(Translator, JobsAreTopologicallyOrdered) {
  for (const auto* pq : queries::all()) {
    SCOPED_TRACE(pq->id);
    auto q = ys(pq->sql);
    std::set<std::string> produced{"/tables/lineitem", "/tables/orders",
                                   "/tables/part", "/tables/customer",
                                   "/tables/supplier", "/tables/nation",
                                   "/tables/clicks"};
    for (const auto& job : q.jobs) {
      for (const auto& in : job.input_files)
        EXPECT_TRUE(produced.count(in.path))
            << job.name << " reads unproduced " << in.path;
      for (const auto& out : job.outputs) produced.insert(out.path);
    }
  }
}

TEST(Translator, DescribeListsJobs) {
  auto q = ys(queries::qcsa().sql);
  const std::string d = q.describe();
  EXPECT_NE(d.find("2 job(s)"), std::string::npos);
  EXPECT_NE(d.find("/tables/clicks"), std::string::npos);
}

TEST(Translator, DispatchOnProfile) {
  auto p1 = plan_query(queries::q17().sql, cat());
  EXPECT_EQ(translate(p1, TranslatorProfile::ysmart(), "/s").jobs.size(), 2u);
  auto p2 = plan_query(queries::q17().sql, cat());
  EXPECT_EQ(translate(p2, TranslatorProfile::hive(), "/s").jobs.size(), 4u);
}

// Rule 4 with child exchange (the paper's Fig. 7): the final join has
// JFC with the join+agg chain but not with the second aggregation; the
// second aggregation's job must be ordered first and the join merges
// into the chain's job.
TEST(Translator, Rule4ChildExchange) {
  Catalog c;
  Schema f;
  f.add("k", ValueType::Int);
  f.add("a", ValueType::Int);
  f.add("b", ValueType::Int);
  c.register_table("f", f);
  Schema d;
  d.add("k", ValueType::Int);
  c.register_table("d", d);
  auto q = translate_ysmart(
      plan_query("SELECT j.k, j.s, a2.c2 FROM "
                 "(SELECT f.k AS k, sum(a) AS s FROM f, d "
                 " WHERE f.k = d.k GROUP BY f.k) AS j, "
                 "(SELECT b AS bk, count(*) AS c2 FROM f GROUP BY b) AS a2 "
                 "WHERE j.k = a2.bk",
                 c),
      TranslatorProfile::ysmart(), "/s");
  ASSERT_EQ(q.jobs.size(), 2u);
  // The standalone aggregation runs first; the merged job consumes its
  // output as an intermediate input.
  EXPECT_NE(q.jobs[0].name.find("AGG"), std::string::npos);
  bool reads_first_jobs_output = false;
  for (const auto& in : q.jobs[1].input_files)
    if (in.path == q.jobs[0].outputs[0].path) reads_first_jobs_output = true;
  EXPECT_TRUE(reads_first_jobs_output);
  // JOIN1 (inside j), its AGG, and the top JOIN share the second job.
  EXPECT_EQ(q.jobs[1].stages.size(), 3u);
}

TEST(Translator, HandCodedSharesYsmartStructure) {
  auto q = translate(plan_query(queries::q21_subtree().sql, cat()),
                     TranslatorProfile::hand_coded(), "/s");
  EXPECT_EQ(q.jobs.size(), 1u);
}

}  // namespace
}  // namespace ysmart
