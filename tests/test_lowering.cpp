// Unit tests for draft lowering: stream coalescing rules, key/value
// shapes, intermediate inputs, output wiring, consumer ids.
#include <gtest/gtest.h>

#include "plan/builder.h"
#include "plan/prune.h"
#include "translator/correlation.h"
#include "translator/lowering.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  Schema clicks;
  clicks.add("uid", ValueType::Int);
  clicks.add("cid", ValueType::Int);
  clicks.add("ts", ValueType::Int);
  c.register_table("clicks", clicks);
  Schema li;
  li.add("l_partkey", ValueType::Int);
  li.add("l_quantity", ValueType::Int);
  li.add("l_extendedprice", ValueType::Double);
  c.register_table("lineitem", li);
  Schema pa;
  pa.add("p_partkey", ValueType::Int);
  pa.add("p_name", ValueType::String);
  c.register_table("part", pa);
  return c;
}

struct Lowered {
  PlanPtr plan;
  std::unique_ptr<CorrelationAnalysis> ca;
  TranslatedJob job;
};

/// Lower all operations of `sql` as one draft (the caller must pick SQL
/// whose ops can legally share one job).
Lowered lower_all(const std::string& sql) {
  Lowered out;
  out.plan = plan_query(sql, cat());
  prune_plan(out.plan);
  out.ca = std::make_unique<CorrelationAnalysis>(out.plan);
  std::vector<PlanNode*> ops;
  for (const auto& info : out.ca->ops()) ops.push_back(info.op);
  out.job = lower_draft(ops, *out.ca, LoweringContext{"/s"},
                        TranslatorProfile::ysmart(), /*use_chosen_pk=*/true);
  return out;
}

TEST(Lowering, SelfJoinCoalescesToOneEmission) {
  auto l = lower_all(
      "SELECT c1.uid, count(*) AS n FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid");
  ASSERT_EQ(l.job.input_files.size(), 1u);
  ASSERT_EQ(l.job.emissions.size(), 1u);
  const auto& e = l.job.emissions[0];
  EXPECT_EQ(e.consumers.size(), 2u);
  // Both consumers carry their instance's selection filter.
  ASSERT_TRUE(e.consumers[0].filter != nullptr);
  ASSERT_TRUE(e.consumers[1].filter != nullptr);
  EXPECT_NE(e.consumers[0].filter->to_string(),
            e.consumers[1].filter->to_string());
  // Key is the join column; values are the union of both sides' needs.
  ASSERT_EQ(e.key_exprs.size(), 1u);
  EXPECT_EQ(e.key_exprs[0]->to_string(), "uid");
}

TEST(Lowering, DifferentKeysDoNotCoalesce) {
  // Two aggregations over the same table with different keys can share a
  // job's scan only through separate emissions.
  auto plan1 = plan_query(
      "SELECT l_partkey, sum(l_quantity) AS s FROM lineitem GROUP BY l_partkey",
      cat());
  auto plan2 = plan_query(
      "SELECT l_quantity, count(*) AS n FROM lineitem GROUP BY l_quantity",
      cat());
  prune_plan(plan1);
  prune_plan(plan2);
  // Splice both aggs under a fake common root so one analysis sees them.
  // (Simpler: lower each separately and verify their emissions differ.)
  CorrelationAnalysis ca1(plan1), ca2(plan2);
  auto j1 = lower_draft({ca1.ops()[0].op}, ca1, LoweringContext{"/s"},
                        TranslatorProfile::pig(), true);
  auto j2 = lower_draft({ca2.ops()[0].op}, ca2, LoweringContext{"/s"},
                        TranslatorProfile::pig(), true);
  ASSERT_EQ(j1.emissions.size(), 1u);
  ASSERT_EQ(j2.emissions.size(), 1u);
  EXPECT_NE(j1.emissions[0].key_exprs[0]->to_string(),
            j2.emissions[0].key_exprs[0]->to_string());
}

TEST(Lowering, JoinAggShareWithDifferentValueNeeds) {
  // Q17 shape: AGG needs (partkey, quantity); JOIN needs (partkey,
  // quantity, extendedprice). The union emission carries all three.
  auto l = lower_all(
      "SELECT sum(o.l_extendedprice) AS s "
      "FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1 FROM lineitem "
      "      GROUP BY l_partkey) AS i, "
      "     (SELECT l_partkey, l_quantity, l_extendedprice "
      "      FROM lineitem, part WHERE p_partkey = l_partkey) AS o "
      "WHERE o.l_partkey = i.l_partkey AND o.l_quantity < i.t1");
  // lineitem emission shared by AGG1 + JOIN1; part emission separate.
  int lineitem_emissions = 0, part_emissions = 0;
  for (const auto& e : l.job.emissions) {
    const auto& path =
        l.job.input_files[static_cast<std::size_t>(e.input_file)].path;
    if (path == "/tables/lineitem") {
      ++lineitem_emissions;
      EXPECT_EQ(e.consumers.size(), 2u);
      EXPECT_EQ(e.value_exprs.size(), 3u);  // partkey, quantity, extprice
    }
    if (path == "/tables/part") ++part_emissions;
  }
  EXPECT_EQ(lineitem_emissions, 1);
  EXPECT_EQ(part_emissions, 1);
}

TEST(Lowering, IntermediateInputsAreIdentityEmissions) {
  // Lower only the final aggregation of an agg-over-join query: its child
  // lives in another draft, so the job reads the intermediate file.
  auto plan = plan_query(
      "SELECT m, count(*) AS n FROM "
      "(SELECT l_partkey, max(l_quantity) AS m FROM lineitem "
      " GROUP BY l_partkey) AS g GROUP BY m",
      cat());
  prune_plan(plan);
  CorrelationAnalysis ca(plan);
  ASSERT_EQ(ca.ops().size(), 2u);
  // Pig's profile disables map-side aggregation, forcing the generic
  // (emission-based) job shape this test inspects.
  auto job = lower_draft({ca.ops()[1].op}, ca, LoweringContext{"/s"},
                         TranslatorProfile::pig(), true);
  ASSERT_EQ(job.input_files.size(), 1u);
  EXPECT_EQ(job.input_files[0].path, "/s/" + ca.ops()[0].op->label);
  ASSERT_EQ(job.emissions.size(), 1u);
  EXPECT_TRUE(job.emissions[0].consumers[0].filter == nullptr);
  // Identity value: all columns of the intermediate schema.
  EXPECT_EQ(job.emissions[0].value_exprs.size(),
            ca.ops()[0].op->output_schema.size());
}

TEST(Lowering, OutputsOnlyForOpsWithoutParentInDraft) {
  auto l = lower_all(
      "SELECT c1.uid, count(*) AS n FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid GROUP BY c1.uid");
  // JOIN feeds AGG inside the job; only AGG has an output.
  int with_output = 0;
  for (const auto& st : l.job.stages)
    if (st.output_index >= 0) ++with_output;
  EXPECT_EQ(with_output, 1);
  ASSERT_EQ(l.job.outputs.size(), 1u);
  EXPECT_EQ(l.job.stages.back().output_index, 0);
}

TEST(Lowering, ConsumerIdsAreUniqueAndDense) {
  auto l = lower_all(
      "SELECT c1.uid, count(*) AS n FROM clicks c1, clicks c2 "
      "WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid");
  std::set<int> ids;
  for (const auto& e : l.job.emissions)
    for (const auto& c : e.consumers) ids.insert(c.consumer_id);
  EXPECT_EQ(static_cast<int>(ids.size()), l.job.total_consumers());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), l.job.total_consumers() - 1);
}

TEST(Lowering, ScanOnlyJobIsMapOnly) {
  auto plan = plan_query("SELECT uid FROM clicks WHERE cid = 3", cat());
  prune_plan(plan);
  auto job = lower_scan_only(plan.get(), LoweringContext{"/s"});
  EXPECT_EQ(job.kind, TranslatedJob::Kind::MapOnly);
  ASSERT_EQ(job.stages.size(), 1u);
  EXPECT_EQ(job.stages[0].op->kind, PlanKind::Scan);
  EXPECT_EQ(job.outputs.size(), 1u);
}

}  // namespace
}  // namespace ysmart
