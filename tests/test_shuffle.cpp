// Pins the raw-comparator shuffle primitives (mr/shuffle.h) to their
// executable specification: plain std::sort over (norm_key, source, seq)
// must reproduce exactly what std::stable_sort(kv_less) produced, the
// k-way merge must equal concatenate-then-stable-sort, and the
// YSMART_RAW_COMPARATOR knob must parse and flip behaviourlessly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "cmf/common_job.h"
#include "common/env.h"
#include "common/normkey.h"
#include "common/rng.h"
#include "mr/engine.h"
#include "mr/shuffle.h"
#include "plan/builder.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace ysmart {
namespace {

/// Finalize a bucket the way PartitioningEmitter does: cache the
/// normalized key and stamp the bucket-local emit sequence.
void prepare_bucket(std::vector<KeyValue>& bucket) {
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].norm_key.empty())
      bucket[i].norm_key = encode_norm_key(bucket[i].key);
    bucket[i].seq = static_cast<std::uint32_t>(i);
  }
}

/// The pre-raw-comparator reference: stable sort by (key, source).
std::vector<KeyValue> reference_sort(std::vector<KeyValue> bucket) {
  std::stable_sort(bucket.begin(), bucket.end(), kv_less);
  return bucket;
}

void expect_same_sequence(const std::vector<KeyValue>& got,
                          const std::vector<KeyValue>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // `value` carries the original emit index in these tests, so equal
    // values here means equal pair identity, not just equal keys.
    ASSERT_TRUE(compare_rows(got[i].key, want[i].key) == 0) << "index " << i;
    ASSERT_TRUE(compare_rows(got[i].value, want[i].value) == 0) << "index " << i;
    ASSERT_EQ(got[i].source, want[i].source) << "index " << i;
    ASSERT_EQ(got[i].exclude, want[i].exclude) << "index " << i;
  }
}

std::vector<KeyValue> random_bucket(Rng& rng, int n, int distinct_keys) {
  std::vector<KeyValue> bucket;
  for (int i = 0; i < n; ++i) {
    KeyValue kv;
    // Few distinct keys and sources force plenty of ties, the case where
    // an unstable sort without the seq tie-break would diverge.
    kv.key = {Value{rng.uniform(0, distinct_keys - 1)},
              Value{rng.ident(static_cast<std::size_t>(rng.uniform(0, 2)))}};
    kv.value = {Value{std::int64_t{i}}};
    kv.source = static_cast<std::uint8_t>(rng.uniform(0, 2));
    bucket.push_back(std::move(kv));
  }
  return bucket;
}

TEST(Shuffle, SortMapBucketMatchesStableSortReference) {
  Rng rng(42424242);
  for (int round = 0; round < 50; ++round) {
    auto bucket = random_bucket(rng, 200, 6);
    prepare_bucket(bucket);
    const auto want = reference_sort(bucket);
    sort_map_bucket(bucket);
    expect_same_sequence(bucket, want);
  }
}

TEST(Shuffle, MergeSortedRunsMatchesConcatThenStableSort) {
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<KeyValue>> runs;
    std::vector<KeyValue> concat;
    const auto num_runs = rng.uniform(1, 6);
    for (std::int64_t r = 0; r < num_runs; ++r) {
      auto run = random_bucket(rng, static_cast<int>(rng.uniform(0, 80)), 4);
      prepare_bucket(run);
      sort_map_bucket(run);
      concat.insert(concat.end(), run.begin(), run.end());
      runs.push_back(std::move(run));
    }
    const auto want = reference_sort(std::move(concat));

    std::vector<std::vector<KeyValue>*> run_ptrs;
    for (auto& r : runs) run_ptrs.push_back(&r);
    const auto got = merge_sorted_runs(run_ptrs);
    expect_same_sequence(got, want);
  }
}

// The pin the refactor hangs on: sorting the real map output of a merged
// CMF job (two aggregations sharing one scan, so pairs carry exclude
// tags and duplicate keys) with the new raw path reproduces the old
// stable_sort order pair-for-pair.
TEST(Shuffle, SortPinOnMergedCmfJobMapOutput) {
  Schema schema;
  schema.add("k", ValueType::Int);
  schema.add("v", ValueType::Int);
  Dfs dfs(2, 256, 1);
  Catalog catalog;
  catalog.register_table("t", schema);
  auto t = std::make_shared<Table>(schema);
  for (int i = 0; i < 60; ++i) t->append({Value{i % 4}, Value{i}});
  dfs.write("/tables/t", t);

  auto agg_lo = plan_query(
      "SELECT k, count(*) AS n FROM t WHERE v < 30 GROUP BY k", catalog);
  auto agg_hi = plan_query(
      "SELECT k, sum(v) AS s FROM t WHERE v >= 15 GROUP BY k", catalog);

  TranslatedJob job;
  job.name = "merged";
  job.kind = TranslatedJob::Kind::MapReduce;
  job.input_files.push_back(InputFile{"/tables/t", Schema{}});
  Emission e;
  e.input_file = 0;
  e.source_tag = 0;
  e.key_exprs = {Expr::make_column("k")};
  e.value_exprs = {Expr::make_column("k"), Expr::make_column("v")};
  e.consumers.push_back(Emission::Consumer{0, parse_expression("v < 30")});
  e.consumers.push_back(Emission::Consumer{1, parse_expression("v >= 15")});
  job.emissions.push_back(e);
  Stage s0;
  s0.op = agg_lo.get();
  s0.inputs = {Stage::In{true, 0}};
  s0.output_index = 0;
  Stage s1;
  s1.op = agg_hi.get();
  s1.inputs = {Stage::In{true, 1}};
  s1.output_index = 1;
  job.stages = {s0, s1};
  job.outputs = {JobOutput{"/out/lo", agg_lo->output_schema},
                 JobOutput{"/out/hi", agg_hi->output_schema}};
  auto spec = build_common_job(job, TranslatorProfile::ysmart(), dfs);

  // Run the job's real mapper over the table and capture its output.
  class Collector : public MapEmitter {
   public:
    void emit(KeyValue kv) override { out.push_back(std::move(kv)); }
    std::vector<KeyValue> out;
  };
  Collector collector;
  auto mapper = spec.make_mapper();
  for (const auto& row : t->rows()) mapper->map(row, 0, collector);
  mapper->finish(collector);
  ASSERT_FALSE(collector.out.empty());

  auto bucket = std::move(collector.out);
  prepare_bucket(bucket);
  const auto want = reference_sort(bucket);
  sort_map_bucket(bucket);
  ASSERT_EQ(bucket.size(), want.size());
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    ASSERT_TRUE(compare_rows(bucket[i].key, want[i].key) == 0) << "index " << i;
    ASSERT_TRUE(compare_rows(bucket[i].value, want[i].value) == 0) << "index " << i;
    ASSERT_EQ(bucket[i].source, want[i].source) << "index " << i;
    ASSERT_EQ(bucket[i].exclude, want[i].exclude) << "index " << i;
  }
}

TEST(Shuffle, SameShuffleKeyAgreesInBothModes) {
  const bool saved = raw_comparator_enabled();
  KeyValue a, b, c;
  a.key = {Value{1}, Value{"x"}};
  b.key = {Value{1.0}, Value{"x"}};  // equal to a across Int/Double
  c.key = {Value{2}, Value{"x"}};
  for (KeyValue* kv : {&a, &b, &c}) kv->norm_key = encode_norm_key(kv->key);
  for (const bool mode : {true, false}) {
    set_raw_comparator_enabled(mode);
    EXPECT_TRUE(same_shuffle_key(a, b)) << "mode " << mode;
    EXPECT_FALSE(same_shuffle_key(a, c)) << "mode " << mode;
  }
  set_raw_comparator_enabled(saved);
}

TEST(Shuffle, PartitionIsIndependentOfComparatorMode) {
  const bool saved = raw_comparator_enabled();
  Rng rng(5150);
  auto bucket = random_bucket(rng, 100, 10);
  prepare_bucket(bucket);
  std::vector<std::size_t> on, off;
  set_raw_comparator_enabled(true);
  for (const auto& kv : bucket) on.push_back(shuffle_partition(kv, 7));
  set_raw_comparator_enabled(false);
  for (const auto& kv : bucket) off.push_back(shuffle_partition(kv, 7));
  set_raw_comparator_enabled(saved);
  EXPECT_EQ(on, off);
}

TEST(Shuffle, EnvFlagParsing) {
  EXPECT_EQ(parse_flag("on"), true);
  EXPECT_EQ(parse_flag("ON"), true);
  EXPECT_EQ(parse_flag("1"), true);
  EXPECT_EQ(parse_flag("true"), true);
  EXPECT_EQ(parse_flag("Yes"), true);
  EXPECT_EQ(parse_flag("off"), false);
  EXPECT_EQ(parse_flag("0"), false);
  EXPECT_EQ(parse_flag("False"), false);
  EXPECT_EQ(parse_flag("no"), false);
  EXPECT_EQ(parse_flag(""), std::nullopt);
  EXPECT_EQ(parse_flag("maybe"), std::nullopt);
  EXPECT_EQ(parse_flag("onn"), std::nullopt);

  ::setenv("YSMART_TEST_FLAG", "off", 1);
  EXPECT_EQ(env_flag("YSMART_TEST_FLAG"), false);
  ::setenv("YSMART_TEST_FLAG", "garbage", 1);
  EXPECT_EQ(env_flag("YSMART_TEST_FLAG"), std::nullopt);
  ::unsetenv("YSMART_TEST_FLAG");
  EXPECT_EQ(env_flag("YSMART_TEST_FLAG"), std::nullopt);
}

}  // namespace
}  // namespace ysmart
