// Unit tests for projection pruning: scans narrow to referenced columns,
// join keys and residual references survive, results are unchanged.
#include <gtest/gtest.h>

#include "plan/builder.h"
#include "plan/prune.h"
#include "refdb/refdb.h"

namespace ysmart {
namespace {

Catalog cat() {
  Catalog c;
  Schema wide;
  for (const char* col : {"k", "a", "b", "c", "d", "e"})
    wide.add(col, ValueType::Int);
  c.register_table("wide", wide);
  Schema other;
  other.add("k", ValueType::Int);
  other.add("x", ValueType::Int);
  c.register_table("other", other);
  return c;
}

std::shared_ptr<Table> wide_data() {
  auto t = std::make_shared<Table>(cat().schema_of("wide"));
  for (int i = 0; i < 20; ++i)
    t->append({Value{i % 4}, Value{i}, Value{i * 2}, Value{i * 3}, Value{i * 4},
               Value{i * 5}});
  return t;
}

std::shared_ptr<Table> other_data() {
  auto t = std::make_shared<Table>(cat().schema_of("other"));
  for (int i = 0; i < 4; ++i) t->append({Value{i}, Value{i * 100}});
  return t;
}

TableSource source() {
  return [](const std::string& name) -> std::shared_ptr<const Table> {
    if (name == "wide") return wide_data();
    if (name == "other") return other_data();
    return nullptr;
  };
}

TEST(Prune, ScanNarrowsToReferencedColumns) {
  auto p = plan_query("SELECT a, count(*) AS n FROM wide GROUP BY a", cat());
  prune_plan(p);
  const auto& scan = p->children[0];
  ASSERT_EQ(scan->kind, PlanKind::Scan);
  EXPECT_EQ(scan->output_schema.size(), 1u);  // only `a` survives
  EXPECT_EQ(scan->output_schema.at(0).name, "wide.a");
}

TEST(Prune, FilterColumnsNeedNotSurviveProjection) {
  // The scan filter runs before projection, so `e` is not in the output.
  auto p = plan_query("SELECT a FROM wide WHERE e > 10", cat());
  prune_plan(p);
  ASSERT_EQ(p->kind, PlanKind::Scan);
  EXPECT_EQ(p->output_schema.size(), 1u);
}

TEST(Prune, JoinKeysSurvive) {
  auto p = plan_query(
      "SELECT x FROM wide, other WHERE wide.k = other.k AND a < 100", cat());
  prune_plan(p);
  ASSERT_EQ(p->kind, PlanKind::Join);
  // Left scan must still produce the join key.
  EXPECT_TRUE(p->children[0]->output_schema.find("wide.k").has_value());
  EXPECT_TRUE(p->children[1]->output_schema.find("other.k").has_value());
  EXPECT_TRUE(p->children[1]->output_schema.find("other.x").has_value());
}

TEST(Prune, ResidualColumnsSurvive) {
  auto p = plan_query(
      "SELECT x FROM wide, other WHERE wide.k = other.k AND b < x", cat());
  prune_plan(p);
  EXPECT_TRUE(p->children[0]->output_schema.find("wide.b").has_value());
}

TEST(Prune, Idempotent) {
  auto p = plan_query(
      "SELECT x FROM wide, other WHERE wide.k = other.k AND b < x", cat());
  prune_plan(p);
  const auto schema_once = p->children[0]->output_schema;
  prune_plan(p);
  EXPECT_EQ(p->children[0]->output_schema, schema_once);
}

TEST(Prune, ResultsUnchanged) {
  for (const char* sql :
       {"SELECT a, count(*) AS n FROM wide GROUP BY a",
        "SELECT x FROM wide, other WHERE wide.k = other.k AND b < x",
        "SELECT a, x FROM wide, other WHERE wide.k = other.k ORDER BY a",
        "SELECT d FROM wide WHERE c > 6"}) {
    SCOPED_TRACE(sql);
    auto p1 = plan_query(sql, cat());
    auto p2 = plan_query(sql, cat());
    prune_plan(p2);
    Table r1 = execute_plan_ref(p1, source());
    Table r2 = execute_plan_ref(p2, source());
    EXPECT_TRUE(same_rows_unordered(r1, r2));
  }
}

TEST(Prune, SortKeepsKeyColumns) {
  // ORDER BY keys must be part of the select list (a documented subset
  // restriction); pruning must keep them in the child.
  auto p = plan_query("SELECT a, b FROM wide ORDER BY b", cat());
  prune_plan(p);
  ASSERT_EQ(p->kind, PlanKind::Sort);
  EXPECT_TRUE(p->children[0]->output_schema.find("b").has_value());
  EXPECT_FALSE(p->children[0]->output_schema.find("wide.e").has_value());
}

}  // namespace
}  // namespace ysmart
