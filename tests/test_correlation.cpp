// Unit tests for correlation detection on the paper's own examples:
// Q17's IC/TC/JFC structure (Section IV-B), Q-CSA's PK choices, and the
// correlation report.
#include <gtest/gtest.h>

#include "data/queries.h"
#include "data/tpch_gen.h"
#include "plan/builder.h"
#include "plan/prune.h"
#include "translator/correlation.h"

namespace ysmart {
namespace {

Catalog tpch_catalog() {
  Catalog c;
  c.register_table("lineitem", tpch_lineitem_schema());
  c.register_table("orders", tpch_orders_schema());
  c.register_table("part", tpch_part_schema());
  c.register_table("customer", tpch_customer_schema());
  c.register_table("supplier", tpch_supplier_schema());
  c.register_table("nation", tpch_nation_schema());
  Schema cl;
  cl.add("uid", ValueType::Int);
  cl.add("page_id", ValueType::Int);
  cl.add("cid", ValueType::Int);
  cl.add("ts", ValueType::Int);
  c.register_table("clicks", cl);
  return c;
}

int find_op(const CorrelationAnalysis& ca, const std::string& label) {
  for (std::size_t i = 0; i < ca.ops().size(); ++i)
    if (ca.ops()[i].op->label == label) return static_cast<int>(i);
  return -1;
}

// Section IV-B: "AGG1 and JOIN1 have transit correlation... JOIN2 has job
// flow correlation with both AGG1 and JOIN1."
TEST(Correlation, Q17Structure) {
  auto p = plan_query(queries::q17().sql, tpch_catalog());
  CorrelationAnalysis ca(p);

  const int agg1 = find_op(ca, "AGG1");
  const int join1 = find_op(ca, "JOIN1");
  const int join2 = find_op(ca, "JOIN2");
  ASSERT_GE(agg1, 0);
  ASSERT_GE(join1, 0);
  ASSERT_GE(join2, 0);

  EXPECT_TRUE(ca.input_correlation(agg1, join1));   // both scan lineitem
  EXPECT_TRUE(ca.transit_correlation(agg1, join1));  // same PK l_partkey
  EXPECT_TRUE(ca.job_flow_correlation(join2, agg1));
  EXPECT_TRUE(ca.job_flow_correlation(join2, join1));
}

// Q17's final global aggregation has no partition key and no correlation.
TEST(Correlation, Q17FinalAggUncorrelated) {
  auto p = plan_query(queries::q17().sql, tpch_catalog());
  CorrelationAnalysis ca(p);
  const int agg2 = find_op(ca, "AGG2");
  ASSERT_GE(agg2, 0);
  EXPECT_TRUE(ca.ops()[static_cast<std::size_t>(agg2)].pk.empty());
  const int join2 = find_op(ca, "JOIN2");
  EXPECT_FALSE(ca.job_flow_correlation(agg2, join2));
}

// Section VII-A: for Q-CSA "YSmart determines uid as the PK so that AGG1
// can have job flow correlation with JOIN1" — and the whole chain of five
// operations is JFC-connected.
TEST(Correlation, QcsaChainAllJfcConnected) {
  auto p = plan_query(queries::qcsa().sql, tpch_catalog());
  CorrelationAnalysis ca(p);

  for (const char* agg : {"AGG1", "AGG2", "AGG3"}) {
    const int i = find_op(ca, agg);
    ASSERT_GE(i, 0) << agg;
    const auto& pk = ca.ops()[static_cast<std::size_t>(i)].pk;
    ASSERT_EQ(pk.columns.size(), 1u) << agg;
    EXPECT_EQ(unqualify(pk.columns[0]), "uid") << agg;
  }
  // Each consecutive pair in JOIN1 <- AGG1 <- AGG2 <- JOIN2 <- AGG3.
  const int join1 = find_op(ca, "JOIN1"), agg1 = find_op(ca, "AGG1");
  const int agg2 = find_op(ca, "AGG2"), join2 = find_op(ca, "JOIN2");
  const int agg3 = find_op(ca, "AGG3");
  EXPECT_TRUE(ca.job_flow_correlation(agg1, join1));
  EXPECT_TRUE(ca.job_flow_correlation(agg2, agg1));
  EXPECT_TRUE(ca.job_flow_correlation(join2, agg2));
  EXPECT_TRUE(ca.job_flow_correlation(agg3, join2));
}

// Q21 sub-tree (Fig. 9 workload): JOIN1, AGG1, AGG2 pairwise transit
// correlated; the whole five share PK l_orderkey.
TEST(Correlation, Q21SubtreeTransit) {
  auto p = plan_query(queries::q21_subtree().sql, tpch_catalog());
  CorrelationAnalysis ca(p);
  const int join1 = find_op(ca, "JOIN1");
  const int agg1 = find_op(ca, "AGG1");
  const int agg2 = find_op(ca, "AGG2");
  ASSERT_GE(join1, 0);
  ASSERT_GE(agg1, 0);
  ASSERT_GE(agg2, 0);
  EXPECT_TRUE(ca.transit_correlation(join1, agg1));
  EXPECT_TRUE(ca.transit_correlation(join1, agg2));
  EXPECT_TRUE(ca.transit_correlation(agg1, agg2));
}

TEST(Correlation, AncestorDetection) {
  auto p = plan_query(queries::q17().sql, tpch_catalog());
  CorrelationAnalysis ca(p);
  const auto* join2 = ca.ops()[static_cast<std::size_t>(find_op(ca, "JOIN2"))].op;
  const auto* agg1 = ca.ops()[static_cast<std::size_t>(find_op(ca, "AGG1"))].op;
  EXPECT_TRUE(ca.is_ancestor(join2, agg1));
  EXPECT_FALSE(ca.is_ancestor(agg1, join2));
}

TEST(Correlation, DirectTablesListScanChildrenOnly) {
  auto p = plan_query(queries::q17().sql, tpch_catalog());
  CorrelationAnalysis ca(p);
  const auto& join1 = ca.ops()[static_cast<std::size_t>(find_op(ca, "JOIN1"))];
  EXPECT_TRUE(join1.direct_tables.count("lineitem"));
  EXPECT_TRUE(join1.direct_tables.count("part"));
  const auto& join2 = ca.ops()[static_cast<std::size_t>(find_op(ca, "JOIN2"))];
  EXPECT_TRUE(join2.direct_tables.empty());  // both inputs intermediate
}

TEST(Correlation, ReportMentionsAllOps) {
  auto p = plan_query(queries::qcsa().sql, tpch_catalog());
  CorrelationAnalysis ca(p);
  const std::string r = ca.report();
  for (const char* label : {"JOIN1", "JOIN2", "AGG1", "AGG2", "AGG3"})
    EXPECT_NE(r.find(label), std::string::npos) << label;
  EXPECT_NE(r.find("TC"), std::string::npos);
  EXPECT_NE(r.find("JFC"), std::string::npos);
}

}  // namespace
}  // namespace ysmart
