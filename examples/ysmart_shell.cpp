// Interactive shell: type SQL against the generated TPC-H + clicks data
// and watch YSmart translate and execute it on the simulated cluster.
//
//   $ ./build/examples/ysmart_shell
//   ysmart> SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING n > 100;
//   ysmart> \explain SELECT ... ;
//   ysmart> \dot SELECT ... ;          (Graphviz job DAG on stdout)
//   ysmart> \profile hive               (switch translator)
//   ysmart> \profile on                 (per-query span tree + counters)
//   ysmart> \profile off
//   ysmart> \trace /tmp/query.trace.json  (Chrome trace of last profiled run)
//   ysmart> \counters                   (session metrics registry as JSON)
//   ysmart> \analyze SELECT ... ;       (run + query-doctor skew report)
//   ysmart> \analyze                    (re-print analysis of last sampled run)
//   ysmart> \load mytable /path/data.csv   (schema inferred)
//   ysmart> \save /path/out.csv SELECT ... ;
//   ysmart> \tables
//   ysmart> \quit
//
// Environment: YSMART_TRACE=<file> / YSMART_METRICS=<file> record the
// whole session and write a Chrome trace / metrics-registry JSON on exit.
//
// Also reads one-shot queries from the command line:
//   $ ./build/examples/ysmart_shell "SELECT count(*) AS n FROM lineitem"
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/database.h"
#include "common/env.h"
#include "common/error.h"
#include "common/strings.h"
#include "data/clicks_gen.h"
#include "data/tpch_gen.h"
#include "obs/analyzer.h"
#include "obs/obs.h"
#include "storage/csv.h"

namespace {

using namespace ysmart;

TranslatorProfile profile_by_name(const std::string& name) {
  if (name == "hive") return TranslatorProfile::hive();
  if (name == "pig") return TranslatorProfile::pig();
  if (name == "mrshare") return TranslatorProfile::mrshare();
  if (name == "hand" || name == "hand-coded")
    return TranslatorProfile::hand_coded();
  return TranslatorProfile::ysmart();
}

struct ShellObs {
  obs::ObsContext ctx;
  bool profiling = false;     // \profile on: print span tree per query
  bool session_trace = false; // YSMART_TRACE set: keep the whole session
  QueryMetrics last_metrics;  // most recent run, used by \dot annotation
};

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cout << "cannot write " << path << "\n";
    return;
  }
  out << body << '\n';
  std::cout << "wrote " << path << "\n";
}

void run_sql(Database& db, const TranslatorProfile& profile,
             const std::string& sql, bool explain_only, ShellObs& sobs) {
  try {
    if (explain_only) {
      std::cout << db.explain(sql, profile);
      return;
    }
    // Without a session-long trace, each profiled query gets a fresh
    // timeline (and fresh task samples) so the printed tree, a following
    // \trace, and a bare \analyze cover just that query. Counters always
    // accumulate across the session.
    if (db.observer() && !sobs.session_trace) {
      sobs.ctx.tracer.clear();
      sobs.ctx.samples.clear();
    }
    auto run = db.run(sql, profile);
    sobs.last_metrics = run.metrics;
    if (run.metrics.failed()) {
      std::cout << strf("query DNF after %d job(s): %s\n",
                        run.metrics.job_count(),
                        run.metrics.fail_reason().c_str());
      if (db.observer())
        std::cout << "counters: " << sobs.ctx.metrics.summary_line() << "\n";
      return;
    }
    std::cout << run.result->to_string(25);
    std::cout << strf("(%zu rows; %d job(s); %.1f simulated seconds; "
                      "profile %s)\n",
                      run.result->row_count(), run.metrics.job_count(),
                      run.metrics.total_time_s(), profile.name.c_str());
    if (sobs.profiling) {
      std::cout << sobs.ctx.tracer.analyze_tree();
      std::cout << "counters: " << sobs.ctx.metrics.summary_line() << "\n";
    }
  } catch (const Error& e) {
    std::cout << e.what() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Database db(ClusterConfig::small_local(/*sim_scale=*/200));

  TpchConfig tc;
  tc.orders = 4000;
  auto tpch = generate_tpch(tc);
  db.create_table("lineitem", tpch.lineitem);
  db.create_table("orders", tpch.orders);
  db.create_table("part", tpch.part);
  db.create_table("customer", tpch.customer);
  db.create_table("supplier", tpch.supplier);
  db.create_table("nation", tpch.nation);
  ClicksConfig cc;
  cc.users = 800;
  db.create_table("clicks", generate_clicks(cc));

  TranslatorProfile profile = TranslatorProfile::ysmart();

  ShellObs sobs;
  const auto trace_env = env_nonempty("YSMART_TRACE");
  const auto metrics_env = env_nonempty("YSMART_METRICS");
  if (trace_env || metrics_env) {
    sobs.session_trace = trace_env.has_value();
    db.set_observer(&sobs.ctx);
  }
  auto write_env_outputs = [&] {
    if (trace_env)
      write_text_file(*trace_env,
                      sobs.ctx.tracer.chrome_json(obs::TimeAxis::Both));
    if (metrics_env) write_text_file(*metrics_env, sobs.ctx.metrics.json());
  };

  if (argc > 1) {
    run_sql(db, profile, argv[1], /*explain_only=*/false, sobs);
    write_env_outputs();
    return 0;
  }

  std::cout << "ysmart interactive shell - tables: ";
  for (const auto& t : db.catalog().table_names()) std::cout << t << " ";
  std::cout << "\ncommands: \\explain <sql>  \\analyze [sql]  \\profile "
               "<ysmart|hive|pig|mrshare|hand|on|off>  \\trace <file>  "
               "\\counters  \\tables  \\quit\n";

  std::string line;
  while (std::cout << "ysmart> " << std::flush, std::getline(std::cin, line)) {
    // Trim.
    const auto a = line.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    const auto b = line.find_last_not_of(" \t;");
    line = line.substr(a, b - a + 1);
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream iss(line.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "tables") {
        for (const auto& t : db.catalog().table_names())
          std::cout << "  " << t << "  "
                    << db.catalog().schema_of(t).to_string() << "\n";
        continue;
      }
      if (cmd == "profile") {
        std::string name;
        iss >> name;
        if (name == "on" || name == "off") {
          sobs.profiling = name == "on";
          if (sobs.profiling)
            db.set_observer(&sobs.ctx);
          else if (!trace_env && !metrics_env)
            db.set_observer(nullptr);
          std::cout << "profiling: " << name << "\n";
        } else {
          profile = profile_by_name(name);
          std::cout << "profile: " << profile.name << "\n";
        }
        continue;
      }
      if (cmd == "trace") {
        std::string path;
        iss >> path;
        if (path.empty()) {
          std::cout << "usage: \\trace <file>\n";
        } else if (!db.observer()) {
          std::cout << "nothing traced yet - \\profile on first\n";
        } else {
          write_text_file(path,
                          sobs.ctx.tracer.chrome_json(obs::TimeAxis::Both));
        }
        continue;
      }
      if (cmd == "counters") {
        if (!db.observer()) {
          std::cout << "no counters - \\profile on first\n";
        } else {
          std::cout << sobs.ctx.metrics.json() << "\n";
        }
        continue;
      }
      if (cmd == "analyze") {
        std::string rest;
        std::getline(iss, rest);
        const auto c = rest.find_first_not_of(" \t");
        rest = c == std::string::npos ? std::string() : rest.substr(c);
        if (!rest.empty()) {
          // Run with the observer attached for the duration so samples
          // are retained even when profiling is off.
          const bool had_obs = db.observer() != nullptr;
          if (!had_obs) db.set_observer(&sobs.ctx);
          run_sql(db, profile, rest, /*explain_only=*/false, sobs);
          if (!had_obs) db.set_observer(nullptr);
        }
        if (sobs.ctx.samples.query_count() == 0) {
          std::cout << "nothing sampled yet - \\analyze <sql>, or \\profile "
                       "on and run a query\n";
        } else {
          std::cout << obs::analyze_query(sobs.ctx.samples.last_query()).text();
        }
        continue;
      }
      if (cmd == "explain") {
        std::string rest;
        std::getline(iss, rest);
        run_sql(db, profile, rest, /*explain_only=*/true, sobs);
        continue;
      }
      if (cmd == "dot") {
        std::string rest;
        std::getline(iss, rest);
        try {
          // Annotate with the last run's metrics when the job names line
          // up (to_dot matches by name, so a different query simply gets
          // no annotations).
          const QueryMetrics* m =
              sobs.last_metrics.jobs.empty() ? nullptr : &sobs.last_metrics;
          std::cout << db.translate_query(rest, profile).to_dot(m);
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "load") {
        std::string name, path;
        iss >> name >> path;
        try {
          auto t = read_csv_file_infer(path);
          db.create_table(name, t);
          std::cout << "loaded " << t->row_count() << " rows into " << name
                    << " " << t->schema().to_string() << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "save") {
        std::string path, rest;
        iss >> path;
        std::getline(iss, rest);
        try {
          auto run = db.run(rest, profile);
          if (run.metrics.failed()) {
            std::cout << "query DNF: " << run.metrics.fail_reason() << "\n";
            continue;
          }
          write_csv_file(*run.result, path);
          std::cout << "wrote " << run.result->row_count() << " rows to "
                    << path << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      std::cout << "unknown command: " << cmd << "\n";
      continue;
    }
    run_sql(db, profile, line, /*explain_only=*/false, sobs);
  }
  write_env_outputs();
  return 0;
}
