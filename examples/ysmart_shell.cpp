// Interactive shell: type SQL against the generated TPC-H + clicks data
// and watch YSmart translate and execute it on the simulated cluster.
//
//   $ ./build/examples/ysmart_shell
//   ysmart> SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING n > 100;
//   ysmart> \explain SELECT ... ;      (plan view: run + predicted-vs-actual
//                                        per-job EXPLAIN ANALYZE tree)
//   ysmart> \explain                    (re-print the last plan report)
//   ysmart> \whatif SELECT ... ;        (translate + run under the current
//                                        profile AND the hive-style baseline,
//                                        compare predictions and actuals)
//   ysmart> \dot SELECT ... ;          (Graphviz job DAG on stdout)
//   ysmart> \profile hive               (switch translator)
//   ysmart> \profile on                 (per-query span tree + counters)
//   ysmart> \profile off
//   ysmart> \trace /tmp/query.trace.json  (Chrome trace of last profiled run)
//   ysmart> \counters                   (session metrics registry as JSON)
//   ysmart> \analyze SELECT ... ;       (run + query-doctor skew report)
//   ysmart> \analyze                    (re-print analysis of last sampled run)
//   ysmart> \cluster [sql]              (cluster doctor: per-node rollup of
//                                        the last sampled run)
//   ysmart> \history [k]               (flight recorder: last k queries)
//   ysmart> \last [i]                   (re-print the i-th last analyze tree)
//   ysmart> \top                        (progress/ETA state of the last run)
//   ysmart> \hotspots                   (host CPU/alloc table of last run)
//   ysmart> \flame /tmp/q.folded        (folded stacks for flamegraph.pl)
//   ysmart> \serve 9090                 (Prometheus /metrics on 127.0.0.1)
//   ysmart> \serve /tmp/metrics.prom    (render the exposition to a file)
//   ysmart> \load mytable /path/data.csv   (schema inferred)
//   ysmart> \save /path/out.csv SELECT ... ;
//   ysmart> \tables
//   ysmart> \quit
//
// Environment: YSMART_TRACE=<file> / YSMART_METRICS=<file> record the
// whole session and write a Chrome trace / metrics-registry JSON on exit;
// YSMART_EVENTS=<file> streams the structured event journal (JSONL) as it
// happens; YSMART_PROM_PORT=<port> serves /metrics, /healthz,
// /history.json, /cluster.json and /plan.json from startup;
// YSMART_HISTORY=<n> resizes the flight
// recorder's retention ring (default 32); YSMART_PROFILE=off disables
// the host-axis profiler (on by default; it only feeds \hotspots and
// \flame, never simulated results).
//
// Also reads one-shot queries from the command line:
//   $ ./build/examples/ysmart_shell "SELECT count(*) AS n FROM lineitem"
#include <iostream>
#include <sstream>
#include <string>

#include "api/database.h"
#include "common/env.h"
#include "common/error.h"
#include "common/http_listener.h"
#include "common/io.h"
#include "common/strings.h"
#include "data/clicks_gen.h"
#include "data/tpch_gen.h"
#include "obs/analyzer.h"
#include "obs/cluster_view.h"
#include "obs/http_endpoints.h"
#include "obs/obs.h"
#include "obs/plan_view.h"
#include "obs/prom_export.h"
#include "storage/csv.h"

namespace {

using namespace ysmart;

TranslatorProfile profile_by_name(const std::string& name) {
  if (name == "hive") return TranslatorProfile::hive();
  if (name == "pig") return TranslatorProfile::pig();
  if (name == "mrshare") return TranslatorProfile::mrshare();
  if (name == "hand" || name == "hand-coded")
    return TranslatorProfile::hand_coded();
  return TranslatorProfile::ysmart();
}

struct ShellObs {
  obs::ObsContext ctx;
  bool profiling = false;     // \profile on: print span tree per query
  bool session_trace = false; // YSMART_TRACE set: keep the whole session
  QueryMetrics last_metrics;  // most recent run, used by \dot annotation
};

// write_text_file reports failures itself (stderr, with the path); the
// shell only announces success.
void write_and_report(const std::string& path, const std::string& body) {
  if (write_text_file(path, body)) std::cout << "wrote " << path << "\n";
}

void run_sql(Database& db, const TranslatorProfile& profile,
             const std::string& sql, ShellObs& sobs) {
  try {
    // Without a session-long trace, each profiled query gets a fresh
    // timeline (and fresh task samples) so the printed tree, a following
    // \trace, and a bare \analyze cover just that query. Counters always
    // accumulate across the session.
    if (db.observer() && !sobs.session_trace) {
      sobs.ctx.tracer.clear();
      sobs.ctx.samples.clear();
      sobs.ctx.profiler.clear();  // \hotspots / \flame cover this query
    }
    auto run = db.run(sql, profile);
    sobs.last_metrics = run.metrics;
    if (run.metrics.failed()) {
      std::cout << strf("query DNF after %d job(s): %s\n",
                        run.metrics.job_count(),
                        run.metrics.fail_reason().c_str());
      if (db.observer())
        std::cout << "counters: " << sobs.ctx.metrics.summary_line() << "\n";
      return;
    }
    std::cout << run.result->to_string(25);
    std::cout << strf("(%zu rows; %d job(s); %.1f simulated seconds; "
                      "profile %s)\n",
                      run.result->row_count(), run.metrics.job_count(),
                      run.metrics.total_time_s(), profile.name.c_str());
    if (sobs.profiling) {
      std::cout << sobs.ctx.tracer.analyze_tree();
      std::cout << "counters: " << sobs.ctx.metrics.summary_line() << "\n";
    }
  } catch (const Error& e) {
    std::cout << e.what() << "\n";
  }
}

/// Run `sql` with the plan view recording and return the joined
/// predicted-vs-actual report. Attaches the observer and enables the
/// plan store for the duration, restoring both afterwards.
bool run_with_plan(Database& db, const TranslatorProfile& prof,
                   const std::string& sql, ShellObs& sobs,
                   obs::PlanReport* out) {
  const bool had_obs = db.observer() != nullptr;
  const bool had_plans = sobs.ctx.plans.enabled();
  if (!had_obs) db.set_observer(&sobs.ctx);
  sobs.ctx.plans.set_enabled(true);
  bool ok = false;
  try {
    auto run = db.run(sql, prof);
    sobs.last_metrics = run.metrics;
    if (run.metrics.failed())
      std::cout << strf("query DNF after %d job(s): %s\n",
                        run.metrics.job_count(),
                        run.metrics.fail_reason().c_str());
    else
      ok = sobs.ctx.plans.last_report(out);
  } catch (const Error& e) {
    std::cout << e.what() << "\n";
  }
  sobs.ctx.plans.set_enabled(had_plans);
  if (!had_obs) db.set_observer(nullptr);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Database db(ClusterConfig::small_local(/*sim_scale=*/200));

  TpchConfig tc;
  tc.orders = 4000;
  auto tpch = generate_tpch(tc);
  db.create_table("lineitem", tpch.lineitem);
  db.create_table("orders", tpch.orders);
  db.create_table("part", tpch.part);
  db.create_table("customer", tpch.customer);
  db.create_table("supplier", tpch.supplier);
  db.create_table("nation", tpch.nation);
  ClicksConfig cc;
  cc.users = 800;
  db.create_table("clicks", generate_clicks(cc));

  TranslatorProfile profile = TranslatorProfile::ysmart();

  ShellObs sobs;
  // Host profiling is on whenever an observer is attached (off is the
  // escape hatch); it records host-axis state only, so simulated output
  // is unchanged either way.
  sobs.ctx.profiler.set_enabled(env_flag("YSMART_PROFILE").value_or(true));
  const auto trace_env = env_nonempty("YSMART_TRACE");
  const auto metrics_env = env_nonempty("YSMART_METRICS");
  const auto events_env = env_nonempty("YSMART_EVENTS");
  const auto prom_port_env = env_positive_int("YSMART_PROM_PORT");
  if (const auto cap = env_positive_int("YSMART_HISTORY"))
    sobs.ctx.history.set_capacity(static_cast<std::size_t>(*cap));
  const bool env_obs =
      trace_env || metrics_env || events_env || prom_port_env;
  if (env_obs) {
    sobs.session_trace = trace_env.has_value();
    if (events_env) sobs.ctx.events.open_sink(*events_env);
    db.set_observer(&sobs.ctx);
  }
  HttpListener listener;
  if (prom_port_env) {
    std::string err;
    if (listener.start(*prom_port_env,
                       [&sobs](const std::string& p) {
                         return obs::serve_obs_endpoint(sobs.ctx, p);
                       },
                       &err))
      std::cerr << "serving http://127.0.0.1:" << listener.port()
                << "/metrics\n";
    else
      std::cerr << "warning: YSMART_PROM_PORT: " << err << "\n";
  }
  auto write_env_outputs = [&] {
    if (trace_env)
      write_and_report(*trace_env,
                       sobs.ctx.tracer.chrome_json(obs::TimeAxis::Both));
    if (metrics_env) write_and_report(*metrics_env, sobs.ctx.metrics.json());
    if (events_env && sobs.ctx.events.sink_open()) {
      sobs.ctx.events.close_sink();
      std::cout << "wrote " << *events_env << "\n";
    }
  };

  if (argc > 1) {
    run_sql(db, profile, argv[1], sobs);
    write_env_outputs();
    return 0;
  }

  std::cout << "ysmart interactive shell - tables: ";
  for (const auto& t : db.catalog().table_names()) std::cout << t << " ";
  std::cout << "\ncommands: \\explain [sql]  \\whatif <sql>  \\analyze "
               "[sql]  \\cluster "
               "[sql]  \\profile "
               "<ysmart|hive|pig|mrshare|hand|on|off>  \\trace <file>  "
               "\\counters  \\history [k]  \\last [i]  \\top  \\hotspots  "
               "\\flame <file>  \\serve <port|file>  \\tables  \\quit\n";

  std::string line;
  while (std::cout << "ysmart> " << std::flush, std::getline(std::cin, line)) {
    // Trim.
    const auto a = line.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    const auto b = line.find_last_not_of(" \t;");
    line = line.substr(a, b - a + 1);
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream iss(line.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "tables") {
        for (const auto& t : db.catalog().table_names())
          std::cout << "  " << t << "  "
                    << db.catalog().schema_of(t).to_string() << "\n";
        continue;
      }
      if (cmd == "profile") {
        std::string name;
        iss >> name;
        if (name == "on" || name == "off") {
          sobs.profiling = name == "on";
          if (sobs.profiling)
            db.set_observer(&sobs.ctx);
          else if (!env_obs && !listener.running())
            db.set_observer(nullptr);
          std::cout << "profiling: " << name << "\n";
        } else {
          profile = profile_by_name(name);
          std::cout << "profile: " << profile.name << "\n";
        }
        continue;
      }
      if (cmd == "trace") {
        std::string path;
        iss >> path;
        if (path.empty()) {
          std::cout << "usage: \\trace <file>\n";
        } else if (!db.observer()) {
          std::cout << "nothing traced yet - \\profile on first\n";
        } else {
          write_and_report(path,
                           sobs.ctx.tracer.chrome_json(obs::TimeAxis::Both));
        }
        continue;
      }
      if (cmd == "counters") {
        if (!db.observer()) {
          std::cout << "no counters - \\profile on first\n";
        } else {
          std::cout << sobs.ctx.metrics.json() << "\n";
        }
        continue;
      }
      if (cmd == "history") {
        std::size_t k = 0;
        iss >> k;
        if (sobs.ctx.history.size() == 0)
          std::cout << "no queries recorded yet - \\profile on and run "
                       "a query\n";
        else
          std::cout << sobs.ctx.history.table(k);
        continue;
      }
      if (cmd == "last") {
        std::size_t i = 0;
        iss >> i;
        obs::QueryHistoryRecord rec;
        if (!sobs.ctx.history.at(i, &rec)) {
          std::cout << "no such history entry (have "
                    << sobs.ctx.history.size() << ")\n";
        } else {
          std::cout << strf("#%llu [%s] %s\n",
                            static_cast<unsigned long long>(rec.id),
                            rec.profile.c_str(), rec.sql.c_str());
          std::cout << rec.analyzer_text;
        }
        continue;
      }
      if (cmd == "top") {
        std::cout << sobs.ctx.progress.snapshot().render();
        continue;
      }
      if (cmd == "hotspots") {
        if (!sobs.ctx.profiler.enabled())
          std::cout << "host profiler is off (YSMART_PROFILE=off)\n";
        else if (sobs.ctx.profiler.phase_count() == 0)
          std::cout << "no host phases recorded yet - \\profile on and run "
                       "a query\n";
        else
          std::cout << sobs.ctx.profiler.hotspots_table();
        continue;
      }
      if (cmd == "flame") {
        std::string path;
        iss >> path;
        if (path.empty())
          std::cout << "usage: \\flame <file>  (then: flamegraph.pl <file> "
                       "> flame.svg)\n";
        else if (sobs.ctx.profiler.phase_count() == 0)
          std::cout << "no host phases recorded yet - \\profile on and run "
                       "a query\n";
        else
          write_and_report(path,
                           sobs.ctx.profiler.folded_stacks(sobs.ctx.tracer));
        continue;
      }
      if (cmd == "serve") {
        std::string arg;
        iss >> arg;
        if (arg.empty()) {
          std::cout << "usage: \\serve <port>  (HTTP on 127.0.0.1) or "
                       "\\serve <file>  (write exposition once)\n";
        } else if (const auto port = parse_positive_int(arg)) {
          if (!db.observer()) db.set_observer(&sobs.ctx);
          std::string err;
          if (listener.running())
            std::cout << "already serving on port " << listener.port() << "\n";
          else if (listener.start(*port,
                                  [&sobs](const std::string& p) {
                                    return obs::serve_obs_endpoint(sobs.ctx, p);
                                  },
                                  &err))
            std::cout << "serving http://127.0.0.1:" << listener.port()
                      << "/metrics\n";
          else
            std::cout << "cannot serve: " << err << "\n";
        } else {
          // Non-numeric argument: render the exposition to a file via the
          // same pure renderer the endpoint uses (CI runs this socket-free).
          if (!db.observer()) db.set_observer(&sobs.ctx);
          write_and_report(arg, obs::render_prometheus(sobs.ctx));
        }
        continue;
      }
      if (cmd == "analyze" || cmd == "cluster") {
        std::string rest;
        std::getline(iss, rest);
        const auto c = rest.find_first_not_of(" \t");
        rest = c == std::string::npos ? std::string() : rest.substr(c);
        if (!rest.empty()) {
          // Run with the observer attached for the duration so samples
          // are retained even when profiling is off.
          const bool had_obs = db.observer() != nullptr;
          if (!had_obs) db.set_observer(&sobs.ctx);
          run_sql(db, profile, rest, sobs);
          if (!had_obs) db.set_observer(nullptr);
        }
        if (sobs.ctx.samples.query_count() == 0) {
          std::cout << "nothing sampled yet - \\" << cmd
                    << " <sql>, or \\profile on and run a query\n";
        } else if (cmd == "cluster") {
          std::cout
              << obs::build_cluster_view(sobs.ctx.samples.last_query()).text();
        } else {
          std::cout << obs::analyze_query(sobs.ctx.samples.last_query()).text();
        }
        continue;
      }
      if (cmd == "explain") {
        std::string rest;
        std::getline(iss, rest);
        const auto c = rest.find_first_not_of(" \t");
        rest = c == std::string::npos ? std::string() : rest.substr(c);
        obs::PlanReport rep;
        if (rest.empty()) {
          if (sobs.ctx.plans.last_report(&rep))
            std::cout << rep.text();
          else
            std::cout << "no plan recorded yet - \\explain <sql>\n";
        } else if (run_with_plan(db, profile, rest, sobs, &rep)) {
          std::cout << rep.text();
        }
        continue;
      }
      if (cmd == "whatif") {
        std::string rest;
        std::getline(iss, rest);
        const auto c = rest.find_first_not_of(" \t");
        rest = c == std::string::npos ? std::string() : rest.substr(c);
        if (rest.empty()) {
          std::cout << "usage: \\whatif <sql>  (run under the current "
                       "profile and the one-op-one-job baseline, compare)\n";
          continue;
        }
        // Merged strategy = the current profile; baseline = the
        // one-operation-to-one-job translation (ysmart when the current
        // profile already *is* a baseline-style one).
        const TranslatorProfile baseline_profile =
            profile.correlation_aware ? TranslatorProfile::hive()
                                      : TranslatorProfile::ysmart();
        obs::PlanReport merged, baseline;
        if (run_with_plan(db, profile, rest, sobs, &merged) &&
            run_with_plan(db, baseline_profile, rest, sobs, &baseline))
          std::cout << obs::render_whatif(merged, baseline);
        continue;
      }
      if (cmd == "dot") {
        std::string rest;
        std::getline(iss, rest);
        try {
          // Annotate with the last run's metrics when the job names line
          // up (to_dot matches by name, so a different query simply gets
          // no annotations).
          const QueryMetrics* m =
              sobs.last_metrics.jobs.empty() ? nullptr : &sobs.last_metrics;
          std::cout << db.translate_query(rest, profile).to_dot(m);
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "load") {
        std::string name, path;
        iss >> name >> path;
        try {
          auto t = read_csv_file_infer(path);
          db.create_table(name, t);
          std::cout << "loaded " << t->row_count() << " rows into " << name
                    << " " << t->schema().to_string() << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "save") {
        std::string path, rest;
        iss >> path;
        std::getline(iss, rest);
        try {
          auto run = db.run(rest, profile);
          if (run.metrics.failed()) {
            std::cout << "query DNF: " << run.metrics.fail_reason() << "\n";
            continue;
          }
          write_csv_file(*run.result, path);
          std::cout << "wrote " << run.result->row_count() << " rows to "
                    << path << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      std::cout << "unknown command: " << cmd << "\n";
      continue;
    }
    run_sql(db, profile, line, sobs);
  }
  write_env_outputs();
  return 0;
}
