// Interactive shell: type SQL against the generated TPC-H + clicks data
// and watch YSmart translate and execute it on the simulated cluster.
//
//   $ ./build/examples/ysmart_shell
//   ysmart> SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING n > 100;
//   ysmart> \explain SELECT ... ;
//   ysmart> \dot SELECT ... ;          (Graphviz job DAG on stdout)
//   ysmart> \profile hive
//   ysmart> \load mytable /path/data.csv   (schema inferred)
//   ysmart> \save /path/out.csv SELECT ... ;
//   ysmart> \tables
//   ysmart> \quit
//
// Also reads one-shot queries from the command line:
//   $ ./build/examples/ysmart_shell "SELECT count(*) AS n FROM lineitem"
#include <iostream>
#include <sstream>
#include <string>

#include "api/database.h"
#include "common/error.h"
#include "common/strings.h"
#include "data/clicks_gen.h"
#include "data/tpch_gen.h"
#include "storage/csv.h"

namespace {

using namespace ysmart;

TranslatorProfile profile_by_name(const std::string& name) {
  if (name == "hive") return TranslatorProfile::hive();
  if (name == "pig") return TranslatorProfile::pig();
  if (name == "mrshare") return TranslatorProfile::mrshare();
  if (name == "hand" || name == "hand-coded")
    return TranslatorProfile::hand_coded();
  return TranslatorProfile::ysmart();
}

void run_sql(Database& db, const TranslatorProfile& profile,
             const std::string& sql, bool explain_only) {
  try {
    if (explain_only) {
      std::cout << db.explain(sql, profile);
      return;
    }
    auto run = db.run(sql, profile);
    if (run.metrics.failed()) {
      std::cout << strf("query DNF after %d job(s): %s\n",
                        run.metrics.job_count(),
                        run.metrics.fail_reason().c_str());
      return;
    }
    std::cout << run.result->to_string(25);
    std::cout << strf("(%zu rows; %d job(s); %.1f simulated seconds; "
                      "profile %s)\n",
                      run.result->row_count(), run.metrics.job_count(),
                      run.metrics.total_time_s(), profile.name.c_str());
  } catch (const Error& e) {
    std::cout << e.what() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Database db(ClusterConfig::small_local(/*sim_scale=*/200));

  TpchConfig tc;
  tc.orders = 4000;
  auto tpch = generate_tpch(tc);
  db.create_table("lineitem", tpch.lineitem);
  db.create_table("orders", tpch.orders);
  db.create_table("part", tpch.part);
  db.create_table("customer", tpch.customer);
  db.create_table("supplier", tpch.supplier);
  db.create_table("nation", tpch.nation);
  ClicksConfig cc;
  cc.users = 800;
  db.create_table("clicks", generate_clicks(cc));

  TranslatorProfile profile = TranslatorProfile::ysmart();

  if (argc > 1) {
    run_sql(db, profile, argv[1], /*explain_only=*/false);
    return 0;
  }

  std::cout << "ysmart interactive shell - tables: ";
  for (const auto& t : db.catalog().table_names()) std::cout << t << " ";
  std::cout << "\ncommands: \\explain <sql>  \\profile "
               "<ysmart|hive|pig|mrshare|hand>  \\tables  \\quit\n";

  std::string line;
  while (std::cout << "ysmart> " << std::flush, std::getline(std::cin, line)) {
    // Trim.
    const auto a = line.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    const auto b = line.find_last_not_of(" \t;");
    line = line.substr(a, b - a + 1);
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream iss(line.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "tables") {
        for (const auto& t : db.catalog().table_names())
          std::cout << "  " << t << "  "
                    << db.catalog().schema_of(t).to_string() << "\n";
        continue;
      }
      if (cmd == "profile") {
        std::string name;
        iss >> name;
        profile = profile_by_name(name);
        std::cout << "profile: " << profile.name << "\n";
        continue;
      }
      if (cmd == "explain") {
        std::string rest;
        std::getline(iss, rest);
        run_sql(db, profile, rest, /*explain_only=*/true);
        continue;
      }
      if (cmd == "dot") {
        std::string rest;
        std::getline(iss, rest);
        try {
          std::cout << db.translate_query(rest, profile).to_dot();
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "load") {
        std::string name, path;
        iss >> name >> path;
        try {
          auto t = read_csv_file_infer(path);
          db.create_table(name, t);
          std::cout << "loaded " << t->row_count() << " rows into " << name
                    << " " << t->schema().to_string() << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      if (cmd == "save") {
        std::string path, rest;
        iss >> path;
        std::getline(iss, rest);
        try {
          auto run = db.run(rest, profile);
          if (run.metrics.failed()) {
            std::cout << "query DNF: " << run.metrics.fail_reason() << "\n";
            continue;
          }
          write_csv_file(*run.result, path);
          std::cout << "wrote " << run.result->row_count() << " rows to "
                    << path << "\n";
        } catch (const Error& e) {
          std::cout << e.what() << "\n";
        }
        continue;
      }
      std::cout << "unknown command: " << cmd << "\n";
      continue;
    }
    run_sql(db, profile, line, /*explain_only=*/false);
  }
  return 0;
}
