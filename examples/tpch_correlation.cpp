// TPC-H decision-support workload: runs the paper's three flattened
// TPC-H queries (Q17/Q18/Q21) through every translator profile and
// prints job counts, shared-scan savings, and simulated times — the
// Section VII-D comparison in miniature, including the "ideal parallel
// DBMS" (PostgreSQL stand-in).
#include <iostream>

#include "api/database.h"
#include "common/strings.h"
#include "data/queries.h"
#include "data/tpch_gen.h"

int main() {
  using namespace ysmart;

  Database db(ClusterConfig::small_local(/*sim_scale=*/300));
  TpchConfig cfg;
  cfg.orders = 8000;
  auto data = generate_tpch(cfg);
  db.create_table("lineitem", data.lineitem);
  db.create_table("orders", data.orders);
  db.create_table("part", data.part);
  db.create_table("customer", data.customer);
  db.create_table("supplier", data.supplier);
  db.create_table("nation", data.nation);

  std::cout << strf("lineitem: %zu rows (%0.1f MB in-memory)\n\n",
                    data.lineitem->row_count(),
                    data.lineitem->byte_size() / 1048576.0);

  for (const auto* q : {&queries::q17(), &queries::q18(), &queries::q21()}) {
    std::cout << "==== " << q->id << " ====\n";
    std::cout << strf("%-10s %5s %12s %14s %14s\n", "system", "jobs",
                      "time (s)", "map input MB", "shuffle MB");
    double hive_time = 0;
    for (const auto& profile :
         {TranslatorProfile::ysmart(), TranslatorProfile::hive(),
          TranslatorProfile::pig()}) {
      auto run = db.run(q->sql, profile);
      if (profile.name == "hive") hive_time = run.metrics.total_time_s();
      std::cout << strf(
          "%-10s %5d %12.1f %14.1f %14.1f\n", profile.name.c_str(),
          run.metrics.job_count(), run.metrics.total_time_s(),
          run.metrics.total_map_input_bytes() * db.cluster().sim_scale / 1048576.0,
          run.metrics.total_shuffle_bytes() * db.cluster().sim_scale / 1048576.0);
    }
    DbmsCostConfig dbms;
    dbms.sim_scale = db.cluster().sim_scale;
    auto pg = db.run_dbms(q->sql, dbms);
    std::cout << strf("%-10s %5s %12.1f\n", "pgsql*4", "-", pg.sim_seconds);
    auto ys = db.run(q->sql, TranslatorProfile::ysmart());
    std::cout << strf("ysmart speedup over hive: %.0f%%\n\n",
                      100.0 * hive_time / ys.metrics.total_time_s());
  }
  return 0;
}
