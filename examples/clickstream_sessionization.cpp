// Click-stream analysis: the paper's motivating workload (Section I).
//
// Runs Q-CSA — "what is the average number of pages a user visits between
// a page in category X and a page in category Y?" — and shows how YSmart
// collapses the six-operation plan (two self-join instances + four
// aggregations/joins) into two MapReduce jobs while Hive-style
// translation needs six.
#include <iostream>

#include "api/database.h"
#include "common/strings.h"
#include "data/clicks_gen.h"
#include "data/queries.h"

int main() {
  using namespace ysmart;

  Database db(ClusterConfig::small_local(/*sim_scale=*/500));
  ClicksConfig cfg;
  cfg.users = 3000;
  cfg.mean_clicks_per_user = 40;
  db.create_table("clicks", generate_clicks(cfg));

  const auto& q = queries::qcsa();
  std::cout << "Q-CSA (Fig. 1 of the paper):\n" << q.sql << "\n";

  std::cout << db.explain(q.sql, TranslatorProfile::ysmart());

  std::cout << "\n--- execution ---\n";
  for (const auto& profile :
       {TranslatorProfile::ysmart(), TranslatorProfile::hive(),
        TranslatorProfile::pig()}) {
    auto run = db.run(q.sql, profile);
    std::cout << strf("%-8s %2d jobs  %8.1f simulated s   result: %s\n",
                      profile.name.c_str(), run.metrics.job_count(),
                      run.metrics.total_time_s(),
                      run.result->row_count()
                          ? run.result->rows()[0][0].to_string().c_str()
                          : "(empty)");
  }

  std::cout << "\nper-job breakdown (ysmart):\n";
  std::cout << db.run(q.sql, TranslatorProfile::ysmart()).metrics.breakdown();
  return 0;
}
