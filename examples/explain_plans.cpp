// Explain tool: prints the plan tree, the detected intra-query
// correlations (partition keys, IC/TC/JFC pairs), and the generated job
// structures for every paper query, side by side for YSmart and the
// one-operation-per-job baseline. Reproduces the paper's Fig. 5 / Fig. 6
// narrative in text form.
//
// Usage: explain_plans [query-id]  (default: all of Q17 Q18 Q21 Q-CSA Q-AGG)
#include <iostream>
#include <string>

#include "api/database.h"
#include "data/clicks_gen.h"
#include "data/queries.h"
#include "data/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace ysmart;

  Database db(ClusterConfig::small_local(1.0));
  TpchConfig tiny;
  tiny.orders = 50;
  tiny.parts = 20;
  tiny.customers = 10;
  tiny.suppliers = 5;
  auto d = generate_tpch(tiny);
  db.create_table("lineitem", d.lineitem);
  db.create_table("orders", d.orders);
  db.create_table("part", d.part);
  db.create_table("customer", d.customer);
  db.create_table("supplier", d.supplier);
  db.create_table("nation", d.nation);
  ClicksConfig cc;
  cc.users = 20;
  db.create_table("clicks", generate_clicks(cc));

  const std::string wanted = argc > 1 ? argv[1] : "";
  for (const auto* q : queries::all()) {
    if (!wanted.empty() && q->id != wanted) continue;
    std::cout << "################ " << q->id << " ################\n";
    std::cout << db.explain(q->sql, TranslatorProfile::ysmart());
    std::cout << "== jobs (one-operation-per-job baseline) ==\n";
    auto baseline = db.translate_query(q->sql, TranslatorProfile::hive());
    std::cout << baseline.describe() << "\n";
  }
  return 0;
}
