// Quickstart: load a table, run a query with YSmart and with a
// Hive-style one-operation-per-job translation, and compare.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's three core calls: create_table(),
// explain(), and run().
#include <iostream>

#include "api/database.h"
#include "data/clicks_gen.h"

int main() {
  using namespace ysmart;

  // A simulated 2-node cluster where every in-memory byte stands for 100
  // bytes of the modeled full-size data set.
  Database db(ClusterConfig::small_local(/*sim_scale=*/100));

  // Generate a deterministic click-stream table and register it.
  ClicksConfig cfg;
  cfg.users = 2000;
  cfg.mean_clicks_per_user = 30;
  db.create_table("clicks", generate_clicks(cfg));

  const std::string sql =
      "SELECT cid, count(*) AS clicks_count FROM clicks GROUP BY cid "
      "ORDER BY clicks_count DESC LIMIT 5";

  // 1. Explain: plan tree, detected correlations, generated jobs.
  std::cout << db.explain(sql, TranslatorProfile::ysmart()) << "\n";

  // 2. Execute on the simulated MapReduce cluster.
  auto ysmart_run = db.run(sql, TranslatorProfile::ysmart());
  std::cout << "top categories:\n" << ysmart_run.result->to_string() << "\n";
  std::cout << "ysmart: " << ysmart_run.metrics.job_count() << " job(s), "
            << ysmart_run.metrics.total_time_s() << " simulated seconds\n";
  std::cout << ysmart_run.metrics.breakdown() << "\n";

  // 3. The same query through a one-operation-per-job translation.
  auto hive_run = db.run(sql, TranslatorProfile::hive());
  std::cout << "hive-style: " << hive_run.metrics.job_count() << " job(s), "
            << hive_run.metrics.total_time_s() << " simulated seconds\n";

  // 4. Sanity: both executions agree with the reference engine.
  Table expected = db.run_reference(sql);
  std::cout << "results match reference: "
            << (same_rows_unordered(expected, *ysmart_run.result) &&
                        same_rows_unordered(expected, *hive_run.result)
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
