# Empty compiler generated dependencies file for clickstream_sessionization.
# This may be replaced when dependencies are built.
