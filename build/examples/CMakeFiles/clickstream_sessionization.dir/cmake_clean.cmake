file(REMOVE_RECURSE
  "CMakeFiles/clickstream_sessionization.dir/clickstream_sessionization.cpp.o"
  "CMakeFiles/clickstream_sessionization.dir/clickstream_sessionization.cpp.o.d"
  "clickstream_sessionization"
  "clickstream_sessionization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_sessionization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
