file(REMOVE_RECURSE
  "CMakeFiles/ysmart_shell.dir/ysmart_shell.cpp.o"
  "CMakeFiles/ysmart_shell.dir/ysmart_shell.cpp.o.d"
  "ysmart_shell"
  "ysmart_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ysmart_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
