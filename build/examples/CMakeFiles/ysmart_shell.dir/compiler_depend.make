# Empty compiler generated dependencies file for ysmart_shell.
# This may be replaced when dependencies are built.
