file(REMOVE_RECURSE
  "CMakeFiles/tpch_correlation.dir/tpch_correlation.cpp.o"
  "CMakeFiles/tpch_correlation.dir/tpch_correlation.cpp.o.d"
  "tpch_correlation"
  "tpch_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
