# Empty compiler generated dependencies file for tpch_correlation.
# This may be replaced when dependencies are built.
