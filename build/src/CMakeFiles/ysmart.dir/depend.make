# Empty dependencies file for ysmart.
# This may be replaced when dependencies are built.
