file(REMOVE_RECURSE
  "libysmart.a"
)
