
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/database.cpp" "src/CMakeFiles/ysmart.dir/api/database.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/api/database.cpp.o.d"
  "/root/repo/src/cmf/common_job.cpp" "src/CMakeFiles/ysmart.dir/cmf/common_job.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/cmf/common_job.cpp.o.d"
  "/root/repo/src/cmf/tags.cpp" "src/CMakeFiles/ysmart.dir/cmf/tags.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/cmf/tags.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/ysmart.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/ysmart.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/schema.cpp" "src/CMakeFiles/ysmart.dir/common/schema.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/schema.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/ysmart.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/ysmart.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/value.cpp" "src/CMakeFiles/ysmart.dir/common/value.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/common/value.cpp.o.d"
  "/root/repo/src/data/clicks_gen.cpp" "src/CMakeFiles/ysmart.dir/data/clicks_gen.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/data/clicks_gen.cpp.o.d"
  "/root/repo/src/data/queries.cpp" "src/CMakeFiles/ysmart.dir/data/queries.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/data/queries.cpp.o.d"
  "/root/repo/src/data/tpch_gen.cpp" "src/CMakeFiles/ysmart.dir/data/tpch_gen.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/data/tpch_gen.cpp.o.d"
  "/root/repo/src/exec/aggregates.cpp" "src/CMakeFiles/ysmart.dir/exec/aggregates.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/exec/aggregates.cpp.o.d"
  "/root/repo/src/exec/expr_eval.cpp" "src/CMakeFiles/ysmart.dir/exec/expr_eval.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/exec/expr_eval.cpp.o.d"
  "/root/repo/src/exec/operators.cpp" "src/CMakeFiles/ysmart.dir/exec/operators.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/exec/operators.cpp.o.d"
  "/root/repo/src/mr/cluster.cpp" "src/CMakeFiles/ysmart.dir/mr/cluster.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/cluster.cpp.o.d"
  "/root/repo/src/mr/cost_model.cpp" "src/CMakeFiles/ysmart.dir/mr/cost_model.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/cost_model.cpp.o.d"
  "/root/repo/src/mr/engine.cpp" "src/CMakeFiles/ysmart.dir/mr/engine.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/engine.cpp.o.d"
  "/root/repo/src/mr/job.cpp" "src/CMakeFiles/ysmart.dir/mr/job.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/job.cpp.o.d"
  "/root/repo/src/mr/keyvalue.cpp" "src/CMakeFiles/ysmart.dir/mr/keyvalue.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/keyvalue.cpp.o.d"
  "/root/repo/src/mr/metrics.cpp" "src/CMakeFiles/ysmart.dir/mr/metrics.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/mr/metrics.cpp.o.d"
  "/root/repo/src/plan/builder.cpp" "src/CMakeFiles/ysmart.dir/plan/builder.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/plan/builder.cpp.o.d"
  "/root/repo/src/plan/partition_key.cpp" "src/CMakeFiles/ysmart.dir/plan/partition_key.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/plan/partition_key.cpp.o.d"
  "/root/repo/src/plan/plan.cpp" "src/CMakeFiles/ysmart.dir/plan/plan.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/plan/plan.cpp.o.d"
  "/root/repo/src/plan/printer.cpp" "src/CMakeFiles/ysmart.dir/plan/printer.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/plan/printer.cpp.o.d"
  "/root/repo/src/plan/prune.cpp" "src/CMakeFiles/ysmart.dir/plan/prune.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/plan/prune.cpp.o.d"
  "/root/repo/src/refdb/refdb.cpp" "src/CMakeFiles/ysmart.dir/refdb/refdb.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/refdb/refdb.cpp.o.d"
  "/root/repo/src/sql/ast.cpp" "src/CMakeFiles/ysmart.dir/sql/ast.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/sql/ast.cpp.o.d"
  "/root/repo/src/sql/lexer.cpp" "src/CMakeFiles/ysmart.dir/sql/lexer.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/sql/lexer.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/CMakeFiles/ysmart.dir/sql/parser.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/sql/parser.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/ysmart.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/stats/stats.cpp.o.d"
  "/root/repo/src/storage/catalog.cpp" "src/CMakeFiles/ysmart.dir/storage/catalog.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/storage/catalog.cpp.o.d"
  "/root/repo/src/storage/csv.cpp" "src/CMakeFiles/ysmart.dir/storage/csv.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/storage/csv.cpp.o.d"
  "/root/repo/src/storage/dfs.cpp" "src/CMakeFiles/ysmart.dir/storage/dfs.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/storage/dfs.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "src/CMakeFiles/ysmart.dir/storage/table.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/storage/table.cpp.o.d"
  "/root/repo/src/translator/baseline.cpp" "src/CMakeFiles/ysmart.dir/translator/baseline.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/baseline.cpp.o.d"
  "/root/repo/src/translator/correlation.cpp" "src/CMakeFiles/ysmart.dir/translator/correlation.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/correlation.cpp.o.d"
  "/root/repo/src/translator/dag_executor.cpp" "src/CMakeFiles/ysmart.dir/translator/dag_executor.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/dag_executor.cpp.o.d"
  "/root/repo/src/translator/jobspec.cpp" "src/CMakeFiles/ysmart.dir/translator/jobspec.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/jobspec.cpp.o.d"
  "/root/repo/src/translator/lowering.cpp" "src/CMakeFiles/ysmart.dir/translator/lowering.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/lowering.cpp.o.d"
  "/root/repo/src/translator/ysmart_translator.cpp" "src/CMakeFiles/ysmart.dir/translator/ysmart_translator.cpp.o" "gcc" "src/CMakeFiles/ysmart.dir/translator/ysmart_translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
