# Empty dependencies file for test_cluster_presets_e2e.
# This may be replaced when dependencies are built.
