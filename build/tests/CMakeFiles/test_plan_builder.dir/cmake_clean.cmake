file(REMOVE_RECURSE
  "CMakeFiles/test_plan_builder.dir/test_plan_builder.cpp.o"
  "CMakeFiles/test_plan_builder.dir/test_plan_builder.cpp.o.d"
  "test_plan_builder"
  "test_plan_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
