# Empty dependencies file for test_database_api.
# This may be replaced when dependencies are built.
