file(REMOVE_RECURSE
  "CMakeFiles/test_database_api.dir/test_database_api.cpp.o"
  "CMakeFiles/test_database_api.dir/test_database_api.cpp.o.d"
  "test_database_api"
  "test_database_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
