file(REMOVE_RECURSE
  "CMakeFiles/test_semantics_subset.dir/test_semantics_subset.cpp.o"
  "CMakeFiles/test_semantics_subset.dir/test_semantics_subset.cpp.o.d"
  "test_semantics_subset"
  "test_semantics_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantics_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
