file(REMOVE_RECURSE
  "CMakeFiles/test_cmf.dir/test_cmf.cpp.o"
  "CMakeFiles/test_cmf.dir/test_cmf.cpp.o.d"
  "test_cmf"
  "test_cmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
