# Empty compiler generated dependencies file for test_cmf.
# This may be replaced when dependencies are built.
