file(REMOVE_RECURSE
  "CMakeFiles/test_expr_eval.dir/test_expr_eval.cpp.o"
  "CMakeFiles/test_expr_eval.dir/test_expr_eval.cpp.o.d"
  "test_expr_eval"
  "test_expr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
