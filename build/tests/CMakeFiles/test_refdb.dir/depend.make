# Empty dependencies file for test_refdb.
# This may be replaced when dependencies are built.
