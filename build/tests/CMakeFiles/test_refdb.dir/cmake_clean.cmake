file(REMOVE_RECURSE
  "CMakeFiles/test_refdb.dir/test_refdb.cpp.o"
  "CMakeFiles/test_refdb.dir/test_refdb.cpp.o.d"
  "test_refdb"
  "test_refdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
