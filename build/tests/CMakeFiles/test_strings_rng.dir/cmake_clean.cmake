file(REMOVE_RECURSE
  "CMakeFiles/test_strings_rng.dir/test_strings_rng.cpp.o"
  "CMakeFiles/test_strings_rng.dir/test_strings_rng.cpp.o.d"
  "test_strings_rng"
  "test_strings_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strings_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
