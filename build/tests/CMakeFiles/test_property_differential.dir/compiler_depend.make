# Empty compiler generated dependencies file for test_property_differential.
# This may be replaced when dependencies are built.
