file(REMOVE_RECURSE
  "CMakeFiles/test_property_differential.dir/test_property_differential.cpp.o"
  "CMakeFiles/test_property_differential.dir/test_property_differential.cpp.o.d"
  "test_property_differential"
  "test_property_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
