file(REMOVE_RECURSE
  "CMakeFiles/test_partition_key.dir/test_partition_key.cpp.o"
  "CMakeFiles/test_partition_key.dir/test_partition_key.cpp.o.d"
  "test_partition_key"
  "test_partition_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
