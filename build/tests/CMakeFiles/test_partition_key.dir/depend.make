# Empty dependencies file for test_partition_key.
# This may be replaced when dependencies are built.
