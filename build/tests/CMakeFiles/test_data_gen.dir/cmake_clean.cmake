file(REMOVE_RECURSE
  "CMakeFiles/test_data_gen.dir/test_data_gen.cpp.o"
  "CMakeFiles/test_data_gen.dir/test_data_gen.cpp.o.d"
  "test_data_gen"
  "test_data_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
