# Empty dependencies file for test_data_gen.
# This may be replaced when dependencies are built.
