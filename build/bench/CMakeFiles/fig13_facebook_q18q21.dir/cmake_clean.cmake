file(REMOVE_RECURSE
  "CMakeFiles/fig13_facebook_q18q21.dir/fig13_facebook_q18q21.cpp.o"
  "CMakeFiles/fig13_facebook_q18q21.dir/fig13_facebook_q18q21.cpp.o.d"
  "fig13_facebook_q18q21"
  "fig13_facebook_q18q21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_facebook_q18q21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
