# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13_facebook_q18q21.
