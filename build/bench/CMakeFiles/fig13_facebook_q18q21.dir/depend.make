# Empty dependencies file for fig13_facebook_q18q21.
# This may be replaced when dependencies are built.
