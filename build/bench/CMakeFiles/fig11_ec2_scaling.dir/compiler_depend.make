# Empty compiler generated dependencies file for fig11_ec2_scaling.
# This may be replaced when dependencies are built.
