file(REMOVE_RECURSE
  "CMakeFiles/fig02_gap.dir/fig02_gap.cpp.o"
  "CMakeFiles/fig02_gap.dir/fig02_gap.cpp.o.d"
  "fig02_gap"
  "fig02_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
