# Empty compiler generated dependencies file for fig12_facebook_q17.
# This may be replaced when dependencies are built.
