file(REMOVE_RECURSE
  "CMakeFiles/fig12_facebook_q17.dir/fig12_facebook_q17.cpp.o"
  "CMakeFiles/fig12_facebook_q17.dir/fig12_facebook_q17.cpp.o.d"
  "fig12_facebook_q17"
  "fig12_facebook_q17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_facebook_q17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
