# Empty dependencies file for ablation_tags.
# This may be replaced when dependencies are built.
