file(REMOVE_RECURSE
  "CMakeFiles/ablation_tags.dir/ablation_tags.cpp.o"
  "CMakeFiles/ablation_tags.dir/ablation_tags.cpp.o.d"
  "ablation_tags"
  "ablation_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
