file(REMOVE_RECURSE
  "CMakeFiles/fig10_small_cluster.dir/fig10_small_cluster.cpp.o"
  "CMakeFiles/fig10_small_cluster.dir/fig10_small_cluster.cpp.o.d"
  "fig10_small_cluster"
  "fig10_small_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_small_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
