# Empty dependencies file for fig10_small_cluster.
# This may be replaced when dependencies are built.
