# Empty compiler generated dependencies file for fig09_q21_breakdown.
# This may be replaced when dependencies are built.
