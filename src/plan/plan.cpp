#include "plan/plan.h"

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

std::string AggCall::to_string() const {
  std::string s = func + "(";
  if (distinct) s += "distinct ";
  if (star) s += "*";
  if (arg) s += arg->to_string();
  return s + ")";
}

Schema PlanNode::agg_internal_schema() const {
  check(kind == PlanKind::Agg, "agg_internal_schema on non-Agg node");
  Schema s;
  check(children.size() == 1, "Agg must have one child");
  const Schema& in = children[0]->output_schema;
  for (const auto& g : group_cols) {
    const auto idx = in.index_of(g);
    s.add(in.at(idx).name, in.at(idx).type);
  }
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    // count* -> Int; min/max keep arg type loosely as Double unless we can
    // tell it is Int; sum/avg -> Double. Types are advisory only (Values
    // carry their own types at runtime).
    ValueType t = ValueType::Double;
    if (aggs[i].func == "count") t = ValueType::Int;
    s.add("$agg" + std::to_string(i), t);
  }
  return s;
}

std::set<std::string> PlanNode::input_relations() const {
  std::set<std::string> out;
  if (kind == PlanKind::Scan) {
    out.insert(table);
    return out;
  }
  for (const auto& c : children) {
    auto sub = c->input_relations();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

const Lineage& PlanNode::lineage_of(const std::string& name) const {
  static const Lineage kEmpty;
  auto idx = output_schema.find(name);
  if (!idx) return kEmpty;
  return output_lineage.at(*idx);
}

std::string PlanNode::to_string() const {
  switch (kind) {
    case PlanKind::Scan: {
      std::string s = "SCAN(" + table;
      if (alias != table && !alias.empty()) s += " AS " + alias;
      if (filter) s += ", filter=" + filter->to_string();
      return s + ")";
    }
    case PlanKind::SP: {
      std::string s = label + " SP(";
      if (filter) s += "filter=" + filter->to_string();
      return s + ")";
    }
    case PlanKind::Join: {
      std::string s = label + " " +
                      std::string(join_type == JoinType::Inner  ? "JOIN"
                                  : join_type == JoinType::Left ? "LEFT OUTER JOIN"
                                  : join_type == JoinType::Right
                                      ? "RIGHT OUTER JOIN"
                                      : "FULL OUTER JOIN") +
                      "(on ";
      for (std::size_t i = 0; i < left_keys.size(); ++i) {
        if (i) s += " and ";
        s += left_keys[i] + "=" + right_keys[i];
      }
      if (filter) s += ", residual=" + filter->to_string();
      return s + ")";
    }
    case PlanKind::Agg: {
      std::string s = label + " AGG(group by " + join(group_cols, ",");
      s += "; ";
      for (std::size_t i = 0; i < aggs.size(); ++i) {
        if (i) s += ", ";
        s += aggs[i].to_string();
      }
      return s + ")";
    }
    case PlanKind::Sort: {
      std::string s = label + " SORT(";
      for (std::size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) s += ", ";
        s += sort_keys[i].expr->to_string();
        if (sort_keys[i].desc) s += " desc";
      }
      if (limit) s += " limit " + std::to_string(*limit);
      return s + ")";
    }
  }
  return "?";
}

namespace {
void walk(const PlanPtr& node, std::vector<PlanNode*>& out, bool ops_only) {
  for (const auto& c : node->children) walk(c, out, ops_only);
  if (!ops_only || node->is_operation()) out.push_back(node.get());
}
}  // namespace

std::vector<PlanNode*> post_order_operations(const PlanPtr& root) {
  std::vector<PlanNode*> out;
  walk(root, out, /*ops_only=*/true);
  return out;
}

std::vector<PlanNode*> post_order_all(const PlanPtr& root) {
  std::vector<PlanNode*> out;
  walk(root, out, /*ops_only=*/false);
  return out;
}

}  // namespace ysmart
