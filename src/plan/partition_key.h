// Partition keys (Section IV-A of the paper).
//
// Every operation node executed by MapReduce partitions its map output by
// some key; YSmart's correlations are defined over those keys. A
// PartitionKey here is a set of key columns, each represented by its
// *alias class*: the set of base-table columns it may stand for. The two
// sides of an equi-join predicate form one class (paper footnote 3:
// "the columns in the two sides of the equi-join predicate ... are just
// aliases of the same partition key").
//
//   join  PK  = the equi-join column classes
//   agg   PK  = any non-empty subset of the grouping columns; YSmart picks
//               the candidate that connects the most correlations
//               (Section IV-A's heuristic)
//   sort  PK  = none (SORT jobs use range/single-reducer ordering)
#pragma once

#include <string>
#include <vector>

#include "plan/plan.h"

namespace ysmart {

struct PartitionKey {
  /// One alias class per key column, canonically sorted.
  std::vector<Lineage> parts;

  /// Column names (in the node's child/base schema) the map phase must
  /// extract to build this key, positionally parallel to `parts`.
  std::vector<std::string> columns;

  bool empty() const { return parts.empty(); }

  /// True if the two keys partition data identically: same arity and the
  /// alias classes can be perfectly matched so every pair intersects.
  bool matches(const PartitionKey& other) const;

  std::string to_string() const;
};

/// PK of a Join node (throws if called on another kind).
PartitionKey join_partition_key(const PlanNode& join);

/// All candidate PKs of an Agg node: every non-empty subset of grouping
/// columns when there are at most kMaxEnumeratedGroupCols of them,
/// otherwise each single column plus the full set. Candidates whose
/// columns have no base-table lineage (purely computed) are kept too —
/// they simply will not match anything.
std::vector<PartitionKey> agg_partition_key_candidates(const PlanNode& agg);

/// The default (non-correlation-aware) PK of an Agg: all group columns.
/// This is what a one-operation-to-one-job translation uses.
PartitionKey agg_full_partition_key(const PlanNode& agg);

}  // namespace ysmart
