#include "plan/builder.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "sql/parser.h"

namespace ysmart {

namespace {

void split_and(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (!e) return;
  if (e->kind == ExprKind::Binary && e->op == "and") {
    split_and(e->args[0], out);
    split_and(e->args[1], out);
    return;
  }
  out.push_back(e);
}

ExprPtr conjoin(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return Expr::make_binary("and", std::move(a), std::move(b));
}

void collect_column_refs(const ExprPtr& e, std::vector<std::string>& out) {
  if (!e) return;
  if (e->kind == ExprKind::ColumnRef) out.push_back(e->column);
  for (const auto& a : e->args) collect_column_refs(a, out);
}

/// True if every column reference in `e` resolves in `schema`.
bool resolvable_in(const ExprPtr& e, const Schema& schema) {
  std::vector<std::string> refs;
  collect_column_refs(e, refs);
  for (const auto& r : refs) {
    try {
      if (!schema.find(r)) return false;
    } catch (const PlanError&) {
      return false;  // ambiguous within this schema
    }
  }
  return true;
}

/// Deep copy an expression tree.
ExprPtr clone(const ExprPtr& e) {
  if (!e) return nullptr;
  auto c = std::make_shared<Expr>(*e);
  for (auto& a : c->args) a = clone(a);
  return c;
}

class Builder {
 public:
  explicit Builder(const Catalog& catalog) : catalog_(catalog) {}

  PlanPtr build(const SelectStmt& stmt_in) {
    SelectStmt s = stmt_in;  // local copy so SELECT * can be expanded

    // ---- 1. sources ----
    std::vector<PlanPtr> sources;
    for (const auto& ref : s.from) {
      if (ref.is_subquery()) {
        PlanPtr sub = build(*ref.subquery);
        if (ref.alias.empty())
          throw PlanError("derived table requires an alias");
        sub->output_schema = sub->output_schema.qualified(ref.alias);
        sources.push_back(std::move(sub));
      } else {
        sources.push_back(make_scan(ref));
      }
    }
    check(!sources.empty(), "SELECT without FROM is not supported");

    // Expand SELECT * into explicit column items (keeping the sources'
    // qualified names, so self-joined instances stay distinguishable).
    {
      std::vector<SelectItem> expanded;
      for (const auto& item : s.items) {
        if (!item.star) {
          expanded.push_back(item);
          continue;
        }
        for (const auto& src : sources)
          for (const auto& col : src->output_schema.columns())
            expanded.push_back(
                SelectItem{Expr::make_column(col.name), col.name, false});
      }
      s.items = std::move(expanded);
    }

    // ---- 2. predicate conjuncts ----
    std::vector<ExprPtr> conjuncts;
    split_and(s.where, conjuncts);

    const bool has_outer_join =
        std::any_of(s.from.begin(), s.from.end(), [](const TableRef& r) {
          return r.join == JoinType::Left || r.join == JoinType::Right ||
                 r.join == JoinType::Full;
        });

    // ---- 3. push single-source conjuncts down ----
    // Pushed only into base-table scans ("selection executed by the job
    // itself", Section V-A): a predicate on a derived table stays a join
    // residual so it does not break the job-flow-correlation chain with
    // an SP node. With outer joins present WHERE semantics require
    // post-join evaluation, so nothing is pushed at all.
    if (!has_outer_join) {
      std::vector<ExprPtr> rest;
      for (auto& c : conjuncts) {
        int owner = -1;
        int owners = 0;
        for (std::size_t i = 0; i < sources.size(); ++i) {
          if (resolvable_in(c, sources[i]->output_schema)) {
            ++owners;
            owner = static_cast<int>(i);
          }
        }
        if (owners == 1 &&
            (sources[static_cast<std::size_t>(owner)]->kind == PlanKind::Scan ||
             sources.size() == 1)) {
          attach_filter(sources[static_cast<std::size_t>(owner)], c);
        } else {
          rest.push_back(c);
        }
      }
      conjuncts = std::move(rest);
    }

    // ---- 4. join sources left to right ----
    PlanPtr cur = sources[0];
    for (std::size_t i = 1; i < sources.size(); ++i) {
      std::vector<ExprPtr> here;
      here.insert(here.end(), conjuncts.begin(), conjuncts.end());
      conjuncts.clear();
      std::vector<ExprPtr> on_conjuncts;
      split_and(s.from[i].join_cond, on_conjuncts);
      here.insert(here.end(), on_conjuncts.begin(), on_conjuncts.end());

      const Schema combined =
          Schema::concat(cur->output_schema, sources[i]->output_schema);
      std::vector<ExprPtr> usable, deferred;
      for (auto& c : here) {
        if (resolvable_in(c, combined))
          usable.push_back(c);
        else
          deferred.push_back(c);
      }
      conjuncts = std::move(deferred);
      cur = make_join(cur, sources[i], usable,
                      s.from[i].join == JoinType::None ? JoinType::Inner
                                                       : s.from[i].join);
    }
    if (!conjuncts.empty()) {
      // Leftover predicates on a single (non-join) source: wrap in SP.
      if (sources.size() == 1) {
        ExprPtr all;
        for (auto& c : conjuncts) all = conjoin(all, c);
        cur = make_sp(cur, all);
      } else {
        throw PlanError("unresolvable WHERE predicate: " +
                        conjuncts[0]->to_string());
      }
    }

    // ---- 5. aggregation or plain projection ----
    const bool has_agg =
        !s.group_by.empty() || s.having != nullptr ||
        std::any_of(s.items.begin(), s.items.end(), [](const SelectItem& it) {
          return contains_aggregate(*it.expr);
        });
    if (has_agg) {
      cur = make_agg(cur, s);
    } else {
      apply_projections(cur, s);
    }

    // ---- 6. ORDER BY / LIMIT ----
    if (!s.order_by.empty() || s.limit) {
      auto sort = std::make_shared<PlanNode>();
      sort->kind = PlanKind::Sort;
      sort->children = {cur};
      for (const auto& o : s.order_by) {
        ExprPtr key = o.expr;
        // ORDER BY may name select aliases; they are already output names.
        sort->sort_keys.push_back(SortKey{key, o.desc});
      }
      sort->limit = s.limit;
      sort->output_schema = cur->output_schema;
      sort->output_lineage = cur->output_lineage;
      cur = std::move(sort);
    }
    return cur;
  }

  /// Assign JOINn / AGGn / SORTn / SPn labels in post-order, matching the
  /// paper's plan-tree figures.
  void assign_labels(const PlanPtr& root) {
    int joins = 0, aggs = 0, sorts = 0, sps = 0;
    for (PlanNode* n : post_order_operations(root)) {
      switch (n->kind) {
        case PlanKind::Join:
          n->label = (n->join_type == JoinType::Inner ? "JOIN" : "OUTER_JOIN") +
                     std::to_string(++joins);
          break;
        case PlanKind::Agg:
          n->label = "AGG" + std::to_string(++aggs);
          break;
        case PlanKind::Sort:
          n->label = "SORT" + std::to_string(++sorts);
          break;
        case PlanKind::SP:
          n->label = "SP" + std::to_string(++sps);
          break;
        case PlanKind::Scan:
          break;
      }
    }
  }

 private:
  PlanPtr make_scan(const TableRef& ref) {
    auto scan = std::make_shared<PlanNode>();
    scan->kind = PlanKind::Scan;
    scan->table = to_lower(ref.table);
    scan->alias = to_lower(ref.alias.empty() ? ref.table : ref.alias);
    const Schema& base = catalog_.schema_of(scan->table);
    scan->output_schema = base.qualified(scan->alias);
    for (const auto& c : base.columns())
      scan->output_lineage.push_back(Lineage{ColumnId{scan->table, c.name}});
    return scan;
  }

  PlanPtr make_sp(PlanPtr child, ExprPtr filter) {
    auto sp = std::make_shared<PlanNode>();
    sp->kind = PlanKind::SP;
    sp->filter = std::move(filter);
    sp->output_schema = child->output_schema;
    sp->output_lineage = child->output_lineage;
    sp->children = {std::move(child)};
    return sp;
  }

  void attach_filter(PlanPtr& node, const ExprPtr& pred) {
    if (node->kind == PlanKind::Scan) {
      node->filter = conjoin(node->filter, pred);
    } else {
      // Filter over a derived table's output: wrap in SP (post-filter).
      node = make_sp(node, pred);
    }
  }

  PlanPtr make_join(PlanPtr left, PlanPtr right, std::vector<ExprPtr> preds,
                    JoinType jt) {
    auto join = std::make_shared<PlanNode>();
    join->kind = PlanKind::Join;
    join->join_type = jt;

    // Split predicates into equi-keys (col = col across the two inputs)
    // and residual.
    ExprPtr residual;
    for (auto& p : preds) {
      bool is_key = false;
      if (p->kind == ExprKind::Binary && p->op == "=" &&
          p->args[0]->kind == ExprKind::ColumnRef &&
          p->args[1]->kind == ExprKind::ColumnRef) {
        const std::string& a = p->args[0]->column;
        const std::string& b = p->args[1]->column;
        const bool a_left = resolvable_in(p->args[0], left->output_schema);
        const bool a_right = resolvable_in(p->args[0], right->output_schema);
        const bool b_left = resolvable_in(p->args[1], left->output_schema);
        const bool b_right = resolvable_in(p->args[1], right->output_schema);
        if (a_left && !a_right && b_right && !b_left) {
          join->left_keys.push_back(a);
          join->right_keys.push_back(b);
          is_key = true;
        } else if (b_left && !b_right && a_right && !a_left) {
          join->left_keys.push_back(b);
          join->right_keys.push_back(a);
          is_key = true;
        }
      }
      if (!is_key) residual = conjoin(residual, p);
    }
    if (join->left_keys.empty())
      throw PlanError("join has no equi-join key (cross/theta joins are "
                      "not supported by the MapReduce JOIN job)");
    join->filter = std::move(residual);

    join->output_schema =
        Schema::concat(left->output_schema, right->output_schema);
    join->output_lineage = left->output_lineage;
    join->output_lineage.insert(join->output_lineage.end(),
                                right->output_lineage.begin(),
                                right->output_lineage.end());
    // Union the alias classes of each equi-key pair so both sides carry
    // the combined lineage (they are "aliases of the same key").
    for (std::size_t i = 0; i < join->left_keys.size(); ++i) {
      const auto li = left->output_schema.index_of(join->left_keys[i]);
      const auto ri = right->output_schema.index_of(join->right_keys[i]);
      Lineage merged = join->output_lineage[li];
      const Lineage& rl = join->output_lineage[left->output_schema.size() + ri];
      merged.insert(rl.begin(), rl.end());
      join->output_lineage[li] = merged;
      join->output_lineage[left->output_schema.size() + ri] = merged;
    }
    join->children = {std::move(left), std::move(right)};
    return join;
  }

  PlanPtr make_agg(PlanPtr child, const SelectStmt& s) {
    auto agg = std::make_shared<PlanNode>();
    agg->kind = PlanKind::Agg;

    // Resolve GROUP BY entries: plain child columns, or select aliases of
    // plain child columns.
    for (const auto& g : s.group_by) {
      ExprPtr e = g;
      if (e->kind == ExprKind::ColumnRef && !child->output_schema.find(e->column)) {
        // Try select-list aliases (e.g. GROUP BY ts1 for "c1.ts AS ts1").
        for (const auto& item : s.items) {
          if (to_lower(item.alias) == e->column) {
            e = item.expr;
            break;
          }
        }
      }
      if (e->kind != ExprKind::ColumnRef)
        throw PlanError("GROUP BY expression must be a column: " +
                        g->to_string());
      const auto idx = child->output_schema.index_of(e->column);
      agg->group_cols.push_back(child->output_schema.at(idx).name);
    }

    // Collect aggregate calls from the select list, rewriting each call
    // into a reference to its slot in the internal schema.
    agg->children = {child};
    for (const auto& item : s.items) {
      ExprPtr rewritten = rewrite_aggs(clone(item.expr), *agg);
      agg->projections.push_back(rewritten);

      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == ExprKind::ColumnRef
                   ? unqualify(item.expr->column)
                   : "_col" + std::to_string(agg->projections.size() - 1);
      }
      ValueType t = ValueType::Double;
      Lineage lin;
      if (item.expr->kind == ExprKind::ColumnRef) {
        const auto idx = child->output_schema.index_of(item.expr->column);
        t = child->output_schema.at(idx).type;
        lin = child->output_lineage[idx];
      } else if (item.expr->kind == ExprKind::FuncCall &&
                 item.expr->op == "count") {
        t = ValueType::Int;
      }
      agg->output_schema.add(to_lower(name), t);
      agg->output_lineage.push_back(std::move(lin));
    }
    // HAVING: post-aggregation filter over the output schema (select
    // aliases / grouping columns; raw aggregate calls are unsupported).
    if (s.having) {
      if (contains_aggregate(*s.having))
        throw PlanError(
            "HAVING must reference select aliases, not raw aggregate "
            "calls: " +
            s.having->to_string());
      agg->filter = s.having;
    }
    return agg;
  }

  /// Replace aggregate calls in `e` with ColumnRefs to "$aggN", appending
  /// the calls to agg.aggs. Returns the rewritten expression.
  ExprPtr rewrite_aggs(ExprPtr e, PlanNode& agg) {
    if (!e) return e;
    if (e->kind == ExprKind::FuncCall && is_aggregate_function(e->op)) {
      AggCall call;
      call.func = e->op;
      call.distinct = e->distinct;
      call.star = e->star;
      if (!e->star) {
        if (e->args.size() != 1)
          throw PlanError("aggregate takes exactly one argument: " +
                          e->to_string());
        call.arg = e->args[0];
        if (contains_aggregate(*call.arg))
          throw PlanError("nested aggregates are not supported");
      }
      agg.aggs.push_back(std::move(call));
      return Expr::make_column("$agg" + std::to_string(agg.aggs.size() - 1));
    }
    for (auto& a : e->args) a = rewrite_aggs(a, agg);
    return e;
  }

  void apply_projections(PlanPtr& node, const SelectStmt& s) {
    // Identity select (every item a bare column with no alias that simply
    // re-exposes the child schema) could skip projection, but explicit is
    // simpler and exact: build projection list + new schema.
    std::vector<ExprPtr> projections;
    Schema out;
    std::vector<Lineage> lineage;
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      const auto& item = s.items[i];
      projections.push_back(item.expr);
      std::string name = item.alias;
      ValueType t = ValueType::Double;
      Lineage lin;
      if (item.expr->kind == ExprKind::ColumnRef) {
        const auto idx = node->output_schema.index_of(item.expr->column);
        t = node->output_schema.at(idx).type;
        lin = node->output_lineage[idx];
        if (name.empty()) name = unqualify(item.expr->column);
      } else if (name.empty()) {
        name = "_col" + std::to_string(i);
      }
      out.add(to_lower(name), t);
      lineage.push_back(std::move(lin));
    }
    if (node->kind == PlanKind::Scan || node->kind == PlanKind::Join ||
        node->kind == PlanKind::SP) {
      node->projections = std::move(projections);
      node->output_schema = std::move(out);
      node->output_lineage = std::move(lineage);
    } else {
      // Projection over an Agg/Sort output: wrap in SP.
      auto sp = make_sp(node, nullptr);
      sp->projections = std::move(projections);
      sp->output_schema = std::move(out);
      sp->output_lineage = std::move(lineage);
      node = std::move(sp);
    }
  }

  const Catalog& catalog_;
};

}  // namespace

PlanPtr build_plan(const SelectStmt& stmt, const Catalog& catalog) {
  Builder b(catalog);
  PlanPtr root = b.build(stmt);
  b.assign_labels(root);
  return root;
}

PlanPtr plan_query(const std::string& sql, const Catalog& catalog) {
  return build_plan(*parse_select(sql), catalog);
}

}  // namespace ysmart
