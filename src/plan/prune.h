// Projection pruning: narrow every node's output to the columns its
// consumer actually references.
//
// The paper's savings are measured in map-output / shuffle bytes, so the
// translated jobs must not ship whole base rows when only two columns are
// needed. This pass walks the plan top-down, computing the set of needed
// output columns per node (join keys, residual/filter references, group
// and aggregate arguments, sort keys, and the root's full output), and
// rewrites scans/joins/aggregations to produce exactly those.
#pragma once

#include "plan/plan.h"

namespace ysmart {

/// Prune in place. Idempotent.
void prune_plan(const PlanPtr& root);

}  // namespace ysmart
