// AST -> logical plan translation.
//
// Derived tables (sub-selects in FROM) are built recursively and their
// output schemas re-qualified with the derived table's alias, exactly the
// "flattened" form the paper feeds YSmart (nested queries rewritten with
// first-aggregation-then-join). Comma-joins take their equi-join keys
// from WHERE conjuncts; explicit [INNER|LEFT|RIGHT|FULL] JOIN takes them
// from ON. Single-table conjuncts are pushed into the Scan (the paper's
// "selection and projection executed by the job itself"); whatever the
// equi-keys do not cover becomes the join's residual predicate.
#pragma once

#include "plan/plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace ysmart {

/// Build the logical plan for `stmt`. Throws PlanError on semantic errors
/// (unknown table/column, ambiguous reference, non-equi join with no key,
/// grouping by a computed expression).
PlanPtr build_plan(const SelectStmt& stmt, const Catalog& catalog);

/// Convenience: parse + plan.
PlanPtr plan_query(const std::string& sql, const Catalog& catalog);

}  // namespace ysmart
