#include "plan/prune.h"

#include <set>

#include "common/error.h"

namespace ysmart {

namespace {

void collect_refs(const ExprPtr& e, std::vector<std::string>& out) {
  if (!e) return;
  if (e->kind == ExprKind::ColumnRef) out.push_back(e->column);
  for (const auto& a : e->args) collect_refs(a, out);
}

/// Resolve `name` in `schema` and add its canonical stored name to `out`;
/// silently skips names that do not resolve (they belong to a sibling).
void add_resolved(const Schema& schema, const std::string& name,
                  std::set<std::string>& out) {
  try {
    auto idx = schema.find(name);
    if (idx) out.insert(schema.at(*idx).name);
  } catch (const PlanError&) {
    // Ambiguous within this child: conservatively keep both candidates by
    // keeping everything that unqualifies to the same suffix.
    for (const auto& c : schema.columns())
      if (unqualify(c.name) == unqualify(name)) out.insert(c.name);
  }
}

void add_expr_refs(const Schema& schema, const ExprPtr& e,
                   std::set<std::string>& out) {
  std::vector<std::string> refs;
  collect_refs(e, refs);
  for (const auto& r : refs) add_resolved(schema, r, out);
}

void prune(const PlanPtr& node, const std::set<std::string>& needed);

/// Keep only the output columns named in `keep` (by canonical name).
void shrink_outputs(PlanNode& n, const std::set<std::string>& keep) {
  Schema schema;
  std::vector<Lineage> lineage;
  std::vector<ExprPtr> projections;
  const bool had_projections = !n.projections.empty();
  for (std::size_t i = 0; i < n.output_schema.size(); ++i) {
    if (!keep.count(n.output_schema.at(i).name)) continue;
    schema.add(n.output_schema.at(i).name, n.output_schema.at(i).type);
    lineage.push_back(n.output_lineage[i]);
    if (had_projections) projections.push_back(n.projections[i]);
  }
  n.output_schema = std::move(schema);
  n.output_lineage = std::move(lineage);
  n.projections = std::move(projections);
}

void prune(const PlanPtr& node, const std::set<std::string>& needed) {
  switch (node->kind) {
    case PlanKind::Scan: {
      // Materialize an explicit projection to exactly the needed columns.
      // (The filter binds against the full base schema and is evaluated
      // before projection, so its references need not be kept.)
      Schema schema;
      std::vector<Lineage> lineage;
      std::vector<ExprPtr> projections;
      const bool had_projections = !node->projections.empty();
      for (std::size_t i = 0; i < node->output_schema.size(); ++i) {
        const auto& name = node->output_schema.at(i).name;
        if (!needed.count(name)) continue;
        schema.add(name, node->output_schema.at(i).type);
        lineage.push_back(node->output_lineage[i]);
        projections.push_back(had_projections ? node->projections[i]
                                              : Expr::make_column(name));
      }
      node->output_schema = std::move(schema);
      node->output_lineage = std::move(lineage);
      node->projections = std::move(projections);
      return;
    }
    case PlanKind::SP: {
      const Schema& child = node->children[0]->output_schema;
      std::set<std::string> child_needed;
      add_expr_refs(child, node->filter, child_needed);
      if (node->projections.empty()) {
        // Identity: needed columns pass straight through.
        for (const auto& n : needed) add_resolved(child, n, child_needed);
        prune(node->children[0], child_needed);
        node->output_schema = node->children[0]->output_schema;
        node->output_lineage = node->children[0]->output_lineage;
      } else {
        shrink_outputs(*node, needed);
        for (const auto& p : node->projections)
          add_expr_refs(child, p, child_needed);
        prune(node->children[0], child_needed);
      }
      return;
    }
    case PlanKind::Join: {
      const Schema& ls = node->children[0]->output_schema;
      const Schema& rs = node->children[1]->output_schema;
      std::set<std::string> lneed, rneed;
      for (const auto& k : node->left_keys) add_resolved(ls, k, lneed);
      for (const auto& k : node->right_keys) add_resolved(rs, k, rneed);
      auto add_both = [&](const ExprPtr& e) {
        std::vector<std::string> refs;
        collect_refs(e, refs);
        for (const auto& r : refs) {
          // A reference belongs to whichever child resolves it.
          bool in_left = false;
          try {
            in_left = ls.find(r).has_value();
          } catch (const PlanError&) {
            in_left = true;
          }
          if (in_left)
            add_resolved(ls, r, lneed);
          else
            add_resolved(rs, r, rneed);
        }
      };
      add_both(node->filter);
      if (node->projections.empty()) {
        for (const auto& n : needed) {
          bool in_left = false;
          try {
            in_left = ls.find(n).has_value();
          } catch (const PlanError&) {
            in_left = true;
          }
          if (in_left)
            add_resolved(ls, n, lneed);
          else
            add_resolved(rs, n, rneed);
        }
      } else {
        shrink_outputs(*node, needed);
        for (const auto& p : node->projections) add_both(p);
      }
      prune(node->children[0], lneed);
      prune(node->children[1], rneed);
      if (node->projections.empty()) {
        // Recompute the identity output from the pruned children and
        // re-merge the equi-key alias classes.
        node->output_schema = Schema::concat(node->children[0]->output_schema,
                                             node->children[1]->output_schema);
        node->output_lineage = node->children[0]->output_lineage;
        node->output_lineage.insert(node->output_lineage.end(),
                                    node->children[1]->output_lineage.begin(),
                                    node->children[1]->output_lineage.end());
        const Schema& nls = node->children[0]->output_schema;
        const Schema& nrs = node->children[1]->output_schema;
        for (std::size_t i = 0; i < node->left_keys.size(); ++i) {
          const auto li = nls.index_of(node->left_keys[i]);
          const auto ri = nrs.index_of(node->right_keys[i]);
          Lineage merged = node->output_lineage[li];
          const Lineage& rl = node->output_lineage[nls.size() + ri];
          merged.insert(rl.begin(), rl.end());
          node->output_lineage[li] = merged;
          node->output_lineage[nls.size() + ri] = merged;
        }
      }
      return;
    }
    case PlanKind::Agg: {
      const Schema& child = node->children[0]->output_schema;
      std::set<std::string> child_needed;
      for (const auto& g : node->group_cols) add_resolved(child, g, child_needed);
      for (const auto& a : node->aggs)
        if (a.arg) add_expr_refs(child, a.arg, child_needed);
      // Aggregation projections are expressions over the internal schema,
      // not the child, so they add nothing to child_needed. Keep all
      // output columns (they are cheap scalars).
      prune(node->children[0], child_needed);
      return;
    }
    case PlanKind::Sort: {
      const Schema& child = node->children[0]->output_schema;
      std::set<std::string> child_needed;
      for (const auto& n : needed) add_resolved(child, n, child_needed);
      for (const auto& k : node->sort_keys)
        add_expr_refs(child, k.expr, child_needed);
      prune(node->children[0], child_needed);
      node->output_schema = node->children[0]->output_schema;
      node->output_lineage = node->children[0]->output_lineage;
      return;
    }
  }
}

}  // namespace

void prune_plan(const PlanPtr& root) {
  std::set<std::string> all;
  for (const auto& c : root->output_schema.columns()) all.insert(c.name);
  prune(root, all);
}

}  // namespace ysmart
