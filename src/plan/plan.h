// Logical query plan: the tree YSmart's correlation analysis runs on.
//
// Node kinds map one-to-one onto the paper's primitive job types
// (Section V-A): Scan carries selection/projection on a base relation
// (folded into the consuming job's map phase, or a standalone SP job),
// Join is an equi-join (inner/left/right/full outer) with an optional
// residual predicate, Agg is grouping + aggregation with post-aggregation
// projection expressions, Sort is ORDER BY (+ LIMIT).
//
// Every output column carries a *lineage*: the set of (base-table, column)
// origins it may alias. Lineage is what lets partition keys compare equal
// across operations — e.g. the two sides of `p_partkey = l_partkey` are
// "aliases of the same partition key" (paper footnote 3), and two
// instances of a self-joined table share lineage by construction.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/schema.h"
#include "sql/ast.h"

namespace ysmart {

/// Identity of a base-table column, ignoring instance aliases: both
/// c1.uid and c2.uid of self-joined CLICKS resolve to ("clicks","uid").
struct ColumnId {
  std::string table;
  std::string column;
  auto operator<=>(const ColumnId&) const = default;
  std::string to_string() const { return table + "." + column; }
};

/// The lineage of one output column: every base column it aliases.
/// Columns computed by expressions/aggregates have empty lineage.
using Lineage = std::set<ColumnId>;

enum class PlanKind {
  Scan,  // base-relation access with pushed-down selection/projection
  SP,    // standalone selection/projection over a non-base input
  Join,
  Agg,
  Sort,
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

struct AggCall {
  std::string func;  // count / sum / avg / min / max
  ExprPtr arg;       // null when star
  bool distinct = false;
  bool star = false;

  std::string to_string() const;
};

struct SortKey {
  ExprPtr expr;
  bool desc = false;
};

struct PlanNode {
  PlanKind kind{};
  std::string label;  // "JOIN1", "AGG2", ... assigned by the builder
  std::vector<PlanPtr> children;

  /// What this node produces. Column names are qualified when the node
  /// sits under a table/derived-table alias.
  Schema output_schema;
  std::vector<Lineage> output_lineage;  // parallel to output_schema

  // ---- Scan ----
  std::string table;  // base table name
  std::string alias;  // instance alias ("c1", "c2", ...)

  /// Selection predicate. For Scan it binds against the base-table schema
  /// and runs before projection; for Join it is the residual predicate
  /// over the concatenation of both children's outputs (everything the
  /// equi-keys do not cover, plus post-outer-join WHERE conjuncts); for
  /// Agg it is the HAVING predicate, evaluated over the *output* schema.
  ExprPtr filter;

  /// Projection expressions producing output_schema. For Scan they bind
  /// against the (alias-qualified) base schema; for Join against the
  /// concatenated child schemas; for Agg against the internal schema
  /// [group columns..., aggregate results...]; Sort has none (identity).
  std::vector<ExprPtr> projections;

  // ---- Join ----
  JoinType join_type = JoinType::Inner;
  /// Equi-join keys: column names resolvable in the left / right child's
  /// output schema, positionally paired.
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;

  // ---- Agg ----
  std::vector<std::string> group_cols;  // names in the child's output schema
  std::vector<AggCall> aggs;
  /// Names of the internal schema the projections bind against:
  /// group columns keep their names, aggregate i is "$agg<i>".
  Schema agg_internal_schema() const;

  // ---- Sort ----
  std::vector<SortKey> sort_keys;
  std::optional<std::int64_t> limit;

  bool is_operation() const { return kind != PlanKind::Scan; }

  /// All base tables read anywhere in this subtree (the node's "input
  /// relation set" used by the Input Correlation definition).
  std::set<std::string> input_relations() const;

  /// Lineage of the output column named `name`; empty set if computed.
  const Lineage& lineage_of(const std::string& name) const;

  std::string to_string() const;  // one-line summary of this node
};

/// Post-order (children first) walk of the operation nodes (non-Scan).
std::vector<PlanNode*> post_order_operations(const PlanPtr& root);

/// Post-order walk of all nodes including scans.
std::vector<PlanNode*> post_order_all(const PlanPtr& root);

}  // namespace ysmart
