// Plan-tree pretty printer (the figures' plan trees, in ASCII).
#pragma once

#include <string>

#include "plan/plan.h"

namespace ysmart {

/// Multi-line indented rendering of the plan tree rooted at `root`,
/// including each operation's partition-key information.
std::string print_plan(const PlanPtr& root);

/// Graphviz DOT rendering of the plan tree (operations as boxes labeled
/// with their partition keys, scans as ellipses); feed to `dot -Tsvg`.
std::string plan_to_dot(const PlanPtr& root);

}  // namespace ysmart
