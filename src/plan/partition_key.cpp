#include "plan/partition_key.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

namespace {

bool intersects(const Lineage& a, const Lineage& b) {
  for (const auto& x : a)
    if (b.count(x)) return true;
  return false;
}

/// Exact bipartite perfect matching between the (small) class lists.
bool can_match(const std::vector<Lineage>& a, const std::vector<Lineage>& b,
               std::vector<int>& b_used, std::size_t i) {
  if (i == a.size()) return true;
  for (std::size_t j = 0; j < b.size(); ++j) {
    if (b_used[j]) continue;
    if (!intersects(a[i], b[j])) continue;
    b_used[j] = 1;
    if (can_match(a, b, b_used, i + 1)) return true;
    b_used[j] = 0;
  }
  return false;
}

}  // namespace

bool PartitionKey::matches(const PartitionKey& other) const {
  if (parts.size() != other.parts.size()) return false;
  if (parts.empty()) return false;  // empty keys never correlate
  std::vector<int> used(other.parts.size(), 0);
  return can_match(parts, other.parts, used, 0);
}

std::string PartitionKey::to_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) s += ", ";
    s += "{";
    bool first = true;
    for (const auto& id : parts[i]) {
      if (!first) s += "|";
      s += id.to_string();
      first = false;
    }
    s += "}";
  }
  return s + ")";
}

PartitionKey join_partition_key(const PlanNode& join) {
  check(join.kind == PlanKind::Join, "join_partition_key on non-Join");
  check(join.children.size() == 2, "Join must have two children");
  PartitionKey pk;
  for (std::size_t i = 0; i < join.left_keys.size(); ++i) {
    Lineage cls = join.children[0]->lineage_of(join.left_keys[i]);
    const Lineage& r = join.children[1]->lineage_of(join.right_keys[i]);
    cls.insert(r.begin(), r.end());
    pk.parts.push_back(std::move(cls));
    pk.columns.push_back(join.left_keys[i]);
  }
  return pk;
}

PartitionKey agg_full_partition_key(const PlanNode& agg) {
  check(agg.kind == PlanKind::Agg, "agg_full_partition_key on non-Agg");
  PartitionKey pk;
  for (const auto& g : agg.group_cols) {
    pk.parts.push_back(agg.children[0]->lineage_of(g));
    pk.columns.push_back(g);
  }
  return pk;
}

std::vector<PartitionKey> agg_partition_key_candidates(const PlanNode& agg) {
  constexpr std::size_t kMaxEnumeratedGroupCols = 4;
  check(agg.kind == PlanKind::Agg, "candidates on non-Agg");
  const auto& cols = agg.group_cols;
  std::vector<PartitionKey> out;
  if (cols.empty()) return out;

  auto make_subset = [&](const std::vector<std::size_t>& idxs) {
    PartitionKey pk;
    for (auto i : idxs) {
      pk.parts.push_back(agg.children[0]->lineage_of(cols[i]));
      pk.columns.push_back(cols[i]);
    }
    return pk;
  };

  if (cols.size() <= kMaxEnumeratedGroupCols) {
    for (std::size_t mask = 1; mask < (std::size_t{1} << cols.size()); ++mask) {
      std::vector<std::size_t> idxs;
      for (std::size_t i = 0; i < cols.size(); ++i)
        if (mask & (std::size_t{1} << i)) idxs.push_back(i);
      out.push_back(make_subset(idxs));
    }
  } else {
    for (std::size_t i = 0; i < cols.size(); ++i) out.push_back(make_subset({i}));
    std::vector<std::size_t> all(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) all[i] = i;
    out.push_back(make_subset(all));
  }
  return out;
}

}  // namespace ysmart
