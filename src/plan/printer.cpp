#include "plan/printer.h"

#include "plan/partition_key.h"

namespace ysmart {

namespace {

void print_node(const PlanPtr& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node->to_string();
  if (node->kind == PlanKind::Join) {
    out += "  PK=" + join_partition_key(*node).to_string();
  } else if (node->kind == PlanKind::Agg && !node->group_cols.empty()) {
    out += "  PK(full)=" + agg_full_partition_key(*node).to_string();
  }
  out += "\n";
  for (const auto& c : node->children) print_node(c, depth + 1, out);
}

}  // namespace

std::string print_plan(const PlanPtr& root) {
  std::string out;
  print_node(root, 0, out);
  return out;
}

namespace {

std::string dot_escape(std::string s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

int dot_node(const PlanPtr& node, std::string& out, int& counter) {
  const int id = counter++;
  std::string label = node->to_string();
  if (node->kind == PlanKind::Join)
    label += "\\nPK=" + join_partition_key(*node).to_string();
  else if (node->kind == PlanKind::Agg && !node->group_cols.empty())
    label += "\\nPK(full)=" + agg_full_partition_key(*node).to_string();
  const char* shape = node->kind == PlanKind::Scan ? "ellipse" : "box";
  out += "  n" + std::to_string(id) + " [shape=" + shape + ", label=\"" +
         dot_escape(label) + "\"];\n";
  for (const auto& c : node->children) {
    const int child = dot_node(c, out, counter);
    out += "  n" + std::to_string(child) + " -> n" + std::to_string(id) + ";\n";
  }
  return id;
}

}  // namespace

std::string plan_to_dot(const PlanPtr& root) {
  std::string out = "digraph plan {\n  rankdir=BT;\n";
  int counter = 0;
  dot_node(root, out, counter);
  out += "}\n";
  return out;
}

}  // namespace ysmart
