// The Common MapReduce Framework (Section VI of the paper).
//
// Turns a TranslatedJob into a runnable MRJobSpec:
//
//  * The common mapper evaluates each emission per input record: consumer
//    selection filters decide the pair's visibility tag (the exclude-list
//    encoding of Section VI-A), and the pair carries the union of the
//    consumers' projected columns, emitted once.
//  * The common reducer dispatches each value of a key group to the
//    merged reducers that can see it (one pass over the value list, as in
//    Algorithm 1), runs every merged operation — joins, aggregations with
//    sub-grouping when the partition key is a subset of the grouping key,
//    post-job computations — and writes each top-level operation's result
//    to its own tagged output.
//  * CombineAgg jobs get the hash-based map-side partial aggregation
//    fast path (Hive's optimization, footnote 2 of the paper).
#pragma once

#include "mr/job.h"
#include "storage/dfs.h"
#include "translator/jobspec.h"

namespace ysmart {

/// Compile `job` against the actual input file schemas found in `dfs`.
/// All expressions are bound once here; the factories in the returned
/// spec create cheap per-task instances sharing the compiled state.
MRJobSpec build_common_job(const TranslatedJob& job,
                           const TranslatorProfile& profile, const Dfs& dfs);

}  // namespace ysmart
