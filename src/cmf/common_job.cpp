#include "cmf/common_job.h"

#include <map>
#include <memory>
#include <unordered_map>

#include <algorithm>

#include "common/error.h"
#include "common/normkey.h"
#include "common/strings.h"
#include "exec/aggregates.h"
#include "exec/batch.h"
#include "exec/expr_eval.h"
#include "exec/operators.h"
#include "exec/vector_kernels.h"

namespace ysmart {

namespace {

// ---------- compiled (bind-once) job state shared by all tasks ----------

struct CompiledConsumer {
  int bit = 0;
  BoundExpr filter;  // over the emission's input file schema; may be unbound
  bool has_filter = false;
};

struct CompiledEmission {
  int input_file = 0;
  int source_tag = 0;
  std::vector<BoundExpr> keys;
  std::vector<BoundExpr> values;
  std::vector<CompiledConsumer> consumers;
};

struct CompiledStage {
  const PlanNode* op = nullptr;
  std::vector<Stage::In> inputs;
  int output_index = -1;

  // Join
  GroupJoinSpec join_spec;
  BoundExpr join_residual;
  std::vector<BoundExpr> join_projections;

  // SP
  BoundExpr sp_filter;
  bool sp_has_filter = false;
  std::vector<BoundExpr> sp_projections;
};

struct CompiledJob {
  std::vector<CompiledEmission> emissions;   // grouped by input file below
  std::vector<std::vector<int>> emissions_by_file;
  std::vector<CompiledStage> stages;
  std::map<int, int> consumer_bit_to_slot;   // bit -> dense slot index
  int num_consumers = 0;

  // CombineAgg state
  const PlanNode* combine_agg = nullptr;
  std::vector<std::size_t> combine_group_idx;  // unused (exprs used instead)
  std::vector<BoundExpr> combine_group_exprs;
  std::vector<BoundExpr> combine_arg_exprs;    // unbound slot for star
  BoundExpr combine_filter;
  bool combine_has_filter = false;
  std::vector<BoundExpr> combine_projections;  // over internal schema
  BoundExpr combine_having;                    // over output schema
  bool combine_has_having = false;

  bool map_only = false;
};

// ------------------------------ mappers ------------------------------

class CommonMapper final : public Mapper {
 public:
  explicit CommonMapper(std::shared_ptr<const CompiledJob> cj) : cj_(std::move(cj)) {}

  void map(const Row& record, int input_tag, MapEmitter& out) override {
    for (int ei : cj_->emissions_by_file[static_cast<std::size_t>(input_tag)]) {
      const CompiledEmission& e = cj_->emissions[static_cast<std::size_t>(ei)];
      std::uint32_t exclude = 0;
      bool any_visible = false;
      for (const auto& c : e.consumers) {
        const bool pass = !c.has_filter || is_true(c.filter.eval(record));
        if (pass)
          any_visible = true;
        else
          exclude |= (1u << c.bit);
      }
      if (!any_visible) continue;
      Row key;
      key.reserve(e.keys.size());
      for (const auto& k : e.keys) key.push_back(k.eval(record));
      Row value;
      value.reserve(e.values.size());
      for (const auto& v : e.values) value.push_back(v.eval(record));
      out.emit(std::move(key), std::move(value),
               static_cast<std::uint8_t>(e.source_tag), exclude);
    }
  }

  bool supports_batches() const override { return true; }

  // Emission-major batch version of map(). The per-record path emits
  // record-major; flipping the nesting is shuffle-invisible because every
  // emission has a unique source tag and the map-side sort orders by
  // (key, source, seq) — within one (key, source) run the records keep
  // their relative order either way.
  void map_batch(ColumnBatch& batch, int input_tag, MapEmitter& out) override {
    const std::size_t n = batch.rows();
    for (int ei : cj_->emissions_by_file[static_cast<std::size_t>(input_tag)]) {
      const CompiledEmission& e = cj_->emissions[static_cast<std::size_t>(ei)];
      if (e.consumers.empty()) continue;  // nothing is ever visible
      // Consumer visibility over the whole batch. The scalar path
      // evaluates every consumer filter for every record (no
      // short-circuit), so evaluating each filter over the full batch
      // counts kRowsEvaluated identically.
      exclude_.assign(n, 0);
      std::uint32_t full_mask = 0;
      for (const auto& c : e.consumers) {
        full_mask |= (1u << c.bit);
        if (!c.has_filter) continue;  // visible to this consumer everywhere
        BatchVector fv;
        if (eval_expr_batch(c.filter, batch, fv)) {
          for (std::size_t k = 0; k < n; ++k)
            if (!fv.truthy(k)) exclude_[k] |= (1u << c.bit);
        } else {
          for (std::size_t k = 0; k < n; ++k)
            if (!is_true(c.filter.eval(batch.source_row(k))))
              exclude_[k] |= (1u << c.bit);
        }
      }
      // A record is emitted iff at least one consumer sees it.
      sel_.clear();
      for (std::size_t k = 0; k < n; ++k)
        if (exclude_[k] != full_mask)
          sel_.push_back(static_cast<std::uint32_t>(k));
      if (sel_.empty()) continue;
      // Key/value expressions run only over the visible records, exactly
      // like the scalar path.
      ColumnBatch selected = batch.select(sel_);
      key_cols_.resize(e.keys.size());
      key_ok_.resize(e.keys.size());
      for (std::size_t j = 0; j < e.keys.size(); ++j)
        key_ok_[j] = eval_expr_batch(e.keys[j], selected, key_cols_[j]);
      val_cols_.resize(e.values.size());
      val_ok_.resize(e.values.size());
      for (std::size_t j = 0; j < e.values.size(); ++j)
        val_ok_[j] = eval_expr_batch(e.values[j], selected, val_cols_[j]);
      for (std::size_t r = 0; r < selected.rows(); ++r) {
        Row key;
        key.reserve(e.keys.size());
        for (std::size_t j = 0; j < e.keys.size(); ++j)
          key.push_back(key_ok_[j] ? key_cols_[j].value_at(r)
                                   : e.keys[j].eval(selected.source_row(r)));
        Row value;
        value.reserve(e.values.size());
        for (std::size_t j = 0; j < e.values.size(); ++j)
          value.push_back(val_ok_[j]
                              ? val_cols_[j].value_at(r)
                              : e.values[j].eval(selected.source_row(r)));
        out.emit(std::move(key), std::move(value),
                 static_cast<std::uint8_t>(e.source_tag), exclude_[sel_[r]]);
      }
    }
  }

 private:
  std::shared_ptr<const CompiledJob> cj_;
  // Per-batch scratch (a mapper instance serves one map task, serially).
  std::vector<std::uint32_t> exclude_;
  std::vector<std::uint32_t> sel_;
  std::vector<BatchVector> key_cols_, val_cols_;
  std::vector<char> key_ok_, val_ok_;
};

/// Map-only SELECTION-PROJECTION job: emits the projected row as the
/// value; the engine writes values straight to the output file.
class SpMapper final : public Mapper {
 public:
  explicit SpMapper(std::shared_ptr<const CompiledJob> cj) : cj_(std::move(cj)) {}

  void map(const Row& record, int /*input_tag*/, MapEmitter& out) override {
    const CompiledStage& st = cj_->stages.at(0);
    if (st.sp_has_filter && !is_true(st.sp_filter.eval(record))) return;
    Row value;
    if (st.sp_projections.empty()) {
      value = record;
    } else {
      value.reserve(st.sp_projections.size());
      for (const auto& p : st.sp_projections) value.push_back(p.eval(record));
    }
    out.emit(Row{}, std::move(value));
  }

  bool supports_batches() const override { return true; }

  // Map-only output is written in emit order, so this stays record-major.
  void map_batch(ColumnBatch& batch, int /*input_tag*/,
                 MapEmitter& out) override {
    const CompiledStage& st = cj_->stages.at(0);
    const std::size_t n = batch.rows();
    sel_.clear();
    if (st.sp_has_filter) {
      BatchVector fv;
      if (eval_expr_batch(st.sp_filter, batch, fv)) {
        collect_passing(fv, n, sel_);
      } else {
        for (std::size_t k = 0; k < n; ++k)
          if (is_true(st.sp_filter.eval(batch.source_row(k))))
            sel_.push_back(static_cast<std::uint32_t>(k));
      }
    } else {
      for (std::size_t k = 0; k < n; ++k)
        sel_.push_back(static_cast<std::uint32_t>(k));
    }
    if (sel_.empty()) return;
    if (st.sp_projections.empty()) {
      for (auto k : sel_) out.emit(Row{}, batch.source_row(k));
      return;
    }
    ColumnBatch selected = batch.select(sel_);
    cols_.resize(st.sp_projections.size());
    ok_.resize(st.sp_projections.size());
    for (std::size_t j = 0; j < st.sp_projections.size(); ++j)
      ok_[j] = eval_expr_batch(st.sp_projections[j], selected, cols_[j]);
    for (std::size_t r = 0; r < selected.rows(); ++r) {
      Row value;
      value.reserve(st.sp_projections.size());
      for (std::size_t j = 0; j < st.sp_projections.size(); ++j)
        value.push_back(ok_[j]
                            ? cols_[j].value_at(r)
                            : st.sp_projections[j].eval(selected.source_row(r)));
      out.emit(Row{}, std::move(value));
    }
  }

 private:
  std::shared_ptr<const CompiledJob> cj_;
  // Per-batch scratch (a mapper instance serves one map task, serially).
  std::vector<std::uint32_t> sel_;
  std::vector<BatchVector> cols_;
  std::vector<char> ok_;
};

/// Hash-based map-side partial aggregation (CombineAgg jobs), keyed by
/// the normalized key bytes (common/normkey.h): one encode plus a string
/// hash per record instead of the O(log groups) cell-by-cell Row
/// comparisons the previous std::map paid, and the encoding is handed to
/// the emitter so the engine never re-encodes these keys.
class CombineAggMapper final : public Mapper {
 public:
  explicit CombineAggMapper(std::shared_ptr<const CompiledJob> cj)
      : cj_(std::move(cj)) {}

  void map(const Row& record, int /*input_tag*/, MapEmitter& /*out*/) override {
    if (cj_->combine_has_filter && !is_true(cj_->combine_filter.eval(record)))
      return;
    Row key;
    key.reserve(cj_->combine_group_exprs.size());
    for (const auto& g : cj_->combine_group_exprs) key.push_back(g.eval(record));
    norm_scratch_.clear();
    for (const auto& v : key) append_norm_key(v, norm_scratch_);
    auto it = groups_.find(norm_scratch_);
    if (it == groups_.end()) {
      Group g;
      g.key = std::move(key);
      for (const auto& a : cj_->combine_agg->aggs) g.states.emplace_back(a);
      it = groups_.emplace(norm_scratch_, std::move(g)).first;
    }
    const auto& aggs = cj_->combine_agg->aggs;
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].star)
        it->second.states[i].add(Value{std::int64_t{1}});
      else
        it->second.states[i].add(cj_->combine_arg_exprs[i].eval(record));
    }
  }

  bool supports_batches() const override { return true; }

  // Batch version: filter, group-key and aggregate-argument expressions
  // run as kernels over the (selected) batch; the per-record loop only
  // builds keys, normalizes them (same one append_norm_key per cell —
  // kCellsEncoded parity) and feeds the typed aggregate adds. Emission
  // happens in finish(), so record order is irrelevant here beyond
  // keep-first min/max tie-breaks, which the typed adds preserve.
  void map_batch(ColumnBatch& batch, int /*input_tag*/,
                 MapEmitter& /*out*/) override {
    const std::size_t n = batch.rows();
    sel_.clear();
    if (cj_->combine_has_filter) {
      BatchVector fv;
      if (eval_expr_batch(cj_->combine_filter, batch, fv)) {
        collect_passing(fv, n, sel_);
      } else {
        for (std::size_t k = 0; k < n; ++k)
          if (is_true(cj_->combine_filter.eval(batch.source_row(k))))
            sel_.push_back(static_cast<std::uint32_t>(k));
      }
    } else {
      for (std::size_t k = 0; k < n; ++k)
        sel_.push_back(static_cast<std::uint32_t>(k));
    }
    if (sel_.empty()) return;
    ColumnBatch selected = batch.select(sel_);
    const auto& aggs = cj_->combine_agg->aggs;
    group_cols_.resize(cj_->combine_group_exprs.size());
    group_ok_.resize(cj_->combine_group_exprs.size());
    for (std::size_t j = 0; j < cj_->combine_group_exprs.size(); ++j)
      group_ok_[j] =
          eval_expr_batch(cj_->combine_group_exprs[j], selected, group_cols_[j]);
    arg_cols_.resize(aggs.size());
    arg_ok_.resize(aggs.size());
    for (std::size_t i = 0; i < aggs.size(); ++i)
      arg_ok_[i] = !aggs[i].star && eval_expr_batch(cj_->combine_arg_exprs[i],
                                                    selected, arg_cols_[i]);
    for (std::size_t r = 0; r < selected.rows(); ++r) {
      Row key;
      key.reserve(cj_->combine_group_exprs.size());
      for (std::size_t j = 0; j < cj_->combine_group_exprs.size(); ++j)
        key.push_back(group_ok_[j] ? group_cols_[j].value_at(r)
                                   : cj_->combine_group_exprs[j].eval(
                                         selected.source_row(r)));
      norm_scratch_.clear();
      for (const auto& v : key) append_norm_key(v, norm_scratch_);
      auto it = groups_.find(norm_scratch_);
      if (it == groups_.end()) {
        Group g;
        g.key = std::move(key);
        for (const auto& a : aggs) g.states.emplace_back(a);
        it = groups_.emplace(norm_scratch_, std::move(g)).first;
      }
      for (std::size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].star)
          it->second.states[i].add(Value{std::int64_t{1}});
        else if (arg_ok_[i])
          add_to_agg(it->second.states[i], arg_cols_[i], r);
        else
          it->second.states[i].add(
              cj_->combine_arg_exprs[i].eval(selected.source_row(r)));
      }
    }
  }

  void finish(MapEmitter& out) override {
    // Emit in normalized-key byte order — the same order the previous
    // RowLess-sorted map iterated in (memcmp order over the encoding is
    // exactly compare_rows order), keeping map output deterministic
    // across standard-library hash-table implementations.
    std::vector<decltype(groups_)::value_type*> sorted;
    sorted.reserve(groups_.size());
    for (auto& entry : groups_) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) {
                return norm_key_compare(a->first, b->first) < 0;
              });
    for (auto* entry : sorted) {
      Row partial;
      for (const auto& s : entry->second.states) s.to_partial(partial);
      KeyValue kv;
      kv.key = std::move(entry->second.key);
      kv.value = std::move(partial);
      kv.norm_key = entry->first;  // map key is const; one copy per group
      out.emit(std::move(kv));
    }
    groups_.clear();
  }

 private:
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::shared_ptr<const CompiledJob> cj_;
  std::unordered_map<std::string, Group> groups_;
  std::string norm_scratch_;
  // Per-batch scratch (a mapper instance serves one map task, serially).
  std::vector<std::uint32_t> sel_;
  std::vector<BatchVector> group_cols_, arg_cols_;
  std::vector<char> group_ok_, arg_ok_;
};

// ------------------------------ reducers ------------------------------

class CommonReducer final : public Reducer {
 public:
  explicit CommonReducer(std::shared_ptr<const CompiledJob> cj)
      : cj_(std::move(cj)) {}

  void reduce(const Row& /*key*/, std::span<const KeyValue> values,
              ReduceEmitter& out) override {
    // One pass over the value list, dispatching each value to the merged
    // reducers that can see it (paper Algorithm 1).
    std::vector<std::vector<Row>> consumer_rows(
        static_cast<std::size_t>(cj_->num_consumers));
    for (const auto& kv : values) {
      const CompiledEmission& e =
          cj_->emissions[static_cast<std::size_t>(kv.source)];
      for (const auto& c : e.consumers) {
        if (!kv.visible_to(c.bit)) continue;
        consumer_rows[static_cast<std::size_t>(
                          cj_->consumer_bit_to_slot.at(c.bit))]
            .push_back(kv.value);
      }
    }
    // Evaluate merged operations and post-job computations in order.
    std::vector<std::vector<Row>> stage_rows(cj_->stages.size());
    for (std::size_t s = 0; s < cj_->stages.size(); ++s) {
      const CompiledStage& st = cj_->stages[s];
      auto input_of = [&](const Stage::In& in) -> const std::vector<Row>& {
        if (in.from_consumer)
          return consumer_rows[static_cast<std::size_t>(
              cj_->consumer_bit_to_slot.at(in.index))];
        return stage_rows[static_cast<std::size_t>(in.index)];
      };
      switch (st.op->kind) {
        case PlanKind::Join:
          stage_rows[s] =
              join_group(st.join_spec, input_of(st.inputs[0]), input_of(st.inputs[1]));
          break;
        case PlanKind::Agg:
          stage_rows[s] = aggregate_rows(*st.op, input_of(st.inputs[0]));
          break;
        case PlanKind::SP:
          stage_rows[s] = filter_project(
              input_of(st.inputs[0]), st.sp_has_filter ? &st.sp_filter : nullptr,
              st.sp_projections);
          break;
        case PlanKind::Sort: {
          std::vector<Row> rows = input_of(st.inputs[0]);
          stage_rows[s] = sort_rows(*st.op, std::move(rows));
          break;
        }
        case PlanKind::Scan:
          throw InternalError("scan cannot be a reduce stage");
      }
      if (st.output_index >= 0)
        for (auto& r : stage_rows[s]) out.emit_to(st.output_index, std::move(r));
    }
  }

 private:
  std::shared_ptr<const CompiledJob> cj_;
};

class CombineAggReducer final : public Reducer {
 public:
  explicit CombineAggReducer(std::shared_ptr<const CompiledJob> cj)
      : cj_(std::move(cj)) {}

  void reduce(const Row& key, std::span<const KeyValue> values,
              ReduceEmitter& out) override {
    const auto& aggs = cj_->combine_agg->aggs;
    std::vector<AggState> states;
    for (const auto& a : aggs) states.emplace_back(a);
    for (const auto& kv : values) {
      std::size_t pos = 0;
      for (auto& s : states) {
        const std::size_t n = static_cast<std::size_t>(s.partial_arity());
        s.add_partial(std::span<const Value>(kv.value.data() + pos, n));
        pos += n;
      }
    }
    Row internal = key;
    for (const auto& s : states) internal.push_back(s.result());
    Row o;
    o.reserve(cj_->combine_projections.size());
    for (const auto& p : cj_->combine_projections) o.push_back(p.eval(internal));
    if (cj_->combine_has_having && !is_true(cj_->combine_having.eval(o)))
      return;
    out.emit_to(0, std::move(o));
  }

 private:
  std::shared_ptr<const CompiledJob> cj_;
};

}  // namespace

MRJobSpec build_common_job(const TranslatedJob& job,
                           const TranslatorProfile& profile, const Dfs& dfs) {
  auto cj = std::make_shared<CompiledJob>();
  MRJobSpec spec;
  spec.name = job.name;
  spec.outputs = job.outputs;
  spec.num_reduce_tasks = job.num_reduce_tasks;
  spec.map_cpu_multiplier = profile.map_cpu_multiplier;
  spec.reduce_cpu_multiplier = profile.reduce_cpu_multiplier;
  spec.intermediate_expansion = profile.intermediate_expansion;
  {
    // "Hive cannot efficiently execute join with temporarily-generated
    // inputs" (Section VII-F): joins fed only by intermediates pay the
    // profile's penalty in the reduce phase.
    const bool has_join = std::any_of(
        job.stages.begin(), job.stages.end(),
        [](const Stage& s) { return s.op->kind == PlanKind::Join; });
    const bool all_temp_inputs =
        !job.input_files.empty() &&
        std::none_of(job.input_files.begin(), job.input_files.end(),
                     [](const InputFile& f) {
                       return starts_with(f.path, "/tables/");
                     });
    if (has_join && all_temp_inputs)
      spec.reduce_cpu_multiplier *= profile.temp_input_join_penalty;
  }
  spec.tag_encoding = profile.tag_encoding;
  spec.num_merged_jobs = std::max(1, job.total_consumers());

  // Inputs and their runtime schemas.
  std::vector<Schema> file_schemas;
  for (std::size_t i = 0; i < job.input_files.size(); ++i) {
    spec.inputs.push_back(JobInput{job.input_files[i].path, static_cast<int>(i)});
    file_schemas.push_back(dfs.file(job.input_files[i].path).table->schema());
  }

  // ---- CombineAgg fast path ----
  if (job.kind == TranslatedJob::Kind::CombineAgg) {
    const PlanNode* agg = job.combine_agg_node;
    check(agg != nullptr, "CombineAgg job without agg node");
    cj->combine_agg = agg;
    const Schema& fs = file_schemas.at(0);
    const PlanNode* child = agg->children[0].get();
    if (child->kind == PlanKind::Scan && child->filter) {
      cj->combine_filter = BoundExpr(child->filter, fs);
      cj->combine_has_filter = true;
    }
    for (const auto& g : agg->group_cols) {
      cj->combine_group_exprs.emplace_back(Expr::make_column(g), fs);
      spec.key_column_names.push_back(g);
    }
    for (const auto& a : agg->aggs) {
      if (a.star)
        cj->combine_arg_exprs.emplace_back();
      else
        cj->combine_arg_exprs.emplace_back(a.arg, fs);
    }
    cj->combine_projections = bind_all(agg->projections, agg->agg_internal_schema());
    if (agg->filter) {
      cj->combine_having = BoundExpr(agg->filter, agg->output_schema);
      cj->combine_has_having = true;
    }
    spec.make_mapper = [cj] { return std::make_unique<CombineAggMapper>(cj); };
    spec.make_reducer = [cj] { return std::make_unique<CombineAggReducer>(cj); };
    return spec;
  }

  // Reduce key names for observability: every emission shares one
  // partition-key shape, so the first emission's key expressions name it.
  if (!job.emissions.empty())
    for (const auto& k : job.emissions.front().key_exprs)
      spec.key_column_names.push_back(k->to_string());

  // ---- compile emissions ----
  cj->emissions_by_file.resize(job.input_files.size());
  for (const auto& e : job.emissions) {
    CompiledEmission ce;
    ce.input_file = e.input_file;
    ce.source_tag = e.source_tag;
    const Schema& fs = file_schemas.at(static_cast<std::size_t>(e.input_file));
    for (const auto& k : e.key_exprs) ce.keys.emplace_back(k, fs);
    for (const auto& v : e.value_exprs) ce.values.emplace_back(v, fs);
    for (const auto& c : e.consumers) {
      CompiledConsumer cc;
      // The visibility tag is a 32-bit exclude mask (KeyValue::exclude);
      // a consumer id outside [0, 32) would shift out of range at map
      // time, so reject it once here at job-compile time.
      check(c.consumer_id >= 0 && c.consumer_id < 32,
            "consumer id does not fit the 32-bit visibility mask");
      cc.bit = c.consumer_id;
      if (c.filter) {
        cc.filter = BoundExpr(c.filter, fs);
        cc.has_filter = true;
      }
      cj->consumer_bit_to_slot[c.consumer_id] = cj->num_consumers++;
      ce.consumers.push_back(std::move(cc));
    }
    cj->emissions_by_file[static_cast<std::size_t>(e.input_file)].push_back(
        static_cast<int>(cj->emissions.size()));
    // Note: the reducer indexes emissions by source_tag; lowering assigns
    // source tags equal to the emission's position in job.emissions.
    check(ce.source_tag == static_cast<int>(cj->emissions.size()),
          "emission source tags must be dense and ordered");
    cj->emissions.push_back(std::move(ce));
  }

  // ---- compile stages ----
  for (const auto& st : job.stages) {
    CompiledStage cs;
    cs.op = st.op;
    cs.inputs = st.inputs;
    cs.output_index = st.output_index;
    switch (st.op->kind) {
      case PlanKind::Join: {
        const Schema& ls = st.op->children[0]->output_schema;
        const Schema& rs = st.op->children[1]->output_schema;
        const Schema combined = Schema::concat(ls, rs);
        if (st.op->filter) {
          cs.join_residual = BoundExpr(st.op->filter, combined);
          cs.join_spec.residual = nullptr;  // fixed after move below
        }
        cs.join_projections = bind_all(st.op->projections, combined);
        cs.join_spec.type = st.op->join_type;
        cs.join_spec.left_width = ls.size();
        cs.join_spec.right_width = rs.size();
        for (std::size_t i = 0; i < st.op->left_keys.size(); ++i) {
          cs.join_spec.left_key_idx.push_back(ls.index_of(st.op->left_keys[i]));
          cs.join_spec.right_key_idx.push_back(rs.index_of(st.op->right_keys[i]));
        }
        break;
      }
      case PlanKind::SP: {
        const Schema& child = st.op->children[0]->output_schema;
        if (st.op->filter) {
          cs.sp_filter = BoundExpr(st.op->filter, child);
          cs.sp_has_filter = true;
        }
        cs.sp_projections = bind_all(st.op->projections, child);
        break;
      }
      case PlanKind::Agg:
      case PlanKind::Sort:
        break;  // evaluated through the plan node directly
      case PlanKind::Scan: {
        // Scan stages occur only in map-only scan jobs: selection and
        // projection bind against the base file's schema directly.
        check(job.kind == TranslatedJob::Kind::MapOnly,
              "scan stage outside a map-only job");
        const Schema& fs = file_schemas.at(0);
        if (st.op->filter) {
          cs.sp_filter = BoundExpr(st.op->filter, fs);
          cs.sp_has_filter = true;
        }
        cs.sp_projections = bind_all(st.op->projections, fs);
        break;
      }
    }
    cj->stages.push_back(std::move(cs));
  }
  // Fix join_spec residual/projection pointers now that stages won't move.
  for (auto& cs : cj->stages) {
    if (cs.op->kind == PlanKind::Join) {
      if (cs.op->filter) cs.join_spec.residual = &cs.join_residual;
      cs.join_spec.projections = &cs.join_projections;
    }
  }

  if (job.kind == TranslatedJob::Kind::MapOnly) {
    check(cj->stages.size() == 1 && (cj->stages[0].op->kind == PlanKind::SP ||
                                     cj->stages[0].op->kind == PlanKind::Scan),
          "map-only jobs must be a single SP or scan stage");
    spec.make_mapper = [cj] { return std::make_unique<SpMapper>(cj); };
    spec.make_reducer = nullptr;
    return spec;
  }

  spec.make_mapper = [cj] { return std::make_unique<CommonMapper>(cj); };
  spec.make_reducer = [cj] { return std::make_unique<CommonReducer>(cj); };
  return spec;
}

}  // namespace ysmart
