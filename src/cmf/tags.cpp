#include "cmf/tags.h"

namespace ysmart {

const char* to_string(TagEncoding enc) {
  return enc == TagEncoding::ExcludeList ? "exclude-list" : "include-list";
}

std::uint64_t tag_overhead_bytes(int num_merged_jobs, int excluded,
                                 TagEncoding enc) {
  if (num_merged_jobs <= 1) return 0;
  const int named =
      enc == TagEncoding::ExcludeList ? excluded : num_merged_jobs - excluded;
  return 1 + static_cast<std::uint64_t>(named);
}

}  // namespace ysmart
