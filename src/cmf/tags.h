// Tag-encoding utilities (Section VI-A).
//
// CMF tags each common-mapper output pair with the merged jobs that must
// NOT see it. This header provides the small helpers shared by the engine
// accounting and the tag-encoding ablation benchmark.
#pragma once

#include <cstdint>
#include <string>

#include "mr/keyvalue.h"

namespace ysmart {

const char* to_string(TagEncoding enc);

/// Bytes of tag overhead a single pair pays under `enc` given how many of
/// the job's `num_merged_jobs` consumers are excluded from seeing it.
std::uint64_t tag_overhead_bytes(int num_merged_jobs, int excluded,
                                 TagEncoding enc);

}  // namespace ysmart
