// CSV import/export for tables.
//
// Lets a downstream user load their own data instead of the built-in
// generators. Dialect: comma-separated (configurable), double-quote
// quoting with "" escapes, first line optionally a header. NULLs are
// empty fields. Values parse according to the target schema's types;
// with no schema, types are inferred per column (Int ⊂ Double ⊂ String)
// from the data.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "storage/table.h"

namespace ysmart {

struct CsvOptions {
  char separator = ',';
  bool header = true;
};

/// Parse rows from `in` into a table with the given schema. A header
/// line, when present, is validated against the schema's column count.
/// Throws ExecError on malformed rows or unparseable values.
std::shared_ptr<Table> read_csv(std::istream& in, const Schema& schema,
                                const CsvOptions& opts = {});

/// Parse with schema inference: column names come from the header (or
/// are synthesized as col0..colN), and each column gets the narrowest
/// type that fits every non-NULL value.
std::shared_ptr<Table> read_csv_infer(std::istream& in,
                                      const CsvOptions& opts = {});

/// Write `t` to `out`, quoting where needed; NULLs become empty fields.
void write_csv(const Table& t, std::ostream& out, const CsvOptions& opts = {});

/// File-path conveniences. Throw ExecError when the file cannot be
/// opened.
std::shared_ptr<Table> read_csv_file(const std::string& path,
                                     const Schema& schema,
                                     const CsvOptions& opts = {});
std::shared_ptr<Table> read_csv_file_infer(const std::string& path,
                                           const CsvOptions& opts = {});
void write_csv_file(const Table& t, const std::string& path,
                    const CsvOptions& opts = {});

}  // namespace ysmart
