#include "storage/dfs.h"

#include <algorithm>

#include "common/error.h"

namespace ysmart {

Dfs::Dfs(int num_nodes, std::uint64_t block_bytes, int replication)
    : num_nodes_(num_nodes),
      block_bytes_(block_bytes),
      replication_(std::min(replication, num_nodes)) {
  check(num_nodes >= 1, "Dfs: need at least one node");
  check(block_bytes >= 1, "Dfs: block size must be positive");
  check(replication >= 1, "Dfs: replication must be >= 1");
}

const DfsFile& Dfs::write(const std::string& path,
                          std::shared_ptr<const Table> t) {
  check(t != nullptr, "Dfs::write: null table");
  DfsFile f;
  f.path = path;
  f.table = std::move(t);

  // Cut rows into blocks of ~block_bytes_ each.
  const auto& rows = f.table->rows();
  std::size_t first = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    acc += row_byte_size(rows[i]);
    const bool last = (i + 1 == rows.size());
    if (acc >= block_bytes_ || last) {
      DfsBlock b;
      b.first_row = first;
      b.row_count = i + 1 - first;
      b.bytes = acc;
      for (int r = 0; r < replication_; ++r)
        b.replica_nodes.push_back(
            static_cast<int>((placement_cursor_ + r) % num_nodes_));
      ++placement_cursor_;
      f.total_bytes += acc;
      f.blocks.push_back(std::move(b));
      first = i + 1;
      acc = 0;
    }
  }
  if (rows.empty()) {
    // Keep an explicit empty block so downstream jobs still get one task
    // (mirrors Hadoop launching a task for an empty split).
    DfsBlock b;
    b.replica_nodes.push_back(static_cast<int>(placement_cursor_++ % num_nodes_));
    f.blocks.push_back(std::move(b));
  }
  auto [it, _] = files_.insert_or_assign(path, std::move(f));
  return it->second;
}

bool Dfs::exists(const std::string& path) const { return files_.count(path) > 0; }

const DfsFile& Dfs::file(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw ExecError("DFS file not found: " + path);
  return it->second;
}

void Dfs::remove(const std::string& path) { files_.erase(path); }

std::uint64_t Dfs::stored_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [_, f] : files_)
    n += f.total_bytes * static_cast<std::uint64_t>(replication_);
  return n;
}

std::vector<std::string> Dfs::list() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : files_) out.push_back(k);
  return out;
}

}  // namespace ysmart
