#include "storage/table.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

Table::Table(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {
  for (const auto& r : rows_) {
    if (r.size() != schema_.size())
      throw InternalError("Table: row arity does not match schema");
    bytes_ += row_byte_size(r);
  }
}

void Table::append(Row row) {
  if (row.size() != schema_.size())
    throw InternalError("Table::append: row arity does not match schema");
  bytes_ += row_byte_size(row);
  rows_.push_back(std::move(row));
}

void Table::sort() {
  std::sort(rows_.begin(), rows_.end(), RowLess{});
}

std::string Table::to_string(std::size_t limit) const {
  std::string out = schema_.to_string() + "\n";
  const std::size_t n = std::min(limit, rows_.size());
  for (std::size_t i = 0; i < n; ++i) out += row_to_string(rows_[i]) + "\n";
  if (rows_.size() > n)
    out += strf("... (%zu more rows)\n", rows_.size() - n);
  return out;
}

bool same_rows_unordered(const Table& a, const Table& b) {
  if (a.row_count() != b.row_count()) return false;
  auto ra = a.rows();
  auto rb = b.rows();
  std::sort(ra.begin(), ra.end(), RowLess{});
  std::sort(rb.begin(), rb.end(), RowLess{});
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (compare_rows(ra[i], rb[i]) != 0) return false;
  return true;
}

}  // namespace ysmart
