#include "storage/catalog.h"

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

void Catalog::register_table(const std::string& name, Schema schema) {
  tables_[to_lower(name)] = std::move(schema);
}

bool Catalog::has_table(const std::string& name) const {
  return tables_.count(to_lower(name)) > 0;
}

const Schema& Catalog::schema_of(const std::string& name) const {
  auto it = tables_.find(to_lower(name));
  if (it == tables_.end()) throw PlanError("unknown table: " + name);
  return it->second;
}

std::vector<std::string> Catalog::table_names() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : tables_) out.push_back(k);
  return out;
}

}  // namespace ysmart
