// Catalog: maps table names to base-table schemas and (via the DFS) their
// stored data. The planner consults the catalog to resolve FROM clauses.
#pragma once

#include <map>
#include <string>

#include "common/schema.h"

namespace ysmart {

class Catalog {
 public:
  /// Register (or replace) a base table's schema under `name` (lowercased).
  void register_table(const std::string& name, Schema schema);

  bool has_table(const std::string& name) const;

  /// Schema of `name`; throws PlanError if unknown.
  const Schema& schema_of(const std::string& name) const;

  std::vector<std::string> table_names() const;

 private:
  std::map<std::string, Schema> tables_;
};

}  // namespace ysmart
