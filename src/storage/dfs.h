// Dfs: the simulated distributed file system (HDFS stand-in).
//
// Files hold a Table plus a block map: the rows are partitioned into
// fixed-size blocks, each placed on `replication` simulated nodes. The
// MapReduce engine derives one map task per block and uses the placement
// to decide whether a read is node-local (disk bandwidth) or remote
// (network bandwidth). Writes to the DFS cost one local write plus
// (replication - 1) network copies, which is exactly the materialization
// penalty YSmart's job merging removes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ysmart {

struct DfsBlock {
  std::size_t first_row = 0;
  std::size_t row_count = 0;
  std::uint64_t bytes = 0;
  std::vector<int> replica_nodes;  // node ids holding a copy
};

struct DfsFile {
  std::string path;
  std::shared_ptr<const Table> table;
  std::vector<DfsBlock> blocks;
  std::uint64_t total_bytes = 0;
};

class Dfs {
 public:
  /// `num_nodes`: size of the simulated cluster (for block placement);
  /// `block_bytes`: HDFS chunk size (paper uses 64 MB; scaled down here);
  /// `replication`: copies per block.
  Dfs(int num_nodes, std::uint64_t block_bytes, int replication);

  int num_nodes() const { return num_nodes_; }
  std::uint64_t block_bytes() const { return block_bytes_; }
  int replication() const { return replication_; }

  /// Store a table under `path` (replacing any existing file). Returns the
  /// created file. Placement is deterministic (round-robin from a counter).
  const DfsFile& write(const std::string& path, std::shared_ptr<const Table> t);

  bool exists(const std::string& path) const;
  const DfsFile& file(const std::string& path) const;  // throws if absent
  void remove(const std::string& path);

  /// Total bytes currently stored (all replicas), for capacity checks.
  std::uint64_t stored_bytes() const;

  std::vector<std::string> list() const;

 private:
  int num_nodes_;
  std::uint64_t block_bytes_;
  int replication_;
  std::uint64_t placement_cursor_ = 0;
  std::map<std::string, DfsFile> files_;
};

}  // namespace ysmart
