// Table: an in-memory relation (schema + rows) with byte accounting.
//
// Tables are the unit stored in the simulated DFS and produced by query
// execution. Row data is genuinely materialized so every MapReduce job in
// the simulator processes real records.
#pragma once

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace ysmart {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  std::size_t row_count() const { return rows_.size(); }
  std::size_t byte_size() const { return bytes_; }

  /// Append one row; must match the schema arity.
  void append(Row row);

  /// Sort rows lexicographically (used to canonicalize for comparisons).
  void sort();

  /// Render the first `limit` rows as an aligned text block (debug aid).
  std::string to_string(std::size_t limit = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::size_t bytes_ = 0;
};

/// True if the two tables contain the same multiset of rows (order
/// insensitive); used by the differential tests against refdb.
bool same_rows_unordered(const Table& a, const Table& b);

}  // namespace ysmart
