#include "storage/csv.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

namespace {

/// Split one CSV line honoring double-quote quoting with "" escapes.
/// Returns false at end of input.
bool read_record(std::istream& in, char sep, std::vector<std::string>& fields,
                 std::vector<bool>& quoted) {
  fields.clear();
  quoted.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  std::string cur;
  bool cur_quoted = false;
  bool in_quotes = false;
  std::size_t i = 0;
  while (true) {
    if (i >= line.size()) {
      if (in_quotes) {
        // Embedded newline inside a quoted field: continue on next line.
        std::string next;
        if (!std::getline(in, next))
          throw ExecError("csv: unterminated quoted field");
        if (!next.empty() && next.back() == '\r') next.pop_back();
        cur.push_back('\n');
        line = std::move(next);
        i = 0;
        continue;
      }
      fields.push_back(std::move(cur));
      quoted.push_back(cur_quoted);
      return true;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cur.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && cur.empty()) {
      in_quotes = true;
      cur_quoted = true;
      ++i;
      continue;
    }
    if (c == sep) {
      fields.push_back(std::move(cur));
      quoted.push_back(cur_quoted);
      cur.clear();
      cur_quoted = false;
      ++i;
      continue;
    }
    cur.push_back(c);
    ++i;
  }
}

bool looks_like_int(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  return true;
}

bool looks_like_double(const std::string& s) {
  if (s.empty()) return false;
  try {
    std::size_t pos = 0;
    (void)std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

Value parse_value(const std::string& field, bool was_quoted, ValueType type) {
  if (field.empty() && !was_quoted) return Value::null();
  switch (type) {
    case ValueType::Int:
      if (!looks_like_int(field))
        throw ExecError("csv: not an integer: '" + field + "'");
      return Value{static_cast<std::int64_t>(std::stoll(field))};
    case ValueType::Double:
      if (!looks_like_double(field))
        throw ExecError("csv: not a number: '" + field + "'");
      return Value{std::stod(field)};
    case ValueType::String:
    case ValueType::Null:
      return Value{field};
  }
  return Value{field};
}

}  // namespace

std::shared_ptr<Table> read_csv(std::istream& in, const Schema& schema,
                                const CsvOptions& opts) {
  auto t = std::make_shared<Table>(schema);
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  if (opts.header) {
    if (!read_record(in, opts.separator, fields, quoted))
      return t;  // empty file
    if (fields.size() != schema.size())
      throw ExecError(strf("csv: header has %zu fields, schema has %zu",
                           fields.size(), schema.size()));
  }
  std::size_t line_no = opts.header ? 1 : 0;
  while (read_record(in, opts.separator, fields, quoted)) {
    ++line_no;
    if (fields.size() == 1 && fields[0].empty() && !quoted[0])
      continue;  // blank line
    if (fields.size() != schema.size())
      throw ExecError(strf("csv: line %zu has %zu fields, expected %zu",
                           line_no, fields.size(), schema.size()));
    Row row;
    row.reserve(schema.size());
    for (std::size_t i = 0; i < fields.size(); ++i)
      row.push_back(parse_value(fields[i], quoted[i], schema.at(i).type));
    t->append(std::move(row));
  }
  return t;
}

std::shared_ptr<Table> read_csv_infer(std::istream& in,
                                      const CsvOptions& opts) {
  std::vector<std::vector<std::string>> raw;
  std::vector<std::vector<bool>> raw_quoted;
  std::vector<std::string> header;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  bool first = true;
  std::size_t width = 0;
  while (read_record(in, opts.separator, fields, quoted)) {
    if (fields.size() == 1 && fields[0].empty() && !quoted[0]) continue;
    if (first && opts.header) {
      header = fields;
      width = fields.size();
      first = false;
      continue;
    }
    if (first) {
      width = fields.size();
      first = false;
    }
    if (fields.size() != width)
      throw ExecError("csv: ragged rows during inference");
    raw.push_back(fields);
    raw_quoted.push_back(quoted);
  }
  if (width == 0) throw ExecError("csv: empty input, cannot infer schema");

  Schema schema;
  for (std::size_t c = 0; c < width; ++c) {
    ValueType t = ValueType::Int;  // narrowest first
    bool any = false;
    for (std::size_t r = 0; r < raw.size(); ++r) {
      const auto& f = raw[r][c];
      if (f.empty() && !raw_quoted[r][c]) continue;  // NULL
      any = true;
      if (t == ValueType::Int && !looks_like_int(f)) t = ValueType::Double;
      if (t == ValueType::Double && !looks_like_double(f))
        t = ValueType::String;
    }
    if (!any) t = ValueType::String;
    std::string name = (c < header.size() && !header[c].empty())
                           ? to_lower(header[c])
                           : "col" + std::to_string(c);
    schema.add(std::move(name), t);
  }

  auto t = std::make_shared<Table>(schema);
  for (std::size_t r = 0; r < raw.size(); ++r) {
    Row row;
    row.reserve(width);
    for (std::size_t c = 0; c < width; ++c)
      row.push_back(parse_value(raw[r][c], raw_quoted[r][c], schema.at(c).type));
    t->append(std::move(row));
  }
  return t;
}

void write_csv(const Table& t, std::ostream& out, const CsvOptions& opts) {
  auto emit_field = [&](const std::string& s, bool force_quote) {
    const bool need = force_quote || s.find(opts.separator) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos;
    if (!need) {
      out << s;
      return;
    }
    out << '"';
    for (char c : s) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  if (opts.header) {
    for (std::size_t i = 0; i < t.schema().size(); ++i) {
      if (i) out << opts.separator;
      emit_field(t.schema().at(i).name, false);
    }
    out << '\n';
  }
  for (const auto& r : t.rows()) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) out << opts.separator;
      if (r[i].is_null()) continue;  // NULL = empty field
      // Quote empty strings so they round-trip as non-NULL.
      emit_field(r[i].to_string(),
                 r[i].type() == ValueType::String && r[i].as_string().empty());
    }
    out << '\n';
  }
}

std::shared_ptr<Table> read_csv_file(const std::string& path,
                                     const Schema& schema,
                                     const CsvOptions& opts) {
  std::ifstream in(path);
  if (!in) throw ExecError("csv: cannot open " + path);
  return read_csv(in, schema, opts);
}

std::shared_ptr<Table> read_csv_file_infer(const std::string& path,
                                           const CsvOptions& opts) {
  std::ifstream in(path);
  if (!in) throw ExecError("csv: cannot open " + path);
  return read_csv_infer(in, opts);
}

void write_csv_file(const Table& t, const std::string& path,
                    const CsvOptions& opts) {
  std::ofstream out(path);
  if (!out) throw ExecError("csv: cannot open " + path + " for writing");
  write_csv(t, out, opts);
}

}  // namespace ysmart
