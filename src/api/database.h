// ysmart::Database — the library's public facade.
//
// Owns a simulated cluster (DFS + MapReduce engine), a catalog, and the
// translators. Typical use:
//
//   ysmart::Database db(ysmart::ClusterConfig::small_local(100));
//   db.create_table("clicks", ysmart::generate_clicks({}));
//   auto ys = db.run(sql, ysmart::TranslatorProfile::ysmart());
//   auto hv = db.run(sql, ysmart::TranslatorProfile::hive());
//   std::cout << ys.metrics.breakdown();
//
// run() genuinely executes the translated MapReduce jobs over the stored
// data; metrics carry measured bytes/records and simulated phase times.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "mr/engine.h"
#include "plan/plan.h"
#include "refdb/refdb.h"
#include "stats/stats.h"
#include "storage/catalog.h"
#include "translator/dag_executor.h"
#include "translator/jobspec.h"

namespace ysmart {

namespace obs {
struct ObsContext;
}

class Database {
 public:
  explicit Database(ClusterConfig cfg);

  /// As above, but simulate on an explicit thread pool instead of the
  /// process-wide shared one (tests use this to pin the host-parallelism
  /// degree; pool size never affects simulated results).
  Database(ClusterConfig cfg, ThreadPool* pool);

  /// Register `data` as base table `name` (stored into the DFS).
  void create_table(const std::string& name, std::shared_ptr<const Table> data);

  /// Parse + plan (fresh tree; safe to mutate).
  PlanPtr plan(const std::string& sql) const;

  /// Translate without executing.
  TranslatedQuery translate_query(const std::string& sql,
                                  const TranslatorProfile& profile);

  /// Plan tree + correlation report + job list, as text.
  std::string explain(const std::string& sql, const TranslatorProfile& profile);

  /// Translate and execute on the simulated cluster.
  QueryRunResult run(const std::string& sql, const TranslatorProfile& profile);

  /// Execute on the single-node reference engine (correctness oracle).
  Table run_reference(const std::string& sql) const;

  /// Execute as the "ideal parallel DBMS" (Section VII-D comparison).
  DbmsRunResult run_dbms(const std::string& sql, DbmsCostConfig cfg) const;

  const Catalog& catalog() const { return catalog_; }
  const StatsCatalog& stats() const { return stats_; }
  Engine& engine() { return *engine_; }
  Dfs& dfs() { return dfs_; }
  const ClusterConfig& cluster() const { return engine_->cluster(); }

  /// Replace the engine (e.g. to re-run on a different cluster preset
  /// while keeping the loaded tables). Table data is re-registered and
  /// an attached observer carries over to the new engine.
  void reconfigure_cluster(ClusterConfig cfg);

  /// Attach (or detach with null) an observability context, non-owning.
  /// While attached, run()/translate_query() record spans and counters
  /// into it; detached (the default) everything is skipped. Observation
  /// never alters results or simulated metrics.
  void set_observer(obs::ObsContext* obs);
  obs::ObsContext* observer() const { return obs_; }

 private:
  TableSource table_source() const;

  Dfs dfs_;
  std::unique_ptr<Engine> engine_;
  Catalog catalog_;
  StatsCatalog stats_;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
  int run_counter_ = 0;
  obs::ObsContext* obs_ = nullptr;
};

}  // namespace ysmart
