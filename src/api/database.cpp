#include "api/database.h"

#include "common/error.h"
#include "common/strings.h"
#include "obs/obs.h"
#include "plan/builder.h"
#include "plan/printer.h"
#include "plan/prune.h"
#include "sql/parser.h"
#include "translator/correlation.h"
#include "translator/lowering.h"
#include "translator/ysmart_translator.h"

namespace ysmart {

Database::Database(ClusterConfig cfg)
    : dfs_(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication),
      engine_(std::make_unique<Engine>(dfs_, cfg)) {}

void Database::create_table(const std::string& name,
                            std::shared_ptr<const Table> data) {
  check(data != nullptr, "create_table: null data");
  catalog_.register_table(name, data->schema());
  stats_.put(name, StatsCatalog::estimate(*data));
  tables_[to_lower(name)] = data;
  dfs_.write(LoweringContext::table_path(to_lower(name)), data);
}

PlanPtr Database::plan(const std::string& sql) const {
  return plan_query(sql, catalog_);
}

TranslatedQuery Database::translate_query(const std::string& sql,
                                          const TranslatorProfile& profile) {
  obs::ScopedSpan translate_span(obs_, "translate:" + profile.name,
                                 "translate");
  PlanPtr p;
  {
    obs::ScopedSpan parse_span(obs_, "parse+plan", "translate");
    p = plan(sql);
  }
  const std::string scratch =
      "/scratch/" + profile.name + "/run" + std::to_string(run_counter_++);
  TranslatedQuery q = translate(p, profile, scratch, &stats_, obs_);
  translate_span.arg("jobs", static_cast<std::uint64_t>(q.jobs.size()));
  return q;
}

std::string Database::explain(const std::string& sql,
                              const TranslatorProfile& profile) {
  PlanPtr p = plan(sql);
  std::string out = "== plan ==\n" + print_plan(p);
  prune_plan(p);
  CorrelationAnalysis ca(p);
  out += "== correlations ==\n" + ca.report();
  const std::string scratch =
      "/scratch/" + profile.name + "/explain" + std::to_string(run_counter_++);
  TranslatedQuery q = translate(p, profile, scratch, &stats_);
  out += "== jobs (" + profile.name + ") ==\n" + q.describe();
  return out;
}

QueryRunResult Database::run(const std::string& sql,
                             const TranslatorProfile& profile) {
  obs::ScopedSpan query_span(obs_, "query:" + profile.name, "query");
  const double sim0 = obs_ ? obs_->tracer.sim_now() : 0.0;
  if (obs_) obs_->samples.begin_query();
  TranslatedQuery q = translate_query(sql, profile);
  QueryRunResult r = run_translated(q, *engine_, profile);
  if (obs_) {
    // wall_time_s is the modeled end-to-end elapsed time (waves overlap
    // under concurrent submission), which is where the executor leaves
    // the simulated cursor; total_time_s is the serial sum.
    query_span.sim(sim0, r.metrics.wall_time_s);
    query_span.arg("jobs", static_cast<std::uint64_t>(r.metrics.jobs.size()));
    query_span.arg("sim_total_s", r.metrics.total_time_s());
    if (r.metrics.failed()) query_span.arg("failed", std::string_view("true"));
  }
  return r;
}

TableSource Database::table_source() const {
  return [this](const std::string& name) -> std::shared_ptr<const Table> {
    auto it = tables_.find(to_lower(name));
    return it == tables_.end() ? nullptr : it->second;
  };
}

Table Database::run_reference(const std::string& sql) const {
  return execute_plan_ref(plan(sql), table_source());
}

DbmsRunResult Database::run_dbms(const std::string& sql,
                                 DbmsCostConfig cfg) const {
  return execute_plan_dbms(plan(sql), table_source(), cfg);
}

void Database::reconfigure_cluster(ClusterConfig cfg) {
  engine_.reset();
  dfs_ = Dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
  engine_ = std::make_unique<Engine>(dfs_, std::move(cfg));
  engine_->set_obs(obs_);
  for (const auto& [name, data] : tables_)
    dfs_.write(LoweringContext::table_path(name), data);
}

void Database::set_observer(obs::ObsContext* obs) {
  obs_ = obs;
  engine_->set_obs(obs);
}

}  // namespace ysmart
