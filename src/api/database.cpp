#include "api/database.h"

#include <chrono>

#include "common/error.h"
#include "common/strings.h"
#include "obs/analyzer.h"
#include "obs/obs.h"
#include "plan/builder.h"
#include "plan/printer.h"
#include "plan/prune.h"
#include "sql/parser.h"
#include "translator/correlation.h"
#include "translator/lowering.h"
#include "translator/ysmart_translator.h"

namespace ysmart {

Database::Database(ClusterConfig cfg)
    : dfs_(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication),
      engine_(std::make_unique<Engine>(dfs_, cfg)) {}

Database::Database(ClusterConfig cfg, ThreadPool* pool)
    : dfs_(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication),
      engine_(std::make_unique<Engine>(dfs_, cfg, pool)) {}

void Database::create_table(const std::string& name,
                            std::shared_ptr<const Table> data) {
  check(data != nullptr, "create_table: null data");
  catalog_.register_table(name, data->schema());
  stats_.put(name, StatsCatalog::estimate(*data));
  tables_[to_lower(name)] = data;
  dfs_.write(LoweringContext::table_path(to_lower(name)), data);
}

PlanPtr Database::plan(const std::string& sql) const {
  return plan_query(sql, catalog_);
}

TranslatedQuery Database::translate_query(const std::string& sql,
                                          const TranslatorProfile& profile) {
  obs::ScopedSpan translate_span(obs_, "translate:" + profile.name,
                                 "translate");
  // Translation runs on the orchestrating thread; one TaskClock over the
  // whole function attributes its host CPU and allocations.
  obs::PhaseClock translate_prof(obs_ ? &obs_->profiler : nullptr,
                                 translate_span.id(),
                                 "translate:" + profile.name, "translate");
  obs::TaskClock translate_tc(translate_prof.agg());
  PlanPtr p;
  {
    obs::ScopedSpan parse_span(obs_, "parse+plan", "translate");
    p = plan(sql);
  }
  const std::string scratch =
      "/scratch/" + profile.name + "/run" + std::to_string(run_counter_++);
  TranslatedQuery q = translate(p, profile, scratch, &stats_, obs_);
  // Plan axis: record the prediction at translate time, before any
  // execution, so the join against actuals is honest (obs/plan_view.h).
  if (obs_ && obs_->plans.enabled())
    obs_->plans.record_prediction(obs::predict_query(
        q, profile, stats_, dfs_, engine_->cluster(), sql));
  translate_span.arg("jobs", static_cast<std::uint64_t>(q.jobs.size()));
  if (obs_)
    obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::Translate,
                      "translated", obs_->tracer.sim_now(),
                      {{"profile", std::string_view(profile.name)},
                       {"jobs", static_cast<std::uint64_t>(q.jobs.size())}});
  return q;
}

std::string Database::explain(const std::string& sql,
                              const TranslatorProfile& profile) {
  PlanPtr p = plan(sql);
  std::string out = "== plan ==\n" + print_plan(p);
  prune_plan(p);
  CorrelationAnalysis ca(p);
  out += "== correlations ==\n" + ca.report();
  const std::string scratch =
      "/scratch/" + profile.name + "/explain" + std::to_string(run_counter_++);
  TranslatedQuery q = translate(p, profile, scratch, &stats_);
  out += "== jobs (" + profile.name + ") ==\n" + q.describe();
  return out;
}

QueryRunResult Database::run(const std::string& sql,
                             const TranslatorProfile& profile) {
  obs::ScopedSpan query_span(obs_, "query:" + profile.name, "query");
  // Bracket the query's whole-process CPU so per-phase sums have a
  // coverage top line to reconcile against (host axis only).
  struct QueryCpuScope {
    obs::HostProfiler* prof;
    explicit QueryCpuScope(obs::HostProfiler* p) : prof(p) {
      if (prof) prof->query_begin();
    }
    ~QueryCpuScope() {
      if (prof) prof->query_end();
    }
  } query_cpu(obs_ ? &obs_->profiler : nullptr);
  const double sim0 = obs_ ? obs_->tracer.sim_now() : 0.0;
  // Host wall clock is measured only when an observer is attached and
  // lands exclusively in the history record's segregated wall field.
  std::chrono::steady_clock::time_point host0;
  if (obs_) {
    host0 = std::chrono::steady_clock::now();
    obs_->samples.begin_query();
  }
  TranslatedQuery q = translate_query(sql, profile);
  if (obs_) {
    obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::Translate,
                      "query-start", sim0,
                      {{"profile", std::string_view(profile.name)},
                       {"jobs", static_cast<std::uint64_t>(q.jobs.size())}});
    obs_->progress.begin_query(sql, profile.name, q.jobs.size());
  }
  QueryRunResult r = run_translated(q, *engine_, profile);
  if (obs_) {
    // wall_time_s is the modeled end-to-end elapsed time (waves overlap
    // under concurrent submission), which is where the executor leaves
    // the simulated cursor; total_time_s is the serial sum.
    query_span.sim(sim0, r.metrics.wall_time_s);
    query_span.arg("jobs", static_cast<std::uint64_t>(r.metrics.jobs.size()));
    query_span.arg("sim_total_s", r.metrics.total_time_s());
    if (r.metrics.failed()) query_span.arg("failed", std::string_view("true"));
    obs_->events.emit(
        r.metrics.failed() ? obs::EventLevel::Error : obs::EventLevel::Info,
        obs::EventCategory::Schedule, "query-done",
        sim0 + r.metrics.wall_time_s,
        {{"profile", std::string_view(profile.name)},
         {"jobs", static_cast<std::uint64_t>(r.metrics.jobs.size())},
         {"sim_wall_s", r.metrics.wall_time_s},
         {"failed", r.metrics.failed() ? 1 : 0}});
    obs_->progress.end_query(r.metrics.failed(), r.metrics.wall_time_s);

    // Flight recorder: one record per completed query, built entirely
    // from already-computed values after execution finishes.
    const obs::QueryTaskSamples qs = obs_->samples.last_query();
    const obs::AnalyzerReport report = obs::analyze_query(qs);
    obs::QueryHistoryRecord rec;
    rec.sql = sql;
    rec.profile = profile.name;
    rec.jobs = static_cast<int>(r.metrics.jobs.size());
    rec.waves = static_cast<int>(report.waves.size());
    rec.sim_total_s = r.metrics.total_time_s();
    rec.sim_wall_s = r.metrics.wall_time_s;
    rec.host_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - host0)
            .count();
    rec.failed = r.metrics.failed();
    rec.fail_reason = r.metrics.fail_reason();
    rec.digest = report.diagnosis.empty() ? "ok" : report.diagnosis.front();
    rec.analyzer_text = report.text();
    obs_->history.add(std::move(rec));

    if (obs_->plans.enabled()) obs_->plans.attach_actuals(qs, r.metrics);
  }
  return r;
}

TableSource Database::table_source() const {
  return [this](const std::string& name) -> std::shared_ptr<const Table> {
    auto it = tables_.find(to_lower(name));
    return it == tables_.end() ? nullptr : it->second;
  };
}

Table Database::run_reference(const std::string& sql) const {
  return execute_plan_ref(plan(sql), table_source());
}

DbmsRunResult Database::run_dbms(const std::string& sql,
                                 DbmsCostConfig cfg) const {
  return execute_plan_dbms(plan(sql), table_source(), cfg);
}

void Database::reconfigure_cluster(ClusterConfig cfg) {
  engine_.reset();
  dfs_ = Dfs(cfg.worker_nodes, cfg.scaled_block_bytes(), cfg.replication);
  engine_ = std::make_unique<Engine>(dfs_, std::move(cfg));
  engine_->set_obs(obs_);
  for (const auto& [name, data] : tables_)
    dfs_.write(LoweringContext::table_path(name), data);
}

void Database::set_observer(obs::ObsContext* obs) {
  obs_ = obs;
  engine_->set_obs(obs);
}

}  // namespace ysmart
