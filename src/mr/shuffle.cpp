#include "mr/shuffle.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "common/env.h"
#include "common/prof_counters.h"

namespace ysmart {

namespace {

std::atomic<bool>& raw_flag() {
  static std::atomic<bool> flag{env_flag("YSMART_RAW_COMPARATOR").value_or(true)};
  return flag;
}

/// Three-way (key, source) comparison via the cached normalized key.
inline int raw_compare(const KeyValue& a, const KeyValue& b) {
  prof::count(prof::kRawKeyCompares);
  const int c = norm_key_compare(a.norm_key, b.norm_key);
  if (c != 0) return c;
  return static_cast<int>(a.source) - static_cast<int>(b.source);
}

/// Same ordering through the slow cell-by-cell path.
inline int slow_compare(const KeyValue& a, const KeyValue& b) {
  const auto c = compare_rows(a.key, b.key);
  if (c < 0) return -1;
  if (c > 0) return 1;
  return static_cast<int>(a.source) - static_cast<int>(b.source);
}

template <typename Compare3>
std::vector<KeyValue> merge_impl(
    const std::vector<std::vector<KeyValue>*>& runs, Compare3 cmp) {
  struct Cursor {
    std::size_t run;
    std::size_t pos;
  };
  std::size_t total = 0;
  std::vector<std::size_t> live;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r] || runs[r]->empty()) continue;
    total += runs[r]->size();
    live.push_back(r);
  }
  std::vector<KeyValue> out;
  out.reserve(total);
  if (live.size() == 1) {
    out = std::move(*runs[live[0]]);
    runs[live[0]]->clear();
    return out;
  }

  // Min-heap: smallest (key, source, run index) on top.
  auto greater = [&](const Cursor& a, const Cursor& b) {
    const int c = cmp((*runs[a.run])[a.pos], (*runs[b.run])[b.pos]);
    if (c != 0) return c > 0;
    return a.run > b.run;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  for (std::size_t r : live) heap.push(Cursor{r, 0});
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    auto& run = *runs[c.run];
    out.push_back(std::move(run[c.pos]));
    if (c.pos + 1 < run.size()) heap.push(Cursor{c.run, c.pos + 1});
  }
  for (std::size_t r : live) runs[r]->clear();
  return out;
}

}  // namespace

bool raw_comparator_enabled() {
  return raw_flag().load(std::memory_order_relaxed);
}

void set_raw_comparator_enabled(bool on) {
  raw_flag().store(on, std::memory_order_relaxed);
}

void sort_map_bucket(std::vector<KeyValue>& bucket) {
  if (raw_comparator_enabled()) {
    std::sort(bucket.begin(), bucket.end(),
              [](const KeyValue& a, const KeyValue& b) {
                const int c = raw_compare(a, b);
                if (c != 0) return c < 0;
                return a.seq < b.seq;
              });
  } else {
    std::sort(bucket.begin(), bucket.end(),
              [](const KeyValue& a, const KeyValue& b) {
                const int c = slow_compare(a, b);
                if (c != 0) return c < 0;
                return a.seq < b.seq;
              });
  }
}

std::vector<KeyValue> merge_sorted_runs(
    const std::vector<std::vector<KeyValue>*>& runs) {
  if (raw_comparator_enabled())
    return merge_impl(
        runs, [](const KeyValue& a, const KeyValue& b) { return raw_compare(a, b); });
  return merge_impl(
      runs, [](const KeyValue& a, const KeyValue& b) { return slow_compare(a, b); });
}

}  // namespace ysmart
