// MRJobSpec: a runnable MapReduce job in the simulated runtime.
//
// Mirrors the Hadoop job model of the paper: one or more DFS input files
// (each labeled with an input tag so one mapper class can serve several
// tables, as YSmart's common mapper requires), user Mapper/Reducer
// classes, and one or more DFS output files (ordinary jobs have one; a
// CMF common job that merges several independent jobs writes each merged
// job's result to its own file, distinguished by an output tag).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/schema.h"
#include "exec/batch.h"
#include "mr/keyvalue.h"

namespace ysmart {

struct JobInput {
  std::string path;
  int input_tag = 0;
};

struct JobOutput {
  std::string path;
  Schema schema;
};

/// Sink the map function emits key/value pairs into.
class MapEmitter {
 public:
  virtual ~MapEmitter() = default;
  virtual void emit(KeyValue kv) = 0;

  void emit(Row key, Row value, std::uint8_t source = 0,
            std::uint32_t exclude = 0) {
    KeyValue kv;
    kv.key = std::move(key);
    kv.value = std::move(value);
    kv.source = source;
    kv.exclude = exclude;
    emit(std::move(kv));
  }
};

/// Sink the reduce function emits output records into. `output_idx`
/// selects which JobOutput receives the row.
class ReduceEmitter {
 public:
  virtual ~ReduceEmitter() = default;
  virtual void emit_to(int output_idx, Row row) = 0;
  void emit(Row row) { emit_to(0, std::move(row)); }
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Called once per input record; `input_tag` is the tag of the JobInput
  /// the record came from.
  virtual void map(const Row& record, int input_tag, MapEmitter& out) = 0;

  /// Called once at the end of each map task; lets mappers that buffer
  /// state (e.g. hash-based map-side partial aggregation, Hive's
  /// optimization noted in the paper's footnote 2) flush their output.
  virtual void finish(MapEmitter& /*out*/) {}

  /// Mappers that implement map_batch() return true here; the engine then
  /// feeds the split as ColumnBatch chunks (when YSMART_VECTORIZED is on)
  /// instead of one map() call per record.
  virtual bool supports_batches() const { return false; }

  /// Process one batch. Must emit exactly what per-record map() calls
  /// over batch.source_row(0..rows) would emit, in the same order — the
  /// shuffle sorts by (key, source, seq), so emission order feeds the
  /// tie-break. The default unrolls to map() so overriding
  /// supports_batches() alone is safe.
  virtual void map_batch(ColumnBatch& batch, int input_tag, MapEmitter& out) {
    for (std::size_t i = 0; i < batch.rows(); ++i)
      map(batch.source_row(i), input_tag, out);
  }
};

class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Called once per distinct key with all its values (sorted by source).
  virtual void reduce(const Row& key, std::span<const KeyValue> values,
                      ReduceEmitter& out) = 0;
};

struct MRJobSpec {
  std::string name;
  std::vector<JobInput> inputs;
  std::vector<JobOutput> outputs;  // at least one

  /// Factories so every map/reduce task gets a fresh, stateful instance.
  std::function<std::unique_ptr<Mapper>()> make_mapper;
  std::function<std::unique_ptr<Reducer>()> make_reducer;  // null => map-only

  /// Number of merged jobs a CMF common job carries (1 for plain jobs);
  /// drives the per-pair tag byte overhead.
  int num_merged_jobs = 1;
  TagEncoding tag_encoding = TagEncoding::ExcludeList;

  /// 0 = engine picks (min(total reduce slots, kMaxSimReducers)).
  int num_reduce_tasks = 0;

  /// Human-readable names of the reduce key columns (the partition key).
  /// Purely informational — used by the observability layer to render hot
  /// keys as "col=value"; empty when the producer does not fill it.
  std::vector<std::string> key_column_names;

  // Translator cost profile knobs (how we model Hive vs Pig vs hand-coded
  // per-record constant factors; see DESIGN.md substitution table).
  double map_cpu_multiplier = 1.0;
  double reduce_cpu_multiplier = 1.0;
  double intermediate_expansion = 1.0;
};

}  // namespace ysmart
