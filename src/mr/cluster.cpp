#include "mr/cluster.h"

#include <algorithm>

namespace ysmart {

std::uint64_t ClusterConfig::scaled_block_bytes() const {
  const double b = static_cast<double>(hdfs_block_bytes) / std::max(1.0, sim_scale);
  return std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(b));
}

ClusterConfig ClusterConfig::small_local(double sim_scale) {
  ClusterConfig c;
  c.name = "small-local-2node";
  c.worker_nodes = 1;  // one TaskTracker; the second node runs the JobTracker
  c.map_slots_per_node = 4;
  c.reduce_slots_per_node = 4;
  c.replication = 1;
  c.sim_scale = sim_scale;
  c.disk_read_mb_per_s = 90;
  c.disk_write_mb_per_s = 70;
  c.network_mb_per_s = 110;  // Gigabit Ethernet
  c.job_startup_s = 5;
  c.task_startup_s = 1;
  return c;
}

ClusterConfig ClusterConfig::ec2(int worker_nodes, double sim_scale) {
  ClusterConfig c;
  c.name = "ec2-" + std::to_string(worker_nodes) + "node";
  c.worker_nodes = worker_nodes;
  c.map_slots_per_node = 1;  // 1 EC2 compute unit (1 virtual core)
  c.reduce_slots_per_node = 1;
  c.replication = 3;
  c.sim_scale = sim_scale;
  c.disk_read_mb_per_s = 50;  // small-instance instance storage
  c.disk_write_mb_per_s = 40;
  c.network_mb_per_s = 40;    // shared virtualized network
  c.map_cpu_us_per_record = 2.0;  // 1 weak virtual core
  c.reduce_cpu_us_per_record = 2.4;
  c.sort_mb_per_s = 80;
  c.compression.compress_mb_per_s = 5;  // slow cores make the codec costly
  c.compression.decompress_mb_per_s = 12;
  c.job_startup_s = 10;
  c.task_startup_s = 1.5;
  return c;
}

ClusterConfig ClusterConfig::facebook(double sim_scale, std::uint64_t seed) {
  ClusterConfig c;
  c.name = "facebook-747node";
  c.worker_nodes = 747;
  c.map_slots_per_node = 8;
  c.reduce_slots_per_node = 6;
  c.replication = 3;
  c.sim_scale = sim_scale;
  // Per-task bandwidth: a task streams from one of the node's 12 disks,
  // shared with the 7 other slots; co-running jobs take their share too.
  c.disk_read_mb_per_s = 70;
  c.disk_write_mb_per_s = 50;
  c.network_mb_per_s = 60;  // production network is busy
  c.map_cpu_us_per_record = 2.0;  // full-width production rows
  c.reduce_cpu_us_per_record = 2.4;
  c.job_startup_s = 15;
  c.task_startup_s = 1;
  c.contention.enabled = true;
  c.contention.mean_sched_delay_s = 90;
  c.contention.min_slot_share = 0.15;
  c.contention.max_slot_share = 0.5;
  c.contention.seed = seed;
  return c;
}

}  // namespace ysmart
