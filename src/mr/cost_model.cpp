#include "mr/cost_model.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace ysmart {

double CostModel::scaled_mb(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * cfg_.sim_scale / (1024.0 * 1024.0);
}

double CostModel::map_task_seconds(const MapTaskWork& w,
                                   double cpu_multiplier) const {
  double t = cfg_.task_startup_s;
  // Read input: local disk or over the network from a remote replica.
  const double in_mb = scaled_mb(w.input_bytes);
  t += in_mb / (w.local_read ? cfg_.disk_read_mb_per_s : cfg_.network_mb_per_s);
  // Map function CPU.
  t += static_cast<double>(w.input_records) * cfg_.sim_scale *
       cfg_.map_cpu_us_per_record * cpu_multiplier * 1e-6;
  // Sort + spill of the map output.
  const double out_raw_mb = scaled_mb(w.output_bytes_raw);
  t += out_raw_mb / cfg_.sort_mb_per_s;
  if (cfg_.compression.enabled)
    t += out_raw_mb / cfg_.compression.compress_mb_per_s;
  t += scaled_mb(w.output_bytes_wire) / cfg_.disk_write_mb_per_s;
  return t;
}

double CostModel::reduce_task_seconds(const ReduceTaskWork& w,
                                      double cpu_multiplier) const {
  double t = cfg_.task_startup_s;
  // Shuffle fetch over the network (HTTP copies in Hadoop).
  t += scaled_mb(w.shuffle_bytes_wire) / cfg_.network_mb_per_s;
  if (cfg_.compression.enabled)
    t += scaled_mb(w.shuffle_bytes_raw) / cfg_.compression.decompress_mb_per_s;
  // Merge of sorted runs: one read+write pass over the raw data.
  t += scaled_mb(w.shuffle_bytes_raw) *
       (1.0 / cfg_.disk_read_mb_per_s + 1.0 / cfg_.disk_write_mb_per_s);
  // Reduce function CPU.
  t += static_cast<double>(w.input_records) * cfg_.sim_scale *
       cfg_.reduce_cpu_us_per_record * cpu_multiplier * 1e-6;
  // Output to DFS: local write plus (replication-1) network copies.
  const double out_mb = scaled_mb(w.output_bytes);
  t += out_mb / cfg_.disk_write_mb_per_s;
  if (cfg_.replication > 1)
    t += out_mb * (cfg_.replication - 1) / cfg_.network_mb_per_s;
  return t;
}

double CostModel::makespan(std::vector<double> task_seconds, int slots) {
  check(slots >= 1, "makespan: need at least one slot");
  if (task_seconds.empty()) return 0;
  std::sort(task_seconds.begin(), task_seconds.end(), std::greater<>());
  // Min-heap of slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  for (int i = 0; i < slots; ++i) heap.push(0.0);
  double span = 0;
  for (double t : task_seconds) {
    double start = heap.top();
    heap.pop();
    const double end = start + t;
    span = std::max(span, end);
    heap.push(end);
  }
  return span;
}

}  // namespace ysmart
