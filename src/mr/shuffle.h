// The shuffle's sort/merge/group primitives, shared by the engine and
// bench/bench_shuffle.cpp.
//
// Every hot key comparison on this path runs over the normalized key
// cached in KeyValue::norm_key (common/normkey.h): one memcmp instead of
// a cell-by-cell walk through std::variant dispatch — Hadoop's
// RawComparator optimization. The YSMART_RAW_COMPARATOR=off escape
// hatch falls back to compare_rows-based comparators; because the
// encoding is order-preserving, both modes produce bit-identical
// orderings, partitions, results and simulated metrics (pinned by
// tests/test_robustness.cpp), so the knob only changes host wall-clock.
//
// Partitioning always hashes the normalized key bytes (one hash over
// the cached encoding, computed once per pair) in BOTH modes: the
// partition function decides which reduce partition sees which key, so
// it must not change with the comparator knob.
#pragma once

#include <cstddef>
#include <vector>

#include "common/normkey.h"
#include "common/prof_counters.h"
#include "mr/keyvalue.h"

namespace ysmart {

/// Whether the raw (memcmp) comparator drives the shuffle path.
/// Initialized once from YSMART_RAW_COMPARATOR (default on); tests may
/// override at runtime with set_raw_comparator_enabled.
bool raw_comparator_enabled();
void set_raw_comparator_enabled(bool on);

/// Reduce partition for a pair: FNV-1a over the cached normalized key,
/// identical in both comparator modes.
inline std::size_t shuffle_partition(const KeyValue& kv,
                                     std::size_t num_partitions) {
  return static_cast<std::size_t>(norm_key_hash(kv.norm_key)) % num_partitions;
}

/// Map-side sort of one partition bucket: plain std::sort over the
/// explicit (key, source, seq) tuple. seq is the bucket-local emit
/// index, so the result is exactly what the historical
/// stable_sort(kv_less) produced — deterministically, without
/// stable_sort's allocation.
void sort_map_bucket(std::vector<KeyValue>& bucket);

/// K-way merge of already-sorted runs (one per map task, in map-task
/// order; null/empty runs allowed). Ties on (key, source) break by run
/// index, then by the runs' internal seq order — exactly the order of
/// concatenating in task order and stable-sorting. Consumes the runs
/// (moved-from, then cleared).
std::vector<KeyValue> merge_sorted_runs(
    const std::vector<std::vector<KeyValue>*>& runs);

/// Key equality for reduce-group detection: byte equality of the cached
/// normalized keys (raw mode) or compare_rows (fallback). Equal keys
/// encode identically, so the two agree.
inline bool same_shuffle_key(const KeyValue& a, const KeyValue& b) {
  if (raw_comparator_enabled()) {
    prof::count(prof::kRawKeyCompares);
    return a.norm_key == b.norm_key;
  }
  return compare_rows(a.key, b.key) == 0;
}

}  // namespace ysmart
