// Key/value pair model of the simulated MapReduce runtime.
//
// A map function transforms an input record into zero or more KeyValue
// pairs. Keys and values are Rows (composite, typed). Following the paper
// (Section II-B and VI-A), each pair additionally carries:
//
//  * `source` — a small tag identifying which logical input / merged-job
//    instance produced the pair (e.g. which side of a join, or which
//    instance of a self-joined table), and
//  * `exclude` — a bitmask of merged-job ids that must NOT see this pair
//    in the reduce phase. CMF stores the *exclusion* list because map
//    outputs of merged jobs are usually highly overlapped, making the
//    exclude encoding near-empty (Section VI-A).
#pragma once

#include <cstdint>
#include <string>

#include "common/value.h"

namespace ysmart {

struct KeyValue {
  Row key;
  Row value;
  std::uint8_t source = 0;
  std::uint32_t exclude = 0;

  /// Normalized key: the order-preserving binary encoding of `key`
  /// (common/normkey.h), computed once at map-emit time and reused by
  /// every comparison on the shuffle path — partition hash, map-side
  /// sort, reduce-side merge, key grouping. Purely an in-memory cache:
  /// never serialized and never counted by kv_byte_size (the cost model
  /// keeps charging the wire encoding of `key`).
  std::string norm_key;

  /// Emit sequence number within this pair's map-side partition bucket.
  /// Tie-breaks pairs with identical (key, source) so plain std::sort
  /// over (norm_key, source, seq) reproduces exactly the order the old
  /// stable_sort produced.
  std::uint32_t seq = 0;

  /// True if merged job `job_id` should process this pair.
  bool visible_to(int job_id) const {
    return (exclude & (1u << job_id)) == 0;
  }
};

/// How the per-pair tag is encoded on the wire; determines the byte
/// overhead charged by the cost model. The paper's CMF uses ExcludeList.
enum class TagEncoding { ExcludeList, IncludeList };

/// Serialized size of a pair: key + value + source byte + tag bytes.
/// `num_merged_jobs` = how many job ids the tag must be able to name
/// (0 or 1 for non-CMF jobs, where the tag costs nothing extra).
std::uint64_t kv_byte_size(const KeyValue& kv, int num_merged_jobs,
                           TagEncoding enc);

/// Reference ordering of the shuffle sort: by key, then source (so
/// reducers see a deterministic value order). The engine's hot path uses
/// the equivalent raw comparator over normalized keys (mr/shuffle.h);
/// this cell-by-cell form remains the executable specification that
/// tests pin the raw path against.
bool kv_less(const KeyValue& a, const KeyValue& b);

}  // namespace ysmart
