// Engine: executes MRJobSpecs for real against the simulated DFS.
//
// The engine is a faithful miniature of Hadoop's job execution (Section
// II-A of the paper): one map task per input block, hash partitioning of
// map output into R reduce partitions, per-partition sort, shuffle, merge,
// grouped reduce invocation, and output materialization back to the DFS.
// Map tasks run on a real thread pool (results are merged in task order,
// so execution is deterministic), and every byte and record is counted so
// the CostModel can derive simulated phase times.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "mr/cluster.h"
#include "mr/cost_model.h"
#include "mr/job.h"
#include "mr/metrics.h"
#include "storage/dfs.h"

namespace ysmart {

class Engine {
 public:
  /// Cap on in-simulator reduce partitions; real clusters with thousands
  /// of reduce slots still run our scaled-down jobs in one wave, so the
  /// modeled times are unchanged while memory stays bounded.
  static constexpr int kMaxSimReducers = 32;

  Engine(Dfs& dfs, ClusterConfig cfg);

  /// Run one job: execute it over real data, write its outputs to the
  /// DFS, and return measured + simulated metrics. A job that exceeds the
  /// cluster's intermediate-disk capacity is marked failed (its outputs
  /// are still produced so dependent results remain checkable; the
  /// failure is what benchmarks report, mirroring the paper's DNFs).
  JobMetrics run(const MRJobSpec& spec);

  const ClusterConfig& cluster() const { return cfg_; }
  Dfs& dfs() { return dfs_; }

 private:
  Dfs& dfs_;
  ClusterConfig cfg_;
  CostModel cost_;
  Rng contention_rng_;
};

}  // namespace ysmart
