// Engine: executes MRJobSpecs for real against the simulated DFS.
//
// The engine is a faithful miniature of Hadoop's job execution (Section
// II-A of the paper): one map task per input block, hash partitioning of
// map output into R reduce partitions, per-partition sort, shuffle, merge,
// grouped reduce invocation, and output materialization back to the DFS.
// Map tasks AND reduce partitions run concurrently on a shared host
// thread pool; per-partition results are merged in fixed partition order
// and every contention/failure random draw is made on the submitting
// thread before fan-out, so results and simulated seconds are bit-identical
// for any pool size. Every byte and record is counted so the CostModel can
// derive simulated phase times.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "mr/cluster.h"
#include "mr/cost_model.h"
#include "mr/job.h"
#include "mr/metrics.h"
#include "storage/dfs.h"

namespace ysmart {

namespace obs {
struct ObsContext;
}

class Engine {
 public:
  /// Cap on in-simulator reduce partitions; real clusters with thousands
  /// of reduce slots still run our scaled-down jobs in one wave, so the
  /// modeled times are unchanged while memory stays bounded.
  static constexpr int kMaxSimReducers = 32;

  /// Maximum attempts per task before the job is declared failed, like
  /// Hadoop's mapred.map.max.attempts / mapred.reduce.max.attempts
  /// (default 4). Keeps task_failure_rate >= 1.0 from retrying forever.
  static constexpr int kMaxTaskAttempts = 4;

  /// `pool` is the host thread pool used to run map tasks and reduce
  /// partitions; null selects the process-wide ThreadPool::shared().
  /// The pool only affects real wall-clock, never simulated metrics.
  Engine(Dfs& dfs, ClusterConfig cfg, ThreadPool* pool = nullptr);

  /// Run one job: execute it over real data, write its outputs to the
  /// DFS, and return measured + simulated metrics. A job that exceeds the
  /// cluster's intermediate-disk capacity, or whose tasks exhaust their
  /// retry budget, is marked failed (its outputs are still produced so
  /// standalone results remain checkable; the DAG executor is what stops
  /// consuming them, mirroring the paper's DNFs).
  JobMetrics run(const MRJobSpec& spec);

  const ClusterConfig& cluster() const { return cfg_; }
  Dfs& dfs() { return dfs_; }

  /// Attach (or detach with null) an observability context: job/phase
  /// spans and counters are recorded there. Null (the default) disables
  /// all instrumentation; observation never changes simulated metrics,
  /// results, or RNG consumption (tests/test_obs.cpp).
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }
  obs::ObsContext* obs() const { return obs_; }

 private:
  /// Number of simulated attempts a task needs, drawn from the failure
  /// model on the submitting thread (so fan-out order cannot perturb the
  /// RNG stream). `exhausted` means the last allowed attempt failed too.
  struct AttemptPlan {
    int attempts = 1;
    bool exhausted = false;
  };
  AttemptPlan draw_attempts();

  Dfs& dfs_;
  ClusterConfig cfg_;
  CostModel cost_;
  Rng contention_rng_;
  ThreadPool* pool_;
  obs::ObsContext* obs_ = nullptr;
};

}  // namespace ysmart
