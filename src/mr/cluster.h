// ClusterConfig: the simulated cluster the MapReduce engine "runs on".
//
// The engine executes jobs for real over scaled-down data; the cluster
// config supplies (a) the structural parameters (nodes, slots, replication,
// block size) that shape task counts and waves, (b) the bandwidth/CPU
// parameters that convert measured bytes and records into simulated
// seconds, and (c) `sim_scale`, the factor by which the in-memory data set
// stands in for the paper's full-size data set (e.g. 100 MB generated data
// with sim_scale=100 models the paper's 10 GB TPC-H run: block size and
// all byte/record costs are scaled consistently, so task counts and phase
// times come out in the paper's regime).
//
// Presets mirror the paper's four test environments (Section VII-B).
#pragma once

#include <cstdint>
#include <string>

namespace ysmart {

struct CompressionConfig {
  bool enabled = false;
  double ratio = 0.35;            // wire bytes = raw bytes * ratio
  double compress_mb_per_s = 30;  // CPU throughput of codec, per task
  double decompress_mb_per_s = 60;
};

struct ContentionConfig {
  bool enabled = false;
  /// Mean of the exponential per-job submission/scheduling delay. The
  /// paper observed gaps up to 5.4 minutes between jobs on the Facebook
  /// production cluster (Section VII-F).
  double mean_sched_delay_s = 60;
  /// Fraction of the cluster's slots effectively available to this query
  /// (co-running workloads occupy the rest); drawn uniformly from
  /// [min_slot_share, max_slot_share] per job.
  double min_slot_share = 0.2;
  double max_slot_share = 0.6;
  std::uint64_t seed = 42;
};

struct ClusterConfig {
  std::string name;

  int worker_nodes = 1;
  int map_slots_per_node = 2;
  int reduce_slots_per_node = 2;
  int replication = 3;

  /// Simulated-full-size bytes represented by each in-memory byte.
  double sim_scale = 1.0;

  /// Full-size HDFS block bytes (the DFS divides by sim_scale).
  std::uint64_t hdfs_block_bytes = 64ull << 20;

  // Per-node hardware model.
  double disk_read_mb_per_s = 80;
  double disk_write_mb_per_s = 60;
  double network_mb_per_s = 100;  // per-node NIC bandwidth

  // CPU cost, in microseconds per (full-size) record, of running a map or
  // reduce function body; covers parsing, projection, hash updates.
  double map_cpu_us_per_record = 1.0;
  double reduce_cpu_us_per_record = 1.2;

  /// Extra CPU per map-output byte for the sort/spill pipeline, expressed
  /// as a throughput.
  double sort_mb_per_s = 150;

  // Fixed overheads (the per-job constant YSmart amortizes away).
  double job_startup_s = 8;   // JobTracker submission, task scheduling
  double task_startup_s = 1;  // JVM-ish per-task launch cost

  /// Local disk capacity per node for intermediate (map output) data;
  /// exceeding worker_nodes * this fails the job (how Pig dies on Q-CSA).
  std::uint64_t local_disk_capacity_bytes = 500ull << 30;

  /// Probability that an individual task attempt fails and is re-executed
  /// (Hadoop's fault tolerance — the very reason map output must be
  /// materialized, Section III). Failed attempts add their time to the
  /// schedule; results are unaffected because the retry recomputes the
  /// same deterministic output. Seeded by contention.seed.
  double task_failure_rate = 0.0;

  CompressionConfig compression;
  ContentionConfig contention;

  int total_map_slots() const { return worker_nodes * map_slots_per_node; }
  int total_reduce_slots() const { return worker_nodes * reduce_slots_per_node; }

  /// In-memory block bytes used by the DFS for this cluster.
  std::uint64_t scaled_block_bytes() const;

  // ---- presets (Section VII-B) ----

  /// 1 TaskTracker node with 4 slots, Gigabit Ethernet, Hadoop 0.19.2,
  /// replication 1 (single data node). Used with 10 GB TPC-H / 20 GB
  /// clicks via sim_scale.
  static ClusterConfig small_local(double sim_scale);

  /// Amazon EC2 small instances: 1 virtual core, 1 map + 1 reduce slot,
  /// modest shared disk and network.
  static ClusterConfig ec2(int worker_nodes, double sim_scale);

  /// Facebook production cluster: 747 nodes, 8 cores, 12 disks; contention
  /// from co-running jobs enabled.
  static ClusterConfig facebook(double sim_scale, std::uint64_t seed);
};

}  // namespace ysmart
