#include "mr/keyvalue.h"

#include <bit>

namespace ysmart {

std::uint64_t kv_byte_size(const KeyValue& kv, int num_merged_jobs,
                           TagEncoding enc) {
  std::uint64_t n = row_byte_size(kv.key) + row_byte_size(kv.value) + 1;
  if (num_merged_jobs > 1) {
    const int excluded = std::popcount(kv.exclude);
    const int included = num_merged_jobs - excluded;
    // One byte per job id named by the chosen encoding, plus a length byte.
    n += 1 + static_cast<std::uint64_t>(
                 enc == TagEncoding::ExcludeList ? excluded : included);
  }
  return n;
}

bool kv_less(const KeyValue& a, const KeyValue& b) {
  const auto c = compare_rows(a.key, b.key);
  if (c != 0) return c < 0;
  return a.source < b.source;
}

}  // namespace ysmart
