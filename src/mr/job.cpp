#include "mr/job.h"

// Interface-only translation unit; keeps the vtables anchored here.

namespace ysmart {

// (intentionally empty)

}  // namespace ysmart
