// Execution metrics of simulated MapReduce jobs.
//
// The engine fills in the *measured* quantities (records, bytes, tasks)
// from genuinely executed jobs; the cost model then derives the *simulated*
// per-phase times. QueryMetrics aggregates a whole translated query (a
// chain/DAG of jobs executed serially, as Hadoop drivers of the paper's
// era did).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ysmart {

struct PhaseMetrics {
  std::uint64_t tasks = 0;
  std::uint64_t input_records = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;
};

// Map-only job convention: a job without a reduce phase reports its final
// output under `map` (output_records/output_bytes are the mapper's
// emissions, which are exactly the rows written to the DFS) and leaves
// every `reduce` field zero, including reduce.tasks. dfs_write_bytes still
// records the materialized output including replication copies.

struct JobMetrics {
  std::string job_name;

  PhaseMetrics map;
  PhaseMetrics reduce;

  /// Bytes moved map->reduce, before and after optional compression.
  std::uint64_t shuffle_bytes_raw = 0;
  std::uint64_t shuffle_bytes_wire = 0;

  /// Bytes of map input served from a non-local replica (network reads).
  std::uint64_t remote_read_bytes = 0;

  /// Bytes written to the DFS including replication copies.
  std::uint64_t dfs_write_bytes = 0;

  // ---- simulated times (seconds), filled by the CostModel ----
  double sched_delay_s = 0;  // job-submission / scheduling latency
  double map_time_s = 0;
  double reduce_time_s = 0;  // includes shuffle fetch + merge + write

  bool failed = false;
  std::string fail_reason;

  double total_time_s() const {
    return sched_delay_s + map_time_s + reduce_time_s;
  }
};

struct QueryMetrics {
  std::vector<JobMetrics> jobs;

  /// End-to-end elapsed time. Equals total_time_s() under serial job
  /// submission (how Hive-era drivers ran, and the default); smaller
  /// when the executor overlaps independent jobs (see
  /// TranslatorProfile::concurrent_job_submission).
  double wall_time_s = 0;

  bool failed() const;
  std::string fail_reason() const;

  int job_count() const { return static_cast<int>(jobs.size()); }
  double total_time_s() const;
  std::uint64_t total_map_input_bytes() const;
  std::uint64_t total_shuffle_bytes() const;
  std::uint64_t total_dfs_write_bytes() const;

  /// Multi-line per-job breakdown (the paper's figure-9-style table).
  std::string breakdown() const;
};

}  // namespace ysmart
