#include "mr/engine.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "common/normkey.h"
#include "common/strings.h"
#include "mr/shuffle.h"
#include "obs/obs.h"

namespace ysmart {

namespace {

/// Stragglers so far, by the analyzer's rule: tasks above twice the
/// lower median, in phases with at least two tasks. Computed on the
/// orchestrating thread at phase end for the progress tracker.
int count_stragglers(const std::vector<double>& times) {
  if (times.size() < 2) return 0;
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[(sorted.size() - 1) / 2];
  if (median <= 0) return 0;
  int n = 0;
  for (double t : times)
    if (t > 2.0 * median) ++n;
  return n;
}

/// One map task = one block of one input file.
struct MapTaskDef {
  const DfsFile* file = nullptr;
  const DfsBlock* block = nullptr;
  int input_tag = 0;
  int scheduled_node = 0;  // node the TaskTracker runs the task on
};

/// Buffered map emitter: encodes each pair's normalized key once,
/// partitions by one hash over those bytes, and counts bytes with the
/// job's tag encoding (the wire encoding of the Row key — the cached
/// normalized key is never charged).
class PartitioningEmitter final : public MapEmitter {
 public:
  PartitioningEmitter(int num_partitions, const MRJobSpec& spec)
      : spec_(spec), buckets_(static_cast<std::size_t>(num_partitions)) {}

  void emit(KeyValue kv) override {
    bytes_ += kv_byte_size(kv, spec_.num_merged_jobs, spec_.tag_encoding);
    ++records_;
    // Mappers that already hold the normalized key (e.g. the CombineAgg
    // hash-aggregation keyed by it) pass it through; everyone else gets
    // it encoded here, once per pair. An empty norm_key only ever means
    // "not encoded yet": the empty Row key also encodes to empty bytes.
    if (kv.norm_key.empty()) kv.norm_key = encode_norm_key(kv.key);
    const std::size_t p = shuffle_partition(kv, buckets_.size());
    kv.seq = static_cast<std::uint32_t>(buckets_[p].size());
    buckets_[p].push_back(std::move(kv));
  }

  std::vector<std::vector<KeyValue>> take_buckets() { return std::move(buckets_); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  const MRJobSpec& spec_;
  std::vector<std::vector<KeyValue>> buckets_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

struct MapTaskResult {
  std::vector<std::vector<KeyValue>> buckets;
  MapTaskWork work;
};

/// Collects reduce output rows per job output and counts bytes. One
/// instance exists per reduce partition so partitions can run
/// concurrently; the engine concatenates the partition tables in
/// partition order afterwards.
class CollectingReduceEmitter final : public ReduceEmitter {
 public:
  explicit CollectingReduceEmitter(const std::vector<JobOutput>& outputs) {
    for (const auto& o : outputs)
      tables_.push_back(std::make_shared<Table>(o.schema));
  }

  void emit_to(int output_idx, Row row) override {
    check(output_idx >= 0 &&
              static_cast<std::size_t>(output_idx) < tables_.size(),
          "reduce emitted to unknown output index");
    bytes_ += row_byte_size(row);
    ++records_;
    tables_[static_cast<std::size_t>(output_idx)]->append(std::move(row));
  }

  std::vector<std::shared_ptr<Table>>& tables() { return tables_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  std::vector<std::shared_ptr<Table>> tables_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

MapTaskResult run_map_task(const MRJobSpec& spec, const MapTaskDef& task,
                           int num_partitions) {
  MapTaskResult res;
  PartitioningEmitter emitter(num_partitions, spec);
  auto mapper = spec.make_mapper();
  check(mapper != nullptr, "job has no mapper");
  const auto& rows = task.file->table->rows();
  const std::size_t end = task.block->first_row + task.block->row_count;
  if (vectorized_enabled() && mapper->supports_batches()) {
    // Feed the split as column batches; map_batch is contractually
    // emission-identical to per-record map(), so the shuffle (and thus
    // the simulated metrics) cannot tell the modes apart.
    const std::span<const Row> split(rows.data() + task.block->first_row,
                                     task.block->row_count);
    for (std::size_t base = 0; base < split.size();
         base += ColumnBatch::kBatchRows) {
      const std::size_t n =
          std::min(ColumnBatch::kBatchRows, split.size() - base);
      ColumnBatch batch(split.subspan(base, n));
      mapper->map_batch(batch, task.input_tag, emitter);
    }
  } else {
    for (std::size_t i = task.block->first_row; i < end; ++i)
      mapper->map(rows[i], task.input_tag, emitter);
  }
  mapper->finish(emitter);

  res.work.input_bytes = task.block->bytes;
  res.work.input_records = task.block->row_count;
  res.work.output_records = emitter.records();
  res.work.output_bytes_raw = emitter.bytes();
  res.work.local_read =
      std::find(task.block->replica_nodes.begin(),
                task.block->replica_nodes.end(),
                task.scheduled_node) != task.block->replica_nodes.end();
  res.buckets = emitter.take_buckets();
  // Sort each partition by key (the map-side sort in Hadoop), on the
  // raw comparator over the cached normalized keys (mr/shuffle.h).
  for (auto& b : res.buckets) sort_map_bucket(b);
  return res;
}

/// K-way merge of the map tasks' already-sorted partition-`p` buckets
/// (the reduce-side merge in Hadoop). Ties are broken by map task index,
/// and within one bucket the order is preserved, so the output is exactly
/// what concatenating in task order and stable-sorting would produce —
/// without re-sorting sorted runs. The comparisons run over the cached
/// normalized keys (mr/shuffle.h).
std::vector<KeyValue> merge_sorted_buckets(std::vector<MapTaskResult>& results,
                                           std::size_t p) {
  std::vector<std::vector<KeyValue>*> runs;
  runs.reserve(results.size());
  for (auto& r : results) runs.push_back(&r.buckets[p]);
  return merge_sorted_runs(runs);
}

/// Everything one reduce partition produces; aggregated into JobMetrics
/// and the DFS output tables in fixed partition order by the caller.
struct PartitionResult {
  ReduceTaskWork work;
  double task_seconds = 0;
  std::vector<std::shared_ptr<Table>> tables;  // one per job output

  // Telemetry (filled only when the engine samples, i.e. obs attached).
  std::uint64_t key_groups = 0;
  std::uint64_t shuffle_bytes_prescale = 0;  // pre-expansion shuffle sum
  std::vector<std::uint64_t> tag_records;  // records per map source tag
  obs::SpaceSaving hot_keys;               // reduce keys weighted by records
};

/// Runs one reduce partition over its already-merged (shuffle-sorted)
/// input. The merge itself happens in the engine's shuffle-sort pass so
/// the two phases have distinct wall-clock spans. When `sample` is set
/// the partition additionally retains key-group/tag/hot-key telemetry;
/// nothing sampled feeds back into the work measurements or costs.
PartitionResult run_reduce_partition(const MRJobSpec& spec,
                                     std::vector<KeyValue> part,
                                     const ClusterConfig& cfg,
                                     const CostModel& cost,
                                     double reducer_scale, int attempts,
                                     bool sample) {
  PartitionResult res;
  ReduceTaskWork& w = res.work;
  for (const auto& kv : part)
    w.shuffle_bytes_raw +=
        kv_byte_size(kv, spec.num_merged_jobs, spec.tag_encoding);
  // The pre-expansion sum is the exact per-pair wire total the map side
  // emitted into this partition — the cluster view's traffic-matrix
  // column sum (exact uint64 arithmetic, no scaling).
  res.shuffle_bytes_prescale = w.shuffle_bytes_raw;
  w.shuffle_bytes_raw = static_cast<std::uint64_t>(
      w.shuffle_bytes_raw * spec.intermediate_expansion);
  w.shuffle_bytes_wire =
      cfg.compression.enabled
          ? static_cast<std::uint64_t>(w.shuffle_bytes_raw *
                                       cfg.compression.ratio)
          : w.shuffle_bytes_raw;
  w.input_records = part.size();

  CollectingReduceEmitter emitter(spec.outputs);
  auto reducer = spec.make_reducer();
  check(reducer != nullptr, "reducer factory returned null");
  std::size_t i = 0;
  while (i < part.size()) {
    std::size_t j = i + 1;
    // Key-group boundary detection: byte equality of the cached
    // normalized keys instead of re-comparing Rows cell by cell.
    while (j < part.size() && same_shuffle_key(part[i], part[j])) ++j;
    if (sample) {
      ++res.key_groups;
      res.hot_keys.offer(row_to_string(part[i].key), j - i);
      for (std::size_t k = i; k < j; ++k) {
        const std::size_t tag = part[k].source;
        if (res.tag_records.size() <= tag) res.tag_records.resize(tag + 1);
        ++res.tag_records[tag];
      }
    }
    reducer->reduce(part[i].key,
                    std::span<const KeyValue>(part.data() + i, j - i),
                    emitter);
    i = j;
  }
  w.output_records = emitter.records();
  w.output_bytes = emitter.bytes();
  res.tables = std::move(emitter.tables());

  // Model the cost of one of the cluster's real reduce tasks: this sim
  // partition stands for 1/reducer_scale of them, each carrying a
  // reducer_scale share of its data.
  ReduceTaskWork real_task = w;
  real_task.shuffle_bytes_raw =
      static_cast<std::uint64_t>(w.shuffle_bytes_raw * reducer_scale);
  real_task.shuffle_bytes_wire =
      static_cast<std::uint64_t>(w.shuffle_bytes_wire * reducer_scale);
  real_task.input_records =
      static_cast<std::uint64_t>(w.input_records * reducer_scale);
  real_task.output_records =
      static_cast<std::uint64_t>(w.output_records * reducer_scale);
  real_task.output_bytes =
      static_cast<std::uint64_t>(w.output_bytes * reducer_scale);
  // Every attempt (the successful one plus simulated failures, decided by
  // the engine before fan-out) pays the full task cost.
  res.task_seconds = attempts * cost.reduce_task_seconds(
                                    real_task, spec.reduce_cpu_multiplier);
  return res;
}

}  // namespace

Engine::Engine(Dfs& dfs, ClusterConfig cfg, ThreadPool* pool)
    : dfs_(dfs),
      cfg_(std::move(cfg)),
      cost_(cfg_),
      contention_rng_(cfg_.contention.seed),
      pool_(pool ? pool : &ThreadPool::shared()) {}

Engine::AttemptPlan Engine::draw_attempts() {
  AttemptPlan plan;
  // Same RNG consumption as the historical unbounded retry loop: one
  // uniform01 draw per attempt until one succeeds — except the loop stops
  // at kMaxTaskAttempts, which keeps task_failure_rate >= 1.0 finite.
  while (cfg_.task_failure_rate > 0 &&
         contention_rng_.uniform01() < cfg_.task_failure_rate) {
    if (plan.attempts == kMaxTaskAttempts) {
      plan.exhausted = true;
      break;
    }
    ++plan.attempts;
  }
  return plan;
}

JobMetrics Engine::run(const MRJobSpec& spec) {
  check(!spec.outputs.empty(), "job needs at least one output");
  JobMetrics m;
  m.job_name = spec.name;

  // Observability: the job span and the simulated-timeline offset this
  // job starts at. Everything below is guarded by obs_ and reads only
  // values already computed for JobMetrics, so a null obs_ costs a
  // handful of branches and an attached one cannot perturb results.
  obs::ScopedSpan job_span(obs_, "job:" + spec.name, "job");
  const double sim0 = obs_ ? obs_->tracer.sim_now() : 0.0;
  std::uint64_t retries = 0;
  // Per-task samples retained for the analyzer; populated (and recorded by
  // finalize) only when an ObsContext is attached.
  obs::JobTaskSamples js;
  auto finalize = [&]() {
    if (!obs_) return;
    job_span.sim(sim0, m.total_time_s());
    job_span.arg("sched_delay_s", m.sched_delay_s);
    job_span.arg("map_time_s", m.map_time_s);
    job_span.arg("reduce_time_s", m.reduce_time_s);
    job_span.arg("shuffle_bytes_wire", m.shuffle_bytes_wire);
    job_span.arg("dfs_write_bytes", m.dfs_write_bytes);
    if (m.failed) job_span.arg("fail_reason", std::string_view(m.fail_reason));
    obs_->tracer.set_sim_now(sim0 + m.total_time_s());

    auto& reg = obs_->metrics;
    reg.add("engine.jobs.run", 1);
    reg.add("engine.map.tasks", m.map.tasks);
    reg.add("engine.map.input_bytes", m.map.input_bytes);
    reg.add("engine.map.output_bytes", m.map.output_bytes);
    reg.add("engine.map.remote_read_bytes", m.remote_read_bytes);
    reg.add("engine.shuffle.bytes_raw", m.shuffle_bytes_raw);
    reg.add("engine.shuffle.bytes_wire", m.shuffle_bytes_wire);
    reg.add("engine.reduce.tasks", m.reduce.tasks);
    reg.add("engine.reduce.output_bytes", m.reduce.output_bytes);
    reg.add("engine.dfs.write_bytes", m.dfs_write_bytes);
    reg.add("engine.tasks.retries", retries);
    if (m.failed) {
      reg.add("engine.jobs.failed", 1);
      reg.note("engine.last_fail_reason", m.job_name + ": " + m.fail_reason);
    }
    const ThreadPool::Stats ps = pool_->stats();
    reg.set("pool.tasks.submitted", ps.tasks_submitted);
    reg.set_max("pool.queue.peak_depth", ps.peak_queue_depth);
    reg.set_max("pool.workers.peak_busy", ps.peak_busy_workers);
    reg.set("pool.workers.size", pool_->size());

    js.job_name = m.job_name;
    js.map_only = !spec.make_reducer;
    js.failed = m.failed;
    js.sched_delay_s = m.sched_delay_s;
    js.map_time_s = m.map_time_s;
    js.reduce_time_s = m.reduce_time_s;
    js.target_reduce_tasks = m.reduce.tasks;
    js.key_columns = spec.key_column_names;
    obs_->samples.record_job(std::move(js));

    if (m.failed)
      obs_->events.emit(obs::EventLevel::Error, obs::EventCategory::Fault,
                        "job-failed", sim0 + m.total_time_s(),
                        {{"job", m.job_name},
                         {"reason", std::string_view(m.fail_reason)},
                         {"sim_total_s", m.total_time_s()}});
    else
      obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::PostJob,
                        "job-done", sim0 + m.total_time_s(),
                        {{"job", m.job_name},
                         {"retries", retries},
                         {"dfs_write_bytes", m.dfs_write_bytes},
                         {"sim_total_s", m.total_time_s()}});
    obs_->progress.job_done(m.failed, m.total_time_s());
  };

  // ---- contention: scheduling delay and reduced slot availability ----
  double slot_share = 1.0;
  if (cfg_.contention.enabled) {
    m.sched_delay_s = contention_rng_.exponential(cfg_.contention.mean_sched_delay_s);
    slot_share = cfg_.contention.min_slot_share +
                 contention_rng_.uniform01() *
                     (cfg_.contention.max_slot_share - cfg_.contention.min_slot_share);
  }
  const int map_slots =
      std::max(1, static_cast<int>(cfg_.total_map_slots() * slot_share));
  const int reduce_slots =
      std::max(1, static_cast<int>(cfg_.total_reduce_slots() * slot_share));
  if (obs_) {
    // Cluster shape for the cluster view: node count plus the effective
    // slot counts fed to the makespan (post-contention), so the slot
    // timeline replays exactly what the schedule used.
    js.worker_nodes = cfg_.worker_nodes;
    js.map_slots = map_slots;
    js.reduce_slots = reduce_slots;
  }
  if (obs_ && m.sched_delay_s > 0) {
    // Scheduling delay exists only on the simulated axis; the span is
    // zero-width in wall-clock.
    obs::ScopedSpan sched(obs_, "sched", "phase");
    sched.sim(sim0, m.sched_delay_s);
    sched.arg("slot_share", slot_share);
  }

  // ---- build map task list ----
  std::vector<MapTaskDef> tasks;
  for (const auto& in : spec.inputs) {
    const DfsFile& f = dfs_.file(in.path);
    for (const auto& b : f.blocks) {
      MapTaskDef t;
      t.file = &f;
      t.block = &b;
      t.input_tag = in.input_tag;
      tasks.push_back(t);
    }
  }
  // Round-robin TaskTracker assignment; block placement is also
  // round-robin, so locality emerges naturally (mostly local when
  // replication covers the schedule).
  for (std::size_t i = 0; i < tasks.size(); ++i)
    tasks[i].scheduled_node = static_cast<int>(i % cfg_.worker_nodes);

  const bool map_only = !spec.make_reducer;
  // The cluster would run `target_reducers` reduce tasks; the simulator
  // executes at most kMaxSimReducers partitions and scales each
  // partition's modeled cost down by the ratio, so large clusters keep
  // their real per-task work (and their scaling behaviour) without the
  // simulator materializing thousands of partitions.
  const int target_reducers =
      map_only ? 1
               : (spec.num_reduce_tasks > 0 ? spec.num_reduce_tasks
                                            : cfg_.total_reduce_slots());
  const int num_reducers = std::min(target_reducers, kMaxSimReducers);
  const double reducer_scale =
      static_cast<double>(num_reducers) / static_cast<double>(target_reducers);

  if (obs_)
    obs_->progress.begin_job(spec.name, map_only, tasks.size(),
                             static_cast<std::size_t>(num_reducers));

  // ---- execute map tasks on the shared thread pool ----
  std::vector<MapTaskResult> results(tasks.size());
  int map_span_id = -1;
  {
    obs::ScopedSpan map_span(obs_, "map", "phase");
    map_span_id = map_span.id();
    // Host-axis accounting only: the PhaseClock/TaskClock pair reads CPU
    // clocks and thread-local counters, never sim quantities (see
    // obs/profiler.h for the non-perturbation contract).
    obs::PhaseClock map_prof(obs_ ? &obs_->profiler : nullptr, map_span_id,
                             spec.name, "map");
    pool_->parallel_for(tasks.size(), /*grain=*/0,
                        [&](std::size_t begin, std::size_t end) {
                          obs::TaskClock tc(map_prof.agg());
                          for (std::size_t i = begin; i < end; ++i)
                            results[i] = run_map_task(spec, tasks[i], num_reducers);
                        });
  }

  // ---- measure + cost the map phase ----
  std::vector<double> map_task_times;
  map_task_times.reserve(results.size());
  std::uint64_t map_out_bytes_raw = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& r = results[i];
    r.work.output_bytes_raw = static_cast<std::uint64_t>(
        r.work.output_bytes_raw * spec.intermediate_expansion);
    r.work.output_bytes_wire =
        cfg_.compression.enabled
            ? static_cast<std::uint64_t>(r.work.output_bytes_raw *
                                         cfg_.compression.ratio)
            : r.work.output_bytes_raw;
    m.map.input_records += r.work.input_records;
    m.map.input_bytes += r.work.input_bytes;
    m.map.output_records += r.work.output_records;
    m.map.output_bytes += r.work.output_bytes_raw;
    if (!r.work.local_read) m.remote_read_bytes += r.work.input_bytes;
    map_out_bytes_raw += r.work.output_bytes_raw;
    // Fault tolerance: a failed attempt is re-executed from its
    // materialized input; every attempt's time is paid.
    const AttemptPlan plan = draw_attempts();
    retries += static_cast<std::uint64_t>(plan.attempts - 1);
    map_task_times.push_back(
        plan.attempts * cost_.map_task_seconds(r.work, spec.map_cpu_multiplier));
    if (obs_) {
      obs::TaskSample s;
      s.index = static_cast<int>(i);
      s.node = tasks[i].scheduled_node;
      s.input_records = r.work.input_records;
      s.input_bytes = r.work.input_bytes;
      s.output_records = r.work.output_records;
      s.output_bytes = r.work.output_bytes_raw;
      s.sim_seconds = map_task_times.back();
      s.attempts = plan.attempts;
      s.local_read = r.work.local_read;
      if (!map_only) {
        // Exact per-(task, partition) wire bytes, summed from the
        // still-alive sorted buckets before the shuffle consumes them:
        // one row of the cluster view's traffic matrix (pre-expansion,
        // so row sums match the reduce samples' prescale columns).
        s.partition_bytes.reserve(r.buckets.size());
        for (const auto& bucket : r.buckets) {
          std::uint64_t pb = 0;
          for (const auto& kv : bucket)
            pb += kv_byte_size(kv, spec.num_merged_jobs, spec.tag_encoding);
          s.partition_bytes.push_back(pb);
        }
      }
      js.map_tasks.push_back(std::move(s));
      obs_->progress.task_done(/*reduce_phase=*/false, map_task_times.back());
      // Fault-injection retries used to vanish into a counter; journal
      // every retried/exhausted task individually.
      if (plan.attempts > 1)
        obs_->events.emit(
            plan.exhausted ? obs::EventLevel::Error : obs::EventLevel::Warn,
            obs::EventCategory::Fault,
            plan.exhausted ? "task-exhausted" : "task-retry",
            sim0 + m.sched_delay_s,
            {{"job", spec.name}, {"phase", "map"},
             {"task", static_cast<std::uint64_t>(i)},
             {"attempts", plan.attempts}});
    }
    if (plan.exhausted && !m.failed) {
      m.failed = true;
      m.fail_reason =
          strf("map task %zu failed %d consecutive attempts "
               "(task_failure_rate=%.2f)",
               i, kMaxTaskAttempts, cfg_.task_failure_rate);
    }
  }
  m.map.tasks = results.size();
  m.map_time_s = CostModel::makespan(map_task_times, map_slots);
  if (obs_) {
    obs_->tracer.set_sim(map_span_id, sim0 + m.sched_delay_s, m.map_time_s);
    obs_->tracer.arg(map_span_id, "tasks", m.map.tasks);
    obs_->tracer.arg(map_span_id, "input_bytes", m.map.input_bytes);
    obs_->tracer.arg(map_span_id, "output_bytes", m.map.output_bytes);
    // Feed the histogram from the retained samples (identical values to
    // map_task_times) so registry and samples reconcile exactly.
    for (const auto& s : js.map_tasks)
      obs_->metrics.observe("engine.map.task_sim_seconds", s.sim_seconds);
    obs_->progress.phase_done(/*reduce_phase=*/false,
                              count_stragglers(map_task_times));
    obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::Map,
                      "map-phase-done", sim0 + m.sched_delay_s + m.map_time_s,
                      {{"job", spec.name}, {"tasks", m.map.tasks},
                       {"input_bytes", m.map.input_bytes},
                       {"output_bytes", m.map.output_bytes},
                       {"makespan_s", m.map_time_s}});
  }

  // Intermediate-disk capacity check (how Pig's Q-CSA run died: the
  // intermediate results outgrew the test machines' disks). Hadoop keeps
  // roughly four transient copies of the map output on local disks at
  // peak: the sorted spills and their merge on the map side, and the
  // fetched copies plus their merge on the reduce side.
  constexpr double kMaterializationCopies = 4.0;
  const double stored_sim_bytes = static_cast<double>(map_out_bytes_raw) *
                                  kMaterializationCopies * cfg_.sim_scale;
  const double capacity =
      static_cast<double>(cfg_.local_disk_capacity_bytes) * cfg_.worker_nodes;
  if (stored_sim_bytes > capacity && !m.failed) {
    m.failed = true;
    m.fail_reason = strf(
        "intermediate data (%.1f GB) exceeds local disk capacity (%.1f GB)",
        stored_sim_bytes / (1024.0 * 1024 * 1024),
        capacity / (1024.0 * 1024 * 1024));
  }

  if (map_only) {
    // Map output rows go straight to DFS output 0 (value part). The
    // job's final output is the map phase's output (m.map.output_*);
    // reduce metrics stay zero — see the convention note in metrics.h.
    obs::ScopedSpan post_span(obs_, "post-job", "phase");
    obs::PhaseClock post_prof(obs_ ? &obs_->profiler : nullptr, post_span.id(),
                              spec.name, "post-job");
    obs::TaskClock post_tc(post_prof.agg());
    auto out = std::make_shared<Table>(spec.outputs[0].schema);
    for (auto& r : results)
      for (auto& bucket : r.buckets)
        for (auto& kv : bucket) out->append(std::move(kv.value));
    m.dfs_write_bytes = out->byte_size() * cfg_.replication;
    dfs_.write(spec.outputs[0].path, std::move(out));
    finalize();
    return m;
  }

  // ---- shuffle + reduce, partitions in parallel on the pool ----
  // All failure-retry draws happen here, in partition order on this
  // thread, so the RNG stream (and thus every simulated second) is
  // independent of pool size and scheduling order.
  std::vector<AttemptPlan> plans;
  plans.reserve(static_cast<std::size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) plans.push_back(draw_attempts());

  // Pass 1, shuffle-sort: k-way merge each partition's sorted map-side
  // buckets (Hadoop's reduce-side merge). Split from the reduce pass so
  // each gets its own wall-clock span; the merge cost on the simulated
  // axis is part of the cost model's reduce task time, so the
  // shuffle-sort span is wall-only.
  std::vector<std::vector<KeyValue>> merged(
      static_cast<std::size_t>(num_reducers));
  {
    obs::ScopedSpan sort_span(obs_, "shuffle-sort", "phase");
    obs::PhaseClock sort_prof(obs_ ? &obs_->profiler : nullptr, sort_span.id(),
                              spec.name, "shuffle-sort");
    pool_->parallel_for(static_cast<std::size_t>(num_reducers), /*grain=*/1,
                        [&](std::size_t begin, std::size_t end) {
                          obs::TaskClock tc(sort_prof.agg());
                          for (std::size_t p = begin; p < end; ++p)
                            merged[p] = merge_sorted_buckets(results, p);
                        });
  }

  // Pass 2, reduce: run each partition's reducer over its merged input.
  std::vector<PartitionResult> parts(static_cast<std::size_t>(num_reducers));
  int reduce_span_id = -1;
  {
    obs::ScopedSpan reduce_span(obs_, "reduce", "phase");
    reduce_span_id = reduce_span.id();
    obs::PhaseClock reduce_prof(obs_ ? &obs_->profiler : nullptr,
                                reduce_span_id, spec.name, "reduce");
    pool_->parallel_for(
        static_cast<std::size_t>(num_reducers), /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          obs::TaskClock tc(reduce_prof.agg());
          for (std::size_t p = begin; p < end; ++p)
            parts[p] = run_reduce_partition(spec, std::move(merged[p]), cfg_,
                                            cost_, reducer_scale,
                                            plans[p].attempts,
                                            /*sample=*/obs_ != nullptr);
        });
  }

  // ---- aggregate partition metrics in fixed partition order ----
  std::vector<double> reduce_task_times;
  reduce_task_times.reserve(static_cast<std::size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) {
    const auto& pr = parts[static_cast<std::size_t>(p)];
    m.shuffle_bytes_raw += pr.work.shuffle_bytes_raw;
    m.shuffle_bytes_wire += pr.work.shuffle_bytes_wire;
    m.reduce.input_records += pr.work.input_records;
    m.reduce.input_bytes += pr.work.shuffle_bytes_raw;
    reduce_task_times.push_back(pr.task_seconds);
    retries += static_cast<std::uint64_t>(
        plans[static_cast<std::size_t>(p)].attempts - 1);
    if (obs_) {
      obs::TaskSample s;
      s.index = p;
      // Deterministic reduce-partition placement: partition p runs on
      // node p % worker_nodes (the convention in task_samples.h).
      s.node = p % cfg_.worker_nodes;
      s.input_records = pr.work.input_records;
      s.input_bytes = pr.work.shuffle_bytes_raw;
      s.output_records = pr.work.output_records;
      s.output_bytes = pr.work.output_bytes;
      s.shuffle_bytes_raw = pr.work.shuffle_bytes_raw;
      s.shuffle_bytes_wire = pr.work.shuffle_bytes_wire;
      s.shuffle_bytes_prescale = pr.shuffle_bytes_prescale;
      s.sim_seconds = pr.task_seconds;
      s.attempts = plans[static_cast<std::size_t>(p)].attempts;
      s.key_groups = pr.key_groups;
      s.tag_records = pr.tag_records;
      js.reduce_tasks.push_back(std::move(s));
      // Per-partition sketches fold in fixed partition order, keeping the
      // merged sketch deterministic at any pool size.
      js.hot_keys.merge(pr.hot_keys);
      obs_->progress.task_done(/*reduce_phase=*/true, pr.task_seconds);
      if (plans[static_cast<std::size_t>(p)].attempts > 1) {
        const bool exhausted = plans[static_cast<std::size_t>(p)].exhausted;
        obs_->events.emit(
            exhausted ? obs::EventLevel::Error : obs::EventLevel::Warn,
            obs::EventCategory::Fault,
            exhausted ? "task-exhausted" : "task-retry",
            sim0 + m.sched_delay_s + m.map_time_s,
            {{"job", spec.name}, {"phase", "reduce"},
             {"task", static_cast<std::uint64_t>(p)},
             {"attempts", plans[static_cast<std::size_t>(p)].attempts}});
      }
    }
    if (plans[static_cast<std::size_t>(p)].exhausted && !m.failed) {
      m.failed = true;
      m.fail_reason =
          strf("reduce partition %d failed %d consecutive attempts "
               "(task_failure_rate=%.2f)",
               p, kMaxTaskAttempts, cfg_.task_failure_rate);
    }
  }
  m.reduce.tasks = static_cast<std::uint64_t>(target_reducers);
  // Expand to the real task count: each simulated partition's time stands
  // for ~1/reducer_scale real tasks.
  if (target_reducers > num_reducers) {
    std::vector<double> expanded;
    expanded.reserve(static_cast<std::size_t>(target_reducers));
    for (int i = 0; i < target_reducers; ++i)
      expanded.push_back(
          reduce_task_times[static_cast<std::size_t>(i % num_reducers)]);
    reduce_task_times = std::move(expanded);
  }
  m.reduce_time_s = CostModel::makespan(reduce_task_times, reduce_slots);
  if (obs_) {
    // The simulated reduce time includes shuffle transfer and merge: the
    // cost model charges them per reduce task, like Hadoop's reduce-side
    // copy/sort phases being billed to the reduce task.
    obs_->tracer.set_sim(reduce_span_id, sim0 + m.sched_delay_s + m.map_time_s,
                         m.reduce_time_s);
    obs_->tracer.arg(reduce_span_id, "tasks", m.reduce.tasks);
    obs_->tracer.arg(reduce_span_id, "shuffle_bytes_wire",
                     m.shuffle_bytes_wire);
    // One histogram observation per *modeled* task, read from the retained
    // per-partition samples (task i reuses sample i % partitions — exactly
    // how reduce_task_times was expanded), so registry and samples
    // reconcile.
    for (int i = 0; i < target_reducers; ++i)
      obs_->metrics.observe(
          "engine.reduce.task_sim_seconds",
          js.reduce_tasks[static_cast<std::size_t>(i % num_reducers)]
              .sim_seconds);
    obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::Shuffle,
                      "shuffle-done", sim0 + m.sched_delay_s + m.map_time_s,
                      {{"job", spec.name},
                       {"bytes_raw", m.shuffle_bytes_raw},
                       {"bytes_wire", m.shuffle_bytes_wire}});
    // Straggler detection runs over the simulated (pre-expansion)
    // partition times — expansion only repeats them.
    std::vector<double> part_times;
    part_times.reserve(js.reduce_tasks.size());
    for (const auto& s : js.reduce_tasks) part_times.push_back(s.sim_seconds);
    obs_->progress.phase_done(/*reduce_phase=*/true,
                              count_stragglers(part_times));
    obs_->events.emit(obs::EventLevel::Info, obs::EventCategory::Reduce,
                      "reduce-phase-done",
                      sim0 + m.sched_delay_s + m.map_time_s + m.reduce_time_s,
                      {{"job", spec.name}, {"tasks", m.reduce.tasks},
                       {"input_records", m.reduce.input_records},
                       {"makespan_s", m.reduce_time_s}});
  }

  // ---- write outputs: concatenate partition tables in partition order ----
  {
    obs::ScopedSpan post_span(obs_, "post-job", "phase");
    obs::PhaseClock post_prof(obs_ ? &obs_->profiler : nullptr, post_span.id(),
                              spec.name, "post-job");
    obs::TaskClock post_tc(post_prof.agg());
    for (std::size_t i = 0; i < spec.outputs.size(); ++i) {
      auto t = std::make_shared<Table>(spec.outputs[i].schema);
      for (auto& pr : parts)
        for (auto& row : pr.tables[i]->mutable_rows()) t->append(std::move(row));
      m.reduce.output_records += t->row_count();
      m.reduce.output_bytes += t->byte_size();
      m.dfs_write_bytes += t->byte_size() * cfg_.replication;
      dfs_.write(spec.outputs[i].path, std::move(t));
    }
  }
  finalize();
  return m;
}

}  // namespace ysmart
