#include "mr/engine.h"

#include <algorithm>
#include <future>
#include <memory>
#include <thread>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

namespace {

/// One map task = one block of one input file.
struct MapTaskDef {
  const DfsFile* file = nullptr;
  const DfsBlock* block = nullptr;
  int input_tag = 0;
  int scheduled_node = 0;  // node the TaskTracker runs the task on
};

/// Buffered map emitter: partitions pairs by hash(key) % R and counts
/// bytes with the job's tag encoding.
class PartitioningEmitter final : public MapEmitter {
 public:
  PartitioningEmitter(int num_partitions, const MRJobSpec& spec)
      : spec_(spec), buckets_(static_cast<std::size_t>(num_partitions)) {}

  void emit(KeyValue kv) override {
    bytes_ += kv_byte_size(kv, spec_.num_merged_jobs, spec_.tag_encoding);
    ++records_;
    const std::size_t p = RowHash{}(kv.key) % buckets_.size();
    buckets_[p].push_back(std::move(kv));
  }

  std::vector<std::vector<KeyValue>> take_buckets() { return std::move(buckets_); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  const MRJobSpec& spec_;
  std::vector<std::vector<KeyValue>> buckets_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

struct MapTaskResult {
  std::vector<std::vector<KeyValue>> buckets;
  MapTaskWork work;
};

/// Collects reduce output rows per job output and counts bytes.
class CollectingReduceEmitter final : public ReduceEmitter {
 public:
  explicit CollectingReduceEmitter(const std::vector<JobOutput>& outputs) {
    for (const auto& o : outputs)
      tables_.push_back(std::make_shared<Table>(o.schema));
  }

  void emit_to(int output_idx, Row row) override {
    check(output_idx >= 0 &&
              static_cast<std::size_t>(output_idx) < tables_.size(),
          "reduce emitted to unknown output index");
    bytes_ += row_byte_size(row);
    ++records_;
    tables_[static_cast<std::size_t>(output_idx)]->append(std::move(row));
  }

  std::vector<std::shared_ptr<Table>>& tables() { return tables_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  std::vector<std::shared_ptr<Table>> tables_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

MapTaskResult run_map_task(const MRJobSpec& spec, const MapTaskDef& task,
                           int num_partitions) {
  MapTaskResult res;
  PartitioningEmitter emitter(num_partitions, spec);
  auto mapper = spec.make_mapper();
  check(mapper != nullptr, "job has no mapper");
  const auto& rows = task.file->table->rows();
  const std::size_t end = task.block->first_row + task.block->row_count;
  for (std::size_t i = task.block->first_row; i < end; ++i)
    mapper->map(rows[i], task.input_tag, emitter);
  mapper->finish(emitter);

  res.work.input_bytes = task.block->bytes;
  res.work.input_records = task.block->row_count;
  res.work.output_records = emitter.records();
  res.work.output_bytes_raw = emitter.bytes();
  res.work.local_read =
      std::find(task.block->replica_nodes.begin(),
                task.block->replica_nodes.end(),
                task.scheduled_node) != task.block->replica_nodes.end();
  res.buckets = emitter.take_buckets();
  // Sort each partition by key (the map-side sort in Hadoop).
  for (auto& b : res.buckets) std::stable_sort(b.begin(), b.end(), kv_less);
  return res;
}

}  // namespace

Engine::Engine(Dfs& dfs, ClusterConfig cfg)
    : dfs_(dfs),
      cfg_(std::move(cfg)),
      cost_(cfg_),
      contention_rng_(cfg_.contention.seed) {}

JobMetrics Engine::run(const MRJobSpec& spec) {
  check(!spec.outputs.empty(), "job needs at least one output");
  JobMetrics m;
  m.job_name = spec.name;

  // ---- contention: scheduling delay and reduced slot availability ----
  double slot_share = 1.0;
  if (cfg_.contention.enabled) {
    m.sched_delay_s = contention_rng_.exponential(cfg_.contention.mean_sched_delay_s);
    slot_share = cfg_.contention.min_slot_share +
                 contention_rng_.uniform01() *
                     (cfg_.contention.max_slot_share - cfg_.contention.min_slot_share);
  }
  const int map_slots =
      std::max(1, static_cast<int>(cfg_.total_map_slots() * slot_share));
  const int reduce_slots =
      std::max(1, static_cast<int>(cfg_.total_reduce_slots() * slot_share));

  // ---- build map task list ----
  std::vector<MapTaskDef> tasks;
  for (const auto& in : spec.inputs) {
    const DfsFile& f = dfs_.file(in.path);
    for (const auto& b : f.blocks) {
      MapTaskDef t;
      t.file = &f;
      t.block = &b;
      t.input_tag = in.input_tag;
      tasks.push_back(t);
    }
  }
  // Round-robin TaskTracker assignment; block placement is also
  // round-robin, so locality emerges naturally (mostly local when
  // replication covers the schedule).
  for (std::size_t i = 0; i < tasks.size(); ++i)
    tasks[i].scheduled_node = static_cast<int>(i % cfg_.worker_nodes);

  const bool map_only = !spec.make_reducer;
  // The cluster would run `target_reducers` reduce tasks; the simulator
  // executes at most kMaxSimReducers partitions and scales each
  // partition's modeled cost down by the ratio, so large clusters keep
  // their real per-task work (and their scaling behaviour) without the
  // simulator materializing thousands of partitions.
  const int target_reducers =
      map_only ? 1
               : (spec.num_reduce_tasks > 0 ? spec.num_reduce_tasks
                                            : cfg_.total_reduce_slots());
  const int num_reducers = std::min(target_reducers, kMaxSimReducers);
  const double reducer_scale =
      static_cast<double>(num_reducers) / static_cast<double>(target_reducers);

  // ---- execute map tasks on a thread pool ----
  std::vector<MapTaskResult> results(tasks.size());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t stride = std::max<std::size_t>(1, tasks.size() / (hw * 2) + 1);
  {
    std::vector<std::future<void>> futs;
    for (std::size_t start = 0; start < tasks.size(); start += stride) {
      const std::size_t stop = std::min(tasks.size(), start + stride);
      futs.push_back(std::async(std::launch::async, [&, start, stop] {
        for (std::size_t i = start; i < stop; ++i)
          results[i] = run_map_task(spec, tasks[i], num_reducers);
      }));
    }
    for (auto& f : futs) f.get();
  }

  // ---- measure + cost the map phase ----
  std::vector<double> map_task_times;
  map_task_times.reserve(results.size());
  std::uint64_t map_out_bytes_raw = 0;
  for (auto& r : results) {
    r.work.output_bytes_raw = static_cast<std::uint64_t>(
        r.work.output_bytes_raw * spec.intermediate_expansion);
    r.work.output_bytes_wire =
        cfg_.compression.enabled
            ? static_cast<std::uint64_t>(r.work.output_bytes_raw *
                                         cfg_.compression.ratio)
            : r.work.output_bytes_raw;
    m.map.input_records += r.work.input_records;
    m.map.input_bytes += r.work.input_bytes;
    m.map.output_records += r.work.output_records;
    m.map.output_bytes += r.work.output_bytes_raw;
    if (!r.work.local_read) m.remote_read_bytes += r.work.input_bytes;
    map_out_bytes_raw += r.work.output_bytes_raw;
    double task_s = cost_.map_task_seconds(r.work, spec.map_cpu_multiplier);
    // Fault tolerance: a failed attempt is re-executed from its
    // materialized input; the attempt's time is paid again.
    while (cfg_.task_failure_rate > 0 &&
           contention_rng_.uniform01() < cfg_.task_failure_rate)
      task_s += cost_.map_task_seconds(r.work, spec.map_cpu_multiplier);
    map_task_times.push_back(task_s);
  }
  m.map.tasks = results.size();
  m.map_time_s = CostModel::makespan(map_task_times, map_slots);

  // Intermediate-disk capacity check (how Pig's Q-CSA run died: the
  // intermediate results outgrew the test machines' disks). Hadoop keeps
  // roughly four transient copies of the map output on local disks at
  // peak: the sorted spills and their merge on the map side, and the
  // fetched copies plus their merge on the reduce side.
  constexpr double kMaterializationCopies = 4.0;
  const double stored_sim_bytes = static_cast<double>(map_out_bytes_raw) *
                                  kMaterializationCopies * cfg_.sim_scale;
  const double capacity =
      static_cast<double>(cfg_.local_disk_capacity_bytes) * cfg_.worker_nodes;
  if (stored_sim_bytes > capacity) {
    m.failed = true;
    m.fail_reason = strf(
        "intermediate data (%.1f GB) exceeds local disk capacity (%.1f GB)",
        stored_sim_bytes / (1024.0 * 1024 * 1024),
        capacity / (1024.0 * 1024 * 1024));
  }

  if (map_only) {
    // Map output rows go straight to DFS output 0 (value part).
    auto out = std::make_shared<Table>(spec.outputs[0].schema);
    for (auto& r : results)
      for (auto& bucket : r.buckets)
        for (auto& kv : bucket) out->append(std::move(kv.value));
    m.reduce.output_records = out->row_count();
    m.reduce.output_bytes = out->byte_size();
    m.dfs_write_bytes = out->byte_size() * cfg_.replication;
    dfs_.write(spec.outputs[0].path, std::move(out));
    return m;
  }

  // ---- shuffle + reduce, partition by partition ----
  CollectingReduceEmitter out_emitter(spec.outputs);
  std::vector<double> reduce_task_times;
  reduce_task_times.reserve(static_cast<std::size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) {
    std::vector<KeyValue> part;
    for (auto& r : results) {
      auto& b = r.buckets[static_cast<std::size_t>(p)];
      part.insert(part.end(), std::make_move_iterator(b.begin()),
                  std::make_move_iterator(b.end()));
      b.clear();
    }
    std::stable_sort(part.begin(), part.end(), kv_less);

    ReduceTaskWork w;
    for (const auto& kv : part)
      w.shuffle_bytes_raw +=
          kv_byte_size(kv, spec.num_merged_jobs, spec.tag_encoding);
    w.shuffle_bytes_raw = static_cast<std::uint64_t>(
        w.shuffle_bytes_raw * spec.intermediate_expansion);
    w.shuffle_bytes_wire =
        cfg_.compression.enabled
            ? static_cast<std::uint64_t>(w.shuffle_bytes_raw *
                                         cfg_.compression.ratio)
            : w.shuffle_bytes_raw;
    w.input_records = part.size();

    const std::uint64_t out_records_before = out_emitter.records();
    const std::uint64_t out_bytes_before = out_emitter.bytes();
    auto reducer = spec.make_reducer();
    check(reducer != nullptr, "reducer factory returned null");
    std::size_t i = 0;
    while (i < part.size()) {
      std::size_t j = i + 1;
      while (j < part.size() && compare_rows(part[i].key, part[j].key) == 0) ++j;
      reducer->reduce(part[i].key,
                      std::span<const KeyValue>(part.data() + i, j - i),
                      out_emitter);
      i = j;
    }
    w.output_records = out_emitter.records() - out_records_before;
    w.output_bytes = out_emitter.bytes() - out_bytes_before;

    m.shuffle_bytes_raw += w.shuffle_bytes_raw;
    m.shuffle_bytes_wire += w.shuffle_bytes_wire;
    m.reduce.input_records += w.input_records;
    m.reduce.input_bytes += w.shuffle_bytes_raw;
    // Model the cost of one of the cluster's real reduce tasks: this sim
    // partition stands for 1/reducer_scale of them, each carrying a
    // reducer_scale share of its data.
    ReduceTaskWork real_task = w;
    real_task.shuffle_bytes_raw = static_cast<std::uint64_t>(
        w.shuffle_bytes_raw * reducer_scale);
    real_task.shuffle_bytes_wire = static_cast<std::uint64_t>(
        w.shuffle_bytes_wire * reducer_scale);
    real_task.input_records =
        static_cast<std::uint64_t>(w.input_records * reducer_scale);
    real_task.output_records =
        static_cast<std::uint64_t>(w.output_records * reducer_scale);
    real_task.output_bytes =
        static_cast<std::uint64_t>(w.output_bytes * reducer_scale);
    double task_s =
        cost_.reduce_task_seconds(real_task, spec.reduce_cpu_multiplier);
    while (cfg_.task_failure_rate > 0 &&
           contention_rng_.uniform01() < cfg_.task_failure_rate)
      task_s +=
          cost_.reduce_task_seconds(real_task, spec.reduce_cpu_multiplier);
    reduce_task_times.push_back(task_s);
  }
  m.reduce.tasks = static_cast<std::uint64_t>(target_reducers);
  // Expand to the real task count: each simulated partition's time stands
  // for ~1/reducer_scale real tasks.
  if (target_reducers > num_reducers) {
    std::vector<double> expanded;
    expanded.reserve(static_cast<std::size_t>(target_reducers));
    for (int i = 0; i < target_reducers; ++i)
      expanded.push_back(
          reduce_task_times[static_cast<std::size_t>(i % num_reducers)]);
    reduce_task_times = std::move(expanded);
  }
  m.reduce_time_s = CostModel::makespan(reduce_task_times, reduce_slots);

  // ---- write outputs ----
  for (std::size_t i = 0; i < spec.outputs.size(); ++i) {
    auto& t = out_emitter.tables()[i];
    m.reduce.output_records += t->row_count();
    m.reduce.output_bytes += t->byte_size();
    m.dfs_write_bytes += t->byte_size() * cfg_.replication;
    dfs_.write(spec.outputs[i].path, std::move(t));
  }
  return m;
}

}  // namespace ysmart
