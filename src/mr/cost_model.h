// CostModel: converts measured job quantities into simulated seconds.
//
// All byte/record quantities arriving here are in-memory measurements; the
// model multiplies them by ClusterConfig::sim_scale so they represent the
// paper's full-size data, then applies the hardware model:
//
//   map task    = task_startup + read(in_bytes) + cpu(records)
//                 + sort(out_bytes) + spill_write(out_bytes_wire)
//                 [+ compression cpu]
//   reduce task = task_startup + shuffle_fetch(wire_bytes) [+ decompress]
//                 + merge(raw_bytes) + cpu(records) + dfs_write(out)
//   phase time  = greedy makespan of task times over the phase's slots
//   job time    = sched_delay + map phase + reduce phase
//
// Phase times — not just totals — matter because the paper's figures
// (Fig. 9, 10, 12) report per-job map/reduce breakdowns.
#pragma once

#include <cstdint>
#include <vector>

#include "mr/cluster.h"

namespace ysmart {

struct MapTaskWork {
  std::uint64_t input_bytes = 0;
  std::uint64_t input_records = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes_raw = 0;   // pre-compression map output
  std::uint64_t output_bytes_wire = 0;  // post-compression (== raw if off)
  bool local_read = true;
};

struct ReduceTaskWork {
  std::uint64_t shuffle_bytes_raw = 0;
  std::uint64_t shuffle_bytes_wire = 0;
  std::uint64_t input_records = 0;   // values iterated
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;    // written to DFS (one copy)
};

class CostModel {
 public:
  explicit CostModel(const ClusterConfig& cfg) : cfg_(cfg) {}

  // The per-task costing functions are pure reads of the cluster config;
  // the engine calls them concurrently from thread-pool workers while
  // map tasks / reduce partitions execute in parallel.
  double map_task_seconds(const MapTaskWork& w, double cpu_multiplier) const;
  double reduce_task_seconds(const ReduceTaskWork& w,
                             double cpu_multiplier) const;

  /// Greedy longest-processing-time makespan of `task_seconds` over
  /// `slots` parallel slots (deterministic).
  static double makespan(std::vector<double> task_seconds, int slots);

  const ClusterConfig& cluster() const { return cfg_; }

 private:
  double scaled_mb(std::uint64_t bytes) const;
  const ClusterConfig& cfg_;
};

}  // namespace ysmart
