#include "mr/metrics.h"

#include "common/strings.h"

namespace ysmart {

bool QueryMetrics::failed() const {
  for (const auto& j : jobs)
    if (j.failed) return true;
  return false;
}

std::string QueryMetrics::fail_reason() const {
  for (const auto& j : jobs)
    if (j.failed) return j.job_name + ": " + j.fail_reason;
  return "";
}

double QueryMetrics::total_time_s() const {
  double t = 0;
  for (const auto& j : jobs) t += j.total_time_s();
  return t;
}

std::uint64_t QueryMetrics::total_map_input_bytes() const {
  std::uint64_t n = 0;
  for (const auto& j : jobs) n += j.map.input_bytes;
  return n;
}

std::uint64_t QueryMetrics::total_shuffle_bytes() const {
  std::uint64_t n = 0;
  for (const auto& j : jobs) n += j.shuffle_bytes_wire;
  return n;
}

std::uint64_t QueryMetrics::total_dfs_write_bytes() const {
  std::uint64_t n = 0;
  for (const auto& j : jobs) n += j.dfs_write_bytes;
  return n;
}

std::string QueryMetrics::breakdown() const {
  std::string out;
  out += strf("%-28s %8s %10s %10s %10s %10s\n", "job", "tasks", "map(s)",
              "reduce(s)", "sched(s)", "total(s)");
  for (const auto& j : jobs) {
    out += strf("%-28s %8llu %10.1f %10.1f %10.1f %10.1f%s\n",
                j.job_name.c_str(),
                static_cast<unsigned long long>(j.map.tasks), j.map_time_s,
                j.reduce_time_s, j.sched_delay_s, j.total_time_s(),
                j.failed ? ("  FAILED: " + j.fail_reason).c_str() : "");
  }
  out += strf("%-28s %8s %10s %10s %10s %10.1f\n", "TOTAL", "", "", "", "",
              total_time_s());
  return out;
}

}  // namespace ysmart
