// Small file I/O helpers shared by the shell, benches and recorders.
#pragma once

#include <string>

namespace ysmart {

/// Write `body` (plus a trailing newline) to `path`, replacing any
/// existing file. Failures — open errors and short/failed writes alike —
/// are reported on stderr with the target path and yield false; this is
/// what the shell's exit-time YSMART_TRACE/YSMART_METRICS/YSMART_EVENTS
/// writers and the bench reports rely on to never fail silently.
bool write_text_file(const std::string& path, const std::string& body);

}  // namespace ysmart
