#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ysmart {

std::string to_lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string to_upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace ysmart
