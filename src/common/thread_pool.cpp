#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.h"

namespace ysmart {

namespace {

/// Relaxed running-maximum update for the peak gauges.
void update_peak(std::atomic<std::uint64_t>& peak, std::uint64_t value) {
  std::uint64_t cur = peak.load(std::memory_order_relaxed);
  while (value > cur &&
         !peak.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    update_peak(peak_busy_workers_,
                busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1);
    task();
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    update_peak(peak_queue_depth_, queue_.size());
  }
  cv_.notify_one();
  return fut;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.peak_busy_workers = peak_busy_workers_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (std::size_t{size()} * 4 + 1));
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) {
    body(0, n);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t c = next.fetch_add(1); c < chunks; c = next.fetch_add(1)) {
      const std::size_t begin = c * grain;
      body(begin, std::min(n, begin + grain));
    }
  };

  const std::size_t helpers = std::min<std::size_t>(chunks - 1, size());
  std::vector<std::future<void>> futs;
  futs.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futs.push_back(submit(drain));

  // The caller works too; even if it throws, the helper futures must be
  // drained before the captured references go out of scope.
  std::exception_ptr first;
  try {
    drain();
  } catch (...) {
    first = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    // env_positive_int rejects garbage/zero/negative values with a stderr
    // warning; 0 here selects the hardware-concurrency fallback.
    if (auto v = env_positive_int("YSMART_THREADS"))
      return static_cast<unsigned>(*v);
    return 0u;
  }());
  return pool;
}

}  // namespace ysmart
