// ThreadPool: a small fixed-size worker pool shared by the whole process.
//
// The MapReduce engine uses it to run map tasks and reduce partitions
// concurrently on the host. Host-thread parallelism is purely an
// execution-speed concern: all simulated quantities (bytes, records,
// modeled seconds) are computed from per-task results that are aggregated
// in a fixed order, and every random draw happens on the submitting
// thread, so results are bit-identical for any pool size (see DESIGN.md,
// "Execution concurrency vs. simulated time").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ysmart {

class ThreadPool {
 public:
  /// `threads` = number of worker threads; 0 picks the hardware
  /// concurrency. A pool of size 1 still runs tasks on its single worker
  /// (parallel_for additionally runs chunks on the calling thread).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue one task. The future rethrows any exception the task threw.
  std::future<void> submit(std::function<void()> fn);

  /// Run `body(begin, end)` over contiguous chunks covering [0, n).
  /// `grain` is the chunk length (0 picks one sized for the pool). The
  /// calling thread participates in the work, so a busy or single-thread
  /// pool can never deadlock the caller. Chunks may run in any order and
  /// concurrently; the body must only touch disjoint state per index.
  /// Blocks until every chunk finished; rethrows the first exception.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool, sized from the YSMART_THREADS environment
  /// variable when set (else hardware concurrency). Malformed values
  /// (non-numeric, zero, negative) are rejected with a stderr warning and
  /// the hardware-concurrency fallback applies. Engines default to it.
  static ThreadPool& shared();

  /// Lightweight occupancy statistics, maintained with relaxed atomics so
  /// they never serialize the workers. Cumulative since construction;
  /// observability snapshots copy them into a MetricsRegistry.
  struct Stats {
    std::uint64_t tasks_submitted = 0;
    std::uint64_t peak_queue_depth = 0;
    std::uint64_t peak_busy_workers = 0;
  };
  Stats stats() const;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> busy_workers_{0};
  std::atomic<std::uint64_t> peak_busy_workers_{0};
};

}  // namespace ysmart
