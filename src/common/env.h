// Validated environment-variable parsing for the YSMART_* knobs.
//
// std::atoi-style parsing silently maps garbage to 0, which for a knob
// like YSMART_THREADS means "fall back to a surprising default without
// telling anyone". These helpers reject malformed values loudly (one
// stderr warning) and return nullopt so the caller applies its documented
// fallback.
#pragma once

#include <optional>
#include <string>

namespace ysmart {

/// Parse `text` as a strictly positive decimal integer. Returns nullopt
/// for empty strings, non-numeric input, trailing garbage ("8x"), zero,
/// negatives, or values that overflow int.
std::optional<int> parse_positive_int(const std::string& text);

/// Read environment variable `name` as a positive integer. Unset returns
/// nullopt silently; a set-but-invalid value warns on stderr (once per
/// call) and returns nullopt so the caller falls back.
std::optional<int> env_positive_int(const char* name);

/// Read environment variable `name` as a non-empty string (e.g. an output
/// path). Unset returns nullopt silently; set-but-empty warns on stderr
/// and returns nullopt.
std::optional<std::string> env_nonempty(const char* name);

/// Parse `text` as a boolean switch: "on"/"1"/"true"/"yes" and
/// "off"/"0"/"false"/"no" (case-insensitive). Anything else is nullopt.
std::optional<bool> parse_flag(const std::string& text);

/// Read environment variable `name` as a boolean switch. Unset returns
/// nullopt silently; a set-but-unparsable value warns on stderr and
/// returns nullopt so the caller applies its documented default.
std::optional<bool> env_flag(const char* name);

}  // namespace ysmart
