// Seeded PRNG wrapper used by the data generators and the cluster
// contention model. Deterministic across platforms (xorshift-based, not
// std::mt19937 distribution-dependent) so benchmarks are reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace ysmart {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Zipf-distributed rank in [1, n] with skew s (s=0 -> uniform).
  std::int64_t zipf(std::int64_t n, double s);

  /// Random fixed-length lowercase identifier.
  std::string ident(std::size_t len);

 private:
  std::uint64_t state_;
};

}  // namespace ysmart
