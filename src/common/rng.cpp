#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace ysmart {

std::uint64_t Rng::next() {
  // splitmix64: fast, high-quality, and identical everywhere.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::uniform: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::exponential(double mean) {
  check(mean > 0, "Rng::exponential: mean must be positive");
  double u = uniform01();
  if (u <= 0) u = 1e-18;
  return -mean * std::log(u);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  check(n >= 1, "Rng::zipf: n must be >= 1");
  if (s <= 0) return uniform(1, n);
  // Inverse-CDF over the (truncated) harmonic series; fine for the modest
  // n the generators use.
  double h = 0;
  for (std::int64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double u = uniform01() * h;
  double acc = 0;
  for (std::int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (acc >= u) return i;
  }
  return n;
}

std::string Rng::ident(std::size_t len) {
  std::string out(len, 'a');
  for (auto& c : out) c = static_cast<char>('a' + next() % 26);
  return out;
}

}  // namespace ysmart
