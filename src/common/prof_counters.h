// Low-level host-profiling primitives: a process-wide enable flag,
// thread-local dispatch/allocation counters, and CPU-clock helpers.
//
// This lives in common/ (not obs/) because the hot loops that count into
// it — Value::compare, the shuffle comparators, expression evaluation —
// sit below the observability layer and must not depend on it. The
// aggregation/export side (HostProfiler) is in src/obs/profiler.h and
// reads these counters via snapshot deltas.
//
// Design constraints, in order:
//   1. Zero perturbation of *simulated* results: nothing here ever feeds
//      back into sim quantities; counting is host-axis bookkeeping only.
//   2. Near-zero cost when profiling is off: every count() is one relaxed
//      atomic load and a predictable branch.
//   3. Thread-sanitizer friendly: the thread-local state is a trivially
//      constructible/destructible POD, the flag is a constinit atomic
//      (no static-initialization-order hazards, safe from any thread,
//      safe during process teardown when late frees still run).
#pragma once

#include <atomic>
#include <cstdint>

namespace ysmart::prof {

/// Dispatch-counter slots. The names mirror the ROADMAP's vectorization
/// questions: how often do we pay a std::variant visit vs a raw memcmp,
/// how many rows flow through scalar eval, how many cells cross the
/// map/reduce wire codec.
enum Counter : int {
  kCellCompares = 0,  ///< Value::compare calls (variant dispatch)
  kRawKeyCompares,    ///< memcmp-based normalized-key comparisons
  kRowsEvaluated,     ///< BoundExpr::eval invocations
  kAggUpdates,        ///< aggregate-state add/merge updates
  kOperatorRows,      ///< rows consumed by relational operator loops
  kCellsEncoded,      ///< cells appended to a normalized/wire encoding
  kCellsDecoded,      ///< cells decoded back from an encoding
  kNormKeyEncodes,    ///< whole shuffle keys normalized (map emit path)
  kNumCounters
};

/// Stable snake_case name for counter slot `i` (JSON keys, tables).
const char* counter_name(int i);

/// Per-thread counter block. POD on purpose: thread_local init must be
/// trivial so the first count on a brand-new pool thread (or inside
/// operator new during static init) cannot recurse or allocate.
struct ThreadCounters {
  std::uint64_t dispatch[kNumCounters];
  std::uint64_t allocs;
  std::uint64_t alloc_bytes;
  std::uint64_t frees;
};

namespace detail {
extern constinit std::atomic<bool> g_enabled;
extern thread_local ThreadCounters t_counters;
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Reference-counted enable: profiling is on while at least one holder
/// (HostProfiler, a test) has it on. Never called from hot paths.
void acquire_enabled();
void release_enabled();

inline void count(Counter c) {
  if (enabled()) ++detail::t_counters.dispatch[c];
}

inline void count(Counter c, std::uint64_t n) {
  if (enabled()) detail::t_counters.dispatch[c] += n;
}

/// Copy of the calling thread's counters; diff two snapshots to
/// attribute work done between them to a profiled scope.
ThreadCounters thread_snapshot();

/// this-thread CPU time (CLOCK_THREAD_CPUTIME_ID) in ns; 0 if the clock
/// is unavailable.
std::uint64_t thread_cpu_ns();

/// Whole-process CPU time in ns; 0 if unavailable.
std::uint64_t process_cpu_ns();

/// Monotonic host wall clock in ns (steady_clock).
std::uint64_t wall_ns();

}  // namespace ysmart::prof
