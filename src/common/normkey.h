// Normalized keys: an order-preserving binary encoding of Row keys.
//
// The shuffle path (map-side sort, reduce-side merge, key grouping,
// partitioning) compares keys millions of times per job. Walking a Row
// cell-by-cell through std::variant dispatch in Value::compare is the
// classic per-record overhead Hadoop eliminates with RawComparator and
// binary key types: encode each key ONCE into a byte string whose
// plain memcmp order is exactly the logical key order, then make every
// hot comparison a single memcmp.
//
// The encoding guarantees, for any two key Rows a and b:
//
//   sign(memcmp-order(encode(a), encode(b))) == sign(compare_rows(a, b))
//
// where memcmp-order is bytewise-unsigned comparison with the shorter
// string ordering first on a tie (std::string::compare semantics).
// Equal keys (including Int 5 vs Double 5.0, which compare_rows treats
// as equal) produce identical bytes, so byte equality is key equality.
//
// Layout (per cell, concatenated over the Row; see DESIGN.md
// "Normalized keys and the raw comparator" for the ordering proof):
//
//   NULL     0x10
//   numeric  0x20 cls [exp[2] frac[8]]     (Int and Double interleaved)
//   string   0x30 escaped-bytes 0x00 0x01  (0x00 escaped as 0x00 0xFF)
//
// The numeric class byte walks the number line: -inf 0x00, negative
// 0x01, zero 0x02, positive 0x03, +inf 0x04, NaN 0x05. Nonzero finite
// values carry an exact binary-scientific payload — biased big-endian
// exponent, then the 64 left-aligned fraction bits below the leading 1
// — bit-inverted for negatives. Both int64 (up to 63 fraction bits)
// and double (up to 52) fit losslessly, so an int64 beyond 2^53 never
// collides with a nearby double the way a lossy cast would.
//
// This is an in-memory cache only: the wire format (Value::encode) and
// every byte counted by the cost model are untouched.
#pragma once

#include <cstring>
#include <string>

#include "common/value.h"

namespace ysmart {

/// Append the order-preserving encoding of one cell to `out`.
void append_norm_key(const Value& v, std::string& out);

/// Encode a whole key Row (cells concatenated; the per-cell encoding is
/// prefix-free, so bytewise order of the concatenation equals
/// compare_rows order, including the shorter-row-first rule).
std::string encode_norm_key(const Row& key);

/// Decode an encoded key back into a Row. The original Int-vs-Double
/// distinction is not recoverable for integral values (they encode
/// identically because they compare equal): integral numerics decode as
/// Int. The decoded row always compares equal to the original and
/// re-encodes to identical bytes. Throws Error on truncated or corrupt
/// input.
Row decode_norm_key(const std::string& in);

/// Bytewise-unsigned three-way comparison, i.e. memcmp over the common
/// prefix with the shorter string first on a tie. <0, 0, >0.
inline int norm_key_compare(const std::string& a, const std::string& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  const int c = std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
}

/// Stable 64-bit FNV-1a over the encoded key bytes: the shuffle's
/// partition hash. Computed once per pair instead of re-hashing every
/// cell; consistent with key equality because equal keys encode to
/// identical bytes.
inline std::uint64_t norm_key_hash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ysmart
