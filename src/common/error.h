// Error hierarchy for the ysmart library.
//
// All failures are reported through exceptions derived from ysmart::Error;
// each subsystem throws its own subclass so callers (and tests) can
// distinguish a SQL syntax error from a planner bug from a runtime fault.
#pragma once

#include <stdexcept>
#include <string>

namespace ysmart {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Lexing/parsing failures (bad SQL text).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Semantic analysis failures (unknown column, ambiguous name, bad types).
class PlanError : public Error {
 public:
  explicit PlanError(const std::string& what) : Error("plan error: " + what) {}
};

/// Runtime execution failures (type mismatch at eval time, missing table).
class ExecError : public Error {
 public:
  explicit ExecError(const std::string& what) : Error("exec error: " + what) {}
};

/// Internal invariant violations; indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

/// Throws InternalError if `cond` is false. Used to check invariants that
/// should hold by construction.
void check(bool cond, const char* msg);

}  // namespace ysmart
