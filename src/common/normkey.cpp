#include "common/normkey.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"
#include "common/prof_counters.h"
#include "common/strings.h"

namespace ysmart {

namespace {

// Cell tags, ordered like Value's type rank: NULL < numeric < string.
constexpr unsigned char kTagNull = 0x10;
constexpr unsigned char kTagNumeric = 0x20;
constexpr unsigned char kTagString = 0x30;

// Numeric class bytes, ordered along the number line. Int and Double
// meet inside kNumNeg/kNumPos, which carry an exact binary-scientific
// payload; the other classes need no payload.
constexpr unsigned char kNumNegInf = 0x00;
constexpr unsigned char kNumNeg = 0x01;
constexpr unsigned char kNumZero = 0x02;
constexpr unsigned char kNumPos = 0x03;
constexpr unsigned char kNumPosInf = 0x04;
constexpr unsigned char kNumNan = 0x05;  // defined order: NaN last

// Exponent bias for the payload: exponents span [-1074, 1023] (doubles
// down to the smallest subnormal) plus [0, 63] (int64), so +1100 keeps
// the biased value positive in 16 bits.
constexpr int kExpBias = 1100;

// String escaping: 0x00 inside a string becomes 0x00 0xFF, and the cell
// ends with 0x00 0x01. Bytewise order of the escaped stream equals
// bytewise order of the raw strings, prefixes sort first, and no escaped
// cell is a prefix of a different one.
constexpr unsigned char kStrEscape = 0xFF;
constexpr unsigned char kStrTerm = 0x01;

void append_u16_be(std::uint16_t u, std::string& out) {
  out.push_back(static_cast<char>(u >> 8));
  out.push_back(static_cast<char>(u & 0xFF));
}

void append_u64_be(std::uint64_t u, std::string& out) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((u >> shift) & 0xFF));
}

/// Exact binary scientific form of a nonzero finite numeric:
/// |value| = 1.fraction * 2^exponent, with the fraction bits left-aligned
/// in 64 bits. Both int64 (<= 63 significant bits) and double (<= 53)
/// fit losslessly, which is what makes the cross-type order exact where
/// a cast to double would collapse e.g. 2^53 and 2^53+1.
struct SciForm {
  int exponent = 0;
  std::uint64_t fraction = 0;  // bits below the leading 1, left-aligned
};

SciForm sci_from_magnitude(std::uint64_t mag, int exp_offset) {
  SciForm s;
  const int msb = 63 - std::countl_zero(mag);  // mag != 0
  s.exponent = msb + exp_offset;
  const std::uint64_t below = mag ^ (std::uint64_t{1} << msb);
  s.fraction = msb == 0 ? 0 : below << (64 - msb);
  return s;
}

SciForm sci_from_int(std::uint64_t mag) { return sci_from_magnitude(mag, 0); }

SciForm sci_from_double(double a) {  // a > 0, finite
  std::uint64_t u = std::bit_cast<std::uint64_t>(a);
  const std::uint64_t exp_field = u >> 52;
  const std::uint64_t mantissa = u & ((std::uint64_t{1} << 52) - 1);
  if (exp_field > 0) {  // normal: 1.mantissa * 2^(exp-1023)
    SciForm s;
    s.exponent = static_cast<int>(exp_field) - 1023;
    s.fraction = mantissa << 12;
    return s;
  }
  // Subnormal: mantissa * 2^-1074, normalized like an integer.
  return sci_from_magnitude(mantissa, -1074);
}

void append_numeric(bool negative, SciForm s, std::string& out) {
  out.push_back(static_cast<char>(negative ? kNumNeg : kNumPos));
  std::string payload;
  payload.reserve(10);
  append_u16_be(static_cast<std::uint16_t>(s.exponent + kExpBias), payload);
  append_u64_be(s.fraction, payload);
  // A more negative value has the larger magnitude; inverting the
  // payload bytes reverses the magnitude order under the negative class.
  if (negative)
    for (char& c : payload) c = static_cast<char>(~c);
  out.append(payload);
}

[[noreturn]] void corrupt(const char* what, std::size_t pos) {
  throw InternalError(strf("norm key decode: %s at byte %zu", what, pos));
}

Value decode_numeric(const std::string& in, std::size_t& pos) {
  if (pos >= in.size()) corrupt("missing numeric class", pos);
  const unsigned char cls = static_cast<unsigned char>(in[pos++]);
  switch (cls) {
    case kNumNegInf: return Value{-std::numeric_limits<double>::infinity()};
    case kNumZero: return Value{std::int64_t{0}};
    case kNumPosInf: return Value{std::numeric_limits<double>::infinity()};
    case kNumNan: return Value{std::numeric_limits<double>::quiet_NaN()};
    case kNumNeg:
    case kNumPos: break;
    default: corrupt("bad numeric class", pos - 1);
  }
  if (pos + 10 > in.size()) corrupt("truncated numeric payload", pos);
  const bool negative = cls == kNumNeg;
  auto byte_at = [&](std::size_t i) {
    const auto b = static_cast<unsigned char>(in[pos + i]);
    return negative ? static_cast<unsigned char>(~b) : b;
  };
  const int exponent =
      static_cast<int>((byte_at(0) << 8) | byte_at(1)) - kExpBias;
  std::uint64_t fraction = 0;
  for (std::size_t i = 2; i < 10; ++i) fraction = (fraction << 8) | byte_at(i);
  pos += 10;

  // Integral values in int64 range decode as Int (the encoding cannot
  // distinguish Int 5 from Double 5.0 — they compare equal, so they
  // encode identically). Everything else decodes as Double.
  // Fraction bits at positions below 64-exponent carry weight < 1, so
  // the value is integral exactly when shifting them to the top leaves
  // nothing (exponent in [0, 63] makes the shift well defined).
  const bool integral =
      exponent >= 0 && exponent < 64 && (fraction << exponent) == 0;
  if (integral && (exponent < 63 || (negative && fraction == 0))) {
    std::uint64_t mag = std::uint64_t{1} << exponent;
    if (exponent > 0) mag |= fraction >> (64 - exponent);
    const std::int64_t i = negative ? -static_cast<std::int64_t>(mag - 1) - 1
                                    : static_cast<std::int64_t>(mag);
    return Value{i};
  }
  if (exponent < -1074 || exponent > 1023)
    corrupt("numeric exponent out of double range", pos - 10);
  const double m = 1.0 + static_cast<double>(fraction >> 12) * 0x1p-52;
  const double a = std::ldexp(m, exponent);
  return Value{negative ? -a : a};
}

Value decode_cell(const std::string& in, std::size_t& pos) {
  const unsigned char tag = static_cast<unsigned char>(in[pos++]);
  switch (tag) {
    case kTagNull:
      return Value::null();
    case kTagNumeric:
      return decode_numeric(in, pos);
    case kTagString: {
      std::string s;
      while (true) {
        if (pos >= in.size()) corrupt("unterminated string", pos);
        const unsigned char c = static_cast<unsigned char>(in[pos++]);
        if (c != 0x00) {
          s.push_back(static_cast<char>(c));
          continue;
        }
        if (pos >= in.size()) corrupt("truncated string escape", pos);
        const unsigned char e = static_cast<unsigned char>(in[pos++]);
        if (e == kStrEscape) {
          s.push_back('\0');
        } else if (e == kStrTerm) {
          break;
        } else {
          corrupt("bad string escape", pos - 1);
        }
      }
      return Value{std::move(s)};
    }
    default:
      corrupt("bad cell tag", pos - 1);
  }
}

}  // namespace

void append_norm_key(const Value& v, std::string& out) {
  prof::count(prof::kCellsEncoded);
  switch (v.type()) {
    case ValueType::Null:
      out.push_back(static_cast<char>(kTagNull));
      return;
    case ValueType::Int: {
      const std::int64_t i = v.as_int();
      out.push_back(static_cast<char>(kTagNumeric));
      if (i == 0) {
        out.push_back(static_cast<char>(kNumZero));
        return;
      }
      const bool negative = i < 0;
      // 0 - u negates without overflowing on int64 min.
      const std::uint64_t u = static_cast<std::uint64_t>(i);
      const std::uint64_t mag = negative ? std::uint64_t{0} - u : u;
      append_numeric(negative, sci_from_int(mag), out);
      return;
    }
    case ValueType::Double: {
      const double d = v.as_double();
      out.push_back(static_cast<char>(kTagNumeric));
      if (std::isnan(d)) {
        // compare_rows treats NaN as incomparable ("equal" to any
        // numeric); the encoding gives it a defined slot above +inf so
        // the byte order stays total. SQL expressions never produce NaN
        // keys, so the difference is unobservable in the engine.
        out.push_back(static_cast<char>(kNumNan));
        return;
      }
      if (std::isinf(d)) {
        out.push_back(static_cast<char>(d < 0 ? kNumNegInf : kNumPosInf));
        return;
      }
      if (d == 0.0) {  // +0.0 and -0.0 compare equal: one encoding
        out.push_back(static_cast<char>(kNumZero));
        return;
      }
      const bool negative = std::signbit(d);
      append_numeric(negative, sci_from_double(std::fabs(d)), out);
      return;
    }
    case ValueType::String: {
      out.push_back(static_cast<char>(kTagString));
      const std::string& s = v.as_string();
      for (const char c : s) {
        out.push_back(c);
        if (c == '\0') out.push_back(static_cast<char>(kStrEscape));
      }
      out.push_back('\0');
      out.push_back(static_cast<char>(kStrTerm));
      return;
    }
  }
  throw InternalError("append_norm_key: unknown value type");
}

std::string encode_norm_key(const Row& key) {
  prof::count(prof::kNormKeyEncodes);
  std::string out;
  // Typical keys are one or two short cells; one reservation covers the
  // common case without a second allocation (and usually stays SSO-free).
  out.reserve(key.size() * 12);
  for (const Value& v : key) append_norm_key(v, out);
  return out;
}

Row decode_norm_key(const std::string& in) {
  Row row;
  std::size_t pos = 0;
  while (pos < in.size()) {
    prof::count(prof::kCellsDecoded);
    row.push_back(decode_cell(in, pos));
  }
  return row;
}

}  // namespace ysmart
