#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "common/prof_counters.h"
#include "common/strings.h"

namespace ysmart {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::Null: return "NULL";
    case ValueType::Int: return "INT";
    case ValueType::Double: return "DOUBLE";
    case ValueType::String: return "STRING";
  }
  return "?";
}

std::int64_t Value::as_int() const {
  if (auto* p = std::get_if<std::int64_t>(&v_)) return *p;
  throw ExecError("value is not an INT: " + to_string());
}

double Value::as_double() const {
  if (auto* p = std::get_if<double>(&v_)) return *p;
  throw ExecError("value is not a DOUBLE: " + to_string());
}

const std::string& Value::as_string() const {
  if (auto* p = std::get_if<std::string>(&v_)) return *p;
  throw ExecError("value is not a STRING: " + to_string());
}

double Value::numeric() const {
  switch (type()) {
    case ValueType::Int: return static_cast<double>(std::get<std::int64_t>(v_));
    case ValueType::Double: return std::get<double>(v_);
    default:
      throw ExecError("value is not numeric: " + to_string());
  }
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::Null: return "NULL";
    case ValueType::Int: return std::to_string(std::get<std::int64_t>(v_));
    case ValueType::Double: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", std::get<double>(v_));
      return buf;
    }
    case ValueType::String: return std::get<std::string>(v_);
  }
  return "?";
}

std::size_t Value::byte_size() const {
  switch (type()) {
    case ValueType::Null: return 1;
    case ValueType::Int: return 8;
    case ValueType::Double: return 8;
    case ValueType::String: return 2 + std::get<std::string>(v_).size();
  }
  return 1;
}

/// Exact three-way comparison of an int64 against a double — no cast of
/// the int to double, which would collapse neighbours beyond 2^53 and
/// break the total order (int 2^53 < int 2^53+1, yet both would "equal"
/// double 2^53.0). NaN keeps its historical behaviour of comparing
/// "equal" to any numeric.
std::strong_ordering compare_int_double(std::int64_t i, double d) {
  if (std::isnan(d)) return std::strong_ordering::equal;
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63, exact
  if (d >= kTwo63) return std::strong_ordering::less;
  if (d < -kTwo63) return std::strong_ordering::greater;
  // floor(d) now fits in int64 exactly (doubles this large are integers,
  // doubles this small have an exactly representable floor).
  const double fl = std::floor(d);
  const auto f = static_cast<std::int64_t>(fl);
  if (i != f) return i <=> f;
  return d > fl ? std::strong_ordering::less : std::strong_ordering::equal;
}

std::strong_ordering Value::compare(const Value& other) const {
  prof::count(prof::kCellCompares);
  const bool a_num = type() == ValueType::Int || type() == ValueType::Double;
  const bool b_num =
      other.type() == ValueType::Int || other.type() == ValueType::Double;
  if (a_num && b_num) {
    // Compare numerically across Int/Double so that grouping by a key that
    // is int in one branch and double in another behaves sanely.
    if (type() == ValueType::Int && other.type() == ValueType::Int) {
      const auto a = std::get<std::int64_t>(v_);
      const auto b = std::get<std::int64_t>(other.v_);
      return a <=> b;
    }
    if (type() == ValueType::Int)
      return compare_int_double(std::get<std::int64_t>(v_),
                                std::get<double>(other.v_));
    if (other.type() == ValueType::Int) {
      const auto c = compare_int_double(std::get<std::int64_t>(other.v_),
                                        std::get<double>(v_));
      if (c == std::strong_ordering::less) return std::strong_ordering::greater;
      if (c == std::strong_ordering::greater) return std::strong_ordering::less;
      return std::strong_ordering::equal;
    }
    const double a = std::get<double>(v_);
    const double b = std::get<double>(other.v_);
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  // Rank: Null(0) < numeric(1) < String(2).
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::Null: return 0;
      case ValueType::Int:
      case ValueType::Double: return 1;
      case ValueType::String: return 2;
    }
    return 3;
  };
  if (rank(type()) != rank(other.type()))
    return rank(type()) <=> rank(other.type());
  if (type() == ValueType::Null) return std::strong_ordering::equal;
  const auto& a = std::get<std::string>(v_);
  const auto& b = std::get<std::string>(other.v_);
  const int c = a.compare(b);
  return c <=> 0;
}

std::size_t Value::hash() const {
  switch (type()) {
    case ValueType::Null: return 0x9e3779b97f4a7c15ULL;
    case ValueType::Int: {
      // Hash ints through double when they fit exactly so that 1 and 1.0
      // hash identically (they compare equal).
      const auto i = std::get<std::int64_t>(v_);
      const double d = static_cast<double>(i);
      if (static_cast<std::int64_t>(d) == i)
        return std::hash<double>{}(d);
      return std::hash<std::int64_t>{}(i);
    }
    case ValueType::Double: return std::hash<double>{}(std::get<double>(v_));
    case ValueType::String:
      return std::hash<std::string>{}(std::get<std::string>(v_));
  }
  return 0;
}

void Value::encode(std::string& out) const {
  prof::count(prof::kCellsEncoded);
  switch (type()) {
    case ValueType::Null:
      out.push_back('N');
      break;
    case ValueType::Int: {
      out.push_back('I');
      std::int64_t i = std::get<std::int64_t>(v_);
      out.append(reinterpret_cast<const char*>(&i), sizeof(i));
      break;
    }
    case ValueType::Double: {
      out.push_back('D');
      double d = std::get<double>(v_);
      out.append(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case ValueType::String: {
      out.push_back('S');
      const auto& s = std::get<std::string>(v_);
      std::uint32_t n = static_cast<std::uint32_t>(s.size());
      out.append(reinterpret_cast<const char*>(&n), sizeof(n));
      out.append(s);
      break;
    }
  }
}

Value Value::decode(const std::string& in, std::size_t& pos) {
  prof::count(prof::kCellsDecoded);
  // Every read is bounds-checked up front so truncated or corrupt input
  // fails loudly (with the offending offset) instead of reading past the
  // end of the buffer; `pos` is only advanced past validated bytes.
  if (pos >= in.size())
    throw InternalError(
        strf("Value::decode: no tag byte at offset %zu (buffer is %zu bytes)",
             pos, in.size()));
  const char tag = in[pos++];
  switch (tag) {
    case 'N':
      return Value::null();
    case 'I': {
      std::int64_t i;
      if (in.size() - pos < sizeof(i))
        throw InternalError(
            strf("Value::decode: truncated int at offset %zu (need 8 bytes, "
                 "have %zu)",
                 pos, in.size() - pos));
      std::memcpy(&i, in.data() + pos, sizeof(i));
      pos += sizeof(i);
      return Value{i};
    }
    case 'D': {
      double d;
      if (in.size() - pos < sizeof(d))
        throw InternalError(
            strf("Value::decode: truncated double at offset %zu (need 8 "
                 "bytes, have %zu)",
                 pos, in.size() - pos));
      std::memcpy(&d, in.data() + pos, sizeof(d));
      pos += sizeof(d);
      return Value{d};
    }
    case 'S': {
      std::uint32_t n;
      if (in.size() - pos < sizeof(n))
        throw InternalError(
            strf("Value::decode: truncated string length at offset %zu", pos));
      std::memcpy(&n, in.data() + pos, sizeof(n));
      pos += sizeof(n);
      if (in.size() - pos < n)
        throw InternalError(
            strf("Value::decode: truncated string body at offset %zu "
                 "(length says %u bytes, have %zu)",
                 pos, n, in.size() - pos));
      Value v{in.substr(pos, n)};
      pos += n;
      return v;
    }
    default:
      throw InternalError(strf(
          "Value::decode: bad tag byte 0x%02x at offset %zu",
          static_cast<unsigned>(static_cast<unsigned char>(tag)), pos - 1));
  }
}

std::size_t row_byte_size(const Row& r) {
  std::size_t n = 4;  // per-row framing overhead
  for (const auto& v : r) n += v.byte_size();
  return n;
}

std::string row_to_string(const Row& r) {
  std::string out = "(";
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (i) out += ", ";
    out += r[i].to_string();
  }
  out += ")";
  return out;
}

std::size_t RowHash::operator()(const Row& r) const {
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (const auto& v : r) h = h * 1099511628211ULL ^ v.hash();
  return h;
}

std::strong_ordering compare_rows(const Row& a, const Row& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = a[i].compare(b[i]);
    if (c != 0) return c;
  }
  return a.size() <=> b.size();
}

}  // namespace ysmart
