#include "common/schema.h"

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

void Schema::add(std::string name, ValueType type) {
  cols_.push_back(Column{std::move(name), type});
}

std::optional<std::size_t> Schema::find(const std::string& name) const {
  const std::string lowered = to_lower(name);
  // Pass 1: exact match on stored name.
  std::optional<std::size_t> hit;
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == lowered) {
      if (hit) throw PlanError("ambiguous column reference: " + name);
      hit = i;
    }
  }
  if (hit) return hit;
  // Pass 2: unqualified name matches "alias.name".
  if (lowered.find('.') == std::string::npos) {
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (unqualify(cols_[i].name) == lowered) {
        if (hit) throw PlanError("ambiguous column reference: " + name);
        hit = i;
      }
    }
    if (hit) return hit;
  } else {
    // Pass 3: qualified name "a.c" matches a stored *unqualified* "c"
    // (referencing a base table's or derived table's bare column through
    // an alias). A stored name carrying a different qualifier never
    // matches — "outer_t.l_partkey" must not hit "inner_t.l_partkey".
    const std::string bare = unqualify(lowered);
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].name == bare &&
          cols_[i].name.find('.') == std::string::npos) {
        if (hit) throw PlanError("ambiguous column reference: " + name);
        hit = i;
      }
    }
    if (hit) return hit;
  }
  return std::nullopt;
}

std::size_t Schema::index_of(const std::string& name) const {
  auto i = find(name);
  if (!i) throw PlanError("unknown column: " + name + " in " + to_string());
  return *i;
}

Schema Schema::qualified(const std::string& alias) const {
  Schema out;
  for (const auto& c : cols_)
    out.add(to_lower(alias) + "." + unqualify(c.name), c.type);
  return out;
}

Schema Schema::concat(const Schema& a, const Schema& b) {
  Schema out = a;
  for (const auto& c : b.columns()) out.add(c.name, c.type);
  return out;
}

std::string Schema::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].name;
    out += ":";
    out += ysmart::to_string(cols_[i].type);
  }
  out += "]";
  return out;
}

std::string unqualify(const std::string& name) {
  const auto dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace ysmart
