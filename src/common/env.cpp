#include "common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <climits>

namespace ysmart {

std::optional<int> parse_positive_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str()) return std::nullopt;
  while (*end == ' ' || *end == '\t') ++end;  // strtol already skips leading
  if (*end != '\0') return std::nullopt;
  if (v <= 0 || v > INT_MAX) return std::nullopt;
  return static_cast<int>(v);
}

std::optional<int> env_positive_int(const char* name) {
  const char* raw = std::getenv(name);
  if (!raw) return std::nullopt;
  auto v = parse_positive_int(raw);
  if (!v)
    std::fprintf(stderr,
                 "warning: ignoring %s=\"%s\" (expected a positive integer); "
                 "using the default\n",
                 name, raw);
  return v;
}

std::optional<bool> parse_flag(const std::string& text) {
  std::string t;
  for (char c : text)
    t.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  if (t == "on" || t == "1" || t == "true" || t == "yes") return true;
  if (t == "off" || t == "0" || t == "false" || t == "no") return false;
  return std::nullopt;
}

std::optional<bool> env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (!raw) return std::nullopt;
  auto v = parse_flag(raw);
  if (!v)
    std::fprintf(stderr,
                 "warning: ignoring %s=\"%s\" (expected on/off, 1/0, "
                 "true/false or yes/no); using the default\n",
                 name, raw);
  return v;
}

std::optional<std::string> env_nonempty(const char* name) {
  const char* raw = std::getenv(name);
  if (!raw) return std::nullopt;
  if (raw[0] == '\0') {
    std::fprintf(stderr, "warning: ignoring empty %s\n", name);
    return std::nullopt;
  }
  return std::string(raw);
}

}  // namespace ysmart
