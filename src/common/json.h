// JsonWriter: a minimal streaming JSON emitter.
//
// Commas and nesting are handled by the writer; callers interleave
// begin_object/begin_array, key(), and value() calls. Doubles are
// formatted with %.17g so a value round-trips exactly and two runs that
// computed the same doubles emit byte-identical JSON — the property the
// trace/bench outputs rely on for diffability. No parsing here: the repo
// only ever *emits* JSON (traces, metrics snapshots, bench records).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ysmart {

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or a begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);

  /// Emit `raw` verbatim (caller guarantees it is valid JSON).
  JsonWriter& raw(std::string_view raw_json);

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma_for_value();

  std::string out_;
  // One entry per open container: number of elements emitted so far.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
};

}  // namespace ysmart
