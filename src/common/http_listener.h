// Minimal single-threaded HTTP/1.0 listener for the observability
// exposition endpoints (GET /metrics, /healthz, /history.json).
//
// Deliberately tiny: one background thread accepts loopback connections
// and serves them serially — GET only, no keep-alive, no TLS, request
// line parsed and headers ignored. That is all a Prometheus scraper or
// `curl` needs, and keeping it primitive bounds the attack/bug surface
// of what is after all an in-process debug port. The handler runs on the
// listener thread while the main thread executes queries, so handlers
// must only read thread-safe state (every obs surface locks internally)
// and must never touch the engine.
//
// All response bodies are produced by pure renderers (obs/prom_export.h,
// QueryHistoryStore::json), so everything served here is unit-testable
// without sockets; the socket tests in tests/test_obs_service.cpp only
// prove the plumbing.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace ysmart {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpListener {
 public:
  /// Maps a request path ("/metrics") to a response. Runs on the
  /// listener thread; must only touch thread-safe state.
  using Handler = std::function<HttpResponse(const std::string& path)>;

  HttpListener() = default;
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start serving on a
  /// background thread. Returns false with a message in `*error` (when
  /// non-null) if the socket could not be set up or already running.
  bool start(int port, Handler handler, std::string* error = nullptr);

  /// Stop accepting, close the socket and join the thread. Safe to call
  /// when not running.
  void stop();

  bool running() const { return running_.load(); }
  /// The bound port (useful with port 0); 0 when not running.
  int port() const { return port_; }

 private:
  void serve_loop();

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  Handler handler_;
  std::thread thread_;
};

}  // namespace ysmart
