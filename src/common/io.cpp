#include "common/io.h"

#include <cstdio>
#include <fstream>

namespace ysmart {

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << body << '\n';
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "error: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace ysmart
