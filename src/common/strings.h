// Small string helpers shared across the library.
#pragma once

#include <string>
#include <vector>

namespace ysmart {

std::string to_lower(std::string s);
std::string to_upper(std::string s);

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ysmart
