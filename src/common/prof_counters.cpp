#include "common/prof_counters.h"

#include <time.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>

namespace ysmart::prof {

namespace detail {
constinit std::atomic<bool> g_enabled{false};
thread_local ThreadCounters t_counters;  // zero-initialized POD TLS
}  // namespace detail

const char* counter_name(int i) {
  switch (i) {
    case kCellCompares:   return "cell_compares";
    case kRawKeyCompares: return "raw_key_compares";
    case kRowsEvaluated:  return "rows_evaluated";
    case kAggUpdates:     return "agg_updates";
    case kOperatorRows:   return "operator_rows";
    case kCellsEncoded:   return "cells_encoded";
    case kCellsDecoded:   return "cells_decoded";
    case kNormKeyEncodes: return "norm_key_encodes";
    default:              return "unknown";
  }
}

namespace {
std::mutex g_enable_mu;
int g_enable_refs = 0;
}  // namespace

void acquire_enabled() {
  std::lock_guard<std::mutex> lk(g_enable_mu);
  if (++g_enable_refs == 1)
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void release_enabled() {
  std::lock_guard<std::mutex> lk(g_enable_mu);
  if (g_enable_refs > 0 && --g_enable_refs == 0)
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

ThreadCounters thread_snapshot() { return detail::t_counters; }

namespace {
std::uint64_t clock_ns(clockid_t id) {
  struct timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
}  // namespace

std::uint64_t thread_cpu_ns() { return clock_ns(CLOCK_THREAD_CPUTIME_ID); }
std::uint64_t process_cpu_ns() { return clock_ns(CLOCK_PROCESS_CPUTIME_ID); }

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace ysmart::prof

// ---------------------------------------------------------------------------
// Global allocation hooks.
//
// Replacing the global operator new/delete set is the only way to count
// allocations without wrapping every container; the replacements forward
// to malloc/free (what the default implementations do anyway) and bump
// the thread-local counters only while profiling is enabled. The
// counters are plain TLS u64s: no locks, no allocation, safe to hit from
// any thread at any point in the process lifetime, and TSan/ASan
// intercept the underlying malloc/free as usual.
// ---------------------------------------------------------------------------

namespace {

inline void note_alloc(std::size_t n) {
  if (ysmart::prof::enabled()) {
    ++ysmart::prof::detail::t_counters.allocs;
    ysmart::prof::detail::t_counters.alloc_bytes += n;
  }
}

inline void note_free(void* p) {
  if (p && ysmart::prof::enabled()) ++ysmart::prof::detail::t_counters.frees;
}

void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (p) note_alloc(n);
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : 1) != 0) return nullptr;
  note_alloc(n);
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p) noexcept { note_free(p); std::free(p); }
void operator delete(void* p, std::size_t) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { note_free(p); std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { note_free(p); std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { note_free(p); std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { note_free(p); std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { note_free(p); std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { note_free(p); std::free(p); }
