// Value: the dynamically-typed cell used throughout the engine.
//
// Every relational datum flowing through the SQL frontend, the MapReduce
// runtime and the reference executor is a Value: SQL NULL, a 64-bit
// integer, a double, or a string. Values order NULLs first (as a total
// order for sorting/grouping) and compare with SQL three-valued semantics
// via the sql_* helpers in expr_eval.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace ysmart {

enum class ValueType { Null, Int, Double, String };

/// Human-readable name of a ValueType ("NULL", "INT", ...).
const char* to_string(ValueType t);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(std::int64_t i) : v_(i) {}          // NOLINT(google-explicit-constructor)
  Value(int i) : v_(std::int64_t{i}) {}     // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}                // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)

  static Value null() { return Value{}; }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::Null; }

  /// Accessors; each throws Error if the value holds a different type.
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Numeric coercion: Int or Double -> double. Throws on NULL/String.
  double numeric() const;

  /// Render for output (NULL prints as "NULL"; doubles with %.4f trimming).
  std::string to_string() const;

  /// Serialized size in bytes as accounted by the MR cost model.
  std::size_t byte_size() const;

  /// Total order used for sorting and grouping: NULL < Int/Double < String,
  /// with Int and Double compared numerically against each other.
  std::strong_ordering compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  /// Stable hash consistent with compare()'s equality (1 and 1.0 collide).
  std::size_t hash() const;

  /// Serialize to / parse from the compact wire format used by the DFS
  /// text files and the shuffle byte accounting.
  void encode(std::string& out) const;
  static Value decode(const std::string& in, std::size_t& pos);

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

/// Byte size of a whole row (sum of cells plus per-row framing).
std::size_t row_byte_size(const Row& r);

std::string row_to_string(const Row& r);

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

struct RowHash {
  std::size_t operator()(const Row& r) const;
};

/// Exact three-way comparison of an int64 against a double — never casts
/// the int to double (which would collapse neighbours beyond 2^53). NaN
/// compares "equal" to any numeric, matching Value::compare. Exported so
/// the vectorized kernels (exec/vector_kernels.cpp) and the typed
/// aggregate adds reproduce Value::compare bit-for-bit without the
/// variant dispatch.
std::strong_ordering compare_int_double(std::int64_t i, double d);

/// Lexicographic comparison of rows under Value::compare.
std::strong_ordering compare_rows(const Row& a, const Row& b);

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return compare_rows(a, b) < 0;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    return compare_rows(a, b) == 0;
  }
};

}  // namespace ysmart
