// Schema: ordered list of named, typed columns describing a Table or any
// intermediate relation flowing between plan operators and MR jobs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace ysmart {

struct Column {
  std::string name;  // lower-cased, possibly qualified as "alias.col"
  ValueType type = ValueType::Null;

  bool operator==(const Column&) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  std::size_t size() const { return cols_.size(); }
  bool empty() const { return cols_.empty(); }
  const Column& at(std::size_t i) const { return cols_.at(i); }
  const std::vector<Column>& columns() const { return cols_; }

  void add(std::string name, ValueType type);

  /// Index of column `name`. Matching rules: an exact match on the stored
  /// name wins; otherwise an unqualified `name` matches a stored
  /// "alias.name" suffix. Throws PlanError if ambiguous; nullopt if absent.
  std::optional<std::size_t> find(const std::string& name) const;

  /// find() that throws PlanError when the column does not exist.
  std::size_t index_of(const std::string& name) const;

  /// New schema with every column name prefixed "alias." (old qualifiers
  /// stripped first).
  Schema qualified(const std::string& alias) const;

  /// Concatenation of two schemas (for join outputs).
  static Schema concat(const Schema& a, const Schema& b);

  std::string to_string() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> cols_;
};

/// Strip a leading "alias." qualifier, if any.
std::string unqualify(const std::string& name);

}  // namespace ysmart
