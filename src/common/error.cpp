#include "common/error.h"

namespace ysmart {

void check(bool cond, const char* msg) {
  if (!cond) throw InternalError(msg);
}

}  // namespace ysmart
