#include "common/json.h"

#include "common/strings.h"

namespace ysmart {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20)
          out += strf("\\u%04x", c);
        else
          out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty() && counts_.back()++ > 0) out_ += ',';
}

// The root value also routes through comma_for_value(); with no open
// container it emits nothing, which is what a bare top-level value needs.
JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!counts_.empty() && counts_.back()++ > 0) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  out_ += strf("%.17g", v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += strf("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += strf("%lld", static_cast<long long>(v));
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::raw(std::string_view raw_json) {
  comma_for_value();
  out_ += raw_json;
  return *this;
}

}  // namespace ysmart
