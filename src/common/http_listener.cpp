#include "common/http_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace ysmart {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpListener::~HttpListener() { stop(); }

bool HttpListener::start(int port, Handler handler, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load()) return fail("listener already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail(strf("socket: %s", std::strerror(errno)));
  // SO_REUSEADDR before bind: a just-stopped listener leaves the port in
  // TIME_WAIT, and a quick \serve restart on the same port would
  // otherwise fail with EADDRINUSE. A setsockopt failure is fatal for
  // the same reason — silently continuing would make restarts flaky.
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0)
    return fail(strf("setsockopt(SO_REUSEADDR): %s", std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    return fail(strf("bind 127.0.0.1:%d: %s", port, std::strerror(errno)));
  if (::listen(listen_fd_, 8) < 0)
    return fail(strf("listen 127.0.0.1:%d: %s", port, std::strerror(errno)));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  else
    port_ = port;

  handler_ = std::move(handler);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpListener::serve_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    // Read the request head (we only need the request line; cap the read
    // so a misbehaving client cannot grow the buffer unboundedly).
    std::string req;
    char buf[2048];
    while (req.size() < 16 * 1024 &&
           req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }

    HttpResponse resp;
    const std::size_t eol = req.find_first_of("\r\n");
    const std::string line = req.substr(0, eol == std::string::npos ? 0 : eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp.status = 405;
      resp.body = "malformed request\n";
    } else if (line.substr(0, sp1) != "GET") {
      resp.status = 405;
      resp.body = "only GET is served here\n";
    } else {
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      if (const std::size_t q = path.find('?'); q != std::string::npos)
        path.resize(q);
      resp = handler_ ? handler_(path)
                      : HttpResponse{404, "text/plain; charset=utf-8",
                                     "no handler\n"};
    }
    // An error response with no body would send Content-Length: 0 and a
    // blank page; substitute the status line so curl users see something.
    if (resp.body.empty() && resp.status != 200)
      resp.body = strf("%d %s\n", resp.status, status_text(resp.status));

    std::string head =
        strf("HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
             "Content-Length: %zu\r\nConnection: close\r\n\r\n",
             resp.status, status_text(resp.status), resp.content_type.c_str(),
             resp.body.size());
    send_all(fd, head + resp.body);
    ::close(fd);
  }
}

void HttpListener::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept() by shutting the listening socket down, then join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

}  // namespace ysmart
