// Click-stream generator for the Q-CSA workload (paper Section I).
//
// CLICKS(uid, page_id, cid, ts): per user a time-ordered stream of page
// views across categories. Categories are drawn with a Zipf skew so the
// "between a page in category X and a page in category Y" sessions Q-CSA
// measures actually occur. Deterministic under a seed.
#pragma once

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace ysmart {

struct ClicksConfig {
  std::uint64_t seed = 1411;  // page number of the SQL/MR paper Q-CSA cites
  std::int64_t users = 4000;
  std::int64_t mean_clicks_per_user = 40;
  std::int64_t pages = 10000;
  std::int64_t categories = 20;
  double category_skew = 0.8;
};

Schema clicks_schema();

std::shared_ptr<Table> generate_clicks(const ClicksConfig& cfg);

}  // namespace ysmart
