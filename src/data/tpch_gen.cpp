#include "data/tpch_gen.h"

#include "common/rng.h"
#include "common/strings.h"

namespace ysmart {

Schema tpch_lineitem_schema() {
  Schema s;
  s.add("l_orderkey", ValueType::Int);
  s.add("l_partkey", ValueType::Int);
  s.add("l_suppkey", ValueType::Int);
  s.add("l_quantity", ValueType::Int);
  s.add("l_extendedprice", ValueType::Double);
  s.add("l_commitdate", ValueType::Int);
  s.add("l_receiptdate", ValueType::Int);
  return s;
}

Schema tpch_orders_schema() {
  Schema s;
  s.add("o_orderkey", ValueType::Int);
  s.add("o_custkey", ValueType::Int);
  s.add("o_orderstatus", ValueType::String);
  s.add("o_totalprice", ValueType::Double);
  s.add("o_orderdate", ValueType::Int);
  return s;
}

Schema tpch_part_schema() {
  Schema s;
  s.add("p_partkey", ValueType::Int);
  s.add("p_name", ValueType::String);
  return s;
}

Schema tpch_customer_schema() {
  Schema s;
  s.add("c_custkey", ValueType::Int);
  s.add("c_name", ValueType::String);
  return s;
}

Schema tpch_supplier_schema() {
  Schema s;
  s.add("s_suppkey", ValueType::Int);
  s.add("s_name", ValueType::String);
  s.add("s_nationkey", ValueType::Int);
  return s;
}

Schema tpch_nation_schema() {
  Schema s;
  s.add("n_nationkey", ValueType::Int);
  s.add("n_name", ValueType::String);
  return s;
}

TpchData generate_tpch(const TpchConfig& cfg) {
  Rng rng(cfg.seed);
  TpchData d;
  d.lineitem = std::make_shared<Table>(tpch_lineitem_schema());
  d.orders = std::make_shared<Table>(tpch_orders_schema());
  d.part = std::make_shared<Table>(tpch_part_schema());
  d.customer = std::make_shared<Table>(tpch_customer_schema());
  d.supplier = std::make_shared<Table>(tpch_supplier_schema());
  d.nation = std::make_shared<Table>(tpch_nation_schema());

  static const char* kNations[] = {
      "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
      "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
      "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
      "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
  const std::int64_t nations =
      std::min<std::int64_t>(cfg.nations, std::int64_t(std::size(kNations)));
  for (std::int64_t n = 0; n < nations; ++n)
    d.nation->append({Value{n}, Value{kNations[n]}});

  for (std::int64_t p = 1; p <= cfg.parts; ++p)
    d.part->append({Value{p}, Value{"part#" + std::to_string(p)}});

  for (std::int64_t c = 1; c <= cfg.customers; ++c)
    d.customer->append({Value{c}, Value{"Customer#" + std::to_string(c)}});

  for (std::int64_t s = 1; s <= cfg.suppliers; ++s)
    d.supplier->append({Value{s}, Value{"Supplier#" + std::to_string(s)},
                        Value{rng.uniform(0, nations - 1)}});

  for (std::int64_t o = 1; o <= cfg.orders; ++o) {
    const std::int64_t custkey = rng.uniform(1, cfg.customers);
    const char* status = rng.uniform01() < 0.49 ? "F" : "O";
    const std::int64_t orderdate = rng.uniform(8036, 10591);  // 1992..1998
    double totalprice = 0;

    const std::int64_t items =
        1 + rng.zipf(cfg.max_lineitems_per_order, cfg.lineitem_skew);
    for (std::int64_t i = 0; i < items; ++i) {
      const std::int64_t partkey = rng.uniform(1, cfg.parts);
      const std::int64_t suppkey = rng.uniform(1, cfg.suppliers);
      const std::int64_t quantity = rng.uniform(1, 50);
      const double price = static_cast<double>(quantity) *
                           (900.0 + static_cast<double>(partkey % 1000));
      totalprice += price;
      const std::int64_t commitdate = orderdate + rng.uniform(30, 90);
      // ~35% of lineitems are received after the commit date (Q21's
      // "waiting" condition needs a healthy population).
      const std::int64_t receiptdate =
          commitdate + (rng.uniform01() < 0.35 ? rng.uniform(1, 30)
                                               : -rng.uniform(0, 25));
      d.lineitem->append({Value{o}, Value{partkey}, Value{suppkey},
                          Value{quantity}, Value{price}, Value{commitdate},
                          Value{receiptdate}});
    }
    d.orders->append({Value{o}, Value{custkey}, Value{status},
                      Value{totalprice}, Value{orderdate}});
  }
  return d;
}

}  // namespace ysmart
