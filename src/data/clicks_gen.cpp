#include "data/clicks_gen.h"

#include <algorithm>

#include "common/rng.h"

namespace ysmart {

Schema clicks_schema() {
  Schema s;
  s.add("uid", ValueType::Int);
  s.add("page_id", ValueType::Int);
  s.add("cid", ValueType::Int);
  s.add("ts", ValueType::Int);
  return s;
}

std::shared_ptr<Table> generate_clicks(const ClicksConfig& cfg) {
  Rng rng(cfg.seed);
  auto t = std::make_shared<Table>(clicks_schema());
  for (std::int64_t u = 1; u <= cfg.users; ++u) {
    const std::int64_t n =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(rng.exponential(
                                      static_cast<double>(cfg.mean_clicks_per_user))));
    std::int64_t ts = rng.uniform(0, 1000);
    for (std::int64_t i = 0; i < n; ++i) {
      ts += rng.uniform(1, 300);  // strictly increasing per user
      const std::int64_t cid = rng.zipf(cfg.categories, cfg.category_skew);
      const std::int64_t page = rng.uniform(1, cfg.pages);
      t->append({Value{u}, Value{page}, Value{cid}, Value{ts}});
    }
  }
  return t;
}

}  // namespace ysmart
