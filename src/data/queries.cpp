#include "data/queries.h"

namespace ysmart::queries {

// Fig. 3 of the paper, with the reserved-word aliases inner/outer renamed.
const PaperQuery& q17() {
  static const PaperQuery q{
      "Q17",
      R"sql(
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
      FROM lineitem
      GROUP BY l_partkey) AS inner_t,
     (SELECT l_partkey, l_quantity, l_extendedprice
      FROM lineitem, part
      WHERE p_partkey = l_partkey) AS outer_t
WHERE outer_t.l_partkey = inner_t.l_partkey
  AND outer_t.l_quantity < inner_t.t1
)sql",
      /*ysmart_jobs=*/2,   // AGG1+JOIN1+JOIN2 merged, plus the final AGG
      /*one_op_jobs=*/4};  // "For Q17 by Hive, there are four jobs"
  return q;
}

// TPC-H Q18 flattened with first-aggregation-then-join; the HAVING
// becomes a residual predicate on the join with the aggregated side.
const PaperQuery& q18() {
  static const PaperQuery q{
      "Q18",
      R"sql(
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS total_qty
FROM (SELECT l_orderkey, o_custkey, o_orderkey, o_orderdate, o_totalprice,
             l_quantity
      FROM lineitem, orders
      WHERE o_orderkey = l_orderkey) AS lo,
     (SELECT l_orderkey AS t_orderkey, sum(l_quantity) AS t_sum_quantity
      FROM lineitem
      GROUP BY l_orderkey) AS t,
     customer
WHERE lo.l_orderkey = t.t_orderkey
  AND t.t_sum_quantity > 300
  AND c_custkey = lo.o_custkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
)sql",
      /*ysmart_jobs=*/3,   // {JOIN1+AGG1+JOIN2}, {JOIN2'+AGG}, {SORT}
      /*one_op_jobs=*/6};  // JOIN1, AGG1, JOIN2, JOIN3, AGG2, SORT
  return q;
}

// TPC-H Q21 flattened; the Appendix sub-tree ("Left Outer Join1") plus
// the supplier/nation joins and the final aggregation and sort.
const PaperQuery& q21() {
  static const PaperQuery q{
      "Q21",
      R"sql(
SELECT s_name, count(*) AS numwait
FROM (SELECT sq1.l_orderkey AS wt_orderkey, sq1.l_suppkey AS wt_suppkey
      FROM (SELECT l_suppkey, l_orderkey
            FROM lineitem, orders
            WHERE o_orderkey = l_orderkey
              AND l_receiptdate > l_commitdate
              AND o_orderstatus = 'F') AS sq1,
           (SELECT l_orderkey AS sq2_orderkey,
                   count(distinct l_suppkey) AS cs,
                   max(l_suppkey) AS ms
            FROM lineitem
            GROUP BY l_orderkey) AS sq2
      WHERE sq1.l_orderkey = sq2.sq2_orderkey
        AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
     ) AS sq12
     LEFT OUTER JOIN
     (SELECT l_orderkey AS sq3_orderkey,
             count(distinct l_suppkey) AS cs3,
             max(l_suppkey) AS ms3
      FROM lineitem
      WHERE l_receiptdate > l_commitdate
      GROUP BY l_orderkey) AS sq3
     ON sq12.wt_orderkey = sq3.sq3_orderkey,
     supplier, nation
WHERE ((sq3.cs3 IS NULL) OR ((sq3.cs3 = 1) AND (sq12.wt_suppkey = sq3.ms3)))
  AND s_suppkey = sq12.wt_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
)sql",
      /*ysmart_jobs=*/5,   // 5-op sub-tree in ONE job + 2 joins + agg + sort
      /*one_op_jobs=*/9};
  return q;
}

// Fig. 1 of the paper (category ids 1 and 2 stand for X and Y).
const PaperQuery& qcsa() {
  static const PaperQuery q{
      "Q-CSA",
      R"sql(
SELECT avg(pageview_count) AS avg_pageviews
FROM (SELECT c.uid, mp.ts1, count(*) - 2 AS pageview_count
      FROM clicks AS c,
           (SELECT uid, max(ts1) AS ts1, ts2
            FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                  FROM clicks AS c1, clicks AS c2
                  WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                    AND c1.cid = 1 AND c2.cid = 2
                  GROUP BY c1.uid, ts1) AS cp
            GROUP BY uid, ts2) AS mp
      WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
      GROUP BY c.uid, mp.ts1) AS pageview_counts
)sql",
      /*ysmart_jobs=*/2,   // "YSmart executes two jobs" (Section VII-D)
      /*one_op_jobs=*/6};  // "while Hive executes six jobs"
  return q;
}

// The simple aggregation of Fig. 2(b): one job for every translator.
const PaperQuery& qagg() {
  static const PaperQuery q{
      "Q-AGG",
      "SELECT cid, count(*) AS clicks_count FROM clicks GROUP BY cid",
      /*ysmart_jobs=*/1,
      /*one_op_jobs=*/1};
  return q;
}

// The Appendix SQL, verbatim structure: JOIN1 (lines 3-7), AGG1 (8-12),
// JOIN2 (2-16), AGG2 (18-23), Left Outer Join1 (17/24-26).
const PaperQuery& q21_subtree() {
  static const PaperQuery q{
      "Q21-subtree",
      R"sql(
SELECT sq12.wt_suppkey AS l_suppkey
FROM (SELECT sq1.l_orderkey AS wt_orderkey, sq1.l_suppkey AS wt_suppkey
      FROM (SELECT l_suppkey, l_orderkey
            FROM lineitem, orders
            WHERE o_orderkey = l_orderkey
              AND l_receiptdate > l_commitdate
              AND o_orderstatus = 'F') AS sq1,
           (SELECT l_orderkey AS sq2_orderkey,
                   count(distinct l_suppkey) AS cs,
                   max(l_suppkey) AS ms
            FROM lineitem
            GROUP BY l_orderkey) AS sq2
      WHERE sq1.l_orderkey = sq2.sq2_orderkey
        AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
     ) AS sq12
     LEFT OUTER JOIN
     (SELECT l_orderkey AS sq3_orderkey,
             count(distinct l_suppkey) AS cs3,
             max(l_suppkey) AS ms3
      FROM lineitem
      WHERE l_receiptdate > l_commitdate
      GROUP BY l_orderkey) AS sq3
     ON sq12.wt_orderkey = sq3.sq3_orderkey
WHERE (sq3.cs3 IS NULL) OR ((sq3.cs3 = 1) AND (sq12.wt_suppkey = sq3.ms3))
)sql",
      /*ysmart_jobs=*/1,   // all five operations in a single job (Fig. 9)
      /*one_op_jobs=*/5};  // JOIN1, AGG1, JOIN2, AGG2, Left Outer Join1
  return q;
}

std::vector<const PaperQuery*> all() {
  return {&q17(), &q18(), &q21(), &qcsa(), &qagg()};
}

}  // namespace ysmart::queries
