// TPC-H subset generator (from scratch; no dbgen).
//
// Generates the tables and columns the paper's three TPC-H queries (Q17,
// Q18, Q21 in their flattened forms) touch. Deterministic under a seed.
// Dates are encoded as integer day numbers; money as doubles.
//
// Row counts follow TPC-H proportions: per "micro scale factor" unit
// there are `orders` orders with a skewed number of lineitems each (so a
// tail of large orders exists for Q18's sum(l_quantity) > 300 filter).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "storage/table.h"

namespace ysmart {

struct TpchConfig {
  std::uint64_t seed = 20110607;  // ICDCS 2011 vintage
  std::int64_t orders = 30000;
  std::int64_t parts = 4000;
  std::int64_t customers = 3000;
  std::int64_t suppliers = 200;
  std::int64_t nations = 25;
  /// Lineitems per order are 1 + zipf(max_lineitems_per_order, skew).
  /// TPC-H orders carry 1-7 lineitems; the slightly longer skewed tail
  /// here keeps Q18's sum(l_quantity) > 300 filter selecting a rare
  /// (~0.3%) population, as it does on real TPC-H data.
  std::int64_t max_lineitems_per_order = 9;
  double lineitem_skew = 0.9;
};

struct TpchData {
  std::shared_ptr<Table> lineitem;
  std::shared_ptr<Table> orders;
  std::shared_ptr<Table> part;
  std::shared_ptr<Table> customer;
  std::shared_ptr<Table> supplier;
  std::shared_ptr<Table> nation;
};

/// Schemas (also used to register catalogs without generating data).
Schema tpch_lineitem_schema();
Schema tpch_orders_schema();
Schema tpch_part_schema();
Schema tpch_customer_schema();
Schema tpch_supplier_schema();
Schema tpch_nation_schema();

TpchData generate_tpch(const TpchConfig& cfg);

}  // namespace ysmart
