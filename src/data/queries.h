// The paper's evaluation workload (Section VII-A): flattened TPC-H Q17,
// Q18, Q21 (first-aggregation-then-join, as Hive's published TPC-H
// scripts did) and the two click-stream queries Q-CSA (Fig. 1) and Q-AGG.
//
// Each entry carries the job counts the paper reports (or that follow
// from its one-op-per-job description), asserted by the test suite.
#pragma once

#include <string>
#include <vector>

namespace ysmart::queries {

struct PaperQuery {
  std::string id;          // "Q17", "Q18", "Q21", "Q-CSA", "Q-AGG"
  std::string sql;
  int ysmart_jobs;         // jobs the YSmart translation must produce
  int one_op_jobs;         // jobs a one-operation-per-job translation makes
};

const PaperQuery& q17();
const PaperQuery& q18();
const PaperQuery& q21();
const PaperQuery& qcsa();
const PaperQuery& qagg();

/// The Q21 "Left Outer Join1" sub-tree alone (the Appendix SQL): the
/// workload of the Fig. 9 correlation ablation. Five operations; one
/// MapReduce job under full correlation awareness.
const PaperQuery& q21_subtree();

/// All five evaluation queries, in the order above (excludes the
/// Fig. 9-only sub-tree query).
std::vector<const PaperQuery*> all();

}  // namespace ysmart::queries
