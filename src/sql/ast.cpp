#include "sql/ast.h"

#include "common/strings.h"

namespace ysmart {

ExprPtr Expr::make_literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Literal;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::make_column(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::ColumnRef;
  e->column = to_lower(std::move(name));
  return e;
}

ExprPtr Expr::make_unary(std::string op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Unary;
  e->op = std::move(op);
  e->args = {std::move(a)};
  return e;
}

ExprPtr Expr::make_binary(std::string op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Binary;
  e->op = std::move(op);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::make_func(std::string name, std::vector<ExprPtr> args,
                        bool distinct, bool star) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::FuncCall;
  e->op = to_lower(std::move(name));
  e->args = std::move(args);
  e->distinct = distinct;
  e->star = star;
  return e;
}

ExprPtr Expr::make_is_null(ExprPtr a, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::IsNull;
  e->args = {std::move(a)};
  e->negated = negated;
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::Literal:
      return literal.type() == ValueType::String ? "'" + literal.to_string() + "'"
                                                 : literal.to_string();
    case ExprKind::ColumnRef:
      return column;
    case ExprKind::Unary:
      return "(" + op + " " + args[0]->to_string() + ")";
    case ExprKind::Binary:
      return "(" + args[0]->to_string() + " " + op + " " +
             args[1]->to_string() + ")";
    case ExprKind::FuncCall: {
      std::string s = op + "(";
      if (distinct) s += "distinct ";
      if (star) s += "*";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->to_string();
      }
      return s + ")";
    }
    case ExprKind::IsNull:
      return "(" + args[0]->to_string() + (negated ? " is not null" : " is null") +
             ")";
  }
  return "?";
}

bool is_aggregate_function(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool contains_aggregate(const Expr& e) {
  if (e.kind == ExprKind::FuncCall && is_aggregate_function(e.op)) return true;
  for (const auto& a : e.args)
    if (a && contains_aggregate(*a)) return true;
  return false;
}

std::string SelectStmt::to_string() const {
  std::string s = "SELECT ";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) s += ", ";
    if (items[i].star) {
      s += "*";
      continue;
    }
    s += items[i].expr->to_string();
    if (!items[i].alias.empty()) s += " AS " + items[i].alias;
  }
  s += " FROM ";
  for (std::size_t i = 0; i < from.size(); ++i) {
    const auto& t = from[i];
    if (i) {
      switch (t.join) {
        case JoinType::None: s += ", "; break;
        case JoinType::Inner: s += " JOIN "; break;
        case JoinType::Left: s += " LEFT OUTER JOIN "; break;
        case JoinType::Right: s += " RIGHT OUTER JOIN "; break;
        case JoinType::Full: s += " FULL OUTER JOIN "; break;
      }
    }
    if (t.is_subquery())
      s += "(" + t.subquery->to_string() + ")";
    else
      s += t.table;
    if (!t.alias.empty()) s += " AS " + t.alias;
    if (t.join_cond) s += " ON " + t.join_cond->to_string();
  }
  if (where) s += " WHERE " + where->to_string();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i) s += ", ";
      s += group_by[i]->to_string();
    }
  }
  if (having) s += " HAVING " + having->to_string();
  if (!order_by.empty()) {
    s += " ORDER BY ";
    for (std::size_t i = 0; i < order_by.size(); ++i) {
      if (i) s += ", ";
      s += order_by[i].expr->to_string();
      if (order_by[i].desc) s += " DESC";
    }
  }
  if (limit) s += " LIMIT " + std::to_string(*limit);
  return s;
}

}  // namespace ysmart
