#include "sql/lexer.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

bool Token::is_ident(const char* kw) const {
  return type == TokenType::Ident && text == to_lower(kw);
}

bool Token::is_symbol(const char* s) const {
  return type == TokenType::Symbol && text == s;
}

std::vector<Token> lex(const std::string& sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  auto peek = [&](std::size_t k) -> char { return i + k < n ? sql[i + k] : '\0'; };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && peek(1) == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_'))
        ++i;
      out.push_back({TokenType::Ident, to_lower(sql.substr(start, i - start)),
                     start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        if (sql[i] == '.') seen_dot = true;
        ++i;
      }
      out.push_back({TokenType::Number, sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      while (i < n && sql[i] != '\'') {
        body.push_back(sql[i]);
        ++i;
      }
      if (i >= n)
        throw ParseError("unterminated string literal at offset " +
                         std::to_string(start));
      ++i;  // closing quote
      out.push_back({TokenType::String, std::move(body), start});
      continue;
    }
    // Two-character operators first.
    const char d = peek(1);
    if ((c == '<' && (d == '=' || d == '>')) || (c == '>' && d == '=') ||
        (c == '!' && d == '=')) {
      std::string sym = sql.substr(i, 2);
      if (sym == "!=") sym = "<>";
      out.push_back({TokenType::Symbol, sym, start});
      i += 2;
      continue;
    }
    if (std::string("(),.*=<>+-/;").find(c) != std::string::npos) {
      out.push_back({TokenType::Symbol, std::string(1, c), start});
      ++i;
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c +
                     "' at offset " + std::to_string(i));
  }
  out.push_back({TokenType::End, "", n});
  return out;
}

}  // namespace ysmart
