// Abstract syntax tree for the supported SQL subset (the operations the
// paper targets, Section IV): selection, projection, aggregation with
// grouping, sorting, and equi-join (inner / left / right / full outer),
// over base tables and aliased derived tables (sub-selects in FROM).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace ysmart {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  Literal,    // constant Value
  ColumnRef,  // possibly qualified column name
  Unary,      // op in {"-", "not"}
  Binary,     // op in {"+","-","*","/","=","<>","<","<=",">",">=","and","or"}
  FuncCall,   // op = function name; aggregates: count/sum/avg/min/max
  IsNull,     // args[0] IS [NOT] NULL; `negated` distinguishes
};

struct Expr {
  ExprKind kind{};
  Value literal;        // Literal
  std::string column;   // ColumnRef (lower-cased, may be "alias.col")
  std::string op;       // Unary/Binary/FuncCall
  bool distinct = false;  // FuncCall: count(DISTINCT x)
  bool star = false;      // FuncCall: count(*)
  bool negated = false;   // IsNull: IS NOT NULL
  std::vector<ExprPtr> args;

  static ExprPtr make_literal(Value v);
  static ExprPtr make_column(std::string name);
  static ExprPtr make_unary(std::string op, ExprPtr a);
  static ExprPtr make_binary(std::string op, ExprPtr a, ExprPtr b);
  static ExprPtr make_func(std::string name, std::vector<ExprPtr> args,
                           bool distinct = false, bool star = false);
  static ExprPtr make_is_null(ExprPtr a, bool negated);

  /// Round-trippable rendering (used by plan printing and tests).
  std::string to_string() const;
};

/// True if `name` is one of the supported aggregate functions.
bool is_aggregate_function(const std::string& name);

/// True if the expression contains an aggregate call anywhere.
bool contains_aggregate(const Expr& e);

struct SelectStmt;

enum class JoinType { None, Inner, Left, Right, Full };

/// One entry in a FROM clause. Entries after the first either joined the
/// preceding ones with a comma (JoinType::None; predicates live in WHERE)
/// or with explicit JOIN ... ON syntax.
struct TableRef {
  std::string table;                    // base table name, or empty
  std::shared_ptr<SelectStmt> subquery; // derived table, or null
  std::string alias;                    // required for derived tables
  JoinType join = JoinType::None;
  ExprPtr join_cond;                    // ON condition for explicit joins

  bool is_subquery() const { return subquery != nullptr; }
};

struct SelectItem {
  ExprPtr expr;       // null when star
  std::string alias;  // empty if none given
  bool star = false;  // SELECT *
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // null if absent
  std::vector<ExprPtr> group_by;
  /// HAVING predicate; must reference output columns (select aliases or
  /// grouping columns) — raw aggregate calls are not supported here.
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<std::int64_t> limit;

  std::string to_string() const;
};

}  // namespace ysmart
