// SQL lexer: turns query text into a token stream for the parser.
#pragma once

#include <string>
#include <vector>

namespace ysmart {

enum class TokenType {
  Ident,    // identifiers and keywords (text kept lower-cased)
  Number,   // integer or decimal literal
  String,   // '...' literal (text holds the unquoted body)
  Symbol,   // punctuation / operator, e.g. "," "(" ")" "<=" "<>"
  End,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;
  std::size_t pos = 0;  // byte offset into the source, for error messages

  bool is_ident(const char* kw) const;
  bool is_symbol(const char* s) const;
};

/// Tokenize `sql`; throws ParseError on an unexpected character or an
/// unterminated string literal. Always ends with an End token.
std::vector<Token> lex(const std::string& sql);

}  // namespace ysmart
