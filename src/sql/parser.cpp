#include "sql/parser.h"

#include "common/error.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace ysmart {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& sql) : toks_(lex(sql)) {}

  std::shared_ptr<SelectStmt> parse_statement() {
    auto stmt = parse_select();
    accept_symbol(";");
    expect_end();
    return stmt;
  }

  ExprPtr parse_bare_expression() {
    auto e = parse_expr();
    expect_end();
    return e;
  }

 private:
  // ---- token helpers ----
  const Token& cur() const { return toks_[i_]; }
  const Token& peek(std::size_t k = 1) const {
    return toks_[std::min(i_ + k, toks_.size() - 1)];
  }
  void advance() { if (i_ + 1 < toks_.size()) ++i_; }

  bool accept_ident(const char* kw) {
    if (cur().is_ident(kw)) { advance(); return true; }
    return false;
  }
  bool accept_symbol(const char* s) {
    if (cur().is_symbol(s)) { advance(); return true; }
    return false;
  }
  void expect_ident(const char* kw) {
    if (!accept_ident(kw)) fail(std::string("expected keyword ") + to_upper(kw));
  }
  void expect_symbol(const char* s) {
    if (!accept_symbol(s)) fail(std::string("expected '") + s + "'");
  }
  void expect_end() {
    if (cur().type != TokenType::End) fail("trailing input");
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " near offset " + std::to_string(cur().pos) +
                     (cur().text.empty() ? "" : " (at '" + cur().text + "')"));
  }
  std::string expect_name() {
    if (cur().type != TokenType::Ident) fail("expected identifier");
    std::string s = cur().text;
    advance();
    return s;
  }

  // ---- grammar ----
  std::shared_ptr<SelectStmt> parse_select() {
    expect_ident("select");
    auto stmt = std::make_shared<SelectStmt>();
    // select list
    do {
      SelectItem item;
      if (accept_symbol("*")) {
        item.star = true;
      } else {
        item.expr = parse_expr();
        if (accept_ident("as")) item.alias = expect_name();
        else if (cur().type == TokenType::Ident && !at_clause_keyword())
          item.alias = expect_name();
      }
      stmt->items.push_back(std::move(item));
    } while (accept_symbol(","));

    expect_ident("from");
    stmt->from.push_back(parse_table_ref());
    while (true) {
      if (accept_symbol(",")) {
        auto t = parse_table_ref();
        t.join = JoinType::None;
        stmt->from.push_back(std::move(t));
        continue;
      }
      JoinType jt;
      if (cur().is_ident("join")) {
        advance();
        jt = JoinType::Inner;
      } else if (cur().is_ident("inner") && peek().is_ident("join")) {
        advance();
        advance();
        jt = JoinType::Inner;
      } else if (cur().is_ident("left") || cur().is_ident("right") ||
                 cur().is_ident("full")) {
        jt = cur().is_ident("left")    ? JoinType::Left
             : cur().is_ident("right") ? JoinType::Right
                                       : JoinType::Full;
        advance();
        accept_ident("outer");
        expect_ident("join");
      } else {
        break;
      }
      auto t = parse_table_ref();
      t.join = jt;
      expect_ident("on");
      t.join_cond = parse_expr();
      stmt->from.push_back(std::move(t));
    }

    if (accept_ident("where")) stmt->where = parse_expr();
    if (accept_ident("group")) {
      expect_ident("by");
      do stmt->group_by.push_back(parse_expr());
      while (accept_symbol(","));
    }
    if (accept_ident("having")) stmt->having = parse_expr();
    if (accept_ident("order")) {
      expect_ident("by");
      do {
        OrderItem o;
        o.expr = parse_expr();
        if (accept_ident("desc")) o.desc = true;
        else accept_ident("asc");
        stmt->order_by.push_back(std::move(o));
      } while (accept_symbol(","));
    }
    if (accept_ident("limit")) {
      if (cur().type != TokenType::Number) fail("expected LIMIT count");
      stmt->limit = std::stoll(cur().text);
      advance();
    }
    return stmt;
  }

  bool at_clause_keyword() const {
    static const char* kws[] = {"from",  "where", "group", "order",
                                "limit", "on",    "as",    "join",
                                "left",  "right", "full",  "inner",
                                "having"};
    for (const char* k : kws)
      if (cur().is_ident(k)) return true;
    return false;
  }

  TableRef parse_table_ref() {
    TableRef t;
    if (accept_symbol("(")) {
      t.subquery = parse_select();
      expect_symbol(")");
      accept_ident("as");
      t.alias = expect_name();
    } else {
      t.table = expect_name();
      if (accept_ident("as")) t.alias = expect_name();
      else if (cur().type == TokenType::Ident && !at_clause_keyword() &&
               !cur().is_ident("set"))
        t.alias = expect_name();
      if (t.alias.empty()) t.alias = t.table;
    }
    return t;
  }

  // Precedence: OR < AND < NOT < comparison/IS < additive < multiplicative
  // < unary minus < primary.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (accept_ident("or"))
      lhs = Expr::make_binary("or", std::move(lhs), parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_not();
    while (accept_ident("and"))
      lhs = Expr::make_binary("and", std::move(lhs), parse_not());
    return lhs;
  }

  ExprPtr parse_not() {
    if (accept_ident("not")) return Expr::make_unary("not", parse_not());
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    auto lhs = parse_additive();
    if (cur().is_ident("is")) {
      advance();
      const bool negated = accept_ident("not");
      expect_ident("null");
      return Expr::make_is_null(std::move(lhs), negated);
    }
    static const char* ops[] = {"<=", ">=", "<>", "=", "<", ">"};
    for (const char* op : ops) {
      if (cur().is_symbol(op)) {
        advance();
        return Expr::make_binary(op, std::move(lhs), parse_additive());
      }
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    auto lhs = parse_multiplicative();
    while (true) {
      if (accept_symbol("+"))
        lhs = Expr::make_binary("+", std::move(lhs), parse_multiplicative());
      else if (accept_symbol("-"))
        lhs = Expr::make_binary("-", std::move(lhs), parse_multiplicative());
      else
        return lhs;
    }
  }

  ExprPtr parse_multiplicative() {
    auto lhs = parse_unary();
    while (true) {
      if (accept_symbol("*"))
        lhs = Expr::make_binary("*", std::move(lhs), parse_unary());
      else if (accept_symbol("/"))
        lhs = Expr::make_binary("/", std::move(lhs), parse_unary());
      else
        return lhs;
    }
  }

  ExprPtr parse_unary() {
    if (accept_symbol("-")) return Expr::make_unary("-", parse_unary());
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (accept_symbol("(")) {
      auto e = parse_expr();
      expect_symbol(")");
      return e;
    }
    if (cur().type == TokenType::Number) {
      const std::string& t = cur().text;
      Value v = t.find('.') == std::string::npos
                    ? Value{static_cast<std::int64_t>(std::stoll(t))}
                    : Value{std::stod(t)};
      advance();
      return Expr::make_literal(std::move(v));
    }
    if (cur().type == TokenType::String) {
      Value v{cur().text};
      advance();
      return Expr::make_literal(std::move(v));
    }
    if (cur().type == TokenType::Ident) {
      std::string name = cur().text;
      advance();
      if (accept_symbol("(")) {
        // function call
        bool distinct = false, star = false;
        std::vector<ExprPtr> args;
        if (accept_symbol("*")) {
          star = true;
        } else if (!cur().is_symbol(")")) {
          distinct = accept_ident("distinct");
          do args.push_back(parse_expr());
          while (accept_symbol(","));
        }
        expect_symbol(")");
        return Expr::make_func(std::move(name), std::move(args), distinct, star);
      }
      // qualified column: name(.name)*
      while (accept_symbol(".")) {
        name += ".";
        name += expect_name();
      }
      return Expr::make_column(std::move(name));
    }
    fail("expected expression");
  }

  std::vector<Token> toks_;
  std::size_t i_ = 0;
};

}  // namespace

std::shared_ptr<SelectStmt> parse_select(const std::string& sql) {
  return Parser(sql).parse_statement();
}

ExprPtr parse_expression(const std::string& text) {
  return Parser(text).parse_bare_expression();
}

}  // namespace ysmart
