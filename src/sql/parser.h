// Recursive-descent SQL parser for the subset described in sql/ast.h.
#pragma once

#include <memory>
#include <string>

#include "sql/ast.h"

namespace ysmart {

/// Parse one SELECT statement (an optional trailing ';' is allowed).
/// Throws ParseError with an offset-bearing message on malformed input.
std::shared_ptr<SelectStmt> parse_select(const std::string& sql);

/// Parse a scalar/boolean expression in isolation (used by tests).
ExprPtr parse_expression(const std::string& text);

}  // namespace ysmart
