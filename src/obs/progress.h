// Live progress reporting for an in-flight query DAG.
//
// The engine and DAG executor update per-wave/per-job task-completion
// counters here — always from the orchestrating thread, at the points
// where the corresponding values have already been computed for
// JobMetrics (task costing loops, phase ends, wave ends) — so an
// attached tracker observes execution without perturbing it, and its
// contents are deterministic for a fixed seed at any pool size (only
// *when* updates become visible depends on the host).
//
// Consumers take an immutable ProgressSnapshot: the shell renders the
// latest one as \top, and bench binaries install an on-update callback
// (--progress) to print task-completion lines while a DAG runs. The
// callback is invoked from the orchestrating thread after the tracker's
// lock is released; callbacks must not re-enter the tracker's mutators.
//
// ETA: the modeled remaining time is estimated from completed-task
// simulated seconds — mean completed task time times the known remaining
// tasks of the current job, plus mean completed-job time times the jobs
// not yet started. It is an estimate on the *simulated* axis (how much
// modeled time is left, the quantity the paper's figures compare), not a
// host wall-clock forecast.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace ysmart::obs {

struct PhaseProgress {
  std::size_t tasks_total = 0;
  std::size_t tasks_done = 0;
  double sim_done_s = 0;  // summed sim seconds of completed tasks
  int stragglers = 0;     // tasks > 2x phase median, known at phase end
};

struct JobProgress {
  std::string name;
  int wave = -1;
  bool map_only = false;
  bool done = false;
  bool failed = false;
  PhaseProgress map;
  PhaseProgress reduce;  // simulated partitions (what actually executes)
  double sim_total_s = 0;  // filled when the job finishes
};

struct ProgressSnapshot {
  bool active = false;  // a query is currently executing
  std::uint64_t queries_started = 0;
  std::uint64_t queries_finished = 0;
  std::string sql;
  std::string profile;
  std::size_t total_jobs = 0;  // known up front from the translated DAG
  std::size_t jobs_done = 0;
  int current_wave = -1;
  int waves_done = 0;
  bool failed = false;
  std::vector<JobProgress> jobs;  // jobs started so far, in start order
  double sim_done_s = 0;  // completed-task sim seconds across the query
  double sim_elapsed_s = 0;  // final modeled elapsed; set at end_query
  double eta_s = -1;  // estimated remaining simulated seconds; <0 unknown

  std::size_t tasks_done() const;
  std::size_t tasks_total() const;  // of jobs started so far

  /// Multi-line rendering for the shell's \top.
  std::string render() const;
};

class ProgressTracker {
 public:
  using Callback = std::function<void(const ProgressSnapshot&)>;

  /// Install a callback invoked (from the orchestrating thread, outside
  /// the tracker's lock) after every update. Null disables.
  void set_callback(Callback cb);

  void begin_query(std::string sql, std::string profile,
                   std::size_t total_jobs);
  void begin_wave(int wave, std::size_t jobs_in_wave);
  void begin_job(std::string name, bool map_only, std::size_t map_tasks,
                 std::size_t reduce_partitions);
  /// One task of the current job finished costing. `reduce_phase` selects
  /// the phase; `sim_seconds` is the task's charged simulated time.
  void task_done(bool reduce_phase, double sim_seconds);
  /// The current job's phase completed; `stragglers` is the count of
  /// tasks above twice the phase median (the analyzer's rule).
  void phase_done(bool reduce_phase, int stragglers);
  void job_done(bool failed, double sim_total_s);
  void end_query(bool failed, double sim_elapsed_s);

  ProgressSnapshot snapshot() const;

  void clear();

 private:
  void notify();  // invoke the callback with a fresh snapshot, unlocked

  mutable std::mutex mu_;
  ProgressSnapshot state_;
  Callback callback_;
};

}  // namespace ysmart::obs
