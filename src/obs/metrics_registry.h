// MetricsRegistry: named counters, gauges and histograms for one
// observed query lifecycle (or a whole bench run).
//
// Counter naming scheme (documented in DESIGN.md "Observability"):
// dot-separated <component>.<entity>.<unit>, e.g.
//
//   engine.jobs.run            jobs executed
//   engine.jobs.failed         jobs that DNF'd
//   engine.map.tasks           map tasks across all jobs
//   engine.map.input_bytes     bytes read by map tasks
//   engine.map.output_bytes    raw map output bytes (post expansion)
//   engine.map.remote_read_bytes  map input served from non-local replicas
//   engine.shuffle.bytes_raw   map->reduce bytes before compression
//   engine.shuffle.bytes_wire  map->reduce bytes on the wire
//   engine.reduce.tasks        modeled reduce tasks (cluster-real count)
//   engine.reduce.output_bytes reduce output bytes (one copy)
//   engine.dfs.write_bytes     DFS writes including replication copies
//   engine.tasks.retries       failed task attempts that were re-executed
//   pool.tasks.submitted       tasks ever submitted to the shared pool
//   pool.queue.peak_depth      peak task-queue depth observed
//   pool.workers.peak_busy     peak concurrently-executing worker count
//   pool.workers.size          pool size
//
// All counters that mirror QueryMetrics fields are incremented from the
// exact values stored there, so a snapshot reconciles with the metrics
// totals to the byte. Counter values are deterministic for a fixed seed;
// only pool.* reflect host scheduling and are therefore excluded from
// determinism comparisons.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace ysmart::obs {

class MetricsRegistry {
 public:
  /// Histogram bucket upper bounds, in the observed unit (seconds for the
  /// engine's task-time histograms); a final overflow bucket catches the
  /// rest.
  static constexpr std::array<double, 7> kBucketBounds = {
      0.1, 1, 10, 60, 300, 1800, 7200};

  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0;
    /// Smallest/largest value observed; both 0 while count == 0. The
    /// first observation must set min even when it is larger than the
    /// empty-state 0 (regression-tested in tests/test_obs.cpp) — observe()
    /// therefore branches on count rather than folding min/max blindly.
    double min = 0;
    double max = 0;
    std::array<std::uint64_t, kBucketBounds.size() + 1> buckets{};
  };

  void add(std::string_view name, std::uint64_t delta);
  /// Gauge with peak semantics: keeps the maximum ever set.
  void set_max(std::string_view name, std::uint64_t value);
  /// Gauge with last-value semantics.
  void set(std::string_view name, std::uint64_t value);
  /// Record one histogram observation.
  void observe(std::string_view name, double value);
  /// Free-text annotation (e.g. the last DNF reason); included in the
  /// snapshot under "notes".
  void note(std::string_view name, std::string_view text);

  /// Counter value; 0 when the counter was never touched.
  std::uint64_t counter(std::string_view name) const;

  /// Full deterministic snapshot for exporters (the Prometheus renderer).
  /// `gauges` holds every name last written through set()/set_max();
  /// `counters` holds the names only ever touched by add(). The split is
  /// what lets the exposition declare the correct metric TYPE.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> gauges;
    std::map<std::string, Histogram> histograms;
    std::map<std::string, std::string> notes;
  };
  Snapshot snapshot() const;
  /// Note text; empty when absent.
  std::string note_of(std::string_view name) const;
  Histogram histogram(std::string_view name) const;

  /// Deterministically-ordered JSON snapshot:
  /// {"counters":{...},"histograms":{...},"notes":{...}}.
  std::string json() const;

  /// One-line human summary of the headline counters (shell \counters,
  /// DNF diagnostics).
  std::string summary_line() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  /// Names written through set()/set_max(); everything else in counters_
  /// is a monotonic counter.
  std::set<std::string, std::less<>> gauge_names_;
  std::map<std::string, Histogram, std::less<>> hists_;
  std::map<std::string, std::string, std::less<>> notes_;
};

}  // namespace ysmart::obs
