#include "obs/prom_export.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"

namespace ysmart::obs {

namespace {

std::string fmt_double(double v) {
  std::string s = strf("%.17g", v);
  return s;
}

void emit_counter(std::string& out, const std::string& name,
                  std::string_view help, std::uint64_t value) {
  out += strf("# HELP %s %.*s\n", name.c_str(),
              static_cast<int>(help.size()), help.data());
  out += strf("# TYPE %s counter\n", name.c_str());
  out += strf("%s %llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
}

void emit_gauge(std::string& out, const std::string& name,
                std::string_view help, std::uint64_t value) {
  out += strf("# HELP %s %.*s\n", name.c_str(),
              static_cast<int>(help.size()), help.data());
  out += strf("# TYPE %s gauge\n", name.c_str());
  out += strf("%s %llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
}

void emit_gauge_double(std::string& out, const std::string& name,
                       std::string_view help, double value) {
  out += strf("# HELP %s %.*s\n", name.c_str(),
              static_cast<int>(help.size()), help.data());
  out += strf("# TYPE %s gauge\n", name.c_str());
  out += strf("%s %s\n", name.c_str(), fmt_double(value).c_str());
}

void emit_histogram(std::string& out, const std::string& name,
                    std::string_view help,
                    const MetricsRegistry::Histogram& h) {
  out += strf("# HELP %s %.*s\n", name.c_str(),
              static_cast<int>(help.size()), help.data());
  out += strf("# TYPE %s histogram\n", name.c_str());
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < MetricsRegistry::kBucketBounds.size(); ++b) {
    cumulative += h.buckets[b];
    out += strf("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                fmt_double(MetricsRegistry::kBucketBounds[b]).c_str(),
                static_cast<unsigned long long>(cumulative));
  }
  cumulative += h.buckets[MetricsRegistry::kBucketBounds.size()];
  out += strf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
              static_cast<unsigned long long>(cumulative));
  out += strf("%s_sum %s\n", name.c_str(), fmt_double(h.sum).c_str());
  out += strf("%s_count %llu\n", name.c_str(),
              static_cast<unsigned long long>(h.count));
}

}  // namespace

std::string prometheus_name(std::string_view dotted) {
  std::string out = "ysmart_";
  for (char c : dotted)
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
               ? c
               : '_';
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::string out;
  for (const auto& [dotted, value] : snap.counters)
    emit_counter(out, prometheus_name(dotted) + "_total", dotted, value);
  for (const auto& [dotted, value] : snap.gauges)
    emit_gauge(out, prometheus_name(dotted), dotted, value);
  for (const auto& [dotted, h] : snap.histograms)
    emit_histogram(out, prometheus_name(dotted), dotted, h);
  return out;
}

std::string render_prometheus(const ObsContext& obs) {
  std::string out = render_prometheus(obs.metrics);
  emit_counter(out, "ysmart_events_emitted_total",
               "events appended to the journal", obs.events.total_emitted());
  emit_counter(out, "ysmart_events_dropped_total",
               "journal events evicted by ring retention",
               obs.events.dropped());
  emit_gauge(out, "ysmart_events_buffered",
             "events currently retained in the journal ring",
             static_cast<std::uint64_t>(obs.events.size()));
  emit_counter(out, "ysmart_history_recorded_total",
               "completed queries recorded in the flight recorder",
               obs.history.total_recorded());
  emit_gauge(out, "ysmart_history_retained",
             "queries currently retained in the flight recorder",
             static_cast<std::uint64_t>(obs.history.size()));
  const ProgressSnapshot p = obs.progress.snapshot();
  emit_counter(out, "ysmart_queries_started_total",
               "queries whose execution began", p.queries_started);
  emit_counter(out, "ysmart_queries_finished_total",
               "queries whose execution completed", p.queries_finished);
  emit_gauge(out, "ysmart_query_inflight",
             "1 while a query DAG is executing", p.active ? 1 : 0);

  // Cluster axis of the most recent sampled query: aggregates plus the
  // top-k busiest nodes only — a per-node series on the 747-node
  // Facebook preset would be a cardinality bomb for any scraper.
  const QueryTaskSamples last = obs.samples.last_query();
  if (!last.jobs.empty()) {
    const ClusterReport cluster = build_cluster_view(last);
    emit_gauge(out, "ysmart_cluster_worker_nodes",
               "simulated nodes of the last sampled query's cluster",
               static_cast<std::uint64_t>(cluster.worker_nodes));
    emit_gauge_double(out, "ysmart_cluster_busy_seconds_cv",
                      "per-node busy-seconds CV of the last sampled query",
                      cluster.utilization_cv);
    emit_gauge(out, "ysmart_cluster_underfilled_phases",
               "phases with fewer runnable tasks than slots",
               static_cast<std::uint64_t>(cluster.underfilled_phases));
    emit_gauge(out, "ysmart_cluster_shuffle_bytes",
               "pre-expansion shuffle bytes of the last sampled query",
               cluster.traffic.total_bytes);
    emit_gauge(out, "ysmart_cluster_shuffle_local_bytes",
               "shuffle bytes whose map and reduce node coincide",
               cluster.traffic.local_bytes);
    std::vector<const NodeStats*> by_busy;
    by_busy.reserve(cluster.nodes.size());
    for (const auto& n : cluster.nodes) by_busy.push_back(&n);
    std::sort(by_busy.begin(), by_busy.end(),
              [](const NodeStats* a, const NodeStats* b) {
                if (a->busy_s != b->busy_s) return a->busy_s > b->busy_s;
                return a->node < b->node;
              });
    if (by_busy.size() > 8) by_busy.resize(8);
    out += "# HELP ysmart_cluster_node_busy_seconds busiest nodes of the "
           "last sampled query (top 8)\n";
    out += "# TYPE ysmart_cluster_node_busy_seconds gauge\n";
    for (const NodeStats* n : by_busy)
      out += strf("ysmart_cluster_node_busy_seconds{node=\"%s\"} %s\n",
                  prom_escape_label(strf("%d", n->node)).c_str(),
                  fmt_double(n->busy_s).c_str());
  }

  // Plan axis: q-error accountability of the predictor. Cardinality is
  // bounded by construction — one series per fixed kPlanMetrics entry
  // (last query + p50/p95 over the calibration ring), never per query.
  const CalibrationSnapshot cal = obs.plans.calibration();
  emit_counter(out, "ysmart_plan_reports_total",
               "executed queries joined against a plan prediction",
               cal.total_recorded);
  if (!cal.samples.empty()) {
    const CalibrationSample& last_cal = cal.samples.back();
    out += "# HELP ysmart_plan_qerror q-error of the last joined query, "
           "per predicted metric\n";
    out += "# TYPE ysmart_plan_qerror gauge\n";
    for (std::size_t i = 0; i < kPlanMetrics.size(); ++i)
      if (i < last_cal.q.size())
        out += strf("ysmart_plan_qerror{metric=\"%s\"} %s\n",
                    prom_escape_label(kPlanMetrics[i]).c_str(),
                    fmt_double(last_cal.q[i]).c_str());
    out += "# HELP ysmart_plan_qerror_p50 median q-error over the "
           "calibration ring, per predicted metric\n";
    out += "# TYPE ysmart_plan_qerror_p50 gauge\n";
    for (std::size_t i = 0; i < kPlanMetrics.size(); ++i)
      out += strf("ysmart_plan_qerror_p50{metric=\"%s\"} %s\n",
                  prom_escape_label(kPlanMetrics[i]).c_str(),
                  fmt_double(cal.p50(i)).c_str());
    out += "# HELP ysmart_plan_qerror_p95 p95 q-error over the "
           "calibration ring, per predicted metric\n";
    out += "# TYPE ysmart_plan_qerror_p95 gauge\n";
    for (std::size_t i = 0; i < kPlanMetrics.size(); ++i)
      out += strf("ysmart_plan_qerror_p95{metric=\"%s\"} %s\n",
                  prom_escape_label(kPlanMetrics[i]).c_str(),
                  fmt_double(cal.p95(i)).c_str());
  }
  return out;
}

}  // namespace ysmart::obs
