// The "query doctor": turns retained task samples into skew, straggler,
// hot-key and critical-path analysis of one executed query.
//
// Everything here is a pure function of a QueryTaskSamples snapshot, so
// an analysis can be (re)computed at any time after a run without
// touching the engine. All statistics derive from simulated seconds and
// measured bytes/records — deterministic for a fixed seed — so the
// rendered report and its JSON form are byte-identical across runs and
// thread-pool sizes.
//
// Definitions (also in DESIGN.md "Task-level observability"):
//  * median      — lower median: sorted_times[(n-1)/2] (deterministic,
//                  no averaging of middle elements).
//  * cv          — coefficient of variation: population stddev / mean
//                  (0 when mean is 0).
//  * straggler   — a task with sim_seconds > threshold × median (default
//                  threshold 2.0) in a phase with at least 2 tasks.
//  * critical path — jobs group into dependency waves (the DAG
//                  executor's submission waves); a wave's elapsed time
//                  is its slowest job's total and the critical path is
//                  the sum of wave elapsed times, accumulated in wave
//                  order. This reproduces the executor's wall_time_s
//                  computation operation-for-operation, so under any
//                  submission mode critical_path_s == wall_time_s
//                  exactly, and under serial submission it also equals
//                  the serial job-time sum. Per-job slack is the wave's
//                  elapsed time minus the job's total: how much longer
//                  the job could have run without growing the makespan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/cluster_view.h"
#include "obs/task_samples.h"

namespace ysmart {
class JsonWriter;
}

namespace ysmart::obs {

struct AnalyzerOptions {
  double straggler_threshold = 2.0;  // task > threshold * phase median
  int top_partitions = 3;            // heaviest reduce partitions reported
  int top_keys = 3;                  // hot keys reported per job
  /// A hot key enters the diagnosis when it carries at least this share
  /// of its job's reduce records (and more than one key group exists).
  double hot_key_min_share = 0.10;
  /// A partition enters the diagnosis when it holds at least this share
  /// of its job's shuffle bytes and at least twice the fair share.
  double partition_min_share = 0.25;
};

/// Distribution statistics of one phase's per-task simulated seconds.
struct PhaseSkewStats {
  std::size_t tasks = 0;
  double total_s = 0;
  double max_s = 0;
  double median_s = 0;
  double mean_s = 0;
  double cv = 0;                 // population stddev / mean
  std::vector<int> stragglers;   // sample indices > threshold * median
};

/// One of the heaviest reduce partitions of a job.
struct HeavyPartition {
  int partition = 0;
  double sim_seconds = 0;
  std::uint64_t shuffle_bytes_raw = 0;
  double shuffle_share = 0;  // of the job's total raw shuffle bytes
  std::uint64_t key_groups = 0;
  std::uint64_t records = 0;
  std::vector<std::uint64_t> tag_records;  // per source tag (CMF)
};

struct JobAnalysis {
  std::string name;
  int wave = 0;
  bool map_only = false;
  bool failed = false;

  double sched_delay_s = 0;
  double map_time_s = 0;
  double reduce_time_s = 0;
  double total_s = 0;
  double slack_s = 0;            // wave elapsed - total
  bool on_critical_path = false; // this job defines its wave's elapsed time
  double critical_share = 0;     // total_s / critical_path_s

  std::uint64_t target_reduce_tasks = 0;
  PhaseSkewStats map;
  PhaseSkewStats reduce;
  std::vector<HeavyPartition> top_partitions;  // by raw shuffle bytes desc
  std::vector<SpaceSaving::Entry> hot_keys;
  std::uint64_t reduce_records = 0;  // total records entering reduce
  std::vector<std::string> key_columns;
};

struct WaveAnalysis {
  int wave = 0;
  double elapsed_s = 0;
  int critical_job = -1;  // index into AnalyzerReport::jobs
  int job_count = 0;
};

struct AnalyzerReport {
  std::vector<JobAnalysis> jobs;
  std::vector<WaveAnalysis> waves;
  double critical_path_s = 0;  // == QueryMetrics::wall_time_s
  double serial_total_s = 0;   // sum of job totals
  std::vector<std::string> diagnosis;
  /// The cluster doctor (obs/cluster_view.h): per-node rollups and
  /// node-level diagnosis. Embedded compactly in to_json() under
  /// "cluster" (top nodes + aggregates; the full matrix/timeline shape
  /// is the standalone --cluster document).
  ClusterReport cluster;

  /// EXPLAIN ANALYZE-style indented report with the diagnosis section.
  std::string text() const;
  /// JSON object (schema: the "analyzer" section of
  /// bench/bench_schema.json); deterministic key order.
  void to_json(JsonWriter& w) const;
  std::string json() const;
};

/// Analyze one query's samples. Jobs with wave -1 (standalone engine
/// runs) are treated as serial: each forms its own wave in order.
AnalyzerReport analyze_query(const QueryTaskSamples& query,
                             const AnalyzerOptions& opts = {});

}  // namespace ysmart::obs
