#include "obs/http_endpoints.h"

#include "obs/cluster_view.h"
#include "obs/obs.h"
#include "obs/prom_export.h"

namespace ysmart::obs {

HttpResponse serve_obs_endpoint(const ObsContext& ctx,
                                const std::string& path) {
  if (path == "/metrics")
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(ctx)};
  if (path == "/healthz") return {200, "text/plain; charset=utf-8", "ok\n"};
  if (path == "/history.json")
    return {200, "application/json; charset=utf-8", ctx.history.json()};
  if (path == "/cluster.json") {
    // Full cluster view of the most recent sampled query; an empty
    // object before anything has been sampled.
    if (ctx.samples.query_count() == 0)
      return {200, "application/json; charset=utf-8", "{}\n"};
    return {200, "application/json; charset=utf-8",
            build_cluster_view(ctx.samples.last_query()).json()};
  }
  if (path == "/plan.json")
    return {200, "application/json; charset=utf-8", ctx.plans.json()};
  return {404, "text/plain; charset=utf-8",
          "try /metrics, /healthz, /history.json, /cluster.json or "
          "/plan.json\n"};
}

}  // namespace ysmart::obs
