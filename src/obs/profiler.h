// HostProfiler: host-axis hotspot accounting per engine phase.
//
// The tracer answers "how long did each phase take on the simulated
// cluster"; this answers "where did the *simulator process* spend its
// own CPU, allocations, and dispatch work". Every engine phase (map /
// shuffle-sort / reduce / post-job, plus translate) registers a
// PhaseAgg; each worker chunk that runs inside the phase wraps itself in
// a TaskClock that snapshots thread CPU time and the thread-local
// prof:: counters at entry/exit and adds the deltas to the phase's
// atomics. Aggregation is pure host-axis bookkeeping: nothing here
// touches simulated quantities, RNG draws, or result rows, so sim
// outputs stay byte-identical with profiling on or off
// (tests/test_robustness.cpp pins this at pool sizes 1 and 8).
//
// Exports:
//  * snapshot()/json()     — per-phase records (the bench `host_phases`
//                            section, schema-versioned independently of
//                            the top-level bench schema)
//  * hotspots_table()      — ranked text table (\hotspots in the shell)
//  * folded_stacks(tracer) — Brendan Gregg folded-stack lines, one per
//                            profiled phase, path = the phase span's
//                            ancestry in the tracer, weight = host CPU
//                            µs; pipe through flamegraph.pl for an SVG.
//
// Reconciliation contract (tested in tests/test_profiler.cpp): per
// phase, summed worker CPU <= summed worker busy-wall (a thread cannot
// burn more CPU than wall) and summed busy-wall <= phase wall ×
// (pool size + 1), both within a documented clock-noise tolerance
// (kClockSlackNs + 25%); process_cpu_ns() gives the query-level
// top line the per-phase sums are compared against.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/prof_counters.h"

namespace ysmart::obs {

class Tracer;

/// Immutable snapshot of one profiled phase.
struct HostPhase {
  std::string job;    // job name ("translate:<profile>" for translation)
  std::string phase;  // map | shuffle-sort | reduce | post-job | translate
  int span_id = -1;   // tracer span the phase ran under (-1 = none)
  std::uint64_t chunks = 0;         // worker chunks that reported in
  std::uint64_t cpu_ns = 0;         // summed worker-thread CPU
  std::uint64_t busy_wall_ns = 0;   // summed per-chunk wall
  std::uint64_t phase_wall_ns = 0;  // orchestrator begin -> end wall
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t dispatch[prof::kNumCounters] = {};
};

class HostProfiler {
 public:
  /// Live aggregation block for one phase. Workers add into the atomics
  /// concurrently; the orchestrating thread closes it via phase_end.
  struct PhaseAgg {
    std::string job;
    std::string phase;
    int span_id = -1;
    std::uint64_t start_wall_ns = 0;
    std::uint64_t phase_wall_ns = 0;  // set by phase_end
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> cpu_ns{0};
    std::atomic<std::uint64_t> busy_wall_ns{0};
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> alloc_bytes{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> dispatch[prof::kNumCounters] = {};
  };

  ~HostProfiler();

  /// Turns host profiling on/off. Holds a reference on the process-wide
  /// prof:: counting flag while on, so several profilers (or tests) can
  /// overlap safely.
  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Open a phase aggregate (orchestrating thread). Returns nullptr when
  /// disabled — TaskClock accepts nullptr and does nothing.
  PhaseAgg* phase_begin(int span_id, std::string job, std::string phase);
  /// Close a phase opened by phase_begin (nullptr tolerated).
  void phase_end(PhaseAgg* agg);

  /// Bracket one query to accumulate whole-process CPU for coverage
  /// reporting (how much of the process's CPU the phases explain).
  void query_begin();
  void query_end();
  std::uint64_t process_cpu_ns() const;

  /// Number of closed phases so far; pass as `from` to snapshot()/json()
  /// to slice out only the phases recorded since a mark (the bench
  /// report uses this to attribute phases to individual runs).
  std::size_t phase_count() const;
  std::vector<HostPhase> snapshot(std::size_t from = 0) const;

  /// Ranked per-phase table (highest CPU first) for \hotspots.
  std::string hotspots_table(std::size_t from = 0) const;

  /// Folded-stack lines ("a;b;c <cpu_us>\n") weighted by host CPU.
  /// Phases whose span ancestry the tracer still holds get the full
  /// path; others fall back to "job;phase". Identical paths merge.
  std::string folded_stacks(const Tracer& tracer) const;

  /// JSON object for the bench `host_phases` section. Carries its own
  /// schema_version so the top-level bench schema stays at version 1.
  /// `proc_cpu_ns` overrides the reported process CPU (the bench report
  /// passes the per-run delta); kUseTotal reports the accumulated total.
  static constexpr int kSchemaVersion = 1;
  static constexpr std::uint64_t kUseTotal = ~std::uint64_t{0};
  std::string json(std::size_t from = 0,
                   std::uint64_t proc_cpu_ns = kUseTotal) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<std::unique_ptr<PhaseAgg>> phases_;
  std::size_t closed_ = 0;  // phases_[0..closed_) are closed
  std::uint64_t query_cpu_start_ns_ = 0;
  std::uint64_t process_cpu_ns_ = 0;
  int open_queries_ = 0;
};

/// RAII phase bracket for the orchestrating thread. Null-safe: with a
/// null profiler (or profiling disabled) agg() is nullptr and the whole
/// object is inert.
class PhaseClock {
 public:
  PhaseClock(HostProfiler* profiler, int span_id, std::string job,
             std::string phase)
      : profiler_(profiler) {
    if (profiler_)
      agg_ = profiler_->phase_begin(span_id, std::move(job), std::move(phase));
  }
  ~PhaseClock() {
    if (profiler_) profiler_->phase_end(agg_);
  }

  PhaseClock(const PhaseClock&) = delete;
  PhaseClock& operator=(const PhaseClock&) = delete;

  HostProfiler::PhaseAgg* agg() const { return agg_; }

 private:
  HostProfiler* profiler_ = nullptr;
  HostProfiler::PhaseAgg* agg_ = nullptr;
};

/// RAII per-chunk clock for worker (and orchestrating) threads: snapshots
/// thread CPU, wall, and the thread-local prof:: counters on entry, adds
/// the deltas to the phase aggregate on exit. Construct inside the
/// parallel_for body so each chunk attributes exactly its own work.
class TaskClock {
 public:
  explicit TaskClock(HostProfiler::PhaseAgg* agg);
  ~TaskClock();

  TaskClock(const TaskClock&) = delete;
  TaskClock& operator=(const TaskClock&) = delete;

 private:
  HostProfiler::PhaseAgg* agg_ = nullptr;
  std::uint64_t cpu0_ = 0;
  std::uint64_t wall0_ = 0;
  prof::ThreadCounters base_{};
};

}  // namespace ysmart::obs
