// Structured event journal: leveled, categorized JSONL events emitted
// from the translator, the DAG executor and the engine.
//
// Where the tracer answers "how long did each region take" and the
// metrics registry answers "how much work was done", the event journal
// answers "what happened, in order": query started, wave scheduled, map
// phase finished, task retried, job failed. Each event carries
//
//  * a monotonic sequence number (per log, never reused),
//  * both clocks — the simulated timestamp the emitter places it at and
//    host wall microseconds since the log's epoch,
//  * a level (debug/info/warn/error) and a category
//    (translate/schedule/map/shuffle/reduce/post-job/fault),
//  * deterministic key/value fields (bytes, records, simulated seconds —
//    never wall-clock values, so the sim-axis export stays diffable).
//
// Retention is a bounded in-memory ring (default 4096 events; the oldest
// are dropped and counted, never silently). An optional streaming sink
// appends each event to a file as one JSON line the moment it is emitted
// (YSMART_EVENTS=<path> in the shell); sink I/O failures are reported on
// stderr with the target path and disable the sink, they never throw
// into the engine.
//
// Non-perturbation: the log is only ever written through an attached
// ObsContext, every emission reads values already computed for
// JobMetrics/QueryMetrics, and all emissions happen on the orchestrating
// thread — so simulated metrics are bit-identical with the journal on or
// off, and jsonl(IncludeWall::No) is byte-identical across thread-pool
// sizes (pinned in tests/test_robustness.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ysmart::obs {

enum class EventLevel { Debug, Info, Warn, Error };
enum class EventCategory {
  Translate,
  Schedule,
  Map,
  Shuffle,
  Reduce,
  PostJob,
  Fault,
};

std::string_view to_string(EventLevel level);
std::string_view to_string(EventCategory category);

/// One key/value field of an event. The value is stored pre-encoded as
/// JSON so rendering is a plain join; only deterministic quantities may
/// be passed (the wall clock lives in the event envelope, not in fields).
struct EventField {
  std::string key;
  std::string json;  // valid JSON value

  EventField(std::string_view k, std::uint64_t v);
  EventField(std::string_view k, std::int64_t v);
  EventField(std::string_view k, int v);
  EventField(std::string_view k, double v);
  EventField(std::string_view k, std::string_view v);
  EventField(std::string_view k, const char* v);
};

struct Event {
  std::uint64_t seq = 0;
  EventLevel level = EventLevel::Info;
  EventCategory category = EventCategory::Schedule;
  std::string name;
  double sim_s = 0;    // simulated timestamp (seconds on the query timeline)
  double wall_us = 0;  // host microseconds since the log's epoch
  std::vector<EventField> fields;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  enum class IncludeWall { Yes, No };

  EventLog();

  /// Resize the ring. Shrinking drops the oldest events (counted as
  /// dropped, like ring overflow).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Append one event. Assigns the sequence number and wall timestamp;
  /// `sim_s` is the simulated timestamp the emitter places the event at.
  void emit(EventLevel level, EventCategory category, std::string_view name,
            double sim_s, std::vector<EventField> fields = {});

  /// Stream every subsequent event to `path` as JSONL (appending to the
  /// ring as well). Returns false — after a stderr warning naming the
  /// path — when the file cannot be opened.
  bool open_sink(const std::string& path);
  void close_sink();
  bool sink_open() const;

  std::size_t size() const;            // events currently in the ring
  std::uint64_t total_emitted() const; // lifetime emissions
  std::uint64_t dropped() const;       // overwritten by ring retention

  std::vector<Event> events() const;  // snapshot, oldest first

  /// The ring as JSON lines, oldest first, one event per line. With
  /// IncludeWall::No the nondeterministic wall timestamp is omitted and
  /// the output is byte-identical for a fixed seed at any pool size.
  std::string jsonl(IncludeWall wall = IncludeWall::Yes) const;

  void clear();

 private:
  static std::string render(const Event& e, IncludeWall wall);
  double wall_now_us() const;

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<Event> ring_;  // kept in order, oldest first
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::unique_ptr<std::ofstream> sink_;
  std::string sink_path_;
};

}  // namespace ysmart::obs
