// The cluster axis: per-node rollups, a slot-occupancy timeline and the
// map-node -> reduce-node shuffle traffic matrix of one executed query.
//
// Like the analyzer (obs/analyzer.h), everything here is a pure function
// of a QueryTaskSamples snapshot: building a view cannot perturb the
// engine, and the output is deterministic for a fixed seed — two runs
// (at any thread-pool size, observability on or off elsewhere) render
// byte-identical JSON (pinned by test_robustness).
//
// Node-identity conventions (also in task_samples.h and DESIGN.md
// "The cluster axis"):
//  * A map task runs on node task_index % worker_nodes — the engine's
//    round-robin TaskTracker assignment, the same value its locality
//    check uses (TaskSample::node records it).
//  * A reduce *partition* p runs on node p % worker_nodes. Assignment is
//    per simulated partition (at most Engine::kMaxSimReducers), so on
//    clusters with more nodes than partitions the reduce work
//    concentrates on the first partitions' nodes — an artifact of the
//    partition cap, documented like metrics.h's map-only rule.
//
// The traffic matrix is exact: cell (i, j) sums the map tasks'
// per-partition wire byte counts (TaskSample::partition_bytes,
// pre-expansion uint64 arithmetic), so every row sum equals that map
// node's emitted shuffle bytes and every column sum equals the receiving
// partitions' shuffle_bytes_prescale — to the byte, in any summation
// order. Above dense_matrix_max_nodes nodes only the top-k cells are
// materialized (the 747-node Facebook preset would otherwise carry a
// 747x747 grid per record); the full row/column sum vectors are kept in
// both modes, so the exactness invariant survives sparsification.
//
// The slot timeline replays CostModel::makespan's greedy LPT fold
// (tasks by descending simulated seconds onto the earliest-free slot)
// per phase, then labels slot s as lane (node = s % worker_nodes,
// slot = s / worker_nodes). The engine's slot model is cluster-global,
// so a map task's *lane* node can differ from its data-locality node;
// the per-node busy rollups use the locality node, the timeline shows
// where the schedule put the work. A phase whose modeled task count
// exceeds the simulated partitions (reduce expansion) is replayed over
// the simulated partitions only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/task_samples.h"

namespace ysmart {
class JsonWriter;
}

namespace ysmart::obs {

struct ClusterViewOptions {
  /// Node count above which the traffic matrix is reported as top-k
  /// sparse cells instead of a dense grid.
  int dense_matrix_max_nodes = 64;
  /// Cells retained in sparse mode (by bytes desc, then from/to asc).
  int top_cells = 64;
  /// A node is a straggler when its busy seconds exceed this multiple
  /// of the median node's (>= 2 nodes, median > 0).
  double node_straggler_threshold = 2.0;
  /// Busy-seconds CV at or above this flags node load imbalance.
  double imbalance_cv_threshold = 0.5;
  /// Share of all remote block reads on one node that flags
  /// concentrated locality misses.
  double locality_concentration_share = 0.5;
};

/// Per-node rollup across every job of the query.
struct NodeStats {
  int node = 0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_partitions = 0;
  double busy_map_s = 0;
  double busy_reduce_s = 0;
  double busy_s = 0;  // busy_map_s + busy_reduce_s
  /// busy_s / makespan_s. Can exceed 1.0: a node runs several slots.
  double utilization = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_read_bytes = 0;
  std::uint64_t shuffle_bytes_out = 0;  // traffic-matrix row sum
  std::uint64_t shuffle_bytes_in = 0;   // traffic-matrix column sum
};

struct TrafficCell {
  int from = 0;
  int to = 0;
  std::uint64_t bytes = 0;
};

struct TrafficMatrix {
  int nodes = 0;
  bool sparse = false;
  std::uint64_t total_bytes = 0;
  std::uint64_t local_bytes = 0;  // diagonal: map node == reduce node
  /// Exact per-node sums, present in both dense and sparse modes.
  std::vector<std::uint64_t> row_bytes;  // bytes leaving each map node
  std::vector<std::uint64_t> col_bytes;  // bytes entering each reduce node
  std::vector<std::vector<std::uint64_t>> dense;  // empty when sparse
  std::vector<TrafficCell> top_cells;             // filled when sparse
};

/// One task occupying a (node, slot) lane on the simulated timeline.
struct SlotEvent {
  int job = 0;  // index into ClusterReport::jobs
  bool reduce = false;
  int task = 0;  // map task index or simulated partition index
  int node = 0;  // lane node: slot % worker_nodes
  int slot = 0;  // lane within the node: slot / worker_nodes
  double start_s = 0;  // on the query's simulated timeline
  double dur_s = 0;
};

/// Per-job context the timeline and underfilled-wave check need.
struct ClusterJobInfo {
  std::string name;
  int wave = 0;
  bool map_only = false;
  double start_s = 0;  // wave start on the query sim timeline
  int map_slots = 1;
  int reduce_slots = 1;
  bool map_underfilled = false;     // runnable map tasks < map slots
  bool reduce_underfilled = false;  // modeled reduce tasks < reduce slots
  /// Relative phase makespans from the timeline's LPT replay — equal to
  /// the job's map_time_s / reduce_time_s bit-for-bit when the phase was
  /// not expansion-scaled (the exactness witness test_cluster_view pins;
  /// not exported to JSON — the phase times already are, via the bench).
  double map_replay_s = 0;
  double reduce_replay_s = 0;
};

struct ClusterReport {
  int worker_nodes = 0;
  /// Wave-fold makespan — equals the analyzer's critical_path_s and the
  /// executor's wall_time_s exactly.
  double makespan_s = 0;
  double busy_total_s = 0;
  /// Population CV of per-node busy seconds (0 when mean is 0).
  double utilization_cv = 0;
  int underfilled_phases = 0;
  std::vector<ClusterJobInfo> jobs;
  std::vector<NodeStats> nodes;  // one per node, node order
  TrafficMatrix traffic;
  std::vector<SlotEvent> timeline;  // job order, phase order, LPT order
  std::vector<std::string> diagnosis;

  /// "== cluster doctor ==" indented text section.
  std::string text() const;
  /// JSON object. full=true adds the traffic matrix, slot timeline and
  /// per-job info (the --cluster document / \cluster shape); full=false
  /// is the compact form embedded under the analyzer's "cluster" key
  /// (top nodes + aggregates + diagnosis only). Deterministic key order.
  /// Report size stays bounded on paper-scale clusters: the node list
  /// truncates to the busiest 256 (full) / 8 (compact) with a
  /// nodes_truncated flag, and the timeline to 4096 events.
  void to_json(JsonWriter& w, bool full = true) const;
  std::string json(bool full = true) const;

  /// Pre-encoded Chrome trace_event objects for the per-node tracks:
  /// pid 3 ("cluster nodes") process/thread metadata plus one complete
  /// event per timeline entry, shifted by `sim_offset_s` (the query's
  /// start on a multi-query trace's simulated timeline). Feed to
  /// Tracer::chrome_json's extra_events parameter.
  std::vector<std::string> chrome_events(double sim_offset_s = 0) const;
};

/// Build the cluster view of one query's samples. Pure; safe on empty
/// or partially-filled sample sets (returns an empty report).
ClusterReport build_cluster_view(const QueryTaskSamples& query,
                                 const ClusterViewOptions& opts = {});

}  // namespace ysmart::obs
