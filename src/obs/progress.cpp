#include "obs/progress.h"

#include <cmath>

#include "common/strings.h"

namespace ysmart::obs {

std::size_t ProgressSnapshot::tasks_done() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.map.tasks_done + j.reduce.tasks_done;
  return n;
}

std::size_t ProgressSnapshot::tasks_total() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.map.tasks_total + j.reduce.tasks_total;
  return n;
}

std::string ProgressSnapshot::render() const {
  if (queries_started == 0) return "top: no query observed yet\n";
  std::string out;
  std::string sql_line = sql;
  for (auto& c : sql_line)
    if (c == '\n' || c == '\t') c = ' ';
  if (sql_line.size() > 60) sql_line = sql_line.substr(0, 57) + "...";
  out += strf("query: %s  (profile %s)\n", sql_line.c_str(), profile.c_str());
  out += strf("state: %s  wave %d  jobs %zu/%zu  tasks %zu/%zu\n",
              active ? "RUNNING" : (failed ? "DNF" : "done"),
              current_wave < 0 ? waves_done : current_wave, jobs_done,
              total_jobs, tasks_done(), tasks_total());
  for (const auto& j : jobs) {
    std::string status = j.done ? (j.failed ? "FAILED" : "done") : "running";
    if (j.map_only) {
      out += strf("  [w%d] %-28s map %4zu/%-4zu %s%s\n", j.wave,
                  j.name.c_str(), j.map.tasks_done, j.map.tasks_total,
                  status.c_str(),
                  j.map.stragglers > 0
                      ? strf("  (%d straggler(s))", j.map.stragglers).c_str()
                      : "");
    } else {
      out += strf("  [w%d] %-28s map %4zu/%-4zu reduce %4zu/%-4zu %s", j.wave,
                  j.name.c_str(), j.map.tasks_done, j.map.tasks_total,
                  j.reduce.tasks_done, j.reduce.tasks_total, status.c_str());
      const int stragglers = j.map.stragglers + j.reduce.stragglers;
      if (stragglers > 0) out += strf("  (%d straggler(s))", stragglers);
      out += '\n';
    }
  }
  out += strf("sim progress: %.1fs of completed tasks", sim_done_s);
  if (!active && sim_elapsed_s >= 0)
    out += strf("; modeled elapsed %.1fs", sim_elapsed_s);
  else if (eta_s >= 0)
    out += strf("; eta ~%.1fs simulated", eta_s);
  out += '\n';
  return out;
}

void ProgressTracker::set_callback(Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(cb);
}

void ProgressTracker::notify() {
  Callback cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!callback_) return;
    cb = callback_;
  }
  cb(snapshot());
}

void ProgressTracker::begin_query(std::string sql, std::string profile,
                                  std::size_t total_jobs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t started = state_.queries_started + 1;
    const std::uint64_t finished = state_.queries_finished;
    state_ = ProgressSnapshot{};
    state_.queries_started = started;
    state_.queries_finished = finished;
    state_.active = true;
    state_.sql = std::move(sql);
    state_.profile = std::move(profile);
    state_.total_jobs = total_jobs;
  }
  notify();
}

void ProgressTracker::begin_wave(int wave, std::size_t /*jobs_in_wave*/) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_.current_wave = wave;
  }
  notify();
}

void ProgressTracker::begin_job(std::string name, bool map_only,
                                std::size_t map_tasks,
                                std::size_t reduce_partitions) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    JobProgress j;
    j.name = std::move(name);
    j.wave = state_.current_wave;
    j.map_only = map_only;
    j.map.tasks_total = map_tasks;
    j.reduce.tasks_total = map_only ? 0 : reduce_partitions;
    state_.jobs.push_back(std::move(j));
  }
  notify();
}

void ProgressTracker::task_done(bool reduce_phase, double sim_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_.jobs.empty()) return;
    PhaseProgress& p = reduce_phase ? state_.jobs.back().reduce
                                    : state_.jobs.back().map;
    ++p.tasks_done;
    p.sim_done_s += sim_seconds;
    state_.sim_done_s += sim_seconds;
  }
  notify();
}

void ProgressTracker::phase_done(bool reduce_phase, int stragglers) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_.jobs.empty()) return;
    PhaseProgress& p = reduce_phase ? state_.jobs.back().reduce
                                    : state_.jobs.back().map;
    p.stragglers = stragglers;
  }
  notify();
}

void ProgressTracker::job_done(bool failed, double sim_total_s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_.jobs.empty()) return;
    JobProgress& j = state_.jobs.back();
    j.done = true;
    j.failed = failed;
    j.sim_total_s = sim_total_s;
    ++state_.jobs_done;
    if (state_.current_wave >= state_.waves_done)
      state_.waves_done = state_.current_wave + 1;
  }
  notify();
}

void ProgressTracker::end_query(bool failed, double sim_elapsed_s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_.active = false;
    state_.failed = failed;
    state_.sim_elapsed_s = sim_elapsed_s;
    state_.current_wave = -1;
    ++state_.queries_finished;
  }
  notify();
}

ProgressSnapshot ProgressTracker::snapshot() const {
  ProgressSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = state_;
  }
  // Estimate remaining simulated seconds from completed work.
  if (!snap.active) {
    snap.eta_s = 0;
    return snap;
  }
  std::size_t done_tasks = 0;
  double done_task_s = 0;
  std::size_t done_jobs = 0;
  double done_job_s = 0;
  for (const auto& j : snap.jobs) {
    done_tasks += j.map.tasks_done + j.reduce.tasks_done;
    done_task_s += j.map.sim_done_s + j.reduce.sim_done_s;
    if (j.done) {
      ++done_jobs;
      done_job_s += j.sim_total_s;
    }
  }
  if (done_tasks == 0) return snap;  // nothing completed: eta unknown (-1)
  const double mean_task_s = done_task_s / static_cast<double>(done_tasks);
  double eta = 0;
  // Remaining tasks of jobs already started.
  for (const auto& j : snap.jobs) {
    if (j.done) continue;
    const std::size_t remaining =
        (j.map.tasks_total - j.map.tasks_done) +
        (j.reduce.tasks_total - j.reduce.tasks_done);
    eta += mean_task_s * static_cast<double>(remaining);
  }
  // Jobs not yet started, estimated from completed jobs (or, before any
  // job finished, from the mean task time of the first one).
  const std::size_t not_started =
      snap.total_jobs > snap.jobs.size() ? snap.total_jobs - snap.jobs.size()
                                         : 0;
  if (not_started > 0) {
    const double mean_job_s =
        done_jobs > 0 ? done_job_s / static_cast<double>(done_jobs)
                      : done_task_s;
    eta += mean_job_s * static_cast<double>(not_started);
  }
  // Defensive: a non-finite estimate (poisoned sim_seconds input) renders
  // as "nan"/"inf" in \top; keep eta at -1 ("unknown") instead.
  if (std::isfinite(eta)) snap.eta_s = eta;
  return snap;
}

void ProgressTracker::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = ProgressSnapshot{};
}

}  // namespace ysmart::obs
