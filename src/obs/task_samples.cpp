#include "obs/task_samples.h"

namespace ysmart::obs {

void TaskSampleStore::begin_query() {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.emplace_back();
  current_wave_ = -1;
}

void TaskSampleStore::set_current_wave(int wave) {
  std::lock_guard<std::mutex> lock(mu_);
  current_wave_ = wave;
}

void TaskSampleStore::record_job(JobTaskSamples samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.empty()) queries_.emplace_back();
  samples.wave = current_wave_;
  queries_.back().jobs.push_back(std::move(samples));
}

void TaskSampleStore::set_wall_time(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.empty()) queries_.emplace_back();
  queries_.back().wall_time_s = seconds;
}

std::size_t TaskSampleStore::query_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

std::size_t TaskSampleStore::total_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& q : queries_) n += q.jobs.size();
  return n;
}

QueryTaskSamples TaskSampleStore::query(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.at(index);
}

QueryTaskSamples TaskSampleStore::last_query() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.empty() ? QueryTaskSamples{} : queries_.back();
}

void TaskSampleStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.clear();
  current_wave_ = -1;
}

}  // namespace ysmart::obs
