// Prometheus text exposition (format 0.0.4) of the observability state.
//
// Pure rendering — no sockets here, so the output is unit-testable and
// the same function backs the HTTP listener's GET /metrics, the shell's
// \serve <file> dump, and the CI smoke job. Mapping:
//
//  * counter `engine.jobs.run`  -> `ysmart_engine_jobs_run_total` with
//    `# TYPE ... counter` (counters get the conventional _total suffix;
//    values reconcile exactly with QueryMetrics, like the registry).
//  * gauge `pool.workers.size` -> `ysmart_pool_workers_size`, TYPE gauge.
//  * histogram `engine.map.task_sim_seconds` -> TYPE histogram with
//    CUMULATIVE `_bucket{le="..."}` series ending in le="+Inf", plus
//    `_sum` and `_count` (the registry stores per-bucket counts; the
//    renderer accumulates).
//
// render_prometheus(ObsContext) additionally exports the journal/flight-
// recorder depth gauges (events buffered/dropped, history retained) and
// progress counters so an external monitor can watch a long-lived shell.
// Every HELP line carries the original dotted registry name.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace ysmart::obs {

struct ObsContext;

/// `engine.map.tasks` -> `ysmart_engine_map_tasks`: dots and other
/// non-[a-zA-Z0-9_] characters become underscores, `ysmart_` prefixed.
std::string prometheus_name(std::string_view dotted);

/// Label-value escaping per text format 0.0.4: backslash -> `\\`,
/// double-quote -> `\"`, newline -> `\n`. Every label value rendered
/// here goes through this (a job name with a quote must not break the
/// exposition).
std::string prom_escape_label(std::string_view value);

/// Exposition of one registry's counters, gauges and histograms.
std::string render_prometheus(const MetricsRegistry& registry);

/// Exposition of a whole ObsContext: the registry plus event-journal,
/// history and progress depth metrics.
std::string render_prometheus(const ObsContext& obs);

}  // namespace ysmart::obs
