// ObsContext: the observability subsystem's front door.
//
// One ObsContext bundles every observability surface, attached (non-
// owning) to a Database/Engine via set_observer()/set_obs():
//
//   tracer    per-query span tree (Chrome trace / EXPLAIN ANALYZE)
//   metrics   session counters, gauges and histograms
//   samples   per-task telemetry for the query-doctor analyzer
//   events    structured event journal (leveled, categorized JSONL)
//   progress  live per-wave/per-job task-completion state (\top, --progress)
//   history   cross-query flight recorder (last N completed queries)
//   profiler  host-axis CPU/allocation/dispatch accounting (\hotspots)
//   plans     plan-axis predicted-vs-actual accountability (\explain)
//
// Everything is off by default: an unattached engine carries a null
// pointer and every instrumentation site reduces to a branch on it, so
// the disabled path costs nothing and simulated metrics are
// bit-identical with observability on or off (tests/test_obs.cpp and
// tests/test_robustness.cpp pin this down for every surface).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/event_log.h"
#include "obs/history.h"
#include "obs/metrics_registry.h"
#include "obs/plan_view.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/task_samples.h"
#include "obs/trace.h"

namespace ysmart::obs {

struct ObsContext {
  Tracer tracer;
  MetricsRegistry metrics;
  TaskSampleStore samples;
  EventLog events;
  ProgressTracker progress;
  QueryHistoryStore history;
  HostProfiler profiler;
  PlanViewStore plans;

  void clear() {
    tracer.clear();
    metrics.clear();
    samples.clear();
    events.clear();
    progress.clear();
    history.clear();
    profiler.clear();  // keeps its enabled state, drops recorded phases
    plans.clear();     // likewise: keeps enabled, drops predictions/reports
  }
};

/// RAII span: begins on construction (when `obs` is non-null), ends on
/// destruction. All methods are no-ops on a disabled span, so call sites
/// read linearly without null checks.
class ScopedSpan {
 public:
  ScopedSpan(ObsContext* obs, std::string name, std::string category)
      : tracer_(obs ? &obs->tracer : nullptr) {
    if (tracer_) id_ = tracer_->begin(std::move(name), std::move(category));
  }
  ~ScopedSpan() {
    if (tracer_) tracer_->end(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  explicit operator bool() const { return tracer_ != nullptr; }
  int id() const { return id_; }

  void sim(double start_s, double dur_s) {
    if (tracer_) tracer_->set_sim(id_, start_s, dur_s);
  }
  void arg(std::string key, std::uint64_t value) {
    if (tracer_) tracer_->arg(id_, std::move(key), value);
  }
  void arg(std::string key, double value) {
    if (tracer_) tracer_->arg(id_, std::move(key), value);
  }
  void arg(std::string key, std::string_view value) {
    if (tracer_) tracer_->arg(id_, std::move(key), value);
  }

 private:
  Tracer* tracer_ = nullptr;
  int id_ = -1;
};

}  // namespace ysmart::obs
