// The observability HTTP endpoint handler, as a pure library function.
//
// ysmart_shell's \serve command and the YSMART_PROM_PORT listener both
// route requests here; tests drive the same handler through a real
// HttpListener (tests/test_obs_service.cpp) without duplicating the
// routing table. Reads only internally-locked ObsContext state, so it is
// safe on the listener thread while the main thread executes queries.
//
// Endpoints:
//   /metrics       Prometheus exposition (obs/prom_export.h)
//   /healthz       liveness probe: 200, body "ok\n"
//   /history.json  flight recorder (QueryHistoryStore::json)
//   /cluster.json  cluster view of the last sampled query ("{}\n" before)
//   /plan.json     plan view: last EXPLAIN report + calibration ring
// Anything else: 404 with a hint listing the routes above.
#pragma once

#include <string>

#include "common/http_listener.h"

namespace ysmart::obs {

struct ObsContext;

HttpResponse serve_obs_endpoint(const ObsContext& ctx, const std::string& path);

}  // namespace ysmart::obs
