#include "obs/profiler.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/json.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace ysmart::obs {

HostProfiler::~HostProfiler() {
  if (enabled_.load(std::memory_order_relaxed)) prof::release_enabled();
}

void HostProfiler::set_enabled(bool on) {
  bool was = enabled_.exchange(on, std::memory_order_relaxed);
  if (on && !was) prof::acquire_enabled();
  if (!on && was) prof::release_enabled();
}

HostProfiler::PhaseAgg* HostProfiler::phase_begin(int span_id, std::string job,
                                                  std::string phase) {
  if (!enabled()) return nullptr;
  auto agg = std::make_unique<PhaseAgg>();
  agg->job = std::move(job);
  agg->phase = std::move(phase);
  agg->span_id = span_id;
  agg->start_wall_ns = prof::wall_ns();
  PhaseAgg* raw = agg.get();
  std::lock_guard<std::mutex> lk(mu_);
  phases_.push_back(std::move(agg));
  return raw;
}

void HostProfiler::phase_end(PhaseAgg* agg) {
  if (!agg) return;
  agg->phase_wall_ns = prof::wall_ns() - agg->start_wall_ns;
  std::lock_guard<std::mutex> lk(mu_);
  // Phases open/close LIFO on the orchestrating thread, so the closed
  // prefix simply grows; keep phases_ ordered by begin time and advance
  // the closed cursor past every closed block.
  while (closed_ < phases_.size() && phases_[closed_]->phase_wall_ns > 0)
    ++closed_;
}

void HostProfiler::query_begin() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (open_queries_++ == 0) query_cpu_start_ns_ = prof::process_cpu_ns();
}

void HostProfiler::query_end() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (open_queries_ > 0 && --open_queries_ == 0)
    process_cpu_ns_ += prof::process_cpu_ns() - query_cpu_start_ns_;
}

std::uint64_t HostProfiler::process_cpu_ns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return process_cpu_ns_;
}

std::size_t HostProfiler::phase_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::vector<HostPhase> HostProfiler::snapshot(std::size_t from) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<HostPhase> out;
  for (std::size_t i = from; i < closed_; ++i) {
    const PhaseAgg& a = *phases_[i];
    HostPhase p;
    p.job = a.job;
    p.phase = a.phase;
    p.span_id = a.span_id;
    p.chunks = a.chunks.load(std::memory_order_relaxed);
    p.cpu_ns = a.cpu_ns.load(std::memory_order_relaxed);
    p.busy_wall_ns = a.busy_wall_ns.load(std::memory_order_relaxed);
    p.phase_wall_ns = a.phase_wall_ns;
    p.allocs = a.allocs.load(std::memory_order_relaxed);
    p.alloc_bytes = a.alloc_bytes.load(std::memory_order_relaxed);
    p.frees = a.frees.load(std::memory_order_relaxed);
    for (int c = 0; c < prof::kNumCounters; ++c)
      p.dispatch[c] = a.dispatch[c].load(std::memory_order_relaxed);
    out.push_back(std::move(p));
  }
  return out;
}

namespace {
double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string human_count(std::uint64_t n) {
  if (n >= 10'000'000) return strf("%.1fM", static_cast<double>(n) / 1e6);
  if (n >= 10'000) return strf("%.1fk", static_cast<double>(n) / 1e3);
  return strf("%llu", static_cast<unsigned long long>(n));
}
}  // namespace

std::string HostProfiler::hotspots_table(std::size_t from) const {
  std::vector<HostPhase> phases = snapshot(from);
  if (phases.empty())
    return "host profiler: no phases recorded (is profiling enabled and has "
           "a query run?)\n";
  std::stable_sort(phases.begin(), phases.end(),
                   [](const HostPhase& a, const HostPhase& b) {
                     return a.cpu_ns > b.cpu_ns;
                   });
  std::uint64_t total_cpu = 0;
  HostPhase totals;
  for (const HostPhase& p : phases) {
    total_cpu += p.cpu_ns;
    totals.allocs += p.allocs;
    totals.alloc_bytes += p.alloc_bytes;
    for (int c = 0; c < prof::kNumCounters; ++c)
      totals.dispatch[c] += p.dispatch[c];
  }
  std::uint64_t proc = process_cpu_ns();
  std::string out = strf(
      "host hotspots — %zu phase(s), worker CPU %.1f ms, process CPU %.1f ms "
      "(phase coverage %s)\n",
      phases.size(), ms(total_cpu), ms(proc),
      proc > 0 ? strf("%.0f%%", 100.0 * total_cpu / proc).c_str() : "n/a");
  out += strf("%5s  %-34s %9s %9s %8s %9s %9s\n", "rank", "job/phase",
              "cpu_ms", "wall_ms", "chunks", "allocs", "alloc_mb");
  int rank = 0;
  for (const HostPhase& p : phases) {
    out += strf("%5d  %-34s %9.1f %9.1f %8llu %9s %9.1f\n", ++rank,
                (p.job + "/" + p.phase).c_str(), ms(p.cpu_ns),
                ms(p.phase_wall_ns),
                static_cast<unsigned long long>(p.chunks),
                human_count(p.allocs).c_str(),
                static_cast<double>(p.alloc_bytes) / (1024.0 * 1024.0));
  }
  out += "dispatch totals:";
  for (int c = 0; c < prof::kNumCounters; ++c)
    out += strf(" %s %s", prof::counter_name(c),
                human_count(totals.dispatch[c]).c_str());
  out += "\n";
  return out;
}

std::string HostProfiler::folded_stacks(const Tracer& tracer) const {
  std::vector<HostPhase> phases = snapshot(0);
  std::vector<Span> spans = tracer.spans();
  std::unordered_map<int, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i)
    by_id.emplace(spans[i].id, i);

  // Merge identical paths (the same phase of the same job profiled across
  // several runs folds into one frame) with deterministic ordering.
  std::map<std::string, std::uint64_t> folded;
  for (const HostPhase& p : phases) {
    std::string path;
    auto it = by_id.find(p.span_id);
    if (it != by_id.end()) {
      // Walk the span's ancestry root -> leaf.
      std::vector<const Span*> chain;
      for (int id = p.span_id; id >= 0;) {
        auto cur = by_id.find(id);
        if (cur == by_id.end()) break;
        chain.push_back(&spans[cur->second]);
        id = spans[cur->second].parent;
      }
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (!path.empty()) path += ';';
        path += (*rit)->name;
      }
    }
    if (path.empty()) path = p.job + ";" + p.phase;
    // flamegraph.pl drops zero-weight frames; floor at 1 µs so a phase
    // too fast for the CPU clock's resolution still appears.
    folded[path] += std::max<std::uint64_t>(p.cpu_ns / 1000, 1);
  }
  std::string out;
  for (const auto& [path, us] : folded)
    out += strf("%s %llu\n", path.c_str(),
                static_cast<unsigned long long>(us));
  return out;
}

std::string HostProfiler::json(std::size_t from,
                               std::uint64_t proc_cpu_ns) const {
  std::vector<HostPhase> phases = snapshot(from);
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kSchemaVersion);
  w.kv("process_cpu_ms",
       ms(proc_cpu_ns == kUseTotal ? process_cpu_ns() : proc_cpu_ns));
  w.key("phases").begin_array();
  for (const HostPhase& p : phases) {
    w.begin_object();
    w.kv("job", p.job);
    w.kv("phase", p.phase);
    w.kv("cpu_ms", ms(p.cpu_ns));
    w.kv("busy_wall_ms", ms(p.busy_wall_ns));
    w.kv("phase_wall_ms", ms(p.phase_wall_ns));
    w.kv("chunks", p.chunks);
    w.kv("allocs", p.allocs);
    w.kv("alloc_bytes", p.alloc_bytes);
    w.kv("frees", p.frees);
    w.key("counters").begin_object();
    for (int c = 0; c < prof::kNumCounters; ++c)
      w.kv(prof::counter_name(c), p.dispatch[c]);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void HostProfiler::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  phases_.clear();
  closed_ = 0;
  process_cpu_ns_ = 0;
  query_cpu_start_ns_ = 0;
  open_queries_ = 0;
}

TaskClock::TaskClock(HostProfiler::PhaseAgg* agg) : agg_(agg) {
  if (!agg_) return;
  base_ = prof::thread_snapshot();
  cpu0_ = prof::thread_cpu_ns();
  wall0_ = prof::wall_ns();
}

TaskClock::~TaskClock() {
  if (!agg_) return;
  std::uint64_t cpu1 = prof::thread_cpu_ns();
  std::uint64_t wall1 = prof::wall_ns();
  prof::ThreadCounters now = prof::thread_snapshot();
  agg_->chunks.fetch_add(1, std::memory_order_relaxed);
  if (cpu1 > cpu0_)
    agg_->cpu_ns.fetch_add(cpu1 - cpu0_, std::memory_order_relaxed);
  if (wall1 > wall0_)
    agg_->busy_wall_ns.fetch_add(wall1 - wall0_, std::memory_order_relaxed);
  agg_->allocs.fetch_add(now.allocs - base_.allocs, std::memory_order_relaxed);
  agg_->alloc_bytes.fetch_add(now.alloc_bytes - base_.alloc_bytes,
                              std::memory_order_relaxed);
  agg_->frees.fetch_add(now.frees - base_.frees, std::memory_order_relaxed);
  for (int c = 0; c < prof::kNumCounters; ++c)
    agg_->dispatch[c].fetch_add(now.dispatch[c] - base_.dispatch[c],
                                std::memory_order_relaxed);
}

}  // namespace ysmart::obs
