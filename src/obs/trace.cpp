#include "obs/trace.h"

#include <algorithm>

#include "common/json.h"
#include "common/strings.h"

namespace ysmart::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::begin(std::string name, std::string category) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = static_cast<int>(spans_.size());
  s.parent = open_.empty() ? -1 : open_.back();
  s.name = std::move(name);
  s.category = std::move(category);
  s.wall_start_us = wall_now_us();
  open_.push_back(s.id);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::end(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) {
    malformed_ = true;
    return;
  }
  if (open_.empty() || open_.back() != id) {
    malformed_ = true;
    // Still close it (and anything opened after it) so exports load.
    while (!open_.empty()) {
      Span& s = spans_[static_cast<std::size_t>(open_.back())];
      if (s.open()) s.wall_dur_us = wall_now_us() - s.wall_start_us;
      const bool was_target = open_.back() == id;
      open_.pop_back();
      if (was_target) break;
    }
    return;
  }
  Span& s = spans_[static_cast<std::size_t>(id)];
  s.wall_dur_us = wall_now_us() - s.wall_start_us;
  open_.pop_back();
}

void Tracer::set_sim(int id, double start_s, double dur_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].sim_start_s = start_s;
  spans_[static_cast<std::size_t>(id)].sim_dur_s = dur_s;
}

void Tracer::arg(int id, std::string key, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].args.emplace_back(
      std::move(key), strf("%llu", static_cast<unsigned long long>(value)));
}

void Tracer::arg(int id, std::string key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].args.emplace_back(std::move(key),
                                                         strf("%.17g", value));
}

void Tracer::arg(int id, std::string key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].args.emplace_back(
      std::move(key), "\"" + json_escape(value) + "\"");
}

double Tracer::sim_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_now_s_;
}

void Tracer::set_sim_now(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_now_s_ = seconds;
}

bool Tracer::well_formed() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (malformed_ || !open_.empty()) return false;
  for (const auto& s : spans_)
    if (s.open()) return false;
  return true;
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
  sim_now_s_ = 0;
  malformed_ = false;
}

namespace {

void emit_complete_event(JsonWriter& w, const Span& s, int pid, double ts_us,
                         double dur_us) {
  w.begin_object();
  w.kv("name", std::string_view(s.name));
  w.kv("cat", std::string_view(s.category));
  w.kv("ph", "X");
  w.kv("pid", pid);
  w.kv("tid", 1);
  w.kv("ts", ts_us);
  w.kv("dur", dur_us);
  if (!s.args.empty()) {
    w.key("args").begin_object();
    for (const auto& [k, v] : s.args) w.key(k).raw(v);
    w.end_object();
  }
  w.end_object();
}

void emit_process_name(JsonWriter& w, int pid, const char* name) {
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.key("args").begin_object().kv("name", name).end_object();
  w.end_object();
}

}  // namespace

std::string Tracer::chrome_json(TimeAxis axis) const {
  return chrome_json(axis, {});
}

std::string Tracer::chrome_json(
    TimeAxis axis, const std::vector<std::string>& extra_events) const {
  std::vector<Span> snap = spans();
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  const bool want_sim = axis != TimeAxis::Wall;
  const bool want_wall = axis != TimeAxis::Simulated;
  if (want_sim) emit_process_name(w, 1, "simulated cluster");
  if (want_wall) emit_process_name(w, 2, "host wall-clock");
  for (const auto& s : snap) {
    if (want_sim && s.has_sim())
      emit_complete_event(w, s, 1, s.sim_start_s * 1e6,
                          std::max(0.0, s.sim_dur_s) * 1e6);
    if (want_wall)
      emit_complete_event(w, s, 2, s.wall_start_us,
                          std::max(0.0, s.wall_dur_us));
  }
  // Pre-encoded extra events (each string one event object) — the
  // cluster view's per-node pid 3 tracks are simulated-axis data, so
  // they ride with the simulated export.
  if (want_sim)
    for (const auto& ev : extra_events) w.raw(ev);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Tracer::analyze_tree() const {
  std::vector<Span> snap = spans();
  // Children of each span, in creation (= begin) order.
  std::vector<std::vector<int>> children(snap.size());
  std::vector<int> roots;
  for (const auto& s : snap) {
    if (s.parent < 0)
      roots.push_back(s.id);
    else
      children[static_cast<std::size_t>(s.parent)].push_back(s.id);
  }
  std::string out;
  auto render = [&](auto&& self, int id, int depth) -> void {
    const Span& s = snap[static_cast<std::size_t>(id)];
    out += std::string(static_cast<std::size_t>(depth) * 2, ' ');
    out += s.name;
    out += strf("  [%s]", s.category.c_str());
    if (s.has_sim()) out += strf("  sim=%.1fs", s.sim_dur_s);
    if (!s.open()) out += strf("  wall=%.1fms", s.wall_dur_us / 1000.0);
    for (const auto& [k, v] : s.args) out += strf("  %s=%s", k.c_str(), v.c_str());
    out += "\n";
    for (int c : children[static_cast<std::size_t>(id)]) self(self, c, depth + 1);
  };
  for (int r : roots) render(render, r, 0);
  return out;
}

}  // namespace ysmart::obs
