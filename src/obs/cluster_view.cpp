#include "obs/cluster_view.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>
#include <set>
#include <utility>

#include "common/json.h"
#include "common/strings.h"

namespace ysmart::obs {

namespace {

/// Replay CostModel::makespan's greedy LPT fold over one phase and
/// record which (slot -> lane) each task landed on. The fold runs
/// relative to the phase start with identical ordering (seconds
/// descending) and identical arithmetic (start = earliest slot end), so
/// the returned relative makespan reproduces the phase's modeled time
/// bit-for-bit when the phase was not expansion-scaled; event start
/// times add phase_start once, for display on the query timeline.
double replay_phase(const std::vector<TaskSample>& tasks, int slots,
                    int nodes, double phase_start, int job_idx, bool reduce,
                    std::vector<SlotEvent>& out) {
  if (tasks.empty()) return 0;
  slots = std::max(1, slots);
  nodes = std::max(1, nodes);
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].sim_seconds != tasks[b].sim_seconds)
      return tasks[a].sim_seconds > tasks[b].sim_seconds;
    return a < b;  // deterministic tie-break; makespan is value-only
  });
  // Min-heap of (slot end time, slot index); equal ends pop the lowest
  // slot first, matching the initial fill order.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>> heap;
  for (int s = 0; s < slots; ++s) heap.emplace(0.0, s);
  double makespan = 0;
  for (std::size_t idx : order) {
    auto [free_at, slot] = heap.top();
    heap.pop();
    SlotEvent ev;
    ev.job = job_idx;
    ev.reduce = reduce;
    ev.task = tasks[idx].index;
    ev.node = slot % nodes;
    ev.slot = slot / nodes;
    ev.start_s = phase_start + free_at;
    ev.dur_s = tasks[idx].sim_seconds;
    out.push_back(ev);
    const double end = free_at + tasks[idx].sim_seconds;
    makespan = std::max(makespan, end);
    heap.emplace(end, slot);
  }
  return makespan;
}

std::string fmt_mb(std::uint64_t bytes) {
  return strf("%.1f MB", static_cast<double>(bytes) / 1048576.0);
}

void node_json(JsonWriter& w, const NodeStats& n) {
  w.begin_object();
  w.kv("node", n.node);
  w.kv("map_tasks", n.map_tasks);
  w.kv("reduce_partitions", n.reduce_partitions);
  w.kv("busy_map_s", n.busy_map_s);
  w.kv("busy_reduce_s", n.busy_reduce_s);
  w.kv("busy_s", n.busy_s);
  w.kv("utilization", n.utilization);
  w.kv("local_reads", n.local_reads);
  w.kv("remote_reads", n.remote_reads);
  w.kv("remote_read_bytes", n.remote_read_bytes);
  w.kv("shuffle_bytes_out", n.shuffle_bytes_out);
  w.kv("shuffle_bytes_in", n.shuffle_bytes_in);
  w.end_object();
}

/// Busiest-first node order for truncated listings: busy seconds
/// descending, node index ascending (deterministic).
std::vector<const NodeStats*> busiest(const std::vector<NodeStats>& nodes,
                                      std::size_t k) {
  std::vector<const NodeStats*> by_busy;
  by_busy.reserve(nodes.size());
  for (const auto& n : nodes) by_busy.push_back(&n);
  std::sort(by_busy.begin(), by_busy.end(),
            [](const NodeStats* a, const NodeStats* b) {
              if (a->busy_s != b->busy_s) return a->busy_s > b->busy_s;
              return a->node < b->node;
            });
  if (by_busy.size() > k) by_busy.resize(k);
  return by_busy;
}

}  // namespace

ClusterReport build_cluster_view(const QueryTaskSamples& query,
                                 const ClusterViewOptions& opts) {
  ClusterReport rep;
  if (query.jobs.empty()) return rep;

  // Cluster width: the jobs all ran on one engine/config, but synthetic
  // sample sets may disagree — take the max, and never less than any
  // observed node id so the rollup vectors cover every sample.
  int nodes = 1;
  for (const auto& js : query.jobs) {
    nodes = std::max(nodes, js.worker_nodes);
    for (const auto& t : js.map_tasks) nodes = std::max(nodes, t.node + 1);
    for (const auto& t : js.reduce_tasks) nodes = std::max(nodes, t.node + 1);
  }
  rep.worker_nodes = nodes;
  rep.nodes.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n)
    rep.nodes[static_cast<std::size_t>(n)].node = n;

  // ---- wave fold: job start offsets and the query makespan ----
  // Reproduces the analyzer's critical-path fold (and therefore the DAG
  // executor's wall_time_s) operation-for-operation: per wave,
  // elapsed = max job total (first max wins), summed in wave order.
  // Jobs with wave -1 (standalone runs) are serial, one wave each.
  std::vector<double> job_start(query.jobs.size(), 0.0);
  for (std::size_t i = 0; i < query.jobs.size();) {
    const int wave_id = query.jobs[i].wave;
    double elapsed = 0;
    std::size_t j = i;
    for (; j < query.jobs.size(); ++j) {
      if (wave_id < 0 && j > i) break;
      if (wave_id >= 0 && query.jobs[j].wave != wave_id) break;
      job_start[j] = rep.makespan_s;
      elapsed = std::max(elapsed, query.jobs[j].total_time_s());
    }
    rep.makespan_s += elapsed;
    i = j;
  }

  // ---- per-node rollups, traffic matrix, timeline ----
  std::map<std::pair<int, int>, std::uint64_t> cells;
  rep.traffic.nodes = nodes;
  rep.traffic.row_bytes.assign(static_cast<std::size_t>(nodes), 0);
  rep.traffic.col_bytes.assign(static_cast<std::size_t>(nodes), 0);
  for (std::size_t ji = 0; ji < query.jobs.size(); ++ji) {
    const JobTaskSamples& js = query.jobs[ji];
    ClusterJobInfo info;
    info.name = js.job_name;
    info.wave = js.wave;
    info.map_only = js.map_only;
    info.start_s = job_start[ji];
    info.map_slots = js.map_slots;
    info.reduce_slots = js.reduce_slots;
    info.map_underfilled =
        !js.map_tasks.empty() &&
        js.map_tasks.size() < static_cast<std::size_t>(js.map_slots);
    info.reduce_underfilled =
        !js.map_only && js.target_reduce_tasks > 0 &&
        js.target_reduce_tasks < static_cast<std::uint64_t>(js.reduce_slots);
    rep.underfilled_phases +=
        (info.map_underfilled ? 1 : 0) + (info.reduce_underfilled ? 1 : 0);

    for (const auto& t : js.map_tasks) {
      NodeStats& n = rep.nodes[static_cast<std::size_t>(t.node)];
      ++n.map_tasks;
      n.busy_map_s += t.sim_seconds;
      if (t.local_read) {
        ++n.local_reads;
      } else {
        ++n.remote_reads;
        n.remote_read_bytes += t.input_bytes;
      }
      for (std::size_t p = 0; p < t.partition_bytes.size(); ++p) {
        const std::uint64_t b = t.partition_bytes[p];
        if (b == 0) continue;
        // Partition p's node by the placement convention; the recorded
        // reduce sample carries the same value.
        const int to = static_cast<int>(p) % nodes;
        cells[{t.node, to}] += b;
        rep.traffic.row_bytes[static_cast<std::size_t>(t.node)] += b;
        rep.traffic.col_bytes[static_cast<std::size_t>(to)] += b;
        rep.traffic.total_bytes += b;
        if (t.node == to) rep.traffic.local_bytes += b;
      }
    }
    for (const auto& t : js.reduce_tasks) {
      NodeStats& n = rep.nodes[static_cast<std::size_t>(t.node)];
      ++n.reduce_partitions;
      n.busy_reduce_s += t.sim_seconds;
    }

    const double map_start = job_start[ji] + js.sched_delay_s;
    info.map_replay_s =
        replay_phase(js.map_tasks, js.map_slots, nodes, map_start,
                     static_cast<int>(ji), /*reduce=*/false, rep.timeline);
    if (!js.map_only)
      info.reduce_replay_s = replay_phase(
          js.reduce_tasks, js.reduce_slots, nodes, map_start + js.map_time_s,
          static_cast<int>(ji), /*reduce=*/true, rep.timeline);
    rep.jobs.push_back(std::move(info));
  }

  for (auto& n : rep.nodes) {
    n.busy_s = n.busy_map_s + n.busy_reduce_s;
    n.utilization = rep.makespan_s > 0 ? n.busy_s / rep.makespan_s : 0.0;
    n.shuffle_bytes_out = rep.traffic.row_bytes[static_cast<std::size_t>(n.node)];
    n.shuffle_bytes_in = rep.traffic.col_bytes[static_cast<std::size_t>(n.node)];
    rep.busy_total_s += n.busy_s;
  }

  // Utilization CV: population stddev / mean of per-node busy seconds
  // (idle nodes count — an idle node IS the imbalance).
  const double mean = rep.busy_total_s / static_cast<double>(nodes);
  if (mean > 0) {
    double var = 0;
    for (const auto& n : rep.nodes)
      var += (n.busy_s - mean) * (n.busy_s - mean);
    var /= static_cast<double>(nodes);
    rep.utilization_cv = std::sqrt(var) / mean;
  }

  // ---- dense or top-k sparse matrix materialization ----
  rep.traffic.sparse = nodes > opts.dense_matrix_max_nodes;
  if (!rep.traffic.sparse) {
    rep.traffic.dense.assign(
        static_cast<std::size_t>(nodes),
        std::vector<std::uint64_t>(static_cast<std::size_t>(nodes), 0));
    for (const auto& [key, b] : cells)
      rep.traffic.dense[static_cast<std::size_t>(key.first)]
                       [static_cast<std::size_t>(key.second)] = b;
  } else {
    std::vector<TrafficCell> all;
    all.reserve(cells.size());
    for (const auto& [key, b] : cells)
      all.push_back({key.first, key.second, b});
    std::sort(all.begin(), all.end(), [](const TrafficCell& a,
                                         const TrafficCell& b) {
      if (a.bytes != b.bytes) return a.bytes > b.bytes;
      if (a.from != b.from) return a.from < b.from;
      return a.to < b.to;
    });
    if (all.size() > static_cast<std::size_t>(std::max(0, opts.top_cells)))
      all.resize(static_cast<std::size_t>(std::max(0, opts.top_cells)));
    rep.traffic.top_cells = std::move(all);
  }

  // ---- cluster doctor ----
  if (nodes >= 2) {
    std::vector<double> busy;
    busy.reserve(rep.nodes.size());
    for (const auto& n : rep.nodes) busy.push_back(n.busy_s);
    std::vector<double> sorted = busy;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[(sorted.size() - 1) / 2];  // lower median
    if (median > 0) {
      int listed = 0;
      for (const auto& n : rep.nodes) {
        if (n.busy_s <= opts.node_straggler_threshold * median) continue;
        if (listed++ < 3)
          rep.diagnosis.push_back(strf(
              "node %d is a straggler: busy %.1fs, %.1fx the median node "
              "(%.1fs)",
              n.node, n.busy_s, n.busy_s / median, median));
      }
      if (listed > 3)
        rep.diagnosis.push_back(
            strf("...and %d more straggler node(s)", listed - 3));
    }
    if (rep.utilization_cv >= opts.imbalance_cv_threshold)
      rep.diagnosis.push_back(
          strf("node load imbalance: busy-seconds CV %.2f across %d nodes",
               rep.utilization_cv, nodes));
  }
  for (const auto& info : rep.jobs) {
    if (info.map_underfilled)
      rep.diagnosis.push_back(
          strf("job %s map: cluster underfilled (%d slots, fewer runnable "
               "tasks)",
               info.name.c_str(), info.map_slots));
    if (info.reduce_underfilled)
      rep.diagnosis.push_back(
          strf("job %s reduce: cluster underfilled (%d slots, fewer modeled "
               "tasks)",
               info.name.c_str(), info.reduce_slots));
  }
  {
    std::uint64_t remote_total = 0;
    const NodeStats* top = nullptr;
    for (const auto& n : rep.nodes) {
      remote_total += n.remote_reads;
      if (!top || n.remote_reads > top->remote_reads) top = &n;
    }
    if (nodes >= 2 && top && remote_total > 0 &&
        static_cast<double>(top->remote_reads) >=
            opts.locality_concentration_share *
                static_cast<double>(remote_total))
      rep.diagnosis.push_back(strf(
          "locality misses concentrate on node %d: %llu of %llu remote "
          "block reads",
          top->node, static_cast<unsigned long long>(top->remote_reads),
          static_cast<unsigned long long>(remote_total)));
  }
  if (rep.diagnosis.empty())
    rep.diagnosis.push_back(
        "cluster looks healthy: no node stragglers, load imbalance or "
        "concentrated locality misses");
  return rep;
}

std::string ClusterReport::text() const {
  std::string out = "== cluster doctor ==\n";
  if (worker_nodes == 0) {
    out += "no samples: run with observability attached\n";
    return out;
  }
  const double avg_util =
      makespan_s > 0
          ? busy_total_s / (makespan_s * static_cast<double>(worker_nodes))
          : 0.0;
  out += strf("cluster: %d node(s), makespan %.1fs, busy %.1fs "
              "(avg node utilization %.2f, busy cv %.2f)\n",
              worker_nodes, makespan_s, busy_total_s, avg_util,
              utilization_cv);
  const double local_share =
      traffic.total_bytes > 0
          ? static_cast<double>(traffic.local_bytes) /
                static_cast<double>(traffic.total_bytes)
          : 0.0;
  out += strf("shuffle traffic: %s total, %.0f%% node-local; matrix %dx%d "
              "(%s)\n",
              fmt_mb(traffic.total_bytes).c_str(), 100.0 * local_share,
              traffic.nodes, traffic.nodes,
              traffic.sparse
                  ? strf("top-%zu sparse", traffic.top_cells.size()).c_str()
                  : "dense");
  out += strf("underfilled phases: %d\n", underfilled_phases);
  const auto top = busiest(nodes, 8);
  out += strf("busiest nodes (%zu of %d):\n", top.size(), worker_nodes);
  for (const NodeStats* n : top)
    out += strf("  node %-4d busy %8.1fs (util %.2f)  maps %llu  reduce "
                "parts %llu  reads %llu local/%llu remote  shuffle in %s "
                "out %s\n",
                n->node, n->busy_s, n->utilization,
                static_cast<unsigned long long>(n->map_tasks),
                static_cast<unsigned long long>(n->reduce_partitions),
                static_cast<unsigned long long>(n->local_reads),
                static_cast<unsigned long long>(n->remote_reads),
                fmt_mb(n->shuffle_bytes_in).c_str(),
                fmt_mb(n->shuffle_bytes_out).c_str());
  out += "cluster diagnosis:\n";
  for (const auto& d : diagnosis) out += "  - " + d + "\n";
  return out;
}

void ClusterReport::to_json(JsonWriter& w, bool full) const {
  w.begin_object();
  w.kv("worker_nodes", worker_nodes);
  w.kv("makespan_s", makespan_s);
  w.kv("busy_total_s", busy_total_s);
  w.kv("utilization_cv", utilization_cv);
  w.kv("underfilled_phases", underfilled_phases);
  const std::size_t node_cap = full ? 256 : 8;
  const bool truncated = nodes.size() > node_cap;
  w.kv("nodes_truncated", truncated);
  w.key("nodes").begin_array();
  if (!truncated) {
    for (const auto& n : nodes) node_json(w, n);
  } else {
    for (const NodeStats* n : busiest(nodes, node_cap)) node_json(w, *n);
  }
  w.end_array();
  if (full) {
    w.key("jobs").begin_array();
    for (const auto& info : jobs) {
      w.begin_object();
      w.kv("name", std::string_view(info.name));
      w.kv("wave", info.wave);
      w.kv("map_only", info.map_only);
      w.kv("start_s", info.start_s);
      w.kv("map_slots", info.map_slots);
      w.kv("reduce_slots", info.reduce_slots);
      w.kv("map_underfilled", info.map_underfilled);
      w.kv("reduce_underfilled", info.reduce_underfilled);
      w.end_object();
    }
    w.end_array();
    w.key("traffic").begin_object();
    w.kv("nodes", traffic.nodes);
    w.kv("sparse", traffic.sparse);
    w.kv("total_bytes", traffic.total_bytes);
    w.kv("local_bytes", traffic.local_bytes);
    w.key("row_bytes").begin_array();
    for (std::uint64_t b : traffic.row_bytes) w.value(b);
    w.end_array();
    w.key("col_bytes").begin_array();
    for (std::uint64_t b : traffic.col_bytes) w.value(b);
    w.end_array();
    if (!traffic.sparse) {
      w.key("dense").begin_array();
      for (const auto& row : traffic.dense) {
        w.begin_array();
        for (std::uint64_t b : row) w.value(b);
        w.end_array();
      }
      w.end_array();
    } else {
      w.key("top_cells").begin_array();
      for (const auto& c : traffic.top_cells) {
        w.begin_object();
        w.kv("from", c.from);
        w.kv("to", c.to);
        w.kv("bytes", c.bytes);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    const std::size_t ev_cap = 4096;
    w.kv("timeline_truncated", timeline.size() > ev_cap);
    w.key("timeline").begin_array();
    for (std::size_t i = 0; i < std::min(timeline.size(), ev_cap); ++i) {
      const SlotEvent& ev = timeline[i];
      w.begin_object();
      w.kv("job", std::string_view(
                      jobs[static_cast<std::size_t>(ev.job)].name));
      w.kv("phase", ev.reduce ? "reduce" : "map");
      w.kv("task", ev.task);
      w.kv("node", ev.node);
      w.kv("slot", ev.slot);
      w.kv("start_s", ev.start_s);
      w.kv("dur_s", ev.dur_s);
      w.end_object();
    }
    w.end_array();
  }
  w.key("diagnosis").begin_array();
  for (const auto& d : diagnosis) w.value(std::string_view(d));
  w.end_array();
  w.end_object();
}

std::string ClusterReport::json(bool full) const {
  JsonWriter w;
  to_json(w, full);
  return w.take();
}

std::vector<std::string> ClusterReport::chrome_events(
    double sim_offset_s) const {
  std::vector<std::string> out;
  if (timeline.empty()) return out;
  // Lane tid: grouped by node, then slot within the node. +1 keeps tid
  // 0 free (some viewers treat it specially).
  auto lane_tid = [](int node, int slot) { return node * 4096 + slot + 1; };
  {
    JsonWriter w;
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", 3);
    w.key("args").begin_object().kv("name", "cluster nodes").end_object();
    w.end_object();
    out.push_back(w.take());
  }
  std::set<std::pair<int, int>> lanes;
  for (const auto& ev : timeline) lanes.insert({ev.node, ev.slot});
  for (const auto& [node, slot] : lanes) {
    JsonWriter w;
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 3);
    w.kv("tid", lane_tid(node, slot));
    w.key("args")
        .begin_object()
        .kv("name", std::string_view(strf("node %d slot %d", node, slot)))
        .end_object();
    w.end_object();
    out.push_back(w.take());
  }
  for (const auto& ev : timeline) {
    JsonWriter w;
    w.begin_object();
    w.kv("name",
         std::string_view(strf(
             "%s %s#%d", jobs[static_cast<std::size_t>(ev.job)].name.c_str(),
             ev.reduce ? "reduce" : "map", ev.task)));
    w.kv("cat", "cluster");
    w.kv("ph", "X");
    w.kv("pid", 3);
    w.kv("tid", lane_tid(ev.node, ev.slot));
    w.kv("ts", (sim_offset_s + ev.start_s) * 1e6);
    w.kv("dur", ev.dur_s * 1e6);
    w.end_object();
    out.push_back(w.take());
  }
  return out;
}

}  // namespace ysmart::obs
