// Cross-query flight recorder: the last N completed queries, kept after
// their per-query observability (trace, samples) has been reset.
//
// The tracer and sample store are per-query surfaces — the shell clears
// them between queries so each printed tree covers one run. The history
// store is the session-level complement: Database::run appends one
// QueryHistoryRecord per completed query (SQL text, translation profile,
// job/wave counts, simulated and host times, failure reason, and the
// query doctor's rendered report), retaining the most recent N under
// ring retention. The shell surfaces it as \history [k] and \last [i]
// (re-print a past query's analyze tree without re-running it), and the
// HTTP listener exports it whole as /history.json.
//
// Everything stored is copied from values already computed for the run;
// recording happens on the orchestrating thread after execution, so an
// attached history store cannot perturb simulated metrics (pinned in
// tests/test_robustness.cpp). Host wall milliseconds are the only
// nondeterministic field and are segregated in JSON like the tracer's
// wall axis.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ysmart::obs {

struct QueryHistoryRecord {
  std::uint64_t id = 0;  // 1-based across the session, survives eviction
  std::string sql;
  std::string profile;       // translation profile name
  int jobs = 0;
  int waves = 0;
  double sim_total_s = 0;    // serial sum of job times
  double sim_wall_s = 0;     // modeled end-to-end elapsed (waves overlap)
  double host_wall_ms = 0;   // nondeterministic: host execution time
  bool failed = false;
  std::string fail_reason;
  /// One-line analyzer digest (first diagnosis, or "ok").
  std::string digest;
  /// Full rendered analyzer report; what \last re-prints.
  std::string analyzer_text;
};

class QueryHistoryStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  /// Resize the retention ring; shrinking evicts the oldest records.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Append one completed query; assigns the record id. The oldest
  /// record is evicted once the ring is full.
  void add(QueryHistoryRecord record);

  std::size_t size() const;
  std::uint64_t total_recorded() const;  // lifetime count incl. evicted

  /// Most-recent-first snapshot of up to `k` records (0 = all retained).
  std::vector<QueryHistoryRecord> recent(std::size_t k = 0) const;

  /// The i-th most recent record (0 = latest). Returns false when fewer
  /// than i+1 records are retained.
  bool at(std::size_t i, QueryHistoryRecord* out) const;

  /// Whole store as one JSON document, most recent first:
  /// {"capacity":N,"total_recorded":M,"queries":[...]}.
  std::string json() const;

  /// Compact most-recent-first table for the shell's \history.
  std::string table(std::size_t k = 0) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<QueryHistoryRecord> ring_;  // oldest first
  std::uint64_t next_id_ = 1;
};

}  // namespace ysmart::obs
