// Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005).
//
// Tracks the approximately-heaviest keys of a weighted stream in bounded
// memory: at most `capacity` counters. When a new key arrives with all
// counters taken, the minimum counter is evicted and its count inherited
// (recorded as the new entry's `error`), so every reported count is an
// overestimate by at most `error` and a key with true weight above
// total/capacity is guaranteed to be present.
//
// The engine builds one sketch per reduce partition (keys are processed
// in shuffle-sort order) and merges them on the orchestrating thread in
// fixed partition order, so the merged sketch — like every other
// observability artifact — is deterministic for a fixed seed at any
// thread-pool size. Determinism inside the sketch requires deterministic
// tie-breaking: evictions pick the minimum-count entry with the
// lexicographically smallest key, and top() orders by descending count,
// then ascending key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ysmart::obs {

class SpaceSaving {
 public:
  /// Counter budget used by the engine's per-partition reduce-key
  /// sketches; generous for "a handful of hot keys" diagnoses while
  /// keeping the per-partition cost trivial.
  static constexpr std::size_t kDefaultCapacity = 16;

  struct Entry {
    std::string key;
    std::uint64_t count = 0;  // estimated weight (overestimate)
    std::uint64_t error = 0;  // count inherited from evictions
  };

  explicit SpaceSaving(std::size_t capacity = kDefaultCapacity);

  /// Add `weight` occurrences of `key`.
  void offer(const std::string& key, std::uint64_t weight = 1);

  /// Fold `other` into this sketch: every entry of `other` is offered
  /// with its count, and eviction errors add up. The result keeps the
  /// Space-Saving guarantee for the concatenated stream.
  void merge(const SpaceSaving& other);

  /// The up-to-`k` heaviest entries, by descending count then ascending
  /// key (deterministic).
  std::vector<Entry> top(std::size_t k) const;

  /// Total weight offered (exact, not estimated).
  std::uint64_t total_weight() const { return total_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;  // unordered; linear scans (capacity is small)
  std::uint64_t total_ = 0;
};

}  // namespace ysmart::obs
