// Per-task telemetry samples retained during simulated job execution.
//
// The engine computes a MapTaskWork per map task and a ReduceTaskWork per
// reduce partition, costs them, folds them into JobMetrics — and, without
// this store, throws the per-task detail away. When an ObsContext is
// attached, the engine additionally retains one TaskSample per task so
// the analyzer (obs/analyzer.h) can reason about skew, stragglers and
// hot keys after the fact.
//
// Conventions:
//  * Samples are recorded by the engine's orchestrating thread in fixed
//    task/partition order, so the store's contents are deterministic for
//    a fixed seed at any thread-pool size (pinned by test_robustness).
//  * Map-only jobs follow the metrics.h convention: their final output
//    appears in the map samples and `reduce_tasks` stays empty.
//  * Reduce samples exist per *simulated* partition (at most
//    Engine::kMaxSimReducers); `target_reduce_tasks` records the real
//    modeled task count the partition times were expanded to. The
//    registry's reduce-task histogram is fed from these samples, one
//    observation per modeled task (sample index = task % partitions), so
//    registry and samples reconcile exactly.
//  * `tag_records` is the per-source-tag record distribution of a CMF
//    common job's reduce input — the per-merged-job view the paper's
//    Fig. 9 discussion reasons about. Plain jobs have a single tag.
//  * The observed query lifecycle groups into queries: Database::run
//    begins a new group; standalone Engine::run calls land in an
//    implicit group 0. The DAG executor stamps each job with its
//    dependency-wave index (-1 when no executor was involved).
//  * Node identity (the cluster axis, obs/cluster_view.h): a map task
//    runs on its round-robin TaskTracker node (task index %
//    worker_nodes, the same assignment the engine uses for the locality
//    check); a reduce *partition* p is assigned node p % worker_nodes.
//    Reduce assignment is per simulated partition, not per modeled
//    task, so on clusters with more nodes than Engine::kMaxSimReducers
//    the reduce work concentrates on the first kMaxSimReducers nodes —
//    a documented artifact of the partition cap, like the map-only
//    output convention above.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/heavy_hitters.h"

namespace ysmart::obs {

struct TaskSample {
  int index = 0;  // map task index, or simulated reduce partition index
  /// Simulated node the task ran on (see the node-identity convention
  /// above): map tasks carry their scheduled TaskTracker node, reduce
  /// samples carry partition % worker_nodes.
  int node = 0;

  std::uint64_t input_records = 0;
  std::uint64_t input_bytes = 0;  // map: block bytes; reduce: shuffle raw
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;

  // Reduce only: this partition's share of the map->reduce transfer.
  std::uint64_t shuffle_bytes_raw = 0;
  std::uint64_t shuffle_bytes_wire = 0;
  /// Reduce only: the partition's shuffle bytes *before* the
  /// intermediate-expansion scaling — the exact sum of the map-side
  /// per-pair wire sizes, so it equals the matching column of the
  /// map-task partition_bytes matrix below to the byte.
  std::uint64_t shuffle_bytes_prescale = 0;

  /// Simulated seconds charged for the task, including every simulated
  /// failure attempt (matches the value fed to the makespan and to the
  /// registry histograms).
  double sim_seconds = 0;
  int attempts = 1;  // 1 = clean run; attempts-1 = retries

  bool local_read = true;          // map only: block read from a local replica
  std::uint64_t key_groups = 0;    // reduce only: distinct keys in partition
  std::vector<std::uint64_t> tag_records;  // reduce only: records per source tag

  /// Map only (reduce jobs): exact wire bytes this task emitted into each
  /// simulated reduce partition, pre-expansion — the row of the shuffle
  /// traffic matrix. Empty for map-only jobs and when not sampled.
  std::vector<std::uint64_t> partition_bytes;
};

struct JobTaskSamples {
  std::string job_name;
  int wave = -1;  // dependency-wave index; -1 = standalone engine run
  bool map_only = false;
  bool failed = false;

  // Simulated phase times, identical to the JobMetrics fields.
  double sched_delay_s = 0;
  double map_time_s = 0;
  double reduce_time_s = 0;

  /// Real modeled reduce task count (JobMetrics::reduce.tasks); the
  /// simulator executes reduce_tasks.size() partitions standing for it.
  std::uint64_t target_reduce_tasks = 0;

  /// Cluster shape the job ran against: node count and the *effective*
  /// (post-contention) slot counts the engine fed to the makespan —
  /// what the cluster-view timeline replays and the underfilled-wave
  /// check compares task counts to.
  int worker_nodes = 1;
  int map_slots = 1;
  int reduce_slots = 1;

  /// Reduce key column names when the job's spec carries them (CMF fills
  /// them from the partition-key expressions); used to render hot keys.
  std::vector<std::string> key_columns;

  std::vector<TaskSample> map_tasks;
  std::vector<TaskSample> reduce_tasks;  // per simulated partition

  /// Space-Saving sketch over reduce keys, weighted by records per key
  /// group; per-partition sketches merged in partition order.
  SpaceSaving hot_keys;

  double total_time_s() const {
    return sched_delay_s + map_time_s + reduce_time_s;
  }
};

struct QueryTaskSamples {
  std::vector<JobTaskSamples> jobs;
  /// Modeled end-to-end elapsed time (QueryMetrics::wall_time_s), set by
  /// the DAG executor; -1 for standalone engine runs.
  double wall_time_s = -1;
};

/// Thread-safe container of sampled queries; owned by ObsContext.
class TaskSampleStore {
 public:
  /// Start a new query group (Database::run). Resets the wave cursor.
  void begin_query();

  /// Stamp subsequent record_job() calls with dependency wave `wave`.
  void set_current_wave(int wave);

  /// Append one executed job's samples to the current query group (an
  /// implicit group is created for standalone engine runs).
  void record_job(JobTaskSamples samples);

  /// Record the current query's modeled end-to-end time.
  void set_wall_time(double seconds);

  std::size_t query_count() const;
  std::size_t total_jobs() const;
  QueryTaskSamples query(std::size_t index) const;  // snapshot copy
  QueryTaskSamples last_query() const;              // empty if none

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<QueryTaskSamples> queries_;
  int current_wave_ = -1;
};

}  // namespace ysmart::obs
