#include "obs/heavy_hitters.h"

#include <algorithm>

#include "common/error.h"

namespace ysmart::obs {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  check(capacity_ > 0, "SpaceSaving capacity must be positive");
}

void SpaceSaving::offer(const std::string& key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  for (auto& e : entries_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{key, weight, 0});
    return;
  }
  // Evict the minimum-count entry; ties go to the lexicographically
  // smallest key so the sketch is deterministic.
  Entry* victim = &entries_[0];
  for (auto& e : entries_)
    if (e.count < victim->count ||
        (e.count == victim->count && e.key < victim->key))
      victim = &e;
  victim->error = victim->count;
  victim->count += weight;
  victim->key = key;
}

void SpaceSaving::merge(const SpaceSaving& other) {
  // Offer the other sketch's entries largest-first (deterministic order)
  // so its genuine heavy hitters survive eviction pressure; inherited
  // eviction errors accumulate onto matching keys.
  std::vector<Entry> theirs = other.top(other.entries_.size());
  for (const Entry& e : theirs) {
    offer(e.key, e.count);
    if (e.error > 0)
      for (auto& mine : entries_)
        if (mine.key == e.key) {
          mine.error += e.error;
          break;
        }
  }
  // offer() already added the counts to total_; counts may overestimate
  // the other stream's weight, so correct to the exact total.
  total_ -= std::min(total_, [&] {
    std::uint64_t offered = 0;
    for (const Entry& e : theirs) offered += e.count;
    return offered;
  }());
  total_ += other.total_;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSaving::clear() {
  entries_.clear();
  total_ = 0;
}

}  // namespace ysmart::obs
