#include "obs/history.h"

#include "common/json.h"
#include "common/strings.h"

namespace ysmart::obs {

void QueryHistoryStore::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.erase(ring_.begin());
}

std::size_t QueryHistoryStore::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void QueryHistoryStore::add(QueryHistoryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.id = next_id_++;
  if (ring_.size() == capacity_) ring_.erase(ring_.begin());
  ring_.push_back(std::move(record));
}

std::size_t QueryHistoryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t QueryHistoryStore::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

std::vector<QueryHistoryRecord> QueryHistoryStore::recent(std::size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryHistoryRecord> out;
  const std::size_t n = (k == 0 || k > ring_.size()) ? ring_.size() : k;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[ring_.size() - 1 - i]);
  return out;
}

bool QueryHistoryStore::at(std::size_t i, QueryHistoryRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= ring_.size()) return false;
  *out = ring_[ring_.size() - 1 - i];
  return true;
}

std::string QueryHistoryStore::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.kv("capacity", static_cast<std::uint64_t>(capacity_));
  w.kv("total_recorded", next_id_ - 1);
  w.key("queries").begin_array();
  for (std::size_t i = ring_.size(); i-- > 0;) {
    const QueryHistoryRecord& r = ring_[i];
    w.begin_object();
    w.kv("id", r.id);
    w.kv("sql", std::string_view(r.sql));
    w.kv("profile", std::string_view(r.profile));
    w.kv("jobs", r.jobs);
    w.kv("waves", r.waves);
    w.kv("sim_total_s", r.sim_total_s);
    w.kv("sim_wall_s", r.sim_wall_s);
    w.kv("host_wall_ms", r.host_wall_ms);
    w.kv("failed", r.failed);
    if (r.failed) w.kv("fail_reason", std::string_view(r.fail_reason));
    w.kv("digest", std::string_view(r.digest));
    w.kv("analyzer_text", std::string_view(r.analyzer_text));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string QueryHistoryStore::table(std::size_t k) const {
  const auto rows = recent(k);
  if (rows.empty()) return "history: no completed queries recorded\n";
  std::string out = strf("history: %zu of %llu recorded (capacity %zu)\n",
                         size(), static_cast<unsigned long long>(total_recorded()),
                         capacity());
  out += "  id  profile   jobs waves    sim_s   status  sql\n";
  for (const auto& r : rows) {
    std::string sql = r.sql;
    for (auto& c : sql)
      if (c == '\n' || c == '\t') c = ' ';
    if (sql.size() > 48) sql = sql.substr(0, 45) + "...";
    out += strf("  %-3llu %-9s %4d %5d %8.1f  %-7s %s\n",
                static_cast<unsigned long long>(r.id), r.profile.c_str(),
                r.jobs, r.waves, r.sim_total_s, r.failed ? "DNF" : "ok",
                sql.c_str());
    if (r.failed) out += strf("      reason: %s\n", r.fail_reason.c_str());
    else if (!r.digest.empty() && r.digest != "ok")
      out += strf("      %s\n", r.digest.c_str());
  }
  return out;
}

void QueryHistoryStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_id_ = 1;
}

}  // namespace ysmart::obs
