#include "obs/plan_view.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/json.h"
#include "common/strings.h"
#include "mr/cluster.h"
#include "mr/metrics.h"
#include "plan/partition_key.h"
#include "stats/stats.h"
#include "storage/dfs.h"
#include "translator/jobspec.h"

namespace ysmart::obs {

const std::vector<std::string> kPlanMetrics = {
    "input_rows",    "input_bytes", "map_out_records", "shuffle_wire_bytes",
    "reduce_groups", "map_s",       "reduce_s",        "total_s"};

double q_error(double est, double act) {
  if (est <= 0 && act <= 0) return 1.0;
  if (est <= 0 || act <= 0) return std::max(est, act) + 1.0;
  return std::max(est / act, act / est);
}

namespace {

constexpr std::uint64_t kUnbounded = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_from_double(double d) {
  if (!(d > 0)) return 0;
  if (d >= 1.8e19) return kUnbounded;
  return static_cast<std::uint64_t>(d);
}

struct PredFile {
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
};

double width_of(const PredFile& f) {
  return f.rows ? static_cast<double>(f.bytes) / static_cast<double>(f.rows)
                : 0.0;
}

bool same_map_work(const MapTaskWork& a, const MapTaskWork& b) {
  return a.input_bytes == b.input_bytes && a.input_records == b.input_records &&
         a.output_records == b.output_records &&
         a.output_bytes_raw == b.output_bytes_raw &&
         a.output_bytes_wire == b.output_bytes_wire &&
         a.local_read == b.local_read;
}

/// Counts and seconds are doubles in comparison rows; print integral
/// values without an exponent so the text report reads like EXPLAIN.
std::string fmt_value(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) return strf("%.0f", v);
  return strf("%.6g", v);
}

}  // namespace

// ---------------------------------------------------------------------------
// Prediction
// ---------------------------------------------------------------------------

QueryPrediction predict_query(const TranslatedQuery& q,
                              const TranslatorProfile& profile,
                              const StatsCatalog& stats, const Dfs& dfs,
                              const ClusterConfig& cfg,
                              const std::string& sql) {
  QueryPrediction out;
  out.sql = sql;
  out.profile = profile.name;
  out.concurrent_submission = profile.concurrent_job_submission;
  const CostModel cost(cfg);

  // Predicted outputs of earlier jobs, resolvable as later jobs' inputs
  // (jobs arrive in topological order).
  std::map<std::string, PredFile> produced;
  std::map<std::string, int> producer_wave;

  for (const auto& job : q.jobs) {
    JobPrediction jp;
    jp.name = job.name;
    jp.map_only = job.kind == TranslatedJob::Kind::MapOnly;
    const bool combine = job.kind == TranslatedJob::Kind::CombineAgg;
    if (!job.partition_key.empty())
      jp.partition_key = job.partition_key.to_string();
    const std::uint64_t groups_raw = stats.estimate_groups(job.partition_key);
    for (const auto& part : job.partition_key.parts)
      for (const auto& id : part)
        if (const TableStats* t = stats.find(id.table); t && t->sampled)
          jp.groups_sampled = true;

    // ---- resolve inputs ----
    struct FileInfo {
      PredFile f;
      bool estimated = false;
      const DfsFile* dfs_file = nullptr;
    };
    std::vector<FileInfo> files;
    int wave = 0;
    for (const auto& in : job.input_files) {
      FileInfo fi;
      if (auto it = produced.find(in.path); it != produced.end()) {
        fi.f = it->second;
        fi.estimated = true;
        wave = std::max(wave, producer_wave[in.path] + 1);
      } else if (dfs.exists(in.path)) {
        const DfsFile& df = dfs.file(in.path);
        fi.f.rows = df.table ? df.table->row_count() : 0;
        fi.f.bytes = df.total_bytes;
        fi.dfs_file = &df;
      } else {
        fi.estimated = true;  // unknown input: predicted empty
      }
      jp.input_rows += fi.f.rows;
      jp.input_bytes += fi.f.bytes;
      jp.input_estimated = jp.input_estimated || fi.estimated;
      files.push_back(fi);
    }
    jp.wave = wave;

    // One pair per record per emission reading the file; jobs lowered
    // without emissions (CombineAgg, scan-only) run an identity-shaped map.
    std::vector<std::uint64_t> emissions_per_file(files.size(), 0);
    for (const auto& e : job.emissions)
      if (e.input_file >= 0 &&
          static_cast<std::size_t>(e.input_file) < files.size())
        ++emissions_per_file[static_cast<std::size_t>(e.input_file)];
    if (job.emissions.empty())
      for (auto& c : emissions_per_file) c = 1;

    // ---- predicted map task list (engine block splitting mirrored) ----
    std::vector<MapTaskWork> works;
    std::uint64_t task_index = 0;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      const FileInfo& f = files[fi];
      const std::uint64_t e_f = emissions_per_file[fi];
      auto add_task = [&](std::uint64_t rows, std::uint64_t bytes,
                          bool local) {
        MapTaskWork w;
        w.input_bytes = bytes;
        w.input_records = rows;
        std::uint64_t out_recs = rows * e_f;
        double out_pre = static_cast<double>(bytes) *
                         static_cast<double>(e_f);
        if (combine) {
          // Map-side partial aggregation collapses each task's output to
          // at most the predicted group count.
          out_recs = groups_raw == kUnbounded ? rows
                                              : std::min(rows, groups_raw);
          out_pre = static_cast<double>(out_recs) * width_of(f.f);
        }
        w.output_records = out_recs;
        w.output_bytes_raw =
            sat_from_double(out_pre * profile.intermediate_expansion);
        w.output_bytes_wire =
            cfg.compression.enabled
                ? static_cast<std::uint64_t>(
                      static_cast<double>(w.output_bytes_raw) *
                      cfg.compression.ratio)
                : w.output_bytes_raw;
        w.local_read = local;
        works.push_back(w);
        ++task_index;
      };
      if (f.dfs_file) {
        for (const auto& b : f.dfs_file->blocks) {
          const int node = static_cast<int>(
              task_index % static_cast<std::uint64_t>(cfg.worker_nodes));
          const bool local =
              std::find(b.replica_nodes.begin(), b.replica_nodes.end(),
                        node) != b.replica_nodes.end();
          add_task(b.row_count, b.bytes, local);
        }
      } else {
        const std::uint64_t bb = std::max<std::uint64_t>(1, dfs.block_bytes());
        const std::uint64_t nblocks =
            f.f.bytes == 0 ? 1 : (f.f.bytes + bb - 1) / bb;
        std::uint64_t rows_left = f.f.rows;
        std::uint64_t bytes_left = f.f.bytes;
        for (std::uint64_t b = 0; b < nblocks; ++b) {
          const std::uint64_t rem = nblocks - b;
          const std::uint64_t r = rows_left / rem;
          const std::uint64_t by = bytes_left / rem;
          add_task(r, by, /*local=*/true);  // placement unknown: assume local
          rows_left -= r;
          bytes_left -= by;
        }
      }
    }
    jp.map_tasks = works.size();
    for (const auto& w : works) {
      jp.map_output_records += w.output_records;
      jp.map_output_bytes_raw += w.output_bytes_raw;
      jp.map_output_bytes_wire += w.output_bytes_wire;
    }
    for (const auto& w : works) {
      bool found = false;
      for (auto& g : jp.map_work)
        if (same_map_work(g.work, w)) {
          ++g.count;
          found = true;
          break;
        }
      if (!found) jp.map_work.push_back(PredictedMapGroup{1, w});
    }

    jp.map_slots = cfg.total_map_slots();
    jp.reduce_slots = cfg.total_reduce_slots();
    jp.map_cpu_multiplier = profile.map_cpu_multiplier;
    jp.reduce_cpu_multiplier = profile.reduce_cpu_multiplier;
    jp.sched_delay_s =
        cfg.contention.enabled ? cfg.contention.mean_sched_delay_s : 0.0;
    {
      std::vector<double> times;
      times.reserve(works.size());
      for (const auto& g : jp.map_work) {
        const double t =
            cost.map_task_seconds(g.work, profile.map_cpu_multiplier);
        for (std::uint64_t i = 0; i < g.count; ++i) times.push_back(t);
      }
      jp.map_time_s =
          times.empty() ? 0.0 : CostModel::makespan(times, jp.map_slots);
    }

    // ---- per-stage output-cardinality estimates ----
    std::map<int, std::pair<std::uint64_t, double>> consumer_rows;
    if (job.emissions.empty()) {
      for (std::size_t fi = 0; fi < files.size(); ++fi)
        consumer_rows[static_cast<int>(fi)] = {files[fi].f.rows,
                                               width_of(files[fi].f)};
    } else {
      for (const auto& e : job.emissions)
        for (const auto& c : e.consumers)
          if (e.input_file >= 0 &&
              static_cast<std::size_t>(e.input_file) < files.size())
            consumer_rows[c.consumer_id] = {
                files[static_cast<std::size_t>(e.input_file)].f.rows,
                width_of(files[static_cast<std::size_t>(e.input_file)].f)};
    }
    std::vector<std::pair<std::uint64_t, double>> stage_rows(
        job.stages.size(), {0, 0.0});
    auto in_of = [&](const Stage::In& in) -> std::pair<std::uint64_t, double> {
      if (in.from_consumer) {
        auto it = consumer_rows.find(in.index);
        return it == consumer_rows.end()
                   ? std::pair<std::uint64_t, double>{0, 0.0}
                   : it->second;
      }
      if (in.index >= 0 && static_cast<std::size_t>(in.index) < stage_rows.size())
        return stage_rows[static_cast<std::size_t>(in.index)];
      return {0, 0.0};
    };
    for (std::size_t si = 0; si < job.stages.size(); ++si) {
      const Stage& st = job.stages[si];
      const PlanNode* op = st.op;
      if (!op || st.inputs.empty()) continue;
      switch (op->kind) {
        case PlanKind::Scan:
        case PlanKind::SP:
        case PlanKind::Sort:
          stage_rows[si] = in_of(st.inputs[0]);
          break;
        case PlanKind::Agg: {
          const auto [r, w] = in_of(st.inputs[0]);
          const std::uint64_t g =
              stats.estimate_groups(agg_full_partition_key(*op));
          stage_rows[si] = {g == kUnbounded ? r : std::min(r, g), w};
          break;
        }
        case PlanKind::Join: {
          const auto [l, wl] = in_of(st.inputs[0]);
          const auto [r, wr] =
              in_of(st.inputs.size() > 1 ? st.inputs[1] : st.inputs[0]);
          const std::uint64_t g =
              stats.estimate_groups(join_partition_key(*op));
          std::uint64_t est;
          if (g == kUnbounded || g == 0) {
            est = std::max(l, r);  // unknown key NDV: containment fallback
          } else {
            est = sat_from_double(static_cast<double>(l) *
                                  static_cast<double>(r) /
                                  static_cast<double>(g));
          }
          stage_rows[si] = {est, wl + wr};
          break;
        }
      }
    }
    for (std::size_t oi = 0; oi < job.outputs.size(); ++oi) {
      for (std::size_t si = 0; si < job.stages.size(); ++si) {
        if (job.stages[si].output_index != static_cast<int>(oi)) continue;
        const auto [r, w] = stage_rows[si];
        const std::uint64_t bytes =
            sat_from_double(static_cast<double>(r) * w);
        jp.output_rows += r;
        jp.output_bytes += bytes;
        produced[job.outputs[oi].path] = PredFile{r, bytes};
        producer_wave[job.outputs[oi].path] = jp.wave;
      }
    }

    // ---- reduce phase (uniform per-real-task work) ----
    if (!jp.map_only) {
      jp.target_reduce_tasks =
          job.num_reduce_tasks > 0
              ? static_cast<std::uint64_t>(job.num_reduce_tasks)
              : static_cast<std::uint64_t>(cfg.total_reduce_slots());
      jp.reduce_records = jp.map_output_records;
      jp.groups_unbounded = groups_raw == kUnbounded;
      jp.reduce_groups = std::min(groups_raw, jp.reduce_records);
      ReduceTaskWork rw;
      const std::uint64_t t = std::max<std::uint64_t>(1, jp.target_reduce_tasks);
      rw.shuffle_bytes_raw = jp.map_output_bytes_raw / t;
      rw.shuffle_bytes_wire = jp.map_output_bytes_wire / t;
      rw.input_records = jp.reduce_records / t;
      rw.output_records = jp.output_rows / t;
      rw.output_bytes = jp.output_bytes / t;
      jp.reduce_work.push_back(PredictedReduceGroup{t, rw});
      const double ts =
          cost.reduce_task_seconds(rw, profile.reduce_cpu_multiplier);
      jp.reduce_time_s = CostModel::makespan(
          std::vector<double>(static_cast<std::size_t>(t), ts),
          jp.reduce_slots);
    }

    out.jobs.push_back(std::move(jp));
  }

  int waves = 0;
  for (const auto& j : out.jobs) waves = std::max(waves, j.wave + 1);
  out.waves = waves;
  if (out.concurrent_submission && waves > 0) {
    std::vector<double> wave_max(static_cast<std::size_t>(waves), 0.0);
    for (const auto& j : out.jobs)
      wave_max[static_cast<std::size_t>(j.wave)] =
          std::max(wave_max[static_cast<std::size_t>(j.wave)],
                   j.total_time_s());
    for (double w : wave_max) out.wall_time_s += w;
  } else {
    out.wall_time_s = out.total_time_s();
  }
  return out;
}

double QueryPrediction::total_time_s() const {
  double t = 0;
  for (const auto& j : jobs) t += j.total_time_s();
  return t;
}

std::uint64_t QueryPrediction::shuffle_bytes_wire() const {
  std::uint64_t b = 0;
  for (const auto& j : jobs)
    if (!j.map_only) b += j.map_output_bytes_wire;
  return b;
}

void QueryPrediction::to_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("profile", std::string_view(profile));
  w.kv("sql", std::string_view(sql));
  w.kv("concurrent_submission", concurrent_submission);
  w.kv("waves", waves);
  w.kv("wall_s", wall_time_s);
  w.kv("total_s", total_time_s());
  w.kv("shuffle_wire", shuffle_bytes_wire());
  w.key("jobs").begin_array();
  for (const auto& j : jobs) {
    w.begin_object();
    w.kv("name", std::string_view(j.name));
    w.kv("map_only", j.map_only);
    w.kv("wave", j.wave);
    w.kv("partition_key", std::string_view(j.partition_key));
    w.kv("input_rows", j.input_rows);
    w.kv("input_bytes", j.input_bytes);
    w.kv("input_estimated", j.input_estimated);
    w.kv("map_tasks", j.map_tasks);
    w.kv("map_out_records", j.map_output_records);
    w.kv("map_out_bytes_raw", j.map_output_bytes_raw);
    w.kv("map_out_bytes_wire", j.map_output_bytes_wire);
    w.kv("reduce_records", j.reduce_records);
    w.kv("reduce_groups", j.reduce_groups);
    w.kv("groups_unbounded", j.groups_unbounded);
    w.kv("groups_sampled", j.groups_sampled);
    w.kv("target_reduce_tasks", j.target_reduce_tasks);
    w.kv("map_slots", j.map_slots);
    w.kv("reduce_slots", j.reduce_slots);
    w.kv("output_rows", j.output_rows);
    w.kv("output_bytes", j.output_bytes);
    w.kv("sched_s", j.sched_delay_s);
    w.kv("map_s", j.map_time_s);
    w.kv("reduce_s", j.reduce_time_s);
    w.kv("total_s", j.total_time_s());
    w.key("map_work").begin_array();
    for (const auto& g : j.map_work) {
      w.begin_object();
      w.kv("count", g.count);
      w.kv("input_bytes", g.work.input_bytes);
      w.kv("input_records", g.work.input_records);
      w.kv("output_records", g.work.output_records);
      w.kv("output_bytes_raw", g.work.output_bytes_raw);
      w.kv("output_bytes_wire", g.work.output_bytes_wire);
      w.kv("local_read", g.work.local_read);
      w.end_object();
    }
    w.end_array();
    w.key("reduce_work").begin_array();
    for (const auto& g : j.reduce_work) {
      w.begin_object();
      w.kv("count", g.count);
      w.kv("shuffle_bytes_raw", g.work.shuffle_bytes_raw);
      w.kv("shuffle_bytes_wire", g.work.shuffle_bytes_wire);
      w.kv("input_records", g.work.input_records);
      w.kv("output_records", g.work.output_records);
      w.kv("output_bytes", g.work.output_bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string QueryPrediction::json() const {
  JsonWriter w;
  to_json(w);
  return w.take();
}

// ---------------------------------------------------------------------------
// Join against actuals
// ---------------------------------------------------------------------------

PlanReport join_plan_actuals(const QueryPrediction& pred,
                             const QueryTaskSamples& samples,
                             const QueryMetrics& metrics) {
  PlanReport rep;
  rep.prediction = pred;
  rep.executed = !metrics.jobs.empty();
  rep.actual_jobs = static_cast<int>(metrics.jobs.size());
  int max_wave = -1;
  for (const auto& sj : samples.jobs) max_wave = std::max(max_wave, sj.wave);
  rep.actual_waves =
      max_wave >= 0 ? max_wave + 1 : static_cast<int>(metrics.jobs.size());
  rep.actual_wall_s = metrics.wall_time_s;
  for (const auto& j : metrics.jobs)
    rep.actual_shuffle_wire += j.shuffle_bytes_wire;

  const std::size_t n = kPlanMetrics.size();
  std::vector<double> est_sum(n, 0.0), act_sum(n, 0.0);

  for (const auto& jp : pred.jobs) {
    JobComparison jc;
    jc.name = jp.name;
    jc.map_only = jp.map_only;
    jc.wave_pred = jp.wave;
    jc.partition_key = jp.partition_key;

    const JobMetrics* m = nullptr;
    for (const auto& jm : metrics.jobs)
      if (jm.job_name == jp.name) {
        m = &jm;
        break;
      }
    const JobTaskSamples* s = nullptr;
    for (const auto& sj : samples.jobs)
      if (sj.job_name == jp.name) {
        s = &sj;
        break;
      }
    jc.wave_act = s ? s->wave : -1;
    std::uint64_t act_groups = 0;
    if (s)
      for (const auto& t : s->reduce_tasks) act_groups += t.key_groups;

    const double est[] = {
        static_cast<double>(jp.input_rows),
        static_cast<double>(jp.input_bytes),
        static_cast<double>(jp.map_output_records),
        jp.map_only ? 0.0 : static_cast<double>(jp.map_output_bytes_wire),
        jp.map_only ? 0.0 : static_cast<double>(jp.reduce_groups),
        jp.map_time_s,
        jp.reduce_time_s,
        jp.total_time_s()};
    const double act[] = {
        m ? static_cast<double>(m->map.input_records) : 0.0,
        m ? static_cast<double>(m->map.input_bytes) : 0.0,
        m ? static_cast<double>(m->map.output_records) : 0.0,
        m ? static_cast<double>(m->shuffle_bytes_wire) : 0.0,
        static_cast<double>(act_groups),
        m ? m->map_time_s : 0.0,
        m ? m->reduce_time_s : 0.0,
        m ? m->total_time_s() : 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      ComparisonRow row;
      row.metric = kPlanMetrics[i];
      row.est = est[i];
      row.act = act[i];
      row.q = q_error(est[i], act[i]);
      if (kPlanMetrics[i] == "reduce_groups") {
        row.sampled = jp.groups_sampled;
        row.unbounded = jp.groups_unbounded;
      }
      jc.max_q = std::max(jc.max_q, row.q);
      est_sum[i] += est[i];
      act_sum[i] += act[i];
      jc.rows.push_back(std::move(row));
    }
    rep.max_q = std::max(rep.max_q, jc.max_q);
    rep.jobs.push_back(std::move(jc));
  }

  for (std::size_t i = 0; i < n; ++i) {
    ComparisonRow row;
    row.metric = kPlanMetrics[i];
    row.est = est_sum[i];
    row.act = act_sum[i];
    row.q = q_error(est_sum[i], act_sum[i]);
    rep.max_q = std::max(rep.max_q, row.q);
    rep.query.push_back(std::move(row));
  }

  for (const auto& jc : rep.jobs)
    for (const auto& row : jc.rows)
      rep.ranked.push_back(RankedMiss{jc.name, row.metric, row.est, row.act,
                                      row.q});
  std::sort(rep.ranked.begin(), rep.ranked.end(),
            [](const RankedMiss& a, const RankedMiss& b) {
              if (a.q != b.q) return a.q > b.q;
              if (a.job != b.job) return a.job < b.job;
              return a.metric < b.metric;
            });
  if (rep.ranked.size() > 32) rep.ranked.resize(32);
  return rep;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string PlanReport::text() const {
  std::string s = strf("== plan view (%s) ==\n", prediction.profile.c_str());
  s += strf("predicted: %zu job(s), %d wave(s), %.3f sim s",
            prediction.jobs.size(), prediction.waves, prediction.wall_time_s);
  if (executed) {
    s += strf("  |  actual: %d job(s), %d wave(s), %.3f sim s  (q %.2f)\n",
              actual_jobs, actual_waves, actual_wall_s,
              q_error(prediction.wall_time_s, actual_wall_s));
  } else {
    s += "  |  not executed\n";
  }
  for (const auto& jc : jobs) {
    s += strf("job %s  (wave %d", jc.name.c_str(), jc.wave_pred);
    if (executed && jc.wave_act != jc.wave_pred && jc.wave_act >= 0)
      s += strf(" pred / %d act", jc.wave_act);
    if (!jc.partition_key.empty())
      s += strf(", pk %s", jc.partition_key.c_str());
    if (jc.map_only) s += ", map-only";
    s += ")\n";
    for (const auto& row : jc.rows) {
      if (jc.map_only &&
          (row.metric == "reduce_groups" || row.metric == "reduce_s" ||
           row.metric == "shuffle_wire_bytes"))
        continue;  // meaningless for map-only jobs
      s += strf("  %-20s est %-14s act %-14s q %.2f%s%s\n", row.metric.c_str(),
                fmt_value(row.est).c_str(), fmt_value(row.act).c_str(), row.q,
                row.sampled ? "  [sampled]" : "",
                row.unbounded ? "  [unbounded]" : "");
    }
  }
  s += "== mis-estimates (q-error ranked) ==\n";
  std::size_t shown = 0;
  for (const auto& r : ranked) {
    if (r.q <= 1.0 || shown >= 8) break;
    ++shown;
    s += strf("  %zu. %s %s  est %s  act %s  q %.2f\n", shown, r.job.c_str(),
              r.metric.c_str(), fmt_value(r.est).c_str(),
              fmt_value(r.act).c_str(), r.q);
  }
  if (shown == 0) s += "  (none)\n";
  return s;
}

namespace {

void row_to_json(JsonWriter& w, const ComparisonRow& row) {
  w.begin_object();
  w.kv("metric", std::string_view(row.metric));
  w.kv("est", row.est);
  w.kv("act", row.act);
  w.kv("q", row.q);
  w.kv("sampled", row.sampled);
  w.kv("unbounded", row.unbounded);
  w.end_object();
}

}  // namespace

void PlanReport::to_json(JsonWriter& w, bool full) const {
  w.begin_object();
  w.kv("profile", std::string_view(prediction.profile));
  w.kv("sql", std::string_view(prediction.sql));
  w.kv("executed", executed);
  w.kv("max_q", max_q);
  w.key("predicted").begin_object();
  w.kv("jobs", static_cast<std::uint64_t>(prediction.jobs.size()));
  w.kv("waves", prediction.waves);
  w.kv("wall_s", prediction.wall_time_s);
  w.kv("shuffle_wire", prediction.shuffle_bytes_wire());
  w.end_object();
  w.key("actual").begin_object();
  w.kv("jobs", actual_jobs);
  w.kv("waves", actual_waves);
  w.kv("wall_s", actual_wall_s);
  w.kv("shuffle_wire", actual_shuffle_wire);
  w.end_object();
  w.key("query").begin_array();
  for (const auto& row : query) row_to_json(w, row);
  w.end_array();
  w.key("jobs").begin_array();
  for (const auto& jc : jobs) {
    w.begin_object();
    w.kv("name", std::string_view(jc.name));
    w.kv("map_only", jc.map_only);
    w.kv("wave_pred", jc.wave_pred);
    w.kv("wave_act", jc.wave_act);
    w.kv("partition_key", std::string_view(jc.partition_key));
    w.kv("max_q", jc.max_q);
    w.key("rows").begin_array();
    for (const auto& row : jc.rows) row_to_json(w, row);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("ranked").begin_array();
  for (const auto& r : ranked) {
    w.begin_object();
    w.kv("job", std::string_view(r.job));
    w.kv("metric", std::string_view(r.metric));
    w.kv("est", r.est);
    w.kv("act", r.act);
    w.kv("q", r.q);
    w.end_object();
  }
  w.end_array();
  if (full) {
    w.key("prediction");
    prediction.to_json(w);
  }
  w.end_object();
}

std::string PlanReport::json(bool full) const {
  JsonWriter w;
  to_json(w, full);
  return w.take();
}

std::string render_whatif(const PlanReport& merged,
                          const PlanReport& baseline) {
  const QueryPrediction& a = merged.prediction;
  const QueryPrediction& b = baseline.prediction;
  std::string s =
      strf("== what-if: %s vs %s ==\n", a.profile.c_str(), b.profile.c_str());
  auto line = [&](const char* label, const std::string& va,
                  const std::string& vb) {
    s += strf("  %-22s %-18s %s\n", label, va.c_str(), vb.c_str());
  };
  line("", a.profile, b.profile);
  line("jobs (pred)", strf("%zu", a.jobs.size()), strf("%zu", b.jobs.size()));
  line("waves (pred)", strf("%d", a.waves), strf("%d", b.waves));
  line("sim wall s (pred)", strf("%.3f", a.wall_time_s),
       strf("%.3f", b.wall_time_s));
  line("shuffle wire (pred)", strf("%llu", static_cast<unsigned long long>(
                                               a.shuffle_bytes_wire())),
       strf("%llu",
            static_cast<unsigned long long>(b.shuffle_bytes_wire())));
  if (merged.executed || baseline.executed) {
    auto actual = [&](const PlanReport& r, auto fmt) {
      return r.executed ? fmt() : std::string("-");
    };
    line("jobs (act)",
         actual(merged, [&] { return strf("%d", merged.actual_jobs); }),
         actual(baseline, [&] { return strf("%d", baseline.actual_jobs); }));
    line("waves (act)",
         actual(merged, [&] { return strf("%d", merged.actual_waves); }),
         actual(baseline, [&] { return strf("%d", baseline.actual_waves); }));
    line("sim wall s (act)",
         actual(merged, [&] { return strf("%.3f", merged.actual_wall_s); }),
         actual(baseline,
                [&] { return strf("%.3f", baseline.actual_wall_s); }));
    line("shuffle wire (act)",
         actual(merged,
                [&] {
                  return strf("%llu", static_cast<unsigned long long>(
                                          merged.actual_shuffle_wire));
                }),
         actual(baseline, [&] {
           return strf("%llu", static_cast<unsigned long long>(
                                   baseline.actual_shuffle_wire));
         }));
    line("max q-error",
         actual(merged, [&] { return strf("%.2f", merged.max_q); }),
         actual(baseline, [&] { return strf("%.2f", baseline.max_q); }));
  }
  if (a.wall_time_s > 0 && b.wall_time_s > 0)
    s += strf("  predicted: %s %.2fx %s than %s\n", a.profile.c_str(),
              a.wall_time_s <= b.wall_time_s
                  ? b.wall_time_s / a.wall_time_s
                  : a.wall_time_s / b.wall_time_s,
              a.wall_time_s <= b.wall_time_s ? "faster" : "slower",
              b.profile.c_str());
  if (merged.executed && baseline.executed && merged.actual_wall_s > 0 &&
      baseline.actual_wall_s > 0)
    s += strf("  actual:    %s %.2fx %s than %s\n", a.profile.c_str(),
              merged.actual_wall_s <= baseline.actual_wall_s
                  ? baseline.actual_wall_s / merged.actual_wall_s
                  : merged.actual_wall_s / baseline.actual_wall_s,
              merged.actual_wall_s <= baseline.actual_wall_s ? "faster"
                                                             : "slower",
              b.profile.c_str());
  return s;
}

// ---------------------------------------------------------------------------
// Store + calibration ring
// ---------------------------------------------------------------------------

namespace {

double column_quantile(const std::vector<CalibrationSample>& samples,
                       std::size_t metric, int pct) {
  std::vector<double> qs;
  qs.reserve(samples.size());
  for (const auto& s : samples)
    if (metric < s.q.size()) qs.push_back(s.q[metric]);
  if (qs.empty()) return 0.0;
  std::sort(qs.begin(), qs.end());
  if (pct >= 100) return qs.back();
  // Lower quantile (house median convention): index floor((n-1)*p/100).
  return qs[((qs.size() - 1) * static_cast<std::size_t>(pct)) / 100];
}

}  // namespace

double CalibrationSnapshot::p50(std::size_t metric) const {
  return column_quantile(samples, metric, 50);
}
double CalibrationSnapshot::p95(std::size_t metric) const {
  return column_quantile(samples, metric, 95);
}
double CalibrationSnapshot::max(std::size_t metric) const {
  return column_quantile(samples, metric, 100);
}

std::string calibration_json(const CalibrationSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.kv("capacity", static_cast<std::uint64_t>(snap.capacity));
  w.kv("total_recorded", snap.total_recorded);
  w.key("metrics").begin_array();
  for (const auto& m : kPlanMetrics) w.value(std::string_view(m));
  w.end_array();
  w.key("samples").begin_array();
  for (const auto& s : snap.samples) {
    w.begin_object();
    w.kv("id", s.id);
    w.kv("profile", std::string_view(s.profile));
    w.kv("jobs", s.jobs);
    w.key("q").begin_array();
    for (double q : s.q) w.value(q);
    w.end_array();
    w.kv("max_q", s.max_q);
    w.end_object();
  }
  w.end_array();
  w.key("p50").begin_array();
  for (std::size_t i = 0; i < kPlanMetrics.size(); ++i) w.value(snap.p50(i));
  w.end_array();
  w.key("p95").begin_array();
  for (std::size_t i = 0; i < kPlanMetrics.size(); ++i) w.value(snap.p95(i));
  w.end_array();
  w.key("max").begin_array();
  for (std::size_t i = 0; i < kPlanMetrics.size(); ++i) w.value(snap.max(i));
  w.end_array();
  w.end_object();
  return w.take();
}

void PlanViewStore::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool PlanViewStore::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void PlanViewStore::record_prediction(QueryPrediction p) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.size() >= kMaxPending) pending_.erase(pending_.begin());
  pending_.push_back(std::move(p));
}

bool PlanViewStore::attach_actuals(const QueryTaskSamples& samples,
                                   const QueryMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  // Most recent pending prediction whose job list matches the run.
  for (std::size_t i = pending_.size(); i-- > 0;) {
    const QueryPrediction& p = pending_[i];
    if (p.jobs.size() != metrics.jobs.size()) continue;
    bool match = true;
    for (std::size_t j = 0; j < p.jobs.size(); ++j)
      if (p.jobs[j].name != metrics.jobs[j].job_name) {
        match = false;
        break;
      }
    if (!match) continue;
    PlanReport rep = join_plan_actuals(p, samples, metrics);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    CalibrationSample cal;
    cal.id = next_id_++;
    cal.profile = rep.prediction.profile;
    cal.jobs = static_cast<int>(rep.prediction.jobs.size());
    for (const auto& row : rep.query) cal.q.push_back(row.q);
    cal.max_q = rep.max_q;
    if (ring_.size() >= capacity_) ring_.erase(ring_.begin());
    ring_.push_back(std::move(cal));
    if (reports_.size() >= kMaxReports) reports_.erase(reports_.begin());
    reports_.push_back(std::move(rep));
    return true;
  }
  return false;
}

std::size_t PlanViewStore::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

bool PlanViewStore::last_prediction(QueryPrediction* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return false;
  if (out) *out = pending_.back();
  return true;
}

std::size_t PlanViewStore::report_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

bool PlanViewStore::last_report(PlanReport* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (reports_.empty()) return false;
  if (out) *out = reports_.back();
  return true;
}

CalibrationSnapshot PlanViewStore::calibration() const {
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationSnapshot snap;
  snap.capacity = capacity_;
  snap.total_recorded = next_id_ - 1;
  snap.samples = ring_;
  return snap;
}

std::string PlanViewStore::json() const {
  PlanReport last;
  bool has_last = false;
  std::size_t report_count = 0;
  CalibrationSnapshot snap;
  bool is_enabled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    is_enabled = enabled_;
    snap.capacity = capacity_;
    snap.total_recorded = next_id_ - 1;
    snap.samples = ring_;
    report_count = reports_.size();
    if (!reports_.empty()) {
      last = reports_.back();
      has_last = true;
    }
  }
  JsonWriter w;
  w.begin_object();
  w.kv("enabled", is_enabled);
  w.kv("reports", static_cast<std::uint64_t>(report_count));
  w.key("last");
  if (has_last)
    last.to_json(w, /*full=*/true);
  else
    w.raw("null");
  w.key("calibration").raw(calibration_json(snap));
  w.end_object();
  return w.take();
}

void PlanViewStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  reports_.clear();
  ring_.clear();
  next_id_ = 1;
  // enabled_ survives, like HostProfiler::clear.
}

}  // namespace ysmart::obs
