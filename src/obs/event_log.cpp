#include "obs/event_log.h"

#include <cstdio>

#include "common/json.h"

namespace ysmart::obs {

std::string_view to_string(EventLevel level) {
  switch (level) {
    case EventLevel::Debug: return "debug";
    case EventLevel::Info: return "info";
    case EventLevel::Warn: return "warn";
    case EventLevel::Error: return "error";
  }
  return "info";
}

std::string_view to_string(EventCategory category) {
  switch (category) {
    case EventCategory::Translate: return "translate";
    case EventCategory::Schedule: return "schedule";
    case EventCategory::Map: return "map";
    case EventCategory::Shuffle: return "shuffle";
    case EventCategory::Reduce: return "reduce";
    case EventCategory::PostJob: return "post-job";
    case EventCategory::Fault: return "fault";
  }
  return "schedule";
}

namespace {

std::string number_json(double v) {
  JsonWriter w;
  w.value(v);
  return w.take();
}

}  // namespace

EventField::EventField(std::string_view k, std::uint64_t v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, std::int64_t v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, int v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, double v)
    : key(k), json(number_json(v)) {}
EventField::EventField(std::string_view k, std::string_view v)
    : key(k), json('"' + json_escape(v) + '"') {}
EventField::EventField(std::string_view k, const char* v)
    : EventField(k, std::string_view(v)) {}

EventLog::EventLog() : epoch_(std::chrono::steady_clock::now()) {}

double EventLog::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLog::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) {
    ring_.erase(ring_.begin());
    ++dropped_;
  }
}

std::size_t EventLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void EventLog::emit(EventLevel level, EventCategory category,
                    std::string_view name, double sim_s,
                    std::vector<EventField> fields) {
  Event e;
  e.level = level;
  e.category = category;
  e.name = std::string(name);
  e.sim_s = sim_s;
  e.fields = std::move(fields);

  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  e.wall_us = wall_now_us();
  if (sink_) {
    *sink_ << render(e, IncludeWall::Yes) << '\n';
    sink_->flush();
    if (!sink_->good()) {
      std::fprintf(stderr, "warning: event sink write failed, closing %s\n",
                   sink_path_.c_str());
      sink_.reset();
    }
  }
  if (ring_.size() == capacity_) {
    ring_.erase(ring_.begin());
    ++dropped_;
  }
  ring_.push_back(std::move(e));
}

bool EventLog::open_sink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto out = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*out) {
    std::fprintf(stderr, "warning: cannot open event sink %s\n", path.c_str());
    return false;
  }
  sink_ = std::move(out);
  sink_path_ = path;
  return true;
}

void EventLog::close_sink() {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.reset();
}

bool EventLog::sink_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_ != nullptr;
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t EventLog::total_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

std::string EventLog::render(const Event& e, IncludeWall wall) {
  JsonWriter w;
  w.begin_object();
  w.kv("seq", e.seq);
  w.kv("level", to_string(e.level));
  w.kv("category", to_string(e.category));
  w.kv("name", std::string_view(e.name));
  w.kv("sim_s", e.sim_s);
  if (wall == IncludeWall::Yes) w.kv("wall_us", e.wall_us);
  w.key("fields").begin_object();
  for (const auto& f : e.fields) w.key(f.key).raw(f.json);
  w.end_object();
  w.end_object();
  return w.take();
}

std::string EventLog::jsonl(IncludeWall wall) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : ring_) {
    out += render(e, wall);
    out += '\n';
  }
  return out;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

}  // namespace ysmart::obs
