#include "obs/metrics_registry.h"

#include <algorithm>

#include "common/json.h"
#include "common/strings.h"

namespace ysmart::obs {

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set_max(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_names_.emplace(name);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), value);
  else
    it->second = std::max(it->second, value);
}

void MetricsRegistry::set(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_names_.emplace(name);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), Histogram{}).first;
  Histogram& h = it->second;
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  std::size_t b = 0;
  while (b < kBucketBounds.size() && value > kBucketBounds[b]) ++b;
  ++h.buckets[b];
}

void MetricsRegistry::note(std::string_view name, std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  notes_[std::string(name)] = std::string(text);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string MetricsRegistry::note_of(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = notes_.find(name);
  return it == notes_.end() ? std::string() : it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [k, v] : counters_) {
    if (gauge_names_.count(k))
      snap.gauges.emplace(k, v);
    else
      snap.counters.emplace(k, v);
  }
  for (const auto& [k, h] : hists_) snap.histograms.emplace(k, h);
  for (const auto& [k, v] : notes_) snap.notes.emplace(k, v);
  return snap;
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  return it == hists_.end() ? Histogram{} : it->second;
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_) w.kv(std::string_view(k), v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : hists_) {
    w.key(k).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.key("bucket_bounds").begin_array();
    for (double b : kBucketBounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("notes").begin_object();
  for (const auto& [k, v] : notes_) w.kv(std::string_view(k), std::string_view(v));
  w.end_object();
  w.end_object();
  return w.take();
}

std::string MetricsRegistry::summary_line() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto get = [&](const char* name) -> std::uint64_t {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  };
  return strf(
      "jobs=%llu failed=%llu map_tasks=%llu shuffle_wire=%.1fMB "
      "dfs_write=%.1fMB remote_read=%.1fMB retries=%llu",
      static_cast<unsigned long long>(get("engine.jobs.run")),
      static_cast<unsigned long long>(get("engine.jobs.failed")),
      static_cast<unsigned long long>(get("engine.map.tasks")),
      get("engine.shuffle.bytes_wire") / 1048576.0,
      get("engine.dfs.write_bytes") / 1048576.0,
      get("engine.map.remote_read_bytes") / 1048576.0,
      static_cast<unsigned long long>(get("engine.tasks.retries")));
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauge_names_.clear();
  hists_.clear();
  notes_.clear();
}

}  // namespace ysmart::obs
