#include "obs/analyzer.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "common/strings.h"

namespace ysmart::obs {

namespace {

PhaseSkewStats phase_stats(const std::vector<TaskSample>& tasks,
                           const AnalyzerOptions& opts) {
  PhaseSkewStats st;
  st.tasks = tasks.size();
  if (tasks.empty()) return st;
  std::vector<double> times;
  times.reserve(tasks.size());
  for (const auto& t : tasks) {
    times.push_back(t.sim_seconds);
    st.total_s += t.sim_seconds;
    st.max_s = std::max(st.max_s, t.sim_seconds);
  }
  st.mean_s = st.total_s / static_cast<double>(times.size());
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  st.median_s = sorted[(sorted.size() - 1) / 2];  // lower median
  double var = 0;
  for (double t : times) var += (t - st.mean_s) * (t - st.mean_s);
  var /= static_cast<double>(times.size());
  st.cv = st.mean_s > 0 ? std::sqrt(var) / st.mean_s : 0.0;
  if (times.size() >= 2 && st.median_s > 0)
    for (std::size_t i = 0; i < times.size(); ++i)
      if (times[i] > opts.straggler_threshold * st.median_s)
        st.stragglers.push_back(static_cast<int>(i));
  return st;
}

std::string render_key(const JobAnalysis& job, const std::string& key) {
  if (job.key_columns.empty()) return key;
  std::string cols;
  for (const auto& c : job.key_columns) {
    if (!cols.empty()) cols += ",";
    cols += c;
  }
  return cols + "=" + key;
}

std::string fmt_mb(std::uint64_t bytes) {
  return strf("%.1f MB", static_cast<double>(bytes) / 1048576.0);
}

void phase_json(JsonWriter& w, const PhaseSkewStats& st) {
  w.begin_object();
  w.kv("tasks", static_cast<std::uint64_t>(st.tasks));
  w.kv("total_s", st.total_s);
  w.kv("max_s", st.max_s);
  w.kv("median_s", st.median_s);
  w.kv("mean_s", st.mean_s);
  w.kv("cv", st.cv);
  w.kv("stragglers", static_cast<std::uint64_t>(st.stragglers.size()));
  w.end_object();
}

}  // namespace

AnalyzerReport analyze_query(const QueryTaskSamples& query,
                             const AnalyzerOptions& opts) {
  AnalyzerReport rep;

  // ---- per-job statistics ----
  for (const auto& js : query.jobs) {
    JobAnalysis ja;
    ja.name = js.job_name;
    ja.wave = js.wave;
    ja.map_only = js.map_only;
    ja.failed = js.failed;
    ja.sched_delay_s = js.sched_delay_s;
    ja.map_time_s = js.map_time_s;
    ja.reduce_time_s = js.reduce_time_s;
    ja.total_s = js.total_time_s();
    ja.target_reduce_tasks = js.target_reduce_tasks;
    ja.key_columns = js.key_columns;
    ja.map = phase_stats(js.map_tasks, opts);
    ja.reduce = phase_stats(js.reduce_tasks, opts);

    std::uint64_t job_shuffle = 0;
    for (const auto& t : js.reduce_tasks) {
      job_shuffle += t.shuffle_bytes_raw;
      ja.reduce_records += t.input_records;
    }
    // Heaviest partitions by raw shuffle bytes; ties by partition index.
    // Partitions that received no data are never "heavy" — skip them so
    // jobs hashing into fewer than top_partitions non-empty partitions
    // don't pad the report with zeros.
    std::vector<const TaskSample*> parts;
    for (const auto& t : js.reduce_tasks) {
      if (t.shuffle_bytes_raw == 0 && t.input_records == 0) continue;
      parts.push_back(&t);
    }
    std::stable_sort(parts.begin(), parts.end(),
                     [](const TaskSample* a, const TaskSample* b) {
                       return a->shuffle_bytes_raw > b->shuffle_bytes_raw;
                     });
    const std::size_t k =
        std::min(parts.size(), static_cast<std::size_t>(
                                   std::max(0, opts.top_partitions)));
    for (std::size_t i = 0; i < k; ++i) {
      const TaskSample& t = *parts[i];
      HeavyPartition hp;
      hp.partition = t.index;
      hp.sim_seconds = t.sim_seconds;
      hp.shuffle_bytes_raw = t.shuffle_bytes_raw;
      hp.shuffle_share = job_shuffle > 0
                             ? static_cast<double>(t.shuffle_bytes_raw) /
                                   static_cast<double>(job_shuffle)
                             : 0.0;
      hp.key_groups = t.key_groups;
      hp.records = t.input_records;
      hp.tag_records = t.tag_records;
      ja.top_partitions.push_back(std::move(hp));
    }
    ja.hot_keys = js.hot_keys.top(
        static_cast<std::size_t>(std::max(0, opts.top_keys)));
    rep.jobs.push_back(std::move(ja));
  }

  // ---- critical path over dependency waves ----
  // Jobs arrive in execution order with non-decreasing wave ids;
  // standalone engine runs carry wave -1 and are treated as serial (each
  // its own wave). The fold below reproduces run_translated()'s
  // wall_time_s accumulation operation-for-operation — per wave,
  // elapsed = max over jobs (first max wins ties), then summed in wave
  // order — so critical_path_s == wall_time_s exactly.
  for (std::size_t i = 0; i < rep.jobs.size();) {
    WaveAnalysis wa;
    const int wave_id = rep.jobs[i].wave;
    wa.wave = wave_id < 0 ? static_cast<int>(i) : wave_id;
    std::size_t j = i;
    for (; j < rep.jobs.size(); ++j) {
      if (wave_id < 0 && j > i) break;  // standalone: one job per wave
      if (wave_id >= 0 && rep.jobs[j].wave != wave_id) break;
      if (wa.critical_job < 0 || rep.jobs[j].total_s > wa.elapsed_s) {
        wa.elapsed_s = rep.jobs[j].total_s;
        wa.critical_job = static_cast<int>(j);
      }
      ++wa.job_count;
    }
    for (std::size_t jj = i; jj < j; ++jj) {
      rep.jobs[jj].slack_s = wa.elapsed_s - rep.jobs[jj].total_s;
      rep.jobs[jj].on_critical_path =
          static_cast<int>(jj) == wa.critical_job;
    }
    rep.critical_path_s += wa.elapsed_s;
    rep.waves.push_back(wa);
    i = j;
  }
  for (auto& ja : rep.jobs) {
    rep.serial_total_s += ja.total_s;
    ja.critical_share =
        rep.critical_path_s > 0 ? ja.total_s / rep.critical_path_s : 0.0;
  }

  // ---- diagnosis ----
  // 1. The dominant phase on the critical path.
  {
    const JobAnalysis* worst = nullptr;
    const char* worst_phase = "";
    double worst_s = 0;
    for (const auto& wa : rep.waves) {
      if (wa.critical_job < 0) continue;
      const JobAnalysis& ja = rep.jobs[static_cast<std::size_t>(wa.critical_job)];
      const std::pair<const char*, double> phases[] = {
          {"map", ja.map_time_s},
          {"reduce", ja.reduce_time_s},
          {"sched", ja.sched_delay_s}};
      for (const auto& [name, secs] : phases)
        if (secs > worst_s) {
          worst_s = secs;
          worst_phase = name;
          worst = &ja;
        }
    }
    if (worst && rep.critical_path_s > 0)
      rep.diagnosis.push_back(
          strf("job %s %s is %.0f%% of the critical path (%.1fs of %.1fs)",
               worst->name.c_str(), worst_phase,
               100.0 * worst_s / rep.critical_path_s, worst_s,
               rep.critical_path_s));
  }
  // 2. Shuffle concentration in one partition.
  for (const auto& ja : rep.jobs) {
    if (ja.top_partitions.empty()) continue;
    const HeavyPartition& hp = ja.top_partitions.front();
    const double fair = ja.reduce.tasks > 0
                            ? 1.0 / static_cast<double>(ja.reduce.tasks)
                            : 0.0;
    if (ja.reduce.tasks >= 2 && hp.shuffle_share >= opts.partition_min_share &&
        hp.shuffle_share >= 2.0 * fair)
      rep.diagnosis.push_back(strf(
          "job %s: partition %d holds %.0f%% of shuffle bytes (%s, %llu key "
          "groups)",
          ja.name.c_str(), hp.partition, 100.0 * hp.shuffle_share,
          fmt_mb(hp.shuffle_bytes_raw).c_str(),
          static_cast<unsigned long long>(hp.key_groups)));
  }
  // 3. Hot keys.
  for (const auto& ja : rep.jobs) {
    if (ja.hot_keys.empty() || ja.reduce_records == 0) continue;
    std::uint64_t groups = 0;
    for (const auto& hp : ja.top_partitions) groups += hp.key_groups;
    const SpaceSaving::Entry& top = ja.hot_keys.front();
    const double share = static_cast<double>(top.count) /
                         static_cast<double>(ja.reduce_records);
    if (share >= opts.hot_key_min_share && groups != 1)
      rep.diagnosis.push_back(
          strf("job %s: hot key '%s' carries ~%.0f%% of reduce records "
               "(%llu of %llu)",
               ja.name.c_str(), render_key(ja, top.key).c_str(), 100.0 * share,
               static_cast<unsigned long long>(top.count),
               static_cast<unsigned long long>(ja.reduce_records)));
  }
  // 4. Stragglers.
  for (const auto& ja : rep.jobs) {
    const std::pair<const char*, const PhaseSkewStats*> phases[] = {
        {"map", &ja.map}, {"reduce", &ja.reduce}};
    for (const auto& [name, st] : phases)
      if (!st->stragglers.empty())
        rep.diagnosis.push_back(
            strf("job %s %s: %zu straggler task(s), slowest %.1fx the median",
                 ja.name.c_str(), name, st->stragglers.size(),
                 st->median_s > 0 ? st->max_s / st->median_s : 0.0));
  }
  if (rep.diagnosis.empty())
    rep.diagnosis.push_back(
        "no significant skew, stragglers or hot keys detected");

  // ---- cluster doctor: node-level rollups and diagnosis ----
  rep.cluster = build_cluster_view(query);
  return rep;
}

std::string AnalyzerReport::text() const {
  std::string out = "== query doctor ==\n";
  out += strf("critical path: %.1fs across %zu wave(s); serial job total "
              "%.1fs\n",
              critical_path_s, waves.size(), serial_total_s);
  for (const auto& wa : waves) {
    out += strf("wave %d: elapsed %.1fs (%d job%s)\n", wa.wave, wa.elapsed_s,
                wa.job_count, wa.job_count == 1 ? "" : "s");
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const JobAnalysis& ja = jobs[j];
      // Standalone jobs (wave -1) occupy a synthetic wave == job index.
      const bool in_wave = ja.wave >= 0 ? ja.wave == wa.wave
                                        : wa.wave == static_cast<int>(j);
      if (!in_wave) continue;
      out += strf("  job %-24s total %8.1fs = sched %.1fs + map %.1fs + "
                  "reduce %.1fs  slack %.1fs%s%s\n",
                  ja.name.c_str(), ja.total_s, ja.sched_delay_s, ja.map_time_s,
                  ja.reduce_time_s, ja.slack_s,
                  ja.on_critical_path ? "  [critical]" : "",
                  ja.failed ? "  FAILED" : "");
      out += strf("    map    %zu task(s): total %.1fs max %.3fs median "
                  "%.3fs cv %.2f%s\n",
                  ja.map.tasks, ja.map.total_s, ja.map.max_s, ja.map.median_s,
                  ja.map.cv,
                  ja.map.stragglers.empty()
                      ? ""
                      : strf("  stragglers: %zu", ja.map.stragglers.size())
                            .c_str());
      if (ja.map_only) {
        out += "    reduce (map-only job: output reported under map)\n";
        continue;
      }
      out += strf("    reduce %zu partition(s) (%llu modeled tasks): total "
                  "%.1fs max %.3fs median %.3fs cv %.2f%s\n",
                  ja.reduce.tasks,
                  static_cast<unsigned long long>(ja.target_reduce_tasks),
                  ja.reduce.total_s, ja.reduce.max_s, ja.reduce.median_s,
                  ja.reduce.cv,
                  ja.reduce.stragglers.empty()
                      ? ""
                      : strf("  stragglers: %zu", ja.reduce.stragglers.size())
                            .c_str());
      if (!ja.top_partitions.empty()) {
        out += "    heaviest reduce partitions (by shuffle bytes):\n";
        for (const auto& hp : ja.top_partitions) {
          out += strf("      #%d: %.1f%% of shuffle (%s), %llu key groups, "
                      "%llu records, sim %.3fs",
                      hp.partition, 100.0 * hp.shuffle_share,
                      fmt_mb(hp.shuffle_bytes_raw).c_str(),
                      static_cast<unsigned long long>(hp.key_groups),
                      static_cast<unsigned long long>(hp.records),
                      hp.sim_seconds);
          if (!hp.tag_records.empty()) {
            out += ", tags [";
            for (std::size_t t = 0; t < hp.tag_records.size(); ++t)
              out += strf("%s%zu:%llu", t ? " " : "", t,
                          static_cast<unsigned long long>(hp.tag_records[t]));
            out += "]";
          }
          out += "\n";
        }
      }
      if (!ja.hot_keys.empty()) {
        out += "    hot keys:";
        for (const auto& e : ja.hot_keys)
          out += strf(" '%s'~%llu(err %llu)", render_key(ja, e.key).c_str(),
                      static_cast<unsigned long long>(e.count),
                      static_cast<unsigned long long>(e.error));
        out += "\n";
      }
    }
  }
  out += "diagnosis:\n";
  for (const auto& d : diagnosis) out += "  - " + d + "\n";
  out += cluster.text();
  return out;
}

void AnalyzerReport::to_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("critical_path_s", critical_path_s);
  w.kv("serial_total_s", serial_total_s);
  w.key("waves").begin_array();
  for (const auto& wa : waves) {
    w.begin_object();
    w.kv("wave", wa.wave);
    w.kv("elapsed_s", wa.elapsed_s);
    w.kv("jobs", wa.job_count);
    w.kv("critical_job",
         std::string_view(wa.critical_job >= 0
                              ? jobs[static_cast<std::size_t>(wa.critical_job)]
                                    .name
                              : std::string()));
    w.end_object();
  }
  w.end_array();
  w.key("jobs").begin_array();
  for (const auto& ja : jobs) {
    w.begin_object();
    w.kv("name", std::string_view(ja.name));
    w.kv("wave", ja.wave);
    w.kv("map_only", ja.map_only);
    w.kv("failed", ja.failed);
    w.kv("total_s", ja.total_s);
    w.kv("sched_s", ja.sched_delay_s);
    w.kv("map_s", ja.map_time_s);
    w.kv("reduce_s", ja.reduce_time_s);
    w.kv("slack_s", ja.slack_s);
    w.kv("on_critical_path", ja.on_critical_path);
    w.kv("critical_share", ja.critical_share);
    w.kv("target_reduce_tasks", ja.target_reduce_tasks);
    w.key("map");
    phase_json(w, ja.map);
    w.key("reduce");
    phase_json(w, ja.reduce);
    w.key("top_partitions").begin_array();
    for (const auto& hp : ja.top_partitions) {
      w.begin_object();
      w.kv("partition", hp.partition);
      w.kv("sim_s", hp.sim_seconds);
      w.kv("shuffle_bytes_raw", hp.shuffle_bytes_raw);
      w.kv("shuffle_share", hp.shuffle_share);
      w.kv("key_groups", hp.key_groups);
      w.kv("records", hp.records);
      w.key("tag_records").begin_array();
      for (std::uint64_t t : hp.tag_records) w.value(t);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("hot_keys").begin_array();
    for (const auto& e : ja.hot_keys) {
      w.begin_object();
      w.kv("key", std::string_view(render_key(ja, e.key)));
      w.kv("count", e.count);
      w.kv("error", e.error);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("diagnosis").begin_array();
  for (const auto& d : diagnosis) w.value(std::string_view(d));
  w.end_array();
  w.key("cluster");
  cluster.to_json(w, /*full=*/false);
  w.end_object();
}

std::string AnalyzerReport::json() const {
  JsonWriter w;
  to_json(w);
  return w.take();
}

}  // namespace ysmart::obs
