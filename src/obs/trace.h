// Span-based query-lifecycle tracer.
//
// A Span is one timed region of the query lifecycle. Spans nest
// strictly (begin/end are LIFO on the orchestrating thread), forming the
// hierarchy the paper's argument is about:
//
//   query
//   └─ translate
//      ├─ parse+plan
//      ├─ correlation-detect
//      ├─ merge
//      └─ lower
//   └─ wave 0
//      └─ job:<name>
//         ├─ sched          (simulated only: submission delay)
//         ├─ map
//         ├─ shuffle-sort   (reduce-side merge of sorted map buckets)
//         ├─ reduce
//         └─ post-job       (output materialization to the DFS)
//
// Every span carries TWO time axes that must never mix (DESIGN.md,
// "Execution concurrency vs. simulated time"):
//
//  * wall  — measured host microseconds (steady clock). How long the
//    simulator itself took. Nondeterministic.
//  * sim   — simulated seconds from the CostModel, placed on a per-query
//    simulated timeline via the tracer's sim cursor. Deterministic: two
//    runs with the same seed produce byte-identical sim-axis exports.
//
// Exports: Chrome trace_event JSON (load in chrome://tracing or Perfetto;
// the two axes appear as two processes) and an EXPLAIN ANALYZE-style
// indented text tree. Args attached to spans must be deterministic values
// (bytes, records, simulated seconds) — never wall-clock — so the
// Simulated export stays diffable.
//
// Thread safety: all public methods lock; begin/end are expected from the
// single orchestrating thread (the engine draws RNG and creates spans
// before fanning work out to the pool), but stray calls from workers are
// safe. A null ObsContext disables everything: instrumentation sites are
// pointer checks that cost nothing when observability is off.
#pragma once

#include <cstdint>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ysmart::obs {

enum class TimeAxis { Simulated, Wall, Both };

struct Span {
  int id = -1;
  int parent = -1;  // -1 = root
  std::string name;
  std::string category;  // query | translate | wave | job | phase
  double wall_start_us = 0;
  double wall_dur_us = -1;  // -1 while open
  double sim_start_s = -1;  // -1 = no simulated interval
  double sim_dur_s = -1;
  /// Deterministic key/value annotations; value is pre-encoded JSON.
  std::vector<std::pair<std::string, std::string>> args;

  bool open() const { return wall_dur_us < 0; }
  bool has_sim() const { return sim_start_s >= 0; }
};

class Tracer {
 public:
  Tracer();

  /// Open a span as a child of the innermost open span. Returns its id.
  int begin(std::string name, std::string category);
  /// Close span `id`. Out-of-order closes mark the trace malformed (the
  /// span is still closed so exports stay loadable).
  void end(int id);

  /// Place span `id` on the simulated timeline (may be called after end).
  void set_sim(int id, double start_s, double dur_s);

  void arg(int id, std::string key, std::uint64_t value);
  void arg(int id, std::string key, double value);
  void arg(int id, std::string key, std::string_view value);

  /// Simulated-timeline cursor: where the next job's sim interval starts.
  /// The engine advances it past each job; the DAG executor rewinds it to
  /// the wave start so concurrently-submitted jobs overlap.
  double sim_now() const;
  void set_sim_now(double seconds);

  /// True when every begin had a LIFO-matching end and all spans are
  /// closed — the invariant the trace tests pin down.
  bool well_formed() const;

  std::vector<Span> spans() const;  // snapshot
  std::size_t span_count() const;

  /// Chrome trace_event JSON (JSON-object form with "traceEvents", as
  /// chrome://tracing and Perfetto load). Simulated and wall axes export
  /// as pid 1 ("simulated cluster") and pid 2 ("host wall-clock").
  /// TimeAxis::Simulated output is deterministic for a fixed seed.
  /// `extra_events` appends pre-encoded trace_event objects (one per
  /// string) after the span events — the cluster view's per-node tracks
  /// (pid 3, ClusterReport::chrome_events) ride along this way.
  std::string chrome_json(TimeAxis axis = TimeAxis::Both) const;
  std::string chrome_json(TimeAxis axis,
                          const std::vector<std::string>& extra_events) const;

  /// EXPLAIN ANALYZE-style indented tree with both clocks per span.
  std::string analyze_tree() const;

  void clear();

 private:
  double wall_now_us() const;

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of open span ids
  double sim_now_s_ = 0;
  bool malformed_ = false;
};

}  // namespace ysmart::obs
