// The plan axis: predicted-vs-actual accountability for the translator.
//
// The paper's YSmart picks its merged plan with a pure connectivity
// heuristic — "Currently YSmart does not seek a solution based on
// execution cost estimations" (Section IV-A). Before translation can be
// made cost-based, cost and cardinality predictions must be *observable
// and accountable* against actuals. This module records, at translate
// time, a per-job prediction (input rows/bytes from StatsCatalog,
// reduce-group cardinality via estimate_groups, per-phase simulated
// seconds via CostModel) and, after execution, joins it against the
// retained task samples and JobMetrics into an EXPLAIN ANALYZE tree
// annotated with estimated-vs-actual values, a ranked q-error report,
// and a cross-query calibration ring in the flight-recorder style.
//
// Prediction model (deliberately simple — the point is to *measure* how
// wrong it is, per quantity, so the next layer can calibrate):
//  * Base-table inputs read their true DFS block map (block splitting and
//    replica locality exactly as the engine schedules them); intermediate
//    inputs take the producing job's predicted output, split into
//    ceil(bytes / block_bytes) uniform blocks assumed node-local.
//  * Filters are assumed to pass: every emission ships one pair per input
//    record at the input's average row width.
//  * Reduce groups come from StatsCatalog::estimate_groups over the
//    job's TranslatedJob::partition_key; join output is |L|x|R| / groups
//    (saturating, independence assumption); aggregation output is
//    min(input, groups). Unknown columns make groups unbounded — the
//    prediction clamps to the input record count and flags it.
//  * Phase times replay the engine's cost path: intermediate-expansion
//    then compression on map output, uniform per-real-task reduce work
//    (totals / target_reduce_tasks), CostModel per-task seconds, greedy
//    LPT makespan over the *uncontended* slot counts. Predicted
//    scheduling delay is the contention model's mean (0 when disabled).
//
// Reconciliation contract: every JobPrediction retains the exact
// MapTaskWork / ReduceTaskWork groups it costed, and the stored phase
// seconds EQUAL (==, not approximately) a standalone CostModel replay of
// those groups — pinned by test_robustness. Like the analyzer and the
// cluster view, everything here is a pure function of already-computed
// values: predictions are recorded on the orchestrating thread at
// translate time and joined after execution, so an enabled plan view
// cannot perturb simulated metrics, results, or any other observability
// JSON (also pinned by test_robustness, plan view on/off x pool sizes).
//
// q-error convention (symmetric, finite, deterministic):
//   q(est, act) = max(est, act) / min(est, act)      when both > 0
//               = 1                                   when both <= 0
//               = max(est, act) + 1                   when exactly one is 0
// The one-sided form keeps a missed-entirely prediction (est 0, act N)
// finite and monotone in the miss, so rankings and JSON stay well-formed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mr/cost_model.h"
#include "obs/task_samples.h"

namespace ysmart {
class Dfs;
class JsonWriter;
class StatsCatalog;
struct ClusterConfig;
struct QueryMetrics;
struct TranslatedQuery;
struct TranslatorProfile;
}  // namespace ysmart

namespace ysmart::obs {

/// Symmetric finite q-error; see the convention in the header comment.
double q_error(double est, double act);

/// A run of identically-shaped predicted tasks (blocks of one input file
/// share their work shape, so predictions stay compact on wide inputs).
struct PredictedMapGroup {
  std::uint64_t count = 0;
  MapTaskWork work;
};
struct PredictedReduceGroup {
  std::uint64_t count = 0;  // real (target) reduce tasks of this shape
  ReduceTaskWork work;
};

struct JobPrediction {
  std::string name;
  bool map_only = false;
  int wave = 0;  // predicted dependency wave (inputs resolve upstream)
  std::string partition_key;  // rendered PK, "" when none

  // Input side (map phase reads).
  std::uint64_t input_rows = 0;
  std::uint64_t input_bytes = 0;
  /// True when any input is a predicted intermediate (not a DFS file that
  /// exists at translate time) — its size is itself an estimate.
  bool input_estimated = false;

  // Predicted map output, after intermediate expansion / compression.
  std::uint64_t map_output_records = 0;
  std::uint64_t map_output_bytes_raw = 0;
  std::uint64_t map_output_bytes_wire = 0;

  // Predicted reduce side (all zero for map-only jobs).
  std::uint64_t reduce_records = 0;
  /// estimate_groups over the partition key, clamped to reduce_records.
  std::uint64_t reduce_groups = 0;
  bool groups_unbounded = false;  // estimate_groups hit unknown columns
  bool groups_sampled = false;    // an input table's NDV scan was truncated
  std::uint64_t output_rows = 0;
  std::uint64_t output_bytes = 0;

  // Task/slot shape the phase times were computed over.
  std::uint64_t map_tasks = 0;
  std::uint64_t target_reduce_tasks = 0;
  int map_slots = 1;
  int reduce_slots = 1;
  double map_cpu_multiplier = 1.0;
  double reduce_cpu_multiplier = 1.0;

  // Predicted simulated seconds (the CostModel replay witness: these are
  // exactly makespan(cost(map_work), map_slots) etc. — EXPECT_EQ-able).
  double sched_delay_s = 0;
  double map_time_s = 0;
  double reduce_time_s = 0;
  double total_time_s() const {
    return sched_delay_s + map_time_s + reduce_time_s;
  }

  std::vector<PredictedMapGroup> map_work;
  std::vector<PredictedReduceGroup> reduce_work;
};

struct QueryPrediction {
  std::string sql;
  std::string profile;
  bool concurrent_submission = false;
  std::vector<JobPrediction> jobs;
  int waves = 0;
  /// Modeled end-to-end elapsed: serial job sum, or the wave fold when
  /// the profile submits independent jobs concurrently.
  double wall_time_s = 0;

  double total_time_s() const;
  std::uint64_t shuffle_bytes_wire() const;

  void to_json(JsonWriter& w) const;
  std::string json() const;
};

/// Predict one translated query against the current catalog state. Pure:
/// reads stats/DFS/cluster config only, never mutates them, and two calls
/// with the same arguments produce identical predictions.
QueryPrediction predict_query(const TranslatedQuery& q,
                              const TranslatorProfile& profile,
                              const StatsCatalog& stats, const Dfs& dfs,
                              const ClusterConfig& cfg,
                              const std::string& sql = "");

/// One estimated-vs-actual comparison row.
struct ComparisonRow {
  std::string metric;  // fixed vocabulary, see kPlanMetrics
  double est = 0;
  double act = 0;
  double q = 1;
  bool sampled = false;    // estimate derived from truncated-scan NDVs
  bool unbounded = false;  // estimate was clamped from an unknown NDV
};

struct JobComparison {
  std::string name;
  bool map_only = false;
  int wave_pred = 0;
  int wave_act = 0;
  std::string partition_key;
  std::vector<ComparisonRow> rows;  // fixed metric order
  double max_q = 1;
};

/// One ranked mis-estimate: (job, metric) ordered by q-error descending.
struct RankedMiss {
  std::string job;  // "" = query-level row
  std::string metric;
  double est = 0;
  double act = 0;
  double q = 1;
};

/// The joined EXPLAIN ANALYZE document of one executed query.
struct PlanReport {
  QueryPrediction prediction;
  bool executed = false;  // false: prediction only (\whatif without run)

  // Actual side (from QueryMetrics / QueryTaskSamples).
  int actual_jobs = 0;
  int actual_waves = 0;
  double actual_wall_s = 0;
  std::uint64_t actual_shuffle_wire = 0;

  std::vector<JobComparison> jobs;   // prediction order, name-matched
  std::vector<ComparisonRow> query;  // query-level rows (fixed order)
  std::vector<RankedMiss> ranked;    // q desc, then job asc, metric asc
  double max_q = 1;

  /// EXPLAIN ANALYZE-style indented text with the ranked-misses section.
  std::string text() const;
  /// JSON object; full=true adds per-job work-group task shapes (the
  /// --explain document / /plan.json shape), full=false is the compact
  /// form embedded under a bench record's "plan" key. Deterministic key
  /// order, %.17g doubles.
  void to_json(JsonWriter& w, bool full = true) const;
  std::string json(bool full = true) const;
};

/// Join a prediction against an executed run's samples + metrics. Pure;
/// safe on empty metrics (returns a prediction-only report).
PlanReport join_plan_actuals(const QueryPrediction& pred,
                             const QueryTaskSamples& samples,
                             const QueryMetrics& metrics);

/// Render two plan reports (YSmart merge vs one-op-one-job baseline)
/// side by side: predictions, and actuals when executed.
std::string render_whatif(const PlanReport& merged,
                          const PlanReport& baseline);

/// One calibration entry: the query-level q-errors of one executed run.
struct CalibrationSample {
  std::uint64_t id = 0;  // 1-based across the session, survives eviction
  std::string profile;
  int jobs = 0;
  /// Positionally parallel to kPlanMetrics.
  std::vector<double> q;
  double max_q = 1;
};

/// Fixed metric vocabulary of comparison rows and calibration columns.
extern const std::vector<std::string> kPlanMetrics;

struct CalibrationSnapshot {
  std::size_t capacity = 0;
  std::uint64_t total_recorded = 0;
  std::vector<CalibrationSample> samples;  // oldest first
  /// Lower-median / floor-p95 / max of one metric column over the
  /// retained samples; zeros when empty.
  double p50(std::size_t metric) const;
  double p95(std::size_t metric) const;
  double max(std::size_t metric) const;
};

/// The calibration ring as a JSON object: capacity, totals, the metric
/// vocabulary, retained samples and per-metric p50/p95/max columns.
std::string calibration_json(const CalibrationSnapshot& snap);

/// The ObsContext's plan-view surface: disabled by default (recording is
/// opt-in like the host profiler), holding pending predictions, joined
/// reports, and the cross-query q-error calibration ring.
class PlanViewStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;  // calibration ring
  static constexpr std::size_t kMaxPending = 8;
  static constexpr std::size_t kMaxReports = 8;

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Record a prediction at translate time (Database::translate_query).
  void record_prediction(QueryPrediction p);

  /// Join the most recent pending prediction whose job names match the
  /// executed metrics; appends a report + calibration sample. Returns
  /// false (and records nothing) when no pending prediction matches.
  bool attach_actuals(const QueryTaskSamples& samples,
                      const QueryMetrics& metrics);

  std::size_t pending_count() const;
  bool last_prediction(QueryPrediction* out) const;
  std::size_t report_count() const;
  bool last_report(PlanReport* out) const;
  CalibrationSnapshot calibration() const;

  /// The /plan.json document: {"enabled":...,"last":...,"calibration":...}.
  std::string json() const;

  /// Drop predictions, reports and the ring; keeps the enabled state
  /// (mirrors HostProfiler::clear).
  void clear();

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<QueryPrediction> pending_;  // oldest first, bounded
  std::vector<PlanReport> reports_;       // oldest first, bounded
  std::vector<CalibrationSample> ring_;   // oldest first
  std::uint64_t next_id_ = 1;
};

}  // namespace ysmart::obs
