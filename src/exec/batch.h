// ColumnBatch: a column-oriented view over a slice of rows.
//
// The vectorized execution path (ROADMAP "columnar batch execution")
// slices every map split / operator input into batches of kBatchRows
// rows and pivots each referenced column into a typed vector —
// Int64/Double/String with a null byte-mask — so the filter/project/
// aggregate kernels in exec/vector_kernels.h can run type-specialized
// loops instead of per-row std::variant dispatch. Columns whose cells
// mix physical numeric types (an int in one row, a double in the next)
// demote to Mixed and force the row-at-a-time fallback for any
// expression that touches them, keeping the batch path lossless.
//
// The pivot is lazy and cached: column(c) materializes column c on
// first use, so an expression touching 2 of 16 columns never pays for
// the other 14. String cells and Mixed cells are borrowed by pointer
// from the source rows (the batch never outlives its input span), so
// round-tripping a Row through a batch is exact — bit patterns of
// doubles (NaN payloads, -0.0), int64s beyond 2^53 and embedded-NUL
// strings all survive (pinned by tests/test_exec_batch.cpp).
//
// The whole path sits behind the YSMART_VECTORIZED escape hatch
// (default on), mirroring YSMART_RAW_COMPARATOR: the knob may only move
// host wall-clock, never simulated metrics, results or the journal
// (pinned by tests/test_robustness.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/value.h"

namespace ysmart {

/// Current mode (process-wide, default on unless YSMART_VECTORIZED=off).
bool vectorized_enabled();
/// Runtime toggle mirroring set_raw_comparator_enabled (benches/tests).
void set_vectorized_enabled(bool on);

/// Physical type of one batch column. Null = every cell NULL (type never
/// fixed); Mixed = conflicting non-null cell types, kernels fall back.
enum class ColType { Null, Int64, Double, String, Mixed };

class ColumnVector {
 public:
  ColType type() const { return type_; }
  std::size_t size() const { return size_; }

  bool has_nulls() const { return !nulls_.empty(); }
  bool is_null(std::size_t i) const { return !nulls_.empty() && nulls_[i]; }
  /// Null byte-mask (1 = NULL), or nullptr when no cell is NULL.
  const unsigned char* null_data() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  /// Typed storage; valid only for the matching type(). NULL slots hold
  /// placeholders (0 / 0.0 / a pointer to an empty string).
  const std::int64_t* int_data() const { return ints_.data(); }
  const double* double_data() const { return dbls_.data(); }
  const std::string* const* str_data() const { return strs_.data(); }
  const std::string& str_at(std::size_t i) const { return *strs_[i]; }
  const Value& mixed_at(std::size_t i) const { return *mixed_[i]; }

  /// Lossless reconstruction of the original cell.
  Value value_at(std::size_t i) const;

 private:
  friend class ColumnBatch;
  ColType type_ = ColType::Null;
  std::size_t size_ = 0;
  std::vector<unsigned char> nulls_;  // non-empty iff any cell is NULL
  std::vector<std::int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<const std::string*> strs_;  // borrowed from the source rows
  std::vector<const Value*> mixed_;       // borrowed from the source rows
};

class ColumnBatch {
 public:
  /// Rows per batch on the engine's map path and in the chunked
  /// operators. Large enough to amortize per-batch dispatch, small
  /// enough that a handful of materialized columns stay cache-resident.
  static constexpr std::size_t kBatchRows = 1024;

  /// View over `rows` (not owned; must outlive the batch).
  explicit ColumnBatch(std::span<const Row> rows);
  /// View over `rows[sel[0]], rows[sel[1]], ...` — the compacted form
  /// the kernels use to evaluate projections on filter survivors only.
  ColumnBatch(std::span<const Row> rows, std::vector<std::uint32_t> sel);

  std::size_t rows() const { return has_sel_ ? sel_.size() : rows_.size(); }
  std::size_t columns() const { return num_cols_; }
  /// False when the rows disagree on arity; kernels then fall back.
  bool regular() const { return regular_; }

  /// The underlying source row for batch position `i`.
  const Row& source_row(std::size_t i) const {
    return rows_[has_sel_ ? sel_[i] : i];
  }

  /// Column `c`, pivoted on first use and cached. Requires regular().
  const ColumnVector& column(std::size_t c);

  /// A sub-batch over positions `local[0], local[1], ...` of this batch
  /// (selections compose). Shares the source rows, not the columns.
  ColumnBatch select(const std::vector<std::uint32_t>& local) const;

  /// Reconstruct row `i` from the pivoted columns alone — no reads from
  /// the source rows. Exists for the round-trip property tests.
  Row materialize_row(std::size_t i);

 private:
  void pivot_one(std::size_t c);

  std::span<const Row> rows_;
  std::vector<std::uint32_t> sel_;
  bool has_sel_ = false;
  std::size_t num_cols_ = 0;
  bool regular_ = true;
  std::vector<std::unique_ptr<ColumnVector>> cols_;
};

}  // namespace ysmart
