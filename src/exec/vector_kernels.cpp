#include "exec/vector_kernels.h"

#include <algorithm>
#include <optional>

#include "common/prof_counters.h"
#include "exec/aggregates.h"

namespace ysmart {

namespace {

using Node = BoundExpr::Node;
using Rep = BatchVector::Rep;

// ---------------------------- operand views ----------------------------

/// Uniform accessor over a numeric operand: a typed column, a computed
/// typed vector, or a broadcast scalar (stride 0). Each operand is
/// uniformly Int64 or Double, so kernels dispatch once per node.
struct NumView {
  bool is_int = false;
  std::size_t stride = 0;  // 0 = scalar broadcast
  const std::int64_t* idata = nullptr;
  const double* ddata = nullptr;
  std::int64_t iscalar = 0;
  double dscalar = 0;
  const unsigned char* nulls = nullptr;

  std::int64_t geti(std::size_t k) const { return stride ? idata[k] : iscalar; }
  double getd(std::size_t k) const { return stride ? ddata[k] : dscalar; }
  double num(std::size_t k) const {
    return is_int ? static_cast<double>(geti(k)) : getd(k);
  }
  bool null(std::size_t k) const { return nulls && nulls[k]; }
};

bool num_view(const BatchVector& v, NumView& out) {
  switch (v.rep) {
    case Rep::IntCol:
      out.is_int = true;
      out.stride = 1;
      out.idata = v.col->int_data();
      out.nulls = v.col->null_data();
      return true;
    case Rep::DblCol:
      out.stride = 1;
      out.ddata = v.col->double_data();
      out.nulls = v.col->null_data();
      return true;
    case Rep::IntVec:
      out.is_int = true;
      out.stride = 1;
      out.idata = v.ivec.data();
      out.nulls = v.nulls.empty() ? nullptr : v.nulls.data();
      return true;
    case Rep::DblVec:
      out.stride = 1;
      out.ddata = v.dvec.data();
      out.nulls = v.nulls.empty() ? nullptr : v.nulls.data();
      return true;
    case Rep::Scalar:
      if (v.scalar.type() == ValueType::Int) {
        out.is_int = true;
        out.iscalar = v.scalar.as_int();
        return true;
      }
      if (v.scalar.type() == ValueType::Double) {
        out.dscalar = v.scalar.as_double();
        return true;
      }
      return false;
    default:
      return false;
  }
}

struct StrView {
  std::size_t stride = 0;  // 0 = scalar broadcast
  const std::string* const* data = nullptr;
  const std::string* scalar = nullptr;
  const unsigned char* nulls = nullptr;

  const std::string& get(std::size_t k) const {
    return stride ? *data[k] : *scalar;
  }
  bool null(std::size_t k) const { return nulls && nulls[k]; }
};

bool str_view(const BatchVector& v, StrView& out) {
  if (v.rep == Rep::StrCol) {
    out.stride = 1;
    out.data = v.col->str_data();
    out.nulls = v.col->null_data();
    return true;
  }
  if (v.rep == Rep::Scalar && v.scalar.type() == ValueType::String) {
    out.scalar = &v.scalar.as_string();
    return true;
  }
  return false;
}

// ----------------------------- mask helpers -----------------------------

template <typename ViewA, typename ViewB>
void union_nulls(const ViewA& a, const ViewB& b, std::size_t n,
                 std::vector<unsigned char>& out) {
  if (!a.nulls && !b.nulls) return;  // leave empty: no NULLs
  out.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k)
    if (a.null(k) || b.null(k)) out[k] = 1;
}

/// Whether any element of `v` can be NULL (O(1), conservative exact).
bool maybe_null(const BatchVector& v) {
  switch (v.rep) {
    case Rep::AllNull: return true;
    case Rep::Scalar: return false;
    case Rep::IntCol:
    case Rep::DblCol:
    case Rep::StrCol: return v.col->has_nulls();
    case Rep::IntVec:
    case Rep::DblVec: return !v.nulls.empty();
  }
  return true;
}

/// Kleene truth value per element: 0 = false, 1 = true, 2 = unknown.
void fill_tri(const BatchVector& v, std::size_t n,
              std::vector<unsigned char>& out) {
  out.resize(n);
  switch (v.rep) {
    case Rep::AllNull:
      std::fill(out.begin(), out.end(), static_cast<unsigned char>(2));
      return;
    case Rep::Scalar: {
      const unsigned char t = is_true(v.scalar) ? 1 : 0;
      std::fill(out.begin(), out.end(), t);
      return;
    }
    case Rep::IntCol: {
      const std::int64_t* d = v.col->int_data();
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        out[k] = (nu && nu[k]) ? 2 : (d[k] != 0 ? 1 : 0);
      return;
    }
    case Rep::DblCol: {
      const double* d = v.col->double_data();
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        out[k] = (nu && nu[k]) ? 2 : (d[k] != 0 ? 1 : 0);
      return;
    }
    case Rep::StrCol: {
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        out[k] = (nu && nu[k]) ? 2 : (!v.col->str_at(k).empty() ? 1 : 0);
      return;
    }
    case Rep::IntVec: {
      const unsigned char* nu = v.nulls.empty() ? nullptr : v.nulls.data();
      for (std::size_t k = 0; k < n; ++k)
        out[k] = (nu && nu[k]) ? 2 : (v.ivec[k] != 0 ? 1 : 0);
      return;
    }
    case Rep::DblVec: {
      const unsigned char* nu = v.nulls.empty() ? nullptr : v.nulls.data();
      for (std::size_t k = 0; k < n; ++k)
        out[k] = (nu && nu[k]) ? 2 : (v.dvec[k] != 0 ? 1 : 0);
      return;
    }
  }
}

void fill_nullmask(const BatchVector& v, std::size_t n,
                   std::vector<unsigned char>& out) {
  out.assign(n, 0);
  switch (v.rep) {
    case Rep::AllNull:
      std::fill(out.begin(), out.end(), static_cast<unsigned char>(1));
      return;
    case Rep::Scalar:
      return;  // Scalar is never NULL (NULL literals are AllNull)
    case Rep::IntCol:
    case Rep::DblCol:
    case Rep::StrCol: {
      const unsigned char* nu = v.col->null_data();
      if (nu) std::copy(nu, nu + n, out.begin());
      return;
    }
    case Rep::IntVec:
    case Rep::DblVec:
      if (!v.nulls.empty()) std::copy(v.nulls.begin(), v.nulls.end(), out.begin());
      return;
  }
}

// ------------------------------- kernels -------------------------------

enum class Cmp { Eq, Ne, Lt, Le, Gt, Ge, None };

Cmp cmp_of(const std::string& op) {
  if (op == "=") return Cmp::Eq;
  if (op == "<>") return Cmp::Ne;
  if (op == "<") return Cmp::Lt;
  if (op == "<=") return Cmp::Le;
  if (op == ">") return Cmp::Gt;
  if (op == ">=") return Cmp::Ge;
  return Cmp::None;
}

inline std::int64_t cmp_result(Cmp op, int c) {
  switch (op) {
    case Cmp::Eq: return c == 0;
    case Cmp::Ne: return c != 0;
    case Cmp::Lt: return c < 0;
    case Cmp::Le: return c <= 0;
    case Cmp::Gt: return c > 0;
    case Cmp::Ge: return c >= 0;
    case Cmp::None: break;
  }
  return 0;
}

inline int sign_of(std::strong_ordering o) {
  if (o == std::strong_ordering::less) return -1;
  if (o == std::strong_ordering::greater) return 1;
  return 0;
}

std::optional<BatchVector> eval_node_batch(const Node& nd, ColumnBatch& batch,
                                           std::size_t n);

/// AND/OR under Kleene three-valued logic. The scalar path short-circuits
/// the right branch when the left already decides; evaluating both here
/// is value-identical (Kleene logic is monotone in Unknown) — only a
/// branch that *throws* can tell the difference, which the top-level
/// catch turns into a row-path fallback.
std::optional<BatchVector> kleene_kernel(const Node& nd, ColumnBatch& batch,
                                         std::size_t n) {
  auto a = eval_node_batch(nd.args[0], batch, n);
  if (!a) return std::nullopt;
  auto b = eval_node_batch(nd.args[1], batch, n);
  if (!b) return std::nullopt;
  const bool is_and = nd.op == "and";
  // Fast path: no NULL on either side collapses Kleene logic to plain
  // two-valued AND/OR. When the left operand is already a computed
  // IntVec (the usual output of a comparison) its storage is reused for
  // the result, so the common filter shape `a < x and b >= y` runs one
  // fused loop with no allocation.
  if (!maybe_null(*a) && !maybe_null(*b)) {
    if (a->rep == Rep::IntVec && b->rep == Rep::IntVec) {
      BatchVector fused = std::move(*a);
      const std::int64_t* bd = b->ivec.data();
      std::int64_t* ad = fused.ivec.data();
      if (is_and)
        for (std::size_t k = 0; k < n; ++k)
          ad[k] = (ad[k] != 0) && (bd[k] != 0);
      else
        for (std::size_t k = 0; k < n; ++k)
          ad[k] = (ad[k] != 0) || (bd[k] != 0);
      return fused;
    }
    std::vector<unsigned char> ta, tb;
    fill_tri(*a, n, ta);
    fill_tri(*b, n, tb);
    BatchVector flat;
    flat.rep = Rep::IntVec;
    flat.ivec.resize(n);
    if (is_and)
      for (std::size_t k = 0; k < n; ++k) flat.ivec[k] = ta[k] & tb[k];
    else
      for (std::size_t k = 0; k < n; ++k) flat.ivec[k] = ta[k] | tb[k];
    return flat;
  }
  std::vector<unsigned char> ta, tb;
  fill_tri(*a, n, ta);
  fill_tri(*b, n, tb);
  BatchVector out;
  out.rep = Rep::IntVec;
  out.ivec.resize(n);
  out.nulls.assign(n, 0);
  bool any_null = false;
  for (std::size_t k = 0; k < n; ++k) {
    unsigned char r;
    if (is_and)
      r = (ta[k] == 0 || tb[k] == 0) ? 0 : (ta[k] == 1 && tb[k] == 1) ? 1 : 2;
    else
      r = (ta[k] == 1 || tb[k] == 1) ? 1 : (ta[k] == 0 && tb[k] == 0) ? 0 : 2;
    if (r == 2) {
      out.ivec[k] = 0;
      out.nulls[k] = 1;
      any_null = true;
    } else {
      out.ivec[k] = r;
    }
  }
  if (!any_null) out.nulls.clear();
  return out;
}

std::optional<BatchVector> arith_kernel(const Node& nd, const BatchVector& av,
                                        const BatchVector& bv, std::size_t n) {
  NumView a, b;
  if (!num_view(av, a) || !num_view(bv, b)) return std::nullopt;
  const char op = nd.op[0];
  BatchVector out;
  if (op == '/') {
    // SQL-ish division: always double, divide-by-zero yields NULL.
    out.rep = Rep::DblVec;
    out.dvec.resize(n);
    out.nulls.assign(n, 0);
    bool any_null = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (a.null(k) || b.null(k)) {
        out.nulls[k] = 1;
        any_null = true;
        out.dvec[k] = 0;
        continue;
      }
      const double y = b.num(k);
      if (y == 0) {
        out.nulls[k] = 1;
        any_null = true;
        out.dvec[k] = 0;
      } else {
        out.dvec[k] = a.num(k) / y;
      }
    }
    if (!any_null) out.nulls.clear();
    return out;
  }
  if (a.is_int && b.is_int) {
    out.rep = Rep::IntVec;
    out.ivec.resize(n);
    union_nulls(a, b, n, out.nulls);
    switch (op) {
      case '+':
        for (std::size_t k = 0; k < n; ++k) out.ivec[k] = a.geti(k) + b.geti(k);
        break;
      case '-':
        for (std::size_t k = 0; k < n; ++k) out.ivec[k] = a.geti(k) - b.geti(k);
        break;
      default:
        for (std::size_t k = 0; k < n; ++k) out.ivec[k] = a.geti(k) * b.geti(k);
        break;
    }
    return out;
  }
  out.rep = Rep::DblVec;
  out.dvec.resize(n);
  union_nulls(a, b, n, out.nulls);
  switch (op) {
    case '+':
      for (std::size_t k = 0; k < n; ++k) out.dvec[k] = a.num(k) + b.num(k);
      break;
    case '-':
      for (std::size_t k = 0; k < n; ++k) out.dvec[k] = a.num(k) - b.num(k);
      break;
    default:
      for (std::size_t k = 0; k < n; ++k) out.dvec[k] = a.num(k) * b.num(k);
      break;
  }
  return out;
}

std::optional<BatchVector> compare_kernel(Cmp cmp, const BatchVector& av,
                                          const BatchVector& bv,
                                          std::size_t n) {
  BatchVector out;
  out.rep = Rep::IntVec;
  out.ivec.resize(n);

  NumView na, nb;
  StrView sa, sb;
  const bool a_num = num_view(av, na), b_num = num_view(bv, nb);
  const bool a_str = !a_num && str_view(av, sa);
  const bool b_str = !b_num && str_view(bv, sb);

  if (a_num && b_num) {
    union_nulls(na, nb, n, out.nulls);
    if (na.is_int && nb.is_int) {
      // The operator is hoisted out of the loop: each body is a single
      // branch-free comparison instead of a per-element cmp_result switch.
      auto loop = [&](auto pred) {
        for (std::size_t k = 0; k < n; ++k)
          out.ivec[k] = pred(na.geti(k), nb.geti(k));
      };
      using I = std::int64_t;
      switch (cmp) {
        case Cmp::Eq: loop([](I x, I y) { return x == y; }); break;
        case Cmp::Ne: loop([](I x, I y) { return x != y; }); break;
        case Cmp::Lt: loop([](I x, I y) { return x < y; }); break;
        case Cmp::Le: loop([](I x, I y) { return x <= y; }); break;
        case Cmp::Gt: loop([](I x, I y) { return x > y; }); break;
        case Cmp::Ge: loop([](I x, I y) { return x >= y; }); break;
        case Cmp::None: break;
      }
    } else if (!na.is_int && !nb.is_int) {
      // Double/double: NaN compares "equal" to anything (Value::compare),
      // i.e. the three-way result is 0 — hence the negated forms rather
      // than the direct <= / >= / == operators, which are false on NaN.
      auto loop = [&](auto pred) {
        for (std::size_t k = 0; k < n; ++k)
          out.ivec[k] = pred(na.getd(k), nb.getd(k));
      };
      switch (cmp) {
        case Cmp::Eq: loop([](double x, double y) { return !(x < y) && !(x > y); }); break;
        case Cmp::Ne: loop([](double x, double y) { return x < y || x > y; }); break;
        case Cmp::Lt: loop([](double x, double y) { return x < y; }); break;
        case Cmp::Le: loop([](double x, double y) { return !(x > y); }); break;
        case Cmp::Gt: loop([](double x, double y) { return x > y; }); break;
        case Cmp::Ge: loop([](double x, double y) { return !(x < y); }); break;
        case Cmp::None: break;
      }
    } else if (na.is_int) {
      for (std::size_t k = 0; k < n; ++k)
        out.ivec[k] = cmp_result(
            cmp, sign_of(compare_int_double(na.geti(k), nb.getd(k))));
    } else {
      for (std::size_t k = 0; k < n; ++k)
        out.ivec[k] = cmp_result(
            cmp, -sign_of(compare_int_double(nb.geti(k), na.getd(k))));
    }
    return out;
  }
  if (a_str && b_str) {
    union_nulls(sa, sb, n, out.nulls);
    for (std::size_t k = 0; k < n; ++k) {
      const int c = sa.get(k).compare(sb.get(k));
      out.ivec[k] = cmp_result(cmp, c < 0 ? -1 : (c > 0 ? 1 : 0));
    }
    return out;
  }
  // Cross-rank: numeric sorts before string (Value::compare rank order),
  // so the three-way result is a constant.
  if (a_num && b_str) {
    union_nulls(na, sb, n, out.nulls);
    const std::int64_t r = cmp_result(cmp, -1);
    std::fill(out.ivec.begin(), out.ivec.end(), r);
    return out;
  }
  if (a_str && b_num) {
    union_nulls(sa, nb, n, out.nulls);
    const std::int64_t r = cmp_result(cmp, 1);
    std::fill(out.ivec.begin(), out.ivec.end(), r);
    return out;
  }
  return std::nullopt;
}

std::optional<BatchVector> eval_node_batch(const Node& nd, ColumnBatch& batch,
                                           std::size_t n) {
  switch (nd.kind) {
    case ExprKind::Literal: {
      BatchVector out;
      if (nd.literal.is_null()) return out;  // AllNull
      out.rep = Rep::Scalar;
      out.scalar = nd.literal;
      return out;
    }
    case ExprKind::ColumnRef: {
      if (nd.col_index >= batch.columns()) return std::nullopt;
      const ColumnVector& col = batch.column(nd.col_index);
      BatchVector out;
      switch (col.type()) {
        case ColType::Null: return out;  // AllNull
        case ColType::Int64: out.rep = Rep::IntCol; break;
        case ColType::Double: out.rep = Rep::DblCol; break;
        case ColType::String: out.rep = Rep::StrCol; break;
        case ColType::Mixed: return std::nullopt;
      }
      out.col = &col;
      return out;
    }
    case ExprKind::IsNull: {
      auto arg = eval_node_batch(nd.args[0], batch, n);
      if (!arg) return std::nullopt;
      std::vector<unsigned char> mask;
      fill_nullmask(*arg, n, mask);
      BatchVector out;
      out.rep = Rep::IntVec;
      out.ivec.resize(n);
      for (std::size_t k = 0; k < n; ++k)
        out.ivec[k] = ((mask[k] != 0) != nd.negated) ? 1 : 0;
      return out;
    }
    case ExprKind::Unary: {
      auto arg = eval_node_batch(nd.args[0], batch, n);
      if (!arg) return std::nullopt;
      if (nd.op == "not") {
        std::vector<unsigned char> tri;
        fill_tri(*arg, n, tri);
        BatchVector out;
        out.rep = Rep::IntVec;
        out.ivec.resize(n);
        out.nulls.assign(n, 0);
        bool any_null = false;
        for (std::size_t k = 0; k < n; ++k) {
          if (tri[k] == 2) {
            out.nulls[k] = 1;
            any_null = true;
            out.ivec[k] = 0;
          } else {
            out.ivec[k] = tri[k] == 0 ? 1 : 0;
          }
        }
        if (!any_null) out.nulls.clear();
        return out;
      }
      if (nd.op == "-") {
        if (arg->rep == Rep::AllNull) return arg;
        NumView a;
        if (!num_view(*arg, a)) return std::nullopt;
        BatchVector out;
        if (a.is_int) {
          out.rep = Rep::IntVec;
          out.ivec.resize(n);
          for (std::size_t k = 0; k < n; ++k) out.ivec[k] = -a.geti(k);
        } else {
          out.rep = Rep::DblVec;
          out.dvec.resize(n);
          for (std::size_t k = 0; k < n; ++k) out.dvec[k] = -a.getd(k);
        }
        if (a.nulls) out.nulls.assign(a.nulls, a.nulls + n);
        return out;
      }
      return std::nullopt;  // unknown unary op: row path throws
    }
    case ExprKind::Binary: {
      if (nd.op == "and" || nd.op == "or") return kleene_kernel(nd, batch, n);
      auto a = eval_node_batch(nd.args[0], batch, n);
      if (!a) return std::nullopt;
      auto b = eval_node_batch(nd.args[1], batch, n);
      if (!b) return std::nullopt;
      // NULL propagates through arithmetic and comparisons before the
      // operator dispatch, exactly as the scalar path orders it.
      if (a->rep == Rep::AllNull || b->rep == Rep::AllNull)
        return BatchVector{};  // AllNull
      if (nd.op == "+" || nd.op == "-" || nd.op == "*" || nd.op == "/")
        return arith_kernel(nd, *a, *b, n);
      const Cmp cmp = cmp_of(nd.op);
      if (cmp == Cmp::None) return std::nullopt;  // row path throws
      return compare_kernel(cmp, *a, *b, n);
    }
    case ExprKind::FuncCall:
      return std::nullopt;  // row path throws
  }
  return std::nullopt;
}

}  // namespace

// --------------------------- BatchVector API ---------------------------

bool BatchVector::is_null(std::size_t i) const {
  switch (rep) {
    case Rep::AllNull: return true;
    case Rep::Scalar: return false;
    case Rep::IntCol:
    case Rep::DblCol:
    case Rep::StrCol: return col->is_null(i);
    case Rep::IntVec:
    case Rep::DblVec: return !nulls.empty() && nulls[i];
  }
  return false;
}

bool BatchVector::truthy(std::size_t i) const {
  switch (rep) {
    case Rep::AllNull: return false;
    case Rep::Scalar: return is_true(scalar);
    case Rep::IntCol: return !col->is_null(i) && col->int_data()[i] != 0;
    case Rep::DblCol: return !col->is_null(i) && col->double_data()[i] != 0;
    case Rep::StrCol: return !col->is_null(i) && !col->str_at(i).empty();
    case Rep::IntVec: return (nulls.empty() || !nulls[i]) && ivec[i] != 0;
    case Rep::DblVec: return (nulls.empty() || !nulls[i]) && dvec[i] != 0;
  }
  return false;
}

Value BatchVector::value_at(std::size_t i) const {
  switch (rep) {
    case Rep::AllNull: return Value::null();
    case Rep::Scalar: return scalar;
    case Rep::IntCol:
    case Rep::DblCol:
    case Rep::StrCol: return col->value_at(i);
    case Rep::IntVec:
      if (!nulls.empty() && nulls[i]) return Value::null();
      return Value{ivec[i]};
    case Rep::DblVec:
      if (!nulls.empty() && nulls[i]) return Value::null();
      return Value{dvec[i]};
  }
  return Value::null();
}

bool eval_expr_batch(const BoundExpr& expr, ColumnBatch& batch,
                     BatchVector& out) {
  if (!expr.valid() || !batch.regular()) return false;
  const std::size_t n = batch.rows();
  try {
    auto r = eval_node_batch(expr.root(), batch, n);
    if (!r) return false;
    out = std::move(*r);
  } catch (...) {
    // A batch kernel evaluated a branch the scalar path's short-circuit
    // would have skipped, and it threw. Fall back: the per-row path
    // reproduces scalar behaviour exactly (including the throw, if it
    // happens on a row the scalar path really evaluates).
    return false;
  }
  prof::count(prof::kRowsEvaluated, static_cast<std::uint64_t>(n));
  return true;
}

void collect_passing(const BatchVector& v, std::size_t n,
                     std::vector<std::uint32_t>& sel) {
  switch (v.rep) {
    case Rep::AllNull:
      return;
    case Rep::Scalar:
      if (is_true(v.scalar))
        for (std::size_t k = 0; k < n; ++k)
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    case Rep::IntCol: {
      const std::int64_t* d = v.col->int_data();
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        if ((!nu || !nu[k]) && d[k] != 0)
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    }
    case Rep::DblCol: {
      const double* d = v.col->double_data();
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        if ((!nu || !nu[k]) && d[k] != 0)
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    }
    case Rep::StrCol: {
      const unsigned char* nu = v.col->null_data();
      for (std::size_t k = 0; k < n; ++k)
        if ((!nu || !nu[k]) && !v.col->str_at(k).empty())
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    }
    case Rep::IntVec: {
      const unsigned char* nu = v.nulls.empty() ? nullptr : v.nulls.data();
      for (std::size_t k = 0; k < n; ++k)
        if ((!nu || !nu[k]) && v.ivec[k] != 0)
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    }
    case Rep::DblVec: {
      const unsigned char* nu = v.nulls.empty() ? nullptr : v.nulls.data();
      for (std::size_t k = 0; k < n; ++k)
        if ((!nu || !nu[k]) && v.dvec[k] != 0)
          sel.push_back(static_cast<std::uint32_t>(k));
      return;
    }
  }
}

void add_to_agg(AggState& st, const BatchVector& v, std::size_t i) {
  switch (v.rep) {
    case Rep::AllNull:
      st.add_null();
      return;
    case Rep::Scalar:
      switch (v.scalar.type()) {
        case ValueType::Int: st.add_int(v.scalar.as_int()); return;
        case ValueType::Double: st.add_double(v.scalar.as_double()); return;
        default: st.add(v.scalar); return;
      }
    case Rep::IntCol:
      if (v.col->is_null(i))
        st.add_null();
      else
        st.add_int(v.col->int_data()[i]);
      return;
    case Rep::DblCol:
      if (v.col->is_null(i))
        st.add_null();
      else
        st.add_double(v.col->double_data()[i]);
      return;
    case Rep::StrCol:
      if (v.col->is_null(i))
        st.add_null();
      else
        st.add(Value{v.col->str_at(i)});
      return;
    case Rep::IntVec:
      if (!v.nulls.empty() && v.nulls[i])
        st.add_null();
      else
        st.add_int(v.ivec[i]);
      return;
    case Rep::DblVec:
      if (!v.nulls.empty() && v.nulls[i])
        st.add_null();
      else
        st.add_double(v.dvec[i]);
      return;
  }
}

}  // namespace ysmart
