// BoundExpr: an expression compiled against a schema for evaluation.
//
// Column references are resolved to row indices once at bind time; eval()
// then runs with no name lookups. Semantics are SQL-ish: NULL propagates
// through arithmetic and comparisons, AND/OR follow Kleene three-valued
// logic, and is_true() maps NULL/0 to false for filtering.
#pragma once

#include <memory>
#include <vector>

#include "common/schema.h"
#include "sql/ast.h"

namespace ysmart {

class BoundExpr {
 public:
  /// The compiled form of one expression node. Public (together with
  /// root() and eval_node) so the vectorized kernels in
  /// exec/vector_kernels.h can walk the same compiled tree the scalar
  /// path interprets — one bind, two execution strategies.
  struct Node {
    ExprKind kind{};
    Value literal;
    std::size_t col_index = 0;
    std::string op;
    bool negated = false;
    std::vector<Node> args;
  };

  BoundExpr() = default;

  /// Binds `expr` against `schema`; throws PlanError for unknown columns.
  BoundExpr(ExprPtr expr, const Schema& schema);

  bool valid() const { return expr_ != nullptr; }

  Value eval(const Row& row) const;

  const ExprPtr& expr() const { return expr_; }

  /// Root of the compiled tree; valid() must hold.
  const Node& root() const { return root_; }

  /// Scalar evaluation of a compiled subtree. Does not count
  /// kRowsEvaluated — eval() counts exactly once per top-level call, so
  /// callers comparing kernels against the scalar reference go through
  /// eval().
  static Value eval_node(const Node& n, const Row& row);

 private:
  static Node compile(const Expr& e, const Schema& schema);

  ExprPtr expr_;
  Node root_;
};

/// SQL truthiness: NULL and numeric zero are false.
bool is_true(const Value& v);

/// Bind a list of expressions against one schema.
std::vector<BoundExpr> bind_all(const std::vector<ExprPtr>& exprs,
                                const Schema& schema);

}  // namespace ysmart
