// BoundExpr: an expression compiled against a schema for evaluation.
//
// Column references are resolved to row indices once at bind time; eval()
// then runs with no name lookups. Semantics are SQL-ish: NULL propagates
// through arithmetic and comparisons, AND/OR follow Kleene three-valued
// logic, and is_true() maps NULL/0 to false for filtering.
#pragma once

#include <memory>
#include <vector>

#include "common/schema.h"
#include "sql/ast.h"

namespace ysmart {

class BoundExpr {
 public:
  BoundExpr() = default;

  /// Binds `expr` against `schema`; throws PlanError for unknown columns.
  BoundExpr(ExprPtr expr, const Schema& schema);

  bool valid() const { return expr_ != nullptr; }

  Value eval(const Row& row) const;

  const ExprPtr& expr() const { return expr_; }

 private:
  struct Node {
    ExprKind kind{};
    Value literal;
    std::size_t col_index = 0;
    std::string op;
    bool negated = false;
    std::vector<Node> args;
  };
  static Node compile(const Expr& e, const Schema& schema);
  static Value eval_node(const Node& n, const Row& row);

  ExprPtr expr_;
  Node root_;
};

/// SQL truthiness: NULL and numeric zero are false.
bool is_true(const Value& v);

/// Bind a list of expressions against one schema.
std::vector<BoundExpr> bind_all(const std::vector<ExprPtr>& exprs,
                                const Schema& schema);

}  // namespace ysmart
