// AggState: incremental state of one aggregate call.
//
// Supports count(*) / count(x) / count(distinct x) / sum / avg / min /
// max with SQL NULL handling (non-star aggregates skip NULL inputs; an
// empty group yields NULL except count, which yields 0).
//
// States are mergeable, which enables Hadoop-combiner-style map-side
// partial aggregation (the Hive optimization the paper notes in footnote
// 2). count(distinct) cannot be combined losslessly by value counts, so
// its partial form carries the distinct set itself.
#pragma once

#include <set>
#include <span>
#include <string>

#include "common/value.h"
#include "plan/plan.h"

namespace ysmart {

class AggState {
 public:
  explicit AggState(const AggCall& call);

  /// Feed one input value (ignored content for star-count).
  void add(const Value& v);

  void merge(const AggState& other);

  Value result() const;

  // ---- partial (combiner) serialization ----
  /// Number of Values this state serializes into. Distinct states are
  /// variable-length and return kVariableArity.
  static constexpr int kVariableArity = -1;
  int partial_arity() const;
  void to_partial(Row& out) const;
  /// Consume `partial_arity()` values from `in` (fixed-arity states only).
  void add_partial(std::span<const Value> in);

  const AggCall& call() const { return call_; }

 private:
  AggCall call_;
  std::int64_t count_ = 0;
  double sum_ = 0;
  bool sum_all_int_ = true;
  std::int64_t isum_ = 0;
  Value min_;
  Value max_;
  std::set<Value> distinct_;
};

/// True if every aggregate of `agg` supports fixed-arity partials (i.e.
/// map-side partial aggregation is applicable).
bool combinable(const PlanNode& agg);

}  // namespace ysmart
